(* mcx-lint — static analysis enforcing the repo's determinism,
   domain-safety and packed-type invariants. See lib/lint/ for the rules
   and README "Static analysis" for the contract.

   Exit codes: 0 clean, 1 findings, 2 usage/internal error. *)

let usage =
  "mcx-lint [--list-rules] [--only RULE[,RULE...]] [--format text|json] [--out FILE]\n\
  \        [--root DIR] [--no-typed] [--allow-file FILE|none]\n\n\
   Lints lib/ bin/ bench/ test/ under the repo root (nearest dune-project).\n\
   Typed rules need .cmt files: run `dune build @all` first.\n"

let list_rules () =
  List.iter
    (fun (r : Mcx_lint.Rules.t) ->
      Printf.printf "%-24s %s  %s\n" r.id
        (match r.kind with Mcx_lint.Rules.Source -> "[source]" | Typed -> "[typed] ")
        r.synopsis)
    Mcx_lint.Rules.all

let () =
  let list = ref false in
  let only = ref [] in
  let format = ref "text" in
  let out = ref "" in
  let root = ref "" in
  let typed = ref true in
  let allow_file = ref "lint.allow" in
  let spec =
    [
      ("--list-rules", Arg.Set list, " list rule ids and synopses, then exit");
      ( "--only",
        Arg.String
          (fun s -> only := !only @ List.filter (( <> ) "") (String.split_on_char ',' s)),
        "RULES restrict to a comma-separated list of rule ids" );
      ( "--format",
        Arg.Symbol ([ "text"; "json" ], fun s -> format := s),
        " report format (default text)" );
      ("--out", Arg.Set_string out, "FILE also write the report to FILE");
      ("--root", Arg.Set_string root, "DIR repo root (default: walk up to dune-project)");
      ("--no-typed", Arg.Clear typed, " skip .cmt-based typed rules");
      ( "--allow-file",
        Arg.Set_string allow_file,
        "FILE allowlist path relative to the root (default lint.allow; 'none' disables)" );
    ]
  in
  let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("mcx-lint: " ^ m); exit 2) fmt in
  (try Arg.parse_argv Sys.argv (Arg.align spec) (fun a -> fail "unexpected argument %S" a) usage
   with
  | Arg.Bad msg ->
    prerr_string msg;
    exit 2
  | Arg.Help msg ->
    print_string msg;
    exit 0);
  if !list then begin
    list_rules ();
    exit 0
  end;
  let root =
    if !root <> "" then !root
    else
      match Mcx_lint.Driver.find_root () with
      | Some r -> r
      | None -> fail "no dune-project found above %s (use --root)" (Sys.getcwd ())
  in
  let config =
    {
      (Mcx_lint.Driver.default_config ~root) with
      only = !only;
      with_typed = !typed;
      allow_file = (if !allow_file = "none" then None else Some !allow_file);
    }
  in
  match Mcx_lint.Driver.run config with
  | exception Invalid_argument msg -> fail "%s" msg
  | result ->
    let report =
      match !format with
      | "json" -> Mcx_lint.Driver.report_json result ^ "\n"
      | _ -> Mcx_lint.Driver.report_text result
    in
    print_string report;
    if !out <> "" then begin
      let oc = open_out !out in
      output_string oc report;
      close_out oc
    end;
    if result.findings = [] then exit 0 else exit 1
