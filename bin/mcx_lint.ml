(* mcx-lint — static analysis enforcing the repo's determinism,
   domain-safety and packed-type invariants. See lib/lint/ for the rules
   and README "Static analysis" for the contract.

   Exit codes: 0 clean, 1 findings (or stale allows under
   --check-allows), 2 usage/internal error. *)

let usage =
  "mcx-lint [--list-rules] [--explain RULE] [--only RULE[,RULE...]]\n\
  \        [--format text|json|sarif] [--out FILE] [--root DIR] [--no-typed]\n\
  \        [--allow-file FILE|none] [--cache] [--check-allows]\n\n\
   Lints lib/ bin/ bench/ test/ under the repo root (nearest dune-project).\n\
   Typed and interprocedural rules need .cmt files: run `dune build @all` first.\n"

let kind_tag = function
  | Mcx_lint.Rules.Source -> "[source]"
  | Mcx_lint.Rules.Typed -> "[typed] "
  | Mcx_lint.Rules.Interproc -> "[interp]"

let list_rules () =
  List.iter
    (fun (r : Mcx_lint.Rules.t) ->
      Printf.printf "%-24s %s  %s\n" r.id (kind_tag r.kind) r.synopsis)
    Mcx_lint.Rules.all

let () =
  let list = ref false in
  let explain = ref "" in
  let only = ref [] in
  let format = ref "text" in
  let out = ref "" in
  let root = ref "" in
  let typed = ref true in
  let allow_file = ref "lint.allow" in
  let use_cache = ref false in
  let check_allows = ref false in
  let spec =
    [
      ("--list-rules", Arg.Set list, " list rule ids and synopses, then exit");
      ( "--explain",
        Arg.Set_string explain,
        "RULE run only RULE and print each finding's shortest source\xe2\x86\x92sink call chain" );
      ( "--only",
        Arg.String
          (fun s -> only := !only @ List.filter (( <> ) "") (String.split_on_char ',' s)),
        "RULES restrict to a comma-separated list of rule ids" );
      ( "--format",
        Arg.Symbol ([ "text"; "json"; "sarif" ], fun s -> format := s),
        " report format (default text)" );
      ("--out", Arg.Set_string out, "FILE also write the report to FILE");
      ("--root", Arg.Set_string root, "DIR repo root (default: walk up to dune-project)");
      ("--no-typed", Arg.Clear typed, " skip .cmt-based typed and interprocedural rules");
      ( "--allow-file",
        Arg.Set_string allow_file,
        "FILE allowlist path relative to the root (default lint.allow; 'none' disables)" );
      ( "--cache",
        Arg.Set use_cache,
        " persist per-module analysis in _build/mcx-lint-cache.json keyed by .cmt digests" );
      ( "--check-allows",
        Arg.Set check_allows,
        " exit nonzero when an allow span or lint.allow entry suppresses nothing" );
    ]
  in
  let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("mcx-lint: " ^ m); exit 2) fmt in
  (try Arg.parse_argv Sys.argv (Arg.align spec) (fun a -> fail "unexpected argument %S" a) usage
   with
  | Arg.Bad msg ->
    prerr_string msg;
    exit 2
  | Arg.Help msg ->
    print_string msg;
    exit 0);
  if !list then begin
    list_rules ();
    exit 0
  end;
  if !explain <> "" then begin
    if not (Mcx_lint.Rules.mem !explain) then fail "unknown rule %S" !explain;
    only := [ !explain ]
  end;
  let root =
    if !root <> "" then !root
    else
      match Mcx_lint.Driver.find_root () with
      | Some r -> r
      | None -> fail "no dune-project found above %s (use --root)" (Sys.getcwd ())
  in
  let config =
    {
      (Mcx_lint.Driver.default_config ~root) with
      only = !only;
      with_typed = !typed;
      allow_file = (if !allow_file = "none" then None else Some !allow_file);
      cache_file = (if !use_cache then Some Mcx_lint.Driver.default_cache_file else None);
    }
  in
  match Mcx_lint.Driver.run config with
  | exception Invalid_argument msg -> fail "%s" msg
  | result ->
    (if !explain <> "" then begin
       let r = List.find (fun (r : Mcx_lint.Rules.t) -> r.id = !explain) Mcx_lint.Rules.all in
       Printf.printf "%s %s\n  %s\n\n" r.id (kind_tag r.kind) r.synopsis;
       match result.findings with
       | [] -> print_string "no findings.\n"
       | fs ->
         List.iter
           (fun (f : Mcx_lint.Finding.t) ->
             print_string (Mcx_lint.Finding.to_string f);
             print_newline ())
           fs
     end);
    let report =
      match !format with
      | "json" -> Mcx_lint.Driver.report_json result ^ "\n"
      | "sarif" -> Mcx_lint.Driver.report_sarif result ^ "\n"
      | _ -> Mcx_lint.Driver.report_text result
    in
    if !explain = "" then print_string report;
    if !out <> "" then begin
      let oc = open_out !out in
      output_string oc report;
      close_out oc
    end;
    let stale = result.stale_allows in
    if !check_allows && stale <> [] then begin
      List.iter
        (fun (s : Mcx_lint.Driver.stale_allow) ->
          Printf.eprintf "mcx-lint: stale allow at %s:%d (rule %s): suppresses nothing\n"
            s.sa_file s.sa_line s.sa_rule)
        stale;
      exit 1
    end;
    if result.findings = [] then exit 0 else exit 1
