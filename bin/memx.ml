(* memx — command-line front end for the memristive-crossbar synthesis and
   defect-tolerance library.

   Sub-commands:
     synth      cost a PLA (or named benchmark) two-level and multi-level
     map        defect-tolerant mapping on a randomly defective crossbar
     sim        evaluate a function on the simulated crossbar
     export     write the multi-level NAND netlist (Verilog/DOT) or the PLA
     show       render the programmed crossbar as ASCII art
     bench      list the built-in benchmark suite
     serve      answer a JSONL stream of mapping requests (cached, batched)
     report     analyze serving observability files (access/metrics/trace)
     experiment run a paper experiment (fig6 | table1 | table2 | yield |
                mldefect | ratesweep | ablation | tradeoff | aging)
     config     show the effective MCX_* knob state (and validate it) *)

open Cmdliner

(* Knob plumbing: every MCX_* read goes through the Config registry, and
   the flags below override the environment by writing flag overrides
   into it. Startup fails hard (exit 2) on a malformed knob instead of
   silently falling back — `memx config` explains the state. *)

let report_invalid ~prefix { Mcx.Util.Config.knob; value; expected } =
  Printf.eprintf "%s: invalid %s=%S (expected %s)\n" prefix knob value expected

let set_flag_or_die name value =
  match Mcx.Util.Config.set_flag name value with
  | () -> ()
  | exception Mcx.Util.Config.Invalid { knob; value; expected } ->
    report_invalid ~prefix:"memx" { Mcx.Util.Config.knob; value; expected };
    exit 2

let config_or_die () =
  match Mcx.Util.Config.errors () with
  | [] -> ()
  | errs ->
    List.iter (report_invalid ~prefix:"memx") errs;
    exit 2

let setup_logs verbosity trace =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level verbosity;
  (match trace with
  | Some path when path <> "" -> set_flag_or_die "MCX_TRACE" path
  | Some _ | None -> ());
  config_or_die ();
  Mcx.Util.Telemetry.install_from_env ()

let trace_arg =
  let doc =
    "Record telemetry and write a Chrome trace-event JSON (loadable in Perfetto) to \
     $(docv) at exit; a per-phase summary table goes to stderr so stdout stays \
     byte-comparable. Overrides $(b,MCX_TRACE)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let verbosity =
  let env = Cmd.Env.info "MEMX_VERBOSITY" in
  Term.(const setup_logs $ Logs_cli.level ~env () $ trace_arg)

(* --- shared loading of a function: benchmark name or PLA file --- *)

let load_cover spec =
  if Sys.file_exists spec then begin
    let parsed = Mcx.Logic.Pla.parse_file spec in
    Ok parsed.Mcx.Logic.Pla.cover
  end
  else
    match Mcx.Benchmarks.Suite.find spec with
    | bench -> Ok (Mcx.Benchmarks.Suite.cover bench)
    | exception Not_found ->
      Error
        (Printf.sprintf "%S is neither a PLA file nor a known benchmark (try: memx bench)"
           spec)

let cover_arg =
  let doc = "Function to process: a PLA file path or a built-in benchmark name." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FUNCTION" ~doc)

let seed_arg =
  let doc = "Random seed for defect injection." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)

let or_die = function
  | Ok v -> v
  | Error msg ->
    Printf.eprintf "memx: %s\n" msg;
    exit 1

(* --- synth --- *)

let synth_run () spec include_il_row =
  let cover = or_die (load_cover spec) in
  let report kind (r : Mcx.Crossbar.Cost.report) =
    Printf.printf "%-12s %4d x %-4d area %7d  switches %6d  IR %5.1f%%\n" kind
      r.Mcx.Crossbar.Cost.rows r.Mcx.Crossbar.Cost.cols r.Mcx.Crossbar.Cost.area
      r.Mcx.Crossbar.Cost.switches r.Mcx.Crossbar.Cost.inclusion_ratio
  in
  Printf.printf "function: %d inputs, %d outputs, %d products\n"
    (Mcx.Logic.Mo_cover.n_inputs cover)
    (Mcx.Logic.Mo_cover.n_outputs cover)
    (Mcx.Logic.Mo_cover.product_count cover);
  report "two-level" (Mcx.Crossbar.Cost.two_level ~include_il_row cover);
  let _, dual_report, used_dual = Mcx.Crossbar.Cost.dual_choice ~include_il_row cover in
  if used_dual then report "dual (f')" dual_report
  else Printf.printf "dual (f')    not cheaper\n";
  let mapped = Mcx.Netlist.Tech_map.map_mo cover in
  report "multi-level" (Mcx.Crossbar.Cost.multi_level mapped);
  Printf.printf "multi-level: %d NAND gates, %d inner connections, %d levels\n"
    (Mcx.Netlist.Network.gate_count mapped.Mcx.Netlist.Tech_map.network)
    (Mcx.Netlist.Network.inner_connection_count mapped.Mcx.Netlist.Tech_map.network)
    (Mcx.Netlist.Network.levels mapped.Mcx.Netlist.Tech_map.network)

let synth_cmd =
  let include_il =
    Arg.(value & flag & info [ "il-row" ] ~doc:"Count the input-latch row (Fig. 3 model).")
  in
  Cmd.v
    (Cmd.info "synth" ~doc:"Cost a function two-level and multi-level.")
    Term.(const synth_run $ verbosity $ cover_arg $ include_il)

(* --- map --- *)

let map_run () spec rate seed algorithm verify =
  let cover = or_die (load_cover spec) in
  let fm = Mcx.Crossbar.Function_matrix.build cover in
  let geometry = fm.Mcx.Crossbar.Function_matrix.geometry in
  let prng = Mcx.Util.Prng.create seed in
  let defects =
    Mcx.Crossbar.Defect_map.random prng
      ~rows:(Mcx.Crossbar.Geometry.rows geometry)
      ~cols:(Mcx.Crossbar.Geometry.cols geometry)
      ~open_rate:rate ~closed_rate:0.
  in
  Printf.printf "optimum crossbar %d x %d, %d stuck-open defects injected (rate %.1f%%)\n"
    (Mcx.Crossbar.Geometry.rows geometry)
    (Mcx.Crossbar.Geometry.cols geometry)
    (Mcx.Crossbar.Defect_map.count defects Mcx.Crossbar.Junction.Stuck_open)
    (100. *. rate);
  let algorithm = if algorithm = "exact" then Mcx.Exact else Mcx.Hybrid in
  match Mcx.map_defect_tolerant ~algorithm cover defects with
  | None ->
    Printf.printf "no valid mapping found\n";
    exit 3
  | Some layout ->
    Printf.printf "valid mapping found; row assignment:\n  %s\n"
      (String.concat " "
         (Array.to_list
            (Array.mapi (fun i t -> Printf.sprintf "%d->H%d" i t)
               layout.Mcx.Crossbar.Layout.row_assignment)));
    if verify then
      if Mcx.Logic.Mo_cover.n_inputs cover <= 16 then
        Printf.printf "exhaustive simulation under defects: %s\n"
          (if Mcx.verify ~defects layout then "MATCH" else "MISMATCH")
      else Printf.printf "function too wide for exhaustive verification (> 16 inputs)\n"

let map_cmd =
  let rate =
    Arg.(value & opt float 0.10 & info [ "rate" ] ~docv:"P" ~doc:"Stuck-open defect rate.")
  in
  let algorithm =
    Arg.(
      value
      & opt (enum [ ("hybrid", "hybrid"); ("exact", "exact") ]) "hybrid"
      & info [ "algorithm"; "a" ] ~docv:"ALGO" ~doc:"Mapping algorithm (hybrid or exact).")
  in
  let verify =
    Arg.(value & flag & info [ "verify" ] ~doc:"Simulate the mapped crossbar exhaustively.")
  in
  Cmd.v
    (Cmd.info "map" ~doc:"Defect-tolerant mapping onto a randomly defective crossbar.")
    Term.(const map_run $ verbosity $ cover_arg $ rate $ seed_arg $ algorithm $ verify)

(* --- sim --- *)

let sim_run () spec input_bits =
  let cover = or_die (load_cover spec) in
  let n = Mcx.Logic.Mo_cover.n_inputs cover in
  if String.length input_bits <> n then begin
    Printf.eprintf "memx: input has %d bits, function expects %d\n"
      (String.length input_bits) n;
    exit 1
  end;
  let v =
    Array.init n (fun i ->
        match input_bits.[i] with
        | '0' -> false
        | '1' -> true
        | c ->
          Printf.eprintf "memx: bad input bit %C\n" c;
          exit 1)
  in
  let layout = Mcx.Crossbar.Layout.of_cover cover in
  let out = Mcx.simulate layout v in
  Printf.printf "crossbar outputs: %s\n"
    (String.init (Array.length out) (fun k -> if out.(k) then '1' else '0'));
  let reference = Mcx.Logic.Mo_cover.eval cover v in
  Printf.printf "reference (SOP):  %s\n"
    (String.init (Array.length reference) (fun k -> if reference.(k) then '1' else '0'))

let sim_cmd =
  let input =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"BITS" ~doc:"Input assignment, e.g. 10110 (bit i = variable xi).")
  in
  Cmd.v
    (Cmd.info "sim" ~doc:"Evaluate one input on the simulated crossbar.")
    Term.(const sim_run $ verbosity $ cover_arg $ input)

(* --- export --- *)

let export_run () spec format output =
  let cover = or_die (load_cover spec) in
  let text =
    match format with
    | "verilog" -> Mcx.Netlist.Export.to_verilog (Mcx.Netlist.Tech_map.map_mo cover)
    | "dot" -> Mcx.Netlist.Export.to_dot (Mcx.Netlist.Tech_map.map_mo cover)
    | "pla" -> Mcx.Logic.Pla.to_string cover
    | _ -> assert false
  in
  match output with
  | None -> print_string text
  | Some path ->
    let oc = open_out path in
    output_string oc text;
    close_out oc;
    Printf.printf "written to %s\n" path

let export_cmd =
  let format =
    Arg.(
      value
      & opt (enum [ ("verilog", "verilog"); ("dot", "dot"); ("pla", "pla") ]) "verilog"
      & info [ "format"; "f" ] ~docv:"FMT"
          ~doc:"Output format: verilog (NAND netlist), dot (Graphviz) or pla.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export the multi-level NAND netlist or the PLA.")
    Term.(const export_run $ verbosity $ cover_arg $ format $ output)

(* --- show --- *)

let show_run () spec multilevel rate seed =
  let cover = or_die (load_cover spec) in
  let defects_for rows cols =
    if rate <= 0. then None
    else begin
      let prng = Mcx.Util.Prng.create seed in
      Some (Mcx.Crossbar.Defect_map.random prng ~rows ~cols ~open_rate:rate ~closed_rate:0.)
    end
  in
  if multilevel then begin
    let ml = Mcx.Crossbar.Multilevel.place (Mcx.Netlist.Tech_map.map_mo cover) in
    let defects = defects_for ml.Mcx.Crossbar.Multilevel.physical_rows ml.Mcx.Crossbar.Multilevel.physical_cols in
    print_string (Mcx.Crossbar.Render.multi_level ?defects ml)
  end
  else begin
    let layout = Mcx.Crossbar.Layout.of_cover cover in
    let defects = defects_for layout.Mcx.Crossbar.Layout.physical_rows layout.Mcx.Crossbar.Layout.physical_cols in
    print_string (Mcx.Crossbar.Render.two_level ?defects layout)
  end

let show_cmd =
  let multilevel =
    Arg.(value & flag & info [ "multilevel"; "m" ] ~doc:"Render the multi-level design.")
  in
  let rate =
    Arg.(
      value & opt float 0.
      & info [ "rate" ] ~docv:"P" ~doc:"Overlay random stuck-open defects at this rate.")
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Render the programmed crossbar as ASCII art.")
    Term.(const show_run $ verbosity $ cover_arg $ multilevel $ rate $ seed_arg)

(* --- bench --- *)

let bench_run () =
  let table =
    Mcx.Util.Texttable.create [ "name"; "I"; "O"; "P (ours)"; "source"; "tables" ]
  in
  List.iter
    (fun b ->
      let cover = Mcx.Benchmarks.Suite.cover b in
      Mcx.Util.Texttable.add_row table
        [
          b.Mcx.Benchmarks.Suite.name;
          string_of_int (Mcx.Logic.Mo_cover.n_inputs cover);
          string_of_int (Mcx.Logic.Mo_cover.n_outputs cover);
          string_of_int (Mcx.Logic.Mo_cover.product_count cover);
          (match b.Mcx.Benchmarks.Suite.source with
          | Mcx.Benchmarks.Suite.Arithmetic _ -> "arithmetic"
          | Mcx.Benchmarks.Suite.Synthetic _ -> "synthetic");
          String.concat "+"
            (List.filter
               (fun s -> s <> "")
               [
                 (if b.Mcx.Benchmarks.Suite.in_table1 then "I" else "");
                 (if b.Mcx.Benchmarks.Suite.in_table2 then "II" else "");
               ]);
        ])
    Mcx.Benchmarks.Suite.all;
  Mcx.Util.Texttable.print table

let bench_cmd =
  Cmd.v
    (Cmd.info "bench" ~doc:"List the built-in benchmark suite.")
    Term.(const bench_run $ verbosity)

(* --- serve --- *)

let read_batch ic limit =
  let rec loop acc k =
    if k >= limit then List.rev acc
    else
      match input_line ic with
      | line -> if String.trim line = "" then loop acc k else loop (line :: acc) (k + 1)
      | exception End_of_file -> List.rev acc
  in
  loop [] 0

let serve_run () inputs output stats_path cache_size batch_size access_log metrics_text
    metrics_json =
  if batch_size <= 0 then begin
    Printf.eprintf "memx: --batch must be positive\n";
    exit 1
  end;
  let want_metrics = metrics_text <> None || metrics_json <> None in
  if want_metrics then begin
    Mcx.Util.Metrics.enable ();
    (* The telemetry bridge needs counters recorded even when no trace
       was requested; enabling without events keeps it cheap. *)
    if not (Mcx.Util.Telemetry.enabled ()) then Mcx.Util.Telemetry.enable ~events:false ()
  end;
  Option.iter (fun n -> set_flag_or_die "MCX_CACHE_SIZE" (string_of_int n)) cache_size;
  let times = Mcx.Util.Telemetry.times_from_env () in
  (* Deterministic projection (times = false) embeds the semantic-only
     digest, so access logs stay byte-identical across job counts; the
     timed projection records the full config digest. *)
  let config_digest = Mcx.Util.Config.digest ~semantic_only:(not times) () in
  let access_out = Option.map open_out access_log in
  let on_access =
    Option.map
      (fun oc record ->
        output_string oc
          (Mcx_service.Access_log.to_line ~config:config_digest ~times record);
        output_char oc '\n')
      access_out
  in
  let server = Mcx_service.Serve.create ?on_access () in
  let out, close_output =
    match output with
    | None -> (stdout, fun () -> flush stdout)
    | Some path ->
      let oc = open_out path in
      (oc, fun () -> close_out oc)
  in
  let emit responses =
    List.iter
      (fun line ->
        output_string out line;
        output_char out '\n')
      responses;
    flush out
  in
  (match inputs with
  | [] ->
    (* stdin streaming mode: serve and answer chunk by chunk, so a
       long-lived pipe gets responses as it goes. *)
    let rec loop k =
      match read_batch stdin batch_size with
      | [] -> ()
      | lines ->
        let responses, _ =
          Mcx_service.Serve.serve_batch server ~label:(Printf.sprintf "stdin#%d" k) lines
        in
        emit responses;
        loop (k + 1)
    in
    loop 0
  | files ->
    List.iter
      (fun path ->
        let ic = open_in path in
        let rec drain acc =
          match input_line ic with
          | line -> drain (if String.trim line = "" then acc else line :: acc)
          | exception End_of_file -> List.rev acc
        in
        let lines = drain [] in
        close_in ic;
        let responses, _ =
          Mcx_service.Serve.serve_batch server ~label:(Filename.basename path) lines
        in
        emit responses)
      files);
  close_output ();
  Option.iter close_out access_out;
  (match stats_path with
  | None -> ()
  | Some path ->
    Mcx.Util.Json_out.write_file path (Mcx_service.Serve.stats_json server);
    output_string Stdlib.stderr (Mcx.Util.Texttable.render (Mcx_service.Serve.summary_table server));
    output_char Stdlib.stderr '\n';
    flush Stdlib.stderr);
  if want_metrics then begin
    Mcx_service.Serve.record_metrics server;
    Mcx.Util.Checkpoint.record_metrics ();
    Mcx.Util.Metrics.bridge_telemetry (Mcx.Util.Telemetry.snapshot ());
    let snapshot = Mcx.Util.Metrics.snapshot () in
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc (Mcx.Util.Metrics.Snapshot.to_openmetrics ~times snapshot);
        close_out oc)
      metrics_text;
    Option.iter
      (fun path ->
        Mcx.Util.Json_out.write_file path
          (Mcx.Util.Metrics.Snapshot.to_json ~times
             ~config:(Mcx.Util.Config.snapshot ~semantic_only:(not times) ())
             snapshot))
      metrics_json
  end;
  exit (Mcx_service.Serve.exit_code server)

let serve_cmd =
  let inputs =
    Arg.(
      value & opt_all string []
      & info [ "in"; "i" ] ~docv:"FILE"
          ~doc:
            "Request file (JSONL, one mcx-request/1 per line). Repeatable; each file is \
             served as one batch against the shared cache. Without it, requests stream \
             from stdin.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Response file (default: stdout).")
  in
  let stats =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats" ] ~docv:"FILE"
          ~doc:
            "Write the mcx-serve-stats/1 JSON summary (requests, cache hit rate, per-batch \
             p50/p95 latency) to $(docv) and print the per-batch table to stderr.")
  in
  let cache_size =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-size" ] ~docv:"N"
          ~doc:
            "Result cache capacity in entries (default 512; 0 disables caching). \
             Overrides $(b,MCX_CACHE_SIZE).")
  in
  let batch =
    Arg.(
      value & opt int 256
      & info [ "batch" ] ~docv:"N" ~doc:"Requests per dispatch batch in stdin mode.")
  in
  let access_log =
    Arg.(
      value
      & opt (some string) None
      & info [ "access-log" ] ~docv:"FILE"
          ~doc:
            "Write one mcx-access/1 JSONL record per request to $(docv): source kind, \
             canonical digest, cache outcome, status, response bytes and per-stage \
             durations. MCX_TRACE_TIMES=0 omits the durations, leaving the \
             deterministic projection.")
  in
  let metrics_text =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Export the metrics registry (request/cache/stage families, cache and pool \
             bridges, telemetry counters) as OpenMetrics/Prometheus text to $(docv) at \
             exit.")
  in
  let metrics_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-json" ] ~docv:"FILE"
          ~doc:"Export the same metrics snapshot as an mcx-metrics/1 JSON document.")
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Serve defect-tolerant mapping requests from a JSONL stream.")
    Term.(
      const serve_run $ verbosity $ inputs $ output $ stats $ cache_size $ batch
      $ access_log $ metrics_text $ metrics_json)

(* --- report --- *)

let report_run () access_files metrics_file trace_file diff_pair threshold min_total_ms =
  let module Report = Mcx_service.Report in
  let print_table table =
    print_string (Mcx.Util.Texttable.render table);
    print_newline ()
  in
  let failed = ref false in
  let regressed = ref false in
  let or_warn = function
    | Ok v -> Some v
    | Error msg ->
      Printf.eprintf "memx report: %s\n" msg;
      failed := true;
      None
  in
  if access_files = [] && metrics_file = None && trace_file = None && diff_pair = None
  then begin
    Printf.eprintf
      "memx report: nothing to report (pass --access, --metrics, --trace or --diff)\n";
    exit 1
  end;
  List.iter
    (fun path ->
      match or_warn (Report.load_access path) with
      | None -> ()
      | Some summary ->
        Printf.printf "== %s ==\n" path;
        List.iter print_table (Report.access_tables summary))
    access_files;
  Option.iter
    (fun path ->
      match or_warn (Report.load_metrics path) with
      | None -> ()
      | Some table ->
        Printf.printf "== %s ==\n" path;
        print_table table)
    metrics_file;
  Option.iter
    (fun path ->
      match or_warn (Report.load_trace path) with
      | None -> ()
      | Some table ->
        Printf.printf "== %s ==\n" path;
        print_table table)
    trace_file;
  Option.iter
    (fun (old_path, new_path) ->
      match
        (or_warn (Report.load_access old_path), or_warn (Report.load_access new_path))
      with
      | Some old_run, Some new_run ->
        let min_total_ns = Int64.of_float (min_total_ms *. 1e6) in
        let findings = Report.diff ~threshold ~min_total_ns old_run new_run in
        Printf.printf "== diff %s -> %s ==\n" old_path new_path;
        if findings = [] then print_endline "no mismatches, no regressions"
        else begin
          print_table (Report.diff_table findings);
          regressed := true
        end
      | _ -> ())
    diff_pair;
  if !failed then exit 1 else if !regressed then exit 3

let report_cmd =
  let access =
    Arg.(
      value & opt_all string []
      & info [ "access"; "a" ] ~docv:"FILE"
          ~doc:"Summarize an mcx-access/1 access log (repeatable).")
  in
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics"; "m" ] ~docv:"FILE" ~doc:"Render an mcx-metrics/1 JSON snapshot.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-file"; "t" ] ~docv:"FILE"
          ~doc:
            "Aggregate an mcx-trace/1 Chrome trace by span name ($(b,--trace) is the \
             global record-a-trace flag).")
  in
  let diff =
    Arg.(
      value
      & opt (some (pair ~sep:',' string string)) None
      & info [ "diff" ] ~docv:"OLD,NEW"
          ~doc:
            "Compare two access logs: deterministic fields (request count, status and \
             cache breakdowns) must match exactly; stage mean latencies may grow at most \
             $(b,--threshold)-fold. Exits 3 on any finding — the CI regression gate.")
  in
  let threshold =
    Arg.(
      value & opt float 1.5
      & info [ "threshold" ] ~docv:"X"
          ~doc:"Latency regression factor for $(b,--diff) (new mean vs old mean).")
  in
  let min_total_ms =
    Arg.(
      value & opt float 50.
      & info [ "min-total-ms" ] ~docv:"MS"
          ~doc:
            "Ignore latency regressions in stages whose new total time is below $(docv) \
             (noise floor).")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Analyze serving observability files: access logs, metrics, traces.")
    Term.(
      const report_run $ verbosity $ access $ metrics $ trace $ diff $ threshold
      $ min_total_ms)

(* --- experiment --- *)

let experiment_dispatch ~samples ~seed name =
  (match name with
  | "fig6" ->
    let panels = Mcx.Experiments.Fig6.run ?samples ~seed () in
    print_string (Mcx.Util.Texttable.render (Mcx.Experiments.Fig6.summary_table panels))
  | "table1" ->
    print_string (Mcx.Util.Texttable.render (Mcx.Experiments.Table1.to_table (Mcx.Experiments.Table1.run ())))
  | "table2" ->
    let rows = Mcx.Experiments.Table2.run ?samples ~seed () in
    print_string (Mcx.Util.Texttable.render (Mcx.Experiments.Table2.to_table rows))
  | "yield" ->
    let sweep = Mcx.Experiments.Yield.run ?samples ~seed ~benchmark:"rd53" () in
    print_string (Mcx.Util.Texttable.render (Mcx.Experiments.Yield.to_table sweep))
  | "mldefect" ->
    let result = Mcx.Experiments.Mldefect.run ?samples ~seed ~benchmark:"misex1" () in
    print_string (Mcx.Util.Texttable.render (Mcx.Experiments.Mldefect.to_table result))
  | "ratesweep" ->
    let sweep = Mcx.Experiments.Ratesweep.run ?samples ~seed ~benchmark:"rd73" () in
    print_string (Mcx.Util.Texttable.render (Mcx.Experiments.Ratesweep.to_table sweep))
  | "ablation" ->
    let rows = Mcx.Experiments.Ablation.factoring ?samples ~seed () in
    print_string (Mcx.Util.Texttable.render (Mcx.Experiments.Ablation.factoring_table rows));
    let rows = Mcx.Experiments.Ablation.ordering ?samples ~seed () in
    print_string (Mcx.Util.Texttable.render (Mcx.Experiments.Ablation.ordering_table rows))
  | "tradeoff" ->
    print_string
      (Mcx.Util.Texttable.render (Mcx.Experiments.Tradeoff.to_table (Mcx.Experiments.Tradeoff.run ())))
  | "aging" ->
    let r = Mcx.Experiments.Aging.run ?samples ~seed ~benchmark:"rd53" () in
    print_string (Mcx.Util.Texttable.render (Mcx.Experiments.Aging.to_table [ r ]))
  | "transient" ->
    let r = Mcx.Experiments.Transient.run ?evaluations:samples ~seed ~benchmark:"rd53" () in
    print_string (Mcx.Util.Texttable.render (Mcx.Experiments.Transient.to_table r))
  | "margin" ->
    let result = Mcx.Experiments.Margin.run () in
    let curve, rows = Mcx.Experiments.Margin.to_tables result in
    print_string (Mcx.Util.Texttable.render curve);
    print_string (Mcx.Util.Texttable.render rows)
  | other ->
    Printf.eprintf
      "memx: unknown experiment %S \
       (fig6|table1|table2|yield|mldefect|ratesweep|ablation|tradeoff|aging|transient|margin)\n"
      other;
    exit 1)

let experiment_run () name samples force_resume seed =
  if force_resume then set_flag_or_die "MCX_FORCE_RESUME" "1";
  (* --samples is the flag spelling of MCX_SAMPLES: route it through the
     registry so the journal's config snapshot records the override (and
     a later resume at a different sample count refuses). *)
  Option.iter (fun n -> set_flag_or_die "MCX_SAMPLES" (string_of_int n)) samples;
  let samples = Mcx.Util.Config.samples () in
  (try experiment_dispatch ~samples ~seed name
   with Mcx.Util.Checkpoint.Config_mismatch _ as e ->
     (* The registered printer spells out the recovery options
        (--force-resume, memx config); exit 2 = "refused to start". *)
     Printf.eprintf "memx: %s\n" (Printexc.to_string e);
     exit 2);
  (* Degradation protocol: the tables above are already printed (partial
     where trials failed permanently); persist the failed-trial manifest
     and report the failure through the exit status. *)
  let code = Mcx.Util.Checkpoint.finalize () in
  if code <> 0 then exit code

let experiment_cmd =
  let experiment_name =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"EXPERIMENT" ~doc:"fig6, table1, table2, yield, mldefect, ratesweep, ablation, tradeoff, aging, transient or margin.")
  in
  let samples =
    Arg.(
      value
      & opt (some int) None
      & info [ "samples" ] ~docv:"N"
          ~doc:
            "Monte Carlo samples (default: paper-scale). Overrides $(b,MCX_SAMPLES).")
  in
  let force_resume =
    Arg.(
      value & flag
      & info [ "force-resume" ]
          ~doc:
            "Resume a checkpoint journal even when its recorded mcx-config/1 digest \
             differs from the current knob state (equivalent to \
             $(b,MCX_FORCE_RESUME=1)). Without it, a mismatched resume refuses with \
             exit 2.")
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Run one of the paper's experiments.")
    Term.(
      const experiment_run $ verbosity $ experiment_name $ samples $ force_resume
      $ seed_arg)

(* --- config --- *)

let config_run json =
  (* Deliberately does not go through [setup_logs]/[config_or_die]: this
     command must *diagnose* a broken environment, so it reports every
     malformed and unknown MCX_* variable (not just the first) before
     exiting 2. *)
  let errs = Mcx.Util.Config.errors () in
  let unknown = Mcx.Util.Config.unknown () in
  List.iter (report_invalid ~prefix:"memx config") errs;
  List.iter
    (fun (name, _value) ->
      Printf.eprintf "memx config: unknown %s (not a registered knob; see memx config --help)\n"
        name)
    unknown;
  if errs <> [] || unknown <> [] then exit 2;
  if json then print_endline (Mcx.Util.Json_out.to_string (Mcx.Util.Config.snapshot ()))
  else begin
    let table =
      Mcx.Util.Texttable.create
        [ "knob"; "type"; "layer"; "semantic"; "provenance"; "value"; "default" ]
    in
    List.iter
      (fun k ->
        Mcx.Util.Texttable.add_row table
          [
            k.Mcx.Util.Config.name;
            k.Mcx.Util.Config.ty;
            k.Mcx.Util.Config.layer;
            (if k.Mcx.Util.Config.semantic then "yes" else "no");
            Mcx.Util.Config.provenance_name k.Mcx.Util.Config.prov;
            Mcx.Util.Json_out.to_string k.Mcx.Util.Config.value;
            Mcx.Util.Json_out.to_string k.Mcx.Util.Config.default;
          ])
      (Mcx.Util.Config.knobs ());
    Mcx.Util.Texttable.print table;
    Printf.printf "digest: %s (semantic-only: %s)\n" (Mcx.Util.Config.digest ())
      (Mcx.Util.Config.digest ~semantic_only:true ())
  end

let config_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the canonical mcx-config/1 snapshot instead of a table.")
  in
  Cmd.v
    (Cmd.info "config"
       ~doc:
         "Show the effective knob configuration: every registered MCX_* variable with \
          its type, layer, provenance (default/env/flag) and value, plus the \
          mcx-config/1 digests embedded in journals, traces and metrics. Exits 2 when \
          the environment carries a malformed or unknown MCX_* variable, naming each \
          offender.")
    Term.(const config_run $ json)

let main =
  Cmd.group
    (Cmd.info "memx" ~version:"1.0.0"
       ~doc:"Logic synthesis and defect tolerance for memristive crossbar arrays.")
    [
      synth_cmd; map_cmd; sim_cmd; export_cmd; show_cmd; bench_cmd; serve_cmd;
      report_cmd; experiment_cmd; config_cmd;
    ]

let () = exit (Cmd.eval main)
