(* Microbenchmark of the packed cube / Bmatrix kernels against the naive
   reference implementations in Mcx.Logic.Naive, with a built-in
   self-check: every workload is first verified packed-vs-reference and a
   disagreement exits nonzero, so CI can run this as a smoke test.

   Usage:
     dune exec bench/kernels.exe            # full iteration counts
     dune exec bench/kernels.exe -- --smoke # ~20x fewer iterations (CI)
     dune exec bench/kernels.exe -- --out path.json

   Output: a human-readable table on stdout and a machine-readable
   BENCH_kernels.json (schema documented in EXPERIMENTS.md):
     { "schema": "mcx-bench-kernels/1", "word_bits": ..., "smoke": ...,
       "results": [ { "op", "n", "iterations",
                      "packed_ns_per_op", "reference_ns_per_op",
                      "speedup" }, ... ] } *)

let seed = 2018

let smoke = Array.exists (String.equal "--smoke") Sys.argv

let out_path =
  let rec find i =
    if i >= Array.length Sys.argv - 1 then "BENCH_kernels.json"
    else if String.equal Sys.argv.(i) "--out" then Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

let scale n = if smoke then max 1 (n / 20) else n

(* Keep results observable so the timed loops cannot be optimized away. *)
let sink = ref 0
let observe_bool b = if b then incr sink
let observe_int n = sink := !sink + n

let prng_for name = Mcx.Util.Prng.(of_key (Key.string (Key.root seed) name))

let lit_of_int = function
  | 0 -> Mcx.Logic.Literal.Neg
  | 1 -> Mcx.Logic.Literal.Pos
  | _ -> Mcx.Logic.Literal.Absent

let random_lits prng ~arity ~absent_bias =
  Array.init arity (fun _ ->
      if Mcx.Util.Prng.bernoulli prng absent_bias then Mcx.Logic.Literal.Absent
      else lit_of_int (Mcx.Util.Prng.int prng 2))

(* Median-of-repeats per-op nanoseconds for [run ()] covering [ops] ops. *)
let time_ns_per_op ~ops run =
  run ();
  (* warm-up *)
  let samples =
    List.init 5 (fun _ ->
        let (), dt = Mcx.Util.Timing.time run in
        1e9 *. dt /. float_of_int ops)
  in
  List.nth (List.sort Float.compare samples) 2

type result = {
  op : string;
  n : int;
  iterations : int;
  packed_ns : float;
  reference_ns : float;
}

let results : result list ref = ref []

let mismatches = ref 0

let check ~op ok =
  if not ok then begin
    incr mismatches;
    Printf.eprintf "SELF-CHECK FAILED: packed %s disagrees with reference\n%!" op
  end

let record ~op ~n ~iters ~ops ~self_check ~packed ~reference =
  check ~op (self_check ());
  let packed_ns = time_ns_per_op ~ops:(iters * ops) (fun () ->
      for _ = 1 to iters do packed () done)
  in
  let reference_ns = time_ns_per_op ~ops:(iters * ops) (fun () ->
      for _ = 1 to iters do reference () done)
  in
  results := { op; n; iterations = iters * ops; packed_ns; reference_ns } :: !results

(* ------------------------------------------------------------------ *)
(* Cube kernels                                                        *)
(* ------------------------------------------------------------------ *)

let cube_pairs ~arity ~count =
  let prng = prng_for (Printf.sprintf "cube%d" arity) in
  Array.init count (fun _ ->
      let a = random_lits prng ~arity ~absent_bias:0.5 in
      (* half the pairs are specializations so covers/intersect succeed *)
      let b =
        if Mcx.Util.Prng.bool prng then begin
          let b = Array.copy a in
          Array.iteri
            (fun i l ->
              if
                Mcx.Logic.Literal.equal l Mcx.Logic.Literal.Absent
                && Mcx.Util.Prng.bool prng
              then b.(i) <- lit_of_int (Mcx.Util.Prng.int prng 2))
            a;
          b
        end
        else random_lits prng ~arity ~absent_bias:0.5
      in
      (a, b))

(* [check_pair] compares the naive and packed results on one input pair;
   [naive_run]/[packed_run] are the bare throughput loops. *)
let bench_cube_op ~op ~arity ~iters ~packed_run ~naive_run ~check_pair =
  let pairs = cube_pairs ~arity ~count:64 in
  let packed =
    Array.map (fun (a, b) -> (Mcx.Logic.Naive.of_cube a, Mcx.Logic.Naive.of_cube b)) pairs
  in
  record ~op ~n:arity ~iters ~ops:(Array.length pairs)
    ~self_check:(fun () -> Array.for_all2 check_pair pairs packed)
    ~packed:(fun () -> Array.iter packed_run packed)
    ~reference:(fun () -> Array.iter naive_run pairs)

let opt_cube_agree a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> Mcx.Logic.Cube.equal (Mcx.Logic.Naive.of_cube a) b
  | None, Some _ | Some _, None -> false

let bench_cubes () =
  List.iter
    (fun arity ->
      bench_cube_op ~op:"cube_covers" ~arity ~iters:(scale 20_000)
        ~packed_run:(fun (a, b) -> observe_bool (Mcx.Logic.Cube.covers a b))
        ~naive_run:(fun (a, b) -> observe_bool (Mcx.Logic.Naive.covers a b))
        ~check_pair:(fun (a, b) (pa, pb) ->
          Mcx.Logic.Naive.covers a b = Mcx.Logic.Cube.covers pa pb))
    [ 16; 64; 80 ];
  bench_cube_op ~op:"cube_intersect" ~arity:64 ~iters:(scale 20_000)
    ~packed_run:(fun (a, b) -> observe_bool (Option.is_some (Mcx.Logic.Cube.intersect a b)))
    ~naive_run:(fun (a, b) -> observe_bool (Option.is_some (Mcx.Logic.Naive.intersect a b)))
    ~check_pair:(fun (a, b) (pa, pb) ->
      opt_cube_agree (Mcx.Logic.Naive.intersect a b) (Mcx.Logic.Cube.intersect pa pb));
  bench_cube_op ~op:"cube_cofactor_wrt" ~arity:64 ~iters:(scale 20_000)
    ~packed_run:(fun (a, b) ->
      observe_bool (Option.is_some (Mcx.Logic.Cube.cofactor_wrt a b)))
    ~naive_run:(fun (a, b) ->
      observe_bool (Option.is_some (Mcx.Logic.Naive.cofactor_wrt a b)))
    ~check_pair:(fun (a, b) (pa, pb) ->
      opt_cube_agree (Mcx.Logic.Naive.cofactor_wrt a b) (Mcx.Logic.Cube.cofactor_wrt pa pb))

(* ------------------------------------------------------------------ *)
(* Cover containment                                                   *)
(* ------------------------------------------------------------------ *)

let bench_cover_containment () =
  let arity = 64 and n_cubes = 48 in
  let prng = prng_for "containment" in
  let cubes =
    List.init n_cubes (fun _ -> random_lits prng ~arity ~absent_bias:0.6)
  in
  let cover = Mcx.Logic.Cover.create ~arity (List.map Mcx.Logic.Naive.of_cube cubes) in
  record ~op:"cover_containment" ~n:arity ~iters:(scale 2_000) ~ops:1
    ~self_check:(fun () ->
      let expected =
        List.map Mcx.Logic.Naive.of_cube (Mcx.Logic.Naive.single_cube_containment cubes)
      in
      let got = Mcx.Logic.Cover.cubes (Mcx.Logic.Cover.single_cube_containment cover) in
      List.length expected = List.length got
      && List.for_all2 Mcx.Logic.Cube.equal expected got)
    ~packed:(fun () ->
      observe_int
        (Mcx.Logic.Cover.size (Mcx.Logic.Cover.single_cube_containment cover)))
    ~reference:(fun () ->
      observe_int (List.length (Mcx.Logic.Naive.single_cube_containment cubes)))

let bench_cover_eval () =
  let arity = 64 and n_cubes = 48 in
  let prng = prng_for "cover_eval" in
  let cubes = List.init n_cubes (fun _ -> random_lits prng ~arity ~absent_bias:0.5) in
  let cover = Mcx.Logic.Cover.create ~arity (List.map Mcx.Logic.Naive.of_cube cubes) in
  let assignments =
    Array.init 64 (fun _ -> Array.init arity (fun _ -> Mcx.Util.Prng.bool prng))
  in
  record ~op:"cover_eval" ~n:arity ~iters:(scale 2_000) ~ops:(Array.length assignments)
    ~self_check:(fun () ->
      Array.for_all
        (fun v -> Mcx.Logic.Naive.cover_eval cubes v = Mcx.Logic.Cover.eval cover v)
        assignments)
    ~packed:(fun () ->
      Array.iter (fun v -> observe_bool (Mcx.Logic.Cover.eval cover v)) assignments)
    ~reference:(fun () ->
      Array.iter (fun v -> observe_bool (Mcx.Logic.Naive.cover_eval cubes v)) assignments)

(* ------------------------------------------------------------------ *)
(* Bmatrix kernels                                                     *)
(* ------------------------------------------------------------------ *)

let random_bool_matrix prng ~rows ~cols ~density =
  Array.init rows (fun _ -> Array.init cols (fun _ -> Mcx.Util.Prng.bernoulli prng density))

let bench_bmatrix () =
  let n = 64 in
  let prng = prng_for "bmatrix" in
  (* a dense superset pair so is_submatrix scans deep instead of failing on
     the first cell *)
  let sup = random_bool_matrix prng ~rows:n ~cols:n ~density:0.7 in
  let sub =
    Array.map (Array.map (fun v -> v && Mcx.Util.Prng.bernoulli prng 0.95)) sup
  in
  let a = random_bool_matrix prng ~rows:n ~cols:n ~density:0.5 in
  let psub = Mcx.Logic.Naive.of_bmatrix sub
  and psup = Mcx.Logic.Naive.of_bmatrix sup
  and pa = Mcx.Logic.Naive.of_bmatrix a in
  record ~op:"bmatrix_is_submatrix" ~n ~iters:(scale 20_000) ~ops:1
    ~self_check:(fun () ->
      Mcx.Logic.Naive.is_submatrix sub sup = Mcx.Util.Bmatrix.is_submatrix psub psup
      && Mcx.Logic.Naive.is_submatrix a sup = Mcx.Util.Bmatrix.is_submatrix pa psup)
    ~packed:(fun () -> observe_bool (Mcx.Util.Bmatrix.is_submatrix psub psup))
    ~reference:(fun () -> observe_bool (Mcx.Logic.Naive.is_submatrix sub sup));
  record ~op:"bmatrix_row_subset" ~n ~iters:(scale 2_000) ~ops:n
    ~self_check:(fun () ->
      let ok = ref true in
      for i = 0 to n - 1 do
        if
          Mcx.Logic.Naive.row_subset sub i sup i
          <> Mcx.Util.Bmatrix.row_subset psub i psup i
        then ok := false
      done;
      !ok)
    ~packed:(fun () ->
      for i = 0 to n - 1 do
        observe_bool (Mcx.Util.Bmatrix.row_subset psub i psup i)
      done)
    ~reference:(fun () ->
      for i = 0 to n - 1 do
        observe_bool (Mcx.Logic.Naive.row_subset sub i sup i)
      done);
  record ~op:"bmatrix_row_diff_count" ~n ~iters:(scale 2_000) ~ops:n
    ~self_check:(fun () ->
      let ok = ref true in
      for i = 0 to n - 1 do
        if
          Mcx.Logic.Naive.row_diff_count a i sup i
          <> Mcx.Util.Bmatrix.row_diff_count pa i psup i
        then ok := false
      done;
      !ok)
    ~packed:(fun () ->
      for i = 0 to n - 1 do
        observe_int (Mcx.Util.Bmatrix.row_diff_count pa i psup i)
      done)
    ~reference:(fun () ->
      for i = 0 to n - 1 do
        observe_int (Mcx.Logic.Naive.row_diff_count a i sup i)
      done)

(* ------------------------------------------------------------------ *)
(* Output                                                              *)
(* ------------------------------------------------------------------ *)

let json_of_results rs =
  let open Mcx.Util.Json_out in
  (* two-decimal rounding, as the old hand-rolled %.2f emitter printed *)
  let centi f = Float (Float.round (f *. 100.) /. 100.) in
  Obj
    [
      ("schema", Str "mcx-bench-kernels/1");
      ("word_bits", Int Mcx.Util.Bits.word_bits);
      ("smoke", Bool smoke);
      ( "results",
        List
          (List.map
             (fun r ->
               Obj
                 [
                   ("op", Str r.op);
                   ("n", Int r.n);
                   ("iterations", Int r.iterations);
                   ("packed_ns_per_op", centi r.packed_ns);
                   ("reference_ns_per_op", centi r.reference_ns);
                   ("speedup", centi (r.reference_ns /. r.packed_ns));
                 ])
             rs) );
    ]

let () =
  bench_cubes ();
  bench_cover_containment ();
  bench_cover_eval ();
  bench_bmatrix ();
  let rs = List.rev !results in
  Printf.printf "%-24s %5s %14s %14s %9s\n" "op" "n" "packed ns/op" "ref ns/op" "speedup";
  List.iter
    (fun r ->
      Printf.printf "%-24s %5d %14.2f %14.2f %8.2fx\n" r.op r.n r.packed_ns r.reference_ns
        (r.reference_ns /. r.packed_ns))
    rs;
  Mcx.Util.Json_out.write_file out_path (json_of_results rs);
  Printf.printf "json written to %s (sink %d)\n" out_path (!sink land 1);
  if !mismatches > 0 then begin
    Printf.eprintf "%d self-check failure(s)\n%!" !mismatches;
    exit 1
  end
