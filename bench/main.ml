(* Regenerates every table and figure of the paper's evaluation, plus the
   two future-work extension studies, and micro-benchmarks the two mapping
   algorithms with Bechamel.

   Usage:
     dune exec bench/main.exe                 # everything, paper-scale
     dune exec bench/main.exe -- fig6 table2  # a subset
   Environment:
     MCX_SAMPLES  override the Monte Carlo sample count (default: the
                  paper's 200 for fig6/table2, 100 for the extensions).
     MCX_JOBS     domain count for the Monte Carlo trial pool (default:
                  the machine's recommended domain count). Every trial's
                  PRNG stream is derived from (seed, experiment, trial
                  index), so the experiment output on stdout and in the
                  CSVs is byte-identical at any job count; only the
                  wall-clock report on stderr changes.
     MCX_CHECKPOINT  journal completed trials to <dir>/journal.jsonl;
                  a killed run re-launched with the same settings
                  replays them and produces identical stdout (see
                  EXPERIMENTS.md "Checkpointing & fault tolerance").
     MCX_TRIAL_RETRIES / MCX_FAULT_RATE  trial-failure retry budget and
                  deterministic fault injection; permanent failures
                  degrade to partial results, a failed-trial manifest
                  and exit status 4. *)

(* MCX_SAMPLES via the Config registry: a malformed value is a startup
   error (exit 2, reported in main), never a silent paper-scale run. *)
let samples_default fallback =
  match Mcx.Util.Config.samples () with Some n -> n | None -> fallback

let seed = 2018 (* DATE 2018 *)

let pool = lazy (Mcx.Util.Pool.default ())
let pool () = Lazy.force pool

(* Wall-clock + per-trial accounting, reported on stderr so stdout stays
   bit-comparable across MCX_JOBS settings.  The driver totals live in
   plain refs; per-phase aggregation across pool domains is Telemetry's
   job now (merging Timing.Counter values across domains is deprecated). *)
let wall_seconds = ref 0.
let wall_events = ref 0

(* (name, wall seconds, trials) per timed experiment, oldest first —
   dumped to BENCH_main.json at exit so CI can archive wall times. *)
let wall_records : (string * float * int) list ref = ref []

let timed name ?trials run =
  let (), dt =
    Mcx.Util.Timing.time (fun () -> Mcx.Util.Telemetry.span ("bench." ^ name) run)
  in
  wall_seconds := !wall_seconds +. dt;
  incr wall_events;
  let trials = match trials with Some n when n > 0 -> n | _ -> 0 in
  wall_records := (name, dt, trials) :: !wall_records;
  if trials > 0 then begin
    Mcx.Util.Telemetry.count ~n:trials "bench.trials";
    Printf.eprintf "[mcx] %-9s wall %7.2fs  %8d trials  %10.1f us/trial\n%!" name dt
      trials
      (1e6 *. dt /. float_of_int trials)
  end
  else Printf.eprintf "[mcx] %-9s wall %7.2fs\n%!" name dt

(* The mcx-bench/1 wall-time dump (schema in EXPERIMENTS.md): one entry
   per timed experiment, measurements only — never byte-stable, so it
   lives next to the CSVs, not in stdout. *)
let write_bench_json path =
  let module J = Mcx.Util.Json_out in
  let experiment (name, dt, trials) =
    J.Obj
      ([ ("name", J.Str name); ("wall_s", J.Float dt) ]
      @
      if trials = 0 then []
      else
        [
          ("trials", J.Int trials);
          ("us_per_trial", J.Float (1e6 *. dt /. float_of_int trials));
        ])
  in
  J.write_file path
    (J.Obj
       [
         ("schema", J.Str "mcx-bench/1");
         (* Wall times are measurements, so the dump can afford the full
            config snapshot — it records the knob state that produced
            this trajectory point. *)
         ("config", Mcx.Util.Config.snapshot ());
         ("seed", J.Int seed);
         ("jobs", J.Int (Mcx.Util.Pool.jobs (pool ())));
         ("experiments", J.List (List.map experiment (List.rev !wall_records)));
         ("total_wall_s", J.Float !wall_seconds);
       ])

let heading title =
  Printf.printf "\n==============================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==============================================================\n%!"

(* ------------------------------------------------------------------ *)
(* FIG3 / FIG5: the running example                                    *)
(* ------------------------------------------------------------------ *)

let paper_example_cover =
  Mcx.Logic.Cover.of_strings
    [ "1-------"; "-1------"; "--1-----"; "---1----"; "----1111" ]

let fig3 () =
  heading "FIG 3 - two-level mapping of f = x1+x2+x3+x4+x5x6x7x8";
  let mo = Mcx.Logic.Mo_cover.of_single paper_example_cover in
  let report = Mcx.Crossbar.Cost.two_level ~include_il_row:true mo in
  Printf.printf "crossbar: %d x %d   (paper: 7 x 18)\n" report.Mcx.Crossbar.Cost.rows
    report.Mcx.Crossbar.Cost.cols;
  Printf.printf "area cost: %d        (paper: 126)\n" report.Mcx.Crossbar.Cost.area;
  Printf.printf "switches:  %d         (paper: 31)\n" report.Mcx.Crossbar.Cost.switches;
  Printf.printf "IR: %.1f%%            (paper: ~25%%)\n" report.Mcx.Crossbar.Cost.inclusion_ratio;
  let layout = Mcx.Crossbar.Layout.of_cover ~include_il_row:true mo in
  Printf.printf "exhaustive simulation against the SOP: %s\n"
    (if Mcx.verify layout then "MATCH (256/256 inputs)" else "MISMATCH");
  Printf.printf "\n%s" (Mcx.Crossbar.Render.two_level layout)

let fig5 () =
  heading "FIG 5 - multi-level mapping of the same function";
  let mapped = Mcx.Netlist.Tech_map.map_cover paper_example_cover in
  let report = Mcx.Crossbar.Cost.multi_level mapped in
  Printf.printf "crossbar: %d x %d    (paper: 3 x 19)\n" report.Mcx.Crossbar.Cost.rows
    report.Mcx.Crossbar.Cost.cols;
  Printf.printf "area cost: %d        (paper prints 59; 3 x 19 = 57)\n"
    report.Mcx.Crossbar.Cost.area;
  Printf.printf "NAND gates: %d, inner connections: %d\n"
    (Mcx.Netlist.Network.gate_count mapped.Mcx.Netlist.Tech_map.network)
    (Mcx.Netlist.Network.inner_connection_count mapped.Mcx.Netlist.Tech_map.network);
  let ml = Mcx.Crossbar.Multilevel.place mapped in
  Printf.printf "exhaustive simulation against the SOP: %s\n"
    (if
       Mcx.Crossbar.Multilevel.agrees_with_reference ml
         (Mcx.Logic.Mo_cover.of_single paper_example_cover)
     then "MATCH (256/256 inputs)"
     else "MISMATCH");
  Printf.printf "\n%s" (Mcx.Crossbar.Render.multi_level ml)

(* ------------------------------------------------------------------ *)
(* FIG6                                                                *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  let samples = samples_default 200 in
  heading
    (Printf.sprintf
       "FIG 6 - two-level vs multi-level area, %d random functions per input size" samples);
  timed "fig6" ~trials:(4 * samples) (fun () ->
      let panels = Mcx.Experiments.Fig6.run ~pool:(pool ()) ~samples ~seed () in
      print_string (Mcx.Util.Texttable.render (Mcx.Experiments.Fig6.summary_table panels));
      List.iter
        (fun panel ->
          let path =
            Printf.sprintf "fig6_inputs%02d.csv" panel.Mcx.Experiments.Fig6.n_inputs
          in
          let oc = open_out path in
          output_string oc (Mcx.Experiments.Fig6.series_csv panel);
          close_out oc;
          Printf.printf "series written to %s\n" path)
        panels)

(* ------------------------------------------------------------------ *)
(* TABLE 1                                                             *)
(* ------------------------------------------------------------------ *)

let table1 () =
  heading "TABLE I - benchmark area, two-level vs multi-level, original vs negation";
  let rows = Mcx.Experiments.Table1.run () in
  print_string (Mcx.Util.Texttable.render (Mcx.Experiments.Table1.to_table rows))

(* ------------------------------------------------------------------ *)
(* FIG 7 / FIG 8: the mapping walk-through                             *)
(* ------------------------------------------------------------------ *)

let fig7_cover =
  Mcx.Logic.Mo_cover.create ~share:false ~n_inputs:3 ~n_outputs:2
    [
      { Mcx.Logic.Mo_cover.cube = Mcx.Logic.Cube.of_string "11-"; outputs = [| true; false |] };
      { Mcx.Logic.Mo_cover.cube = Mcx.Logic.Cube.of_string "-11"; outputs = [| true; false |] };
      { Mcx.Logic.Mo_cover.cube = Mcx.Logic.Cube.of_string "1-1"; outputs = [| false; true |] };
      { Mcx.Logic.Mo_cover.cube = Mcx.Logic.Cube.of_string "-11"; outputs = [| false; true |] };
    ]

let fig7_fig8 () =
  heading "FIG 7/8 - defect-aware mapping walk-through (O1 = x1x2 + x2x3, O2 = x1x3 + x2x3)";
  let fm = Mcx.Crossbar.Function_matrix.build fig7_cover in
  Printf.printf "Function matrix (FM), %d x %d:\n%s\n\n"
    (Mcx.Util.Bmatrix.rows fm.Mcx.Crossbar.Function_matrix.matrix)
    (Mcx.Util.Bmatrix.cols fm.Mcx.Crossbar.Function_matrix.matrix)
    (Mcx.Util.Bmatrix.to_string fm.Mcx.Crossbar.Function_matrix.matrix);
  let defects = Mcx.Crossbar.Defect_map.create ~rows:6 ~cols:10 in
  Mcx.Crossbar.Defect_map.set defects 0 0 Mcx.Crossbar.Junction.Stuck_open;
  Mcx.Crossbar.Defect_map.set defects 2 7 Mcx.Crossbar.Junction.Stuck_open;
  Mcx.Crossbar.Defect_map.set defects 5 3 Mcx.Crossbar.Junction.Stuck_open;
  Printf.printf "Defect map (o = stuck-open):\n%s\n\n"
    (Fmt.str "%a" Mcx.Crossbar.Defect_map.pp defects);
  let cm = Mcx.Mapping.Matching.cm_of_defects defects in
  Printf.printf "Crossbar matrix (CM):\n%s\n\n" (Mcx.Util.Bmatrix.to_string cm);
  let identity = Array.init 6 Fun.id in
  Printf.printf "naive (identity) mapping valid: %b\n"
    (Mcx.Mapping.Matching.check_assignment ~fm:fm.Mcx.Crossbar.Function_matrix.matrix ~cm
       identity);
  (match Mcx.Mapping.Hybrid.map fm cm with
  | Some assignment ->
    Printf.printf "hybrid mapping found: FM row -> crossbar row: %s\n"
      (String.concat " "
         (List.mapi (fun i t -> Printf.sprintf "%d->H%d" i t) (Array.to_list assignment)));
    let layout = Mcx.Crossbar.Layout.place ~row_assignment:assignment fm in
    Printf.printf "simulation under defects: %s\n"
      (if Mcx.verify ~defects layout then "MATCH (all 8 inputs)" else "MISMATCH")
  | None -> Printf.printf "hybrid mapping FAILED\n");
  Printf.printf "exact algorithm agrees a mapping exists: %b\n"
    (Mcx.Mapping.Exact.feasible fm cm)

(* ------------------------------------------------------------------ *)
(* TABLE 2                                                             *)
(* ------------------------------------------------------------------ *)

let table2 () =
  let samples = samples_default 200 in
  heading
    (Printf.sprintf
       "TABLE II - HBA vs EA success rate & runtime, optimum crossbars, 10%% stuck-open, %d samples"
       samples);
  let n_benchmarks = List.length Mcx.Benchmarks.Suite.table2 in
  timed "table2" ~trials:(samples * n_benchmarks) (fun () ->
      let rows = Mcx.Experiments.Table2.run ~pool:(pool ()) ~samples ~seed () in
      print_string (Mcx.Util.Texttable.render (Mcx.Experiments.Table2.to_table rows));
      Printf.printf "(* = implemented with its dual, as the paper's bold entries)\n";
      let oc = open_out "table2.csv" in
      output_string oc (Mcx.Experiments.Table2.to_csv rows);
      close_out oc;
      Printf.printf "csv written to table2.csv\n")

(* ------------------------------------------------------------------ *)
(* Extensions                                                          *)
(* ------------------------------------------------------------------ *)

let yield () =
  let samples = samples_default 100 in
  heading "EXT-YIELD - redundancy vs mapping yield (stuck-open + stuck-closed defects)";
  (* Bigger arrays collect stuck-closed defects in proportion to their
     area, so the survivable closed rate shrinks with the circuit: bw's
     3300-junction optimum array is hopeless at 1% closed. *)
  let configs =
    [
      ("rd53", 0.05, 0.01, [ 0; 1; 2; 3; 4 ]);
      ("misex1", 0.05, 0.01, [ 0; 1; 2; 3; 4 ]);
      ("bw", 0.02, 0.002, [ 0; 2; 4; 6; 8 ]);
    ]
  in
  let trials =
    samples
    * List.fold_left (fun acc (_, _, _, levels) -> acc + List.length levels) 0 configs
  in
  timed "yield" ~trials (fun () ->
      List.iter
        (fun (benchmark, open_rate, closed_rate, spare_levels) ->
          let sweep =
            Mcx.Experiments.Yield.run ~pool:(pool ()) ~samples ~seed ~benchmark
              ~open_rate ~closed_rate ~spare_levels ()
          in
          Printf.printf "\n%s (open %.1f%%, closed %.2f%%):\n" benchmark
            (100. *. open_rate) (100. *. closed_rate);
          print_string (Mcx.Util.Texttable.render (Mcx.Experiments.Yield.to_table sweep)))
        configs)

let mldefect () =
  let samples = samples_default 100 in
  heading "EXT-MLDEF - defect-tolerant mapping of multi-level designs (stuck-open)";
  let configs = [ ("misex1", 0); ("rd53", 0); ("squar5", 0); ("misex1", 4); ("rd53", 4) ] in
  timed "mldefect" ~trials:(4 * samples * List.length configs) (fun () ->
      List.iter
        (fun (benchmark, spare_rows) ->
          let result =
            Mcx.Experiments.Mldefect.run ~pool:(pool ()) ~samples ~spare_rows ~seed
              ~benchmark ()
          in
          Printf.printf "\n%s (+%d spare rows): %d NAND gates, multi-level area %d\n"
            benchmark spare_rows result.Mcx.Experiments.Mldefect.gates
            result.Mcx.Experiments.Mldefect.area;
          print_string
            (Mcx.Util.Texttable.render (Mcx.Experiments.Mldefect.to_table result)))
        configs)

let ratesweep () =
  let samples = samples_default 100 in
  heading "EXT-RATE - Psucc vs stuck-open rate: hybrid / exact / annealing baseline";
  timed "ratesweep" ~trials:(7 * samples * 2) (fun () ->
      List.iter
        (fun benchmark ->
          let sweep =
            Mcx.Experiments.Ratesweep.run ~pool:(pool ()) ~samples ~seed ~benchmark ()
          in
          Printf.printf "\n%s:\n" benchmark;
          print_string
            (Mcx.Util.Texttable.render (Mcx.Experiments.Ratesweep.to_table sweep)))
        [ "rd53"; "rd73" ])

let ablation () =
  let samples = samples_default 100 in
  heading "ABLATION 1 - factoring strategy (flat / quick / kernel) on the Fig. 6 workload";
  timed "ablation" ~trials:(samples * (2 + 5)) (fun () ->
      let rows =
        Mcx.Experiments.Ablation.factoring ~pool:(pool ()) ~samples ~input_sizes:[ 8; 10 ]
          ~seed ()
      in
      print_string
        (Mcx.Util.Texttable.render (Mcx.Experiments.Ablation.factoring_table rows));
      heading "ABLATION 2 - hybrid greedy order (top-down vs hardest-first) at 10% defects";
      let rows = Mcx.Experiments.Ablation.ordering ~pool:(pool ()) ~samples ~seed () in
      print_string
        (Mcx.Util.Texttable.render (Mcx.Experiments.Ablation.ordering_table rows));
      heading "ABLATION 3 - NAND fan-in limit (the paper allows 2..n)";
      let rows = Mcx.Experiments.Ablation.fanin () in
      print_string (Mcx.Util.Texttable.render (Mcx.Experiments.Ablation.fanin_table rows)))

let tradeoff () =
  heading "EXT-TRADE - area / computation steps / memristor writes per evaluation";
  let rows = Mcx.Experiments.Tradeoff.run () in
  print_string (Mcx.Util.Texttable.render (Mcx.Experiments.Tradeoff.to_table rows))

let aging () =
  let samples = samples_default 60 in
  heading "EXT-AGING - incremental repair vs remap as stuck-open faults accumulate";
  timed "aging" ~trials:(3 * samples) (fun () ->
      let results =
        List.map
          (fun benchmark ->
            Mcx.Experiments.Aging.run ~pool:(pool ()) ~samples ~seed ~benchmark ())
          [ "rd53"; "misex1"; "sqrt8" ]
      in
      print_string (Mcx.Util.Texttable.render (Mcx.Experiments.Aging.to_table results)))

let transient () =
  let evaluations = samples_default 300 in
  heading "EXT-TRANSIENT - write-upset error rate, two-level vs multi-level";
  timed "transient" ~trials:(4 * evaluations * 2) (fun () ->
      List.iter
        (fun benchmark ->
          let r =
            Mcx.Experiments.Transient.run ~pool:(pool ()) ~evaluations ~seed ~benchmark ()
          in
          Printf.printf "\n%s (writes per evaluation: %d two-level, %d multi-level):\n"
            benchmark r.Mcx.Experiments.Transient.two_level_writes
            r.Mcx.Experiments.Transient.multi_level_writes;
          print_string (Mcx.Util.Texttable.render (Mcx.Experiments.Transient.to_table r)))
        [ "rd53"; "misex1" ])

let margin () =
  heading "EXT-MARGIN - electrical sense margin vs line width (resistive-divider model)";
  let result = Mcx.Experiments.Margin.run () in
  let curve, benchmarks = Mcx.Experiments.Margin.to_tables result in
  Printf.printf "max electrically reliable width: %d junctions\n\n"
    result.Mcx.Experiments.Margin.max_reliable_width;
  print_string (Mcx.Util.Texttable.render curve);
  print_newline ();
  print_string (Mcx.Util.Texttable.render benchmarks)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: the Table II runtime claim               *)
(* ------------------------------------------------------------------ *)

let micro () =
  heading "MICRO - Bechamel: HBA vs EA on fixed defective crossbars";
  let open Bechamel in
  let make_pair name =
    let bench = Mcx.Benchmarks.Suite.find name in
    let cover = Mcx.Benchmarks.Suite.cover bench in
    let fm = Mcx.Crossbar.Function_matrix.build cover in
    let report = Mcx.Crossbar.Cost.two_level cover in
    let prng = Mcx.Util.Prng.create 99 in
    let defects =
      Mcx.Crossbar.Defect_map.random prng ~rows:report.Mcx.Crossbar.Cost.rows
        ~cols:report.Mcx.Crossbar.Cost.cols ~open_rate:0.10 ~closed_rate:0.
    in
    let cm = Mcx.Mapping.Matching.cm_of_defects defects in
    [
      Test.make ~name:(Printf.sprintf "HBA %s" name)
        (Staged.stage (fun () -> ignore (Mcx.Mapping.Hybrid.map fm cm)));
      Test.make ~name:(Printf.sprintf "EA  %s" name)
        (Staged.stage (fun () -> ignore (Mcx.Mapping.Exact.map fm cm)));
    ]
  in
  let tests =
    Test.make_grouped ~name:"mapping"
      (List.concat_map make_pair [ "rd53"; "misex1"; "rd73"; "rd84"; "table3" ])
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name est acc -> (name, est) :: acc) results [] in
  let table = Mcx.Util.Texttable.create [ "test"; "time per run" ] in
  List.iter
    (fun (name, est) ->
      let cell =
        match Analyze.OLS.estimates est with
        | Some (ns :: _) ->
          if ns > 1e6 then Printf.sprintf "%.3f ms" (ns /. 1e6)
          else Printf.sprintf "%.1f us" (ns /. 1e3)
        | Some [] | None -> "n/a"
      in
      Mcx.Util.Texttable.add_row table [ name; cell ])
    (List.sort compare rows);
  print_string (Mcx.Util.Texttable.render table)

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig3", fig3);
    ("fig5", fig5);
    ("fig6", fig6);
    ("table1", table1);
    ("fig7", fig7_fig8);
    ("fig8", fig7_fig8);
    ("table2", table2);
    ("yield", yield);
    ("mldefect", mldefect);
    ("ratesweep", ratesweep);
    ("ablation", ablation);
    ("tradeoff", tradeoff);
    ("aging", aging);
    ("transient", transient);
    ("margin", margin);
    ("micro", micro);
  ]

let () =
  (match Mcx.Util.Config.errors () with
  | [] -> ()
  | errs ->
    List.iter
      (fun { Mcx.Util.Config.knob; value; expected } ->
        Printf.eprintf "bench: invalid %s=%S (expected %s)\n" knob value expected)
      errs;
    exit 2);
  Mcx.Util.Telemetry.install_from_env ();
  let requested =
    match List.tl (Array.to_list Sys.argv) with
    | [] | [ "all" ] ->
      [
        "fig3"; "fig5"; "fig6"; "table1"; "fig7"; "table2"; "yield"; "mldefect";
        "ratesweep"; "ablation"; "tradeoff"; "aging"; "transient"; "margin"; "micro";
      ]
    | names -> names
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some run -> run ()
      | None ->
        Printf.eprintf "unknown experiment %S; known: %s\n" name
          (String.concat ", " (List.map fst experiments));
        exit 2)
    requested;
  if !wall_events > 0 then begin
    Printf.eprintf "[mcx] total     wall %7.2fs over %d Monte Carlo experiments (MCX_JOBS=%d)\n%!"
      !wall_seconds !wall_events
      (Mcx.Util.Pool.jobs (pool ()));
    write_bench_json "BENCH_main.json";
    Printf.eprintf "[mcx] wall times written to BENCH_main.json\n%!"
  end;
  (* Degradation protocol: tables above are already printed (partial
     where trials failed permanently); record the failures durably and
     exit nonzero so CI notices. *)
  let code = Mcx.Util.Checkpoint.finalize () in
  if code <> 0 then exit code
