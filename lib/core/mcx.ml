module Util = Mcx_util
module Logic = Mcx_logic
module Netlist = Mcx_netlist
module Crossbar = Mcx_crossbar
module Mapping = Mcx_mapping
module Benchmarks = Mcx_benchmarks
module Experiments = Mcx_experiments

type algorithm = Hybrid | Exact

let synthesize_two_level ?(include_il_row = false) ?(dual = true) cover =
  let chosen, report, used_dual =
    if dual then Mcx_crossbar.Cost.dual_choice ~include_il_row cover
    else (cover, Mcx_crossbar.Cost.two_level ~include_il_row cover, false)
  in
  (Mcx_crossbar.Layout.of_cover ~include_il_row chosen, report, used_dual)

let synthesize_multi_level ?fanin_limit cover =
  let mapped = Mcx_netlist.Tech_map.map_mo ?fanin_limit cover in
  (Mcx_crossbar.Multilevel.place mapped, Mcx_crossbar.Cost.multi_level mapped)

let map_defect_tolerant ?(include_il_row = false) ~algorithm cover defects =
  let algorithm =
    match algorithm with
    | Hybrid -> Mcx_mapping.Mapper.Hybrid
    | Exact -> Mcx_mapping.Mapper.Exact
  in
  Mcx_mapping.Mapper.map_cover
    { Mcx_mapping.Mapper.default with algorithm; include_il_row }
    cover defects

let verify ?defects layout = Mcx_crossbar.Sim.agrees_with_reference ?defects layout

let simulate ?defects layout inputs = Mcx_crossbar.Sim.run ?defects layout inputs
