(** Offline analysis of serving observability artifacts: [memx report].

    Ingests the three file formats the serving stack emits —
    [mcx-access/1] JSONL access logs ({!Access_log}), [mcx-metrics/1]
    snapshots ({!Mcx_util.Metrics.Snapshot.to_json}) and [mcx-trace/1]
    Chrome traces ({!Mcx_util.Telemetry}) — and renders per-stage
    latency tables, cache-efficiency summaries and an A/B diff with a
    configurable regression threshold (the CI gate).

    Everything here is pure: loaders return values, renderers return
    {!Mcx_util.Texttable.t}; only the [memx] driver prints. *)

type stage_stat = {
  stage : string;
  count : int;
  total_ns : int64;
  mean_ns : int64;
  p50_ns : int64;  (** bucket-edge estimates via
      {!Mcx_util.Telemetry.Report.percentile_of_buckets} *)
  p95_ns : int64;
  max_ns : int64;
}

type summary = {
  source : string;  (** file path (or label) the summary came from *)
  records : int;
  by_status : (string * int) list;  (** sorted by status *)
  by_cache : (string * int) list;  (** sorted by outcome *)
  bytes_total : int;
  has_times : bool;
      (** every record carried stage durations (log written with
          [MCX_TRACE_TIMES] unset) *)
  stages : stage_stat list;  (** in {!Access_log.stage_names} order;
      all-zero when [has_times] is false *)
}

val summarize : source:string -> Access_log.record list -> has_times:bool -> summary

val load_access : string -> (summary, string) result
(** Parse an access-log file; the error quotes the first bad line's
    number. An empty file is a valid summary of zero records. *)

val access_tables : summary -> Mcx_util.Texttable.t list
(** Cache/status overview table, plus the per-stage latency table when
    the log has timing. *)

val metrics_table : Mcx_util.Json_out.t -> (Mcx_util.Texttable.t, string) result
(** Render a parsed [mcx-metrics/1] document: one row per series
    (name, type, labels, value/count, mean where a histogram has
    [sum_ns]). *)

val load_metrics : string -> (Mcx_util.Texttable.t, string) result

val trace_table : Mcx_util.Json_out.t -> (Mcx_util.Texttable.t, string) result
(** Aggregate a parsed [mcx-trace/1] Chrome trace's complete-span
    ([ph = "X"]) events by name: events, total/mean/max duration. *)

val load_trace : string -> (Mcx_util.Texttable.t, string) result

(** {2 A/B diff} *)

type finding = {
  severity : [ `Mismatch | `Regression ];
      (** [`Mismatch]: a deterministic field (record count, status or
          cache-outcome breakdown) differs — two replays of the same
          request stream should never do this. [`Regression]: a stage's
          mean latency grew past the threshold. *)
  what : string;
  detail : string;
}

val diff :
  ?threshold:float -> ?min_total_ns:int64 -> summary -> summary -> finding list
(** [diff old_run new_run] compares two access-log summaries (in that
    argument order). [threshold] (default 1.5) flags a
    stage whose new mean exceeds [threshold * old mean]; stages whose
    new total is below [min_total_ns] (default 50ms) are ignored as
    noise, as are latency comparisons when either log lacks timing.
    Empty result = no mismatch, no regression. *)

val diff_table : finding list -> Mcx_util.Texttable.t
