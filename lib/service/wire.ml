module Json = Mcx_util.Json_out
module Mapper = Mcx_mapping.Mapper

let request_schema = "mcx-request/1"
let response_schema = "mcx-response/1"

type defects_spec =
  | Pristine
  | Explicit of {
      rows : int;
      cols : int;
      stuck_open : (int * int) list;
      stuck_closed : (int * int) list;
    }
  | Seeded of { seed : int; open_rate : float; closed_rate : float }

type config = {
  mapper : Mapper.config;
  verify : bool;
  deadline_ms : int option;
}

let default_config = { mapper = Mapper.default; verify = false; deadline_ms = None }

type request = {
  id : string;
  source : [ `Pla of string | `Benchmark of string ];
  defects : defects_spec;
  config : config;
}

(* --- request parsing ------------------------------------------------- *)

let ( let* ) = Result.bind

let field_opt name conv json =
  match Json.member name json with
  | None -> Ok None
  | Some v -> (
    match conv v with
    | Some x -> Ok (Some x)
    | None -> Error (Printf.sprintf "field %S has the wrong type" name))

let coordinate_list name json =
  let* pairs = field_opt name Json.to_list_opt json in
  match pairs with
  | None -> Ok []
  | Some pairs ->
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        match Json.to_list_opt item with
        | Some [ r; c ] -> (
          match (Json.to_int_opt r, Json.to_int_opt c) with
          | Some r, Some c -> Ok ((r, c) :: acc)
          | _ -> Error (Printf.sprintf "field %S holds a non-integer coordinate" name))
        | Some _ | None ->
          Error (Printf.sprintf "field %S must hold [row,col] pairs" name))
      (Ok []) pairs
    |> Result.map List.rev

let parse_defects json =
  match Json.member "defects" json with
  | None -> Ok Pristine
  | Some d -> (
    let* seed = field_opt "seed" Json.to_int_opt d in
    match seed with
    | Some seed ->
      let* open_rate = field_opt "open_rate" Json.to_float_opt d in
      let* closed_rate = field_opt "closed_rate" Json.to_float_opt d in
      Ok
        (Seeded
           {
             seed;
             open_rate = Option.value open_rate ~default:0.;
             closed_rate = Option.value closed_rate ~default:0.;
           })
    | None -> (
      let* rows = field_opt "rows" Json.to_int_opt d in
      let* cols = field_opt "cols" Json.to_int_opt d in
      match (rows, cols) with
      | Some rows, Some cols ->
        let* stuck_open = coordinate_list "open" d in
        let* stuck_closed = coordinate_list "closed" d in
        Ok (Explicit { rows; cols; stuck_open; stuck_closed })
      | _ -> Error "defects must carry either seed/open_rate or rows/cols/open/closed"))

let parse_config json =
  match Json.member "config" json with
  | None -> Ok default_config
  | Some c ->
    let* algorithm = field_opt "algorithm" Json.to_string_opt c in
    let* algorithm =
      match algorithm with
      | None -> Ok Mapper.default.Mapper.algorithm
      | Some name -> (
        match Mapper.algorithm_of_string name with
        | Some a -> Ok a
        | None -> Error (Printf.sprintf "unknown algorithm %S (hybrid|exact)" name))
    in
    let* order = field_opt "order" Json.to_string_opt c in
    let* order =
      match order with
      | None | Some "top_down" -> Ok Mcx_mapping.Hybrid.Top_down
      | Some "hardest_first" -> Ok Mcx_mapping.Hybrid.Hardest_first
      | Some name -> Error (Printf.sprintf "unknown order %S (top_down|hardest_first)" name)
    in
    let* include_il_row = field_opt "include_il_row" Json.to_bool_opt c in
    let* verify = field_opt "verify" Json.to_bool_opt c in
    let* deadline_ms = field_opt "deadline_ms" Json.to_int_opt c in
    Ok
      {
        mapper =
          {
            Mapper.algorithm;
            order;
            include_il_row = Option.value include_il_row ~default:false;
          };
        verify = Option.value verify ~default:false;
        deadline_ms;
      }

let request_of_line ~index line =
  let located msg = Printf.sprintf "request %d: %s" index msg in
  match Json.of_string line with
  | Error msg -> Error (located ("bad JSON: " ^ msg))
  | Ok json -> (
    match
      let* schema = field_opt "schema" Json.to_string_opt json in
      let* () =
        match schema with
        | Some s when s = request_schema -> Ok ()
        | Some s -> Error (Printf.sprintf "unsupported schema %S (want %s)" s request_schema)
        | None -> Error (Printf.sprintf "missing schema field (want %S)" request_schema)
      in
      let* id = field_opt "id" Json.to_string_opt json in
      let id = match id with Some id -> id | None -> Printf.sprintf "#%d" index in
      let* pla = field_opt "pla" Json.to_string_opt json in
      let* benchmark = field_opt "benchmark" Json.to_string_opt json in
      let* source =
        match (pla, benchmark) with
        | Some pla, None -> Ok (`Pla pla)
        | None, Some name -> Ok (`Benchmark name)
        | Some _, Some _ -> Error "give either pla or benchmark, not both"
        | None, None -> Error "missing function: give pla or benchmark"
      in
      let* defects = parse_defects json in
      let* config = parse_config json in
      Ok { id; source; defects; config }
    with
    | Ok r -> Ok r
    | Error msg -> Error (located msg))

(* --- request emission ------------------------------------------------ *)

let request_to_json r =
  let source_field =
    match r.source with
    | `Pla text -> ("pla", Json.Str text)
    | `Benchmark name -> ("benchmark", Json.Str name)
  in
  let coords pairs =
    Json.List (List.map (fun (i, j) -> Json.List [ Json.Int i; Json.Int j ]) pairs)
  in
  let defect_fields =
    match r.defects with
    | Pristine -> []
    | Explicit { rows; cols; stuck_open; stuck_closed } ->
      [
        ( "defects",
          Json.Obj
            [
              ("rows", Json.Int rows);
              ("cols", Json.Int cols);
              ("open", coords stuck_open);
              ("closed", coords stuck_closed);
            ] );
      ]
    | Seeded { seed; open_rate; closed_rate } ->
      [
        ( "defects",
          Json.Obj
            [
              ("seed", Json.Int seed);
              ("open_rate", Json.Float open_rate);
              ("closed_rate", Json.Float closed_rate);
            ] );
      ]
  in
  let order_field =
    match r.config.mapper.Mapper.order with
    | Mcx_mapping.Hybrid.Top_down -> []
    | Mcx_mapping.Hybrid.Hardest_first -> [ ("order", Json.Str "hardest_first") ]
  in
  let config_fields =
    [
      ( "config",
        Json.Obj
          ([
             ( "algorithm",
               Json.Str (Mapper.algorithm_to_string r.config.mapper.Mapper.algorithm) );
           ]
          @ order_field
          @ [ ("include_il_row", Json.Bool r.config.mapper.Mapper.include_il_row) ]
          @ [ ("verify", Json.Bool r.config.verify) ]
          @
          match r.config.deadline_ms with
          | None -> []
          | Some ms -> [ ("deadline_ms", Json.Int ms) ]) );
    ]
  in
  Json.Obj
    ([ ("schema", Json.Str request_schema); ("id", Json.Str r.id); source_field ]
    @ defect_fields @ config_fields)

(* --- responses ------------------------------------------------------- *)

type status = Ok_mapped | Infeasible | Deadline | Failed

type response = {
  id : string;
  status : status;
  digest : string option;
  rows : int option;
  cols : int option;
  assignment : int array option;
  verified : bool option;
  error : string option;
}

let response ~id status =
  {
    id;
    status;
    digest = None;
    rows = None;
    cols = None;
    assignment = None;
    verified = None;
    error = None;
  }

let status_to_string = function
  | Ok_mapped -> "ok"
  | Infeasible -> "infeasible"
  | Deadline -> "deadline"
  | Failed -> "error"

let response_to_line r =
  let opt name conv = function None -> [] | Some v -> [ (name, conv v) ] in
  Json.to_string
    (Json.Obj
       ([
          ("schema", Json.Str response_schema);
          ("id", Json.Str r.id);
          ("status", Json.Str (status_to_string r.status));
        ]
       @ opt "digest" (fun d -> Json.Str d) r.digest
       @ opt "rows" (fun n -> Json.Int n) r.rows
       @ opt "cols" (fun n -> Json.Int n) r.cols
       @ opt "assignment"
           (fun a -> Json.List (Array.to_list (Array.map (fun i -> Json.Int i) a)))
           r.assignment
       @ opt "verified" (fun b -> Json.Bool b) r.verified
       @ opt "error" (fun e -> Json.Str e) r.error))
