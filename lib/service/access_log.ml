(* One mcx-access/1 JSONL record per served request. The field order is
   frozen (tests pin it): equal records must be byte-equal so the
   deterministic projection can be diffed across runs and job counts. *)

module Json = Mcx_util.Json_out

let schema = "mcx-access/1"

type cache_outcome = Hit | Miss | Coalesced | None_

type record = {
  index : int;
  id : string;
  source : string;
  digest : string option;
  cache : cache_outcome;
  status : string;
  bytes : int;
  parse_ns : int64;
  resolve_ns : int64;
  compute_ns : int64;
  render_ns : int64;
}

let cache_outcome_to_string = function
  | Hit -> "hit"
  | Miss -> "miss"
  | Coalesced -> "coalesced"
  | None_ -> "none"

let cache_outcome_of_string = function
  | "hit" -> Some Hit
  | "miss" -> Some Miss
  | "coalesced" -> Some Coalesced
  | "none" -> Some None_
  | _ -> None

let stage_names = [ "parse"; "resolve"; "compute"; "render" ]

let stage_ns r = function
  | "parse" -> r.parse_ns
  | "resolve" -> r.resolve_ns
  | "compute" -> r.compute_ns
  | "render" -> r.render_ns
  | stage -> invalid_arg ("Access_log.stage_ns: " ^ stage)

(* [?config] is the run's mcx-config/1 digest (not the whole snapshot:
   one short field per line). It rides right after [schema] so readers
   can group lines by configuration; [of_json] ignores it, keeping old
   logs loadable. *)
let to_json ?config ~times r =
  Json.Obj
    ([ ("schema", Json.Str schema) ]
    @ (match config with Some d -> [ ("config", Json.Str d) ] | None -> [])
    @ [
       ("index", Json.Int r.index);
       ("id", Json.Str r.id);
       ("source", Json.Str r.source);
     ]
    @ (match r.digest with Some d -> [ ("digest", Json.Str d) ] | None -> [])
    @ [
        ("cache", Json.Str (cache_outcome_to_string r.cache));
        ("status", Json.Str r.status);
        ("bytes", Json.Int r.bytes);
      ]
    @
    if not times then []
    else
      List.map (fun stage -> (stage ^ "_ns", Json.Int (Int64.to_int (stage_ns r stage)))) stage_names
    )

let to_line ?config ~times r = Json.to_string (to_json ?config ~times r)

let of_json json =
  let str field = Option.bind (Json.member field json) Json.to_string_opt in
  let int field = Option.bind (Json.member field json) Json.to_int_opt in
  let ns field = Int64.of_int (Option.value (int field) ~default:0) in
  match str "schema" with
  | Some s when String.equal s schema -> (
    match (int "index", str "id", str "source", str "cache", str "status", int "bytes") with
    | Some index, Some id, Some source, Some cache, Some status, Some bytes -> (
      match cache_outcome_of_string cache with
      | None -> Error (Printf.sprintf "unknown cache outcome %S" cache)
      | Some cache ->
        Ok
          {
            index;
            id;
            source;
            digest = str "digest";
            cache;
            status;
            bytes;
            parse_ns = ns "parse_ns";
            resolve_ns = ns "resolve_ns";
            compute_ns = ns "compute_ns";
            render_ns = ns "render_ns";
          })
    | _ -> Error "missing access-record field")
  | Some s -> Error (Printf.sprintf "unexpected schema %S" s)
  | None -> Error "missing schema field"

let has_times json = Json.member "parse_ns" json <> None

let of_line line =
  match Json.of_string line with
  | Error e -> Error e
  | Ok json -> of_json json
