module Geometry = Mcx_crossbar.Geometry
module Defect_map = Mcx_crossbar.Defect_map
module Mo_cover = Mcx_logic.Mo_cover
module Mapper = Mcx_mapping.Mapper

type t = {
  request : Wire.request;
  cover : Mo_cover.t;
  defects : Defect_map.t;
  geometry : Geometry.t;
  row_perm : int array;
  digest : string;
}

let load_cover = function
  | `Pla text -> (
    match Mcx_logic.Pla.parse_string text with
    | parsed -> parsed.Mcx_logic.Pla.cover
    | exception Mcx_logic.Pla.Parse_error (line, msg) ->
      failwith (Printf.sprintf "bad PLA (line %d): %s" line msg))
  | `Benchmark name -> (
    match Mcx_benchmarks.Suite.find name with
    | bench -> Mcx_benchmarks.Suite.cover bench
    | exception Not_found -> failwith (Printf.sprintf "unknown benchmark %S" name))

let materialize_defects (request : Wire.request) geometry =
  let rows = Geometry.rows geometry and cols = Geometry.cols geometry in
  match request.Wire.defects with
  | Wire.Pristine -> Defect_map.create ~rows ~cols
  | Wire.Seeded { seed; open_rate; closed_rate } ->
    Defect_map.random (Mcx_util.Prng.create seed) ~rows ~cols ~open_rate ~closed_rate
  | Wire.Explicit { rows = r; cols = c; stuck_open; stuck_closed } ->
    if r <> rows || c <> cols then
      invalid_arg
        (Printf.sprintf "defect map is %dx%d but the cover's optimum crossbar is %dx%d" r c
           rows cols);
    let map = Defect_map.create ~rows ~cols in
    List.iter (fun (i, j) -> Defect_map.set map i j Mcx_crossbar.Junction.Stuck_open) stuck_open;
    List.iter
      (fun (i, j) -> Defect_map.set map i j Mcx_crossbar.Junction.Stuck_closed)
      stuck_closed;
    map

(* Permute the defect map's input columns by the cover's variable
   relabeling. Output result-pair columns and all rows stay put: the
   relabeling touches variables only. *)
let permute_defect_columns geometry ~var_perm defects =
  if Array.for_all2 (fun v p -> v = p) (Array.init (Array.length var_perm) Fun.id) var_perm
  then defects
  else begin
    let rows = Defect_map.rows defects and cols = Defect_map.cols defects in
    let permuted = Defect_map.create ~rows ~cols in
    for j = 0 to cols - 1 do
      let j' =
        match Geometry.column_role geometry j with
        | Geometry.Input_pos v -> Geometry.column_of_role geometry (Geometry.Input_pos var_perm.(v))
        | Geometry.Input_neg v -> Geometry.column_of_role geometry (Geometry.Input_neg var_perm.(v))
        | Geometry.Output_main _ | Geometry.Output_comp _ -> j
      in
      for i = 0 to rows - 1 do
        match Defect_map.get defects i j with
        | Mcx_crossbar.Junction.Functional -> ()
        | defect -> Defect_map.set permuted i j' defect
      done
    done;
    permuted
  end

let resolve (request : Wire.request) =
  Mcx_util.Telemetry.span "serve.canonicalize" @@ fun () ->
  let original = load_cover request.Wire.source in
  let config = request.Wire.config in
  let geometry =
    Geometry.create
      ~include_il_row:config.Wire.mapper.Mapper.include_il_row
      ~n_inputs:(Mo_cover.n_inputs original)
      ~n_outputs:(Mo_cover.n_outputs original)
      ~n_products:(Mo_cover.product_count original)
      ()
  in
  let defects_original = materialize_defects request geometry in
  let cover, row_perm, var_perm = Mo_cover.canonical original in
  let defects = permute_defect_columns geometry ~var_perm defects_original in
  let digest =
    Digest.to_hex
      (Digest.string
         (String.concat "\n"
            [
              Wire.request_schema;
              Mcx_logic.Pla.to_string cover;
              Defect_map.digest defects;
              Mapper.signature config.Wire.mapper;
              Printf.sprintf "verify=%b" config.Wire.verify;
            ]))
  in
  { request; cover; defects; geometry; row_perm; digest }

let translate_assignment t canonical_assignment =
  Array.init (Array.length canonical_assignment) (fun r ->
      match Geometry.row_role t.geometry r with
      | Geometry.Product p ->
        canonical_assignment.(Geometry.row_of_role t.geometry (Geometry.Product t.row_perm.(p)))
      | Geometry.Input_latch | Geometry.Output_row _ -> canonical_assignment.(r))
