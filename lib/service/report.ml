(* Loaders and renderers for memx report. Pure: the driver owns stdout
   and the exit status. *)

module Json = Mcx_util.Json_out
module Telemetry = Mcx_util.Telemetry
module Texttable = Mcx_util.Texttable

type stage_stat = {
  stage : string;
  count : int;
  total_ns : int64;
  mean_ns : int64;
  p50_ns : int64;
  p95_ns : int64;
  max_ns : int64;
}

type summary = {
  source : string;
  records : int;
  by_status : (string * int) list;
  by_cache : (string * int) list;
  bytes_total : int;
  has_times : bool;
  stages : stage_stat list;
}

let tally key_of records =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let k = key_of r in
      Hashtbl.replace tbl k (1 + Option.value (Hashtbl.find_opt tbl k) ~default:0))
    records;
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let stage_stat_of stage records =
  let buckets = Array.make Telemetry.n_buckets 0 in
  let count = ref 0 and total = ref 0L and max_ns = ref 0L in
  List.iter
    (fun r ->
      let ns = Access_log.stage_ns r stage in
      incr count;
      total := Int64.add !total ns;
      if Int64.compare ns !max_ns > 0 then max_ns := ns;
      let i = Telemetry.bucket_of_ns ns in
      buckets.(i) <- buckets.(i) + 1)
    records;
  {
    stage;
    count = !count;
    total_ns = !total;
    mean_ns = (if !count = 0 then 0L else Int64.div !total (Int64.of_int !count));
    p50_ns = Telemetry.Report.percentile_of_buckets buckets ~calls:!count ~p:0.50;
    p95_ns = Telemetry.Report.percentile_of_buckets buckets ~calls:!count ~p:0.95;
    max_ns = !max_ns;
  }

let summarize ~source records ~has_times =
  {
    source;
    records = List.length records;
    by_status = tally (fun r -> r.Access_log.status) records;
    by_cache =
      tally (fun r -> Access_log.cache_outcome_to_string r.Access_log.cache) records;
    bytes_total = List.fold_left (fun acc r -> acc + r.Access_log.bytes) 0 records;
    has_times;
    stages = List.map (fun stage -> stage_stat_of stage records) Access_log.stage_names;
  }

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec loop acc =
        match input_line ic with
        | line -> loop (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      loop [])

let load_access path =
  match read_lines path with
  | exception Sys_error msg -> Error msg
  | lines ->
    let rec parse lineno acc timed = function
      | [] -> Ok (List.rev acc, timed)
      | line :: rest when String.trim line = "" -> parse (lineno + 1) acc timed rest
      | line :: rest -> (
        match Json.of_string line with
        | Error e -> Error (Printf.sprintf "%s:%d: %s" path lineno e)
        | Ok json -> (
          match Access_log.of_json json with
          | Error e -> Error (Printf.sprintf "%s:%d: %s" path lineno e)
          | Ok r -> parse (lineno + 1) (r :: acc) (timed && Access_log.has_times json) rest))
    in
    Result.map
      (fun (records, timed) ->
        summarize ~source:path records ~has_times:(timed && records <> []))
      (parse 1 [] true lines)

let us ns = Printf.sprintf "%.1f" (Int64.to_float ns /. 1e3)
let ms ns = Printf.sprintf "%.2f" (Int64.to_float ns /. 1e6)

let access_tables summary =
  let overview =
    Texttable.create [ "access log"; "count" ]
  in
  Texttable.add_row overview [ "requests"; string_of_int summary.records ];
  Texttable.add_row overview [ "response bytes"; string_of_int summary.bytes_total ];
  Texttable.add_separator overview;
  List.iter
    (fun (status, n) ->
      Texttable.add_row overview [ "status " ^ status; string_of_int n ])
    summary.by_status;
  Texttable.add_separator overview;
  List.iter
    (fun (outcome, n) ->
      Texttable.add_row overview [ "cache " ^ outcome; string_of_int n ])
    summary.by_cache;
  if not summary.has_times then [ overview ]
  else begin
    let stages =
      Texttable.create
        [ "stage"; "count"; "total ms"; "mean us"; "p50 us"; "p95 us"; "max us" ]
    in
    List.iter
      (fun s ->
        Texttable.add_row stages
          [
            s.stage;
            string_of_int s.count;
            ms s.total_ns;
            us s.mean_ns;
            us s.p50_ns;
            us s.p95_ns;
            us s.max_ns;
          ])
      summary.stages;
    [ overview; stages ]
  end

(* --- mcx-metrics/1 --------------------------------------------------- *)

let render_labels labels =
  match labels with
  | [] -> ""
  | labels ->
    String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels)

let metrics_table json =
  let str field j = Option.bind (Json.member field j) Json.to_string_opt in
  match str "schema" json with
  | Some "mcx-metrics/1" -> (
    match Option.bind (Json.member "metrics" json) Json.to_list_opt with
    | None -> Error "mcx-metrics/1: missing metrics list"
    | Some metrics ->
      let table = Texttable.create [ "metric"; "type"; "labels"; "value"; "mean us" ] in
      List.iter
        (fun family ->
          let name = Option.value (str "name" family) ~default:"?" in
          let kind = Option.value (str "type" family) ~default:"?" in
          let series =
            Option.value
              (Option.bind (Json.member "series" family) Json.to_list_opt)
              ~default:[]
          in
          List.iter
            (fun s ->
              let labels =
                match Json.member "labels" s with
                | Some (Json.Obj fields) ->
                  List.filter_map
                    (fun (k, v) -> Option.map (fun v -> (k, v)) (Json.to_string_opt v))
                    fields
                | _ -> []
              in
              let value, mean =
                match
                  ( Option.bind (Json.member "value" s) Json.to_float_opt,
                    Option.bind (Json.member "count" s) Json.to_int_opt,
                    Option.bind (Json.member "sum_ns" s) Json.to_int_opt )
                with
                | Some v, _, _ ->
                  ((if Float.is_integer v then Printf.sprintf "%.0f" v
                    else Json.float_repr v),
                    "")
                | None, Some count, Some sum when count > 0 ->
                  ( string_of_int count,
                    us (Int64.div (Int64.of_int sum) (Int64.of_int count)) )
                | None, Some count, _ -> (string_of_int count, "")
                | None, None, _ -> ("?", "")
              in
              Texttable.add_row table [ name; kind; render_labels labels; value; mean ])
            series)
        metrics;
      Ok table)
  | Some s -> Error (Printf.sprintf "unexpected schema %S (want mcx-metrics/1)" s)
  | None -> Error "not an mcx-metrics/1 document (no schema field)"

let load_json path =
  match read_lines path with
  | exception Sys_error msg -> Error msg
  | lines -> Json.of_string (String.concat "\n" lines)

let load_metrics path = Result.bind (load_json path) metrics_table

(* --- mcx-trace/1 ----------------------------------------------------- *)

let trace_table json =
  match Option.bind (Json.member "traceEvents" json) Json.to_list_opt with
  | None -> Error "not a Chrome trace (no traceEvents list)"
  | Some events ->
    (* name -> (events, total us, max us); spans are ph="X" complete
       events with microsecond [dur]. *)
    let tbl : (string, int ref * float ref * float ref) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun ev ->
        match
          ( Option.bind (Json.member "ph" ev) Json.to_string_opt,
            Option.bind (Json.member "name" ev) Json.to_string_opt,
            Option.bind (Json.member "dur" ev) Json.to_float_opt )
        with
        | Some "X", Some name, Some dur_us ->
          let count, total, max_us =
            match Hashtbl.find_opt tbl name with
            | Some cell -> cell
            | None ->
              let cell = (ref 0, ref 0., ref 0.) in
              Hashtbl.add tbl name cell;
              cell
          in
          incr count;
          total := !total +. dur_us;
          if dur_us > !max_us then max_us := dur_us
        | _ -> ())
      events;
    let rows =
      Hashtbl.fold (fun name (c, t, m) acc -> (name, !c, !t, !m) :: acc) tbl []
      |> List.sort (fun (a, _, _, _) (b, _, _, _) -> String.compare a b)
    in
    let table = Texttable.create [ "span"; "events"; "total ms"; "mean us"; "max us" ] in
    List.iter
      (fun (name, count, total_us, max_us) ->
        Texttable.add_row table
          [
            name;
            string_of_int count;
            Printf.sprintf "%.2f" (total_us /. 1e3);
            Printf.sprintf "%.1f" (total_us /. float_of_int count);
            Printf.sprintf "%.1f" max_us;
          ])
      rows;
    Ok table

let load_trace path = Result.bind (load_json path) trace_table

(* --- A/B diff -------------------------------------------------------- *)

type finding = {
  severity : [ `Mismatch | `Regression ];
  what : string;
  detail : string;
}

let tally_diffs ~what old_tally new_tally =
  let keys =
    List.sort_uniq String.compare (List.map fst old_tally @ List.map fst new_tally)
  in
  List.filter_map
    (fun key ->
      let get t = Option.value (List.assoc_opt key t) ~default:0 in
      let o = get old_tally and n = get new_tally in
      if o = n then None
      else
        Some
          {
            severity = `Mismatch;
            what = Printf.sprintf "%s %s" what key;
            detail = Printf.sprintf "%d -> %d" o n;
          })
    keys

let diff ?(threshold = 1.5) ?(min_total_ns = 50_000_000L) old_ new_ =
  let mismatches =
    (if old_.records = new_.records then []
     else
       [
         {
           severity = `Mismatch;
           what = "request count";
           detail = Printf.sprintf "%d -> %d" old_.records new_.records;
         };
       ])
    @ tally_diffs ~what:"status" old_.by_status new_.by_status
    @ tally_diffs ~what:"cache" old_.by_cache new_.by_cache
  in
  let regressions =
    if not (old_.has_times && new_.has_times) then []
    else
      List.filter_map
        (fun (ns : stage_stat) ->
          match List.find_opt (fun o -> String.equal o.stage ns.stage) old_.stages with
          | None -> None
          | Some os ->
            if
              Int64.compare ns.total_ns min_total_ns >= 0
              && os.count > 0
              && Int64.compare os.mean_ns 0L > 0
              && Int64.to_float ns.mean_ns > threshold *. Int64.to_float os.mean_ns
            then
              Some
                {
                  severity = `Regression;
                  what = Printf.sprintf "stage %s mean" ns.stage;
                  detail =
                    Printf.sprintf "%s us -> %s us (%.2fx > %.2fx threshold)"
                      (us os.mean_ns) (us ns.mean_ns)
                      (Int64.to_float ns.mean_ns /. Int64.to_float os.mean_ns)
                      threshold;
                }
            else None)
        new_.stages
  in
  mismatches @ regressions

let diff_table findings =
  let table = Texttable.create [ "severity"; "what"; "old -> new" ] in
  List.iter
    (fun f ->
      Texttable.add_row table
        [
          (match f.severity with `Mismatch -> "mismatch" | `Regression -> "regression");
          f.what;
          f.detail;
        ])
    findings;
  table
