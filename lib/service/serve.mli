(** The batching, caching dispatcher behind [memx serve].

    A server value owns a {!Mcx_util.Pool} and a digest-keyed
    {!Mcx_util.Lru} cache of mapping results. Each batch of JSONL
    request lines is processed in three deterministic stages:

    + {b resolve} — every request is parsed and canonicalized
      ({!Canonical.resolve}) under [Pool.map_isolated], so one malformed
      request degrades to an error response instead of tearing the batch
      down;
    + {b coalesce} — requests are looked up in the cache in request
      order; distinct requests with equal canonical digests collapse
      onto one computation;
    + {b compute} — the remaining unique problems fan out over
      [Pool.map_isolated], results enter the cache in first-occurrence
      order, and responses are emitted in request order.

    Every stage is ordered by request index, never by completion, so a
    served batch is byte-identical at any [MCX_JOBS] value, and a
    response is byte-identical whether it was computed or replayed from
    the cache (responses carry no timing and no cache flags). Requests
    that set [deadline_ms] are the one documented exception: their
    status depends on measured wall time.

    Latency is recorded per request into the {!Mcx_util.Telemetry}
    log2-histogram geometry (and under the [serve.request] telemetry
    span name when tracing is on); batch p50/p95 derive from those
    buckets. *)

type batch_stats = {
  label : string;
  requests : int;
  hits : int;  (** cache hits *)
  misses : int;  (** computed fresh *)
  coalesced : int;  (** folded onto an equal digest in the same batch *)
  errors : int;  (** parse, resolve or compute failures *)
  infeasible : int;  (** well-formed requests with no valid mapping *)
  evictions : int;  (** cache evictions caused by this batch *)
  elapsed_ns : int64;  (** batch wall time *)
  p50_ns : int64;
  p95_ns : int64;  (** per-request latency percentiles (bucket upper edges) *)
}

type t

val default_cache_capacity : unit -> int
(** [MCX_CACHE_SIZE] when set to a non-negative integer, else 512. *)

val create :
  ?pool:Mcx_util.Pool.t ->
  ?cache_capacity:int ->
  ?on_access:(Access_log.record -> unit) ->
  unit ->
  t
(** [pool] defaults to {!Mcx_util.Pool.default} (honoring [MCX_JOBS]);
    [cache_capacity] to {!default_cache_capacity}. [on_access] receives
    one {!Access_log.record} per served request, strictly in
    request-index order after the batch finishes (never from a pool
    worker) — the [--access-log] sink. *)

val serve_batch : t -> label:string -> string list -> string list * batch_stats
(** Serve one batch of request lines. Returns one response line per
    request line (same order, no trailing newlines) plus the batch's
    stats. The cache persists across batches of the same server. *)

val batches : t -> batch_stats list
(** Stats of every served batch, oldest first. *)

val error_count : t -> int
(** Total error responses emitted so far. *)

val exit_code : t -> int
(** 0 when every request succeeded, 4 ("completed with partial
    results", matching the checkpoint degradation protocol) when any
    request yielded an error response. *)

val stats_json : t -> Mcx_util.Json_out.t
(** The [mcx-serve-stats/1] document: totals, cache counters with hit
    rate, and per-batch rows (schema in EXPERIMENTS.md). *)

val summary_table : t -> Mcx_util.Texttable.t
(** Human-readable per-batch summary for the [--stats] stderr report. *)

val record_metrics : t -> unit
(** One-shot export of server state into the {!Mcx_util.Metrics}
    registry: the cache counters ({!Mcx_util.Lru.record_metrics}), the
    pool size ({!Mcx_util.Pool.record_metrics}) and the served batch
    count. Per-request counters ([mcx_serve_requests_total],
    [mcx_serve_cache_total]) and stage histograms ([mcx_serve_stage_ns])
    are recorded live by {!serve_batch} instead. No-op while
    {!Mcx_util.Metrics.enabled} is false. *)
