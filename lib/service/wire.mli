(** Versioned JSONL wire schemas of the mapping service.

    One request per line ([mcx-request/1]), one response per line
    ([mcx-response/1]), both in the compact {!Mcx_util.Json_out} dialect.
    Responses are a pure function of the request (no timing, no cache
    flags), which is what lets the dispatcher guarantee byte-identical
    output across cache states and [MCX_JOBS] values.

    {2 Request}

    {v
{"schema":"mcx-request/1","id":"q1",
 "pla":".i 3\n.o 1\n11- 1\n.e"            (or "benchmark":"rd53"),
 "defects":{"rows":5,"cols":8,"open":[[0,1],[2,3]],"closed":[]}
           (or {"seed":7,"open_rate":0.1,"closed_rate":0.0}),
 "config":{"algorithm":"hybrid","order":"top_down",
           "include_il_row":false,"verify":true,"deadline_ms":250}}
    v}

    [id] defaults to ["#<line index>"]; [defects] defaults to a pristine
    crossbar; every [config] field is optional with the
    {!Mcx_mapping.Mapper.default} / no-verify / no-deadline defaults.
    Explicit defect coordinates must lie inside (and the [rows]/[cols]
    must equal) the cover's optimum geometry; seeded defects are
    generated at that geometry from the seed alone.

    {2 Response}

    {v
{"schema":"mcx-response/1","id":"q1","status":"ok","digest":"<hex>",
 "rows":5,"cols":8,"assignment":[2,0,1,4],"verified":true}
{"schema":"mcx-response/1","id":"q2","status":"infeasible","digest":"<hex>"}
{"schema":"mcx-response/1","id":"q3","status":"deadline","digest":"<hex>"}
{"schema":"mcx-response/1","id":"q4","status":"error","error":"..."}
    v}

    [assignment.(r)] is the physical crossbar row of FM row [r], in the
    {e request's own} row order (the dispatcher translates back from
    canonical space). [digest] is the canonical request digest — equal
    digests guarantee equal mapping problems. [verified] appears only
    when verification was requested and ran (covers with more than 16
    inputs skip it). *)

type defects_spec =
  | Pristine
  | Explicit of {
      rows : int;
      cols : int;
      stuck_open : (int * int) list;
      stuck_closed : (int * int) list;
    }
  | Seeded of { seed : int; open_rate : float; closed_rate : float }

type config = {
  mapper : Mcx_mapping.Mapper.config;
  verify : bool;
  deadline_ms : int option;
}

val default_config : config

type request = {
  id : string;
  source : [ `Pla of string | `Benchmark of string ];
  defects : defects_spec;
  config : config;
}

val request_schema : string
val response_schema : string

val request_of_line : index:int -> string -> (request, string) result
(** Parse one JSONL line; [index] (0-based position in the stream) names
    anonymous requests and is quoted in error messages. *)

val request_to_json : request -> Mcx_util.Json_out.t
(** Re-emit a request (used to generate bundled request files and by the
    round-trip tests). *)

type status = Ok_mapped | Infeasible | Deadline | Failed

type response = {
  id : string;
  status : status;
  digest : string option;
  rows : int option;
  cols : int option;
  assignment : int array option;
  verified : bool option;
  error : string option;
}

val status_to_string : status -> string
(** The wire encoding: ["ok"], ["infeasible"], ["deadline"], ["error"]
    — also the [status] field of {!Access_log} records. *)

val response : id:string -> status -> response
(** A response with every optional field empty. *)

val response_to_line : response -> string
(** Compact one-line rendering (no trailing newline); field order is
    fixed so equal responses are byte-equal. *)
