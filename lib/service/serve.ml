(* The three-stage batch dispatcher. Every per-request decision is made
   in request-index order from index-ordered outcome arrays, which is
   what makes served output byte-identical at any MCX_JOBS and across
   cache states. *)

module Pool = Mcx_util.Pool
module Lru = Mcx_util.Lru
module Telemetry = Mcx_util.Telemetry
module Timing = Mcx_util.Timing
module Json = Mcx_util.Json_out
module Mapper = Mcx_mapping.Mapper

type batch_stats = {
  label : string;
  requests : int;
  hits : int;
  misses : int;
  coalesced : int;
  errors : int;
  infeasible : int;
  evictions : int;
  elapsed_ns : int64;
  p50_ns : int64;
  p95_ns : int64;
}

type result_value =
  | Mapped of { assignment : int array; verified : bool option }
  | Unmappable

type t = {
  pool : Pool.t;
  cache : result_value Lru.t;
  mutable batches_rev : batch_stats list;
  mutable errors_total : int;
  mutable requests_total : int;
}

let default_cache_capacity () =
  match Sys.getenv_opt "MCX_CACHE_SIZE" with
  | Some v -> (
    match int_of_string_opt (String.trim v) with
    | Some n when n >= 0 -> n
    | Some _ | None -> 512)
  | None -> 512

let create ?pool ?cache_capacity () =
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let capacity =
    match cache_capacity with Some c -> c | None -> default_cache_capacity ()
  in
  {
    pool;
    cache = Lru.create ~name:"serve.cache" ~capacity ();
    batches_rev = [];
    errors_total = 0;
    requests_total = 0;
  }

(* Per-request disposition after the resolve stage, in line order. *)
type disposition =
  | Malformed of { id : string; error : string }
  | Ready of Canonical.t

(* How a ready request's result is obtained. *)
type source =
  | Hit of { value : result_value; lookup_ns : int64 }
  | Computed of string  (** digest; result in the batch-local table *)

let compute (canonical : Canonical.t) =
  Telemetry.span "serve.map" @@ fun () ->
  let t0 = Timing.monotonic_ns () in
  let config = canonical.Canonical.request.Wire.config in
  let result =
    match
      Mapper.map_cover config.Wire.mapper canonical.Canonical.cover
        canonical.Canonical.defects
    with
    | None -> Unmappable
    | Some layout ->
      let verified =
        if
          config.Wire.verify
          && Mcx_logic.Mo_cover.n_inputs canonical.Canonical.cover <= 16
        then
          Some
            (Mcx_crossbar.Sim.agrees_with_reference ~defects:canonical.Canonical.defects
               layout)
        else None
      in
      Mapped { assignment = layout.Mcx_crossbar.Layout.row_assignment; verified }
  in
  (result, Int64.sub (Timing.monotonic_ns ()) t0)

let response_of_result (canonical : Canonical.t) result ~elapsed_ns =
  let request = canonical.Canonical.request in
  let base = Wire.response ~id:request.Wire.id in
  let with_digest r = { r with Wire.digest = Some canonical.Canonical.digest } in
  match result with
  | Error msg -> with_digest { (base Wire.Failed) with Wire.error = Some msg }
  | Ok Unmappable -> with_digest (base Wire.Infeasible)
  | Ok (Mapped { assignment; verified }) -> (
    match request.Wire.config.Wire.deadline_ms with
    | Some budget_ms when Int64.compare elapsed_ns (Int64.mul (Int64.of_int budget_ms) 1_000_000L) > 0
      ->
      with_digest (base Wire.Deadline)
    | Some _ | None ->
      with_digest
        {
          (base Wire.Ok_mapped) with
          Wire.rows = Some (Mcx_crossbar.Geometry.rows canonical.Canonical.geometry);
          cols = Some (Mcx_crossbar.Geometry.cols canonical.Canonical.geometry);
          assignment = Some (Canonical.translate_assignment canonical assignment);
          verified;
        })

let percentile buckets ~calls ~total_ns ~max_ns ~p =
  Telemetry.Report.percentile_ns
    { Telemetry.Report.name = "serve.request"; calls; total_ns; max_ns; buckets }
    ~p

let serve_batch t ~label lines =
  Telemetry.span "serve.batch" @@ fun () ->
  let batch_t0 = Timing.monotonic_ns () in
  let lines = Array.of_list lines in
  let n = Array.length lines in
  t.requests_total <- t.requests_total + n;
  Telemetry.count ~n "serve.requests";
  (* Stage 1: parse + canonicalize, isolated per request. *)
  let dispositions =
    Telemetry.span "serve.parse" @@ fun () ->
    let parsed =
      Array.mapi (fun index line -> Wire.request_of_line ~index line) lines
    in
    let resolved =
      Pool.map_isolated t.pool n (fun ~attempt:_ i ->
          match parsed.(i) with
          | Error msg -> Error msg
          | Ok request -> Ok (Canonical.resolve request))
    in
    Array.init n (fun i ->
        let id_of_line () =
          match parsed.(i) with
          | Ok request -> request.Wire.id
          | Error _ -> Printf.sprintf "#%d" i
        in
        match resolved.(i) with
        | Pool.Done (Ok canonical) -> Ready canonical
        | Pool.Done (Error msg) -> Malformed { id = id_of_line (); error = msg }
        | Pool.Failed { error; _ } -> Malformed { id = id_of_line (); error }
        | Pool.Skipped ->
          Malformed { id = id_of_line (); error = "request cancelled" })
  in
  (* Stage 2: cache lookups in request order; coalesce equal digests. *)
  let cache_stats_before = Lru.stats t.cache in
  let pending = Hashtbl.create 16 in
  let miss_list = ref [] in
  let hits = ref 0 and coalesced = ref 0 in
  let sources =
    Array.map
      (function
        | Malformed _ -> None
        | Ready canonical -> (
          let digest = canonical.Canonical.digest in
          if Hashtbl.mem pending digest then begin
            incr coalesced;
            Some (Computed digest)
          end
          else
            let t0 = Timing.monotonic_ns () in
            match Lru.find t.cache digest with
            | Some value ->
              incr hits;
              Some (Hit { value; lookup_ns = Int64.sub (Timing.monotonic_ns ()) t0 })
            | None ->
              Hashtbl.add pending digest ();
              miss_list := (digest, canonical) :: !miss_list;
              Some (Computed digest)))
      dispositions
  in
  let misses = Array.of_list (List.rev !miss_list) in
  (* Stage 3: compute unique problems, isolated per problem. *)
  let outcomes =
    Pool.map_isolated t.pool (Array.length misses) (fun ~attempt:_ i ->
        compute (snd misses.(i)))
  in
  let results = Hashtbl.create 16 in
  Array.iteri
    (fun i outcome ->
      let digest = fst misses.(i) in
      match outcome with
      | Pool.Done (value, elapsed_ns) ->
        Lru.put t.cache digest value;
        Hashtbl.replace results digest (Ok value, elapsed_ns)
      | Pool.Failed { error; _ } -> Hashtbl.replace results digest (Error error, 0L)
      | Pool.Skipped -> Hashtbl.replace results digest (Error "request cancelled", 0L))
    outcomes;
  let evictions =
    (Lru.stats t.cache).Lru.evictions - cache_stats_before.Lru.evictions
  in
  (* Stage 4: responses in request order + latency accounting. *)
  let buckets = Array.make Telemetry.n_buckets 0 in
  let calls = ref 0 and total_ns = ref 0L and max_ns = ref 0L in
  let errors = ref 0 and infeasible = ref 0 in
  let observe ns =
    incr calls;
    total_ns := Int64.add !total_ns ns;
    if Int64.compare ns !max_ns > 0 then max_ns := ns;
    buckets.(Telemetry.bucket_of_ns ns) <- buckets.(Telemetry.bucket_of_ns ns) + 1;
    Telemetry.observe_ns "serve.request" ns
  in
  let responses =
    Telemetry.span "serve.render" @@ fun () ->
    Array.to_list
      (Array.mapi
         (fun i disposition ->
           let response =
             match disposition with
             | Malformed { id; error } ->
               { (Wire.response ~id Wire.Failed) with Wire.error = Some error }
             | Ready canonical -> (
               let result, elapsed_ns =
                 match sources.(i) with
                 | Some (Hit { value; lookup_ns }) -> (Ok value, lookup_ns)
                 | Some (Computed digest) -> (
                   match Hashtbl.find_opt results digest with
                   | Some (result, elapsed_ns) -> (result, elapsed_ns)
                   | None -> (Error "internal: result missing", 0L))
                 | None -> (Error "internal: no source", 0L)
               in
               observe elapsed_ns;
               response_of_result canonical result ~elapsed_ns)
           in
           (match response.Wire.status with
           | Wire.Failed -> incr errors
           | Wire.Infeasible -> incr infeasible
           | Wire.Ok_mapped | Wire.Deadline -> ());
           Wire.response_to_line response)
         dispositions)
  in
  t.errors_total <- t.errors_total + !errors;
  let stats =
    {
      label;
      requests = n;
      hits = !hits;
      misses = Array.length misses;
      coalesced = !coalesced;
      errors = !errors;
      infeasible = !infeasible;
      evictions;
      elapsed_ns = Int64.sub (Timing.monotonic_ns ()) batch_t0;
      p50_ns = percentile buckets ~calls:!calls ~total_ns:!total_ns ~max_ns:!max_ns ~p:0.50;
      p95_ns = percentile buckets ~calls:!calls ~total_ns:!total_ns ~max_ns:!max_ns ~p:0.95;
    }
  in
  t.batches_rev <- stats :: t.batches_rev;
  (responses, stats)

let batches t = List.rev t.batches_rev
let error_count t = t.errors_total
let exit_code t = if t.errors_total > 0 then 4 else 0

let hit_rate ~hits ~misses =
  let lookups = hits + misses in
  if lookups = 0 then 0. else float_of_int hits /. float_of_int lookups

let stats_json t =
  let cache = Lru.stats t.cache in
  let batch_json (b : batch_stats) =
    Json.Obj
      [
        ("label", Json.Str b.label);
        ("requests", Json.Int b.requests);
        ("hits", Json.Int b.hits);
        ("misses", Json.Int b.misses);
        ("coalesced", Json.Int b.coalesced);
        ("errors", Json.Int b.errors);
        ("infeasible", Json.Int b.infeasible);
        ("evictions", Json.Int b.evictions);
        ("hit_rate", Json.Float (hit_rate ~hits:b.hits ~misses:b.misses));
        ("elapsed_ns", Json.Int (Int64.to_int b.elapsed_ns));
        ("p50_ns", Json.Int (Int64.to_int b.p50_ns));
        ("p95_ns", Json.Int (Int64.to_int b.p95_ns));
      ]
  in
  Json.Obj
    [
      ("schema", Json.Str "mcx-serve-stats/1");
      ("requests", Json.Int t.requests_total);
      ("errors", Json.Int t.errors_total);
      ( "cache",
        Json.Obj
          [
            ("capacity", Json.Int (Lru.capacity t.cache));
            ("size", Json.Int (Lru.length t.cache));
            ("hits", Json.Int cache.Lru.hits);
            ("misses", Json.Int cache.Lru.misses);
            ("insertions", Json.Int cache.Lru.insertions);
            ("evictions", Json.Int cache.Lru.evictions);
            ( "hit_rate",
              Json.Float (hit_rate ~hits:cache.Lru.hits ~misses:cache.Lru.misses) );
          ] );
      ("batches", Json.List (List.map batch_json (batches t)));
    ]

let summary_table t =
  let table =
    Mcx_util.Texttable.create
      [
        "batch"; "requests"; "hits"; "misses"; "coalesced"; "errors"; "hit%";
        "elapsed ms"; "p50 us"; "p95 us";
      ]
  in
  List.iter
    (fun (b : batch_stats) ->
      Mcx_util.Texttable.add_row table
        [
          b.label;
          string_of_int b.requests;
          string_of_int b.hits;
          string_of_int b.misses;
          string_of_int b.coalesced;
          string_of_int b.errors;
          Printf.sprintf "%.1f" (100. *. hit_rate ~hits:b.hits ~misses:b.misses);
          Printf.sprintf "%.2f" (Int64.to_float b.elapsed_ns /. 1e6);
          Printf.sprintf "%.1f" (Int64.to_float b.p50_ns /. 1e3);
          Printf.sprintf "%.1f" (Int64.to_float b.p95_ns /. 1e3);
        ])
    (batches t);
  table
