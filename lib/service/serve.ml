(* The three-stage batch dispatcher. Every per-request decision is made
   in request-index order from index-ordered outcome arrays, which is
   what makes served output byte-identical at any MCX_JOBS and across
   cache states. *)

module Pool = Mcx_util.Pool
module Lru = Mcx_util.Lru
module Telemetry = Mcx_util.Telemetry
module Metrics = Mcx_util.Metrics
module Timing = Mcx_util.Timing
module Json = Mcx_util.Json_out
module Mapper = Mcx_mapping.Mapper

type batch_stats = {
  label : string;
  requests : int;
  hits : int;
  misses : int;
  coalesced : int;
  errors : int;
  infeasible : int;
  evictions : int;
  elapsed_ns : int64;
  p50_ns : int64;
  p95_ns : int64;
}

type result_value =
  | Mapped of { assignment : int array; verified : bool option }
  | Unmappable

type t = {
  pool : Pool.t;
  cache : result_value Lru.t;
  on_access : (Access_log.record -> unit) option;
  mutable batches_rev : batch_stats list;
  mutable errors_total : int;
  mutable requests_total : int;
}

(* MCX_CACHE_SIZE sizes the mapping cache; responses are cache-invariant
   ("warm = cold" test), only latency changes. Read (validated) through
   the Config registry, the sanctioned env boundary. *)
let default_cache_capacity () = Mcx_util.Config.cache_size ()

let create ?pool ?cache_capacity ?on_access () =
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let capacity =
    match cache_capacity with Some c -> c | None -> default_cache_capacity ()
  in
  {
    pool;
    cache = Lru.create ~name:"serve.cache" ~capacity ();
    on_access;
    batches_rev = [];
    errors_total = 0;
    requests_total = 0;
  }

(* Per-request disposition after the resolve stage, in line order. *)
type disposition =
  | Malformed of { id : string; error : string }
  | Ready of Canonical.t

(* How a ready request's result is obtained. [Coalesced] and [Missed]
   both read the batch-local result table; they differ only in the
   access-log outcome (and a coalesced request did no work itself). *)
type source =
  | Hit of { value : result_value; lookup_ns : int64 }
  | Coalesced of string
  | Missed of string

let compute (canonical : Canonical.t) =
  Telemetry.span "serve.map" @@ fun () ->
  let t0 = Timing.monotonic_ns () in
  let config = canonical.Canonical.request.Wire.config in
  let result =
    match
      Mapper.map_cover config.Wire.mapper canonical.Canonical.cover
        canonical.Canonical.defects
    with
    | None -> Unmappable
    | Some layout ->
      let verified =
        if
          config.Wire.verify
          && Mcx_logic.Mo_cover.n_inputs canonical.Canonical.cover <= 16
        then
          Some
            (Mcx_crossbar.Sim.agrees_with_reference ~defects:canonical.Canonical.defects
               layout)
        else None
      in
      Mapped { assignment = layout.Mcx_crossbar.Layout.row_assignment; verified }
  in
  (result, Int64.sub (Timing.monotonic_ns ()) t0)

let response_of_result (canonical : Canonical.t) result ~elapsed_ns =
  let request = canonical.Canonical.request in
  let base = Wire.response ~id:request.Wire.id in
  let with_digest r = { r with Wire.digest = Some canonical.Canonical.digest } in
  match result with
  | Error msg -> with_digest { (base Wire.Failed) with Wire.error = Some msg }
  | Ok Unmappable -> with_digest (base Wire.Infeasible)
  | Ok (Mapped { assignment; verified }) -> (
    match request.Wire.config.Wire.deadline_ms with
    | Some budget_ms when Int64.compare elapsed_ns (Int64.mul (Int64.of_int budget_ms) 1_000_000L) > 0
      ->
      with_digest (base Wire.Deadline)
    | Some _ | None ->
      with_digest
        {
          (base Wire.Ok_mapped) with
          Wire.rows = Some (Mcx_crossbar.Geometry.rows canonical.Canonical.geometry);
          cols = Some (Mcx_crossbar.Geometry.cols canonical.Canonical.geometry);
          assignment = Some (Canonical.translate_assignment canonical assignment);
          verified;
        })

let declare_metrics () =
  if Metrics.enabled () then begin
    Metrics.declare ~help:"requests served, by response status" Metrics.Counter
      "mcx_serve_requests_total";
    Metrics.declare ~help:"requests served, by cache outcome" Metrics.Counter
      "mcx_serve_cache_total";
    Metrics.declare ~help:"per-request stage durations" Metrics.Histogram
      "mcx_serve_stage_ns"
  end

let observe_access (record : Access_log.record) =
  if Metrics.enabled () then begin
    Metrics.inc
      ~labels:[ ("status", record.Access_log.status) ]
      "mcx_serve_requests_total";
    Metrics.inc
      ~labels:
        [ ("outcome", Access_log.cache_outcome_to_string record.Access_log.cache) ]
      "mcx_serve_cache_total";
    List.iter
      (fun stage ->
        Metrics.observe_ns
          ~labels:[ ("stage", stage) ]
          "mcx_serve_stage_ns"
          (Access_log.stage_ns record stage))
      Access_log.stage_names
  end

let serve_batch t ~label lines =
  Telemetry.span "serve.batch" @@ fun () ->
  let batch_t0 = Timing.monotonic_ns () in
  let lines = Array.of_list lines in
  let n = Array.length lines in
  t.requests_total <- t.requests_total + n;
  Telemetry.count ~n "serve.requests";
  declare_metrics ();
  let parse_ns = Array.make n 0L in
  let resolve_ns = Array.make n 0L in
  (* Stage 1: parse + canonicalize, isolated per request. *)
  let dispositions =
    Telemetry.span "serve.parse" @@ fun () ->
    let parsed =
      Array.mapi
        (fun index line ->
          let t0 = Timing.monotonic_ns () in
          let r = Wire.request_of_line ~index line in
          parse_ns.(index) <- Int64.sub (Timing.monotonic_ns ()) t0;
          r)
        lines
    in
    let resolved =
      Pool.map_isolated t.pool n (fun ~attempt:_ i ->
          match parsed.(i) with
          | Error msg -> (Error msg, 0L)
          | Ok request ->
            let t0 = Timing.monotonic_ns () in
            let canonical = Canonical.resolve request in
            (Ok canonical, Int64.sub (Timing.monotonic_ns ()) t0))
    in
    Array.init n (fun i ->
        let id_of_line () =
          match parsed.(i) with
          | Ok request -> request.Wire.id
          | Error _ -> Printf.sprintf "#%d" i
        in
        match resolved.(i) with
        | Pool.Done (Ok canonical, ns) ->
          resolve_ns.(i) <- ns;
          Ready canonical
        | Pool.Done (Error msg, _) -> Malformed { id = id_of_line (); error = msg }
        | Pool.Failed { error; _ } -> Malformed { id = id_of_line (); error }
        | Pool.Skipped ->
          Malformed { id = id_of_line (); error = "request cancelled" })
  in
  (* Stage 2: cache lookups in request order; coalesce equal digests. *)
  let cache_stats_before = Lru.stats t.cache in
  let pending = Hashtbl.create 16 in
  let miss_list = ref [] in
  let hits = ref 0 and coalesced = ref 0 in
  let sources =
    Array.map
      (function
        | Malformed _ -> None
        | Ready canonical -> (
          let digest = canonical.Canonical.digest in
          if Hashtbl.mem pending digest then begin
            incr coalesced;
            Some (Coalesced digest)
          end
          else
            let t0 = Timing.monotonic_ns () in
            match Lru.find t.cache digest with
            | Some value ->
              incr hits;
              Some (Hit { value; lookup_ns = Int64.sub (Timing.monotonic_ns ()) t0 })
            | None ->
              Hashtbl.add pending digest ();
              miss_list := (digest, canonical) :: !miss_list;
              Some (Missed digest)))
      dispositions
  in
  let misses = Array.of_list (List.rev !miss_list) in
  (* Stage 3: compute unique problems, isolated per problem. *)
  let outcomes =
    Pool.map_isolated t.pool (Array.length misses) (fun ~attempt:_ i ->
        compute (snd misses.(i)))
  in
  let results = Hashtbl.create 16 in
  Array.iteri
    (fun i outcome ->
      let digest = fst misses.(i) in
      match outcome with
      | Pool.Done (value, elapsed_ns) ->
        Lru.put t.cache digest value;
        Hashtbl.replace results digest (Ok value, elapsed_ns)
      | Pool.Failed { error; _ } -> Hashtbl.replace results digest (Error error, 0L)
      | Pool.Skipped -> Hashtbl.replace results digest (Error "request cancelled", 0L))
    outcomes;
  let evictions =
    (Lru.stats t.cache).Lru.evictions - cache_stats_before.Lru.evictions
  in
  (* Stage 4: responses in request order + latency accounting. *)
  let buckets = Array.make Telemetry.n_buckets 0 in
  let calls = ref 0 in
  let errors = ref 0 and infeasible = ref 0 in
  let observe ns =
    incr calls;
    buckets.(Telemetry.bucket_of_ns ns) <- buckets.(Telemetry.bucket_of_ns ns) + 1;
    Telemetry.observe_ns "serve.request" ns
  in
  let rendered =
    Telemetry.span "serve.render" @@ fun () ->
    Array.mapi
      (fun i disposition ->
        let response, compute_ns =
          match disposition with
          | Malformed { id; error } ->
            ({ (Wire.response ~id Wire.Failed) with Wire.error = Some error }, 0L)
          | Ready canonical ->
            let result, elapsed_ns, compute_ns =
              match sources.(i) with
              | Some (Hit { value; lookup_ns }) -> (Ok value, lookup_ns, lookup_ns)
              | Some (Coalesced digest | Missed digest) -> (
                let coalesced =
                  match sources.(i) with Some (Coalesced _) -> true | _ -> false
                in
                match Hashtbl.find_opt results digest with
                | Some (result, elapsed_ns) ->
                  (result, elapsed_ns, if coalesced then 0L else elapsed_ns)
                | None -> (Error "internal: result missing", 0L, 0L))
              | None -> (Error "internal: no source", 0L, 0L)
            in
            observe elapsed_ns;
            (response_of_result canonical result ~elapsed_ns, compute_ns)
        in
        (match response.Wire.status with
        | Wire.Failed -> incr errors
        | Wire.Infeasible -> incr infeasible
        | Wire.Ok_mapped | Wire.Deadline -> ());
        let t0 = Timing.monotonic_ns () in
        let line = Wire.response_to_line response in
        let render_ns = Int64.sub (Timing.monotonic_ns ()) t0 in
        let source, digest =
          match disposition with
          | Malformed _ -> ("invalid", None)
          | Ready canonical ->
            ( (match canonical.Canonical.request.Wire.source with
              | `Pla _ -> "pla"
              | `Benchmark _ -> "benchmark"),
              Some canonical.Canonical.digest )
        in
        let record =
          {
            Access_log.index = i;
            id = response.Wire.id;
            source;
            digest;
            cache =
              (match sources.(i) with
              | Some (Hit _) -> Access_log.Hit
              | Some (Coalesced _) -> Access_log.Coalesced
              | Some (Missed _) -> Access_log.Miss
              | None -> Access_log.None_);
            status = Wire.status_to_string response.Wire.status;
            bytes = String.length line;
            parse_ns = parse_ns.(i);
            resolve_ns = resolve_ns.(i);
            compute_ns;
            render_ns;
          }
        in
        (line, record))
      dispositions
  in
  (* Access records strictly in request-index order, after the whole
     batch rendered: the sink sees the same sequence at any MCX_JOBS. *)
  Array.iter
    (fun (_, record) ->
      observe_access record;
      match t.on_access with Some sink -> sink record | None -> ())
    rendered;
  let responses = Array.to_list (Array.map fst rendered) in
  t.errors_total <- t.errors_total + !errors;
  let stats =
    {
      label;
      requests = n;
      hits = !hits;
      misses = Array.length misses;
      coalesced = !coalesced;
      errors = !errors;
      infeasible = !infeasible;
      evictions;
      elapsed_ns = Int64.sub (Timing.monotonic_ns ()) batch_t0;
      p50_ns = Telemetry.Report.percentile_of_buckets buckets ~calls:!calls ~p:0.50;
      p95_ns = Telemetry.Report.percentile_of_buckets buckets ~calls:!calls ~p:0.95;
    }
  in
  t.batches_rev <- stats :: t.batches_rev;
  (responses, stats)

let batches t = List.rev t.batches_rev
let error_count t = t.errors_total
let exit_code t = if t.errors_total > 0 then 4 else 0

let hit_rate ~hits ~misses =
  let lookups = hits + misses in
  if lookups = 0 then 0. else float_of_int hits /. float_of_int lookups

let stats_json t =
  let cache = Lru.stats t.cache in
  let batch_json (b : batch_stats) =
    Json.Obj
      [
        ("label", Json.Str b.label);
        ("requests", Json.Int b.requests);
        ("hits", Json.Int b.hits);
        ("misses", Json.Int b.misses);
        ("coalesced", Json.Int b.coalesced);
        ("errors", Json.Int b.errors);
        ("infeasible", Json.Int b.infeasible);
        ("evictions", Json.Int b.evictions);
        ("hit_rate", Json.Float (hit_rate ~hits:b.hits ~misses:b.misses));
        ("elapsed_ns", Json.Int (Int64.to_int b.elapsed_ns));
        ("p50_ns", Json.Int (Int64.to_int b.p50_ns));
        ("p95_ns", Json.Int (Int64.to_int b.p95_ns));
      ]
  in
  Json.Obj
    [
      ("schema", Json.Str "mcx-serve-stats/1");
      (* Full config snapshot: stats carry wall-clock fields already, so
         they are never byte-diffed across job counts. *)
      ("config", Mcx_util.Config.snapshot ());
      ("requests", Json.Int t.requests_total);
      ("errors", Json.Int t.errors_total);
      ( "cache",
        Json.Obj
          [
            ("capacity", Json.Int (Lru.capacity t.cache));
            ("size", Json.Int (Lru.length t.cache));
            ("hits", Json.Int cache.Lru.hits);
            ("misses", Json.Int cache.Lru.misses);
            ("insertions", Json.Int cache.Lru.insertions);
            ("evictions", Json.Int cache.Lru.evictions);
            ( "hit_rate",
              Json.Float (hit_rate ~hits:cache.Lru.hits ~misses:cache.Lru.misses) );
          ] );
      ("batches", Json.List (List.map batch_json (batches t)));
    ]

let summary_table t =
  let table =
    Mcx_util.Texttable.create
      [
        "batch"; "requests"; "hits"; "misses"; "coalesced"; "errors"; "hit%";
        "elapsed ms"; "p50 us"; "p95 us";
      ]
  in
  List.iter
    (fun (b : batch_stats) ->
      Mcx_util.Texttable.add_row table
        [
          b.label;
          string_of_int b.requests;
          string_of_int b.hits;
          string_of_int b.misses;
          string_of_int b.coalesced;
          string_of_int b.errors;
          Printf.sprintf "%.1f" (100. *. hit_rate ~hits:b.hits ~misses:b.misses);
          Printf.sprintf "%.2f" (Int64.to_float b.elapsed_ns /. 1e6);
          Printf.sprintf "%.1f" (Int64.to_float b.p50_ns /. 1e3);
          Printf.sprintf "%.1f" (Int64.to_float b.p95_ns /. 1e3);
        ])
    (batches t);
  table

let record_metrics t =
  if Metrics.enabled () then begin
    Lru.record_metrics t.cache;
    Pool.record_metrics t.pool;
    Metrics.declare ~help:"batches served" Metrics.Counter "mcx_serve_batches_total";
    let batches = List.length t.batches_rev in
    if batches > 0 then Metrics.inc ~n:batches "mcx_serve_batches_total"
  end
