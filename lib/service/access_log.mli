(** Structured per-request access records ([mcx-access/1]).

    [memx serve --access-log <path>] writes one JSONL record per served
    request, in request-index order:

    {v
{"schema":"mcx-access/1","index":0,"id":"q1","source":"benchmark",
 "digest":"<hex>","cache":"miss","status":"ok","bytes":123,
 "parse_ns":1200,"resolve_ns":51000,"compute_ns":820000,"render_ns":900}
    v}

    Every field except the four stage durations is a pure function of
    the request stream and the cache state, so it is byte-identical at
    any [MCX_JOBS] and across cache-equivalent runs. The durations are
    measurements; with [times = false] (the CLI honors
    [MCX_TRACE_TIMES=0], mirroring the telemetry summary) they are
    omitted and the whole record is the deterministic projection.
    [digest] is absent exactly when the request never resolved
    ([cache = "none"], [status = "error"]). *)

type cache_outcome =
  | Hit  (** served from the cross-batch result cache *)
  | Miss  (** computed fresh *)
  | Coalesced  (** folded onto an equal digest earlier in the same batch *)
  | None_  (** request never reached the cache (parse/resolve failure) *)

type record = {
  index : int;  (** 0-based position in the batch *)
  id : string;
  source : string;  (** ["pla"], ["benchmark"], or ["invalid"] when unparsed *)
  digest : string option;  (** canonical content digest *)
  cache : cache_outcome;
  status : string;  (** the response's status string *)
  bytes : int;  (** rendered response-line length *)
  parse_ns : int64;
  resolve_ns : int64;
  compute_ns : int64;  (** cache-lookup time for hits, 0 for coalesced *)
  render_ns : int64;
}

val schema : string

val stage_names : string list
(** [["parse"; "resolve"; "compute"; "render"]] — the fixed stage order
    used by the record fields and the [memx report] tables. *)

val stage_ns : record -> string -> int64
(** Duration of one {!stage_names} stage.
    @raise Invalid_argument on an unknown stage. *)

val cache_outcome_to_string : cache_outcome -> string

val to_json : ?config:string -> times:bool -> record -> Mcx_util.Json_out.t
(** Fixed field order (schema, config?, index, id, source, digest?,
    cache, status, bytes, then the [*_ns] stage durations);
    [times = false] drops the durations. [?config] is the run's
    [mcx-config/1] digest ({!Mcx_util.Config.digest}); the CLI passes
    the semantic-only digest on the deterministic projection so logs
    stay byte-identical across job counts. *)

val to_line : ?config:string -> times:bool -> record -> string
(** Compact one-line rendering, no trailing newline. *)

val of_json : Mcx_util.Json_out.t -> (record, string) result
(** Lenient reader for [memx report]: absent durations read as 0 (see
    {!has_times}). *)

val of_line : string -> (record, string) result

val has_times : Mcx_util.Json_out.t -> bool
(** Whether the record carries stage durations (i.e. was written with
    [times = true]). *)
