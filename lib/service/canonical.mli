(** Canonical form and content digest of one mapping request.

    The mapping algorithms are pure functions of (cover, defect map,
    mapper config), so requests can be memoized — but only if equivalent
    requests key to the same digest. Resolution therefore normalizes the
    problem before digesting: product rows are sorted and input
    variables relabeled by {!Mcx_logic.Mo_cover.canonical}, and the
    defect map's input columns are permuted by the same relabeling
    (positive and complemented literal columns move with their
    variable). A row assignment computed in canonical space is valid in
    the original space verbatim on the column side, and translates on
    the row side through the recorded row permutation —
    {!translate_assignment}. *)

type t = {
  request : Wire.request;
  cover : Mcx_logic.Mo_cover.t;  (** canonical cover *)
  defects : Mcx_crossbar.Defect_map.t;  (** canonical defect map *)
  geometry : Mcx_crossbar.Geometry.t;
      (** optimum geometry — identical for the original and canonical
          problems *)
  row_perm : int array;  (** original product row -> canonical product row *)
  digest : string;
      (** hex MD5 over (canonical PLA, canonical defect digest, mapper
          signature, verify flag) *)
}

val resolve : Wire.request -> t
(** Parse/locate the cover, materialize the defect map at the cover's
    optimum geometry, canonicalize both, digest. Raises on any invalid
    request ([Failure] for unknown benchmarks and malformed PLA text,
    [Invalid_argument] for defect maps that do not fit the geometry) —
    the dispatcher runs it under {!Mcx_util.Pool.map_isolated} and turns
    the raise into a structured error response. *)

val translate_assignment : t -> int array -> int array
(** Rewrite a canonical-space FM row assignment into the request's own
    row order (input-latch and output rows are fixed points; product row
    [i] reads canonical row [row_perm.(i)]). *)
