(** SARIF 2.1.0 export (the static-analysis interchange format GitHub
    code scanning ingests), so mcx-lint findings annotate PRs.

    One [run] with the full rule registry under [tool.driver.rules];
    findings become [results] with 1-based physical locations and — for
    interprocedural findings — a [codeFlows] thread flow tracing the
    source→sink call chain. *)

val version : string
(** Reported as [tool.driver.version]. *)

val report : Finding.t list -> string
(** Compact JSON document (single trailing newline not included). *)
