(* Whole-program call-graph extraction from .cmt Typedtrees. See the mli
   for the model. The walk is a Tast_iterator with an overridden [expr]
   that threads mutable per-node context: the builder under construction,
   the catch-all-try nesting depth (contains Raise effects), and the
   stack of manually opened Telemetry spans (attributes calls made while
   a span is open to that span site). *)

type source_kind = Nondet | Io_out | Io_err | Raise

type source = {
  kind : source_kind;
  name : string;
  sline : int;
  scol : int;
  in_span : (int * int) option;
}

type edge = {
  callee : string;
  eline : int;
  ecol : int;
  raise_protected : bool;
  e_in_span : (int * int) option;
}

type span_site = { spline : int; spcol : int }

type closure_kind = Pool_closure | Replay_closure

type closure_site = {
  ckind : closure_kind;
  cfn : string;
  cline : int;
  ccol : int;
  target : string;
}

type node = {
  id : string;
  nfile : string;
  nline : int;
  ncol : int;
  mutable_state : bool;
  entrypoint : bool;
  sources : source list;
  edges : edge list;
  spans : span_site list;
  closures : closure_site list;
}

type summary = {
  modname : string;
  src : string;
  nodes : node list;
  typed_findings : Finding.t list;
}

(* --- canonical names -------------------------------------------------- *)

(* "Mcx_util__Pool" -> ["Mcx_util"; "Pool"]. Only module-looking segments
   (leading uppercase) are expanded; a value named [foo__bar] survives. *)
let split_mangled seg =
  let n = String.length seg in
  let parts = ref [] in
  let start = ref 0 in
  let i = ref 0 in
  while !i + 1 < n do
    if seg.[!i] = '_' && seg.[!i + 1] = '_' then begin
      if !i > !start then parts := String.sub seg !start (!i - !start) :: !parts;
      i := !i + 2;
      start := !i
    end
    else incr i
  done;
  if n > !start then parts := String.sub seg !start (n - !start) :: !parts;
  List.rev !parts

let expand_seg seg =
  if seg <> "" && seg.[0] >= 'A' && seg.[0] <= 'Z' then split_mangled seg else [ seg ]

let canonical name =
  String.split_on_char '.' name
  |> List.concat_map expand_seg
  |> List.filter (fun s -> s <> "")
  |> String.concat "."

(* --- effect-source tables --------------------------------------------- *)

let nondet_prefixes = [ "Stdlib.Random." ]

let nondet_exact =
  [
    "Unix.gettimeofday";
    "Unix.time";
    "Stdlib.Sys.time";
    "Stdlib.Hashtbl.hash";
    "Stdlib.Hashtbl.seeded_hash";
    "Stdlib.Hashtbl.hash_param";
    "Stdlib.Sys.getenv";
    "Stdlib.Sys.getenv_opt";
    "Unix.getenv";
    "Unix.environment";
    "Stdlib.Domain.recommended_domain_count";
    "Unix.getpid";
  ]

let io_out_names =
  [
    "Stdlib.print_endline";
    "Stdlib.print_string";
    "Stdlib.print_newline";
    "Stdlib.print_char";
    "Stdlib.print_int";
    "Stdlib.print_float";
    "Stdlib.print_bytes";
    "Stdlib.Printf.printf";
    "Stdlib.Format.printf";
    "Stdlib.Format.print_string";
    "Stdlib.Format.print_newline";
  ]

let io_err_names =
  [
    "Stdlib.prerr_endline";
    "Stdlib.prerr_string";
    "Stdlib.prerr_newline";
    "Stdlib.prerr_char";
    "Stdlib.prerr_int";
    "Stdlib.prerr_float";
    "Stdlib.prerr_bytes";
    "Stdlib.Printf.eprintf";
    "Stdlib.Format.eprintf";
  ]

let raise_names =
  [
    "Stdlib.raise";
    "Stdlib.raise_notrace";
    "Stdlib.failwith";
    "Stdlib.invalid_arg";
    "Stdlib.Printexc.raise_with_backtrace";
  ]

let mut_ctor_names =
  [
    "Stdlib.ref";
    "Stdlib.Hashtbl.create";
    "Stdlib.Buffer.create";
    "Stdlib.Queue.create";
    "Stdlib.Stack.create";
  ]

let begin_span_name = "Mcx_util.Telemetry.begin_span"
let end_span_name = "Mcx_util.Telemetry.end_span"

(* Higher-order entries whose function arguments become closure sites:
   which arguments are the closure is either "every Nolabel arrow" or one
   specific label. *)
let closure_fns =
  [
    ("Mcx_util.Pool.map", (Pool_closure, `Arrows));
    ("Mcx_util.Pool.map_isolated", (Pool_closure, `Arrows));
    ("Mcx_util.Pool.map_reduce", (Pool_closure, `Label "map"));
    ("Mcx_util.Checkpoint.map", (Replay_closure, `Arrows));
  ]

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let source_kind_of name =
  if List.exists (fun p -> starts_with ~prefix:p name) nondet_prefixes then Some Nondet
  else if List.mem name nondet_exact then Some Nondet
  else if List.mem name io_out_names then Some Io_out
  else if List.mem name io_err_names then Some Io_err
  else if List.mem name raise_names then Some Raise
  else None

(* --- extraction ------------------------------------------------------- *)

type builder = {
  b_id : string;
  b_line : int;
  b_col : int;
  b_mut : bool;
  b_entry : bool;
  mutable b_sources : source list;
  mutable b_edges : edge list;
  mutable b_spans : span_site list;
  mutable b_closures : closure_site list;
}

type ctx = {
  c_file : string;
  in_telemetry : bool;
  mutable acc : node list;  (** finished nodes, reversed *)
  mutable cur : builder option;
  mutable protected : int;  (** catch-all [try] nesting depth *)
  mutable open_spans : (int * int) list;
  (* name -> [(ident, node id)]; stamps make shadowing a non-issue *)
  locals : (string, (Ident.t * string) list) Hashtbl.t;
}

let lc (loc : Location.t) =
  (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)

let register ctx id node_id =
  let name = Ident.name id in
  let prev = Option.value ~default:[] (Hashtbl.find_opt ctx.locals name) in
  Hashtbl.replace ctx.locals name ((id, node_id) :: prev)

let resolve_local ctx id =
  match Hashtbl.find_opt ctx.locals (Ident.name id) with
  | None -> None
  | Some l -> List.find_map (fun (i, n) -> if Ident.same i id then Some n else None) l

let finish ctx b =
  ctx.acc <-
    {
      id = b.b_id;
      nfile = ctx.c_file;
      nline = b.b_line;
      ncol = b.b_col;
      mutable_state = b.b_mut;
      entrypoint = b.b_entry;
      sources = List.rev b.b_sources;
      edges = List.rev b.b_edges;
      spans = List.rev b.b_spans;
      closures = List.rev b.b_closures;
    }
    :: ctx.acc

let cur_exn ctx = match ctx.cur with Some b -> b | None -> invalid_arg "Callgraph: no node"

let current_site ctx =
  if ctx.protected > 0 then None
  else match ctx.open_spans with [] -> None | s :: _ -> Some s

let add_source ctx kind name loc =
  let b = cur_exn ctx in
  let sline, scol = lc loc in
  b.b_sources <- { kind; name; sline; scol; in_span = current_site ctx } :: b.b_sources

let add_edge ctx callee loc =
  let b = cur_exn ctx in
  let eline, ecol = lc loc in
  let e =
    {
      callee;
      eline;
      ecol;
      raise_protected = ctx.protected > 0;
      e_in_span = current_site ctx;
    }
  in
  if not (List.mem e b.b_edges) then b.b_edges <- e :: b.b_edges

(* One identifier occurrence: an in-unit edge (stamp-resolved), a direct
   effect source, or a cross-module edge candidate (pruned at build). *)
let record_ref ctx path loc =
  match path with
  | Path.Pident id -> (
    match resolve_local ctx id with
    | Some node_id -> add_edge ctx node_id loc
    | None -> () (* plain local: its body was walked inline *))
  | _ -> (
    let name = canonical (Path.name path) in
    match source_kind_of name with
    | Some Raise -> if ctx.protected = 0 then add_source ctx Raise name loc
    | Some kind -> add_source ctx kind name loc
    | None ->
      if String.contains name '.' && not (starts_with ~prefix:"Stdlib." name) then
        add_edge ctx name loc)

let target_of_ident ctx path =
  match path with
  | Path.Pident id -> resolve_local ctx id
  | _ -> Some (canonical (Path.name path))

let rec is_arrow ty =
  match Types.get_desc ty with
  | Tarrow _ -> true
  | Tlink t | Tsubst (t, _) -> is_arrow t
  | Tpoly (t, _) -> is_arrow t
  | _ -> false

let has_attr name (attrs : Parsetree.attributes) =
  List.exists (fun (a : Parsetree.attribute) -> a.attr_name.txt = name) attrs

let entrypoint_attr = "mcx.lint.entrypoint"

(* Does the case body syntactically re-raise? *)
let case_reraises (rhs : Typedtree.expression) =
  let found = ref false in
  let super = Tast_iterator.default_iterator in
  let expr it (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_ident (p, _, _) ->
      (match Path.last p with
      | "raise" | "raise_notrace" | "raise_with_backtrace" | "reraise" -> found := true
      | _ -> ())
    | _ -> ());
    super.expr it e
  in
  let it = { super with expr } in
  it.expr it rhs;
  !found

let catch_all_case (c : Typedtree.value Typedtree.case) =
  (match c.c_lhs.pat_desc with Tpat_any | Tpat_var _ -> true | _ -> false)
  && c.c_guard = None

(* RHS that allocates top-level mutable state (constraints live in
   exp_extra, so no peeling needed on the Typedtree). *)
let mutable_rhs (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) ->
    List.mem (canonical (Path.name p)) mut_ctor_names
  | _ -> false

let pattern_vars pat =
  let acc = ref [] in
  let rec go : Typedtree.pattern -> unit =
   fun p ->
    match p.pat_desc with
    | Tpat_var (id, _) -> acc := id :: !acc
    | Tpat_alias (p, id, _) ->
      acc := id :: !acc;
      go p
    | Tpat_tuple ps | Tpat_construct (_, _, ps, _) | Tpat_array ps -> List.iter go ps
    | Tpat_record (fields, _) -> List.iter (fun (_, _, p) -> go p) fields
    | Tpat_variant (_, po, _) -> Option.iter go po
    | Tpat_lazy p -> go p
    | Tpat_or (a, b, _) ->
      go a;
      go b
    | Tpat_any | Tpat_constant _ -> ()
  in
  go pat;
  List.rev !acc

(* --- the expression iterator ------------------------------------------ *)

let rec make_iterator ctx =
  let super = Tast_iterator.default_iterator in
  let expr it (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_ident (path, { loc; _ }, _) -> record_ref ctx path loc
    | Texp_apply (({ exp_desc = Texp_ident (p, _, _); _ } as fn), args) -> (
      let fname = canonical (Path.name p) in
      let walk_args () =
        List.iter (fun (_, a) -> Option.iter (fun a -> it.Tast_iterator.expr it a) a) args
      in
      if fname = begin_span_name && not ctx.in_telemetry then begin
        let l, c = lc e.exp_loc in
        ctx.open_spans <- (l, c) :: ctx.open_spans;
        (cur_exn ctx).b_spans <- { spline = l; spcol = c } :: (cur_exn ctx).b_spans;
        walk_args ()
      end
      else if fname = end_span_name && not ctx.in_telemetry then begin
        (match ctx.open_spans with [] -> () | _ :: rest -> ctx.open_spans <- rest);
        walk_args ()
      end
      else
        match List.assoc_opt fname closure_fns with
        | None ->
          it.Tast_iterator.expr it fn;
          walk_args ()
        | Some (ckind, selector) ->
          it.Tast_iterator.expr it fn;
          List.iter
            (fun ((label : Asttypes.arg_label), (a : Typedtree.expression option)) ->
              match a with
              | None -> ()
              | Some arg ->
                let selected =
                  match selector with
                  | `Arrows -> label = Asttypes.Nolabel && is_arrow arg.exp_type
                  | `Label l -> label = Asttypes.Labelled l
                in
                if selected then closure_arg ctx ~ckind ~cfn:fname ~apploc:e.exp_loc arg
                else it.Tast_iterator.expr it arg)
            args)
    | Texp_let (_, vbs, body) ->
      (* Lift local [let f = fun ...] bindings into their own nodes so a
         trial closure keeps a separate effect footprint. Register the
         whole group first: [let rec f ... and g] resolves either way. *)
      let liftable (vb : Typedtree.value_binding) =
        match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
        | Tpat_var (id, _), Texp_function _ -> Some id
        | _ -> None
      in
      let sub_id vb id =
        let line, _ = lc vb.Typedtree.vb_loc in
        Printf.sprintf "%s.%s@%d" (cur_exn ctx).b_id (Ident.name id) line
      in
      List.iter
        (fun vb ->
          match liftable vb with Some id -> register ctx id (sub_id vb id) | None -> ())
        vbs;
      List.iter
        (fun (vb : Typedtree.value_binding) ->
          match liftable vb with
          | Some id ->
            let nid = sub_id vb id in
            walk_subnode ctx ~id:nid ~loc:vb.vb_loc vb.vb_expr;
            add_edge ctx nid vb.vb_loc
          | None -> it.Tast_iterator.expr it vb.vb_expr)
        vbs;
      it.Tast_iterator.expr it body
    | Texp_try (body, cases) ->
      let contained = List.exists (fun c -> catch_all_case c && not (case_reraises c.Typedtree.c_rhs)) cases in
      if contained then begin
        ctx.protected <- ctx.protected + 1;
        it.Tast_iterator.expr it body;
        ctx.protected <- ctx.protected - 1
      end
      else it.Tast_iterator.expr it body;
      List.iter
        (fun (c : Typedtree.value Typedtree.case) ->
          Option.iter (it.Tast_iterator.expr it) c.c_guard;
          it.Tast_iterator.expr it c.c_rhs)
        cases
    | Texp_assert _ ->
      if ctx.protected = 0 then add_source ctx Raise "assert" e.exp_loc;
      super.expr it e
    | _ -> super.expr it e
  in
  { super with expr }

(* Walk [body] as its own node (fresh span/protect context), then restore. *)
and walk_subnode ctx ~id ~(loc : Location.t) body =
  let line, col = lc loc in
  let sub =
    {
      b_id = id;
      b_line = line;
      b_col = col;
      b_mut = false;
      b_entry = false;
      b_sources = [];
      b_edges = [];
      b_spans = [];
      b_closures = [];
    }
  in
  let saved_cur = ctx.cur
  and saved_prot = ctx.protected
  and saved_spans = ctx.open_spans in
  ctx.cur <- Some sub;
  ctx.protected <- 0;
  ctx.open_spans <- [];
  let it = make_iterator ctx in
  it.Tast_iterator.expr it body;
  finish ctx sub;
  ctx.cur <- saved_cur;
  ctx.protected <- saved_prot;
  ctx.open_spans <- saved_spans

and closure_arg ctx ~ckind ~cfn ~(apploc : Location.t) (arg : Typedtree.expression) =
  let cline, ccol = lc apploc in
  let add target =
    (cur_exn ctx).b_closures <-
      { ckind; cfn; cline; ccol; target } :: (cur_exn ctx).b_closures
  in
  match arg.exp_desc with
  | Texp_ident (p, { loc; _ }, _) ->
    record_ref ctx p loc;
    (match target_of_ident ctx p with Some t -> add t | None -> ())
  | _ ->
    let l, c = lc arg.exp_loc in
    let sid = Printf.sprintf "%s:%d:%d#closure" ctx.c_file l c in
    walk_subnode ctx ~id:sid ~loc:arg.exp_loc arg;
    add_edge ctx sid arg.exp_loc;
    add sid

(* --- structure walking ------------------------------------------------ *)

let binding_node_id ~prefix (vb : Typedtree.value_binding) =
  match pattern_vars vb.vb_pat with
  | id :: _ -> (Some id, prefix ^ "." ^ Ident.name id)
  | [] ->
    let line, _ = lc vb.vb_loc in
    (None, Printf.sprintf "%s.(init@%d)" prefix line)

let rec register_structure ctx ~prefix (str : Typedtree.structure) =
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            match pattern_vars vb.vb_pat with
            | [] -> ()
            | primary :: rest ->
              let nid = prefix ^ "." ^ Ident.name primary in
              register ctx primary nid;
              (* secondary vars of one binding share the RHS: alias them *)
              List.iter (fun id -> register ctx id nid) rest)
          vbs
      | Tstr_module mb -> register_module ctx ~prefix mb
      | Tstr_recmodule mbs -> List.iter (register_module ctx ~prefix) mbs
      | _ -> ())
    str.str_items

and register_module ctx ~prefix (mb : Typedtree.module_binding) =
  let name =
    match mb.mb_id with Some i -> Ident.name i | None -> "_"
  in
  register_module_expr ctx ~prefix:(prefix ^ "." ^ name) mb.mb_expr

and register_module_expr ctx ~prefix (me : Typedtree.module_expr) =
  match me.mod_desc with
  | Tmod_structure str -> register_structure ctx ~prefix str
  | Tmod_constraint (me, _, _, _) -> register_module_expr ctx ~prefix me
  | _ -> ()

let rec walk_structure ctx ~prefix (str : Typedtree.structure) =
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            let _, nid = binding_node_id ~prefix vb in
            let line, col = lc vb.vb_loc in
            let b =
              {
                b_id = nid;
                b_line = line;
                b_col = col;
                b_mut = mutable_rhs vb.vb_expr;
                b_entry = has_attr entrypoint_attr vb.vb_attributes;
                b_sources = [];
                b_edges = [];
                b_spans = [];
                b_closures = [];
              }
            in
            ctx.cur <- Some b;
            ctx.protected <- 0;
            ctx.open_spans <- [];
            let it = make_iterator ctx in
            it.Tast_iterator.expr it vb.vb_expr;
            finish ctx b;
            ctx.cur <- None)
          vbs
      | Tstr_eval (e, _) ->
        let line, col = lc item.str_loc in
        let b =
          {
            b_id = Printf.sprintf "%s.(init@%d)" prefix line;
            b_line = line;
            b_col = col;
            b_mut = false;
            b_entry = false;
            b_sources = [];
            b_edges = [];
            b_spans = [];
            b_closures = [];
          }
        in
        ctx.cur <- Some b;
        ctx.protected <- 0;
        ctx.open_spans <- [];
        let it = make_iterator ctx in
        it.Tast_iterator.expr it e;
        finish ctx b;
        ctx.cur <- None
      | Tstr_module mb -> walk_module ctx ~prefix mb
      | Tstr_recmodule mbs -> List.iter (walk_module ctx ~prefix) mbs
      | _ -> ())
    str.str_items

and walk_module ctx ~prefix (mb : Typedtree.module_binding) =
  let name = match mb.mb_id with Some i -> Ident.name i | None -> "_" in
  walk_module_expr ctx ~prefix:(prefix ^ "." ^ name) mb.mb_expr

and walk_module_expr ctx ~prefix (me : Typedtree.module_expr) =
  match me.mod_desc with
  | Tmod_structure str -> walk_structure ctx ~prefix str
  | Tmod_constraint (me, _, _, _) -> walk_module_expr ctx ~prefix me
  | _ -> ()

let of_cmt ~file ~modname (str : Typedtree.structure) =
  let prefix = canonical modname in
  let ctx =
    {
      c_file = file;
      in_telemetry = starts_with ~prefix:"Mcx_util.Telemetry" prefix;
      acc = [];
      cur = None;
      protected = 0;
      open_spans = [];
      locals = Hashtbl.create 64;
    }
  in
  register_structure ctx ~prefix str;
  walk_structure ctx ~prefix str;
  List.rev ctx.acc

(* --- summary JSON (the incremental-cache payload) --------------------- *)

module J = Mcx_util.Json_out

let kind_str = function
  | Nondet -> "nondet"
  | Io_out -> "io-out"
  | Io_err -> "io-err"
  | Raise -> "raise"

let kind_of_str = function
  | "nondet" -> Some Nondet
  | "io-out" -> Some Io_out
  | "io-err" -> Some Io_err
  | "raise" -> Some Raise
  | _ -> None

let site_json = function
  | None -> J.Null
  | Some (l, c) -> J.List [ J.Int l; J.Int c ]

let site_of_json = function
  | Some (J.List [ a; b ]) -> (
    match (J.to_int_opt a, J.to_int_opt b) with
    | Some l, Some c -> Some (l, c)
    | _ -> None)
  | _ -> None

let source_json s =
  J.Obj
    [
      ("k", J.Str (kind_str s.kind));
      ("n", J.Str s.name);
      ("l", J.Int s.sline);
      ("c", J.Int s.scol);
      ("sp", site_json s.in_span);
    ]

let edge_json e =
  J.Obj
    [
      ("t", J.Str e.callee);
      ("l", J.Int e.eline);
      ("c", J.Int e.ecol);
      ("p", J.Bool e.raise_protected);
      ("sp", site_json e.e_in_span);
    ]

let span_json s = J.List [ J.Int s.spline; J.Int s.spcol ]

let closure_json c =
  J.Obj
    [
      ("k", J.Str (match c.ckind with Pool_closure -> "pool" | Replay_closure -> "replay"));
      ("f", J.Str c.cfn);
      ("l", J.Int c.cline);
      ("c", J.Int c.ccol);
      ("t", J.Str c.target);
    ]

let node_json n =
  J.Obj
    [
      ("id", J.Str n.id);
      ("file", J.Str n.nfile);
      ("line", J.Int n.nline);
      ("col", J.Int n.ncol);
      ("mut", J.Bool n.mutable_state);
      ("entry", J.Bool n.entrypoint);
      ("sources", J.List (List.map source_json n.sources));
      ("edges", J.List (List.map edge_json n.edges));
      ("spans", J.List (List.map span_json n.spans));
      ("closures", J.List (List.map closure_json n.closures));
    ]

let finding_json (f : Finding.t) =
  J.Obj
    [
      ("file", J.Str f.file);
      ("line", J.Int f.line);
      ("col", J.Int f.col);
      ("rule", J.Str f.rule);
      ("message", J.Str f.message);
    ]

let summary_to_json s =
  J.Obj
    [
      ("modname", J.Str s.modname);
      ("src", J.Str s.src);
      ("nodes", J.List (List.map node_json s.nodes));
      ("typed_findings", J.List (List.map finding_json s.typed_findings));
    ]

(* Decoding: any shape surprise makes the whole summary [None] (a cache
   miss — the module is simply re-extracted). *)

let ( let* ) = Option.bind

let get_str k j = let* m = J.member k j in J.to_string_opt m
let get_int k j = let* m = J.member k j in J.to_int_opt m
let get_bool k j = let* m = J.member k j in J.to_bool_opt m
let get_list k j = let* m = J.member k j in J.to_list_opt m

let rec map_opt f = function
  | [] -> Some []
  | x :: xs ->
    let* y = f x in
    let* ys = map_opt f xs in
    Some (y :: ys)

let source_of_json j =
  let* kind = get_str "k" j in
  let* kind = kind_of_str kind in
  let* name = get_str "n" j in
  let* sline = get_int "l" j in
  let* scol = get_int "c" j in
  Some { kind; name; sline; scol; in_span = site_of_json (J.member "sp" j) }

let edge_of_json j =
  let* callee = get_str "t" j in
  let* eline = get_int "l" j in
  let* ecol = get_int "c" j in
  let* raise_protected = get_bool "p" j in
  Some { callee; eline; ecol; raise_protected; e_in_span = site_of_json (J.member "sp" j) }

let span_of_json j =
  match site_of_json (Some j) with
  | Some (spline, spcol) -> Some { spline; spcol }
  | None -> None

let closure_of_json j =
  let* k = get_str "k" j in
  let* ckind =
    match k with "pool" -> Some Pool_closure | "replay" -> Some Replay_closure | _ -> None
  in
  let* cfn = get_str "f" j in
  let* cline = get_int "l" j in
  let* ccol = get_int "c" j in
  let* target = get_str "t" j in
  Some { ckind; cfn; cline; ccol; target }

let node_of_json j =
  let* id = get_str "id" j in
  let* nfile = get_str "file" j in
  let* nline = get_int "line" j in
  let* ncol = get_int "col" j in
  let* mutable_state = get_bool "mut" j in
  let* entrypoint = get_bool "entry" j in
  let* sources = get_list "sources" j in
  let* sources = map_opt source_of_json sources in
  let* edges = get_list "edges" j in
  let* edges = map_opt edge_of_json edges in
  let* spans = get_list "spans" j in
  let* spans = map_opt span_of_json spans in
  let* closures = get_list "closures" j in
  let* closures = map_opt closure_of_json closures in
  Some { id; nfile; nline; ncol; mutable_state; entrypoint; sources; edges; spans; closures }

let finding_of_json j : Finding.t option =
  let* file = get_str "file" j in
  let* line = get_int "line" j in
  let* col = get_int "col" j in
  let* rule = get_str "rule" j in
  let* message = get_str "message" j in
  Some (Finding.make ~file ~line ~col ~rule ~message)

let summary_of_json j =
  let* modname = get_str "modname" j in
  let* src = get_str "src" j in
  let* nodes = get_list "nodes" j in
  let* nodes = map_opt node_of_json nodes in
  let* fs = get_list "typed_findings" j in
  let* typed_findings = map_opt finding_of_json fs in
  Some { modname; src; nodes; typed_findings }

(* --- graph ------------------------------------------------------------ *)

type graph = { tbl : (string, node) Hashtbl.t; mods : int }

let build summaries =
  let summaries =
    List.sort_uniq (fun a b -> String.compare a.modname b.modname) summaries
  in
  let tbl = Hashtbl.create 1024 in
  List.iter
    (fun s ->
      List.iter (fun n -> if not (Hashtbl.mem tbl n.id) then Hashtbl.add tbl n.id n) s.nodes)
    summaries;
  (* prune edges to nodes outside the program; order them for determinism *)
  let prune n =
    let edges =
      List.filter (fun e -> Hashtbl.mem tbl e.callee) n.edges
      |> List.sort (fun a b ->
             let c = String.compare a.callee b.callee in
             if c <> 0 then c
             else
               let c = Int.compare a.eline b.eline in
               if c <> 0 then c else Int.compare a.ecol b.ecol)
    in
    { n with edges }
  in
  let ids = Hashtbl.fold (fun id _ acc -> id :: acc) tbl [] in
  List.iter (fun id -> Hashtbl.replace tbl id (prune (Hashtbl.find tbl id))) ids;
  let mods =
    List.length (List.filter (fun s -> s.nodes <> []) summaries)
  in
  { tbl; mods }

let find g id = Hashtbl.find_opt g.tbl id
let iter_nodes g f =
  let ids = Hashtbl.fold (fun id _ acc -> id :: acc) g.tbl [] |> List.sort String.compare in
  List.iter (fun id -> f (Hashtbl.find g.tbl id)) ids

let node_count g = Hashtbl.length g.tbl
let module_count g = g.mods

(* --- Tarjan SCC (iterative) ------------------------------------------- *)

let sccs g =
  let ids = Hashtbl.fold (fun id _ acc -> id :: acc) g.tbl [] |> List.sort String.compare in
  let succs id =
    match Hashtbl.find_opt g.tbl id with
    | None -> [||]
    | Some n ->
      Array.of_list (List.sort_uniq String.compare (List.map (fun e -> e.callee) n.edges))
  in
  let index = Hashtbl.create 256 in
  let lowlink = Hashtbl.create 256 in
  let on_stack = Hashtbl.create 256 in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let visit root =
    if not (Hashtbl.mem index root) then begin
      (* frame: (node, successor array, next successor index) *)
      let frames = ref [ (root, succs root, ref 0) ] in
      Hashtbl.add index root !counter;
      Hashtbl.add lowlink root !counter;
      incr counter;
      stack := root :: !stack;
      Hashtbl.add on_stack root ();
      while !frames <> [] do
        match !frames with
        | [] -> ()
        | (v, ss, next) :: rest ->
          if !next < Array.length ss then begin
            let w = ss.(!next) in
            incr next;
            if not (Hashtbl.mem index w) then begin
              Hashtbl.add index w !counter;
              Hashtbl.add lowlink w !counter;
              incr counter;
              stack := w :: !stack;
              Hashtbl.add on_stack w ();
              frames := (w, succs w, ref 0) :: !frames
            end
            else if Hashtbl.mem on_stack w then
              Hashtbl.replace lowlink v
                (min (Hashtbl.find lowlink v) (Hashtbl.find index w))
          end
          else begin
            (* v done: pop frame, fold lowlink into parent, maybe emit SCC *)
            frames := rest;
            (match rest with
            | (parent, _, _) :: _ ->
              Hashtbl.replace lowlink parent
                (min (Hashtbl.find lowlink parent) (Hashtbl.find lowlink v))
            | [] -> ());
            if Hashtbl.find lowlink v = Hashtbl.find index v then begin
              let rec pop acc =
                match !stack with
                | [] -> acc
                | w :: rest ->
                  stack := rest;
                  Hashtbl.remove on_stack w;
                  if w = v then w :: acc else pop (w :: acc)
              in
              let comp = pop [] in
              components := List.sort String.compare comp :: !components
            end
          end
      done
    end
  in
  List.iter visit ids;
  List.rev !components
