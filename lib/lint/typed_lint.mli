(** Typed rules over the Typedtree recovered from [.cmt] files:
    polymorphic comparison/hash instantiated at packed types, and uses of
    [@@deprecated] values. *)

val run : file:string -> modname:string -> Typedtree.structure -> Finding.t list
(** [modname] is the compilation-unit name from the cmt; inside [Cube],
    [Cube_packed] and [Bmatrix] themselves the bare type [t] counts as
    packed. *)
