(** The mcx-lint rule registry: every rule id, its synopsis, and the path
    scope it applies to. *)

type kind =
  | Source  (** Parsetree rule *)
  | Typed  (** Typedtree (.cmt) rule *)
  | Interproc  (** Whole-program rule over the {!Callgraph} effect fixpoint *)

type t = { id : string; synopsis : string; kind : kind }

val all : t list
val ids : string list
val mem : string -> bool

val applies : string -> string -> bool
(** [applies rule rel] — does [rule] fire in the file at repo-relative
    path [rel]? Files under [test/lint_fixtures/] are scoped as if they
    lived under [lib/] so lib-only rules can be exercised by fixtures. *)

val starts_with : prefix:string -> string -> bool

val dls_guarded_file : string -> bool
(** Is the file at this repo-relative path one of the DLS-guarded modules
    whose top-level mutable state is sanctioned (telemetry/prng/metrics)? *)
