(** Interprocedural effect inference over the {!Callgraph}.

    Each function's transitive effect set is computed as a fixpoint over
    the strongly connected components of the call graph (one forward pass
    over {!Callgraph.sccs}, since components arrive successors-first).
    The effect lattice is four independent booleans:

    - [Nondet] — reaches [Random.*], a wall clock, an environment read or
      [Hashtbl.hash];
    - [Io_out] — writes to stdout;
    - [Mut] — touches top-level mutable state (outside the DLS-guarded
      modules and bindings blessed with
      [[\@\@mcx.lint.allow "domain-toplevel-state"]]);
    - [Raises] — an exception can escape (calls under a catch-all [try]
      are contained; [Fun.protect] is not protective, it re-raises).

    Propagation is masked per rule by {e barriers}: the sanctioned module
    boundaries (Prng/Telemetry/Timing for determinism,
    Telemetry/Checkpoint for replay output) plus any function whose
    definition carries an [[\@mcx.lint.allow "<rule>"]] attribute. The
    four rules built on top ([transitive-nondet], [pool-closure-capture],
    [span-exception-unsafe], [replay-io-divergence]) report the shortest
    source→sink call chain on every finding. *)

type kind = Nondet | Io_out | Mut | Raises

val transitive :
  Callgraph.graph -> ?barrier:(Callgraph.node -> bool) -> kind -> string -> bool
(** [transitive g kind id] — does the function [id] have effect [kind],
    directly or through any call path that avoids [barrier] nodes
    (default: no barriers)? [false] for unknown ids. Exposed for tests;
    {!run} applies the per-rule barrier sets. *)

val nondet_roots : Callgraph.graph -> string list
(** The entry points [transitive-nondet] checks: every function in the
    experiment-driver and serving layers plus any node carrying
    [[\@\@mcx.lint.entrypoint]] (how fixtures nominate fake drivers). *)

val run :
  Callgraph.graph ->
  allowed:(rule:string -> file:string -> line:int -> col:int -> bool) ->
  Finding.t list
(** Evaluate the four interprocedural rules. [allowed] answers whether an
    [[\@mcx.lint.allow]] attribute for [rule] covers the definition at
    the given position (the driver implements it over the parsed
    attribute spans and marks consulted spans as used, which is what
    keeps [--check-allows] honest about barrier-only annotations). *)
