(* Effect fixpoint over call-graph SCCs plus the four interprocedural
   rules. See the mli for the model. *)

type kind = Nondet | Io_out | Mut | Raises

let starts_with = Callgraph.starts_with

(* Entry points for transitive-nondet: the layers whose output the repo
   guarantees bit-identical (experiment tables, served batches, replayed
   checkpoints), plus fixture-nominated [@@mcx.lint.entrypoint] nodes. *)
let root_prefixes = [ "Mcx_experiments."; "Mcx_service.Serve." ]
let root_exact = [ "Mcx_util.Checkpoint.map"; "Mcx_util.Checkpoint.fold_completed" ]

(* Sanctioned escape hatches: nondeterminism routed through these modules
   is the repo's own deterministic machinery (key-mixed PRNG streams,
   monotonic clocks, trace gating, the validated Config knob registry). *)
let nondet_sanctioned =
  [ "Mcx_util.Prng."; "Mcx_util.Telemetry."; "Mcx_util.Timing."; "Mcx_util.Config." ]

(* Stdout reachable through Telemetry/Checkpoint is resume-aware (their
   summaries are stderr-only or replay-deterministic by construction). *)
let replay_sanctioned = [ "Mcx_util.Telemetry."; "Mcx_util.Checkpoint." ]

let sanctioned prefixes (id : string) =
  List.exists (fun p -> starts_with ~prefix:p id) prefixes

let is_root (n : Callgraph.node) =
  n.entrypoint
  || List.exists (fun p -> starts_with ~prefix:p n.id) root_prefixes
  || List.mem n.id root_exact

(* --- the fixpoint ----------------------------------------------------- *)

(* value(n) = direct(n) ∨ ∃ e ∈ edges(n). follow n e callee ∧ value(callee).
   Callgraph.sccs emits components successors-first, so one forward pass
   converges; members of a cycle share their component's value. *)
let fixpoint g ~direct ~follow =
  let value = Hashtbl.create 1024 in
  let node id = Callgraph.find g id in
  List.iter
    (fun comp ->
      let in_comp id = List.mem id comp in
      let v =
        List.exists (fun id -> match node id with Some n -> direct n | None -> false) comp
        || List.exists
             (fun id ->
               match node id with
               | None -> false
               | Some n ->
                 List.exists
                   (fun (e : Callgraph.edge) ->
                     (not (in_comp e.callee))
                     && (match node e.callee with
                        | Some c ->
                          follow n e c
                          && Option.value ~default:false (Hashtbl.find_opt value e.callee)
                        | None -> false))
                   n.edges)
             comp
      in
      List.iter (fun id -> Hashtbl.replace value id v) comp)
    (Callgraph.sccs g);
  fun id -> Option.value ~default:false (Hashtbl.find_opt value id)

let direct_source kind (n : Callgraph.node) =
  List.find_opt
    (fun (s : Callgraph.source) ->
      match (kind, s.kind) with
      | Nondet, Callgraph.Nondet | Io_out, Callgraph.Io_out | Raises, Callgraph.Raise ->
        true
      | _ -> false)
    n.sources

let transitive g ?(barrier = fun _ -> false) kind =
  let direct n =
    match kind with
    | Mut -> n.Callgraph.mutable_state
    | _ -> direct_source kind n <> None
  in
  let follow _n (e : Callgraph.edge) c =
    (not (barrier c)) && ((not (kind = Raises)) || not e.raise_protected)
  in
  fixpoint g ~direct ~follow

let nondet_roots g =
  let acc = ref [] in
  Callgraph.iter_nodes g (fun n -> if is_root n then acc := n.id :: !acc);
  List.rev !acc

(* --- shortest source→sink chains (BFS over the masked graph) ---------- *)

let src_step (n : Callgraph.node) (s : Callgraph.source) : Finding.step =
  { name = s.name; file = n.nfile; line = s.sline; col = s.scol }

(* Shortest path from [start] to any node with a direct source, following
   only edges the fixpoint followed; [reaches] prunes dead branches so
   the BFS terminates quickly and the first hit is a shortest chain. *)
let find_chain g ~start ~follow ~direct ~reaches : Finding.step list option =
  match Callgraph.find g start with
  | None -> None
  | Some n0 -> (
    match direct n0 with
    | Some s -> Some [ src_step n0 s ]
    | None ->
      let visited = Hashtbl.create 64 in
      Hashtbl.add visited start ();
      let q = Queue.create () in
      Queue.add (n0, []) q;
      let result = ref None in
      (try
         while not (Queue.is_empty q) do
           let (n : Callgraph.node), steps = Queue.pop q in
           List.iter
             (fun (e : Callgraph.edge) ->
               if not (Hashtbl.mem visited e.callee) then
                 match Callgraph.find g e.callee with
                 | None -> ()
                 | Some c ->
                   if follow n e c then begin
                     Hashtbl.add visited e.callee ();
                     let step : Finding.step =
                       { name = c.id; file = n.nfile; line = e.eline; col = e.ecol }
                     in
                     match direct c with
                     | Some s ->
                       result := Some (List.rev (src_step c s :: step :: steps));
                       raise Exit
                     | None -> if reaches c.Callgraph.id then Queue.add (c, step :: steps) q
                   end)
             n.edges
         done
       with Exit -> ());
      !result)

let chain_sink chain =
  match List.rev chain with
  | (last : Finding.step) :: _ -> Printf.sprintf "%s (%s:%d)" last.name last.file last.line
  | [] -> "an effect source"

(* --- rules ------------------------------------------------------------ *)

let finding ~file ~line ~col ~rule ~message ~chain : Finding.t =
  { file; line; col; rule; message; chain }

let transitive_nondet g ~allowed acc =
  let rule = "transitive-nondet" in
  let barrier (c : Callgraph.node) =
    sanctioned nondet_sanctioned c.id
    || allowed ~rule ~file:c.nfile ~line:c.nline ~col:c.ncol
  in
  let direct = direct_source Nondet in
  let follow _n _e c = not (barrier c) in
  let reaches = fixpoint g ~direct:(fun n -> direct n <> None) ~follow in
  Callgraph.iter_nodes g (fun n ->
      if is_root n && reaches n.id then begin
        let chain =
          Option.value ~default:[]
            (find_chain g ~start:n.id ~follow ~direct ~reaches)
        in
        acc :=
          finding ~file:n.nfile ~line:n.nline ~col:n.ncol ~rule
            ~message:
              (Printf.sprintf
                 "%s can reach nondeterministic source %s without passing through \
                  Prng/Telemetry/Timing; thread a Prng.Key stream or bless the boundary \
                  function with [@mcx.lint.allow \"%s\"]"
                 n.id (chain_sink chain) rule)
            ~chain
          :: !acc
      end)

let closure_rule g ~allowed ~rule ~ckind ~barrier_ids ~src_kind ~mut ~message acc =
  let barrier (c : Callgraph.node) =
    sanctioned barrier_ids c.id || allowed ~rule ~file:c.nfile ~line:c.nline ~col:c.ncol
  in
  let direct (n : Callgraph.node) : Callgraph.source option =
    if mut then
      if
        n.mutable_state
        && (not (Rules.dls_guarded_file n.nfile))
        && (not (allowed ~rule:"domain-toplevel-state" ~file:n.nfile ~line:n.nline ~col:n.ncol))
        && not (allowed ~rule ~file:n.nfile ~line:n.nline ~col:n.ncol)
      then
        Some { Callgraph.kind = Callgraph.Nondet (* unused *); name = n.id;
               sline = n.nline; scol = n.ncol; in_span = None }
      else None
    else direct_source src_kind n
  in
  let follow _n _e c = not (barrier c) in
  let reaches = fixpoint g ~direct:(fun n -> direct n <> None) ~follow in
  Callgraph.iter_nodes g (fun n ->
      List.iter
        (fun (cs : Callgraph.closure_site) ->
          if cs.ckind = ckind then
            match Callgraph.find g cs.target with
            | None -> ()
            | Some t ->
              if reaches t.id then begin
                let tail =
                  Option.value ~default:[]
                    (find_chain g ~start:t.id ~follow ~direct ~reaches)
                in
                let chain =
                  ({ name = t.id; file = t.nfile; line = t.nline; col = t.ncol }
                    : Finding.step)
                  :: tail
                in
                acc :=
                  finding ~file:n.nfile ~line:cs.cline ~col:cs.ccol ~rule
                    ~message:(message cs (chain_sink chain))
                    ~chain
                  :: !acc
              end)
        n.closures)

let pool_closure_capture g ~allowed acc =
  closure_rule g ~allowed ~rule:"pool-closure-capture" ~ckind:Callgraph.Pool_closure
    ~barrier_ids:[] ~src_kind:Mut ~mut:true
    ~message:(fun (cs : Callgraph.closure_site) sink ->
      Printf.sprintf
        "closure passed to %s reaches top-level mutable state %s; it races across Pool \
         domains — allocate per trial, guard it, or bless the state with \
         [@mcx.lint.allow \"domain-toplevel-state\"]"
        cs.cfn sink)
    acc

let replay_io_divergence g ~allowed acc =
  closure_rule g ~allowed ~rule:"replay-io-divergence" ~ckind:Callgraph.Replay_closure
    ~barrier_ids:replay_sanctioned ~src_kind:Io_out ~mut:false
    ~message:(fun (cs : Callgraph.closure_site) sink ->
      Printf.sprintf
        "trial function journaled by %s writes to stdout via %s; resumed sweeps replay \
         journaled results without re-running trials, so resumed stdout diverges from an \
         uninterrupted run"
        cs.cfn sink)
    acc

let span_exception_unsafe g ~allowed acc =
  let rule = "span-exception-unsafe" in
  let barrier (c : Callgraph.node) =
    allowed ~rule ~file:c.nfile ~line:c.nline ~col:c.ncol
  in
  let direct = direct_source Raises in
  let follow _n (e : Callgraph.edge) c = (not e.raise_protected) && not (barrier c) in
  let reaches = fixpoint g ~direct:(fun n -> direct n <> None) ~follow in
  Callgraph.iter_nodes g (fun n ->
      List.iter
        (fun (sp : Callgraph.span_site) ->
          let site = Some (sp.spline, sp.spcol) in
          let direct_raises =
            List.find_opt
              (fun (s : Callgraph.source) -> s.kind = Callgraph.Raise && s.in_span = site)
              n.sources
          in
          let edge_raises =
            List.find_opt
              (fun (e : Callgraph.edge) ->
                e.e_in_span = site
                && (not e.raise_protected)
                &&
                match Callgraph.find g e.callee with
                | Some c -> (not (barrier c)) && (direct c <> None || reaches c.id)
                | None -> false)
              n.edges
          in
          let report chain sink =
            acc :=
              finding ~file:n.nfile ~line:sp.spline ~col:sp.spcol ~rule
                ~message:
                  (Printf.sprintf
                     "Telemetry.begin_span scope can be escaped by an exception from %s \
                      before end_span runs, leaking the open span; use Telemetry.span or \
                      add a handler that closes the span"
                     sink)
                ~chain
              :: !acc
          in
          match direct_raises with
          | Some s -> report [ src_step n s ] s.name
          | None -> (
            match edge_raises with
            | None -> ()
            | Some e -> (
              match Callgraph.find g e.callee with
              | None -> ()
              | Some c ->
                let head : Finding.step =
                  { name = c.id; file = n.nfile; line = e.eline; col = e.ecol }
                in
                let tail =
                  Option.value ~default:[]
                    (find_chain g ~start:c.id ~follow ~direct ~reaches)
                in
                let chain = head :: tail in
                report chain (chain_sink chain))))
        n.spans)

let run g ~allowed =
  let acc = ref [] in
  transitive_nondet g ~allowed acc;
  pool_closure_capture g ~allowed acc;
  span_exception_unsafe g ~allowed acc;
  replay_io_divergence g ~allowed acc;
  List.rev !acc
