(* Untyped (Parsetree) rules. Each rule matches on resolved-looking
   longidents ([Stdlib.] prefixes are normalized away), so
   [Format.pp_print_string] is never confused with [print_string] and
   qualified aliases like [Stdlib.Random] are still caught. *)

let finding ~file ~rule ~(loc : Location.t) message =
  Finding.make ~file ~line:loc.loc_start.pos_lnum
    ~col:(loc.loc_start.pos_cnum - loc.loc_start.pos_bol)
    ~rule ~message

let rec flatten_lid (lid : Longident.t) =
  match lid with
  | Lident s -> [ s ]
  | Ldot (p, s) -> flatten_lid p @ [ s ]
  | Lapply (p, _) -> flatten_lid p

(* Normalize an ident path: drop a leading [Stdlib]. *)
let ident_path lid =
  match flatten_lid lid with "Stdlib" :: rest -> rest | path -> path

(* --- per-ident bans -------------------------------------------------- *)

let wallclock_idents =
  [ [ "Unix"; "gettimeofday" ]; [ "Unix"; "time" ]; [ "Sys"; "time" ] ]

let poly_hash_idents =
  [ [ "Hashtbl"; "hash" ]; [ "Hashtbl"; "seeded_hash" ]; [ "Hashtbl"; "hash_param" ] ]

let stdout_idents =
  [
    [ "print_endline" ];
    [ "print_string" ];
    [ "print_newline" ];
    [ "print_char" ];
    [ "print_int" ];
    [ "print_float" ];
    [ "print_bytes" ];
    [ "Printf"; "printf" ];
    [ "Format"; "printf" ];
    [ "Format"; "print_string" ];
    [ "Format"; "print_newline" ];
  ]

let stderr_idents =
  [
    [ "prerr_endline" ];
    [ "prerr_string" ];
    [ "prerr_newline" ];
    [ "prerr_char" ];
    [ "prerr_int" ];
    [ "prerr_float" ];
    [ "prerr_bytes" ];
    [ "Printf"; "eprintf" ];
    [ "Format"; "eprintf" ];
  ]

let sprintf_idents =
  [
    [ "Printf"; "sprintf" ];
    [ "Printf"; "bprintf" ];
    [ "Printf"; "fprintf" ];
    [ "Format"; "sprintf" ];
    [ "Format"; "asprintf" ];
  ]

let raise_idents = [ "raise"; "raise_notrace"; "raise_with_backtrace"; "reraise" ]

(* Mutable-state constructors banned at structure level. *)
let toplevel_state_idents =
  [
    [ "ref" ];
    [ "Hashtbl"; "create" ];
    [ "Buffer"; "create" ];
    [ "Queue"; "create" ];
    [ "Stack"; "create" ];
  ]

(* A format string that builds JSON by hand: a float conversion next to a
   ['{'] or a literal double quote. *)
let float_conv_and_json_syntax s =
  let n = String.length s in
  let has_float = ref false in
  let i = ref 0 in
  while !i < n - 1 do
    if s.[!i] = '%' then begin
      let j = ref (!i + 1) in
      while
        !j < n
        && (match s.[!j] with
           | '0' .. '9' | '.' | '+' | '-' | '#' | ' ' | '*' -> true
           | _ -> false)
      do
        incr j
      done;
      (if !j < n then
         match s.[!j] with 'f' | 'e' | 'g' | 'h' | 'F' | 'E' | 'G' | 'H' -> has_float := true | _ -> ());
      i := !j + 1
    end
    else incr i
  done;
  !has_float && (String.contains s '{' || String.contains s '"')

(* Does [e] syntactically contain a re-raise? *)
let contains_raise (e : Parsetree.expression) =
  let found = ref false in
  let super = Ast_iterator.default_iterator in
  let expr it (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } -> (
      match List.rev (ident_path txt) with
      | last :: _ when List.mem last raise_idents -> found := true
      | _ -> ())
    | _ -> ());
    super.expr it e
  in
  let it = { super with expr } in
  it.expr it e;
  !found

(* RHS of a structure-level binding that allocates mutable state. Peels
   constraints; a function body is fine (allocation happens per call). *)
let rec mutable_toplevel_rhs (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constraint (e, _) -> mutable_toplevel_rhs e
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
    if List.mem (ident_path txt) toplevel_state_idents then
      Some (String.concat "." (flatten_lid txt))
    else None
  | _ -> None

let run ~file (str : Parsetree.structure) =
  let findings = ref [] in
  let applies rule = Rules.applies rule file in
  let add ~rule ~loc message =
    if applies rule then findings := finding ~file ~rule ~loc message :: !findings
  in
  let check_ident (lid : Longident.t) (loc : Location.t) =
    let path = ident_path lid in
    let shown = String.concat "." (flatten_lid lid) in
    (match path with
    | "Random" :: _ ->
      add ~rule:"determinism-random" ~loc
        (Printf.sprintf
           "%s breaks MCX_JOBS bit-identity; derive a stream from Prng.Key instead" shown)
    | _ -> ());
    if List.mem path wallclock_idents then
      add ~rule:"determinism-wallclock" ~loc
        (Printf.sprintf "%s reads the wall clock; use Timing/Telemetry (monotonic)" shown);
    if List.mem path poly_hash_idents then
      add ~rule:"determinism-poly-hash" ~loc
        (Printf.sprintf
           "%s keeps 30 bits and traverses structures partially; use a dedicated hash"
           shown);
    if List.mem path stdout_idents then
      add ~rule:"output-print" ~loc
        (Printf.sprintf
           "%s writes to stdout from library code; route through Render/Texttable or a \
            Format printer"
           shown);
    if List.mem path stderr_idents then
      add ~rule:"output-stderr-print" ~loc
        (Printf.sprintf
           "%s prints raw text to stderr from an instrumented layer; emit a structured \
            record (Access_log, Metrics, a returned Texttable) or move it to a \
            designated summary module"
           shown);
    match path with
    | [ "Obj"; "magic" ] -> add ~rule:"hygiene-obj-magic" ~loc "Obj.magic defeats the type system"
    | _ -> ()
  in
  let super = Ast_iterator.default_iterator in
  let expr it (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> check_ident txt loc
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
      when List.mem (ident_path txt) sprintf_idents ->
      List.iter
        (fun (_, (arg : Parsetree.expression)) ->
          match arg.pexp_desc with
          | Pexp_constant (Pconst_string (s, _, _)) when float_conv_and_json_syntax s ->
            add ~rule:"output-float-json" ~loc:arg.pexp_loc
              "hand-rolled float-to-JSON formatting; emit through Mcx_util.Json_out \
               (shortest round-trip floats, correct escaping)"
          | _ -> ())
        args
    | Pexp_try (_, cases) ->
      List.iter
        (fun (c : Parsetree.case) ->
          let catch_all =
            match c.pc_lhs.ppat_desc with Ppat_any | Ppat_var _ -> true | _ -> false
          in
          if catch_all && c.pc_guard = None && not (contains_raise c.pc_rhs) then
            add ~rule:"hygiene-catchall" ~loc:c.pc_lhs.ppat_loc
              "catch-all handler swallows exceptions (open Telemetry spans leak); match \
               specific exceptions or re-raise")
        cases
    | _ -> ());
    super.expr it e
  in
  let structure_item it (si : Parsetree.structure_item) =
    (match si.pstr_desc with
    | Pstr_value (_, bindings) ->
      List.iter
        (fun (vb : Parsetree.value_binding) ->
          match mutable_toplevel_rhs vb.pvb_expr with
          | Some ctor ->
            add ~rule:"domain-toplevel-state" ~loc:vb.pvb_loc
              (Printf.sprintf
                 "top-level %s is shared across Pool domains; allocate per use, guard it \
                  explicitly, or move it into a DLS key"
                 ctor)
          | None -> ())
        bindings
    | _ -> ());
    super.structure_item it si
  in
  let it = { super with expr; structure_item } in
  it.structure it str;
  List.rev !findings
