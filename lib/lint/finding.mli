(** One lint finding, addressed by source position. *)

type t = { file : string; line : int; col : int; rule : string; message : string }

val compare : t -> t -> int
(** Order by file, line, column, rule — the report order. *)

val to_string : t -> string
(** [file:line:col [rule-id] message] *)

val to_json : t -> Mcx_util.Json_out.t
