(** One lint finding, addressed by source position.

    Interprocedural findings additionally carry a call [chain]: the
    shortest source→sink path from the reported site to the offending
    effect source, one step per function, rendered in text/JSON/SARIF
    output and by [mcx-lint --explain]. *)

type step = {
  name : string;  (** fully-qualified function path, e.g. [Mcx_util.Pool.default_jobs] *)
  file : string;
  line : int;
  col : int;
}

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
  chain : step list;  (** [[]] for local (intraprocedural) findings *)
}

val make : file:string -> line:int -> col:int -> rule:string -> message:string -> t
(** A chainless finding. *)

val compare : t -> t -> int
(** Order by file, line, column, rule — the report order. *)

val to_string : t -> string
(** [file:line:col [rule-id] message]; chain steps follow, one indented
    [via name (file:line:col)] line each. *)

val to_json : t -> Mcx_util.Json_out.t
(** Adds a ["chain"] array field when the chain is non-empty. *)
