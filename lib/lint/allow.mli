(** Finding suppression: [@mcx.lint.allow "rule-id"] attributes collected
    as source spans, and the repo-root [lint.allow] path allowlist. *)

type span = {
  rule : string option;  (** [None] allows every rule *)
  start_line : int;
  start_col : int;
  end_line : int;
  end_col : int;
}

val spans_of_structure : Parsetree.structure -> span list
val spans_of_signature : Parsetree.signature -> span list

val suppressed : span list -> Finding.t -> bool
(** Is the finding inside an allow-span naming its rule (or naming none)? *)

type file_entry = { prefix : string; allow_rule : string  (** ["*"] = all *) }

val parse_allow_file_contents : string -> file_entry list
(** One entry per line: [<path-prefix> <rule-id|*>]; [#] starts a comment. *)

val load_allow_file : string -> file_entry list
(** [] when the file does not exist. *)

val allowed_by_file : file_entry list -> Finding.t -> bool
