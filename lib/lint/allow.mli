(** Finding suppression: [@mcx.lint.allow "rule-id"] attributes collected
    as source spans, and the repo-root [lint.allow] path allowlist.

    Both mechanisms track {e usage}: a span or file entry that matched at
    least once — suppressing a finding, or consulted as a propagation
    barrier by the interprocedural rules — is marked used. [--check-allows]
    reports the rest as stale. *)

type span = {
  rule : string option;  (** [None] allows every rule *)
  start_line : int;
  start_col : int;
  end_line : int;
  end_col : int;
  mutable used : bool;
}

val spans_of_structure : Parsetree.structure -> span list
val spans_of_signature : Parsetree.signature -> span list

val allows : span list -> rule:string -> line:int -> col:int -> bool
(** Does any span cover this rule at this position? Marks {e every}
    matching span used (redundant annotations are not reported stale). *)

val suppressed : span list -> Finding.t -> bool
(** [allows] at the finding's rule and position. *)

type file_entry = {
  prefix : string;
  allow_rule : string;  (** ["*"] = all *)
  entry_line : int;  (** 1-based line in [lint.allow] *)
  mutable entry_used : bool;
}

val parse_allow_file_contents : string -> file_entry list
(** One entry per line: [<path-prefix> <rule-id|*>]; [#] starts a comment. *)

val load_allow_file : string -> file_entry list
(** [] when the file does not exist. *)

val allowed_by_file : file_entry list -> Finding.t -> bool
(** Marks every matching entry used. *)
