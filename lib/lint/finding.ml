type step = { name : string; file : string; line : int; col : int }

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
  chain : step list;
}

let make ~file ~line ~col ~rule ~message = { file; line; col; rule; message; chain = [] }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let to_string t =
  let head = Printf.sprintf "%s:%d:%d [%s] %s" t.file t.line t.col t.rule t.message in
  match t.chain with
  | [] -> head
  | chain ->
    String.concat "\n"
      (head
      :: List.map
           (fun s -> Printf.sprintf "    via %s (%s:%d:%d)" s.name s.file s.line s.col)
           chain)

let step_to_json (s : step) =
  Mcx_util.Json_out.Obj
    [
      ("name", Mcx_util.Json_out.Str s.name);
      ("file", Mcx_util.Json_out.Str s.file);
      ("line", Mcx_util.Json_out.Int s.line);
      ("col", Mcx_util.Json_out.Int s.col);
    ]

let to_json t =
  let base =
    [
      ("file", Mcx_util.Json_out.Str t.file);
      ("line", Mcx_util.Json_out.Int t.line);
      ("col", Mcx_util.Json_out.Int t.col);
      ("rule", Mcx_util.Json_out.Str t.rule);
      ("message", Mcx_util.Json_out.Str t.message);
    ]
  in
  let fields =
    match t.chain with
    | [] -> base
    | chain -> base @ [ ("chain", Mcx_util.Json_out.List (List.map step_to_json chain)) ]
  in
  Mcx_util.Json_out.Obj fields
