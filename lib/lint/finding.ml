type t = { file : string; line : int; col : int; rule : string; message : string }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let to_string t = Printf.sprintf "%s:%d:%d [%s] %s" t.file t.line t.col t.rule t.message

let to_json t =
  Mcx_util.Json_out.Obj
    [
      ("file", Mcx_util.Json_out.Str t.file);
      ("line", Mcx_util.Json_out.Int t.line);
      ("col", Mcx_util.Json_out.Int t.col);
      ("rule", Mcx_util.Json_out.Str t.rule);
      ("message", Mcx_util.Json_out.Str t.message);
    ]
