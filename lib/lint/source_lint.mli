(** Untyped (Parsetree) rules: determinism bans, top-level mutable state,
    output discipline, hygiene. *)

val run : file:string -> Parsetree.structure -> Finding.t list
(** [file] is the repo-relative path used for findings and rule scoping. *)
