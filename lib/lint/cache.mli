(** Incremental analysis cache.

    Per-module call-graph summaries (and the typed per-module findings)
    are keyed by the MD5 digest of the .cmt file they were extracted
    from. A warm run re-analyzes only modules whose .cmt digest changed;
    everything else is replayed from the cache, byte-identically, without
    touching [Cmt_format.read_cmt].

    Entries live in a single JSON document (default
    [_build/mcx-lint-cache.json]). Unknown or malformed documents are
    ignored — the cache is a pure accelerator, never a source of truth. A
    process-wide in-memory memo layers on top so repeated {!Driver.run}
    calls in one process (the test suite) stay fast even without a disk
    cache. *)

type entry = {
  digest : string;  (** [Digest.to_hex] of the .cmt file. *)
  summary : Callgraph.summary;
  findings : Finding.t list;  (** Typed (per-module) findings. *)
}

type t
(** A mutable cache instance: entries keyed by repo-relative .cmt path. *)

val schema_version : int

val empty : unit -> t

val load : string -> t
(** Read a cache file; missing/corrupt/old-schema files yield {!empty}. *)

val save : string -> t -> unit
(** Persist (creates parent directories as needed). Best-effort: write
    failures are silent — see module comment. *)

val find : t -> path:string -> digest:string -> entry option
(** Digest mismatch counts as a miss (and the stale entry is dropped on
    the next {!save} via {!add}). *)

val add : t -> path:string -> entry -> unit

val memo_find : path:string -> digest:string -> entry option
(** Process-wide in-memory layer (independent of any [t]). *)

val memo_add : path:string -> entry -> unit
