(* Typed rules, run over the Typedtree recovered from [.cmt] files
   (dune passes [-bin-annot] by default, so every compiled module has
   one). Types are matched structurally without environment expansion:
   a [Tconstr] whose path ends in [Cube.t], [Cube_packed.t] or
   [Bmatrix.t] (module aliases and dune name-mangling like
   [Mcx_logic__Cube] are normalized) counts as a packed type. Inside
   those modules' own implementations the bare [t] counts too. *)

let packed_modules = [ "Cube"; "Cube_packed"; "Bmatrix" ]

(* Polymorphic-structure functions that silently order/compare/hash packed
   values by their physical representation. Keyed by [Path.name]. *)
let poly_fns =
  [
    "Stdlib.compare";
    "Stdlib.=";
    "Stdlib.<>";
    "Stdlib.<";
    "Stdlib.>";
    "Stdlib.<=";
    "Stdlib.>=";
    "Stdlib.min";
    "Stdlib.max";
    "Stdlib.Hashtbl.find";
    "Stdlib.Hashtbl.find_opt";
    "Stdlib.Hashtbl.find_all";
    "Stdlib.Hashtbl.mem";
    "Stdlib.Hashtbl.add";
    "Stdlib.Hashtbl.replace";
    "Stdlib.Hashtbl.remove";
    "Stdlib.List.mem";
    "Stdlib.List.assoc";
    "Stdlib.List.assoc_opt";
    "Stdlib.List.mem_assoc";
    "Stdlib.List.remove_assoc";
    "Stdlib.Array.mem";
  ]

(* Sort entry points whose comparator argument decides element order. A
   polymorphic comparator instantiated at [float] works by boxing and
   structural comparison — slow on the Monte Carlo hot path, and it was
   the percentile bug: use [Float.compare]. *)
let sort_fns =
  [
    "Stdlib.Array.sort";
    "Stdlib.Array.stable_sort";
    "Stdlib.Array.fast_sort";
    "Stdlib.List.sort";
    "Stdlib.List.stable_sort";
    "Stdlib.List.fast_sort";
    "Stdlib.List.sort_uniq";
  ]

(* The polymorphic comparators a sort site must not use at float. *)
let poly_comparators = [ "Stdlib.compare"; "Stdlib.Poly.compare" ]

(* Raw environment reads. Every MCX_* knob (and anything else the run
   depends on) must come through the typed Config registry — the one
   validated, snapshot-recorded boundary — not ad-hoc getenv parsing.
   Matching by [Path.name] catches aliases ([module S = Sys]) too. *)
let env_read_fns = [ "Stdlib.Sys.getenv"; "Stdlib.Sys.getenv_opt"; "Unix.getenv" ]

(* Last segment of a dune-mangled module name: "Mcx_logic__Cube" -> "Cube". *)
let unmangle seg =
  let n = String.length seg in
  let rec find i best =
    if i + 1 >= n then best
    else if seg.[i] = '_' && seg.[i + 1] = '_' then find (i + 2) (Some (i + 2))
    else find (i + 1) best
  in
  match find 0 None with Some j -> String.sub seg j (n - j) | None -> seg

let path_is_packed ~self path =
  match List.rev (String.split_on_char '.' (Path.name path)) with
  | [ "t" ] -> (match self with Some m -> List.mem m packed_modules | None -> false)
  | "t" :: owner :: _ -> List.mem (unmangle owner) packed_modules
  | _ -> false

(* Walk a type_expr looking for a packed Tconstr; visited set breaks
   recursive-type cycles. *)
let type_mentions_packed ~self ty =
  let visited = Hashtbl.create 16 in
  let exception Found of string in
  let rec walk ty =
    let id = Types.get_id ty in
    if not (Hashtbl.mem visited id) then begin
      Hashtbl.add visited id ();
      match Types.get_desc ty with
      | Tconstr (p, args, _) ->
        if path_is_packed ~self p then raise (Found (Path.name p));
        List.iter walk args
      | Tarrow (_, a, b, _) ->
        walk a;
        walk b
      | Ttuple ts -> List.iter walk ts
      | Tpoly (t, ts) ->
        walk t;
        List.iter walk ts
      | Tlink t | Tsubst (t, _) -> walk t
      | Tvar _ | Tunivar _ | Tnil | Tobject _ | Tfield _ | Tvariant _ | Tpackage _ -> ()
    end
  in
  match walk ty with () -> None | exception Found name -> Some name

(* Is [ty] (after link/subst chasing) the predefined [float]? *)
let rec type_is_float ty =
  match Types.get_desc ty with
  | Tconstr (p, [], _) -> Path.name p = "float"
  | Tlink t | Tsubst (t, _) -> type_is_float t
  | _ -> false

(* A comparator instantiated as [float -> float -> int]? *)
let comparator_at_float ty =
  match Types.get_desc ty with
  | Tarrow (_, a, _, _) -> type_is_float a
  | _ -> false

let deprecated_attr (vd : Types.value_description) =
  List.exists
    (fun (a : Parsetree.attribute) ->
      match a.attr_name.txt with "deprecated" | "ocaml.deprecated" -> true | _ -> false)
    vd.val_attributes

let finding ~file ~rule ~(loc : Location.t) message =
  Finding.make ~file ~line:loc.loc_start.pos_lnum
    ~col:(loc.loc_start.pos_cnum - loc.loc_start.pos_bol)
    ~rule ~message

(* [self]: when linting one of the packed modules' own cmt, its bare [t]
   is packed. [modname] is the cmt's compilation-unit name. *)
let self_of_modname modname =
  let m = unmangle modname in
  if List.mem m packed_modules then Some m else None

let run ~file ~modname (str : Typedtree.structure) =
  let findings = ref [] in
  let self = self_of_modname modname in
  let applies rule = Rules.applies rule file in
  let add ~rule ~loc message =
    if applies rule then findings := finding ~file ~rule ~loc message :: !findings
  in
  let super = Tast_iterator.default_iterator in
  let expr it (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_ident (path, { loc; _ }, vd) ->
      let name = Path.name path in
      if List.mem name poly_fns then begin
        match type_mentions_packed ~self e.exp_type with
        | Some packed ->
          add ~rule:"packed-poly-compare" ~loc
            (Printf.sprintf
               "%s instantiated at packed type %s; use the module's equal/compare/hash \
                (packed words, not structure, decide the answer)"
               name packed)
        | None -> ()
      end;
      if List.mem name env_read_fns then
        add ~rule:"raw-env-read" ~loc
          (Printf.sprintf
             "%s reads the environment directly; declare the knob in Mcx_util.Config \
              and use its typed accessor (validated, and recorded in the mcx-config/1 \
              snapshot)"
             name);
      if deprecated_attr vd then
        add ~rule:"hygiene-deprecated" ~loc (Printf.sprintf "%s is deprecated" name)
    | Texp_apply ({ exp_desc = Texp_ident (fn, _, _); _ }, args)
      when List.mem (Path.name fn) sort_fns -> begin
      match args with
      | (_, Some ({ exp_desc = Texp_ident (cmp, { loc; _ }, _); _ } as cexp)) :: _
        when List.mem (Path.name cmp) poly_comparators
             && comparator_at_float cexp.exp_type ->
        add ~rule:"float-sort-poly-compare" ~loc
          (Printf.sprintf
             "%s with polymorphic %s at float; use Float.compare (unboxed compare, \
              total order over NaN)"
             (Path.name fn) (Path.name cmp))
      | _ -> ()
    end
    | _ -> ());
    super.expr it e
  in
  let it = { super with expr } in
  it.structure it str;
  List.rev !findings
