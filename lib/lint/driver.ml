(* Orchestration: walk the scanned trees, parse every .ml/.mli (source
   rules + suppression spans), pair compiled modules with their .cmt
   (typed rules + call-graph extraction, through the incremental cache),
   run the interprocedural effect rules over the whole-program graph,
   then filter findings through the attribute spans, the [lint.allow]
   file and [--only]. *)

type config = {
  root : string;  (** absolute repo root *)
  paths : string list;  (** repo-relative files/dirs to scan *)
  only : string list;  (** restrict to these rule ids; [] = all *)
  allow_file : string option;  (** repo-relative allowlist, e.g. [Some "lint.allow"] *)
  with_typed : bool;  (** read .cmt files and run typed + interproc rules *)
  cache_file : string option;  (** repo-relative incremental-cache path *)
}

let default_paths = [ "lib"; "bin"; "bench"; "test" ]
let default_cache_file = "_build/mcx-lint-cache.json"

let default_config ~root =
  {
    root;
    paths = default_paths;
    only = [];
    allow_file = Some "lint.allow";
    with_typed = true;
    cache_file = None;
  }

let find_root () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  up (Sys.getcwd ())

(* --- tree walking ---------------------------------------------------- *)

let skip_dir name =
  name = "_build" || name = ".git" || (String.length name > 0 && name.[0] = '.')

let rec walk_files acc dir rel =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc entry ->
        let path = Filename.concat dir entry in
        let erel = if rel = "" then entry else rel ^ "/" ^ entry in
        if Sys.is_directory path then
          if skip_dir entry then acc else walk_files acc path erel
        else if Filename.check_suffix entry ".ml" || Filename.check_suffix entry ".mli" then
          erel :: acc
        else acc)
      acc entries

let scan_sources config =
  List.concat_map
    (fun p ->
      let abs = Filename.concat config.root p in
      if not (Sys.file_exists abs) then []
      else if Sys.is_directory abs then List.rev (walk_files [] abs p)
      else if Filename.check_suffix p ".ml" || Filename.check_suffix p ".mli" then [ p ]
      else [])
    config.paths
  |> List.sort_uniq String.compare

(* --- parsing --------------------------------------------------------- *)

type parsed = {
  rel : string;
  spans : Allow.span list;
  source_findings : Finding.t list;
}

let parse_file config rel =
  let abs = Filename.concat config.root rel in
  let ic = open_in_bin abs in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Lexing.set_filename lexbuf rel;
      if Filename.check_suffix rel ".mli" then
        let sg = Parse.interface lexbuf in
        { rel; spans = Allow.spans_of_signature sg; source_findings = [] }
      else
        let str = Parse.implementation lexbuf in
        { rel; spans = Allow.spans_of_structure str; source_findings = Source_lint.run ~file:rel str })

let parse_error_finding rel (loc : Location.t) =
  Finding.make ~file:rel ~line:loc.loc_start.pos_lnum
    ~col:(loc.loc_start.pos_cnum - loc.loc_start.pos_bol)
    ~rule:"parse-error" ~message:"file does not parse; fix it before linting"

(* --- cmt discovery --------------------------------------------------- *)

let rec walk_cmts acc dir =
  match Sys.readdir dir with
  | entries ->
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc entry ->
        let path = Filename.concat dir entry in
        if Sys.is_directory path then
          if entry = ".git" || entry = ".sandbox" || entry = ".actions" then acc
          else walk_cmts acc path
        else if Filename.check_suffix entry ".cmt" then path :: acc
        else acc)
      acc entries
  | exception Sys_error _ -> acc

let cmt_paths root =
  let build = Filename.concat (Filename.concat root "_build") "default" in
  let roots = if Sys.file_exists build && Sys.is_directory build then [ build ] else [] in
  (* When the root *is* a dune build context (the self-hosting test runs
     inside _build/default), the .objs directories sit next to the copied
     sources. *)
  let roots = if roots = [] then [ root ] else roots in
  List.concat_map (fun r -> List.rev (walk_cmts [] r)) roots

let normalize_rel p =
  if String.length p >= 2 && String.sub p 0 2 = "./" then
    String.sub p 2 (String.length p - 2)
  else p

(* Cache keys are root-relative so a cache written by `mcx-lint` from the
   repo root is valid regardless of the process cwd. *)
let cache_key root path =
  let prefix = root ^ "/" in
  if Rules.starts_with ~prefix path then
    String.sub path (String.length prefix) (String.length path - String.length prefix)
  else path

(* --- per-module analysis (through the cache) -------------------------- *)

(* Analyze one .cmt: the call-graph summary plus the module's typed
   findings (cached together so a warm run never calls read_cmt). *)
let analyze_cmt cmt_path =
  match Cmt_format.read_cmt cmt_path with
  | exception _ -> None
  | cmt -> (
    match (cmt.cmt_sourcefile, cmt.cmt_annots) with
    | Some src, Implementation str ->
      let rel = normalize_rel src in
      let nodes = Callgraph.of_cmt ~file:rel ~modname:cmt.cmt_modname str in
      let typed_findings = Typed_lint.run ~file:rel ~modname:cmt.cmt_modname str in
      Some
        {
          Callgraph.modname = Callgraph.canonical cmt.cmt_modname;
          src = rel;
          nodes;
          typed_findings;
        }
    | _ -> None)

type cmt_pass = {
  summaries : Callgraph.summary list;
  cp_typed : Finding.t list;  (** deduped, scanned sources only *)
  cp_files_typed : int;
  cp_analyzed : int;  (** cmts actually read (cache misses) *)
  cp_hits : int;
}

let empty_summary = { Callgraph.modname = ""; src = ""; nodes = []; typed_findings = [] }

let cmt_pass config ~source_set =
  let disk =
    match config.cache_file with
    | None -> Cache.empty ()
    | Some rel -> Cache.load (Filename.concat config.root rel)
  in
  (* Rebuilt from scratch each run so entries for deleted modules are
     pruned on save. *)
  let fresh = Cache.empty () in
  let analyzed = ref 0 and hits = ref 0 in
  let summaries = ref [] in
  List.iter
    (fun cmt_path ->
      match Digest.file cmt_path with
      | exception _ -> ()
      | d ->
        let digest = Digest.to_hex d in
        let key = cache_key config.root cmt_path in
        let entry =
          match Cache.memo_find ~path:key ~digest with
          | Some e ->
            incr hits;
            e
          | None -> (
            match Cache.find disk ~path:key ~digest with
            | Some e ->
              incr hits;
              Cache.memo_add ~path:key e;
              e
            | None ->
              incr analyzed;
              let summary =
                match analyze_cmt cmt_path with
                | Some s -> s
                | None -> empty_summary (* interface-only / unreadable: cache the miss *)
              in
              let e = { Cache.digest; summary; findings = summary.typed_findings } in
              Cache.memo_add ~path:key e;
              e)
        in
        Cache.add fresh ~path:key entry;
        if entry.summary.modname <> "" then summaries := entry.summary :: !summaries)
    (cmt_paths config.root);
  (match config.cache_file with
  | None -> ()
  | Some rel -> Cache.save (Filename.concat config.root rel) fresh);
  (* Each scanned source contributes typed findings through at most one
     cmt (a source can be compiled into several build targets). *)
  let done_set = Hashtbl.create 64 in
  let typed = ref [] and files_typed = ref 0 in
  List.iter
    (fun (s : Callgraph.summary) ->
      if Hashtbl.mem source_set s.src && not (Hashtbl.mem done_set s.src) then begin
        Hashtbl.add done_set s.src ();
        incr files_typed;
        typed := s.typed_findings @ !typed
      end)
    (List.rev !summaries);
  {
    summaries = List.rev !summaries;
    cp_typed = List.rev !typed;
    cp_files_typed = !files_typed;
    cp_analyzed = !analyzed;
    cp_hits = !hits;
  }

(* --- top level ------------------------------------------------------- *)

type stale_allow = {
  sa_file : string;  (** source file, or the [lint.allow] path itself *)
  sa_line : int;
  sa_rule : string;  (** ["*"] for allow-everything entries *)
}

type result = {
  findings : Finding.t list;
  files_scanned : int;
  files_typed : int;  (** sources that had a matching .cmt *)
  graph_modules : int;  (** compilation units in the whole-program graph *)
  graph_nodes : int;
  modules_analyzed : int;  (** cmts read this run (cache misses) *)
  cache_hits : int;
  stale_allows : stale_allow list;
      (** allow spans/entries that suppressed nothing and served as no
          barrier this run *)
}

let run config =
  List.iter
    (fun id ->
      if not (Rules.mem id) then invalid_arg (Printf.sprintf "mcx-lint: unknown rule %S" id))
    config.only;
  let sources = scan_sources config in
  let source_set = Hashtbl.create 64 in
  List.iter (fun rel -> Hashtbl.replace source_set rel ()) sources;
  let spans_by_file = Hashtbl.create 64 in
  let source_findings = ref [] in
  List.iter
    (fun rel ->
      match parse_file config rel with
      | parsed ->
        Hashtbl.replace spans_by_file rel parsed.spans;
        source_findings := parsed.source_findings @ !source_findings
      | exception Syntaxerr.Error err ->
        source_findings :=
          parse_error_finding rel (Syntaxerr.location_of_error err) :: !source_findings
      | exception Lexer.Error (_, loc) ->
        source_findings := parse_error_finding rel loc :: !source_findings)
    sources;
  let pass =
    if config.with_typed then cmt_pass config ~source_set
    else
      { summaries = []; cp_typed = []; cp_files_typed = 0; cp_analyzed = 0; cp_hits = 0 }
  in
  let graph = Callgraph.build pass.summaries in
  (* Barrier / allow oracle for the interprocedural rules. Consulting a
     span marks it used, so an annotation whose only job is to stop
     effect propagation still counts for [--check-allows]. Files outside
     the scan set have no parsed spans; their findings are dropped below
     anyway. *)
  let allowed ~rule ~file ~line ~col =
    match Hashtbl.find_opt spans_by_file file with
    | Some spans -> Allow.allows spans ~rule ~line ~col
    | None -> false
  in
  let interproc =
    if config.with_typed then
      List.filter (fun (f : Finding.t) -> Hashtbl.mem source_set f.file) (Effects.run graph ~allowed)
    else []
  in
  let allow_entries =
    match config.allow_file with
    | None -> []
    | Some rel -> Allow.load_allow_file (Filename.concat config.root rel)
  in
  (* Evaluate both suppression mechanisms unconditionally (no &&
     short-circuit): usage marking must see every mechanism that would
     have matched, or [--check-allows] reports live annotations stale. *)
  let keep (f : Finding.t) =
    let file_allowed = Allow.allowed_by_file allow_entries f in
    let span_allowed =
      match Hashtbl.find_opt spans_by_file f.Finding.file with
      | Some spans -> Allow.suppressed spans f
      | None -> false
    in
    (config.only = [] || List.mem f.Finding.rule config.only)
    && (not file_allowed) && not span_allowed
  in
  let findings =
    List.filter keep (!source_findings @ pass.cp_typed @ interproc)
    |> List.sort_uniq Finding.compare
  in
  let stale_allows =
    let acc = ref [] in
    List.iter
      (fun (e : Allow.file_entry) ->
        if not e.entry_used then
          acc :=
            {
              sa_file = Option.value ~default:"lint.allow" config.allow_file;
              sa_line = e.entry_line;
              sa_rule = e.allow_rule;
            }
            :: !acc)
      allow_entries;
    List.iter
      (fun rel ->
        match Hashtbl.find_opt spans_by_file rel with
        | None -> ()
        | Some spans ->
          List.iter
            (fun (s : Allow.span) ->
              if not s.used then
                acc :=
                  {
                    sa_file = rel;
                    sa_line = s.start_line;
                    sa_rule = Option.value ~default:"*" s.rule;
                  }
                  :: !acc)
            spans)
      sources;
    List.sort compare !acc
  in
  {
    findings;
    files_scanned = List.length sources;
    files_typed = pass.cp_files_typed;
    graph_modules = Callgraph.module_count graph;
    graph_nodes = Callgraph.node_count graph;
    modules_analyzed = pass.cp_analyzed;
    cache_hits = pass.cp_hits;
    stale_allows;
  }

(* --- reporting ------------------------------------------------------- *)

let report_text result =
  let buf = Buffer.create 256 in
  List.iter
    (fun f ->
      Buffer.add_string buf (Finding.to_string f);
      Buffer.add_char buf '\n')
    result.findings;
  Buffer.add_string buf
    (Printf.sprintf "mcx-lint: %d finding%s in %d files (%d with typed coverage)\n"
       (List.length result.findings)
       (if List.length result.findings = 1 then "" else "s")
       result.files_scanned result.files_typed);
  Buffer.add_string buf
    (Printf.sprintf "call graph: %d modules, %d nodes; analyzed %d cmts (%d cache hits)\n"
       result.graph_modules result.graph_nodes result.modules_analyzed result.cache_hits);
  Buffer.contents buf

let stale_allow_to_json (s : stale_allow) =
  Mcx_util.Json_out.Obj
    [
      ("file", Mcx_util.Json_out.Str s.sa_file);
      ("line", Mcx_util.Json_out.Int s.sa_line);
      ("rule", Mcx_util.Json_out.Str s.sa_rule);
    ]

let report_json result =
  Mcx_util.Json_out.to_string
    (Mcx_util.Json_out.Obj
       [
         ("schema", Mcx_util.Json_out.Str "mcx-lint/1");
         ("files_scanned", Mcx_util.Json_out.Int result.files_scanned);
         ("files_typed", Mcx_util.Json_out.Int result.files_typed);
         ("graph_modules", Mcx_util.Json_out.Int result.graph_modules);
         ("graph_nodes", Mcx_util.Json_out.Int result.graph_nodes);
         ("modules_analyzed", Mcx_util.Json_out.Int result.modules_analyzed);
         ("cache_hits", Mcx_util.Json_out.Int result.cache_hits);
         ("count", Mcx_util.Json_out.Int (List.length result.findings));
         ("findings", Mcx_util.Json_out.List (List.map Finding.to_json result.findings));
         ( "stale_allows",
           Mcx_util.Json_out.List (List.map stale_allow_to_json result.stale_allows) );
       ])

let report_sarif result = Sarif.report result.findings
