(* Orchestration: walk the scanned trees, parse every .ml/.mli (source
   rules + suppression spans), pair compiled modules with their .cmt
   (typed rules), then filter findings through the attribute spans, the
   [lint.allow] file and [--only]. *)

type config = {
  root : string;  (** absolute repo root *)
  paths : string list;  (** repo-relative files/dirs to scan *)
  only : string list;  (** restrict to these rule ids; [] = all *)
  allow_file : string option;  (** repo-relative allowlist, e.g. [Some "lint.allow"] *)
  with_typed : bool;  (** read .cmt files and run typed rules *)
}

let default_paths = [ "lib"; "bin"; "bench"; "test" ]

let default_config ~root =
  { root; paths = default_paths; only = []; allow_file = Some "lint.allow"; with_typed = true }

let find_root () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  up (Sys.getcwd ())

(* --- tree walking ---------------------------------------------------- *)

let skip_dir name =
  name = "_build" || name = ".git" || (String.length name > 0 && name.[0] = '.')

let rec walk_files acc dir rel =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc entry ->
        let path = Filename.concat dir entry in
        let erel = if rel = "" then entry else rel ^ "/" ^ entry in
        if Sys.is_directory path then
          if skip_dir entry then acc else walk_files acc path erel
        else if Filename.check_suffix entry ".ml" || Filename.check_suffix entry ".mli" then
          erel :: acc
        else acc)
      acc entries

let scan_sources config =
  List.concat_map
    (fun p ->
      let abs = Filename.concat config.root p in
      if not (Sys.file_exists abs) then []
      else if Sys.is_directory abs then List.rev (walk_files [] abs p)
      else if Filename.check_suffix p ".ml" || Filename.check_suffix p ".mli" then [ p ]
      else [])
    config.paths
  |> List.sort_uniq String.compare

(* --- parsing --------------------------------------------------------- *)

type parsed = {
  rel : string;
  spans : Allow.span list;
  source_findings : Finding.t list;
}

let parse_file config rel =
  let abs = Filename.concat config.root rel in
  let ic = open_in_bin abs in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Lexing.set_filename lexbuf rel;
      if Filename.check_suffix rel ".mli" then
        let sg = Parse.interface lexbuf in
        { rel; spans = Allow.spans_of_signature sg; source_findings = [] }
      else
        let str = Parse.implementation lexbuf in
        { rel; spans = Allow.spans_of_structure str; source_findings = Source_lint.run ~file:rel str })

let parse_error_finding rel (loc : Location.t) =
  {
    Finding.file = rel;
    line = loc.loc_start.pos_lnum;
    col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
    rule = "parse-error";
    message = "file does not parse; fix it before linting";
  }

(* --- cmt discovery --------------------------------------------------- *)

let rec walk_cmts acc dir =
  match Sys.readdir dir with
  | entries ->
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc entry ->
        let path = Filename.concat dir entry in
        if Sys.is_directory path then
          if entry = ".git" || entry = ".sandbox" || entry = ".actions" then acc
          else walk_cmts acc path
        else if Filename.check_suffix entry ".cmt" then path :: acc
        else acc)
      acc entries
  | exception Sys_error _ -> acc

let cmt_paths root =
  let build = Filename.concat (Filename.concat root "_build") "default" in
  let roots = if Sys.file_exists build && Sys.is_directory build then [ build ] else [] in
  (* When the root *is* a dune build context (the self-hosting test runs
     inside _build/default), the .objs directories sit next to the copied
     sources. *)
  let roots = if roots = [] then [ root ] else roots in
  List.concat_map (fun r -> List.rev (walk_cmts [] r)) roots

let normalize_rel p =
  if String.length p >= 2 && String.sub p 0 2 = "./" then
    String.sub p 2 (String.length p - 2)
  else p

(* Run typed rules over every cmt whose recorded source file is one of the
   scanned sources; each source is linted through at most one cmt. *)
let typed_findings config sources =
  let source_set = Hashtbl.create 64 in
  List.iter (fun rel -> Hashtbl.replace source_set rel ()) sources;
  let done_set = Hashtbl.create 64 in
  let covered = ref 0 in
  let findings =
    List.concat_map
      (fun cmt_path ->
        match Cmt_format.read_cmt cmt_path with
        | exception _ -> []
        | cmt -> (
          match (cmt.cmt_sourcefile, cmt.cmt_annots) with
          | Some src, Implementation str ->
            let rel = normalize_rel src in
            if Hashtbl.mem source_set rel && not (Hashtbl.mem done_set rel) then begin
              Hashtbl.add done_set rel ();
              incr covered;
              Typed_lint.run ~file:rel ~modname:cmt.cmt_modname str
            end
            else []
          | _ -> []))
      (cmt_paths config.root)
  in
  (findings, !covered)

(* --- top level ------------------------------------------------------- *)

type result = {
  findings : Finding.t list;
  files_scanned : int;
  files_typed : int;  (** sources that had a matching .cmt *)
}

let run config =
  List.iter
    (fun id ->
      if not (Rules.mem id) then invalid_arg (Printf.sprintf "mcx-lint: unknown rule %S" id))
    config.only;
  let sources = scan_sources config in
  let spans_by_file = Hashtbl.create 64 in
  let source_findings = ref [] in
  List.iter
    (fun rel ->
      match parse_file config rel with
      | parsed ->
        Hashtbl.replace spans_by_file rel parsed.spans;
        source_findings := parsed.source_findings @ !source_findings
      | exception Syntaxerr.Error err ->
        source_findings :=
          parse_error_finding rel (Syntaxerr.location_of_error err) :: !source_findings
      | exception Lexer.Error (_, loc) ->
        source_findings := parse_error_finding rel loc :: !source_findings)
    sources;
  let typed, files_typed =
    if config.with_typed then typed_findings config sources else ([], 0)
  in
  let allow_entries =
    match config.allow_file with
    | None -> []
    | Some rel -> Allow.load_allow_file (Filename.concat config.root rel)
  in
  let keep (f : Finding.t) =
    (config.only = [] || List.mem f.Finding.rule config.only)
    && (not (Allow.allowed_by_file allow_entries f))
    &&
    match Hashtbl.find_opt spans_by_file f.Finding.file with
    | Some spans -> not (Allow.suppressed spans f)
    | None -> true
  in
  let findings =
    List.filter keep (!source_findings @ typed) |> List.sort_uniq Finding.compare
  in
  { findings; files_scanned = List.length sources; files_typed }

(* --- reporting ------------------------------------------------------- *)

let report_text result =
  let buf = Buffer.create 256 in
  List.iter
    (fun f ->
      Buffer.add_string buf (Finding.to_string f);
      Buffer.add_char buf '\n')
    result.findings;
  Buffer.add_string buf
    (Printf.sprintf "mcx-lint: %d finding%s in %d files (%d with typed coverage)\n"
       (List.length result.findings)
       (if List.length result.findings = 1 then "" else "s")
       result.files_scanned result.files_typed);
  Buffer.contents buf

let report_json result =
  Mcx_util.Json_out.to_string
    (Mcx_util.Json_out.Obj
       [
         ("schema", Mcx_util.Json_out.Str "mcx-lint/1");
         ("files_scanned", Mcx_util.Json_out.Int result.files_scanned);
         ("files_typed", Mcx_util.Json_out.Int result.files_typed);
         ("count", Mcx_util.Json_out.Int (List.length result.findings));
         ("findings", Mcx_util.Json_out.List (List.map Finding.to_json result.findings));
       ])
