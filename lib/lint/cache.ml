module J = Mcx_util.Json_out

type entry = {
  digest : string;
  summary : Callgraph.summary;
  findings : Finding.t list;
}

type t = (string, entry) Hashtbl.t

let schema_version = 1
let empty () : t = Hashtbl.create 64

(* --- finding codec (the reverse of Finding.to_json) ------------------- *)

let ( let* ) = Option.bind

let str k j = let* v = J.member k j in J.to_string_opt v
let int k j = let* v = J.member k j in J.to_int_opt v

let step_of_json j : Finding.step option =
  let* name = str "name" j in
  let* file = str "file" j in
  let* line = int "line" j in
  let* col = int "col" j in
  Some { Finding.name; file; line; col }

let rec all_some = function
  | [] -> Some []
  | None :: _ -> None
  | Some x :: rest -> let* xs = all_some rest in Some (x :: xs)

let finding_of_json j : Finding.t option =
  let* file = str "file" j in
  let* line = int "line" j in
  let* col = int "col" j in
  let* rule = str "rule" j in
  let* message = str "message" j in
  let* chain =
    match J.member "chain" j with
    | None -> Some []
    | Some c -> let* items = J.to_list_opt c in all_some (List.map step_of_json items)
  in
  Some { Finding.file; line; col; rule; message; chain }

(* --- document codec ---------------------------------------------------- *)

let entry_to_json path (e : entry) =
  J.Obj
    [
      ("path", J.Str path);
      ("digest", J.Str e.digest);
      ("summary", Callgraph.summary_to_json e.summary);
      ("findings", J.List (List.map Finding.to_json e.findings));
    ]

let entry_of_json j =
  let* path = str "path" j in
  let* digest = str "digest" j in
  let* sj = J.member "summary" j in
  let* summary = Callgraph.summary_of_json sj in
  let* fj = J.member "findings" j in
  let* items = J.to_list_opt fj in
  let* findings = all_some (List.map finding_of_json items) in
  Some (path, { digest; summary; findings })

let to_json (t : t) =
  let entries =
    Hashtbl.fold (fun path e acc -> (path, e) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  J.Obj
    [
      ("schema", J.Str "mcx-lint-cache");
      ("version", J.Int schema_version);
      ("entries", J.List (List.map (fun (p, e) -> entry_to_json p e) entries));
    ]

let load path : t =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception _ -> empty ()
  | contents -> (
    match J.of_string contents with
    | Error _ -> empty ()
    | Ok j ->
      let ok_schema =
        (let* s = str "schema" j in Some (s = "mcx-lint-cache")) = Some true
        && int "version" j = Some schema_version
      in
      if not ok_schema then empty ()
      else begin
        let t = empty () in
        (match let* e = J.member "entries" j in J.to_list_opt e with
        | None -> ()
        | Some entries ->
          List.iter
            (fun ej ->
              match entry_of_json ej with
              | Some (p, e) -> Hashtbl.replace t p e
              | None -> ())
            entries);
        t
      end)

(* Best-effort persistence: the cache is a pure accelerator, so a failed
   write (read-only _build, a racing dune) must never fail the lint run
   — hence the blessed catch-alls. *)
let save path (t : t) =
  (try
     let dir = Filename.dirname path in
     (if not (Sys.file_exists dir) then
        (try Sys.mkdir dir 0o755 with _ -> ()) [@mcx.lint.allow "hygiene-catchall"]);
     J.write_file path (to_json t)
   with _ -> ())
  [@mcx.lint.allow "hygiene-catchall"]

let find (t : t) ~path ~digest =
  match Hashtbl.find_opt t path with
  | Some e when e.digest = digest -> Some e
  | _ -> None

let add (t : t) ~path entry = Hashtbl.replace t path entry

(* --- process-wide memo ------------------------------------------------- *)

let memo : t = empty ()
let memo_find ~path ~digest = find memo ~path ~digest
let memo_add ~path entry = add memo ~path entry
