module J = Mcx_util.Json_out

let version = "1.0.0"

let schema_uri = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
let info_uri = "https://github.com/mcx/mcx#static-analysis"

(* SARIF regions are 1-based; clamp degenerate positions (parse errors
   can report line 0). *)
let phys ~file ~line ~col =
  J.Obj
    [
      ("artifactLocation", J.Obj [ ("uri", J.Str file) ]);
      ("region", J.Obj [ ("startLine", J.Int (max 1 line)); ("startColumn", J.Int (col + 1)) ]);
    ]

let physical_location ~file ~line ~col =
  J.Obj [ ("physicalLocation", phys ~file ~line ~col) ]

let rule_index id =
  let rec go i = function
    | [] -> -1
    | (r : Rules.t) :: rest -> if r.id = id then i else go (i + 1) rest
  in
  go 0 Rules.all

let rules_json =
  J.List
    (List.map
       (fun (r : Rules.t) ->
         J.Obj
           [
             ("id", J.Str r.id);
             ("shortDescription", J.Obj [ ("text", J.Str r.synopsis) ]);
           ])
       Rules.all)

let code_flow (chain : Finding.step list) =
  J.Obj
    [
      ( "threadFlows",
        J.List
          [
            J.Obj
              [
                ( "locations",
                  J.List
                    (List.map
                       (fun (s : Finding.step) ->
                         J.Obj
                           [
                             ( "location",
                               J.Obj
                                 [
                                   ( "physicalLocation",
                                     phys ~file:s.file ~line:s.line ~col:s.col );
                                   ("message", J.Obj [ ("text", J.Str s.name) ]);
                                 ] );
                           ])
                       chain) );
              ];
          ] );
    ]

let result_json (f : Finding.t) =
  let base =
    [
      ("ruleId", J.Str f.rule);
      ("ruleIndex", J.Int (rule_index f.rule));
      ("level", J.Str "error");
      ("message", J.Obj [ ("text", J.Str f.message) ]);
      ("locations", J.List [ physical_location ~file:f.file ~line:f.line ~col:f.col ]);
    ]
  in
  let fields =
    match f.chain with [] -> base | chain -> base @ [ ("codeFlows", J.List [ code_flow chain ]) ]
  in
  J.Obj fields

let report findings =
  J.to_string
    (J.Obj
       [
         ("version", J.Str "2.1.0");
         ("$schema", J.Str schema_uri);
         ( "runs",
           J.List
             [
               J.Obj
                 [
                   ( "tool",
                     J.Obj
                       [
                         ( "driver",
                           J.Obj
                             [
                               ("name", J.Str "mcx-lint");
                               ("version", J.Str version);
                               ("informationUri", J.Str info_uri);
                               ("rules", rules_json);
                             ] );
                       ] );
                   ("results", J.List (List.map result_json findings));
                 ];
             ] );
       ])
