(** Walks the scanned trees, runs source and typed rules, and filters
    findings through the suppression mechanisms. *)

type config = {
  root : string;  (** absolute repo root *)
  paths : string list;  (** repo-relative files/dirs to scan *)
  only : string list;  (** restrict to these rule ids; [] = all *)
  allow_file : string option;  (** repo-relative allowlist, e.g. [Some "lint.allow"] *)
  with_typed : bool;  (** read .cmt files and run typed rules *)
}

val default_paths : string list
(** [lib bin bench test] *)

val default_config : root:string -> config

val find_root : unit -> string option
(** Nearest ancestor of [Sys.getcwd ()] containing a [dune-project]. *)

type result = {
  findings : Finding.t list;
  files_scanned : int;
  files_typed : int;  (** sources that had a matching .cmt *)
}

val run : config -> result
(** @raise Invalid_argument when [config.only] names an unknown rule. *)

val report_text : result -> string
(** One [file:line:col [rule-id] message] line per finding plus a summary
    trailer. *)

val report_json : result -> string
(** Compact JSON, schema [mcx-lint/1]. *)
