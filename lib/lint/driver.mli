(** Walks the scanned trees, runs source, typed and interprocedural
    rules, and filters findings through the suppression mechanisms. *)

type config = {
  root : string;  (** absolute repo root *)
  paths : string list;  (** repo-relative files/dirs to scan *)
  only : string list;  (** restrict to these rule ids; [] = all *)
  allow_file : string option;  (** repo-relative allowlist, e.g. [Some "lint.allow"] *)
  with_typed : bool;  (** read .cmt files and run typed + interproc rules *)
  cache_file : string option;
      (** repo-relative incremental-cache path ([--cache] sets
          {!default_cache_file}); [None] = in-memory memo only *)
}

val default_paths : string list
(** [lib bin bench test] *)

val default_cache_file : string
(** [_build/mcx-lint-cache.json] *)

val default_config : root:string -> config

val find_root : unit -> string option
(** Nearest ancestor of [Sys.getcwd ()] containing a [dune-project]. *)

type stale_allow = {
  sa_file : string;  (** source file, or the [lint.allow] path itself *)
  sa_line : int;
  sa_rule : string;  (** ["*"] for allow-everything entries *)
}

type result = {
  findings : Finding.t list;
  files_scanned : int;
  files_typed : int;  (** sources that had a matching .cmt *)
  graph_modules : int;  (** compilation units in the whole-program call graph *)
  graph_nodes : int;
  modules_analyzed : int;  (** cmts read this run (cache misses) *)
  cache_hits : int;
  stale_allows : stale_allow list;
      (** allow spans/entries that suppressed nothing and served as no
          propagation barrier this run ([--check-allows]) *)
}

val run : config -> result
(** @raise Invalid_argument when [config.only] names an unknown rule. *)

val report_text : result -> string
(** One [file:line:col [rule-id] message] line per finding (chains
    indented beneath) plus summary trailers. *)

val report_json : result -> string
(** Compact JSON, schema [mcx-lint/1]. *)

val report_sarif : result -> string
(** SARIF 2.1.0 (see {!Sarif}). *)
