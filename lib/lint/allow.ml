(* Two suppression mechanisms:

   1. [@mcx.lint.allow "rule-id"] attributes in the source. The attribute
      may carry one string payload naming a rule id, or no payload (which
      allows every rule). It suppresses any finding of that rule whose
      location falls inside the annotated node — attach it to an
      expression, a [let] binding ([@@...]) or float it at the top of a
      structure ([@@@...]) for whole-file effect.

   2. A [lint.allow] file at the repo root: one entry per line,
      `<path-prefix> <rule-id|*>`, `#` comments. A finding is dropped when
      its file starts with the prefix and the rule matches. *)

type span = {
  rule : string option; (* None = every rule *)
  start_line : int;
  start_col : int;
  end_line : int;
  end_col : int;
  mutable used : bool;
      (* consulted-and-matched at least once this run: it suppressed a
         finding or served as a propagation barrier ([--check-allows]) *)
}

(* --- attribute spans ------------------------------------------------- *)

let attr_name = "mcx.lint.allow"

let payload_rule (attr : Parsetree.attribute) =
  match attr.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
    Some s
  | _ -> None

let spans_of_attrs (attrs : Parsetree.attributes) (loc : Location.t) =
  List.filter_map
    (fun (attr : Parsetree.attribute) ->
      if attr.attr_name.txt <> attr_name then None
      else
        Some
          {
            rule = payload_rule attr;
            start_line = loc.loc_start.pos_lnum;
            start_col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
            end_line = loc.loc_end.pos_lnum;
            end_col = loc.loc_end.pos_cnum - loc.loc_end.pos_bol;
            used = false;
          })
    attrs

let whole_file_span rule =
  { rule; start_line = 0; start_col = 0; end_line = max_int; end_col = max_int; used = false }

(* Collect every allow-span in a structure: expression and binding
   attributes plus floating [@@@...] ones. *)
let spans_of_structure (str : Parsetree.structure) =
  let spans = ref [] in
  let add ss = spans := ss @ !spans in
  let super = Ast_iterator.default_iterator in
  let expr it (e : Parsetree.expression) =
    add (spans_of_attrs e.pexp_attributes e.pexp_loc);
    super.expr it e
  in
  let value_binding it (vb : Parsetree.value_binding) =
    add (spans_of_attrs vb.pvb_attributes vb.pvb_loc);
    super.value_binding it vb
  in
  let structure_item it (si : Parsetree.structure_item) =
    (match si.pstr_desc with
    | Pstr_attribute attr when attr.attr_name.txt = attr_name ->
      add [ whole_file_span (payload_rule attr) ]
    | Pstr_eval (_, attrs) -> add (spans_of_attrs attrs si.pstr_loc)
    | _ -> ());
    super.structure_item it si
  in
  let module_binding it (mb : Parsetree.module_binding) =
    add (spans_of_attrs mb.pmb_attributes mb.pmb_loc);
    super.module_binding it mb
  in
  let it = { super with expr; value_binding; structure_item; module_binding } in
  it.structure it str;
  !spans

let spans_of_signature (sg : Parsetree.signature) =
  let spans = ref [] in
  let add ss = spans := ss @ !spans in
  let super = Ast_iterator.default_iterator in
  let value_description it (vd : Parsetree.value_description) =
    add (spans_of_attrs vd.pval_attributes vd.pval_loc);
    super.value_description it vd
  in
  let signature_item it (si : Parsetree.signature_item) =
    (match si.psig_desc with
    | Psig_attribute attr when attr.attr_name.txt = attr_name ->
      add [ whole_file_span (payload_rule attr) ]
    | _ -> ());
    super.signature_item it si
  in
  let it = { super with value_description; signature_item } in
  it.signature it sg;
  !spans

let pos_leq (l1, c1) (l2, c2) = l1 < l2 || (l1 = l2 && c1 <= c2)

let span_suppresses span ~rule ~line ~col =
  (match span.rule with None -> true | Some r -> r = rule)
  && pos_leq (span.start_line, span.start_col) (line, col)
  && pos_leq (line, col) (span.end_line, span.end_col)

(* Mark every matching span used (no short-circuit): [--check-allows]
   must not call redundant-but-matching annotations stale. *)
let allows spans ~rule ~line ~col =
  List.fold_left
    (fun acc s ->
      if span_suppresses s ~rule ~line ~col then begin
        s.used <- true;
        true
      end
      else acc)
    false spans

let suppressed spans (f : Finding.t) =
  allows spans ~rule:f.Finding.rule ~line:f.Finding.line ~col:f.Finding.col

(* --- lint.allow file ------------------------------------------------- *)

type file_entry = {
  prefix : string;
  allow_rule : string; (* "*" = all *)
  entry_line : int; (* 1-based line in lint.allow, for stale reporting *)
  mutable entry_used : bool;
}

let parse_allow_file_contents contents =
  String.split_on_char '\n' contents
  |> List.mapi (fun i line -> (i + 1, line))
  |> List.filter_map (fun (lineno, line) ->
         let line =
           match String.index_opt line '#' with
           | Some i -> String.sub line 0 i
           | None -> line
         in
         let line = String.trim line in
         if line = "" then None
         else
           match String.index_opt line ' ' with
           | None ->
             Some { prefix = line; allow_rule = "*"; entry_line = lineno; entry_used = false }
           | Some i ->
             let prefix = String.sub line 0 i in
             let rule = String.trim (String.sub line i (String.length line - i)) in
             Some
               {
                 prefix;
                 allow_rule = (if rule = "" then "*" else rule);
                 entry_line = lineno;
                 entry_used = false;
               })

let load_allow_file path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let contents = really_input_string ic n in
    close_in ic;
    parse_allow_file_contents contents
  end

let file_entry_matches e (f : Finding.t) =
  Rules.starts_with ~prefix:e.prefix f.Finding.file
  && (e.allow_rule = "*" || e.allow_rule = f.Finding.rule)

let allowed_by_file entries f =
  List.fold_left
    (fun acc e ->
      if file_entry_matches e f then begin
        e.entry_used <- true;
        true
      end
      else acc)
    false entries
