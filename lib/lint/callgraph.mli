(** Whole-program call graph, extracted from the [.cmt] files dune leaves
    under [_build/default].

    Each top-level value binding (including bindings in nested modules,
    and — lifted into their own nodes — local [let]-bound functions, so a
    trial closure defined inside a driver keeps its own effect footprint)
    becomes a {!node}. Walking the Typedtree via {!Tast_iterator} records,
    per node:

    - direct {e effect sources} (uses of [Random.*], wall clocks,
      environment reads, [Hashtbl.hash], stdout/stderr writers,
      [raise]/[failwith]/[assert]);
    - {e edges} to every other value the body references, across module
      boundaries (dune name-mangling like [Mcx_util__Pool] is normalized
      to [Mcx_util.Pool]), including first-class function uses;
    - manual {!Mcx_util.Telemetry.begin_span} sites and the calls made
      while a span is open;
    - closure arguments handed to [Pool.map]/[map_reduce]/[map_isolated]
      and [Checkpoint.map] (synthetic nodes when the argument is a
      literal [fun]).

    The per-module {!summary} is what the incremental cache journals: it
    is JSON round-trippable and keyed by the [.cmt] digest, so warm runs
    rebuild the graph without re-reading unchanged modules. *)

type source_kind = Nondet | Io_out | Io_err | Raise

type source = {
  kind : source_kind;
  name : string;  (** what was referenced, e.g. ["Stdlib.Random.int"] *)
  sline : int;
  scol : int;
  in_span : (int * int) option;
      (** innermost open [begin_span] site, when inside one unprotected *)
}

type edge = {
  callee : string;  (** canonical node id *)
  eline : int;
  ecol : int;
  raise_protected : bool;
      (** call sits under a catch-all [try]: its {!Raise} effect is contained *)
  e_in_span : (int * int) option;
}

type span_site = { spline : int; spcol : int }

type closure_kind = Pool_closure | Replay_closure

type closure_site = {
  ckind : closure_kind;
  cfn : string;  (** the higher-order entry, e.g. ["Mcx_util.Pool.map_isolated"] *)
  cline : int;
  ccol : int;
  target : string;  (** node id of the closure (synthetic for literal [fun]s) *)
}

type node = {
  id : string;  (** canonical dotted path, e.g. ["Mcx_util.Pool.default_jobs"] *)
  nfile : string;  (** repo-relative source file *)
  nline : int;
  ncol : int;
  mutable_state : bool;  (** top-level [ref]/[Hashtbl.create]/... binding *)
  entrypoint : bool;  (** carries [[\@\@mcx.lint.entrypoint]] *)
  sources : source list;
  edges : edge list;
  spans : span_site list;
  closures : closure_site list;
}

type summary = {
  modname : string;  (** canonical compilation-unit path *)
  src : string;  (** repo-relative source file *)
  nodes : node list;
  typed_findings : Finding.t list;
      (** the module's {!Typed_lint} findings, cached alongside the graph
          summary so a warm run skips [read_cmt] entirely *)
}

val starts_with : prefix:string -> string -> bool

val canonical : string -> string
(** Expand dune name-mangling: each [__]-joined segment that starts with
    an uppercase letter splits into dotted path segments
    ([Mcx_util__Pool.map] → [Mcx_util.Pool.map]). *)

val of_cmt : file:string -> modname:string -> Typedtree.structure -> node list
(** Extract the nodes of one compiled module. [file] is repo-relative,
    [modname] the (mangled) compilation-unit name. *)

val summary_to_json : summary -> Mcx_util.Json_out.t
val summary_of_json : Mcx_util.Json_out.t -> summary option

(** {2 Graph} *)

type graph

val build : summary list -> graph
(** Index nodes by id and prune edges/closure targets that point outside
    the analyzed program. Deterministic for a given summary set. *)

val find : graph -> string -> node option
val iter_nodes : graph -> (node -> unit) -> unit
val node_count : graph -> int
val module_count : graph -> int
(** Number of distinct compilation units contributing nodes. *)

val sccs : graph -> string list list
(** Strongly connected components (Tarjan), emitted in reverse
    topological order of the condensation: every component appears after
    all components it has edges into, so a single forward pass over the
    list is an effect fixpoint. Component members and the list itself are
    deterministically ordered. *)
