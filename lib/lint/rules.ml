(* Rule registry: ids, one-line synopses, and the path scope each rule
   applies to. Scoping is by repo-relative path (forward slashes). Fixture
   files under [test/lint_fixtures/] are treated as if they lived under
   [lib/] so that every rule — including the lib-scoped ones — can be
   exercised by a fixture; the real repo run suppresses that directory via
   [lint.allow]. *)

type kind = Source | Typed | Interproc

type t = { id : string; synopsis : string; kind : kind }

let fixture_prefix = "test/lint_fixtures/"

(* Path [rel] as seen by scope checks: fixtures masquerade as lib code. *)
let effective_path rel =
  match String.length rel >= String.length fixture_prefix
        && String.sub rel 0 (String.length fixture_prefix) = fixture_prefix
  with
  | true ->
    "lib/lint_fixtures/"
    ^ String.sub rel (String.length fixture_prefix)
        (String.length rel - String.length fixture_prefix)
  | false -> rel

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let in_lib rel = starts_with ~prefix:"lib/" (effective_path rel)

let is_one_of rel files = List.mem (effective_path rel) files

(* Modules allowed to hold wall clocks: the monotonic-clock wrapper and the
   telemetry subsystem built on it. *)
let clock_owners =
  [ "lib/util/timing.ml"; "lib/util/timing.mli"; "lib/util/telemetry.ml"; "lib/util/telemetry.mli" ]

(* The only module allowed to touch OCaml's [Random]: the deterministic
   splittable PRNG that replaces it. *)
let prng_owners = [ "lib/util/prng.ml"; "lib/util/prng.mli" ]

(* DLS-guarded modules exempt from the top-level mutable state rule. *)
let dls_guarded = [ "lib/util/telemetry.ml"; "lib/util/prng.ml"; "lib/util/metrics.ml" ]

let dls_guarded_file rel = is_one_of rel dls_guarded

(* Designated rendering/report modules that may write to stdout. *)
let render_owners = [ "lib/crossbar/render.ml"; "lib/util/texttable.ml" ]

(* Designated stderr summary/logging modules in the instrumented layers
   (checkpoint resume/degradation notices; the telemetry exit summary).
   Everything else in lib/util and lib/service must surface diagnostics
   through structured channels — Access_log, Metrics, return values —
   not ad-hoc prints that no tool can ingest. *)
let stderr_owners = [ "lib/util/checkpoint.ml"; "lib/util/telemetry.ml" ]

let in_instrumented rel =
  let p = effective_path rel in
  starts_with ~prefix:"lib/util/" p
  || starts_with ~prefix:"lib/service/" p
  || starts_with ~prefix:"lib/lint_fixtures/" p

(* The JSON emitter itself is the one place float formatting may live. *)
let json_owners = [ "lib/util/json_out.ml" ]

let all : t list =
  [
    {
      id = "determinism-random";
      synopsis =
        "Stdlib.Random is banned outside lib/util/prng.ml; derive a Prng.Key stream instead";
      kind = Source;
    };
    {
      id = "determinism-wallclock";
      synopsis =
        "wall-clock reads (Unix.gettimeofday/Unix.time/Sys.time) are banned outside \
         Timing/Telemetry";
      kind = Source;
    };
    {
      id = "determinism-poly-hash";
      synopsis =
        "Hashtbl.hash/seeded_hash are banned everywhere (30-bit, partial traversal; the \
         pre-PR-1 seeding bug)";
      kind = Source;
    };
    {
      id = "packed-poly-compare";
      synopsis =
        "polymorphic =/<>/compare/min/max and Hashtbl/List.mem-family instantiated at \
         Cube.t, Cube_packed.t or Bmatrix.t; use the dedicated equal/compare/hash";
      kind = Typed;
    };
    {
      id = "float-sort-poly-compare";
      synopsis =
        "Array.sort/List.sort with the polymorphic comparator at float; use Float.compare \
         (no per-element boxing, and NaN gets a total order)";
      kind = Typed;
    };
    {
      id = "domain-toplevel-state";
      synopsis =
        "top-level mutable state (ref/Hashtbl.create/Buffer.create/...) in lib/ races \
         under Pool domains; move it into the closure or guard it explicitly";
      kind = Source;
    };
    {
      id = "output-print";
      synopsis =
        "stdout printing in lib/ outside Render/Texttable perturbs byte-comparable \
         experiment output";
      kind = Source;
    };
    {
      id = "output-stderr-print";
      synopsis =
        "raw stderr printing (prerr_*/Printf.eprintf/Format.eprintf) in lib/util and \
         lib/service outside the designated summary modules; emit structured records \
         (Access_log, Metrics) instead";
      kind = Source;
    };
    {
      id = "output-float-json";
      synopsis =
        "hand-rolled float-to-JSON formatting (sprintf with %f and '{'/'\"'); use \
         Mcx_util.Json_out";
      kind = Source;
    };
    {
      id = "hygiene-obj-magic";
      synopsis = "Obj.magic defeats the type system";
      kind = Source;
    };
    {
      id = "hygiene-catchall";
      synopsis =
        "catch-all exception handler that never re-raises swallows errors (and leaks \
         open Telemetry spans)";
      kind = Source;
    };
    {
      id = "hygiene-deprecated";
      synopsis = "use of a value marked [@@deprecated]";
      kind = Typed;
    };
    {
      id = "raw-env-read";
      synopsis =
        "Sys.getenv/getenv_opt/Unix.getenv outside lib/util/config.ml; declare the \
         knob in the Config registry and read it through a typed accessor";
      kind = Typed;
    };
    {
      id = "transitive-nondet";
      synopsis =
        "an experiment driver / Serve handler / Checkpoint replay entry can reach \
         Random, a wall clock, an env read or Hashtbl.hash through its call graph \
         without passing through Prng/Telemetry/Timing";
      kind = Interproc;
    };
    {
      id = "pool-closure-capture";
      synopsis =
        "a closure handed to Pool.map/map_reduce/map_isolated reaches top-level \
         mutable state, which races across worker domains";
      kind = Interproc;
    };
    {
      id = "span-exception-unsafe";
      synopsis =
        "a Telemetry.begin_span scope can be escaped by an exception before \
         end_span runs, leaking the open span";
      kind = Interproc;
    };
    {
      id = "replay-io-divergence";
      synopsis =
        "a trial function journaled by Checkpoint.map writes to stdout; replayed \
         (resumed) sweeps skip the trial, so resumed output diverges";
      kind = Interproc;
    };
  ]

let ids = List.map (fun r -> r.id) all

let mem id = List.exists (fun r -> r.id = id) all

(* Does [rule] apply to the file at repo-relative path [rel]? *)
let applies rule rel =
  match rule with
  | "determinism-random" -> not (is_one_of rel prng_owners)
  | "determinism-wallclock" -> not (is_one_of rel clock_owners)
  | "determinism-poly-hash" | "packed-poly-compare" | "float-sort-poly-compare"
  | "hygiene-obj-magic" | "hygiene-catchall" | "hygiene-deprecated" ->
    true
  | "raw-env-read" -> not (is_one_of rel [ "lib/util/config.ml" ])
  | "domain-toplevel-state" -> in_lib rel && not (is_one_of rel dls_guarded)
  | "output-print" -> in_lib rel && not (is_one_of rel render_owners)
  | "output-stderr-print" -> in_instrumented rel && not (is_one_of rel stderr_owners)
  | "output-float-json" -> in_lib rel && not (is_one_of rel json_owners)
  (* Interprocedural rules report at the root/closure/span site; whether a
     chain is a violation is decided by the effect engine (barriers and
     sanctioned modules), not by per-file scoping. *)
  | "transitive-nondet" | "pool-closure-capture" | "span-exception-unsafe"
  | "replay-io-divergence" ->
    true
  | _ -> false
