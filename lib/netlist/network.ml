(* Every network gets a distinct provenance stamp, embedded in the gate
   signals it hands out, so signals cannot migrate between networks.
   Monotonically increasing from a process-wide atomic: stamps never
   influence synthesized structure or printed output, only identity
   checks, so the counter does not threaten determinism. *)
let next_stamp = Atomic.make 0

type t = {
  stamp : int;
  n_inputs : int;
  fanin_limit : int;
  mutable gates : Signal.t list array;  (* gate id -> sorted fan-ins *)
  mutable n_gates : int;
  memo : (Signal.t list, int) Hashtbl.t;  (* structural hashing *)
  inverter_memo : (int, Signal.t) Hashtbl.t;  (* gate id -> its inverter *)
  mutable outputs : Signal.t list option;
}

let create ~n_inputs ~fanin_limit =
  if n_inputs < 0 then invalid_arg "Network.create: negative n_inputs";
  if fanin_limit < 2 then invalid_arg "Network.create: fanin_limit < 2";
  {
    stamp = Atomic.fetch_and_add next_stamp 1;
    n_inputs;
    fanin_limit;
    gates = Array.make 16 [];
    n_gates = 0;
    memo = Hashtbl.create 64;
    inverter_memo = Hashtbl.create 16;
    outputs = None;
  }

let n_inputs t = t.n_inputs
let fanin_limit t = t.fanin_limit
let gate_count t = t.n_gates

let gate_fanins t id =
  if id < 0 || id >= t.n_gates then invalid_arg "Network.gate_fanins: unknown gate";
  t.gates.(id)

let validate_signal t s =
  match s with
  | Signal.Const _ -> ()
  | Signal.Input i | Signal.Input_neg i ->
    if i < 0 || i >= t.n_inputs then invalid_arg "Network: input variable out of range"
  | Signal.Gate { net; id } ->
    (* A gate from another network must not be silently accepted: its id
       would alias whatever local gate happens to share it (or worse,
       memo-hit onto an unrelated structure). *)
    if net <> t.stamp then
      invalid_arg "Network: gate signal belongs to a different network";
    if id < 0 || id >= t.n_gates then invalid_arg "Network: unknown gate signal"

let alloc_gate t fanins =
  if t.n_gates = Array.length t.gates then begin
    let grown = Array.make (max 16 (2 * t.n_gates)) [] in
    Array.blit t.gates 0 grown 0 t.n_gates;
    t.gates <- grown
  end;
  let id = t.n_gates in
  t.gates.(id) <- fanins;
  t.n_gates <- id + 1;
  Hashtbl.replace t.memo fanins id;
  Signal.Gate { net = t.stamp; id }

(* Raw gate creation on a cleaned fan-in list (sorted, unique, no constants,
   no complementary input pair, length within the limit). *)
let gate t fanins =
  match Hashtbl.find_opt t.memo fanins with
  | Some id -> Signal.Gate { net = t.stamp; id }
  | None -> alloc_gate t fanins

let rec nand t signals =
  if signals = [] then invalid_arg "Network.nand: empty fan-in";
  List.iter (validate_signal t) signals;
  let sorted = List.sort_uniq Signal.compare signals in
  (* Constant and contradiction simplification: NAND(.., 0, ..) = 1;
     NAND(.., x, x', ..) = 1; true inputs drop out. *)
  if List.exists (Signal.equal (Signal.Const false)) sorted then Signal.Const true
  else begin
    let sorted = List.filter (fun s -> not (Signal.equal s (Signal.Const true))) sorted in
    let contradictory =
      List.exists
        (fun s ->
          match Signal.negate_cheaply s with
          | Some s' -> List.exists (Signal.equal s') sorted
          | None -> false)
        sorted
    in
    if contradictory then Signal.Const true
    else
      match sorted with
      | [] -> Signal.Const false (* NAND of nothing but true = NOT true *)
      | [ single ] when Signal.negate_cheaply single <> None ->
        Option.get (Signal.negate_cheaply single)
      | _ when List.length sorted <= t.fanin_limit -> gate t sorted
      | _ ->
        (* Decompose: AND the first chunk into one signal, recurse. *)
        let rec split k acc = function
          | rest when k = 0 -> (List.rev acc, rest)
          | [] -> (List.rev acc, [])
          | x :: rest -> split (k - 1) (x :: acc) rest
        in
        let chunk, rest = split t.fanin_limit [] sorted in
        let chunk_and = and_ t chunk in
        nand t (chunk_and :: rest)
  end

and inv t s =
  validate_signal t s;
  match Signal.negate_cheaply s with
  | Some s' -> s'
  | None -> (
    match s with
    | Signal.Gate { id; _ } -> (
      match Hashtbl.find_opt t.inverter_memo id with
      | Some cached -> cached
      | None ->
        let inverter = nand t [ s ] in
        Hashtbl.replace t.inverter_memo id inverter;
        inverter)
    | Signal.Const _ | Signal.Input _ | Signal.Input_neg _ -> assert false)

and and_ t signals = inv t (nand t signals)

let or_ t signals =
  if signals = [] then invalid_arg "Network.or_: empty fan-in";
  nand t (List.map (inv t) signals)

let set_outputs t outs =
  List.iter (validate_signal t) outs;
  t.outputs <- Some outs

let outputs t =
  match t.outputs with
  | Some outs -> outs
  | None -> invalid_arg "Network.outputs: outputs not set"

let feeds_a_gate t =
  let feeders = Array.make t.n_gates false in
  for id = 0 to t.n_gates - 1 do
    List.iter
      (function Signal.Gate { id = g; _ } -> feeders.(g) <- true | Signal.Const _ | Signal.Input _ | Signal.Input_neg _ -> ())
      t.gates.(id)
  done;
  feeders

let inner_connection_count t =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 (feeds_a_gate t)

let total_fanin t =
  let acc = ref 0 in
  for id = 0 to t.n_gates - 1 do
    acc := !acc + List.length t.gates.(id)
  done;
  !acc

let levels t =
  let level = Array.make (max 1 t.n_gates) 0 in
  let signal_level = function
    | Signal.Gate { id = g; _ } -> level.(g)
    | Signal.Const _ | Signal.Input _ | Signal.Input_neg _ -> 0
  in
  for id = 0 to t.n_gates - 1 do
    level.(id) <- 1 + List.fold_left (fun m s -> max m (signal_level s)) 0 t.gates.(id)
  done;
  List.fold_left (fun m s -> max m (signal_level s)) 0 (outputs t)

let eval t inputs =
  if Array.length inputs <> t.n_inputs then invalid_arg "Network.eval: arity mismatch";
  let values = Array.make (max 1 t.n_gates) false in
  let signal_value = function
    | Signal.Const b -> b
    | Signal.Input i -> inputs.(i)
    | Signal.Input_neg i -> not inputs.(i)
    | Signal.Gate { id = g; _ } -> values.(g)
  in
  for id = 0 to t.n_gates - 1 do
    values.(id) <- not (List.for_all signal_value t.gates.(id))
  done;
  Array.of_list (List.map signal_value (outputs t))

let prune t =
  let outs = outputs t in
  let live = Array.make (max 1 t.n_gates) false in
  let rec mark = function
    | Signal.Gate { id = g; _ } ->
      if not live.(g) then begin
        live.(g) <- true;
        List.iter mark t.gates.(g)
      end
    | Signal.Const _ | Signal.Input _ | Signal.Input_neg _ -> ()
  in
  List.iter mark outs;
  let fresh = create ~n_inputs:t.n_inputs ~fanin_limit:t.fanin_limit in
  let rename = Array.make (max 1 t.n_gates) (-1) in
  let rename_signal = function
    | Signal.Gate { id = g; _ } ->
      assert (rename.(g) >= 0);
      Signal.Gate { net = fresh.stamp; id = rename.(g) }
    | (Signal.Const _ | Signal.Input _ | Signal.Input_neg _) as s -> s
  in
  for id = 0 to t.n_gates - 1 do
    if live.(id) then begin
      let fanins = List.map rename_signal t.gates.(id) in
      match alloc_gate fresh fanins with
      | Signal.Gate { id = fresh_id; _ } -> rename.(id) <- fresh_id
      | Signal.Const _ | Signal.Input _ | Signal.Input_neg _ -> assert false
    end
  done;
  set_outputs fresh (List.map rename_signal outs);
  fresh

let pp ppf t =
  Format.fprintf ppf "@[<v>inputs: %d, fan-in limit: %d@," t.n_inputs t.fanin_limit;
  for id = 0 to t.n_gates - 1 do
    Format.fprintf ppf "g%d = NAND(%a)@," id
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         Signal.pp)
      t.gates.(id)
  done;
  (match t.outputs with
  | Some outs ->
    Format.fprintf ppf "outputs: %a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         Signal.pp)
      outs
  | None -> Format.fprintf ppf "outputs: <unset>");
  Format.fprintf ppf "@]"
