let default_names prefix n = List.init n (fun i -> Printf.sprintf "%s%d" prefix i)

let check_names what names expected =
  if List.length names <> expected then
    invalid_arg (Printf.sprintf "Export: %s list has %d names, expected %d" what
                   (List.length names) expected)

let to_verilog ?(module_name = "mcx_netlist") ?input_names ?output_names
    (mapped : Tech_map.mapped) =
  let net = mapped.Tech_map.network in
  let n_inputs = Network.n_inputs net in
  let outputs = Network.outputs net in
  let n_outputs = List.length outputs in
  let inputs = Option.value input_names ~default:(default_names "x" n_inputs) in
  let outs = Option.value output_names ~default:(default_names "y" n_outputs) in
  check_names "input" inputs n_inputs;
  check_names "output" outs n_outputs;
  let input_arr = Array.of_list inputs in
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "module %s (%s);\n" module_name
    (String.concat ", " (inputs @ outs));
  List.iter (fun name -> Printf.bprintf buf "  input %s;\n" name) inputs;
  List.iter (fun name -> Printf.bprintf buf "  output %s;\n" name) outs;
  let n_gates = Network.gate_count net in
  (* complemented input literals used anywhere get a shared inverter wire *)
  let neg_used = Array.make n_inputs false in
  let scan_signal = function
    | Signal.Input_neg i -> neg_used.(i) <- true
    | Signal.Const _ | Signal.Input _ | Signal.Gate _ -> ()
  in
  for id = 0 to n_gates - 1 do
    List.iter scan_signal (Network.gate_fanins net id)
  done;
  List.iter scan_signal outputs;
  if n_gates > 0 then Printf.bprintf buf "  wire %s;\n"
      (String.concat ", " (List.init n_gates (Printf.sprintf "g%d")));
  Array.iteri
    (fun i used -> if used then Printf.bprintf buf "  wire %s_n;\n" input_arr.(i))
    neg_used;
  Array.iteri
    (fun i used ->
      if used then Printf.bprintf buf "  not (%s_n, %s);\n" input_arr.(i) input_arr.(i))
    neg_used;
  let wire_of = function
    | Signal.Const true -> "1'b1"
    | Signal.Const false -> "1'b0"
    | Signal.Input i -> input_arr.(i)
    | Signal.Input_neg i -> input_arr.(i) ^ "_n"
    | Signal.Gate { id; _ } -> Printf.sprintf "g%d" id
  in
  for id = 0 to n_gates - 1 do
    Printf.bprintf buf "  nand (g%d, %s);\n" id
      (String.concat ", " (List.map wire_of (Network.gate_fanins net id)))
  done;
  List.iteri
    (fun k signal ->
      let name = List.nth outs k in
      let negated = mapped.Tech_map.negated.(k) in
      match signal with
      | Signal.Gate _ when negated ->
        Printf.bprintf buf "  not (%s, %s);\n" name (wire_of signal)
      | _ ->
        let expr = wire_of signal in
        let expr =
          if negated then
            match signal with
            | Signal.Const b -> if b then "1'b0" else "1'b1"
            | Signal.Input i -> input_arr.(i) ^ "_n"
            | Signal.Input_neg i -> input_arr.(i)
            | Signal.Gate _ -> assert false
          else expr
        in
        Printf.bprintf buf "  assign %s = %s;\n" name expr)
    outputs;
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let to_dot ?(graph_name = "mcx_netlist") (mapped : Tech_map.mapped) =
  let net = mapped.Tech_map.network in
  let n_gates = Network.gate_count net in
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "digraph %s {\n  rankdir=LR;\n" graph_name;
  let used_inputs = Hashtbl.create 16 in
  let note_input = function
    | Signal.Input i | Signal.Input_neg i -> Hashtbl.replace used_inputs i ()
    | Signal.Const _ | Signal.Gate _ -> ()
  in
  for id = 0 to n_gates - 1 do
    List.iter note_input (Network.gate_fanins net id)
  done;
  List.iter note_input (Network.outputs net);
  Hashtbl.iter
    (fun i () -> Printf.bprintf buf "  x%d [shape=box];\n" i)
    used_inputs;
  for id = 0 to n_gates - 1 do
    Printf.bprintf buf "  g%d [shape=ellipse,label=\"NAND g%d\"];\n" id id
  done;
  let edge ppf_target = function
    | Signal.Input i -> Printf.bprintf buf "  x%d -> %s;\n" i ppf_target
    | Signal.Input_neg i -> Printf.bprintf buf "  x%d -> %s [style=dashed];\n" i ppf_target
    | Signal.Gate { id = g; _ } -> Printf.bprintf buf "  g%d -> %s;\n" g ppf_target
    | Signal.Const b ->
      Printf.bprintf buf "  const%b -> %s [style=dotted];\n" b ppf_target
  in
  for id = 0 to n_gates - 1 do
    List.iter (edge (Printf.sprintf "g%d" id)) (Network.gate_fanins net id)
  done;
  List.iteri
    (fun k signal ->
      let extra =
        if mapped.Tech_map.negated.(k) then
          Printf.sprintf ",color=red,label=\"y%d (inverted)\"" k
        else ""
      in
      Printf.bprintf buf "  y%d [shape=doubleoctagon%s];\n" k extra;
      edge (Printf.sprintf "y%d" k) signal)
    (Network.outputs net);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
