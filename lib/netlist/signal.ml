type t =
  | Const of bool
  | Input of int
  | Input_neg of int
  | Gate of { net : int; id : int }

let equal a b =
  match (a, b) with
  | Const x, Const y -> Bool.equal x y
  | Input i, Input j | Input_neg i, Input_neg j -> i = j
  | Gate g, Gate h -> g.net = h.net && g.id = h.id
  | (Const _ | Input _ | Input_neg _ | Gate _), _ -> false

let rank = function Const _ -> 0 | Input _ -> 1 | Input_neg _ -> 2 | Gate _ -> 3
let payload = function Const b -> Bool.to_int b | Input i | Input_neg i -> i | Gate g -> g.id

let compare a b =
  match (a, b) with
  | Gate g, Gate h ->
    let c = Int.compare g.net h.net in
    if c <> 0 then c else Int.compare g.id h.id
  | _ ->
    let c = Int.compare (rank a) (rank b) in
    if c <> 0 then c else Int.compare (payload a) (payload b)

let hash = function
  | Gate g -> (((g.net * 31) + g.id) * 4) + 3
  | s -> (payload s * 4) + rank s

let negate_cheaply = function
  | Const b -> Some (Const (not b))
  | Input i -> Some (Input_neg i)
  | Input_neg i -> Some (Input i)
  | Gate _ -> None

let of_literal ~var = function
  | Mcx_logic.Literal.Pos -> Input var
  | Mcx_logic.Literal.Neg -> Input_neg var
  | Mcx_logic.Literal.Absent -> invalid_arg "Signal.of_literal: Absent"

let pp ppf = function
  | Const b -> Format.fprintf ppf "%d" (Bool.to_int b)
  | Input i -> Format.fprintf ppf "x%d" i
  | Input_neg i -> Format.fprintf ppf "x%d'" i
  | Gate g -> Format.fprintf ppf "g%d" g.id
