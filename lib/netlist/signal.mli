(** Signals of a NAND network.

    Inputs are available in both polarities for free: the crossbar's input
    latch provides every variable and its complement as vertical lines, so
    only gate outputs ever need explicit inverter gates. Constants appear
    when simplification collapses a gate (e.g. a NAND fed both x and x'). *)

type t =
  | Const of bool
  | Input of int  (** positive literal of input variable [i] *)
  | Input_neg of int  (** complemented literal of input variable [i] *)
  | Gate of { net : int; id : int }
      (** Output of gate [id] of the network whose provenance stamp is
          [net]. Gate ids are dense per network (usable as array
          indices); the stamp exists so a {!Network} can reject signals
          from a different network instead of silently structural-
          hashing them onto an unrelated local gate. Obtain gate
          signals from [Network.nand] — never construct them by hand. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val negate_cheaply : t -> t option
(** Polarity flip that costs no gate: constants and input literals.
    [None] for gate outputs (those need an inverter gate). *)

val of_literal : var:int -> Mcx_logic.Literal.t -> t
(** The signal carrying the value of a cube literal. @raise Invalid_argument
    on [Absent]. *)

val pp : Format.formatter -> t -> unit
