open Mcx_logic

type expr =
  | Const of bool
  | Lit of int * bool
  | And of expr list
  | Or of expr list

(* Flatten nested Ands/Ors and drop degenerate single-child nodes so the
   expression trees stay canonical enough for gate counting. *)
let mk_and children =
  let flat =
    List.concat_map (function And inner -> inner | other -> [ other ]) children
  in
  let flat = List.filter (fun e -> e <> Const true) flat in
  if List.exists (fun e -> e = Const false) flat then Const false
  else match flat with [] -> Const true | [ only ] -> only | _ -> And flat

let mk_or children =
  let flat =
    List.concat_map (function Or inner -> inner | other -> [ other ]) children
  in
  let flat = List.filter (fun e -> e <> Const false) flat in
  if List.exists (fun e -> e = Const true) flat then Const true
  else match flat with [] -> Const false | [ only ] -> only | _ -> Or flat

let expr_of_cube c =
  mk_and
    (List.map
       (fun (var, lit) -> Lit (var, Literal.equal lit Literal.Pos))
       (Cube.literals c))

let of_cover_flat f = mk_or (List.map expr_of_cube (Cover.cubes f))

(* The most frequent literal over a cube list, as (var, literal, count). *)
let best_literal ~arity cubes =
  let pos = Array.make arity 0 and neg = Array.make arity 0 in
  List.iter
    (fun c ->
      List.iter
        (fun (var, lit) ->
          match lit with
          | Literal.Pos -> pos.(var) <- pos.(var) + 1
          | Literal.Neg -> neg.(var) <- neg.(var) + 1
          | Literal.Absent -> ())
        (Cube.literals c))
    cubes;
  let best = ref None in
  for var = 0 to arity - 1 do
    let consider lit count =
      match !best with
      | Some (_, _, best_count) when count <= best_count -> ()
      | Some _ | None -> if count >= 2 then best := Some (var, lit, count)
    in
    consider Literal.Pos pos.(var);
    consider Literal.Neg neg.(var)
  done;
  !best

let rec factor_cubes ~arity cubes =
  if List.is_empty cubes then Const false
  else if List.exists (fun c -> Cube.num_literals c = 0) cubes then Const true
  else
    match cubes with
    | [ single ] -> expr_of_cube single
    | _ -> (
      match best_literal ~arity cubes with
      | None -> mk_or (List.map expr_of_cube cubes)
      | Some (var, lit, _) ->
        let quotient, remainder =
          List.partition (fun c -> Literal.equal (Cube.get c var) lit) cubes
        in
        let quotient = List.map (fun c -> Cube.set c var Literal.Absent) quotient in
        let divisor = Lit (var, Literal.equal lit Literal.Pos) in
        let factored_quotient = factor_cubes ~arity quotient in
        let factored_remainder = factor_cubes ~arity remainder in
        mk_or [ mk_and [ divisor; factored_quotient ]; factored_remainder ])

let factor f = factor_cubes ~arity:(Cover.arity f) (Cover.cubes f)

let rec eval e v =
  match e with
  | Const b -> b
  | Lit (var, positive) ->
    if var < 0 || var >= Array.length v then invalid_arg "Factor.eval: variable out of range";
    if positive then v.(var) else not v.(var)
  | And children -> List.for_all (fun c -> eval c v) children
  | Or children -> List.exists (fun c -> eval c v) children

let rec literal_count = function
  | Const _ -> 0
  | Lit _ -> 1
  | And children | Or children ->
    List.fold_left (fun acc c -> acc + literal_count c) 0 children

let rec depth = function
  | Const _ | Lit _ -> 0
  | And children | Or children ->
    1 + List.fold_left (fun acc c -> max acc (depth c)) 0 children

let rec pp ppf = function
  | Const b -> Format.fprintf ppf "%d" (Bool.to_int b)
  | Lit (v, true) -> Format.fprintf ppf "x%d" v
  | Lit (v, false) -> Format.fprintf ppf "x%d'" v
  | And children ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ") pp)
      children
  | Or children ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " + ") pp)
      children
