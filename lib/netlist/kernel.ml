open Mcx_logic

(* --- algebraic cube division ------------------------------------- *)

(* t / by: remove the divisor's literals; defined only when every literal
   of [by] occurs in [t] (i.e. [by] covers [t] as a region). *)
let cube_quotient t ~by =
  if Cube.covers by t then begin
    let out =
      Array.init (Cube.arity t) (fun i ->
          match Cube.get by i with
          | Literal.Absent -> Cube.get t i
          | Literal.Pos | Literal.Neg -> Literal.Absent)
    in
    Some (Cube.of_literals out)
  end
  else None

let cube_divide cubes ~by = List.filter_map (fun t -> cube_quotient t ~by) cubes

let cube_list_mem c l = List.exists (Cube.equal c) l

let divide cubes ~by =
  match by with
  | [] -> invalid_arg "Kernel.divide: empty divisor"
  | first :: rest ->
    let quotient =
      List.fold_left
        (fun acc d -> List.filter (fun q -> cube_list_mem q (cube_divide cubes ~by:d)) acc)
        (cube_divide cubes ~by:first)
        rest
    in
    (* remainder = f minus divisor * quotient *)
    let products =
      List.concat_map
        (fun q ->
          List.filter_map
            (fun d ->
              match Cube.intersect q d with
              | Some p when Cube.num_literals p = Cube.num_literals q + Cube.num_literals d ->
                Some p
              | Some _ | None -> None (* shared/conflicting literal: not algebraic *))
            by)
        quotient
    in
    let remainder = List.filter (fun t -> not (cube_list_mem t products)) cubes in
    (quotient, remainder)

let common_cube = function
  | [] -> Cube.universe 0
  | first :: rest ->
    List.fold_left
      (fun acc c ->
        Cube.of_literals
          (Array.init (Cube.arity acc) (fun i ->
               if Literal.equal (Cube.get acc i) (Cube.get c i) then Cube.get acc i
               else Literal.Absent)))
      first rest

let is_cube_free cubes =
  match cubes with
  | [] | [ _ ] -> false
  | _ -> Cube.num_literals (common_cube cubes) = 0

let make_cube_free cubes =
  match cubes with
  | [] -> cubes
  | _ ->
    let c = common_cube cubes in
    if Cube.num_literals c = 0 then cubes else cube_divide cubes ~by:c

(* --- kernel enumeration ------------------------------------------ *)

(* Literal index space: 2*var + polarity, ordered; the classical pruning
   skips a division whose quotient's common cube contains an
   already-processed literal. *)
let literal_of_index arity idx =
  let var = idx / 2 and pos = idx mod 2 = 0 in
  ignore arity;
  (var, if pos then Literal.Pos else Literal.Neg)

let occurrences cubes (var, lit) =
  List.length (List.filter (fun c -> Literal.equal (Cube.get c var) lit) cubes)

let kernels ?(budget = 400) ~arity cubes =
  let acc = ref [] in
  let count = ref 0 in
  let add cokernel kernel =
    if !count < budget then begin
      incr count;
      acc := (cokernel, kernel) :: !acc
    end
  in
  let rec explore from_idx cokernel cubes =
    if !count >= budget then ()
    else begin
      if is_cube_free cubes then add cokernel cubes;
      for idx = from_idx to (2 * arity) - 1 do
        if !count < budget then begin
          let var, lit = literal_of_index arity idx in
          if occurrences cubes (var, lit) >= 2 then begin
            let divisor = Cube.set (Cube.universe arity) var lit in
            let quotient = cube_divide cubes ~by:divisor in
            let cc = common_cube quotient in
            (* prune duplicates: any smaller-index literal in the common
               cube means this kernel was already enumerated. *)
            let duplicate = ref false in
            for j = 0 to (2 * arity) - 1 do
              let v, l = literal_of_index arity j in
              if j < idx && Literal.equal (Cube.get cc v) l then duplicate := true
            done;
            if not !duplicate then begin
              let free = make_cube_free quotient in
              let extended_cokernel =
                match Cube.intersect cokernel (Option.get (Cube.intersect divisor cc)) with
                | Some c -> c
                | None -> cokernel (* conflicting literals cannot occur *)
              in
              explore (idx + 1) extended_cokernel free
            end
          end
        end
      done
    end
  in
  explore 0 (Cube.universe arity) cubes;
  !acc

(* --- good factor --------------------------------------------------- *)

let expr_of_cube = Factor.expr_of_cube

let rec factor_cubes ~arity cubes =
  match cubes with
  | [] -> Factor.Const false
  | _ when List.exists (fun c -> Cube.num_literals c = 0) cubes -> Factor.Const true
  | [ single ] -> expr_of_cube single
  | _ ->
    let cc = common_cube cubes in
    if Cube.num_literals cc > 0 then
      (* pull the common cube out first *)
      Factor.mk_and [ expr_of_cube cc; factor_cubes ~arity (cube_divide cubes ~by:cc) ]
    else begin
      let candidates =
        List.filter
          (fun (_, kernel) -> List.length kernel >= 2 && List.length kernel < List.length cubes)
          (kernels ~arity cubes)
      in
      let value kernel =
        (* literal saving estimate: a divisor used |Q| times saves roughly
           (|Q|-1) * lits(kernel). *)
        let quotient, _ = divide cubes ~by:kernel in
        let kernel_lits = List.fold_left (fun a c -> a + Cube.num_literals c) 0 kernel in
        (List.length quotient - 1) * kernel_lits
      in
      let best =
        List.fold_left
          (fun best kernel ->
            let v = value kernel in
            match best with
            | Some (_, best_v) when best_v >= v -> best
            | Some _ | None -> if v > 0 then Some (kernel, v) else best)
          None
          (List.map snd candidates)
      in
      match best with
      | None -> Factor.factor (Cover.create ~arity cubes)
      | Some (divisor, _) ->
        let quotient, remainder = divide cubes ~by:divisor in
        if List.is_empty quotient then Factor.factor (Cover.create ~arity cubes)
        else
          Factor.mk_or
            [
              Factor.mk_and
                [ factor_cubes ~arity quotient; factor_cubes ~arity divisor ];
              factor_cubes ~arity remainder;
            ]
    end

let factor f = factor_cubes ~arity:(Cover.arity f) (Cover.cubes f)
