(* Alongside the byte-per-junction defect grid we maintain a bit-packed
   mask of the stuck-closed cells, kept in sync by [set].  The row/column
   kill checks of the mapping path (a stuck-closed junction poisons its
   whole line) then run word-parallel instead of scanning bytes. *)

type t = {
  rows : int;
  cols : int;
  data : Bytes.t;
  closed : Mcx_util.Bmatrix.t;  (* bit set iff the junction is stuck-closed *)
}

let code = function
  | Junction.Functional -> '\000'
  | Junction.Stuck_open -> '\001'
  | Junction.Stuck_closed -> '\002'

let decode = function
  | '\000' -> Junction.Functional
  | '\001' -> Junction.Stuck_open
  | _ -> Junction.Stuck_closed

let create ~rows ~cols =
  if rows < 0 || cols < 0 then invalid_arg "Defect_map.create: negative dimension";
  {
    rows;
    cols;
    data = Bytes.make (rows * cols) '\000';
    closed = Mcx_util.Bmatrix.create ~rows ~cols false;
  }

let rows t = t.rows
let cols t = t.cols

let check t i j name =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
    invalid_arg (Printf.sprintf "Defect_map.%s: (%d,%d) out of %dx%d" name i j t.rows t.cols)

let get t i j =
  check t i j "get";
  decode (Bytes.unsafe_get t.data ((i * t.cols) + j))

let set t i j d =
  check t i j "set";
  Mcx_util.Telemetry.count "defect_map.mask_updates";
  Bytes.unsafe_set t.data ((i * t.cols) + j) (code d);
  Mcx_util.Bmatrix.set t.closed i j (Junction.defect_equal d Junction.Stuck_closed)

let random prng ~rows ~cols ~open_rate ~closed_rate =
  Mcx_util.Telemetry.span "defect_map.random" @@ fun () ->
  if open_rate < 0. || closed_rate < 0. || open_rate +. closed_rate > 1. then
    invalid_arg "Defect_map.random: bad rates";
  let t = create ~rows ~cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      let u = Mcx_util.Prng.float prng in
      if u < open_rate then set t i j Junction.Stuck_open
      else if u < open_rate +. closed_rate then set t i j Junction.Stuck_closed
    done
  done;
  t

let count t d =
  let target = code d in
  let n = ref 0 in
  Bytes.iter (fun c -> if c = target then incr n) t.data;
  !n

let closed_mask t = t.closed

let row_has_closed t i =
  if i < 0 || i >= t.rows then invalid_arg "Defect_map.row_has_closed";
  Mcx_util.Bmatrix.row_nonzero t.closed i

let col_has_closed t j =
  if j < 0 || j >= t.cols then invalid_arg "Defect_map.col_has_closed";
  Mcx_util.Bmatrix.count_col t.closed j > 0

let usable_rows t =
  List.filter (fun i -> not (row_has_closed t i)) (List.init t.rows Fun.id)

let usable_cols t =
  List.filter (fun j -> not (col_has_closed t j)) (List.init t.cols Fun.id)

let copy t = { t with data = Bytes.copy t.data; closed = Mcx_util.Bmatrix.copy t.closed }

let digest t =
  (* Dimensions are folded in explicitly: a 2x3 and a 3x2 grid with the
     same byte string must not collide. *)
  Digest.to_hex (Digest.string (Printf.sprintf "%dx%d:%s" t.rows t.cols (Bytes.to_string t.data)))

let pp ppf t =
  for i = 0 to t.rows - 1 do
    if i > 0 then Format.pp_print_newline ppf ();
    for j = 0 to t.cols - 1 do
      let glyph =
        match get t i j with
        | Junction.Functional -> '.'
        | Junction.Stuck_open -> 'o'
        | Junction.Stuck_closed -> 'x'
      in
      Format.pp_print_char ppf glyph
    done
  done
