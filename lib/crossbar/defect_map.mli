(** Per-crosspoint defect maps and their random generation.

    §V of the paper: "we generate defective crossbars with assigning an
    independent defect probability/rate to each crosspoint that shows a
    uniform distribution". *)

type t

val create : rows:int -> cols:int -> t
(** All-functional map. @raise Invalid_argument on negative dimensions. *)

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> Junction.defect
val set : t -> int -> int -> Junction.defect -> unit

val random :
  Mcx_util.Prng.t -> rows:int -> cols:int -> open_rate:float -> closed_rate:float -> t
(** Each crosspoint is independently stuck-open with probability
    [open_rate], stuck-closed with [closed_rate], otherwise functional.
    @raise Invalid_argument if rates are negative or sum above 1. *)

val count : t -> Junction.defect -> int

val row_has_closed : t -> int -> bool
val col_has_closed : t -> int -> bool
(** A stuck-closed junction forces its whole horizontal line to evaluate to
    logic 1 and poisons its vertical line, so these lines are unusable
    (paper §IV.A). Word-parallel over the packed stuck-closed mask. *)

val closed_mask : t -> Mcx_util.Bmatrix.t
(** The bit-packed stuck-closed mask, maintained incrementally by {!set}.
    One bit per junction; treat as read-only — mutating it desynchronizes
    the map. Lets callers combine line-kill checks with their own masks
    word-parallel (see [Redundant.restricted_cm]). *)

val usable_rows : t -> int list
val usable_cols : t -> int list
(** Lines free of stuck-closed defects, ascending. *)

val copy : t -> t

val digest : t -> string
(** Hex MD5 of the dimensions plus the per-junction defect grid — a
    content address for the map. Two maps digest equal iff they have the
    same dimensions and the same defect at every junction; the serving
    layer folds this into its canonical request key. *)

val pp : Format.formatter -> t -> unit
(** Grid rendering: [.] functional, [o] stuck-open, [x] stuck-closed. *)
