open Mcx_util
open Mcx_netlist

type t = {
  mapped : Tech_map.mapped;
  rows : int;
  cols : int;
  row_of_gate : int array;
  conn_col_of_gate : int option array;
  program : Bmatrix.t;
  row_assignment : int array;
  physical_rows : int;
  physical_cols : int;
}

(* Column layout: [0, 2I) input literals (positives then complements),
   [2I, 2I + C) connection columns, then (Ok main, Ok comp) pairs. *)

let input_pos_col _net i = i
let input_neg_col net i = Network.n_inputs net + i

let signal_col net = function
  | Signal.Input i -> Some (input_pos_col net i)
  | Signal.Input_neg i -> Some (input_neg_col net i)
  | Signal.Gate _ | Signal.Const _ -> None

let place ?row_assignment ?physical_rows (mapped : Tech_map.mapped) =
  Telemetry.span "multilevel.place" @@ fun () ->
  let net = mapped.Tech_map.network in
  let n_inputs = Network.n_inputs net in
  let n_gates = Network.gate_count net in
  Telemetry.count ~n:n_gates "multilevel.gates_placed";
  let n_outputs = Array.length mapped.Tech_map.negated in
  (* Inner gates, in id order, each get one connection column. *)
  let feeds = Array.make (max 1 n_gates) false in
  for id = 0 to n_gates - 1 do
    List.iter
      (function
        | Signal.Gate { id = g; _ } -> feeds.(g) <- true
        | Signal.Const _ | Signal.Input _ | Signal.Input_neg _ -> ())
      (Network.gate_fanins net id)
  done;
  let conn_col_of_gate = Array.make (max 1 n_gates) None in
  let next_conn = ref (2 * n_inputs) in
  for id = 0 to n_gates - 1 do
    if n_gates > 0 && feeds.(id) then begin
      conn_col_of_gate.(id) <- Some !next_conn;
      incr next_conn
    end
  done;
  let first_output_col = !next_conn in
  let output_main_col k = first_output_col + (2 * k) in
  let output_comp_col k = first_output_col + (2 * k) + 1 in
  let rows = n_gates + 1 in
  let cols = first_output_col + (2 * n_outputs) in
  let latch_row = n_gates in
  let physical_rows = Option.value physical_rows ~default:rows in
  if physical_rows < rows then invalid_arg "Multilevel.place: physical grid too small";
  let row_assignment = Option.value row_assignment ~default:(Array.init rows Fun.id) in
  if Array.length row_assignment <> rows then
    invalid_arg "Multilevel.place: row assignment length mismatch";
  let seen = Hashtbl.create rows in
  Array.iter
    (fun r ->
      if r < 0 || r >= physical_rows then invalid_arg "Multilevel.place: row out of range";
      if Hashtbl.mem seen r then invalid_arg "Multilevel.place: duplicate row target";
      Hashtbl.replace seen r ())
    row_assignment;
  let program = Bmatrix.create ~rows:physical_rows ~cols false in
  let prow logical = row_assignment.(logical) in
  for id = 0 to n_gates - 1 do
    let r = prow id in
    List.iter
      (fun fanin ->
        match signal_col net fanin with
        | Some c -> Bmatrix.set program r c true
        | None -> (
          match fanin with
          | Signal.Gate { id = g; _ } ->
            (match conn_col_of_gate.(g) with
            | Some c -> Bmatrix.set program r c true
            | None -> assert false)
          | Signal.Const _ -> () (* folded away by the builder *)
          | Signal.Input _ | Signal.Input_neg _ -> assert false))
      (Network.gate_fanins net id);
    (* The gate's own write junction on its connection column. *)
    match conn_col_of_gate.(id) with
    | Some c -> Bmatrix.set program r c true
    | None -> ()
  done;
  (* Output write junctions: the producing gate row drives the output
     column; the latch row holds the result pair. *)
  List.iteri
    (fun k signal ->
      (match signal with
      | Signal.Gate { id = g; _ } ->
        Bmatrix.set program (prow g)
          (if mapped.Tech_map.negated.(k) then output_comp_col k else output_main_col k)
          true
      | Signal.Const _ | Signal.Input _ | Signal.Input_neg _ -> ());
      Bmatrix.set program (prow latch_row) (output_main_col k) true;
      Bmatrix.set program (prow latch_row) (output_comp_col k) true)
    (Network.outputs net);
  {
    mapped;
    rows;
    cols;
    row_of_gate = Array.init n_gates Fun.id;
    conn_col_of_gate;
    program;
    row_assignment;
    physical_rows;
    physical_cols = cols;
  }

let area t = t.rows * t.cols

let function_matrix t =
  let fm = Bmatrix.create ~rows:t.rows ~cols:t.cols false in
  for logical = 0 to t.rows - 1 do
    let r = t.row_assignment.(logical) in
    for c = 0 to t.cols - 1 do
      if Bmatrix.get t.program r c then Bmatrix.set fm logical c true
    done
  done;
  fm

let run_impl ?defects ?upset t inputs =
  let net = t.mapped.Tech_map.network in
  let n_inputs = Network.n_inputs net in
  if Array.length inputs <> n_inputs then invalid_arg "Multilevel.run: arity mismatch";
  let defects =
    match defects with
    | Some d ->
      if Defect_map.rows d <> t.physical_rows || Defect_map.cols d <> t.physical_cols then
        invalid_arg "Multilevel.run: defect map dimension mismatch";
      d
    | None -> Defect_map.create ~rows:t.physical_rows ~cols:t.physical_cols
  in
  let values = Array.make_matrix t.physical_rows t.physical_cols true in
  let writes = ref 0 and cr_copies = ref 0 in
  let corrupt v =
    match upset with Some hit when hit () -> not v | Some _ | None -> v
  in
  let write r c v =
    incr writes;
    values.(r).(c) <- Junction.store (Defect_map.get defects r c) (corrupt v)
  in
  (* INA *)
  for r = 0 to t.physical_rows - 1 do
    for c = 0 to t.physical_cols - 1 do
      write r c true (* INA drives every junction to R_OFF *)
    done
  done;
  let programmed r c = Bmatrix.get t.program r c in
  let prow logical = t.row_assignment.(logical) in
  let used_rows = Array.to_list t.row_assignment in
  let n_gates = Network.gate_count net in
  let latch_row = n_gates in
  let row_nand r = not (Array.for_all Fun.id values.(r)) in
  let col_and c = List.for_all (fun r -> values.(r).(c)) used_rows in
  let n_outputs = Array.length t.mapped.Tech_map.negated in
  let first_output_col = t.cols - (2 * n_outputs) in
  let output_main_col k = first_output_col + (2 * k) in
  let output_comp_col k = first_output_col + (2 * k) + 1 in
  (* RI + per-gate CFM/EVM/CR, in topological (id) order. *)
  let consumers = Array.make (max 1 n_gates) [] in
  for id = 0 to n_gates - 1 do
    List.iter
      (function
        | Signal.Gate { id = g; _ } -> consumers.(g) <- id :: consumers.(g)
        | Signal.Const _ | Signal.Input _ | Signal.Input_neg _ -> ())
      (Network.gate_fanins net id)
  done;
  let gate_value = Array.make (max 1 n_gates) false in
  for id = 0 to n_gates - 1 do
    let r = prow id in
    (* CFM: copy the input literals this gate reads. *)
    List.iter
      (fun fanin ->
        match signal_col net fanin with
        | Some c -> if programmed r c then write r c (match fanin with
            | Signal.Input i -> inputs.(i)
            | Signal.Input_neg i -> not inputs.(i)
            | Signal.Gate _ | Signal.Const _ -> assert false)
        | None -> ())
      (Network.gate_fanins net id);
    (* EVM: evaluate this row. *)
    let result = row_nand r in
    gate_value.(id) <- result;
    (* CR: copy the result into consumer rows via the connection column,
       and onto the output column if this gate is an output driver. *)
    (match t.conn_col_of_gate.(id) with
    | Some c ->
      write r c result;
      List.iter
        (fun consumer ->
          let rc = prow consumer in
          if programmed rc c then begin
            incr cr_copies;
            write rc c result
          end)
        consumers.(id)
    | None -> ());
    List.iteri
      (fun k signal ->
        match signal with
        | Signal.Gate { id = g; _ } when g = id ->
          let c =
            if t.mapped.Tech_map.negated.(k) then output_comp_col k else output_main_col k
          in
          if programmed r c then write r c result
        | Signal.Gate _ | Signal.Const _ | Signal.Input _ | Signal.Input_neg _ -> ())
      (Network.outputs net)
  done;
  (* Outputs driven directly by inputs or constants come from the latch. *)
  let direct_value = function
    | Signal.Const b -> Some b
    | Signal.Input i -> Some inputs.(i)
    | Signal.Input_neg i -> Some (not inputs.(i))
    | Signal.Gate _ -> None
  in
  let outputs = Array.make n_outputs false in
  (* INR: the latch row completes each result pair, inverting as needed. *)
  List.iteri
    (fun k signal ->
      let lr = prow latch_row in
      match direct_value signal with
      | Some v ->
        let v = if t.mapped.Tech_map.negated.(k) then not v else v in
        if programmed lr (output_main_col k) then write lr (output_main_col k) v;
        if programmed lr (output_comp_col k) then write lr (output_comp_col k) (not v)
      | None ->
        if t.mapped.Tech_map.negated.(k) then begin
          (* The gate drove the complement column; invert onto main. *)
          let comp = col_and (output_comp_col k) in
          if programmed lr (output_main_col k) then write lr (output_main_col k) (not comp)
        end
        else begin
          let main = col_and (output_main_col k) in
          if programmed lr (output_comp_col k) then write lr (output_comp_col k) (not main)
        end)
    (Network.outputs net);
  (* SO: read the main output columns. *)
  for k = 0 to n_outputs - 1 do
    outputs.(k) <- col_and (output_main_col k)
  done;
  Telemetry.count ~n:!writes "multilevel.writes";
  Telemetry.count ~n:!cr_copies "multilevel.cr_copies";
  (outputs, !writes)

let run_counting ?defects t inputs = run_impl ?defects t inputs

let run ?defects t inputs = fst (run_impl ?defects t inputs)

let run_with_upsets ?defects ~prng ~upset_rate t inputs =
  fst
    (run_impl ?defects ~upset:(fun () -> Mcx_util.Prng.bernoulli prng upset_rate) t inputs)

let agrees_with_reference ?defects t cover =
  let n = Mcx_logic.Mo_cover.n_inputs cover in
  if n > 16 then invalid_arg "Multilevel.agrees_with_reference: arity too large";
  let ok = ref true in
  for idx = 0 to (1 lsl n) - 1 do
    let v = Array.init n (fun i -> (idx lsr i) land 1 = 1) in
    if run ?defects t v <> Mcx_logic.Mo_cover.eval cover v then ok := false
  done;
  !ok
