open Mcx_logic

type params = {
  n_inputs : int;
  n_outputs : int;
  n_products : int;
  inclusion_ratio : float;
  seed : string;
  skew : float;
}

let area p = (p.n_products + p.n_outputs) * ((2 * p.n_inputs) + (2 * p.n_outputs))

let planned_switches p =
  int_of_float (Float.round (p.inclusion_ratio /. 100. *. float_of_int (area p)))

(* Split a switch budget between cube literals and product-output
   connections, respecting per-row minima (1 each) and maxima (I literals,
   O connections). The split is proportional to the maxima so dense
   many-output benchmarks (exp5) lean on connections and wide single-output
   ones on literals. *)
let split_budget p total =
  let pn = p.n_products in
  let min_lit = pn and max_lit = pn * p.n_inputs in
  let min_conn = pn and max_conn = pn * p.n_outputs in
  if total < min_lit + min_conn then (min_lit, min_conn)
  else if total > max_lit + max_conn then (max_lit, max_conn)
  else begin
    let lit_share =
      float_of_int total *. float_of_int max_lit /. float_of_int (max_lit + max_conn)
    in
    let lit = max min_lit (min max_lit (int_of_float (Float.round lit_share))) in
    let conn = max min_conn (min max_conn (total - lit)) in
    (* Re-balance when clamping the connections lost part of the budget. *)
    let lit = max min_lit (min max_lit (total - conn)) in
    (lit, conn)
  end

(* Deal [total] units to [n] rows, each within [lo..hi]. With zero skew the
   split is near-uniform; with positive skew the budget follows an
   exponential ramp over the row index so a heavy tail of big rows appears
   (rounding errors land in the largest rows, within bounds). *)
let distribute ~skew ~total ~n ~lo ~hi =
  if n = 0 then [||]
  else begin
    let weight i = exp (4. *. skew *. float_of_int i /. float_of_int (max 1 (n - 1))) in
    let weight_sum = ref 0. in
    for i = 0 to n - 1 do
      weight_sum := !weight_sum +. weight i
    done;
    let out =
      Array.init n (fun i ->
          let share = float_of_int total *. weight i /. !weight_sum in
          max lo (min hi (int_of_float (Float.round share))))
    in
    (* Repair the rounding drift against the requested total. *)
    let current = Array.fold_left ( + ) 0 out in
    let drift = ref (total - current) in
    let step = if !drift > 0 then 1 else -1 in
    let i = ref (n - 1) in
    while !drift <> 0 && !i >= 0 do
      let candidate = out.(!i) + step in
      if candidate >= lo && candidate <= hi then begin
        out.(!i) <- candidate;
        drift := !drift - step
      end
      else decr i
    done;
    out
  end

let generate p =
  if p.n_inputs <= 0 || p.n_outputs <= 0 || p.n_products <= 0 then
    invalid_arg "Synthetic.generate: counts must be positive";
  let prng =
    Mcx_util.Prng.of_key
      Mcx_util.Prng.Key.(
        int
          (int (int (string (root 0) p.seed) p.n_inputs) p.n_outputs)
          p.n_products)
  in
  let lit_total, conn_total = split_budget p (max 0 (planned_switches p - (2 * p.n_outputs))) in
  let lits_per_row =
    distribute ~skew:p.skew ~total:lit_total ~n:p.n_products ~lo:1 ~hi:p.n_inputs
  in
  let conns_per_row =
    distribute ~skew:p.skew ~total:conn_total ~n:p.n_products ~lo:1 ~hi:p.n_outputs
  in
  let seen = Hashtbl.create (2 * p.n_products) in
  (* Polarity bias rises with the skew: real PLAs' big products cluster on
     overlapping literal-column supports (think parity blocks), and it is
     that competition for the same functional crossbar rows — not the row
     weight alone — that drives mapping failures. *)
  let positive_bias = 0.5 +. (0.48 *. p.skew) in
  let random_cube n_literals =
    let vars = Mcx_util.Prng.sample_without_replacement prng ~k:n_literals ~n:p.n_inputs in
    let lits = Array.make p.n_inputs Literal.Absent in
    List.iter
      (fun v ->
        lits.(v) <-
          (if Mcx_util.Prng.bernoulli prng positive_bias then Literal.Pos else Literal.Neg))
      vars;
    Cube.of_literals lits
  in
  let rec fresh_cube n_literals attempts =
    let c = random_cube n_literals in
    let key = Cube.to_string c in
    if Hashtbl.mem seen key && attempts < 100 then fresh_cube n_literals (attempts + 1)
    else begin
      Hashtbl.replace seen key ();
      c
    end
  in
  (* Round-robin output membership so every output is hit at least once
     when the product count allows, then random extras per row. *)
  let rows =
    List.init p.n_products (fun i ->
        let cube = fresh_cube lits_per_row.(i) 0 in
        let outputs = Array.make p.n_outputs false in
        outputs.(i mod p.n_outputs) <- true;
        let extras = conns_per_row.(i) - 1 in
        let pool =
          Mcx_util.Prng.sample_without_replacement prng ~k:(min extras (p.n_outputs - 1))
            ~n:(p.n_outputs - 1)
        in
        List.iter
          (fun off ->
            (* skip over the already-set output *)
            let k = if off >= i mod p.n_outputs then off + 1 else off in
            outputs.(k) <- true)
          pool;
        { Mo_cover.cube; outputs })
  in
  Mo_cover.create ~share:false ~n_inputs:p.n_inputs ~n_outputs:p.n_outputs rows
