type source =
  | Arithmetic of (unit -> Mcx_logic.Mo_cover.t)
  | Synthetic of Synthetic.params

type paper_data = {
  two_level_area : int option;
  inclusion_ratio : float option;
  psucc_hba : float option;
  psucc_ea : float option;
  table1 : (int * int * int * int) option;
}

type t = {
  name : string;
  inputs : int;
  outputs : int;
  products : int;
  source : source;
  negation : source;
  in_table1 : bool;
  in_table2 : bool;
  paper : paper_data;
}

let no_paper =
  { two_level_area = None; inclusion_ratio = None; psucc_hba = None; psucc_ea = None; table1 = None }

let synthetic ?(ir = 20.) ?(skew = 0.) ~seed ~inputs ~outputs ~products () =
  Synthetic
    {
      Synthetic.n_inputs = inputs;
      n_outputs = outputs;
      n_products = products;
      inclusion_ratio = ir;
      seed;
      skew;
    }

(* Arithmetic negations are exact output-wise complements. *)
let complement_of source () =
  match source with
  | Arithmetic build -> Mcx_logic.Mo_cover.complement (build ())
  | Synthetic _ -> invalid_arg "Suite: synthetic sources use stats-matched negations"

let arith ?negation ~name ~inputs ~outputs ~products ~build ~in_table1 ~in_table2 ~paper () =
  let source = Arithmetic build in
  let negation =
    match negation with
    | Some build_neg -> Arithmetic build_neg
    | None -> Arithmetic (complement_of source)
  in
  { name; inputs; outputs; products; source; negation; in_table1; in_table2; paper }

let synth ~name ~inputs ~outputs ~products ?(ir = 20.) ?(skew = 0.) ~neg_products
    ?(neg_ir = 20.) ~in_table1 ~in_table2 ~paper () =
  {
    name;
    inputs;
    outputs;
    products;
    source = synthetic ~ir ~skew ~seed:name ~inputs ~outputs ~products ();
    negation =
      synthetic ~ir:neg_ir ~skew ~seed:(name ^ "~neg") ~inputs ~outputs
        ~products:neg_products ();
    in_table1;
    in_table2;
    paper;
  }

let all =
  [
    (* --- Table I + Table II circuits --- *)
    arith ~name:"rd53" ~inputs:5 ~outputs:3 ~products:31 ~build:Arith.rd53 ~in_table1:true
      ~in_table2:true
      ~paper:
        {
          two_level_area = Some 544;
          inclusion_ratio = Some 33.;
          psucc_hba = Some 98.;
          psucc_ea = Some 98.;
          table1 = Some (544, 3000, 560, 2000);
        }
      ();
    synth ~name:"con1" ~inputs:7 ~outputs:2 ~products:9 ~neg_products:9 ~in_table1:true
      ~in_table2:false
      ~paper:{ no_paper with table1 = Some (198, 480, 198, 527) }
      ();
    synth ~name:"misex1" ~inputs:8 ~outputs:7 ~products:12 ~ir:19. ~neg_products:46
      ~in_table1:true ~in_table2:true
      ~paper:
        {
          two_level_area = Some 570;
          inclusion_ratio = Some 19.;
          psucc_hba = Some 100.;
          psucc_ea = Some 100.;
          table1 = Some (570, 4836, 1590, 4161);
        }
      ();
    synth ~name:"bw" ~inputs:5 ~outputs:28 ~products:22 ~ir:12. ~neg_products:26
      ~in_table1:true ~in_table2:true
      ~paper:
        {
          two_level_area = Some 3300;
          inclusion_ratio = Some 12.;
          psucc_hba = Some 100.;
          psucc_ea = Some 100.;
          table1 = Some (3300, 52875, 3564, 53110);
        }
      ();
    arith ~name:"sqrt8" ~inputs:8 ~outputs:4 ~products:38 ~build:Arith.sqrt8 ~in_table1:true
      ~in_table2:true
      ~paper:
        {
          two_level_area = Some 792;
          inclusion_ratio = Some 21.;
          psucc_hba = Some 100.;
          psucc_ea = Some 100.;
          table1 = Some (1008, 2745, 792, 3300);
        }
      ();
    arith ~name:"rd84" ~inputs:8 ~outputs:4 ~products:255 ~build:Arith.rd84 ~in_table1:true
      ~in_table2:true
      ~paper:
        {
          two_level_area = Some 6216;
          inclusion_ratio = Some 33.;
          psucc_hba = Some 82.;
          psucc_ea = Some 89.;
          table1 = Some (6216, 48124, 7128, 20276);
        }
      ();
    synth ~name:"b12" ~inputs:15 ~outputs:9 ~products:43 ~neg_products:34 ~in_table1:true
      ~in_table2:false
      ~paper:{ no_paper with table1 = Some (2496, 7800, 2064, 2691) }
      ();
    (* t481 and cordic: structured stand-ins (see Arith) — random synthetic
       covers carry no circuit structure, so they cannot exhibit the
       multi-level wins these two benchmarks exist to demonstrate. *)
    arith ~name:"t481" ~inputs:16 ~outputs:1 ~products:481 ~build:Arith.t481
      ~negation:Arith.t481_negation ~in_table1:true ~in_table2:false
      ~paper:{ no_paper with table1 = Some (16388, 5760, 12274, 8034) }
      ();
    arith ~name:"cordic" ~inputs:23 ~outputs:2 ~products:914 ~build:Arith.cordic
      ~negation:Arith.cordic_negation ~in_table1:true ~in_table2:false
      ~paper:{ no_paper with table1 = Some (45800, 9594, 59650, 10668) }
      ();
    (* --- Table II-only circuits --- *)
    arith ~name:"squar5" ~inputs:5 ~outputs:8 ~products:25 ~build:Arith.squar5
      ~in_table1:false ~in_table2:true
      ~paper:
        {
          no_paper with
          two_level_area = Some 858;
          inclusion_ratio = Some 16.;
          psucc_hba = Some 100.;
          psucc_ea = Some 100.;
        }
      ();
    arith ~name:"inc" ~inputs:7 ~outputs:9 ~products:30 ~build:Arith.inc ~in_table1:false
      ~in_table2:true
      ~paper:
        {
          no_paper with
          two_level_area = Some 1248;
          inclusion_ratio = Some 17.;
          psucc_hba = Some 100.;
          psucc_ea = Some 100.;
        }
      ();
    synth ~name:"sao2" ~inputs:10 ~outputs:4 ~products:58 ~ir:29. ~neg_products:58
      ~in_table1:false ~in_table2:true
      ~paper:
        {
          no_paper with
          two_level_area = Some 1736;
          inclusion_ratio = Some 29.;
          psucc_hba = Some 94.;
          psucc_ea = Some 97.;
        }
      ();
    arith ~name:"rd73" ~inputs:7 ~outputs:3 ~products:127 ~build:Arith.rd73
      ~in_table1:false ~in_table2:true
      ~paper:
        {
          no_paper with
          two_level_area = Some 2600;
          inclusion_ratio = Some 34.;
          psucc_hba = Some 78.;
          psucc_ea = Some 92.;
        }
      ();
    (* clip: our arithmetic saturator (Arith.clip) minimizes to ~13
       products — far denser logic hides behind the MCNC clip's 120
       products, so the Table II entry uses the stats-matched synthetic
       and the arithmetic version stays available for the examples. *)
    synth ~name:"clip" ~inputs:9 ~outputs:5 ~products:120 ~ir:23. ~skew:1.0
      ~neg_products:120 ~in_table1:false ~in_table2:true
      ~paper:
        {
          no_paper with
          two_level_area = Some 3500;
          inclusion_ratio = Some 23.;
          psucc_hba = Some 76.;
          psucc_ea = Some 79.;
        }
      ();
    synth ~name:"ex1010" ~inputs:10 ~outputs:10 ~products:284 ~ir:23. ~neg_products:284
      ~in_table1:false ~in_table2:true
      ~paper:
        {
          no_paper with
          two_level_area = Some 11760;
          inclusion_ratio = Some 23.;
          psucc_hba = Some 100.;
          psucc_ea = Some 100.;
        }
      ();
    synth ~name:"table3" ~inputs:14 ~outputs:14 ~products:175 ~ir:25. ~neg_products:175
      ~in_table1:false ~in_table2:true
      ~paper:
        {
          no_paper with
          two_level_area = Some 10584;
          inclusion_ratio = Some 25.;
          psucc_hba = Some 100.;
          psucc_ea = Some 100.;
        }
      ();
    synth ~name:"misex3c" ~inputs:14 ~outputs:14 ~products:197 ~ir:13. ~neg_products:197
      ~in_table1:false ~in_table2:true
      ~paper:
        {
          no_paper with
          two_level_area = Some 11856;
          inclusion_ratio = Some 13.;
          psucc_hba = Some 100.;
          psucc_ea = Some 100.;
        }
      ();
    synth ~name:"exp5" ~inputs:8 ~outputs:63 ~products:74 ~ir:10. ~skew:0.2 ~neg_products:74
      ~in_table1:false ~in_table2:true
      ~paper:
        {
          no_paper with
          two_level_area = Some 19454;
          inclusion_ratio = Some 10.;
          psucc_hba = Some 65.;
          psucc_ea = Some 80.;
        }
      ();
    synth ~name:"apex4" ~inputs:9 ~outputs:19 ~products:436 ~ir:21. ~neg_products:436
      ~in_table1:false ~in_table2:true
      ~paper:
        {
          no_paper with
          two_level_area = Some 25480;
          inclusion_ratio = Some 21.;
          psucc_hba = Some 100.;
          psucc_ea = Some 100.;
        }
      ();
    synth ~name:"alu4" ~inputs:14 ~outputs:8 ~products:575 ~ir:19. ~neg_products:575
      ~in_table1:false ~in_table2:true
      ~paper:
        {
          no_paper with
          two_level_area = Some 25652;
          inclusion_ratio = Some 19.;
          psucc_hba = Some 100.;
          psucc_ea = Some 100.;
        }
      ();
  ]

let table1 = List.filter (fun b -> b.in_table1) all
let table2 = List.filter (fun b -> b.in_table2) all

let find name =
  match List.find_opt (fun b -> b.name = name) all with
  | Some b -> b
  | None -> raise Not_found

(* Guarded by [memo_mutex] below; covers are built once per process. *)
let memo : (string, Mcx_logic.Mo_cover.t) Hashtbl.t =
  Hashtbl.create 32 [@@mcx.lint.allow "domain-toplevel-state"]
let memo_mutex = Mutex.create ()

(* The mutex keeps the memo safe when covers are first requested from
   parallel pool workers; building outside the lock could duplicate work
   but never produce different covers, so holding it across the build is
   the simpler correct choice (builds run once per process). *)
let build key source =
  Mutex.lock memo_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock memo_mutex)
    (fun () ->
      match Hashtbl.find_opt memo key with
      | Some cover -> cover
      | None ->
        let cover =
          match source with
          | Arithmetic f -> f ()
          | Synthetic params -> Synthetic.generate params
        in
        Hashtbl.replace memo key cover;
        cover)

let cover b = build b.name b.source
let negated_cover b = build (b.name ^ "~neg") b.negation
