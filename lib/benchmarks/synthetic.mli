(** Stats-matched synthetic PLAs.

    For benchmarks whose functional definition is not public (misex1, bw,
    con1, b12, t481, cordic, sao2, ex1010, table3, misex3c, exp5, apex4,
    alu4) the defect-tolerance experiments only depend on the function
    matrix's shape: its dimensions (I, O, P) and its switch density (the
    inclusion ratio IR). Table II publishes exactly those statistics, so a
    deterministic generator that reproduces them reproduces the mapping
    difficulty distribution. See DESIGN.md §3 for the substitution
    argument. *)

type params = {
  n_inputs : int;
  n_outputs : int;
  n_products : int;
  inclusion_ratio : float;  (** target IR in percent, e.g. 19.0 *)
  seed : string;
      (** per-benchmark stream label, mixed into a full-width
          {!Mcx_util.Prng.Key} together with (I, O, P) *)
  skew : float;
      (** row-weight skew in [0, 1]: 0 spreads the switch budget uniformly
          over the product rows; larger values concentrate it on a heavy
          tail, as real PLAs do. Heavy rows dominate the mapping failure
          probability, so this is the knob that calibrates a synthetic
          benchmark's Table II success rate at fixed (I, O, P, IR). *)
}

val generate : params -> Mcx_logic.Mo_cover.t
(** A cover with exactly [n_products] distinct product rows whose switch
    count approximates [inclusion_ratio] x area. Every product belongs to
    at least one output, every output receives at least one product (when
    [n_products >= 1]), and every cube carries at least one literal.
    @raise Invalid_argument when the parameters are not satisfiable
    (e.g. IR requiring more literals than 2I per row). *)

val planned_switches : params -> int
(** The switch budget the generator aims for:
    [round (IR/100 x (P+O) x (2I+2O))]. *)
