open Mcx_crossbar
open Mcx_benchmarks

type row = {
  benchmark : string;
  two_area : int;
  multi_area : int;
  two_steps : int;
  multi_steps_serial : int;
  multi_steps_parallel : int;
  two_writes : int;
  multi_writes : int;
}

let row_codec =
  Mcx_util.Checkpoint.Codec.(
    conv
      (fun r ->
        ( (r.two_area, r.multi_area, r.two_steps, r.multi_steps_serial),
          (r.multi_steps_parallel, r.two_writes, r.multi_writes) ))
      (fun ( (two_area, multi_area, two_steps, multi_steps_serial),
             (multi_steps_parallel, two_writes, multi_writes) ) ->
        {
          benchmark = "";
          two_area;
          multi_area;
          two_steps;
          multi_steps_serial;
          multi_steps_parallel;
          two_writes;
          multi_writes;
        })
      (pair (quad int int int int) (triple int int int)))

let run ?(benchmarks = [ "rd53"; "squar5"; "sqrt8"; "inc"; "rd73"; "t481" ]) () =
  Mcx_util.Telemetry.span "experiment.tradeoff" @@ fun () ->
  let ckpt = Mcx_util.Checkpoint.start ~experiment:"tradeoff" ~seed:0 () in
  let benches = Array.of_list benchmarks in
  let section = Printf.sprintf "benches=%s" (String.concat "," benchmarks) in
  let outcomes =
    Mcx_util.Checkpoint.map ckpt
      ~pool:(Mcx_util.Pool.default ())
      ~section ~n:(Array.length benches) ~codec:row_codec
      (fun i ->
        let name = benches.(i) in
        let cover = Suite.cover (Suite.find name) in
        let mapped = Mcx_netlist.Tech_map.map_mo cover in
        {
          benchmark = name;
          two_area = (Cost.two_level cover).Cost.area;
          multi_area = Cost.multi_level_area mapped;
          two_steps = Cost.two_level_steps;
          multi_steps_serial = Cost.multi_level_steps mapped;
          multi_steps_parallel = Cost.multi_level_steps ~level_parallel:true mapped;
          two_writes = Cost.two_level_writes cover;
          multi_writes = Cost.multi_level_writes mapped;
        })
  in
  List.filter_map Fun.id
    (List.mapi
       (fun i outcome ->
         Option.map (fun row -> { row with benchmark = benches.(i) }) outcome)
       (Array.to_list outcomes))

let to_table rows =
  let table =
    Mcx_util.Texttable.create
      [
        "bench"; "2lvl area"; "multi area"; "2lvl steps"; "multi steps";
        "multi steps (lvl-par)"; "2lvl writes"; "multi writes";
      ]
  in
  List.iter
    (fun r ->
      Mcx_util.Texttable.add_row table
        [
          r.benchmark;
          string_of_int r.two_area;
          string_of_int r.multi_area;
          string_of_int r.two_steps;
          string_of_int r.multi_steps_serial;
          string_of_int r.multi_steps_parallel;
          string_of_int r.two_writes;
          string_of_int r.multi_writes;
        ])
    rows;
  table
