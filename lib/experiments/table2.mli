(** Table II: success rate and runtime of the hybrid (HBA) vs exact (EA)
    mapping algorithms on optimum-size crossbars with 10% stuck-open
    defects, 200 Monte Carlo samples per circuit.

    The paper's claims reproduced here: HBA is one to two orders of
    magnitude faster while giving up at most ~15 percentage points of
    success rate, and both algorithms degrade on high-IR circuits (rd73,
    clip, rd84, sao2, exp5). Following §IV.B, each circuit is implemented
    as the cheaper of the function and its negation (dual optimization). *)

type row = {
  name : string;
  inputs : int;
  outputs : int;
  products : int;
  area : int;
  inclusion_ratio : float;
  dual_used : bool;
  hba_psucc : float;
  hba_mean_seconds : float;
  ea_psucc : float;
  ea_mean_seconds : float;
  hba_all_valid : bool;  (** every successful HBA assignment re-verified *)
  ea_all_valid : bool;
  paper : Mcx_benchmarks.Suite.paper_data;
}

val run_row :
  ?pool:Mcx_util.Pool.t ->
  ?samples:int ->
  ?defect_rate:float ->
  seed:int ->
  Mcx_benchmarks.Suite.t ->
  row
(** Monte Carlo for one circuit; [samples] defaults to 200 and
    [defect_rate] to 0.10 (stuck-open only, as in §V). Trials are
    distributed over [pool] (default {!Mcx_util.Pool.default}); success
    columns are job-count independent, the timing columns are measured
    per trial on whichever domain ran it. *)

val run :
  ?pool:Mcx_util.Pool.t ->
  ?samples:int ->
  ?defect_rate:float ->
  ?benchmarks:string list ->
  seed:int ->
  unit ->
  row list

val to_table : row list -> Mcx_util.Texttable.t
val to_csv : row list -> string
