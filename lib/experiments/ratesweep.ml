open Mcx_util
open Mcx_crossbar
open Mcx_mapping
open Mcx_benchmarks

type point = {
  defect_rate : float;
  hba_psucc : float;
  ea_psucc : float;
  annealing_psucc : float;
}

type sweep = { benchmark : string; samples : int; points : point list }

let run ?pool ?(samples = 100)
    ?(defect_rates = [ 0.02; 0.05; 0.08; 0.10; 0.12; 0.15; 0.20 ]) ~seed ~benchmark () =
  Telemetry.span "experiment.ratesweep" @@ fun () ->
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let ckpt = Checkpoint.start ~experiment:"ratesweep" ~seed () in
  let bench = Suite.find benchmark in
  let cover = Suite.cover bench in
  let fm = Function_matrix.build cover in
  let geometry = fm.Function_matrix.geometry in
  let rows = Geometry.rows geometry and cols = Geometry.cols geometry in
  let key = Prng.Key.(string (string (root seed) "ratesweep") benchmark) in
  let point defect_rate =
    let point_key = Prng.Key.float key defect_rate in
    let trial i =
      let prng = Prng.derive point_key i in
      let defects =
        Defect_map.random prng ~rows ~cols ~open_rate:defect_rate ~closed_rate:0.
      in
      let cm = Matching.cm_of_defects defects in
      let hba = Hybrid.map fm cm <> None in
      let ea = Exact.feasible fm cm in
      let ann =
        match Annealing.map ~prng fm cm with
        | Some assignment ->
          assert (Matching.check_assignment ~fm:fm.Function_matrix.matrix ~cm assignment);
          true
        | None -> false
      in
      (hba, ea, ann)
    in
    let section =
      Printf.sprintf "bench=%s rate=%s samples=%d" benchmark
        (Json_out.float_repr defect_rate)
        samples
    in
    let outcomes =
      Checkpoint.map ckpt ~pool ~section ~n:samples
        ~codec:Checkpoint.Codec.(triple bool bool bool)
        trial
    in
    let (hba, ea, ann), completed =
      Checkpoint.fold_completed outcomes ~init:(0, 0, 0)
        ~f:(fun (h, e, a) (hba, ea, ann) ->
          ( (if hba then h + 1 else h),
            (if ea then e + 1 else e),
            if ann then a + 1 else a ))
    in
    let pct c = 100. *. float_of_int c /. float_of_int (max 1 completed) in
    { defect_rate; hba_psucc = pct hba; ea_psucc = pct ea; annealing_psucc = pct ann }
  in
  { benchmark; samples; points = List.map point defect_rates }

let to_table sweep =
  let table =
    Texttable.create [ "defect rate %"; "HBA Psucc"; "EA Psucc"; "annealing Psucc" ]
  in
  List.iter
    (fun p ->
      Texttable.add_row table
        [
          Printf.sprintf "%.0f" (100. *. p.defect_rate);
          Printf.sprintf "%.0f" p.hba_psucc;
          Printf.sprintf "%.0f" p.ea_psucc;
          Printf.sprintf "%.0f" p.annealing_psucc;
        ])
    sweep.points;
  table
