open Mcx_logic
open Mcx_util

type sample = {
  n_products : int;
  two_level_area : int;
  multi_level_area : int;
  gates : int;
}

type panel = { n_inputs : int; samples : sample list; success_rate : float }

let paper_success_rate = function
  | 8 -> Some 65.
  | 9 -> Some 60.
  | 10 -> Some 54.
  | 15 -> Some 33.
  | _ -> None

let one_sample prng ~n_inputs =
  let params = Random_sop.paper_params prng ~n_inputs in
  let f = Random_sop.random_cover prng params in
  let mo = Mo_cover.of_single f in
  let two_level_area = (Mcx_crossbar.Cost.two_level mo).Mcx_crossbar.Cost.area in
  let mapped = Mcx_netlist.Tech_map.map_cover f in
  let multi_level_area = Mcx_crossbar.Cost.multi_level_area mapped in
  {
    n_products = Cover.size f;
    two_level_area;
    multi_level_area;
    gates = Mcx_netlist.Network.gate_count mapped.Mcx_netlist.Tech_map.network;
  }

let sample_codec =
  Checkpoint.Codec.(
    conv
      (fun s -> (s.n_products, s.two_level_area, s.multi_level_area, s.gates))
      (fun (n_products, two_level_area, multi_level_area, gates) ->
        { n_products; two_level_area; multi_level_area; gates })
      (quad int int int int))

let run_panel ?pool ?(samples = 200) ~seed ~n_inputs () =
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let ckpt = Checkpoint.start ~experiment:"fig6" ~seed () in
  let key = Prng.Key.(int (string (root seed) "fig6") n_inputs) in
  let section = Printf.sprintf "inputs=%d samples=%d" n_inputs samples in
  let outcomes =
    Checkpoint.map ckpt ~pool ~section ~n:samples ~codec:sample_codec (fun i ->
        one_sample (Prng.derive key i) ~n_inputs)
  in
  let raw = List.filter_map Fun.id (Array.to_list outcomes) in
  let sorted =
    List.stable_sort (fun a b -> Int.compare a.n_products b.n_products) raw
  in
  let wins = List.filter (fun s -> s.multi_level_area < s.two_level_area) raw in
  let success_rate =
    100. *. float_of_int (List.length wins) /. float_of_int (max 1 (List.length raw))
  in
  { n_inputs; samples = sorted; success_rate }

let run ?pool ?(samples = 200) ?(input_sizes = [ 8; 9; 10; 15 ]) ~seed () =
  Telemetry.span "experiment.fig6" @@ fun () ->
  List.map (fun n_inputs -> run_panel ?pool ~samples ~seed ~n_inputs ()) input_sizes

let median_of f panel =
  Stats.median (List.map (fun s -> float_of_int (f s)) panel.samples)

let summary_table panels =
  let table =
    Texttable.create
      [
        "inputs"; "samples"; "success % (paper)"; "success % (ours)"; "median 2-level";
        "median multi-level";
      ]
  in
  List.iter
    (fun panel ->
      Texttable.add_row table
        [
          string_of_int panel.n_inputs;
          string_of_int (List.length panel.samples);
          (match paper_success_rate panel.n_inputs with
          | Some r -> Printf.sprintf "%.0f" r
          | None -> "-");
          Printf.sprintf "%.0f" panel.success_rate;
          Printf.sprintf "%.0f" (median_of (fun s -> s.two_level_area) panel);
          Printf.sprintf "%.0f" (median_of (fun s -> s.multi_level_area) panel);
        ])
    panels;
  table

let series_csv panel =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "sample,products,two_level_area,multi_level_area,gates\n";
  List.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%d,%d\n" i s.n_products s.two_level_area
           s.multi_level_area s.gates))
    panel.samples;
  Buffer.contents buf
