(** Fig. 6: two-level vs multi-level area on random Boolean functions.

    The paper draws 200 random single-output functions per input size (8,
    9, 10 and 15), synthesizes each both ways and sorts the samples by
    product count. The headline numbers are the per-panel success rates —
    the fraction of samples where the multi-level design is strictly
    cheaper: 65% / 60% / 54% / 33% in the paper, falling with input size
    and rising with product count. *)

type sample = {
  n_products : int;
  two_level_area : int;
  multi_level_area : int;
  gates : int;  (** G of the mapped NAND network *)
}

type panel = {
  n_inputs : int;
  samples : sample list;  (** sorted by ascending product count *)
  success_rate : float;  (** percent of samples with multi < two *)
}

val run_panel :
  ?pool:Mcx_util.Pool.t -> ?samples:int -> seed:int -> n_inputs:int -> unit -> panel
(** One panel; [samples] defaults to the paper's 200. Samples are
    independent trials distributed over [pool] (default
    {!Mcx_util.Pool.default}), each with its own derived stream. *)

val run :
  ?pool:Mcx_util.Pool.t ->
  ?samples:int ->
  ?input_sizes:int list ->
  seed:int ->
  unit ->
  panel list
(** All panels; [input_sizes] defaults to the paper's [8; 9; 10; 15]. *)

val summary_table : panel list -> Mcx_util.Texttable.t
(** One row per panel: input size, success rate (paper vs measured),
    median areas. *)

val series_csv : panel -> string
(** The sorted per-sample series of one panel (sample index, product count,
    two-level area, multi-level area) — the data behind the plot. *)

val paper_success_rate : int -> float option
(** The paper's success rate for an input size, when published. *)
