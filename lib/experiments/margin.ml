open Mcx_crossbar
open Mcx_benchmarks

type width_point = { width : int; margin_volts : float }

type benchmark_row = {
  name : string;
  columns : int;
  margin_volts : float;
  reliable : bool;
}

type result = {
  curve : width_point list;
  benchmarks : benchmark_row list;
  max_reliable_width : int;
}

let run ?(widths = [ 1; 8; 16; 32; 64; 128; 192; 256; 320 ]) ?benchmarks () =
  Mcx_util.Telemetry.span "experiment.margin" @@ fun () ->
  let selected =
    match benchmarks with
    | Some names -> List.map Suite.find names
    | None -> Suite.table2
  in
  let limit = Analog.max_reliable_width () in
  let curve =
    List.map (fun width -> { width; margin_volts = Analog.sense_margin ~width () }) widths
  in
  let benchmark_row bench =
    let cover = Suite.cover bench in
    let report = Cost.two_level cover in
    let columns = report.Cost.cols in
    {
      name = bench.Suite.name;
      columns;
      margin_volts = Analog.sense_margin ~width:columns ();
      reliable = columns <= limit;
    }
  in
  { curve; benchmarks = List.map benchmark_row selected; max_reliable_width = limit }

let to_tables result =
  let curve = Mcx_util.Texttable.create [ "line width"; "sense margin (V)" ] in
  List.iter
    (fun p ->
      Mcx_util.Texttable.add_row curve
        [ string_of_int p.width; Printf.sprintf "%.3f" p.margin_volts ])
    result.curve;
  let benchmarks =
    Mcx_util.Texttable.create [ "benchmark"; "columns"; "margin (V)"; "electrically ok" ]
  in
  List.iter
    (fun r ->
      Mcx_util.Texttable.add_row benchmarks
        [
          r.name;
          string_of_int r.columns;
          Printf.sprintf "%.3f" r.margin_volts;
          (if r.reliable then "yes" else "NO");
        ])
    result.benchmarks;
  (curve, benchmarks)
