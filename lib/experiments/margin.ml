open Mcx_crossbar
open Mcx_benchmarks

type width_point = { width : int; margin_volts : float }

type benchmark_row = {
  name : string;
  columns : int;
  margin_volts : float;
  reliable : bool;
}

type result = {
  curve : width_point list;
  benchmarks : benchmark_row list;
  max_reliable_width : int;
}

let run ?(widths = [ 1; 8; 16; 32; 64; 128; 192; 256; 320 ]) ?benchmarks () =
  Mcx_util.Telemetry.span "experiment.margin" @@ fun () ->
  let selected =
    match benchmarks with
    | Some names -> List.map Suite.find names
    | None -> Suite.table2
  in
  let limit = Analog.max_reliable_width () in
  let curve =
    List.map (fun width -> { width; margin_volts = Analog.sense_margin ~width () }) widths
  in
  (* The analog curve is trivial; the per-benchmark rows need a cover
     build each, so those are the journaled unit. *)
  let ckpt = Mcx_util.Checkpoint.start ~experiment:"margin" ~seed:0 () in
  let benches = Array.of_list selected in
  let section =
    Printf.sprintf "benches=%s"
      (String.concat "," (List.map (fun b -> b.Suite.name) selected))
  in
  let outcomes =
    Mcx_util.Checkpoint.map ckpt
      ~pool:(Mcx_util.Pool.default ())
      ~section ~n:(Array.length benches)
      ~codec:Mcx_util.Checkpoint.Codec.(triple int float bool)
      (fun i ->
        let cover = Suite.cover benches.(i) in
        let columns = (Cost.two_level cover).Cost.cols in
        (columns, Analog.sense_margin ~width:columns (), columns <= limit))
  in
  let rows =
    List.filter_map Fun.id
      (List.mapi
         (fun i outcome ->
           Option.map
             (fun (columns, margin_volts, reliable) ->
               { name = benches.(i).Suite.name; columns; margin_volts; reliable })
             outcome)
         (Array.to_list outcomes))
  in
  { curve; benchmarks = rows; max_reliable_width = limit }

let to_tables result =
  let curve = Mcx_util.Texttable.create [ "line width"; "sense margin (V)" ] in
  List.iter
    (fun p ->
      Mcx_util.Texttable.add_row curve
        [ string_of_int p.width; Printf.sprintf "%.3f" p.margin_volts ])
    result.curve;
  let benchmarks =
    Mcx_util.Texttable.create [ "benchmark"; "columns"; "margin (V)"; "electrically ok" ]
  in
  List.iter
    (fun r ->
      Mcx_util.Texttable.add_row benchmarks
        [
          r.name;
          string_of_int r.columns;
          Printf.sprintf "%.3f" r.margin_volts;
          (if r.reliable then "yes" else "NO");
        ])
    result.benchmarks;
  (curve, benchmarks)
