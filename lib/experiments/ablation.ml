open Mcx_util
open Mcx_logic
open Mcx_crossbar
open Mcx_mapping
open Mcx_benchmarks

(* --- factoring ablation ------------------------------------------- *)

type factoring_row = {
  n_inputs : int;
  flat_median_area : float;
  quick_median_area : float;
  kernel_median_area : float;
  flat_win_rate : float;
  quick_win_rate : float;
  kernel_win_rate : float;
}

let factoring ?pool ?(samples = 60) ?(input_sizes = [ 8; 10 ]) ~seed () =
  Telemetry.span "experiment.ablation_factoring" @@ fun () ->
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let row n_inputs =
    let key = Prng.Key.(int (string (root seed) "ablation-factoring") n_inputs) in
    let trial i =
      let prng = Prng.derive key i in
      let params = Random_sop.paper_params prng ~n_inputs in
      let f = Random_sop.random_cover prng params in
      let two = (Cost.two_level (Mo_cover.of_single f)).Cost.area in
      let area strategy =
        Cost.multi_level_area (Mcx_netlist.Tech_map.map_cover ~strategy f)
      in
      ( two,
        area Mcx_netlist.Tech_map.Flat,
        area Mcx_netlist.Tech_map.Quick,
        area Mcx_netlist.Tech_map.Kernel )
    in
    let results = Array.to_list (Pool.map pool samples trial) in
    let median f = Stats.median (List.map (fun r -> float_of_int (f r)) results) in
    let win f =
      Stats.success_rate (List.map (fun ((two, _, _, _) as r) -> f r < two) results)
    in
    {
      n_inputs;
      flat_median_area = median (fun (_, a, _, _) -> a);
      quick_median_area = median (fun (_, _, a, _) -> a);
      kernel_median_area = median (fun (_, _, _, a) -> a);
      flat_win_rate = win (fun (_, a, _, _) -> a);
      quick_win_rate = win (fun (_, _, a, _) -> a);
      kernel_win_rate = win (fun (_, _, _, a) -> a);
    }
  in
  List.map row input_sizes

let factoring_table rows =
  let table =
    Texttable.create
      [
        "inputs"; "flat area (med)"; "quick area (med)"; "kernel area (med)";
        "flat win %"; "quick win %"; "kernel win %";
      ]
  in
  List.iter
    (fun r ->
      Texttable.add_row table
        [
          string_of_int r.n_inputs;
          Printf.sprintf "%.0f" r.flat_median_area;
          Printf.sprintf "%.0f" r.quick_median_area;
          Printf.sprintf "%.0f" r.kernel_median_area;
          Printf.sprintf "%.0f" r.flat_win_rate;
          Printf.sprintf "%.0f" r.quick_win_rate;
          Printf.sprintf "%.0f" r.kernel_win_rate;
        ])
    rows;
  table

(* --- hybrid ordering ablation -------------------------------------- *)

type ordering_row = {
  benchmark : string;
  top_down_psucc : float;
  hardest_first_psucc : float;
  exact_psucc : float;
}

let ordering ?pool ?(samples = 100) ?(defect_rate = 0.10)
    ?(benchmarks = [ "rd53"; "rd73"; "rd84"; "sao2"; "exp5" ]) ~seed () =
  Telemetry.span "experiment.ablation_ordering" @@ fun () ->
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let row benchmark =
    let bench = Suite.find benchmark in
    let cover = Suite.cover bench in
    let fm = Function_matrix.build cover in
    let geometry = fm.Function_matrix.geometry in
    let rows = Geometry.rows geometry and cols = Geometry.cols geometry in
    let key =
      Prng.Key.(
        float (string (string (root seed) "ablation-ordering") benchmark) defect_rate)
    in
    let trial i =
      let prng = Prng.derive key i in
      let defects =
        Defect_map.random prng ~rows ~cols ~open_rate:defect_rate ~closed_rate:0.
      in
      let cm = Matching.cm_of_defects defects in
      ( Hybrid.map ~order:Hybrid.Top_down fm cm <> None,
        Hybrid.map ~order:Hybrid.Hardest_first fm cm <> None,
        Exact.feasible fm cm )
    in
    let top, hardest, exact =
      Pool.map_reduce pool ~n:samples ~map:trial ~init:(0, 0, 0)
        ~fold:(fun (t, h, e) (top, hardest, exact) ->
          ( (if top then t + 1 else t),
            (if hardest then h + 1 else h),
            if exact then e + 1 else e ))
    in
    let pct c = 100. *. float_of_int c /. float_of_int samples in
    {
      benchmark;
      top_down_psucc = pct top;
      hardest_first_psucc = pct hardest;
      exact_psucc = pct exact;
    }
  in
  List.map row benchmarks

type fanin_row = {
  benchmark : string;
  fanin_limit : int;
  gates : int;
  area : int;
  steps : int;
}

let fanin ?(fanin_limits = [ 2; 4; 0 ]) ?(benchmarks = [ "rd53"; "sqrt8"; "t481" ]) () =
  Telemetry.span "experiment.ablation_fanin" @@ fun () ->
  List.concat_map
    (fun benchmark ->
      let cover = Suite.cover (Suite.find benchmark) in
      List.map
        (fun limit ->
          let mapped =
            if limit = 0 then Mcx_netlist.Tech_map.map_mo cover
            else Mcx_netlist.Tech_map.map_mo ~fanin_limit:(max 2 limit) cover
          in
          {
            benchmark;
            fanin_limit = limit;
            gates = Mcx_netlist.Network.gate_count mapped.Mcx_netlist.Tech_map.network;
            area = Cost.multi_level_area mapped;
            steps = Cost.multi_level_steps mapped;
          })
        fanin_limits)
    benchmarks

let fanin_table rows =
  let table =
    Texttable.create [ "benchmark"; "fan-in limit"; "NAND gates"; "multi-level area"; "steps" ]
  in
  List.iter
    (fun r ->
      Texttable.add_row table
        [
          r.benchmark;
          (if r.fanin_limit = 0 then "n (paper)" else string_of_int r.fanin_limit);
          string_of_int r.gates;
          string_of_int r.area;
          string_of_int r.steps;
        ])
    rows;
  table

let ordering_table rows =
  let table =
    Texttable.create
      [ "benchmark"; "HBA top-down"; "HBA hardest-first"; "EA (upper bound)" ]
  in
  List.iter
    (fun (r : ordering_row) ->
      Texttable.add_row table
        [
          r.benchmark;
          Printf.sprintf "%.0f" r.top_down_psucc;
          Printf.sprintf "%.0f" r.hardest_first_psucc;
          Printf.sprintf "%.0f" r.exact_psucc;
        ])
    rows;
  table
