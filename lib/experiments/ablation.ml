open Mcx_util
open Mcx_logic
open Mcx_crossbar
open Mcx_mapping
open Mcx_benchmarks

(* --- factoring ablation ------------------------------------------- *)

type factoring_row = {
  n_inputs : int;
  flat_median_area : float;
  quick_median_area : float;
  kernel_median_area : float;
  flat_win_rate : float;
  quick_win_rate : float;
  kernel_win_rate : float;
}

let factoring ?pool ?(samples = 60) ?(input_sizes = [ 8; 10 ]) ~seed () =
  Telemetry.span "experiment.ablation_factoring" @@ fun () ->
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let ckpt = Checkpoint.start ~experiment:"ablation" ~seed () in
  let row n_inputs =
    let key = Prng.Key.(int (string (root seed) "ablation-factoring") n_inputs) in
    let trial i =
      let prng = Prng.derive key i in
      let params = Random_sop.paper_params prng ~n_inputs in
      let f = Random_sop.random_cover prng params in
      let two = (Cost.two_level (Mo_cover.of_single f)).Cost.area in
      let area strategy =
        Cost.multi_level_area (Mcx_netlist.Tech_map.map_cover ~strategy f)
      in
      ( two,
        area Mcx_netlist.Tech_map.Flat,
        area Mcx_netlist.Tech_map.Quick,
        area Mcx_netlist.Tech_map.Kernel )
    in
    let section = Printf.sprintf "factoring inputs=%d samples=%d" n_inputs samples in
    let outcomes =
      Checkpoint.map ckpt ~pool ~section ~n:samples
        ~codec:Checkpoint.Codec.(quad int int int int)
        trial
    in
    let results = List.filter_map Fun.id (Array.to_list outcomes) in
    let median f =
      match results with
      | [] -> Float.nan
      | l -> Stats.median (List.map (fun r -> float_of_int (f r)) l)
    in
    let win f =
      match results with
      | [] -> Float.nan
      | l -> Stats.success_rate (List.map (fun ((two, _, _, _) as r) -> f r < two) l)
    in
    {
      n_inputs;
      flat_median_area = median (fun (_, a, _, _) -> a);
      quick_median_area = median (fun (_, _, a, _) -> a);
      kernel_median_area = median (fun (_, _, _, a) -> a);
      flat_win_rate = win (fun (_, a, _, _) -> a);
      quick_win_rate = win (fun (_, _, a, _) -> a);
      kernel_win_rate = win (fun (_, _, _, a) -> a);
    }
  in
  List.map row input_sizes

let factoring_table rows =
  let table =
    Texttable.create
      [
        "inputs"; "flat area (med)"; "quick area (med)"; "kernel area (med)";
        "flat win %"; "quick win %"; "kernel win %";
      ]
  in
  List.iter
    (fun r ->
      Texttable.add_row table
        [
          string_of_int r.n_inputs;
          Printf.sprintf "%.0f" r.flat_median_area;
          Printf.sprintf "%.0f" r.quick_median_area;
          Printf.sprintf "%.0f" r.kernel_median_area;
          Printf.sprintf "%.0f" r.flat_win_rate;
          Printf.sprintf "%.0f" r.quick_win_rate;
          Printf.sprintf "%.0f" r.kernel_win_rate;
        ])
    rows;
  table

(* --- hybrid ordering ablation -------------------------------------- *)

type ordering_row = {
  benchmark : string;
  top_down_psucc : float;
  hardest_first_psucc : float;
  exact_psucc : float;
}

let ordering ?pool ?(samples = 100) ?(defect_rate = 0.10)
    ?(benchmarks = [ "rd53"; "rd73"; "rd84"; "sao2"; "exp5" ]) ~seed () =
  Telemetry.span "experiment.ablation_ordering" @@ fun () ->
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let ckpt = Checkpoint.start ~experiment:"ablation" ~seed () in
  let row benchmark =
    let bench = Suite.find benchmark in
    let cover = Suite.cover bench in
    let fm = Function_matrix.build cover in
    let geometry = fm.Function_matrix.geometry in
    let rows = Geometry.rows geometry and cols = Geometry.cols geometry in
    let key =
      Prng.Key.(
        float (string (string (root seed) "ablation-ordering") benchmark) defect_rate)
    in
    let trial i =
      let prng = Prng.derive key i in
      let defects =
        Defect_map.random prng ~rows ~cols ~open_rate:defect_rate ~closed_rate:0.
      in
      let cm = Matching.cm_of_defects defects in
      ( Hybrid.map ~order:Hybrid.Top_down fm cm <> None,
        Hybrid.map ~order:Hybrid.Hardest_first fm cm <> None,
        Exact.feasible fm cm )
    in
    let section =
      Printf.sprintf "ordering bench=%s rate=%s samples=%d" benchmark
        (Json_out.float_repr defect_rate)
        samples
    in
    let outcomes =
      Checkpoint.map ckpt ~pool ~section ~n:samples
        ~codec:Checkpoint.Codec.(triple bool bool bool)
        trial
    in
    let (top, hardest, exact), completed =
      Checkpoint.fold_completed outcomes ~init:(0, 0, 0)
        ~f:(fun (t, h, e) (top, hardest, exact) ->
          ( (if top then t + 1 else t),
            (if hardest then h + 1 else h),
            if exact then e + 1 else e ))
    in
    let pct c = 100. *. float_of_int c /. float_of_int (max 1 completed) in
    {
      benchmark;
      top_down_psucc = pct top;
      hardest_first_psucc = pct hardest;
      exact_psucc = pct exact;
    }
  in
  List.map row benchmarks

type fanin_row = {
  benchmark : string;
  fanin_limit : int;
  gates : int;
  area : int;
  steps : int;
}

let fanin ?(fanin_limits = [ 2; 4; 0 ]) ?(benchmarks = [ "rd53"; "sqrt8"; "t481" ]) () =
  Telemetry.span "experiment.ablation_fanin" @@ fun () ->
  (* Deterministic synthesis, but each (benchmark, limit) cell is still a
     journaled unit of work: a resumed run skips re-synthesis. *)
  let ckpt = Checkpoint.start ~experiment:"ablation" ~seed:0 () in
  let cells =
    Array.of_list
      (List.concat_map
         (fun benchmark -> List.map (fun limit -> (benchmark, limit)) fanin_limits)
         benchmarks)
  in
  let section =
    Printf.sprintf "fanin limits=%s benches=%s"
      (String.concat "," (List.map string_of_int fanin_limits))
      (String.concat "," benchmarks)
  in
  let outcomes =
    Checkpoint.map ckpt ~pool:(Pool.default ()) ~section ~n:(Array.length cells)
      ~codec:Checkpoint.Codec.(triple int int int)
      (fun i ->
        let benchmark, limit = cells.(i) in
        let cover = Suite.cover (Suite.find benchmark) in
        let mapped =
          if limit = 0 then Mcx_netlist.Tech_map.map_mo cover
          else Mcx_netlist.Tech_map.map_mo ~fanin_limit:(max 2 limit) cover
        in
        ( Mcx_netlist.Network.gate_count mapped.Mcx_netlist.Tech_map.network,
          Cost.multi_level_area mapped,
          Cost.multi_level_steps mapped ))
  in
  List.filter_map Fun.id
    (List.mapi
       (fun i outcome ->
         Option.map
           (fun (gates, area, steps) ->
             let benchmark, fanin_limit = cells.(i) in
             { benchmark; fanin_limit; gates; area; steps })
           outcome)
       (Array.to_list outcomes))

let fanin_table rows =
  let table =
    Texttable.create [ "benchmark"; "fan-in limit"; "NAND gates"; "multi-level area"; "steps" ]
  in
  List.iter
    (fun r ->
      Texttable.add_row table
        [
          r.benchmark;
          (if r.fanin_limit = 0 then "n (paper)" else string_of_int r.fanin_limit);
          string_of_int r.gates;
          string_of_int r.area;
          string_of_int r.steps;
        ])
    rows;
  table

let ordering_table rows =
  let table =
    Texttable.create
      [ "benchmark"; "HBA top-down"; "HBA hardest-first"; "EA (upper bound)" ]
  in
  List.iter
    (fun (r : ordering_row) ->
      Texttable.add_row table
        [
          r.benchmark;
          Printf.sprintf "%.0f" r.top_down_psucc;
          Printf.sprintf "%.0f" r.hardest_first_psucc;
          Printf.sprintf "%.0f" r.exact_psucc;
        ])
    rows;
  table
