(** Field aging: incremental repair versus remap-from-scratch.

    A die is mapped once at test time; stuck-open faults then accumulate
    one by one. At each fault the placement is fixed with
    {!Mcx_mapping.Repair} (local moves first, full exact remap as last
    resort) and the study records how many faults a die survives and how
    many rows each repair touches — reprogramming cost being proportional
    to touched lines. The baseline column shows the cost of always
    remapping from scratch. *)

type result = {
  benchmark : string;
  samples : int;
  mean_faults_survived : float;
      (** faults absorbed until no valid mapping exists at all *)
  mean_rows_touched_per_repair : float;
  remap_rows_baseline : float;
      (** mean rows a from-scratch exact remap would move per event *)
  repairs_verified : bool;  (** every repaired placement re-checked *)
}

val run :
  ?pool:Mcx_util.Pool.t ->
  ?samples:int ->
  ?max_faults:int ->
  seed:int ->
  benchmark:string ->
  unit ->
  result
(** Defaults: 60 dies, at most 200 faults each. Dies age independently on
    [pool] (default {!Mcx_util.Pool.default}), one derived stream per die. *)

val to_table : result list -> Mcx_util.Texttable.t
