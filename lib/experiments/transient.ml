open Mcx_util
open Mcx_logic
open Mcx_crossbar
open Mcx_benchmarks

type point = {
  upset_rate : float;
  two_level_error_rate : float;
  multi_level_error_rate : float;
}

type result = {
  benchmark : string;
  evaluations : int;
  two_level_writes : int;
  multi_level_writes : int;
  points : point list;
}

let run ?pool ?(evaluations = 300) ?(upset_rates = [ 1e-4; 3e-4; 1e-3; 3e-3 ]) ~seed
    ~benchmark () =
  Telemetry.span "experiment.transient" @@ fun () ->
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let ckpt = Checkpoint.start ~experiment:"transient" ~seed () in
  let bench = Suite.find benchmark in
  let cover = Suite.cover bench in
  let n = Mo_cover.n_inputs cover in
  let layout = Layout.of_cover cover in
  let mapped = Mcx_netlist.Tech_map.map_mo cover in
  let ml = Multilevel.place mapped in
  let key = Prng.Key.(string (string (root seed) "transient") benchmark) in
  let point upset_rate =
    let point_key = Prng.Key.float key upset_rate in
    let trial i =
      let prng = Prng.derive point_key i in
      let v = Array.init n (fun _ -> Prng.bool prng) in
      let reference = Mo_cover.eval cover v in
      let two_wrong = Sim.run_with_upsets ~prng ~upset_rate layout v <> reference in
      let multi_wrong =
        Multilevel.run_with_upsets ~prng ~upset_rate ml v <> reference
      in
      (two_wrong, multi_wrong)
    in
    let section =
      Printf.sprintf "bench=%s upset=%s evals=%d" benchmark
        (Json_out.float_repr upset_rate)
        evaluations
    in
    let outcomes =
      Checkpoint.map ckpt ~pool ~section ~n:evaluations
        ~codec:Checkpoint.Codec.(pair bool bool)
        trial
    in
    let (two_errors, multi_errors), completed =
      Checkpoint.fold_completed outcomes ~init:(0, 0)
        ~f:(fun (two, multi) (two_wrong, multi_wrong) ->
          ((if two_wrong then two + 1 else two), if multi_wrong then multi + 1 else multi))
    in
    let pct c = 100. *. float_of_int c /. float_of_int (max 1 completed) in
    {
      upset_rate;
      two_level_error_rate = pct two_errors;
      multi_level_error_rate = pct multi_errors;
    }
  in
  {
    benchmark;
    evaluations;
    two_level_writes = Cost.two_level_writes cover;
    multi_level_writes = Cost.multi_level_writes mapped;
    points = List.map point upset_rates;
  }

let to_table result =
  let table =
    Texttable.create
      [ "upset rate / write"; "2-level error %"; "multi-level error %" ]
  in
  List.iter
    (fun p ->
      Texttable.add_row table
        [
          Printf.sprintf "%.4f%%" (100. *. p.upset_rate);
          Printf.sprintf "%.1f" p.two_level_error_rate;
          Printf.sprintf "%.1f" p.multi_level_error_rate;
        ])
    result.points;
  table
