(** Defect-rate sweep: Psucc versus stuck-open rate for all three mapping
    algorithms (hybrid, exact, annealing baseline).

    Table II fixes the rate at 10%; this sweep shows the whole degradation
    curve and where the hybrid heuristic starts paying for its speed — the
    natural "Fig. 9" the paper stops short of. *)

type point = {
  defect_rate : float;
  hba_psucc : float;
  ea_psucc : float;
  annealing_psucc : float;
}

type sweep = { benchmark : string; samples : int; points : point list }

val run :
  ?pool:Mcx_util.Pool.t ->
  ?samples:int ->
  ?defect_rates:float list ->
  seed:int ->
  benchmark:string ->
  unit ->
  sweep
(** Defaults: 100 samples, rates [0.02; 0.05; 0.08; 0.10; 0.12; 0.15;
    0.20]. *)

val to_table : sweep -> Mcx_util.Texttable.t
