open Mcx_util
open Mcx_crossbar
open Mcx_mapping
open Mcx_benchmarks

type result = {
  benchmark : string;
  samples : int;
  mean_faults_survived : float;
  mean_rows_touched_per_repair : float;
  remap_rows_baseline : float;
  repairs_verified : bool;
}

(* What one die's whole lifetime contributes to the aggregate. *)
type die = {
  faults_survived : float;
  die_touches : float list;  (** rows touched, one entry per non-trivial repair *)
  die_remap_moves : float list;
  die_verified : bool;
}

let run ?pool ?(samples = 60) ?(max_faults = 200) ~seed ~benchmark () =
  Telemetry.span "experiment.aging" @@ fun () ->
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let ckpt = Checkpoint.start ~experiment:"aging" ~seed () in
  let bench = Suite.find benchmark in
  let cover = Suite.cover bench in
  let fm_struct = Function_matrix.build cover in
  let fm = fm_struct.Function_matrix.matrix in
  let geometry = fm_struct.Function_matrix.geometry in
  let rows = Geometry.rows geometry and cols = Geometry.cols geometry in
  let key = Prng.Key.(string (string (root seed) "aging") benchmark) in
  let die index =
    (* fresh die: pristine crossbar, identity placement, private stream *)
    let prng = Prng.derive key index in
    let defects = Defect_map.create ~rows ~cols in
    let assignment = ref (Array.init rows Fun.id) in
    let alive = ref true in
    let faults = ref 0 in
    let touches = ref [] in
    let remap_moves = ref [] in
    let verified = ref true in
    while !alive && !faults < max_faults do
      (* a new stuck-open fault lands on a random functional junction *)
      let r = Prng.int prng rows and c = Prng.int prng cols in
      if Junction.defect_equal (Defect_map.get defects r c) Junction.Functional then begin
        Defect_map.set defects r c Junction.Stuck_open;
        incr faults;
        let cm = Matching.cm_of_defects defects in
        match Repair.repair ~fm ~cm !assignment with
        | Some { Repair.assignment = repaired; rows_touched } ->
          if rows_touched > 0 then begin
            touches := float_of_int rows_touched :: !touches;
            (* baseline: a full remap moves however many rows the exact
               mapper reshuffles *)
            (match Exact.map_matrix fm cm with
            | Some fresh ->
              let moved = ref 0 in
              Array.iteri (fun i t -> if t <> !assignment.(i) then incr moved) fresh;
              remap_moves := float_of_int !moved :: !remap_moves
            | None -> ());
            if not (Matching.check_assignment ~fm ~cm repaired) then verified := false
          end;
          assignment := repaired
        | None -> alive := false
      end
    done;
    {
      faults_survived = float_of_int (if !alive then !faults else !faults - 1);
      die_touches = List.rev !touches;
      die_remap_moves = List.rev !remap_moves;
      die_verified = !verified;
    }
  in
  let die_codec =
    Checkpoint.Codec.(
      conv
        (fun d -> (d.faults_survived, d.die_touches, d.die_remap_moves, d.die_verified))
        (fun (faults_survived, die_touches, die_remap_moves, die_verified) ->
          { faults_survived; die_touches; die_remap_moves; die_verified })
        (quad float (list float) (list float) bool))
  in
  let section =
    Printf.sprintf "bench=%s samples=%d max_faults=%d" benchmark samples max_faults
  in
  let outcomes = Checkpoint.map ckpt ~pool ~section ~n:samples ~codec:die_codec die in
  let dies = List.filter_map Fun.id (Array.to_list outcomes) in
  let survived = List.map (fun d -> d.faults_survived) dies in
  let touches = List.concat_map (fun d -> d.die_touches) dies in
  let remap_moves = List.concat_map (fun d -> d.die_remap_moves) dies in
  {
    benchmark;
    samples = List.length dies;
    mean_faults_survived = (match survived with [] -> 0. | l -> Stats.mean l);
    mean_rows_touched_per_repair = (match touches with [] -> 0. | l -> Stats.mean l);
    remap_rows_baseline = (match remap_moves with [] -> 0. | l -> Stats.mean l);
    repairs_verified = List.for_all (fun d -> d.die_verified) dies;
  }

let to_table results =
  let table =
    Texttable.create
      [
        "benchmark"; "dies"; "mean faults survived"; "rows touched / repair";
        "rows moved / full remap"; "verified";
      ]
  in
  List.iter
    (fun r ->
      Texttable.add_row table
        [
          r.benchmark;
          string_of_int r.samples;
          Printf.sprintf "%.1f" r.mean_faults_survived;
          Printf.sprintf "%.2f" r.mean_rows_touched_per_repair;
          Printf.sprintf "%.2f" r.remap_rows_baseline;
          (if r.repairs_verified then "yes" else "NO");
        ])
    results;
  table
