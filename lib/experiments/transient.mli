(** Transient write-upset study: two-level vs multi-level vulnerability.

    Beyond permanent defects, memristive writes occasionally mis-program
    (a write upset). Both designs re-write the whole array every
    computation, but they differ in exposure: the two-level design's
    results flow through one NAND/AND pair, while the multi-level design
    chains gate results through connection columns — a single upset early
    in the chain propagates. This study measures the computation error
    rate (fraction of evaluations with at least one wrong output bit) as
    a function of the per-write upset probability. *)

type point = {
  upset_rate : float;
  two_level_error_rate : float;  (** percent of evaluations wrong *)
  multi_level_error_rate : float;
}

type result = {
  benchmark : string;
  evaluations : int;
  two_level_writes : int;  (** writes per evaluation — the exposure *)
  multi_level_writes : int;
  points : point list;
}

val run :
  ?pool:Mcx_util.Pool.t ->
  ?evaluations:int ->
  ?upset_rates:float list ->
  seed:int ->
  benchmark:string ->
  unit ->
  result
(** Defaults: 300 evaluations per point, upset rates [1e-4; 3e-4; 1e-3;
    3e-3]. Inputs are drawn uniformly per evaluation. *)

val to_table : result -> Mcx_util.Texttable.t
