open Mcx_benchmarks

type row = {
  name : string;
  orig_two_level : int;
  orig_multi_level : int;
  neg_two_level : int;
  neg_multi_level : int;
  paper : (int * int * int * int) option;
}

let areas cover =
  let two = (Mcx_crossbar.Cost.two_level cover).Mcx_crossbar.Cost.area in
  let multi = Mcx_crossbar.Cost.multi_level_area (Mcx_netlist.Tech_map.map_mo cover) in
  (two, multi)

let run_row bench =
  let orig_two_level, orig_multi_level = areas (Suite.cover bench) in
  let neg_two_level, neg_multi_level = areas (Suite.negated_cover bench) in
  {
    name = bench.Suite.name;
    orig_two_level;
    orig_multi_level;
    neg_two_level;
    neg_multi_level;
    paper = bench.Suite.paper.Suite.table1;
  }

let run ?benchmarks () =
  Mcx_util.Telemetry.span "experiment.table1" @@ fun () ->
  let selected =
    match benchmarks with
    | None -> Suite.table1
    | Some names -> List.map Suite.find names
  in
  (* Deterministic, but each benchmark row costs a full synthesis of the
     function and its dual — worth journaling so a resumed paper run
     skips straight to the Monte Carlo tables. Only the four areas are
     journaled; name and paper data re-derive from the suite. *)
  let ckpt = Mcx_util.Checkpoint.start ~experiment:"table1" ~seed:0 () in
  let benches = Array.of_list selected in
  let section =
    Printf.sprintf "benches=%s"
      (String.concat "," (List.map (fun b -> b.Suite.name) selected))
  in
  let outcomes =
    Mcx_util.Checkpoint.map ckpt
      ~pool:(Mcx_util.Pool.default ())
      ~section ~n:(Array.length benches)
      ~codec:Mcx_util.Checkpoint.Codec.(quad int int int int)
      (fun i ->
        let r = run_row benches.(i) in
        (r.orig_two_level, r.orig_multi_level, r.neg_two_level, r.neg_multi_level))
  in
  List.filter_map Fun.id
    (List.mapi
       (fun i outcome ->
         Option.map
           (fun (orig_two_level, orig_multi_level, neg_two_level, neg_multi_level) ->
             let bench = benches.(i) in
             {
               name = bench.Suite.name;
               orig_two_level;
               orig_multi_level;
               neg_two_level;
               neg_multi_level;
               paper = bench.Suite.paper.Suite.table1;
             })
           outcome)
       (Array.to_list outcomes))

let to_table rows =
  let table =
    Mcx_util.Texttable.create
      [
        "bench"; "2lvl"; "2lvl paper"; "multi"; "multi paper"; "neg 2lvl";
        "neg 2lvl paper"; "neg multi"; "neg multi paper";
      ]
  in
  let paper_cell f row = match row.paper with Some p -> string_of_int (f p) | None -> "-" in
  List.iter
    (fun row ->
      Mcx_util.Texttable.add_row table
        [
          row.name;
          string_of_int row.orig_two_level;
          paper_cell (fun (a, _, _, _) -> a) row;
          string_of_int row.orig_multi_level;
          paper_cell (fun (_, b, _, _) -> b) row;
          string_of_int row.neg_two_level;
          paper_cell (fun (_, _, c, _) -> c) row;
          string_of_int row.neg_multi_level;
          paper_cell (fun (_, _, _, d) -> d) row;
        ])
    rows;
  table
