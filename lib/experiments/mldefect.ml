open Mcx_util
open Mcx_crossbar
open Mcx_mapping
open Mcx_benchmarks

type point = { defect_rate : float; psucc : float; all_simulations_correct : bool }

type result = {
  benchmark : string;
  gates : int;
  area : int;
  spare_rows : int;
  samples : int;
  points : point list;
}

let run ?pool ?(samples = 100) ?(defect_rates = [ 0.02; 0.05; 0.10; 0.15 ])
    ?(spare_rows = 0) ~seed ~benchmark () =
  Telemetry.span "experiment.mldefect" @@ fun () ->
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let ckpt = Checkpoint.start ~experiment:"mldefect" ~seed () in
  let bench = Suite.find benchmark in
  let cover = Suite.cover bench in
  let mapped = Mcx_netlist.Tech_map.map_mo cover in
  let reference_ml = Multilevel.place mapped in
  let fm = Multilevel.function_matrix reference_ml in
  let physical_rows = reference_ml.Multilevel.rows + spare_rows in
  let gate_rows = List.init (reference_ml.Multilevel.rows - 1) Fun.id in
  let latch_row = reference_ml.Multilevel.rows - 1 in
  let can_simulate = Mcx_logic.Mo_cover.n_inputs cover <= 12 in
  let key =
    Prng.Key.(int (string (string (root seed) "mldefect") benchmark) spare_rows)
  in
  let point defect_rate =
    let point_key = Prng.Key.float key defect_rate in
    let trial i =
      let prng = Prng.derive point_key i in
      let defects =
        Defect_map.random prng ~rows:physical_rows ~cols:reference_ml.Multilevel.cols
          ~open_rate:defect_rate ~closed_rate:0.
      in
      let cm = Matching.cm_of_defects defects in
      let assignment, _stats =
        Hybrid.map_rows ~fm ~greedy_rows:gate_rows ~assignment_rows:[ latch_row ] cm
      in
      match assignment with
      | Some row_assignment ->
        let ok =
          (not can_simulate)
          ||
          let placed = Multilevel.place ~row_assignment ~physical_rows mapped in
          Multilevel.agrees_with_reference ~defects placed cover
        in
        (true, ok)
      | None -> (false, true)
    in
    let section =
      Printf.sprintf "bench=%s spare_rows=%d rate=%s samples=%d" benchmark spare_rows
        (Json_out.float_repr defect_rate)
        samples
    in
    let outcomes =
      Checkpoint.map ckpt ~pool ~section ~n:samples
        ~codec:Checkpoint.Codec.(pair bool bool)
        trial
    in
    let (hits, all_ok), completed =
      Checkpoint.fold_completed outcomes ~init:(0, true)
        ~f:(fun (hits, ok) (hit, valid) ->
          ((if hit then hits + 1 else hits), ok && valid))
    in
    {
      defect_rate;
      psucc = 100. *. float_of_int hits /. float_of_int (max 1 completed);
      all_simulations_correct = all_ok;
    }
  in
  {
    benchmark;
    gates = Mcx_netlist.Network.gate_count mapped.Mcx_netlist.Tech_map.network;
    area = physical_rows * reference_ml.Multilevel.cols;
    spare_rows;
    samples;
    points = List.map point defect_rates;
  }

let to_table result =
  let table =
    Texttable.create [ "defect rate %"; "Psucc %"; "simulations correct" ]
  in
  List.iter
    (fun p ->
      Texttable.add_row table
        [
          Printf.sprintf "%.0f" (100. *. p.defect_rate);
          Printf.sprintf "%.0f" p.psucc;
          (if p.all_simulations_correct then "yes" else "NO");
        ])
    result.points;
  table
