(** EXT-MLDEF: defect-tolerant mapping of multi-level designs — the second
    future-work thread of §VI ("we plan to integrate multi-level logic
    design with our defect tolerant logic mapping methods").

    Gate rows of the multi-level crossbar may be permuted freely (the
    controller evaluates them in dependency order regardless of physical
    position), so the same row-matching machinery applies: gate rows play
    the role of minterm rows and the latch row is assigned exactly. Every
    successful mapping is re-validated by running the multi-level
    simulator against the reference cover. *)

type point = {
  defect_rate : float;
  psucc : float;
  all_simulations_correct : bool;
}

type result = {
  benchmark : string;
  gates : int;
  area : int;  (** physical area including any spare rows *)
  spare_rows : int;
  samples : int;
  points : point list;
}

val run :
  ?pool:Mcx_util.Pool.t ->
  ?samples:int ->
  ?defect_rates:float list ->
  ?spare_rows:int ->
  seed:int ->
  benchmark:string ->
  unit ->
  result
(** Defaults: 100 samples, stuck-open rates [0.02; 0.05; 0.10; 0.15], no
    spare rows. With [spare_rows > 0] the crossbar gets extra horizontal
    lines for the mapper to dodge into — combining the paper's two
    future-work threads (multi-level defect tolerance and area
    redundancy). Simulation re-validation runs when the circuit has at
    most 12 inputs. *)

val to_table : result -> Mcx_util.Texttable.t
