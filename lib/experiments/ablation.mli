(** Ablations over the design choices DESIGN.md calls out.

    Two studies:
    - {!factoring}: what the technology mapper's factoring strategy is
      worth on the Fig. 6 workload — flat NAND-NAND (no factoring),
      quick-factor (single-literal division) and kernel extraction are run
      on the same random functions and compared on multi-level area and
      win rate against two-level;
    - {!ordering}: what the hybrid algorithm's greedy order is worth —
      Algorithm 1's top-down scan versus hardest-row-first, success rates
      side by side with the exact upper bound. *)

type factoring_row = {
  n_inputs : int;
  flat_median_area : float;
  quick_median_area : float;
  kernel_median_area : float;
  flat_win_rate : float;  (** % of samples where multi-level beats two-level *)
  quick_win_rate : float;
  kernel_win_rate : float;
}

val factoring :
  ?pool:Mcx_util.Pool.t ->
  ?samples:int ->
  ?input_sizes:int list ->
  seed:int ->
  unit ->
  factoring_row list
(** Defaults: 60 samples per size, sizes [8; 10]. *)

val factoring_table : factoring_row list -> Mcx_util.Texttable.t

type ordering_row = {
  benchmark : string;
  top_down_psucc : float;
  hardest_first_psucc : float;
  exact_psucc : float;
}

val ordering :
  ?pool:Mcx_util.Pool.t ->
  ?samples:int ->
  ?defect_rate:float ->
  ?benchmarks:string list ->
  seed:int ->
  unit ->
  ordering_row list
(** Defaults: 100 samples, 10% stuck-open, the benchmarks where Table II
    shows hybrid-vs-exact gaps (rd53, rd73, rd84, sao2, exp5). *)

val ordering_table : ordering_row list -> Mcx_util.Texttable.t

type fanin_row = {
  benchmark : string;
  fanin_limit : int;  (** 0 stands for the unbounded paper default (n) *)
  gates : int;
  area : int;
  steps : int;
}

val fanin :
  ?fanin_limits:int list -> ?benchmarks:string list -> unit -> fanin_row list
(** The paper lets ABC use "NAND gates which have fan-in sizes 2 to n"; this
    sweep shows what capping the fan-in costs: smaller gates mean more of
    them (rows and serialized evaluation steps grow) while the input
    columns stay fixed. Defaults: limits [2; 4; 0] (0 = n), arithmetic
    single/multi-output representatives. *)

val fanin_table : fanin_row list -> Mcx_util.Texttable.t
