open Mcx_util
open Mcx_logic
open Mcx_crossbar
open Mcx_mapping
open Mcx_benchmarks

type row = {
  name : string;
  inputs : int;
  outputs : int;
  products : int;
  area : int;
  inclusion_ratio : float;
  dual_used : bool;
  hba_psucc : float;
  hba_mean_seconds : float;
  ea_psucc : float;
  ea_mean_seconds : float;
  hba_all_valid : bool;
  ea_all_valid : bool;
  paper : Suite.paper_data;
}

(* §IV.B step 1: "area cost of the logic function and its negation is
   calculated. Smaller case is chosen for implementation." *)
let implementation_cover bench =
  let direct = Suite.cover bench in
  let dual = Suite.negated_cover bench in
  let area c = (Cost.two_level c).Cost.area in
  if area dual < area direct then (dual, true) else (direct, false)

(* Everything one trial contributes to the aggregate row; folded strictly
   in trial order so the float sums stay deterministic for a given run. *)
type trial = {
  hba_hit : bool;
  hba_valid : bool;
  hba_dt : float;
  ea_hit : bool;
  ea_valid : bool;
  ea_dt : float;
}

let trial_codec =
  Checkpoint.Codec.(
    conv
      (fun t ->
        ((t.hba_hit, t.hba_valid, t.hba_dt), (t.ea_hit, t.ea_valid, t.ea_dt)))
      (fun ((hba_hit, hba_valid, hba_dt), (ea_hit, ea_valid, ea_dt)) ->
        { hba_hit; hba_valid; hba_dt; ea_hit; ea_valid; ea_dt })
      (pair (triple bool bool float) (triple bool bool float)))

let run_row ?pool ?(samples = 200) ?(defect_rate = 0.10) ~seed bench =
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let ckpt = Checkpoint.start ~experiment:"table2" ~seed () in
  let cover, dual_used = implementation_cover bench in
  let fm = Function_matrix.build cover in
  let report = Cost.two_level cover in
  let key =
    Prng.Key.(
      float (string (string (root seed) "table2") bench.Suite.name) defect_rate)
  in
  let rows = report.Cost.rows and cols = report.Cost.cols in
  let trial i =
    let prng = Prng.derive key i in
    let defects =
      Defect_map.random prng ~rows ~cols ~open_rate:defect_rate ~closed_rate:0.
    in
    let cm = Matching.cm_of_defects defects in
    let hba_result, hba_dt = Timing.time (fun () -> Hybrid.map fm cm) in
    let ea_result, ea_dt = Timing.time (fun () -> Exact.map fm cm) in
    let outcome = function
      | Some assignment ->
        (true, Matching.check_assignment ~fm:fm.Function_matrix.matrix ~cm assignment)
      | None -> (false, true)
    in
    let hba_hit, hba_valid = outcome hba_result in
    let ea_hit, ea_valid = outcome ea_result in
    { hba_hit; hba_valid; hba_dt; ea_hit; ea_valid; ea_dt }
  in
  let hba_time = Timing.Counter.create () and ea_time = Timing.Counter.create () in
  let section =
    Printf.sprintf "bench=%s rate=%s samples=%d" bench.Suite.name
      (Json_out.float_repr defect_rate)
      samples
  in
  let outcomes =
    Checkpoint.map ckpt ~pool ~section ~n:samples ~codec:trial_codec trial
  in
  let (hba_hits, ea_hits, hba_all_valid, ea_all_valid), completed =
    Checkpoint.fold_completed outcomes ~init:(0, 0, true, true)
      ~f:(fun (hba, ea, hba_ok, ea_ok) t ->
        Timing.Counter.add hba_time t.hba_dt;
        Timing.Counter.add ea_time t.ea_dt;
        ( (if t.hba_hit then hba + 1 else hba),
          (if t.ea_hit then ea + 1 else ea),
          hba_ok && t.hba_valid,
          ea_ok && t.ea_valid ))
  in
  let pct hits = 100. *. float_of_int hits /. float_of_int (max 1 completed) in
  {
    name = bench.Suite.name;
    inputs = Mo_cover.n_inputs cover;
    outputs = Mo_cover.n_outputs cover;
    products = Mo_cover.product_count cover;
    area = report.Cost.area;
    inclusion_ratio = report.Cost.inclusion_ratio;
    dual_used;
    hba_psucc = pct hba_hits;
    hba_mean_seconds = Timing.Counter.mean_seconds hba_time;
    ea_psucc = pct ea_hits;
    ea_mean_seconds = Timing.Counter.mean_seconds ea_time;
    hba_all_valid;
    ea_all_valid;
    paper = bench.Suite.paper;
  }

let run ?pool ?samples ?defect_rate ?benchmarks ~seed () =
  Telemetry.span "experiment.table2" @@ fun () ->
  let selected =
    match benchmarks with
    | None -> Suite.table2
    | Some names -> List.map Suite.find names
  in
  List.map (fun b -> run_row ?pool ?samples ?defect_rate ~seed b) selected

let opt_pct = function Some v -> Printf.sprintf "%.0f" v | None -> "-"

let to_table rows =
  let table =
    Texttable.create
      [
        "name"; "I"; "O"; "P"; "area"; "IR%"; "HBA Psucc"; "(paper)"; "HBA time";
        "EA Psucc"; "(paper)"; "EA time"; "speedup";
      ]
  in
  List.iter
    (fun r ->
      Texttable.add_row table
        [
          (r.name ^ if r.dual_used then "*" else "");
          string_of_int r.inputs;
          string_of_int r.outputs;
          string_of_int r.products;
          string_of_int r.area;
          Printf.sprintf "%.0f" r.inclusion_ratio;
          Printf.sprintf "%.0f" r.hba_psucc;
          opt_pct r.paper.Suite.psucc_hba;
          Printf.sprintf "%.5fs" r.hba_mean_seconds;
          Printf.sprintf "%.0f" r.ea_psucc;
          opt_pct r.paper.Suite.psucc_ea;
          Printf.sprintf "%.5fs" r.ea_mean_seconds;
          (if r.hba_mean_seconds > 0. then
             Printf.sprintf "%.0fx" (r.ea_mean_seconds /. r.hba_mean_seconds)
           else "-");
        ])
    rows;
  table

let to_csv rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "name,inputs,outputs,products,area,ir,dual,hba_psucc,hba_seconds,ea_psucc,ea_seconds\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%d,%d,%d,%.2f,%b,%.1f,%.6f,%.1f,%.6f\n" r.name r.inputs
           r.outputs r.products r.area r.inclusion_ratio r.dual_used r.hba_psucc
           r.hba_mean_seconds r.ea_psucc r.ea_mean_seconds))
    rows;
  Buffer.contents buf
