(** EXT-YIELD: redundancy vs yield — the paper's declared future work
    (§IV.A: "tolerance of stuck-at closed defects is not possible without
    any redundant crossbar lines. Yield analysis concerning the
    relationship between area cost with redundant lines and defect
    tolerance performance is open for future research").

    The sweep provisions r spare rows and r spare columns (r = 0, 1, 2, …),
    injects both stuck-open and stuck-closed defects, and measures mapping
    yield with {!Mcx_mapping.Redundant}. Every successful placement is
    re-verified against the physical validity predicate. *)

type point = {
  spares : int;
  area : int;  (** physical area including spare lines *)
  area_overhead : float;  (** percent over the optimum area *)
  psucc : float;
  all_valid : bool;
}

type sweep = {
  benchmark : string;
  open_rate : float;
  closed_rate : float;
  samples : int;
  points : point list;
}

val run :
  ?pool:Mcx_util.Pool.t ->
  ?samples:int ->
  ?spare_levels:int list ->
  ?open_rate:float ->
  ?closed_rate:float ->
  seed:int ->
  benchmark:string ->
  unit ->
  sweep
(** Defaults: 100 samples, spares [0;1;2;3;4], 5% open, 1% closed.
    Trials run on [pool] (default {!Mcx_util.Pool.default}); each trial's
    stream is derived from [(seed, config, trial index)], so results are
    identical at any job count. *)

val to_table : sweep -> Mcx_util.Texttable.t
