open Mcx_util
open Mcx_crossbar
open Mcx_mapping
open Mcx_benchmarks

type point = {
  spares : int;
  area : int;
  area_overhead : float;
  psucc : float;
  all_valid : bool;
}

type sweep = {
  benchmark : string;
  open_rate : float;
  closed_rate : float;
  samples : int;
  points : point list;
}

let run ?pool ?(samples = 100) ?(spare_levels = [ 0; 1; 2; 3; 4 ]) ?(open_rate = 0.05)
    ?(closed_rate = 0.01) ~seed ~benchmark () =
  Telemetry.span "experiment.yield" @@ fun () ->
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let ckpt = Checkpoint.start ~experiment:"yield" ~seed () in
  let bench = Suite.find benchmark in
  let cover = Suite.cover bench in
  let fm = Function_matrix.build cover in
  let geometry = fm.Function_matrix.geometry in
  let base_rows = Geometry.rows geometry and base_cols = Geometry.cols geometry in
  let optimum_area = base_rows * base_cols in
  let key =
    Prng.Key.(
      float
        (float (string (string (root seed) "yield") benchmark) open_rate)
        closed_rate)
  in
  let point spares =
    let rows = base_rows + spares and cols = base_cols + spares in
    let point_key = Prng.Key.int key spares in
    let trial i =
      let prng = Prng.derive point_key i in
      let defects = Defect_map.random prng ~rows ~cols ~open_rate ~closed_rate in
      match Redundant.map ~prng ~algorithm:`Hybrid fm defects with
      | Some placement -> (true, Redundant.verify fm defects placement)
      | None -> (false, true)
    in
    let section =
      Printf.sprintf "bench=%s open=%s closed=%s spares=%d samples=%d" benchmark
        (Json_out.float_repr open_rate)
        (Json_out.float_repr closed_rate)
        spares samples
    in
    let outcomes =
      Checkpoint.map ckpt ~pool ~section ~n:samples
        ~codec:Checkpoint.Codec.(pair bool bool)
        trial
    in
    let (hits, all_valid), completed =
      Checkpoint.fold_completed outcomes ~init:(0, true)
        ~f:(fun (hits, ok) (hit, valid) ->
          ((if hit then hits + 1 else hits), ok && valid))
    in
    {
      spares;
      area = rows * cols;
      area_overhead =
        100. *. (float_of_int (rows * cols) /. float_of_int optimum_area -. 1.);
      psucc = 100. *. float_of_int hits /. float_of_int (max 1 completed);
      all_valid;
    }
  in
  { benchmark; open_rate; closed_rate; samples; points = List.map point spare_levels }

let to_table sweep =
  let table =
    Texttable.create [ "spare lines"; "area"; "overhead %"; "Psucc %"; "verified" ]
  in
  List.iter
    (fun p ->
      Texttable.add_row table
        [
          string_of_int p.spares;
          string_of_int p.area;
          Printf.sprintf "%.1f" p.area_overhead;
          Printf.sprintf "%.0f" p.psucc;
          (if p.all_valid then "yes" else "NO");
        ])
    sweep.points;
  table
