(* Shortest-augmenting-path assignment with potentials (Jonker–Volgenant);
   1-indexed internal arrays, following the classical formulation. *)

let solve cost =
  Mcx_util.Telemetry.count "munkres.solves";
  let n = Array.length cost in
  if n = 0 then (0, [||])
  else begin
    let m = Array.length cost.(0) in
    Array.iter
      (fun row -> if Array.length row <> m then invalid_arg "Munkres.solve: ragged matrix")
      cost;
    if n > m then invalid_arg "Munkres.solve: more rows than columns";
    let inf = max_int / 2 in
    let u = Array.make (n + 1) 0 in
    let v = Array.make (m + 1) 0 in
    let p = Array.make (m + 1) 0 in
    let way = Array.make (m + 1) 0 in
    for i = 1 to n do
      p.(0) <- i;
      let j0 = ref 0 in
      let minv = Array.make (m + 1) inf in
      let used = Array.make (m + 1) false in
      let continue_ = ref true in
      while !continue_ do
        used.(!j0) <- true;
        let i0 = p.(!j0) in
        let delta = ref inf and j1 = ref (-1) in
        for j = 1 to m do
          if not used.(j) then begin
            let cur = cost.(i0 - 1).(j - 1) - u.(i0) - v.(j) in
            if cur < minv.(j) then begin
              minv.(j) <- cur;
              way.(j) <- !j0
            end;
            if minv.(j) < !delta then begin
              delta := minv.(j);
              j1 := j
            end
          end
        done;
        for j = 0 to m do
          if used.(j) then begin
            u.(p.(j)) <- u.(p.(j)) + !delta;
            v.(j) <- v.(j) - !delta
          end
          else minv.(j) <- minv.(j) - !delta
        done;
        j0 := !j1;
        if p.(!j0) = 0 then continue_ := false
      done;
      (* Augment along the found path. *)
      let j0 = ref !j0 in
      while !j0 <> 0 do
        let j1 = way.(!j0) in
        p.(!j0) <- p.(j1);
        j0 := j1
      done
    done;
    let assignment = Array.make n (-1) in
    for j = 1 to m do
      if p.(j) > 0 then assignment.(p.(j) - 1) <- j - 1
    done;
    let total = Array.fold_left ( + ) 0 (Array.mapi (fun i j -> cost.(i).(j)) assignment) in
    (total, assignment)
  end

let feasible_zero cost =
  let total, assignment = solve cost in
  if total = 0 then Some assignment else None
