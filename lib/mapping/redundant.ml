open Mcx_util
open Mcx_crossbar

type placement = { row_assignment : int array; col_assignment : int array }

(* Build the CM restricted to a column choice: entry (r, j) true when the
   junction at (r, chosen.(j)) is functional. Rows carrying a stuck-closed
   defect in any chosen column are struck out entirely (all-false rows can
   never match a product row; genuinely empty FM rows do not occur because
   every row holds at least an output connection). *)
let restricted_cm defects chosen =
  Telemetry.count "redundant.cm_rebuilds";
  let rows = Defect_map.rows defects in
  let cols = Array.length chosen in
  let cm = Bmatrix.create ~rows ~cols false in
  (* Row kill check: a row is struck out when the packed stuck-closed mask
     intersects the chosen-column mask — one AND per word per row. *)
  let chosen_mask = Bmatrix.create ~rows:1 ~cols:(Defect_map.cols defects) false in
  Array.iter (fun c -> Bmatrix.set chosen_mask 0 c true) chosen;
  let closed = Defect_map.closed_mask defects in
  for r = 0 to rows - 1 do
    if not (Bmatrix.row_intersects closed r chosen_mask 0) then
      Array.iteri
        (fun j c ->
          if Junction.defect_equal (Defect_map.get defects r c) Junction.Functional then
            Bmatrix.set cm r j true)
        chosen
  done;
  cm

(* Column scoring: closed defects make a column nearly unusable, open
   defects reduce its matching freedom. *)
let column_score defects c =
  let score = ref 0 in
  for r = 0 to Defect_map.rows defects - 1 do
    match Defect_map.get defects r c with
    | Junction.Stuck_closed -> score := !score + 1000
    | Junction.Stuck_open -> score := !score + 1
    | Junction.Functional -> ()
  done;
  !score

let greedy_columns defects ~wanted =
  let all = Array.init (Defect_map.cols defects) Fun.id in
  let scored = Array.map (fun c -> (column_score defects c, c)) all in
  Array.sort compare scored;
  (* Keep the chosen set in natural column order so that with zero spare
     columns the choice degenerates to the identity. *)
  let chosen = Array.sub (Array.map snd scored) 0 wanted in
  Array.sort compare chosen;
  chosen

let random_columns prng defects ~wanted =
  let all = Array.init (Defect_map.cols defects) Fun.id in
  Prng.shuffle_in_place prng all;
  Array.sub all 0 wanted

let map ?(attempts = 8) ~prng ~algorithm fm_struct defects =
  Telemetry.span "redundant.map" @@ fun () ->
  let fm = fm_struct.Function_matrix.matrix in
  let fm_rows = Bmatrix.rows fm and fm_cols = Bmatrix.cols fm in
  if Defect_map.rows defects < fm_rows || Defect_map.cols defects < fm_cols then
    invalid_arg "Redundant.map: defect map smaller than the function matrix";
  let attempt chosen =
    Telemetry.count "redundant.attempts";
    let cm = restricted_cm defects chosen in
    let row_assignment =
      match algorithm with
      | `Hybrid -> Hybrid.map fm_struct cm
      | `Exact -> Exact.map fm_struct cm
    in
    Option.map
      (fun row_assignment -> { row_assignment; col_assignment = chosen })
      row_assignment
  in
  let rec try_attempts k =
    if k >= attempts then None
    else begin
      let chosen =
        if k = 0 then greedy_columns defects ~wanted:fm_cols
        else random_columns prng defects ~wanted:fm_cols
      in
      match attempt chosen with
      | Some placement -> Some placement
      | None -> try_attempts (k + 1)
    end
  in
  try_attempts 0

let verify fm_struct defects placement =
  let layout =
    Layout.place ~row_assignment:placement.row_assignment
      ~col_assignment:placement.col_assignment
      ~physical_rows:(Defect_map.rows defects)
      ~physical_cols:(Defect_map.cols defects) fm_struct
  in
  Layout.respects layout defects
