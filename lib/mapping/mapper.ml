type algorithm = Hybrid | Exact

type config = {
  algorithm : algorithm;
  order : Hybrid.order;
  include_il_row : bool;
}

let default = { algorithm = Hybrid; order = Hybrid.Top_down; include_il_row = false }

let algorithm_of_string = function
  | "hybrid" -> Some Hybrid
  | "exact" -> Some Exact
  | _ -> None

let algorithm_to_string = function Hybrid -> "hybrid" | Exact -> "exact"

let order_to_string = function
  | Hybrid.Top_down -> "top_down"
  | Hybrid.Hardest_first -> "hardest_first"

let signature config =
  Printf.sprintf "algo=%s order=%s il=%b"
    (algorithm_to_string config.algorithm)
    (order_to_string config.order) config.include_il_row

let map config fm cm =
  match config.algorithm with
  | Hybrid -> Hybrid.map ~order:config.order fm cm
  | Exact -> Exact.map fm cm

let map_cover config cover defects =
  let fm = Mcx_crossbar.Function_matrix.build ~include_il_row:config.include_il_row cover in
  let geometry = fm.Mcx_crossbar.Function_matrix.geometry in
  if
    Mcx_crossbar.Defect_map.rows defects <> Mcx_crossbar.Geometry.rows geometry
    || Mcx_crossbar.Defect_map.cols defects <> Mcx_crossbar.Geometry.cols geometry
  then invalid_arg "Mapper.map_cover: defect map must match the optimum area";
  let cm = Matching.cm_of_defects defects in
  Option.map
    (fun row_assignment -> Mcx_crossbar.Layout.place ~row_assignment fm)
    (map config fm cm)
