open Mcx_util
open Mcx_crossbar

type stats = { backtracks : int; relocations : int }

type order = Top_down | Hardest_first

let order_rows order fm rows =
  match order with
  | Top_down -> rows
  | Hardest_first ->
    List.stable_sort
      (fun a b -> Int.compare (Bmatrix.count_row fm b) (Bmatrix.count_row fm a))
      rows

let map_rows ?(order = Top_down) ~fm ~greedy_rows ~assignment_rows cm =
  Telemetry.span "hybrid.map" @@ fun () ->
  if Bmatrix.cols cm <> Bmatrix.cols fm then
    invalid_arg "Hybrid.map: column count mismatch";
  if Bmatrix.rows cm < Bmatrix.rows fm then
    invalid_arg "Hybrid.map: crossbar has fewer rows than the function matrix";
  let n_cm = Bmatrix.rows cm in
  let owner = Array.make n_cm (-1) in
  let assigned = Array.make (Bmatrix.rows fm) (-1) in
  let backtracks = ref 0 and relocations = ref 0 in
  let matches fm_row cm_row = Matching.row_matches ~fm ~fm_row ~cm ~cm_row in
  let assign fm_row cm_row =
    owner.(cm_row) <- fm_row;
    assigned.(fm_row) <- cm_row
  in
  let find_unmatched fm_row =
    let rec go t =
      if t = n_cm then None
      else if owner.(t) < 0 && matches fm_row t then Some t
      else go (t + 1)
    in
    go 0
  in
  (* Depth-1 backtracking: steal a matched row whose owner can move to some
     still-unmatched row. *)
  let backtrack fm_row =
    incr backtracks;
    let rec go t =
      if t = n_cm then false
      else if owner.(t) >= 0 && matches fm_row t then begin
        let previous = owner.(t) in
        match find_unmatched previous with
        | Some fresh ->
          incr relocations;
          assign previous fresh;
          assign fm_row t;
          true
        | None -> go (t + 1)
      end
      else go (t + 1)
    in
    go 0
  in
  let place_minterm fm_row =
    match find_unmatched fm_row with
    | Some t ->
      assign fm_row t;
      true
    | None -> backtrack fm_row
  in
  let minterm_rows = order_rows order fm greedy_rows in
  let output_rows = assignment_rows in
  let minterms_ok = List.for_all place_minterm minterm_rows in
  let stats () =
    Telemetry.count ~n:(List.length minterm_rows) "hybrid.greedy_placements";
    Telemetry.count ~n:!backtracks "hybrid.backtracks";
    Telemetry.count ~n:!relocations "hybrid.relocations";
    { backtracks = !backtracks; relocations = !relocations }
  in
  if not minterms_ok then (None, stats ())
  else begin
    (* Exact assignment of the output rows over the unmatched CM rows. *)
    let unmatched = List.filter (fun t -> owner.(t) < 0) (List.init n_cm Fun.id) in
    let cost = Matching.matching_matrix ~fm ~fm_rows:output_rows ~cm ~cm_rows:unmatched in
    let unmatched_arr = Array.of_list unmatched in
    match (output_rows, Munkres.feasible_zero cost) with
    | [], _ -> (Some assigned, stats ())
    | _, Some solution ->
      List.iteri
        (fun idx fm_row -> assigned.(fm_row) <- unmatched_arr.(solution.(idx)))
        output_rows;
      (Some assigned, stats ())
    | _, None -> (None, stats ())
  end

let map_with_stats ?order fm_struct cm =
  let fm = fm_struct.Function_matrix.matrix in
  let output_rows = Function_matrix.output_row_indices fm_struct in
  let greedy_rows =
    List.filter
      (fun i -> not (List.mem i output_rows))
      (List.init (Bmatrix.rows fm) Fun.id)
  in
  map_rows ?order ~fm ~greedy_rows ~assignment_rows:output_rows cm

let map ?order fm_struct cm = fst (map_with_stats ?order fm_struct cm)
