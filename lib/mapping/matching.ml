open Mcx_util

let cm_of_defects defects =
  let rows = Mcx_crossbar.Defect_map.rows defects in
  let cols = Mcx_crossbar.Defect_map.cols defects in
  let cm = Bmatrix.create ~rows ~cols false in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if
        Mcx_crossbar.Junction.defect_equal
          (Mcx_crossbar.Defect_map.get defects i j)
          Mcx_crossbar.Junction.Functional
      then Bmatrix.set cm i j true
    done
  done;
  cm

let row_matches ~fm ~fm_row ~cm ~cm_row =
  if Bmatrix.cols fm <> Bmatrix.cols cm then
    invalid_arg "Matching.row_matches: column count mismatch";
  (* FM row fits a crossbar row iff its programmed cells are a subset of
     the functional cells — one AND-NOT per word. *)
  Bmatrix.row_subset fm fm_row cm cm_row

let matching_matrix ~fm ~fm_rows ~cm ~cm_rows =
  let cm_rows = Array.of_list cm_rows in
  Array.of_list
    (List.map
       (fun fm_row ->
         Array.map
           (fun cm_row -> if row_matches ~fm ~fm_row ~cm ~cm_row then 0 else 1)
           cm_rows)
       fm_rows)

let check_assignment ~fm ~cm assignment =
  Array.length assignment = Bmatrix.rows fm
  && Array.length (Array.of_seq (Seq.filter (fun x -> x >= 0) (Array.to_seq assignment)))
     = Array.length assignment
  &&
  let seen = Hashtbl.create (Array.length assignment) in
  let distinct =
    Array.for_all
      (fun target ->
        if target < 0 || target >= Bmatrix.rows cm || Hashtbl.mem seen target then false
        else begin
          Hashtbl.replace seen target ();
          true
        end)
      assignment
  in
  distinct
  && Array.for_all Fun.id
       (Array.mapi (fun fm_row cm_row -> row_matches ~fm ~fm_row ~cm ~cm_row) assignment)
