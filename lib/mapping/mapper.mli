(** Stable, configuration-driven entry point over the mapping algorithms.

    The individual algorithms ({!Hybrid}, {!Exact}) keep their direct
    APIs; this module packages the choice plus its knobs into one record
    so callers that thread a mapper through configuration — the umbrella
    [Mcx.map_defect_tolerant] flow and the request-serving layer, which
    also folds the record into its cache key — share a single entry
    point and a single canonical spelling of each option. *)

type algorithm = Hybrid | Exact

type config = {
  algorithm : algorithm;
  order : Hybrid.order;  (** greedy-phase row order; ignored by {!Exact} *)
  include_il_row : bool;  (** count the Fig. 3 input-latch row in the FM *)
}

val default : config
(** [{ algorithm = Hybrid; order = Top_down; include_il_row = false }] —
    Algorithm 1 exactly as the paper states it. *)

val algorithm_of_string : string -> algorithm option
(** ["hybrid"] / ["exact"]. *)

val algorithm_to_string : algorithm -> string

val signature : config -> string
(** Canonical one-line spelling of the record, stable across releases —
    safe to fold into persistent digests ([algo=hybrid order=top_down
    il=false]). *)

val map :
  config -> Mcx_crossbar.Function_matrix.t -> Mcx_util.Bmatrix.t -> int array option
(** Dispatch on [config.algorithm] at the FM/CM level.
    @raise Invalid_argument as the underlying algorithm does. *)

val map_cover :
  config ->
  Mcx_logic.Mo_cover.t ->
  Mcx_crossbar.Defect_map.t ->
  Mcx_crossbar.Layout.t option
(** The end-to-end flow: build the FM (honoring [include_il_row]),
    derive the crossbar matrix from the defects, run {!map} and place
    the result. [None] means no valid assignment was found (a proof of
    infeasibility only under {!Exact}). @raise Invalid_argument if the
    defect map does not have the cover's optimum dimensions. *)
