open Mcx_util

let map_matrix fm cm =
  Telemetry.span "exact.map" @@ fun () ->
  if Bmatrix.cols cm <> Bmatrix.cols fm then invalid_arg "Exact.map: column count mismatch";
  if Bmatrix.rows cm < Bmatrix.rows fm then
    invalid_arg "Exact.map: crossbar has fewer rows than the function matrix";
  let fm_rows = List.init (Bmatrix.rows fm) Fun.id in
  let cm_rows = List.init (Bmatrix.rows cm) Fun.id in
  let cost = Matching.matching_matrix ~fm ~fm_rows ~cm ~cm_rows in
  Munkres.feasible_zero cost

let map fm_struct cm = map_matrix fm_struct.Mcx_crossbar.Function_matrix.matrix cm

let feasible fm_struct cm = Option.is_some (map fm_struct cm)
