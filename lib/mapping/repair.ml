open Mcx_util

type outcome = { assignment : int array; rows_touched : int }

let repair ~fm ~cm assignment =
  Telemetry.span "repair.repair" @@ fun () ->
  Telemetry.count "repair.attempts";
  if Bmatrix.cols fm <> Bmatrix.cols cm then invalid_arg "Repair.repair: column mismatch";
  let n_fm = Bmatrix.rows fm and n_cm = Bmatrix.rows cm in
  if Array.length assignment <> n_fm then invalid_arg "Repair.repair: assignment length";
  Array.iter
    (fun t -> if t < 0 || t >= n_cm then invalid_arg "Repair.repair: target out of range")
    assignment;
  let matches fm_row cm_row = Matching.row_matches ~fm ~fm_row ~cm ~cm_row in
  let current = Array.copy assignment in
  let occupied = Array.make n_cm (-1) in
  Array.iteri (fun fm_row cm_row -> occupied.(cm_row) <- fm_row) current;
  let broken =
    List.filter (fun fm_row -> not (matches fm_row current.(fm_row))) (List.init n_fm Fun.id)
  in
  if broken = [] then Some { assignment = current; rows_touched = 0 }
  else begin
    let touched = ref 0 in
    let move fm_row target =
      occupied.(current.(fm_row)) <- -1;
      (* the mover's old slot frees up *)
      current.(fm_row) <- target;
      occupied.(target) <- fm_row;
      incr touched
    in
    let place_on_free fm_row =
      let rec go t =
        if t = n_cm then false
        else if occupied.(t) < 0 && matches fm_row t then begin
          move fm_row t;
          true
        end
        else go (t + 1)
      in
      go 0
    in
    (* Pairwise swap with a surviving row: both must be valid afterwards. *)
    let swap_with_survivor fm_row =
      let rec go other =
        if other = n_fm then false
        else if
          other <> fm_row
          && matches fm_row current.(other)
          && matches other current.(fm_row)
          && matches other current.(other)
             (* only steal from rows that are themselves currently valid:
                broken rows are handled by their own pass *)
        then begin
          let mine = current.(fm_row) and theirs = current.(other) in
          current.(fm_row) <- theirs;
          current.(other) <- mine;
          occupied.(theirs) <- fm_row;
          occupied.(mine) <- other;
          touched := !touched + 2;
          true
        end
        else go (other + 1)
      in
      go 0
    in
    let locally_repaired =
      List.for_all (fun fm_row -> place_on_free fm_row || swap_with_survivor fm_row) broken
    in
    if locally_repaired && Matching.check_assignment ~fm ~cm current then begin
      Telemetry.count "repair.local_successes";
      Some { assignment = current; rows_touched = !touched }
    end
    else begin
      Telemetry.count "repair.full_remaps";
      (* Full re-map as the last resort; every row may move. *)
      match Exact.map_matrix fm cm with
      | Some fresh ->
        let moved = ref 0 in
        Array.iteri (fun i t -> if t <> assignment.(i) then incr moved) fresh;
        Some { assignment = fresh; rows_touched = !moved }
      | None -> None
    end
  end
