open Mcx_util

type params = {
  initial_temperature : float;
  cooling : float;
  sweeps : int;
  moves_per_sweep : int;
}

let default_params =
  { initial_temperature = 2.0; cooling = 0.95; sweeps = 60; moves_per_sweep = 0 }

let row_cost ~fm ~cm fm_row cm_row = Bmatrix.row_diff_count fm fm_row cm cm_row

let cost ~fm ~cm assignment =
  let total = ref 0 in
  Array.iteri (fun fm_row cm_row -> total := !total + row_cost ~fm ~cm fm_row cm_row) assignment;
  !total

let map ?(params = default_params) ~prng fm_struct cm =
  Telemetry.span "annealing.map" @@ fun () ->
  let fm = fm_struct.Mcx_crossbar.Function_matrix.matrix in
  if Bmatrix.cols cm <> Bmatrix.cols fm then
    invalid_arg "Annealing.map: column count mismatch";
  let n_fm = Bmatrix.rows fm and n_cm = Bmatrix.rows cm in
  if n_cm < n_fm then invalid_arg "Annealing.map: crossbar has fewer rows than the FM";
  (* The assignment is the first n_fm entries of a permutation of the
     crossbar rows; the tail holds the unused (spare) rows so swaps can
     pull them in. *)
  let perm = Array.init n_cm Fun.id in
  Prng.shuffle_in_place prng perm;
  let per_row_cost =
    Array.init n_fm (fun fm_row -> row_cost ~fm ~cm fm_row perm.(fm_row))
  in
  let current = ref (Array.fold_left ( + ) 0 per_row_cost) in
  let moves_per_sweep =
    if params.moves_per_sweep > 0 then params.moves_per_sweep else 4 * n_cm
  in
  let temperature = ref params.initial_temperature in
  let sweep = ref 0 in
  let proposals = ref 0 and accepts = ref 0 in
  while !current > 0 && !sweep < params.sweeps do
    for _ = 1 to moves_per_sweep do
      if !current > 0 then begin
        (* swap the targets of two slots; the second may be a spare *)
        let a = Prng.int prng n_fm in
        let b = Prng.int prng n_cm in
        if a <> b then begin
          incr proposals;
          let delta_a_new = row_cost ~fm ~cm a perm.(b) in
          let b_is_fm = b < n_fm in
          let delta_b_new = if b_is_fm then row_cost ~fm ~cm b perm.(a) else 0 in
          let old_cost = per_row_cost.(a) + if b_is_fm then per_row_cost.(b) else 0 in
          let delta = delta_a_new + delta_b_new - old_cost in
          let accept =
            delta <= 0
            || Prng.float prng < exp (-.float_of_int delta /. max 1e-9 !temperature)
          in
          if accept then begin
            incr accepts;
            let tmp = perm.(a) in
            perm.(a) <- perm.(b);
            perm.(b) <- tmp;
            per_row_cost.(a) <- delta_a_new;
            if b_is_fm then per_row_cost.(b) <- delta_b_new;
            current := !current + delta
          end
        end
      end
    done;
    temperature := !temperature *. params.cooling;
    incr sweep
  done;
  Telemetry.count ~n:!proposals "annealing.proposals";
  Telemetry.count ~n:!accepts "annealing.accepts";
  Telemetry.count ~n:!sweep "annealing.temperature_steps";
  if !current = 0 then Some (Array.sub perm 0 n_fm) else None
