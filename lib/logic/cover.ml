type t = { arity : int; cubes : Cube.t list }

let create ~arity cubes =
  if arity < 0 then invalid_arg "Cover.create: negative arity";
  List.iter
    (fun c ->
      if Cube.arity c <> arity then invalid_arg "Cover.create: cube arity mismatch")
    cubes;
  { arity; cubes }

let empty n = create ~arity:n []
let top n = create ~arity:n [ Cube.universe n ]

let arity t = t.arity
let cubes t = t.cubes
let size t = List.length t.cubes
let literal_count t = List.fold_left (fun acc c -> acc + Cube.num_literals c) 0 t.cubes
let is_empty t = List.is_empty t.cubes

let eval t v =
  match t.cubes with
  | [] -> false
  | cubes ->
    (* Same error behaviour as evaluating cube-by-cube, but the assignment
       is packed once and shared across the whole cover. *)
    if Array.length v <> t.arity then invalid_arg "Cube.eval: arity mismatch";
    let packed = Cube.pack_assignment v in
    List.exists (fun c -> Cube.eval_packed c packed) cubes

let add_cube t c =
  if Cube.arity c <> t.arity then invalid_arg "Cover.add_cube: arity mismatch";
  { t with cubes = t.cubes @ [ c ] }

let union a b =
  if a.arity <> b.arity then invalid_arg "Cover.union: arity mismatch";
  { a with cubes = a.cubes @ b.cubes }

let of_strings = function
  | [] -> invalid_arg "Cover.of_strings: empty list"
  | first :: _ as rows ->
    let arity = String.length first in
    create ~arity (List.map Cube.of_string rows)

let to_strings t = List.map Cube.to_string t.cubes

let of_minterms ~arity ms =
  let cube_of_minterm m =
    if Array.length m <> arity then invalid_arg "Cover.of_minterms: arity mismatch";
    Cube.of_literals (Array.map (fun b -> if b then Literal.Pos else Literal.Neg) m)
  in
  create ~arity (List.map cube_of_minterm ms)

let cofactor t ~var ~value =
  let keep c =
    match Cube.cofactor c ~var ~value with Some c' -> Some c' | None -> None
  in
  { t with cubes = List.filter_map keep t.cubes }

let single_cube_containment t =
  let rec keep acc = function
    | [] -> List.rev acc
    | c :: rest ->
      let covered_by other = Cube.covers other c in
      if List.exists covered_by acc || List.exists covered_by rest then keep acc rest
      else keep (c :: acc) rest
  in
  (* Process larger cubes first so that among equal cubes exactly one
     survives: a cube is dropped if covered by an earlier survivor or by a
     later cube, and equal cubes cover each other, so only the last equal
     copy survives the [rest] check. Use a stable pass instead: drop c when
     some *kept* cube covers it, or some strictly-larger later cube does. *)
  let cubes =
    keep []
      (List.stable_sort (fun a b -> Int.compare (Cube.num_literals a) (Cube.num_literals b)) t.cubes)
  in
  { t with cubes }

let sharp a b =
  if a.arity <> b.arity then invalid_arg "Cover.sharp: arity mismatch";
  let sharp_cube_by_cover c =
    List.fold_left
      (fun pieces divisor ->
        List.concat_map (fun piece -> Cube.sharp piece divisor) pieces)
      [ c ] b.cubes
  in
  single_cube_containment
    { a with cubes = List.concat_map sharp_cube_by_cover a.cubes }

let equal_semantics a b =
  if a.arity <> b.arity then invalid_arg "Cover.equal_semantics: arity mismatch";
  if a.arity > 22 then invalid_arg "Cover.equal_semantics: arity too large";
  let n = a.arity in
  let v = Array.make n false in
  let rec go idx =
    if idx = 1 lsl n then true
    else begin
      for i = 0 to n - 1 do
        v.(i) <- (idx lsr i) land 1 = 1
      done;
      Bool.equal (eval a v) (eval b v) && go (idx + 1)
    end
  in
  go 0

let var_occurrences t var =
  let pos = ref 0 and neg = ref 0 in
  List.iter
    (fun c ->
      match Cube.get c var with
      | Literal.Pos -> incr pos
      | Literal.Neg -> incr neg
      | Literal.Absent -> ())
    t.cubes;
  (!pos, !neg)

let most_binate_var t =
  let best = ref None in
  for var = 0 to t.arity - 1 do
    let pos, neg = var_occurrences t var in
    if pos + neg > 0 then begin
      let key = (min pos neg, pos + neg) in
      match !best with
      | Some (_, best_key) when compare key best_key <= 0 -> ()
      | Some _ | None -> best := Some (var, key)
    end
  done;
  Option.map fst !best

let pp ppf t =
  if is_empty t then Format.fprintf ppf "<empty/%d>" t.arity
  else
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " + ")
      Cube.pp ppf t.cubes
