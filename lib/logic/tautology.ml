(* Unate recursive paradigm (Brayton et al., "Logic Minimization Algorithms
   for VLSI Synthesis", ch. 2): a cover is a tautology iff both Shannon
   cofactors about a binate variable are tautologies; a unate cover is a
   tautology iff it contains the universe cube. *)

let rec check f =
  let cubes = Cover.cubes f in
  if List.exists (fun c -> Cube.num_literals c = 0) cubes then true
  else if Cover.is_empty f then false
  else
    match Cover.most_binate_var f with
    | None -> false (* non-empty, no literals handled above; unreachable *)
    | Some var ->
      let pos, neg = Cover.var_occurrences f var in
      if pos = 0 || neg = 0 then
        (* Variable is unate: removing a unate variable's literals weakens
           nothing for tautology — a unate cover is a tautology iff deleting
           all cubes containing the unate literal leaves a tautology. We use
           the single-cofactor shortcut: cofactor on the side that keeps all
           cubes alive. *)
        let value = pos = 0 in
        check (Cover.cofactor f ~var ~value)
      else
        check (Cover.cofactor f ~var ~value:true)
        && check (Cover.cofactor f ~var ~value:false)

let cube_covered c f =
  if Cube.arity c <> Cover.arity f then invalid_arg "Tautology.cube_covered: arity mismatch";
  (* Cofactor f with respect to cube c (drop literals fixed by c, discard
     conflicting cubes — a couple of word ops each), then test tautology. *)
  let n = Cover.arity f in
  let cofactored = List.filter_map (fun g -> Cube.cofactor_wrt g c) (Cover.cubes f) in
  check (Cover.create ~arity:n cofactored)

let cover_covered f g = List.for_all (fun c -> cube_covered c g) (Cover.cubes f)

let equal f g = cover_covered f g && cover_covered g f
