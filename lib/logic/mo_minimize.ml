(* Rows are (cube, output mask) pairs; the reference per-output functions
   are fixed once from the input cover, so every transformation is checked
   against the original semantics. *)

let output_cover_of rows ~n_inputs k =
  Cover.create ~arity:n_inputs
    (List.filter_map
       (fun (cube, mask) -> if Array.get mask k then Some cube else None)
       rows)

let row_obligations_covered mo ~cube ~output ~without =
  let others =
    List.filter_map
      (fun r ->
        if r.Mo_cover.outputs.(output) && not (List.exists (Cube.equal r.Mo_cover.cube) without)
        then Some r.Mo_cover.cube
        else None)
      (Mo_cover.rows mo)
  in
  Tautology.cube_covered cube (Cover.create ~arity:(Mo_cover.n_inputs mo) others)

let minimize_joint ?(passes = 4) mo =
  Mcx_util.Telemetry.span "mo_minimize.joint" @@ fun () ->
  let n_inputs = Mo_cover.n_inputs mo in
  let n_outputs = Mo_cover.n_outputs mo in
  (* reference functions, fixed *)
  let reference = Array.init n_outputs (fun k -> Mo_cover.output_cover mo k) in
  let covered_by_reference cube k = Tautology.cube_covered cube reference.(k) in

  let expand_outputs rows =
    List.map
      (fun (cube, mask) ->
        let mask = Array.copy mask in
        for k = 0 to n_outputs - 1 do
          if (not mask.(k)) && covered_by_reference cube k then mask.(k) <- true
        done;
        (cube, mask))
      rows
  in

  let expand_inputs rows =
    List.map
      (fun (cube, mask) ->
        let current = ref cube in
        for var = 0 to n_inputs - 1 do
          match Cube.get !current var with
          | Literal.Absent -> ()
          | Literal.Pos | Literal.Neg ->
            let raised = Cube.set !current var Literal.Absent in
            let ok = ref true in
            for k = 0 to n_outputs - 1 do
              if mask.(k) && not (covered_by_reference raised k) then ok := false
            done;
            if !ok then current := raised
        done;
        (!current, mask))
      rows
  in

  let irredundant rows =
    (* visit small cubes first so the specific rows get dropped in favour
       of the expanded ones *)
    let sorted =
      List.stable_sort
        (fun (a, _) (b, _) -> Int.compare (Cube.num_literals b) (Cube.num_literals a))
        rows
    in
    let rec sweep kept = function
      | [] -> List.rev kept
      | (cube, mask) :: rest ->
        let remaining = kept @ rest in
        let needed k =
          mask.(k)
          &&
          let others = output_cover_of remaining ~n_inputs k in
          not (Tautology.cube_covered cube others)
        in
        let any_needed = List.exists needed (List.init n_outputs Fun.id) in
        if any_needed then sweep ((cube, mask) :: kept) rest else sweep kept rest
    in
    sweep [] sorted
  in

  let to_mo rows =
    Mo_cover.create ~n_inputs ~n_outputs
      (List.map (fun (cube, outputs) -> { Mo_cover.cube; outputs }) rows)
  in

  (* espresso's make_sparse: after the row count settles, strip output
     connections that other rows already provide. Fewer AND-plane
     switches means a lower inclusion ratio and an easier defect-tolerant
     mapping — the output expansion above was only a vehicle for dropping
     rows, not an end state. *)
  let make_sparse rows =
    let rows = Array.of_list rows in
    for i = 0 to Array.length rows - 1 do
      let cube, mask = rows.(i) in
      for k = 0 to n_outputs - 1 do
        if mask.(k) && Array.exists Fun.id mask then begin
          let others =
            Array.to_list rows
            |> List.mapi (fun j (c, m) -> if j <> i && m.(k) then Some c else None)
            |> List.filter_map Fun.id
          in
          if
            Array.fold_left (fun n b -> if b then n + 1 else n) 0 mask > 1
            && Tautology.cube_covered cube (Cover.create ~arity:n_inputs others)
          then mask.(k) <- false
        end
      done;
      rows.(i) <- (cube, mask)
    done;
    Array.to_list rows
  in

  let rec loop rows budget =
    Mcx_util.Telemetry.count "mo_minimize.passes";
    let next = irredundant (expand_inputs (expand_outputs rows)) in
    if budget <= 1 || List.length next >= List.length rows then next else loop next (budget - 1)
  in
  let rows = List.map (fun r -> (r.Mo_cover.cube, Array.copy r.Mo_cover.outputs)) (Mo_cover.rows mo) in
  to_mo (make_sparse (loop rows passes))
