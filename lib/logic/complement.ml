(* complement(f) about a branching variable x:
     f' = x . (f_x)'  +  x' . (f_x')'
   Leaves: empty cover -> universe; cover containing the universe cube ->
   empty. Branch on the most binate variable to keep the recursion shallow. *)

let rec complement_rec f =
  Mcx_util.Telemetry.count "complement.nodes";
  let n = Cover.arity f in
  if Cover.is_empty f then Cover.top n
  else if List.exists (fun c -> Cube.num_literals c = 0) (Cover.cubes f) then Cover.empty n
  else
    match Cover.most_binate_var f with
    | None -> Cover.empty n
    | Some var ->
      let pos_branch = complement_rec (Cover.cofactor f ~var ~value:true) in
      let neg_branch = complement_rec (Cover.cofactor f ~var ~value:false) in
      let attach value branch =
        let lit = if value then Literal.Pos else Literal.Neg in
        List.filter_map
          (fun c ->
            match Cube.get c var with
            | Literal.Absent -> Some (Cube.set c var lit)
            | Literal.Pos | Literal.Neg ->
              (* Cofactors contain no literal of [var]; defensive. *)
              None)
          (Cover.cubes branch)
      in
      let cubes = attach true pos_branch @ attach false neg_branch in
      Cover.single_cube_containment (Cover.create ~arity:n cubes)

let complement f = Mcx_util.Telemetry.span "logic.complement" (fun () -> complement_rec f)
