let cost f = (Cover.size f, Cover.literal_count f)

let expand f =
  let n = Cover.arity f in
  let expand_cube c =
    (* Try raising each literal; keep a raise when the grown cube is still
       inside the function. Raising order: variable index — deterministic. *)
    let current = ref c in
    for var = 0 to n - 1 do
      match Cube.get !current var with
      | Literal.Absent -> ()
      | Literal.Pos | Literal.Neg ->
        let raised = Cube.set !current var Literal.Absent in
        if Tautology.cube_covered raised f then current := raised
    done;
    !current
  in
  let by_fewest_minterms a b = Int.compare (Cube.num_literals b) (Cube.num_literals a) in
  let cubes = List.stable_sort by_fewest_minterms (Cover.cubes f) in
  let expanded = List.map expand_cube cubes in
  Cover.single_cube_containment (Cover.create ~arity:n expanded)

let irredundant f =
  let n = Cover.arity f in
  let rec sweep kept = function
    | [] -> List.rev kept
    | c :: rest ->
      let others = Cover.create ~arity:n (List.rev_append kept rest) in
      if Tautology.cube_covered c others then sweep kept rest
      else sweep (c :: kept) rest
  in
  (* Visiting large cubes last keeps the specific cubes only when needed. *)
  let by_most_minterms a b = Int.compare (Cube.num_literals a) (Cube.num_literals b) in
  let cubes = List.stable_sort by_most_minterms (Cover.cubes f) in
  Cover.create ~arity:n (sweep [] cubes)

(* Cofactor a cover with respect to a cube: the cover's behaviour inside the
   cube's subspace, expressed over the free variables. Word-parallel. *)
let cofactor_wrt_cube f c =
  Mcx_util.Telemetry.count "minimize.cofactors";
  Cover.create ~arity:(Cover.arity f)
    (List.filter_map (fun g -> Cube.cofactor_wrt g c) (Cover.cubes f))

let reduce f =
  let n = Cover.arity f in
  let reduce_cube others c =
    let inside = cofactor_wrt_cube others c in
    let comp = Complement.complement inside in
    match Cover.cubes comp with
    | [] -> c (* fully covered by others; irredundant will delete it *)
    | first :: rest ->
      let sc = List.fold_left Cube.supercube first rest in
      (* Smallest cube containing c minus the others: keep c's fixed
         literals, adopt the supercube's constraint on free variables. *)
      let out =
        Array.init n (fun i ->
            match Cube.get c i with
            | Literal.Absent -> Cube.get sc i
            | (Literal.Pos | Literal.Neg) as l -> l)
      in
      Cube.of_literals out
  in
  let rec sweep done_ = function
    | [] -> List.rev done_
    | c :: rest ->
      let others = Cover.create ~arity:n (List.rev_append done_ rest) in
      sweep (reduce_cube others c :: done_) rest
  in
  (* Reduce largest cubes first: they overlap the most. *)
  let by_fewest_literals a b = Int.compare (Cube.num_literals a) (Cube.num_literals b) in
  Cover.create ~arity:n (sweep [] (List.stable_sort by_fewest_literals (Cover.cubes f)))

let espresso f =
  Mcx_util.Telemetry.span "minimize.espresso" @@ fun () ->
  let better a b = compare a b < 0 in
  let rec loop current current_cost budget =
    if budget = 0 then current
    else begin
      Mcx_util.Telemetry.count "minimize.espresso_iters";
      let candidate = irredundant (expand (reduce current)) in
      let candidate_cost = cost candidate in
      if better candidate_cost current_cost then loop candidate candidate_cost (budget - 1)
      else current
    end
  in
  let start = irredundant (expand (Cover.single_cube_containment f)) in
  loop start (cost start) 8

let espresso_dc ~dc f =
  if Cover.arity dc <> Cover.arity f then invalid_arg "Minimize.espresso_dc: arity mismatch";
  let n = Cover.arity f in
  let freedom = Cover.union f dc in
  (* Expansion may grow into ON u DC; a cube is redundant when the other
     cubes plus the DC set cover it; cubes entirely inside DC go first. *)
  let expand_dc g =
    let expand_cube c =
      let current = ref c in
      for var = 0 to n - 1 do
        match Cube.get !current var with
        | Literal.Absent -> ()
        | Literal.Pos | Literal.Neg ->
          let raised = Cube.set !current var Literal.Absent in
          if Tautology.cube_covered raised freedom then current := raised
      done;
      !current
    in
    Cover.single_cube_containment (Cover.create ~arity:n (List.map expand_cube (Cover.cubes g)))
  in
  let irredundant_dc g =
    let rec sweep kept = function
      | [] -> List.rev kept
      | c :: rest ->
        let others = Cover.union (Cover.create ~arity:n (List.rev_append kept rest)) dc in
        if Tautology.cube_covered c others then sweep kept rest else sweep (c :: kept) rest
    in
    let by_most_minterms a b = Int.compare (Cube.num_literals a) (Cube.num_literals b) in
    Cover.create ~arity:n (sweep [] (List.stable_sort by_most_minterms (Cover.cubes g)))
  in
  let rec loop current current_cost budget =
    if budget = 0 then current
    else begin
      Mcx_util.Telemetry.count "minimize.espresso_iters";
      let candidate = irredundant_dc (expand_dc current) in
      let candidate_cost = cost candidate in
      if compare candidate_cost current_cost < 0 then loop candidate candidate_cost (budget - 1)
      else current
    end
  in
  Mcx_util.Telemetry.span "minimize.espresso_dc" @@ fun () ->
  let start = irredundant_dc (expand_dc (Cover.single_cube_containment f)) in
  loop start (cost start) 6

let complement_minimized f = espresso (Complement.complement f)
