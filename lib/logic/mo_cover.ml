type row = { cube : Cube.t; outputs : bool array }

type t = { n_inputs : int; n_outputs : int; rows : row list }

let merge_rows n_outputs rows =
  let table = Hashtbl.create (List.length rows * 2) in
  let order = ref [] in
  List.iter
    (fun { cube; outputs } ->
      let key = Cube.to_string cube in
      match Hashtbl.find_opt table key with
      | Some existing ->
        Array.iteri (fun k v -> if v then existing.outputs.(k) <- true) outputs
      | None ->
        let fresh = { cube; outputs = Array.copy outputs } in
        Hashtbl.replace table key fresh;
        order := fresh :: !order)
    rows;
  ignore n_outputs;
  List.filter (fun r -> Array.exists Fun.id r.outputs) (List.rev !order)

let create ?(share = true) ~n_inputs ~n_outputs rows =
  if n_inputs < 0 || n_outputs < 0 then invalid_arg "Mo_cover.create: negative counts";
  List.iter
    (fun { cube; outputs } ->
      if Cube.arity cube <> n_inputs then invalid_arg "Mo_cover.create: cube arity mismatch";
      if Array.length outputs <> n_outputs then
        invalid_arg "Mo_cover.create: output mask length mismatch")
    rows;
  let rows =
    if share then merge_rows n_outputs rows
    else
      List.filter_map
        (fun r ->
          if Array.exists Fun.id r.outputs then Some { r with outputs = Array.copy r.outputs }
          else None)
        rows
  in
  { n_inputs; n_outputs; rows }

let of_single f =
  let rows =
    List.map (fun cube -> { cube; outputs = [| true |] }) (Cover.cubes f)
  in
  create ~n_inputs:(Cover.arity f) ~n_outputs:1 rows

let of_covers = function
  | [] -> invalid_arg "Mo_cover.of_covers: empty list"
  | first :: _ as covers ->
    let n_inputs = Cover.arity first in
    let n_outputs = List.length covers in
    let rows =
      List.concat
        (List.mapi
           (fun k f ->
             if Cover.arity f <> n_inputs then
               invalid_arg "Mo_cover.of_covers: arity mismatch";
             List.map
               (fun cube ->
                 let outputs = Array.make n_outputs false in
                 outputs.(k) <- true;
                 { cube; outputs })
               (Cover.cubes f))
           covers)
    in
    create ~n_inputs ~n_outputs rows

let n_inputs t = t.n_inputs
let n_outputs t = t.n_outputs
let rows t = t.rows
let product_count t = List.length t.rows

let literal_count t =
  List.fold_left (fun acc r -> acc + Cube.num_literals r.cube) 0 t.rows

let connection_count t =
  List.fold_left
    (fun acc r -> acc + Array.fold_left (fun n b -> if b then n + 1 else n) 0 r.outputs)
    0 t.rows

let output_cover t k =
  if k < 0 || k >= t.n_outputs then invalid_arg "Mo_cover.output_cover: out of range";
  Cover.create ~arity:t.n_inputs
    (List.filter_map (fun r -> if r.outputs.(k) then Some r.cube else None) t.rows)

let eval t v =
  Array.init t.n_outputs (fun k -> Cover.eval (output_cover t k) v)

let rebuild_from_covers t covers =
  let combined = of_covers covers in
  { combined with n_outputs = t.n_outputs }

let complement t =
  let negate_output k =
    let f = output_cover t k in
    if t.n_inputs <= 14 then Qm.minimize (Truthtable.complement (Truthtable.of_cover f))
    else Minimize.complement_minimized f
  in
  rebuild_from_covers t (List.init t.n_outputs negate_output)

let minimize t =
  rebuild_from_covers t (List.init t.n_outputs (fun k -> Minimize.espresso (output_cover t k)))

let map_cubes t ~f =
  create ~n_inputs:t.n_inputs ~n_outputs:t.n_outputs
    (List.map (fun r -> { r with cube = f r.cube }) t.rows)

let permute_vars t ~perm =
  let n = t.n_inputs in
  if Array.length perm <> n then invalid_arg "Mo_cover.permute_vars: length mismatch";
  let seen = Array.make n false in
  Array.iter
    (fun p ->
      if p < 0 || p >= n || seen.(p) then invalid_arg "Mo_cover.permute_vars: not a permutation";
      seen.(p) <- true)
    perm;
  let rows =
    List.map
      (fun r ->
        let literals = Array.make n Literal.Absent in
        for v = 0 to n - 1 do
          literals.(perm.(v)) <- Cube.get r.cube v
        done;
        { cube = Cube.of_literals literals; outputs = Array.copy r.outputs })
      t.rows
  in
  { t with rows }

(* Canonical form under product-row reordering and input relabeling; see
   the interface for the exact coalescing guarantee. Variables are
   ordered by their (positive, negative) occurrence counts — invariant
   under both row permutation and relabeling — with ties resolved by
   original position; rows are then sorted on the relabeled cubes. *)
let canonical t =
  let n = t.n_inputs in
  let pos = Array.make n 0 and neg = Array.make n 0 in
  List.iter
    (fun r ->
      for v = 0 to n - 1 do
        match Cube.get r.cube v with
        | Literal.Pos -> pos.(v) <- pos.(v) + 1
        | Literal.Neg -> neg.(v) <- neg.(v) + 1
        | Literal.Absent -> ()
      done)
    t.rows;
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      let c = compare (pos.(a), neg.(a)) (pos.(b), neg.(b)) in
      if c <> 0 then c else compare a b)
    order;
  let var_perm = Array.make n 0 in
  Array.iteri (fun canonical_pos v -> var_perm.(v) <- canonical_pos) order;
  let relabeled = permute_vars t ~perm:var_perm in
  let indexed = Array.of_list (List.mapi (fun i r -> (i, r)) relabeled.rows) in
  Array.sort
    (fun (_, a) (_, b) ->
      let c = Cube.compare a.cube b.cube in
      if c <> 0 then c else compare a.outputs b.outputs)
    indexed;
  let row_perm = Array.make (Array.length indexed) 0 in
  Array.iteri (fun canonical_pos (orig, _) -> row_perm.(orig) <- canonical_pos) indexed;
  let rows = Array.to_list (Array.map snd indexed) in
  ({ relabeled with rows }, row_perm, var_perm)

let equal_semantics a b =
  a.n_inputs = b.n_inputs && a.n_outputs = b.n_outputs
  && List.for_all
       (fun k -> Cover.equal_semantics (output_cover a k) (output_cover b k))
       (List.init a.n_outputs Fun.id)

let pp ppf t =
  Format.fprintf ppf "@[<v>.i %d@,.o %d@,.p %d" t.n_inputs t.n_outputs (product_count t);
  List.iter
    (fun r ->
      let mask =
        String.init (Array.length r.outputs) (fun k -> if r.outputs.(k) then '1' else '0')
      in
      Format.fprintf ppf "@,%s %s" (Cube.to_string r.cube) mask)
    t.rows;
  Format.fprintf ppf "@,.e@]"
