(** Cubes (product terms) over a fixed set of input variables.

    A cube is a conjunction of literals; it is the unit the paper maps onto
    one horizontal crossbar line. Cubes are immutable.

    The representation is {!Cube_packed}: two bit masks (care / polarity)
    packed into native words, so containment, intersection and tautology
    cofactoring are word-parallel. This module adds the Literal-level and
    string-level API on top. *)

type t = Cube_packed.t

val universe : int -> t
(** [universe n] is the cube over [n] variables with no literals (constant
    true product). @raise Invalid_argument if [n < 0]. *)

val of_literals : Literal.t array -> t
(** Takes ownership of a copy of the array. *)

val of_string : string -> t
(** [of_string "1-0"] builds a 3-variable cube x0 x2'.
    @raise Invalid_argument on characters other than 0/1/-/2. *)

val to_string : t -> string

val arity : t -> int
(** Number of variables (including absent positions). *)

val get : t -> int -> Literal.t
(** Literal at variable [i]. @raise Invalid_argument out of range. *)

val set : t -> int -> Literal.t -> t
(** Functional update. *)

val literals : t -> (int * Literal.t) list
(** The non-absent positions, in increasing variable order. *)

val num_literals : t -> int
(** Count of non-absent positions — the number of NAND-plane switches the
    cube needs on its crossbar row. *)

val is_minterm : t -> bool
(** True when every variable is constrained. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val hash : t -> int
(** Mixes the packed words directly — no per-call string allocation. *)

val eval : t -> bool array -> bool
(** [eval c v] evaluates the conjunction on the assignment [v].
    @raise Invalid_argument on arity mismatch. *)

val pack_assignment : bool array -> int array
(** Pack an assignment once for repeated {!eval_packed} calls over the
    cubes of a cover. *)

val eval_packed : t -> int array -> bool
(** Evaluate against a packed assignment of at least the cube's arity. *)

val covers : t -> t -> bool
(** [covers a b]: every minterm of [b] is a minterm of [a]. *)

val intersect : t -> t -> t option
(** [None] when the cubes share no minterm. *)

val distance : t -> t -> int
(** Number of variables on which the cubes conflict (one [Pos], other
    [Neg]). Zero distance means the intersection is non-empty. *)

val supercube : t -> t -> t
(** Smallest cube containing both arguments. *)

val cofactor : t -> var:int -> value:bool -> t option
(** Shannon cofactor of the cube with respect to a variable value. [None] if
    the cube requires the opposite value (cofactor is empty); otherwise the
    cube with that variable freed. *)

val cofactor_wrt : t -> t -> t option
(** [cofactor_wrt g c]: [g] with every literal fixed by [c] removed; [None]
    when the cubes conflict. Word-parallel — the inner loop of the
    unate-recursive tautology check. @raise Invalid_argument on arity
    mismatch. *)

val complement_literals : t -> t
(** Complement every literal in place-wise fashion (used when negating
    inputs, e.g. De Morgan over a product). This is NOT the complement of
    the cube as a Boolean function. *)

val merge_adjacent : t -> t -> t option
(** Quine–McCluskey merge: if the cubes are identical except for exactly one
    variable where one is [Pos] and the other [Neg], return the merged cube
    with that variable [Absent]. *)

val sharp : t -> t -> t list
(** The sharp product [a # b]: a disjoint list of cubes covering exactly
    the minterms of [a] outside [b]. Returns [[a]] when the cubes are
    disjoint and [[]] when [b] covers [a]. @raise Invalid_argument on
    arity mismatch. *)

val minterms : t -> bool array list
(** Enumerate all satisfying assignments. Exponential in the number of
    absent variables — intended for small arities (tests, QM). *)

val pp : Format.formatter -> t -> unit
