(* Naive reference implementations of the cube / cover / boolean-matrix
   kernels: one literal (or cell) at a time, no packing, written to be
   obviously correct rather than fast.

   These are the differential-test oracle (test/oracle.ml pits the packed
   kernels of [Cube_packed] and [Bmatrix] against them on randomized
   inputs) and the baseline the kernel microbench (bench/kernels.ml)
   measures its speedup against.  Do not "optimize" this module: its value
   is its independence from the packed representation. *)

type cube = Literal.t array

let of_cube c = Cube.of_literals c
let to_cube (c : Cube.t) : cube = Array.init (Cube.arity c) (Cube.get c)

let num_literals (c : cube) =
  Array.fold_left (fun n l -> if Literal.equal l Literal.Absent then n else n + 1) 0 c

let covers (a : cube) (b : cube) =
  Array.length a = Array.length b
  &&
  let rec go i = i = Array.length a || (Literal.covers a.(i) b.(i) && go (i + 1)) in
  go 0

let intersect (a : cube) (b : cube) : cube option =
  if Array.length a <> Array.length b then invalid_arg "Naive.intersect: arity mismatch";
  let out = Array.make (Array.length a) Literal.Absent in
  let rec go i =
    if i = Array.length a then Some out
    else
      match Literal.intersect a.(i) b.(i) with
      | None -> None
      | Some l ->
        out.(i) <- l;
        go (i + 1)
  in
  go 0

let distance (a : cube) (b : cube) =
  if Array.length a <> Array.length b then invalid_arg "Naive.distance: arity mismatch";
  let d = ref 0 in
  for i = 0 to Array.length a - 1 do
    match (a.(i), b.(i)) with
    | Literal.Pos, Literal.Neg | Literal.Neg, Literal.Pos -> incr d
    | (Literal.Pos | Literal.Neg | Literal.Absent), _ -> ()
  done;
  !d

let supercube (a : cube) (b : cube) : cube =
  if Array.length a <> Array.length b then invalid_arg "Naive.supercube: arity mismatch";
  Array.init (Array.length a) (fun i ->
      if Literal.equal a.(i) b.(i) then a.(i) else Literal.Absent)

let merge_adjacent (a : cube) (b : cube) : cube option =
  if Array.length a <> Array.length b then invalid_arg "Naive.merge_adjacent: arity mismatch";
  let diff = ref None in
  let ok = ref true in
  for i = 0 to Array.length a - 1 do
    if !ok && not (Literal.equal a.(i) b.(i)) then begin
      match (a.(i), b.(i), !diff) with
      | Literal.Pos, Literal.Neg, None | Literal.Neg, Literal.Pos, None -> diff := Some i
      | _, _, _ -> ok := false
    end
  done;
  match (!ok, !diff) with
  | true, Some i ->
    let out = Array.copy a in
    out.(i) <- Literal.Absent;
    Some out
  | true, None | false, _ -> None

let cofactor (c : cube) ~var ~value : cube option =
  if var < 0 || var >= Array.length c then invalid_arg "Naive.cofactor: variable out of range";
  let required = if value then Literal.Pos else Literal.Neg in
  match c.(var) with
  | Literal.Absent -> Some (Array.copy c)
  | l when Literal.equal l required ->
    let out = Array.copy c in
    out.(var) <- Literal.Absent;
    Some out
  | Literal.Pos | Literal.Neg -> None

let cofactor_wrt (g : cube) (c : cube) : cube option =
  if Array.length g <> Array.length c then invalid_arg "Naive.cofactor_wrt: arity mismatch";
  let out = Array.make (Array.length g) Literal.Absent in
  let ok = ref true in
  for i = 0 to Array.length g - 1 do
    match (c.(i), g.(i)) with
    | Literal.Absent, l -> out.(i) <- l
    | (Literal.Pos | Literal.Neg), Literal.Absent -> ()
    | Literal.Pos, Literal.Pos | Literal.Neg, Literal.Neg -> ()
    | Literal.Pos, Literal.Neg | Literal.Neg, Literal.Pos -> ok := false
  done;
  if !ok then Some out else None

let eval (c : cube) v =
  if Array.length c <> Array.length v then invalid_arg "Naive.eval: arity mismatch";
  let rec go i = i = Array.length c || (Literal.matches c.(i) v.(i) && go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Covers as bare cube lists                                           *)
(* ------------------------------------------------------------------ *)

let cover_eval (cubes : cube list) v = List.exists (fun c -> eval c v) cubes

(* Drop every cube covered by a kept earlier cube or by any later cube —
   mirrors [Cover.single_cube_containment]'s stable sweep over cubes
   sorted by ascending literal count. *)
let single_cube_containment (cubes : cube list) =
  let sorted =
    List.stable_sort (fun a b -> Int.compare (num_literals a) (num_literals b)) cubes
  in
  let rec keep acc = function
    | [] -> List.rev acc
    | c :: rest ->
      let covered_by other = covers other c in
      if List.exists covered_by acc || List.exists covered_by rest then keep acc rest
      else keep (c :: acc) rest
  in
  keep [] sorted

(* Unate-recursive tautology on the naive representation. *)
let rec tautology ~arity (cubes : cube list) =
  if List.exists (fun c -> num_literals c = 0) cubes then true
  else if cubes = [] then false
  else begin
    (* most binate variable, ties to the lowest index — as [Cover.most_binate_var] *)
    let best = ref None in
    for var = 0 to arity - 1 do
      let pos = ref 0 and neg = ref 0 in
      List.iter
        (fun c ->
          match c.(var) with
          | Literal.Pos -> incr pos
          | Literal.Neg -> incr neg
          | Literal.Absent -> ())
        cubes;
      if !pos + !neg > 0 then begin
        let key = (min !pos !neg, !pos + !neg) in
        match !best with
        | Some (_, _, best_key) when compare key best_key <= 0 -> ()
        | Some _ | None -> best := Some (var, (!pos, !neg), key)
      end
    done;
    match !best with
    | None -> false
    | Some (var, (pos, neg), _) ->
      let cof value =
        List.filter_map (fun c -> cofactor c ~var ~value) cubes
      in
      if pos = 0 || neg = 0 then tautology ~arity (cof (pos = 0))
      else tautology ~arity (cof true) && tautology ~arity (cof false)
  end

(* ------------------------------------------------------------------ *)
(* Boolean matrices as bool array array                                *)
(* ------------------------------------------------------------------ *)

type bmatrix = bool array array

let of_bmatrix (m : bmatrix) =
  let t = Mcx_util.Bmatrix.create ~rows:(Array.length m) ~cols:(Array.length m.(0)) false in
  Array.iteri (fun i row -> Array.iteri (fun j v -> if v then Mcx_util.Bmatrix.set t i j true) row) m;
  t

let row_subset (a : bmatrix) i (b : bmatrix) j =
  let rec go k = k = Array.length a.(i) || ((not a.(i).(k)) || b.(j).(k)) && go (k + 1) in
  go 0

let row_intersects (a : bmatrix) i (b : bmatrix) j =
  let rec go k = k < Array.length a.(i) && ((a.(i).(k) && b.(j).(k)) || go (k + 1)) in
  go 0

let row_count (a : bmatrix) i =
  Array.fold_left (fun n v -> if v then n + 1 else n) 0 a.(i)

let row_and_count (a : bmatrix) i (b : bmatrix) j =
  let n = ref 0 in
  for k = 0 to Array.length a.(i) - 1 do
    if a.(i).(k) && b.(j).(k) then incr n
  done;
  !n

let row_or_count (a : bmatrix) i (b : bmatrix) j =
  let n = ref 0 in
  for k = 0 to Array.length a.(i) - 1 do
    if a.(i).(k) || b.(j).(k) then incr n
  done;
  !n

let row_diff_count (a : bmatrix) i (b : bmatrix) j =
  let n = ref 0 in
  for k = 0 to Array.length a.(i) - 1 do
    if a.(i).(k) && not b.(j).(k) then incr n
  done;
  !n

let is_submatrix (sub : bmatrix) (sup : bmatrix) =
  Array.length sub = Array.length sup
  && (Array.length sub = 0 || Array.length sub.(0) = Array.length sup.(0))
  &&
  let ok = ref true in
  Array.iteri
    (fun i row -> Array.iteri (fun j v -> if v && not sup.(i).(j) then ok := false) row)
    sub;
  !ok
