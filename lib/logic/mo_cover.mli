(** Multi-output covers: the PLA-level object the paper maps onto crossbars.

    A multi-output cover is a list of product rows; each row is a cube plus
    the set of outputs that include it. Product sharing across outputs is
    what the benchmark statistics (the P column of Tables I/II) count, so the
    representation keeps rows unique and merges output masks. *)

type t

type row = { cube : Cube.t; outputs : bool array }
(** One product row: [outputs.(k)] is true when output [k] sums this cube. *)

val create : ?share:bool -> n_inputs:int -> n_outputs:int -> row list -> t
(** Rows with equal cubes are merged (masks OR-ed) when [share] is [true]
    (the default); with [share:false] duplicate cubes stay as separate rows
    (e.g. to reproduce the paper's Fig. 8 matrices, whose FM keeps the
    shared product x2 x3 once per output). Rows with an all-false mask are
    dropped either way. @raise Invalid_argument on arity or mask-length
    mismatch, or negative counts. *)

val of_single : Cover.t -> t
(** Wrap a single-output cover. *)

val of_covers : Cover.t list -> t
(** Combine per-output covers over the same inputs, sharing equal cubes.
    @raise Invalid_argument if arities differ or the list is empty. *)

val n_inputs : t -> int
val n_outputs : t -> int
val rows : t -> row list

val product_count : t -> int
(** Number of distinct product rows — the paper's P. *)

val literal_count : t -> int
(** Total NAND-plane switches: sum of cube literal counts. *)

val connection_count : t -> int
(** Total AND-plane switches: sum over rows of included outputs. *)

val output_cover : t -> int -> Cover.t
(** The single-output cover of output [k]. @raise Invalid_argument out of
    range. *)

val eval : t -> bool array -> bool array
(** All outputs on one assignment. *)

val complement : t -> t
(** Output-wise negation. Uses exact truth tables + {!Qm} when the input
    count allows (≤ 14), falling back to algebraic complement + espresso
    otherwise; rows equal across outputs are shared again. This implements
    the paper's "Negation of Circuit". *)

val minimize : t -> t
(** Espresso each output independently, then re-share rows. *)

val map_cubes : t -> f:(Cube.t -> Cube.t) -> t
(** Rebuild with transformed cubes (rows re-merged). *)

val permute_vars : t -> perm:int array -> t
(** Relabel input variables: variable [v] of the argument becomes
    variable [perm.(v)] of the result (row order and output masks are
    untouched). @raise Invalid_argument unless [perm] is a permutation
    of [0 .. n_inputs - 1]. *)

val canonical : t -> t * int array * int array
(** [canonical t] is [(c, row_perm, var_perm)]: a normal form under
    product-row reordering and (partially) input relabeling, the basis of
    the serving layer's request-coalescing digest. [c] is [t] with
    variables relabeled by [var_perm] (variable [v] becomes
    [var_perm.(v)]) and product rows sorted; [row_perm.(i)] is the
    canonical index of [t]'s row [i].

    Guarantees: the transform is always sound (a deterministic
    permutation of [t], so results computed on [c] translate back
    through the returned permutations), and two covers that differ only
    by a product-row permutation canonicalize identically. Input
    relabelings additionally coalesce when the per-variable occurrence
    signatures (positive count, negative count) are distinct; tied
    signatures fall back to original variable order, which keeps the
    transform canonical per input but not across all relabelings — a
    deliberate trade against graph-isomorphism-complete refinement. *)

val equal_semantics : t -> t -> bool
(** Truth-table equality on every output (small arities only). *)

val pp : Format.formatter -> t -> unit
