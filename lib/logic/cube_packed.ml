open Mcx_util

(* A cube over [arity] variables as two packed bit masks, one bit per
   variable per mask ([Bits.word_bits] variables per native word):

     care bit i = 1   <->  variable i carries a literal
     pol  bit i = 1   <->  that literal is positive

   Invariants: [pol land lnot care = 0] in every word (polarity bits are
   canonical zero on absent variables) and bits at positions >= arity are
   zero, so whole-word comparisons and popcounts need no re-masking.

   With this coding the cover/containment kernels collapse to a few
   word-parallel operations; see the per-function comments. *)

type t = { arity : int; care : int array; pol : int array }

let arity t = t.arity
let words t = Array.length t.care
let care_word t w = t.care.(w)
let pol_word t w = t.pol.(w)

let universe n =
  if n < 0 then invalid_arg "Cube.universe: negative arity";
  let nw = Bits.words_for n in
  { arity = n; care = Array.make nw 0; pol = Array.make nw 0 }

let make ~arity ~f =
  let t = universe arity in
  for i = 0 to arity - 1 do
    let w = Bits.word_of i and bit = 1 lsl Bits.bit_of i in
    (match (f i : Literal.t) with
    | Literal.Absent -> ()
    | Literal.Neg -> t.care.(w) <- t.care.(w) lor bit
    | Literal.Pos ->
      t.care.(w) <- t.care.(w) lor bit;
      t.pol.(w) <- t.pol.(w) lor bit)
  done;
  t

let of_literals a = make ~arity:(Array.length a) ~f:(Array.get a)

let unsafe_get t i =
  let w = Bits.word_of i and b = Bits.bit_of i in
  if (Array.unsafe_get t.care w lsr b) land 1 = 0 then Literal.Absent
  else if (Array.unsafe_get t.pol w lsr b) land 1 = 1 then Literal.Pos
  else Literal.Neg

let get t i =
  if i < 0 || i >= t.arity then invalid_arg "Cube.get: variable out of range";
  unsafe_get t i

let set t i l =
  if i < 0 || i >= t.arity then invalid_arg "Cube.set: variable out of range";
  let care = Array.copy t.care and pol = Array.copy t.pol in
  let w = Bits.word_of i and bit = 1 lsl Bits.bit_of i in
  (match (l : Literal.t) with
  | Literal.Absent ->
    care.(w) <- care.(w) land lnot bit;
    pol.(w) <- pol.(w) land lnot bit
  | Literal.Neg ->
    care.(w) <- care.(w) lor bit;
    pol.(w) <- pol.(w) land lnot bit
  | Literal.Pos ->
    care.(w) <- care.(w) lor bit;
    pol.(w) <- pol.(w) lor bit);
  { t with care; pol }

let to_array t = Array.init t.arity (unsafe_get t)

let num_literals t =
  let n = ref 0 in
  for w = 0 to Array.length t.care - 1 do
    n := !n + Bits.popcount (Array.unsafe_get t.care w)
  done;
  !n

let is_minterm t = num_literals t = t.arity

let literals t =
  (* Per word, peel set bits in ascending order; walking the words
     high-to-low and prepending keeps the whole list ascending. *)
  let out = ref [] in
  for w = Array.length t.care - 1 downto 0 do
    let word = t.care.(w) in
    if word <> 0 then begin
      let collected = ref [] in
      let m = ref word in
      while !m <> 0 do
        let b = Bits.ctz !m in
        let i = (w * Bits.word_bits) + b in
        collected := (i, unsafe_get t i) :: !collected;
        m := !m land (!m - 1)
      done;
      out := List.rev_append !collected !out
    end
  done;
  !out

let equal a b =
  a.arity = b.arity
  &&
  let rec go w =
    w = Array.length a.care || (a.care.(w) = b.care.(w) && a.pol.(w) = b.pol.(w) && go (w + 1))
  in
  go 0

(* Lexicographic by variable index with the literal order Neg < Pos <
   Absent, matching [Literal.compare] — rank = 2*(1-care) + pol. *)
let rank_at t w b = if (t.care.(w) lsr b) land 1 = 0 then 2 else (t.pol.(w) lsr b) land 1

let compare a b =
  if a.arity <> b.arity then Int.compare a.arity b.arity
  else begin
    let nw = Array.length a.care in
    let rec go w =
      if w = nw then 0
      else
        let diff = a.care.(w) lxor b.care.(w) lor (a.pol.(w) lxor b.pol.(w)) in
        if diff = 0 then go (w + 1)
        else
          let b0 = Bits.ctz diff in
          Int.compare (rank_at a w b0) (rank_at b w b0)
    in
    go 0
  end

let hash t =
  let h = ref (Bits.mix 0x4D435843 t.arity) (* "MCXC" *) in
  for w = 0 to Array.length t.care - 1 do
    h := Bits.mix !h t.care.(w);
    h := Bits.mix !h t.pol.(w)
  done;
  !h land max_int

let check_arity name a b =
  if a.arity <> b.arity then invalid_arg (Printf.sprintf "Cube.%s: arity mismatch" name)

(* a covers b: a's literals are a subset of b's with equal polarity —
   per word, care(a) ⊆ care(b) and polarities agree on care(a). *)
let covers a b =
  a.arity = b.arity
  &&
  let rec go w =
    w = Array.length a.care
    || a.care.(w) land lnot b.care.(w) = 0
       && a.care.(w) land (a.pol.(w) lxor b.pol.(w)) = 0
       && go (w + 1)
  in
  go 0

(* Variables constrained by both cubes with opposite polarity. *)
let conflict_word a b w = a.care.(w) land b.care.(w) land (a.pol.(w) lxor b.pol.(w))

let distance a b =
  check_arity "distance" a b;
  let d = ref 0 in
  for w = 0 to Array.length a.care - 1 do
    d := !d + Bits.popcount (conflict_word a b w)
  done;
  !d

let intersect a b =
  check_arity "intersect" a b;
  let nw = Array.length a.care in
  let rec clash w = w < nw && (conflict_word a b w <> 0 || clash (w + 1)) in
  if clash 0 then None
  else
    Some
      {
        a with
        care = Array.init nw (fun w -> a.care.(w) lor b.care.(w));
        pol = Array.init nw (fun w -> a.pol.(w) lor b.pol.(w));
      }

let supercube a b =
  check_arity "supercube" a b;
  let nw = Array.length a.care in
  let care =
    Array.init nw (fun w -> a.care.(w) land b.care.(w) land lnot (a.pol.(w) lxor b.pol.(w)))
  in
  let pol = Array.init nw (fun w -> a.pol.(w) land care.(w)) in
  { a with care; pol }

let complement_literals t =
  let nw = Array.length t.care in
  { t with pol = Array.init nw (fun w -> t.care.(w) land lnot t.pol.(w)) }

(* Quine–McCluskey merge: identical care sets and exactly one polarity
   difference inside them. *)
let merge_adjacent a b =
  check_arity "merge_adjacent" a b;
  let nw = Array.length a.care in
  let rec same_care w = w = nw || (a.care.(w) = b.care.(w) && same_care (w + 1)) in
  if not (same_care 0) then None
  else begin
    let diff_bits = ref 0 and diff_word = ref (-1) in
    for w = 0 to nw - 1 do
      let d = a.pol.(w) lxor b.pol.(w) in
      if d <> 0 then begin
        diff_bits := !diff_bits + Bits.popcount d;
        diff_word := w
      end
    done;
    if !diff_bits <> 1 then None
    else begin
      let w = !diff_word in
      let bit = a.pol.(w) lxor b.pol.(w) in
      let care = Array.copy a.care and pol = Array.copy a.pol in
      care.(w) <- care.(w) land lnot bit;
      pol.(w) <- pol.(w) land lnot bit;
      Some { a with care; pol }
    end
  end

let cofactor t ~var ~value =
  let required = if value then Literal.Pos else Literal.Neg in
  match get t var with
  | Literal.Absent -> Some { t with care = Array.copy t.care }
  | l when Literal.equal l required -> Some (set t var Literal.Absent)
  | Literal.Pos | Literal.Neg -> None

(* Cofactor [g] with respect to cube [c]: drop from [g] every literal fixed
   by [c]; [None] when they conflict (empty cofactor).  One AND-NOT per
   word — this is the inner loop of the unate-recursive tautology check. *)
let cofactor_wrt g c =
  check_arity "cofactor_wrt" g c;
  let nw = Array.length g.care in
  let rec clash w = w < nw && (conflict_word g c w <> 0 || clash (w + 1)) in
  if clash 0 then None
  else
    Some
      {
        g with
        care = Array.init nw (fun w -> g.care.(w) land lnot c.care.(w));
        pol = Array.init nw (fun w -> g.pol.(w) land lnot c.care.(w));
      }

let pack_assignment v =
  let nw = Bits.words_for (Array.length v) in
  let words = Array.make nw 0 in
  Array.iteri
    (fun i x -> if x then words.(Bits.word_of i) <- words.(Bits.word_of i) lor (1 lsl Bits.bit_of i))
    v;
  words

(* The cube is satisfied iff on every constrained variable the assignment
   matches the polarity: care land (pol lxor v) = 0 per word. *)
let eval_packed t v =
  let rec go w =
    w = Array.length t.care
    || Array.unsafe_get t.care w land (Array.unsafe_get t.pol w lxor Array.unsafe_get v w) = 0
       && go (w + 1)
  in
  go 0

let eval t v =
  if t.arity <> Array.length v then invalid_arg "Cube.eval: arity mismatch";
  eval_packed t (pack_assignment v)
