(* Implicants are coded as (bits, dashes): [dashes] has a 1 where the
   variable is absent; [bits] holds the literal polarity on non-dash
   positions (and 0 on dash positions, keeping the coding canonical). *)

type imp = { bits : int; dashes : int }

let imp_compare a b =
  let c = Int.compare a.dashes b.dashes in
  if c <> 0 then c else Int.compare a.bits b.bits

module ImpSet = Set.Make (struct
  type t = imp

  let compare = imp_compare
end)

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
  go x 0

let try_merge a b =
  if a.dashes <> b.dashes then None
  else begin
    let diff = a.bits lxor b.bits in
    if diff <> 0 && diff land (diff - 1) = 0 then
      Some { bits = a.bits land lnot diff; dashes = a.dashes lor diff }
    else None
  end

let cube_of_imp ~arity imp =
  Cube.of_literals
    (Array.init arity (fun i ->
         if (imp.dashes lsr i) land 1 = 1 then Literal.Absent
         else if (imp.bits lsr i) land 1 = 1 then Literal.Pos
         else Literal.Neg))

let primes_imps tt =
  let minterms = Truthtable.minterm_indices tt in
  let current = ref (List.map (fun m -> { bits = m; dashes = 0 }) minterms) in
  let prime_acc = ref ImpSet.empty in
  let continue_ = ref (!current <> []) in
  while !continue_ do
    (* Group by (dashes, popcount bits) so only adjacent groups are paired. *)
    let groups = Hashtbl.create 64 in
    List.iter
      (fun imp ->
        let key = (imp.dashes, popcount imp.bits) in
        Hashtbl.replace groups key (imp :: (Option.value ~default:[] (Hashtbl.find_opt groups key))))
      !current;
    let used = Hashtbl.create 64 in
    let next = ref ImpSet.empty in
    Hashtbl.iter
      (fun (dashes, ones) group ->
        match Hashtbl.find_opt groups (dashes, ones + 1) with
        | None -> ()
        | Some upper ->
          List.iter
            (fun a ->
              List.iter
                (fun b ->
                  match try_merge a b with
                  | None -> ()
                  | Some m ->
                    Hashtbl.replace used a ();
                    Hashtbl.replace used b ();
                    next := ImpSet.add m !next)
                upper)
            group)
      groups;
    List.iter
      (fun imp -> if not (Hashtbl.mem used imp) then prime_acc := ImpSet.add imp !prime_acc)
      !current;
    current := ImpSet.elements !next;
    continue_ := !current <> []
  done;
  ImpSet.elements !prime_acc

let primes tt = List.map (cube_of_imp ~arity:(Truthtable.arity tt)) (primes_imps tt)

let imp_covers imp m = m land lnot imp.dashes = imp.bits

let minimize tt =
  Mcx_util.Telemetry.span "qm.minimize" @@ fun () ->
  let arity = Truthtable.arity tt in
  let minterms = Array.of_list (Truthtable.minterm_indices tt) in
  let prime_list = Array.of_list (primes_imps tt) in
  Mcx_util.Telemetry.count ~n:(Array.length minterms) "qm.minterms";
  Mcx_util.Telemetry.count ~n:(Array.length prime_list) "qm.primes";
  let n_minterms = Array.length minterms in
  if n_minterms = 0 then Cover.empty arity
  else begin
    let covered = Array.make n_minterms false in
    let chosen = ref [] in
    let choose p =
      chosen := p :: !chosen;
      Array.iteri (fun i m -> if imp_covers p m then covered.(i) <- true) minterms
    in
    (* Essential primes: minterms covered by exactly one prime. *)
    let essential = Hashtbl.create 16 in
    Array.iter
      (fun m ->
        let covering = Array.to_list (Array.of_seq (Seq.filter (fun p -> imp_covers p m) (Array.to_seq prime_list))) in
        match covering with
        | [ only ] -> Hashtbl.replace essential only ()
        | [] | _ :: _ :: _ -> ())
      minterms;
    Hashtbl.iter (fun p () -> choose p) essential;
    (* Greedy completion: repeatedly take the prime covering the most
       still-uncovered minterms; ties go to the larger cube. *)
    let all_covered () = Array.for_all Fun.id covered in
    while not (all_covered ()) do
      let gain p =
        let g = ref 0 in
        Array.iteri (fun i m -> if (not covered.(i)) && imp_covers p m then incr g) minterms;
        !g
      in
      let best = ref None in
      Array.iter
        (fun p ->
          let g = gain p in
          if g > 0 then begin
            let key = (g, popcount p.dashes) in
            match !best with
            | Some (_, best_key) when compare key best_key <= 0 -> ()
            | Some _ | None -> best := Some (p, key)
          end)
        prime_list;
      match !best with
      | Some (p, _) -> choose p
      | None -> assert false (* every minterm is covered by some prime *)
    done;
    Cover.create ~arity (List.map (cube_of_imp ~arity) !chosen)
  end
