(* A cube is a [Cube_packed.t]: two packed word masks (care / polarity).
   This module keeps the Literal-level API and the handful of enumeration
   helpers (sharp, minterms) that are clearer — and cold enough — at the
   per-variable level; everything hot delegates to the packed kernels. *)

type t = Cube_packed.t

let universe = Cube_packed.universe
let of_literals = Cube_packed.of_literals

let of_string s = Cube_packed.make ~arity:(String.length s) ~f:(fun i -> Literal.of_char s.[i])

let to_string c = String.init (Cube_packed.arity c) (fun i -> Literal.to_char (Cube_packed.get c i))

let arity = Cube_packed.arity
let get = Cube_packed.get
let set = Cube_packed.set
let literals = Cube_packed.literals
let num_literals = Cube_packed.num_literals
let is_minterm = Cube_packed.is_minterm
let equal = Cube_packed.equal
let compare = Cube_packed.compare
let hash = Cube_packed.hash
let eval = Cube_packed.eval
let pack_assignment = Cube_packed.pack_assignment
let eval_packed = Cube_packed.eval_packed
let covers = Cube_packed.covers
let intersect = Cube_packed.intersect
let distance = Cube_packed.distance
let supercube = Cube_packed.supercube
let cofactor = Cube_packed.cofactor
let cofactor_wrt = Cube_packed.cofactor_wrt
let complement_literals = Cube_packed.complement_literals
let merge_adjacent = Cube_packed.merge_adjacent

let sharp a b =
  if arity a <> arity b then invalid_arg "Cube.sharp: arity mismatch";
  match intersect a b with
  | None -> [ a ]
  | Some _ ->
    (* Disjoint-sharp recurrence: walk the variables where b constrains a
       more tightly; each produces one cube of the difference, with the
       earlier variables pinned to b's values to keep the cubes disjoint. *)
    let a_arr = Cube_packed.to_array a and b_arr = Cube_packed.to_array b in
    let out = ref [] in
    let pinned = Array.copy a_arr in
    for i = 0 to Array.length a_arr - 1 do
      (match (a_arr.(i), b_arr.(i)) with
      | Literal.Absent, (Literal.Pos | Literal.Neg) ->
        let piece = Array.copy pinned in
        piece.(i) <- Literal.complement b_arr.(i);
        out := of_literals piece :: !out;
        pinned.(i) <- b_arr.(i)
      | (Literal.Pos | Literal.Neg | Literal.Absent), _ -> ())
    done;
    List.rev !out

let minterms c =
  let n = arity c in
  let lits = Cube_packed.to_array c in
  let free = List.filter (fun i -> Literal.equal lits.(i) Literal.Absent) (List.init n Fun.id) in
  let base = Array.map (function Literal.Pos -> true | Literal.Neg | Literal.Absent -> false) lits in
  let rec expand vars acc =
    match vars with
    | [] -> [ Array.copy acc ]
    | v :: rest ->
      acc.(v) <- false;
      let lows = expand rest acc in
      acc.(v) <- true;
      let highs = expand rest acc in
      acc.(v) <- false;
      lows @ highs
  in
  expand free base

let pp ppf c = Format.pp_print_string ppf (to_string c)
