(** Naive reference kernels — the differential-test oracle and the
    microbench baseline for the packed representations.

    Cube operations work on bare [Literal.t array]s, matrix operations on
    [bool array array]s, one element at a time.  [test/oracle.ml] checks
    {!Cube_packed} and {!Mcx_util.Bmatrix} against these on randomized
    inputs; [bench/kernels.ml] reports speedup relative to them.  Keep this
    module slow and obvious — its value is independence from the packed
    representation. *)

type cube = Literal.t array

val of_cube : cube -> Cube.t
val to_cube : Cube.t -> cube

val num_literals : cube -> int
val covers : cube -> cube -> bool
val intersect : cube -> cube -> cube option
val distance : cube -> cube -> int
val supercube : cube -> cube -> cube
val merge_adjacent : cube -> cube -> cube option
val cofactor : cube -> var:int -> value:bool -> cube option
val cofactor_wrt : cube -> cube -> cube option
val eval : cube -> bool array -> bool

val cover_eval : cube list -> bool array -> bool

val single_cube_containment : cube list -> cube list
(** Mirrors [Cover.single_cube_containment]'s stable ascending-literal
    sweep, so result lists are comparable cube-for-cube. *)

val tautology : arity:int -> cube list -> bool
(** Unate-recursive tautology on the naive representation. *)

type bmatrix = bool array array

val of_bmatrix : bmatrix -> Mcx_util.Bmatrix.t

val row_subset : bmatrix -> int -> bmatrix -> int -> bool
val row_intersects : bmatrix -> int -> bmatrix -> int -> bool
val row_count : bmatrix -> int -> int
val row_and_count : bmatrix -> int -> bmatrix -> int -> int
val row_or_count : bmatrix -> int -> bmatrix -> int -> int
val row_diff_count : bmatrix -> int -> bmatrix -> int -> int
val is_submatrix : bmatrix -> bmatrix -> bool
