(** Word-parallel packed cubes: the kernel representation behind {!Cube}.

    A cube over [arity] variables is two packed bit masks — a care mask
    (variable carries a literal) and a polarity mask (that literal is
    positive) — stored {!Mcx_util.Bits.word_bits} variables per native
    word.  Containment, intersection, distance, supercube and tautology
    cofactoring each cost a few AND/XOR/popcount operations per word
    instead of a per-variable match.

    All operations preserve two invariants: polarity bits are zero on
    absent variables, and bits at positions [>= arity] are zero. *)

type t

val arity : t -> int

val words : t -> int
(** Number of words per mask. *)

val care_word : t -> int -> int
(** Raw care word [w] — exposed for benchmarks and hashing tests. *)

val pol_word : t -> int -> int

val universe : int -> t
(** No literals. @raise Invalid_argument on negative arity. *)

val make : arity:int -> f:(int -> Literal.t) -> t

val of_literals : Literal.t array -> t

val to_array : t -> Literal.t array

val get : t -> int -> Literal.t
(** @raise Invalid_argument out of range. *)

val set : t -> int -> Literal.t -> t
(** Functional update (copies the words). *)

val literals : t -> (int * Literal.t) list
(** Non-absent positions in increasing variable order. *)

val num_literals : t -> int
val is_minterm : t -> bool

val equal : t -> t -> bool

val compare : t -> t -> int
(** Shorter arity first, then lexicographic by variable with
    [Literal.compare]'s order (Neg < Pos < Absent). *)

val hash : t -> int
(** Mixes the packed words directly — no per-call allocation. *)

val covers : t -> t -> bool
(** [covers a b]: every minterm of [b] is one of [a]. [false] on arity
    mismatch. *)

val intersect : t -> t -> t option
val distance : t -> t -> int
val supercube : t -> t -> t
val complement_literals : t -> t
val merge_adjacent : t -> t -> t option
val cofactor : t -> var:int -> value:bool -> t option

val cofactor_wrt : t -> t -> t option
(** [cofactor_wrt g c]: [g] with every literal fixed by [c] removed;
    [None] when the cubes conflict (empty cofactor). The inner loop of
    the unate-recursive tautology check. *)

val pack_assignment : bool array -> int array
(** Pack an assignment for repeated {!eval_packed} calls. *)

val eval_packed : t -> int array -> bool
(** Evaluate against a packed assignment of at least the cube's arity. *)

val eval : t -> bool array -> bool
(** @raise Invalid_argument on arity mismatch. *)
