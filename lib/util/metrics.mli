(** Operational metrics: a process-wide registry of {e labeled} counters,
    gauges and log2-bucket duration histograms, with an
    OpenMetrics/Prometheus text exporter and a versioned [mcx-metrics/1]
    JSON exporter.

    {!Telemetry} answers "where did this run spend its time" for one
    process; this module is the time-series-ready face of the same data:
    every value is a named {e family} with a sorted label set, suitable
    for scraping, diffing between runs ([memx report --diff]) and
    shipping to a metrics backend.

    {2 Recording model}

    Counter increments and histogram observations go to per-domain
    buffers (domain-local storage, the {!Telemetry} discipline), so
    recording inside {!Pool} workers never contends on a lock. A
    {!snapshot} merges the buffers {e keyed} by (family, labels) with
    commutative sums — the merged value cannot depend on which domain
    ran which trial, so counter values and histogram observation counts
    are bit-identical at any [MCX_JOBS]. Gauges are "current value"
    cells, not sums: they live in one mutex-guarded table and take the
    last value set.

    {2 Determinism and the [times] projection}

    Histograms record durations; their [sum]/bucket placement are
    measurements and vary run to run even though their observation
    counts do not. Both exporters take [~times:false] (the CLI honors
    [MCX_TRACE_TIMES=0], mirroring the telemetry summary) to render only
    the deterministic projection: histogram series keep their
    observation count but drop sum and buckets, and families declared
    [~measured:true] (wall-clock gauges, environment facts like the pool
    size) are omitted entirely. Under that projection the exported bytes
    are identical at any [MCX_JOBS].

    {2 Gating}

    Like telemetry, nothing records until {!enable}: every entry point
    reads one [bool ref] and returns when the registry is off. *)

type kind = Counter | Gauge | Histogram

val valid_metric_name : string -> bool
(** [[a-zA-Z_:][a-zA-Z0-9_:]*] — the Prometheus metric-name grammar. *)

val valid_label_name : string -> bool
(** [[a-zA-Z_][a-zA-Z0-9_]*]; the reserved [le] label is also rejected
    (the histogram exporter owns it). *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Drop every recorded series and every family declaration. Only call
    while no {!Pool} batch is in flight. *)

val declare : ?help:string -> ?measured:bool -> kind -> string -> unit
(** Register family metadata (kind, OpenMetrics [# HELP] text, and
    whether the family is a measurement to exclude from the
    deterministic projection). Recording into an undeclared family
    auto-declares it with no help and [measured = false]; a repeat
    [declare] refreshes help/measured.
    @raise Invalid_argument on an invalid name or when the family was
    already declared (or used) with a different kind. *)

(** {2 Recording}

    [labels] defaults to the empty set; label order is irrelevant
    (series identity uses the name-sorted rendering).
    @raise Invalid_argument on invalid/duplicate label names or a kind
    mismatch with the family's declaration. *)

val inc : ?labels:(string * string) list -> ?n:int -> string -> unit
(** Add [n] (default 1) to a counter series. *)

val set : ?labels:(string * string) list -> string -> float -> unit
(** Set a gauge series to a value (last write wins across the process). *)

val observe_ns : ?labels:(string * string) list -> string -> int64 -> unit
(** Record one duration into a histogram series ({!Telemetry.bucket_of_ns}
    geometry: 64 log2 buckets). Negative durations clamp to 0. *)

val merge_histogram :
  ?labels:(string * string) list ->
  string ->
  count:int ->
  sum_ns:int64 ->
  buckets:int array ->
  unit
(** Fold a pre-aggregated histogram (e.g. a {!Telemetry} span stat) into
    a histogram series. [buckets] longer than the registry geometry is
    an error; shorter is padded. *)

(** {2 Snapshot and exporters} *)

module Snapshot : sig
  type value =
    | Counter of int
    | Gauge of float
    | Histogram of { count : int; sum_ns : int64; buckets : int array }

  type series = { labels : (string * string) list; value : value }
  (** [labels] sorted by label name. *)

  type family = {
    name : string;
    kind : kind;
    help : string;
    measured : bool;
    series : series list;  (** sorted by rendered label set *)
  }

  type t = family list
  (** Sorted by family name. *)

  val to_openmetrics : ?times:bool -> t -> string
  (** Prometheus/OpenMetrics text exposition: [# HELP] (when non-empty)
      and [# TYPE] per family, one sample line per series, ending with
      [# EOF]. Histogram series render cumulative [_bucket] lines
      ([le] = the bucket's exclusive ns upper bound, last ["+Inf"]),
      then [_sum] and [_count]; trailing all-zero buckets are elided
      (the cumulative reading is unchanged). With [times = false] only
      the [_count] line of a histogram is emitted and [measured]
      families are dropped. *)

  val to_json : ?times:bool -> ?config:Json_out.t -> t -> Json_out.t
  (** The [mcx-metrics/1] document (schema in EXPERIMENTS.md). Histogram
      buckets are sparse [[index, count]] pairs; with [times = false],
      histogram [sum_ns]/[buckets] and [measured] families are omitted.
      [?config] (an [mcx-config/1] snapshot) is emitted as a [config]
      member after [schema] — callers on the deterministic projection
      should pass {!Config.snapshot}[ ~semantic_only:true ()] so the
      document stays byte-identical across job counts. *)
end

val snapshot : unit -> Snapshot.t
(** Merge every domain buffer and the gauge table. Only call while no
    {!Pool} batch is in flight. *)

(** {2 Bridges}

    One-shot importers that snapshot existing subsystem stats into the
    registry (no-ops while the registry is disabled). {!Lru.record_metrics},
    {!Pool.record_metrics} and {!Checkpoint.record_metrics} are the
    matching exporters on the producer side. *)

val bridge_telemetry : Telemetry.Report.t -> unit
(** Import a telemetry report: every counter becomes an
    [mcx_telemetry_counter{name="..."}] series and every span aggregate
    folds into an [mcx_telemetry_span_ns{span="..."}] histogram series
    (calls are deterministic; durations are dropped by the [times]
    projection as usual). *)
