(** Dense boolean matrices, bit-packed one bit per cell.

    The mapping algorithms of the paper operate on three boolean matrices: the
    function matrix (FM), the crossbar matrix (CM) and the matching matrix.
    Rows are packed into native machine words so the row-level predicates the
    Monte Carlo mapping loops live in — containment ([row_subset]),
    intersection, set-difference counting — run word-parallel: a handful of
    AND/NOT/popcount operations per {!Bits.word_bits} cells instead of a
    per-cell loop. *)

type t
(** A mutable [rows] x [cols] boolean matrix. *)

val create : rows:int -> cols:int -> bool -> t
(** [create ~rows ~cols fill] is a matrix with every entry set to [fill].
    @raise Invalid_argument if a dimension is negative. *)

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> bool
(** [get m i j] reads entry (i, j). @raise Invalid_argument out of bounds. *)

val set : t -> int -> int -> bool -> unit
(** [set m i j v] writes entry (i, j). @raise Invalid_argument out of bounds. *)

val copy : t -> t

val of_lists : bool list list -> t
(** Build from row-major lists. @raise Invalid_argument on ragged input or
    empty matrix. *)

val of_int_lists : int list list -> t
(** Convenience for writing test fixtures: nonzero is [true]. *)

val row : t -> int -> bool array
(** Extract row [i] as a fresh array. *)

val count : t -> int
(** Number of [true] entries. *)

val count_row : t -> int -> int
(** Number of [true] entries in row [i]. *)

val count_col : t -> int -> int
(** Number of [true] entries in column [j]. *)

val row_nonzero : t -> int -> bool
(** [row_nonzero m i]: row [i] has at least one [true] entry (word-parallel).
    @raise Invalid_argument on a bad row index. *)

val row_subset : t -> int -> t -> int -> bool
(** [row_subset a i b j]: every [true] cell of row [i] of [a] is also [true]
    in row [j] of [b] — the FM-row-fits-CM-row matching kernel.
    @raise Invalid_argument on bad indices or mismatched column counts. *)

val row_intersects : t -> int -> t -> int -> bool
(** [row_intersects a i b j]: the two rows share at least one [true] cell. *)

val row_and_count : t -> int -> t -> int -> int
(** Popcount of the AND of two rows. *)

val row_or_count : t -> int -> t -> int -> int
(** Popcount of the OR of two rows. *)

val row_diff_count : t -> int -> t -> int -> int
(** [row_diff_count a i b j] is [|row i of a \ row j of b|] — the number of
    cells set in [a]'s row but clear in [b]'s (the annealing conflict
    count). *)

val is_submatrix : t -> t -> bool
(** [is_submatrix sub sup]: same dimensions and every [true] cell of [sub]
    is [true] in [sup] (whole-matrix word-parallel subset test). *)

val equal : t -> t -> bool

val fold : (int -> int -> bool -> 'a -> 'a) -> t -> 'a -> 'a
(** Row-major fold over all entries. *)

val map_rows : t -> f:(int -> bool array -> 'a) -> 'a list
(** [map_rows m ~f] applies [f] to every row index and its contents. *)

val pp : ?one:string -> ?zero:string -> Format.formatter -> t -> unit
(** Print as a grid of 0/1 (or custom glyphs), one row per line. *)

val to_string : t -> string
(** [Fmt.str "%a" pp]. *)
