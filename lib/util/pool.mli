(** Deterministic domain pool for Monte Carlo fan-out.

    A fixed pool of OCaml 5 domains executes chunked maps over trial
    indices. Results are collected into an index-ordered array and folds
    run in index order, so as long as the per-index function is pure given
    its own inputs (each trial derives its PRNG from the trial index — see
    {!Prng.derive}), the output is bit-identical at any job count,
    including [jobs = 1].

    The pool size is taken from the [MCX_JOBS] environment variable when
    set (a positive integer), else from [Domain.recommended_domain_count].
    A pool of size 1 spawns no domains and runs everything inline. *)

type t

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns a pool of [jobs] workers ([jobs - 1] domains
    plus the calling domain, which participates in every batch). [jobs]
    defaults to {!default_jobs}; values are clamped to [1, 64]. *)

val default : unit -> t
(** The process-wide shared pool, created on first use with
    {!default_jobs} workers and shut down at exit. *)

val default_jobs : unit -> int
(** [MCX_JOBS] when set to a positive integer, else
    [Domain.recommended_domain_count ()], clamped to [1, 64]. *)

val jobs : t -> int
(** Number of workers (including the calling domain). *)

val record_metrics : t -> unit
(** Export the worker count into the {!Metrics} registry as the
    [mcx_pool_jobs] gauge (declared [measured]: it is an environment
    fact and is excluded from the deterministic metrics projection).
    No-op while {!Metrics.enabled} is false. *)

val map : t -> int -> (int -> 'a) -> 'a array
(** [map pool n f] is [[| f 0; ...; f (n-1) |]], with the calls distributed
    over the pool in chunks. [f] must not depend on shared mutable state.
    Exceptions raised by [f] are re-raised in the caller after the batch
    drains. Calls from inside a pool task run sequentially inline (no
    nested scheduling). *)

val map_reduce : t -> n:int -> map:(int -> 'a) -> init:'b -> fold:('b -> 'a -> 'b) -> 'b
(** [map_reduce pool ~n ~map ~init ~fold] maps in parallel and folds the
    results strictly in index order, so float accumulation and any other
    order-sensitive reduction stay deterministic. *)

val shutdown : t -> unit
(** Stop and join the worker domains. Idempotent; the pool must not be
    used afterwards. *)

(** {2 Trial-level fault isolation}

    {!map} tears the whole batch down on the first exception — correct for
    programming errors in tests, but an hours-long Monte Carlo campaign
    should not lose every completed trial to one bad one. {!map_isolated}
    confines a failure to its own index: the trial is retried, and a trial
    that keeps failing becomes a {!Failed} outcome (message + backtrace +
    attempt count) instead of an exception. *)

exception Cancelled
(** Raised {e by the trial function} to abandon an index without it
    counting as a failure (and without burning retries) — the cooperative
    cancellation path {!Checkpoint} uses after SIGINT/SIGTERM. *)

type 'a outcome =
  | Done of 'a
  | Skipped  (** The trial raised {!Cancelled} on some attempt. *)
  | Failed of { error : string; backtrace : string; attempts : int }

val default_retries : unit -> int
(** [MCX_TRIAL_RETRIES] when set to a non-negative integer (clamped to
    16), else 2. Read per call, so tests can flip the variable. *)

val map_isolated : t -> ?retries:int -> int -> (attempt:int -> int -> 'a) -> 'a outcome array
(** [map_isolated pool n f] is {!map} with per-index isolation: index [i]
    runs [f ~attempt:0 i]; if that raises, it is retried as
    [f ~attempt:1 i], ... up to [retries] (default {!default_retries})
    times, then yields [Failed]. The attempt number lets deterministic
    fault injection vary per retry while everything stays independent of
    scheduling. Retries and permanent failures are counted under the
    [pool.trial.retried] / [pool.trial.failed] telemetry counters. *)
