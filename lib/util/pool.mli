(** Deterministic domain pool for Monte Carlo fan-out.

    A fixed pool of OCaml 5 domains executes chunked maps over trial
    indices. Results are collected into an index-ordered array and folds
    run in index order, so as long as the per-index function is pure given
    its own inputs (each trial derives its PRNG from the trial index — see
    {!Prng.derive}), the output is bit-identical at any job count,
    including [jobs = 1].

    The pool size is taken from the [MCX_JOBS] environment variable when
    set (a positive integer), else from [Domain.recommended_domain_count].
    A pool of size 1 spawns no domains and runs everything inline. *)

type t

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns a pool of [jobs] workers ([jobs - 1] domains
    plus the calling domain, which participates in every batch). [jobs]
    defaults to {!default_jobs}; values are clamped to [1, 64]. *)

val default : unit -> t
(** The process-wide shared pool, created on first use with
    {!default_jobs} workers and shut down at exit. *)

val default_jobs : unit -> int
(** [MCX_JOBS] when set to a positive integer, else
    [Domain.recommended_domain_count ()], clamped to [1, 64]. *)

val jobs : t -> int
(** Number of workers (including the calling domain). *)

val map : t -> int -> (int -> 'a) -> 'a array
(** [map pool n f] is [[| f 0; ...; f (n-1) |]], with the calls distributed
    over the pool in chunks. [f] must not depend on shared mutable state.
    Exceptions raised by [f] are re-raised in the caller after the batch
    drains. Calls from inside a pool task run sequentially inline (no
    nested scheduling). *)

val map_reduce : t -> n:int -> map:(int -> 'a) -> init:'b -> fold:('b -> 'a -> 'b) -> 'b
(** [map_reduce pool ~n ~map ~init ~fold] maps in parallel and folds the
    results strictly in index order, so float accumulation and any other
    order-sensitive reduction stay deterministic. *)

val shutdown : t -> unit
(** Stop and join the worker domains. Idempotent; the pool must not be
    used afterwards. *)
