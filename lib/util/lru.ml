(* Classic hash-table + doubly-linked-list LRU. The list holds recency
   order (head = most recent); the table maps keys to their nodes so both
   lookup and promotion are O(1). *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;  (* towards the MRU head *)
  mutable next : 'a node option;  (* towards the LRU tail *)
}

type stats = { hits : int; misses : int; insertions : int; evictions : int }

type 'a t = {
  name : string option;
  capacity : int;
  table : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;
  mutable tail : 'a node option;
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
}

let create ?name ~capacity () =
  if capacity < 0 then invalid_arg "Lru.create: negative capacity";
  {
    name;
    capacity;
    table = Hashtbl.create (max 16 capacity);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    insertions = 0;
    evictions = 0;
  }

let capacity t = t.capacity
let length t = Hashtbl.length t.table
let stats t = { hits = t.hits; misses = t.misses; insertions = t.insertions; evictions = t.evictions }

let count t suffix =
  match t.name with None -> () | Some name -> Telemetry.count (name ^ suffix)

let unlink t node =
  (match node.prev with Some p -> p.next <- node.next | None -> t.head <- node.next);
  (match node.next with Some n -> n.prev <- node.prev | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.prev <- None;
  node.next <- t.head;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let promote t node =
  match t.head with
  | Some h when h == node -> ()
  | Some _ | None ->
    unlink t node;
    push_front t node

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some node ->
    t.hits <- t.hits + 1;
    count t ".hit";
    promote t node;
    Some node.value
  | None ->
    t.misses <- t.misses + 1;
    count t ".miss";
    None

let peek t key = Option.map (fun node -> node.value) (Hashtbl.find_opt t.table key)

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table node.key;
    t.evictions <- t.evictions + 1;
    count t ".eviction"

let put t key value =
  if t.capacity > 0 then
    match Hashtbl.find_opt t.table key with
    | Some node ->
      node.value <- value;
      promote t node
    | None ->
      let node = { key; value; prev = None; next = None } in
      Hashtbl.replace t.table key node;
      push_front t node;
      t.insertions <- t.insertions + 1;
      if Hashtbl.length t.table > t.capacity then evict_lru t

let record_metrics t =
  let labels = [ ("cache", Option.value t.name ~default:"cache") ] in
  Metrics.declare ~help:"live entries in the cache" Metrics.Gauge "mcx_cache_entries";
  Metrics.declare ~help:"configured cache capacity" Metrics.Gauge "mcx_cache_capacity";
  Metrics.declare ~help:"lookups that found a live entry" Metrics.Counter "mcx_cache_hits_total";
  Metrics.declare ~help:"lookups that found nothing" Metrics.Counter "mcx_cache_misses_total";
  Metrics.declare ~help:"puts that added a new key" Metrics.Counter "mcx_cache_insertions_total";
  Metrics.declare ~help:"entries dropped to respect capacity" Metrics.Counter
    "mcx_cache_evictions_total";
  Metrics.set ~labels "mcx_cache_entries" (float_of_int (length t));
  Metrics.set ~labels "mcx_cache_capacity" (float_of_int t.capacity);
  Metrics.inc ~labels ~n:t.hits "mcx_cache_hits_total";
  Metrics.inc ~labels ~n:t.misses "mcx_cache_misses_total";
  Metrics.inc ~labels ~n:t.insertions "mcx_cache_insertions_total";
  Metrics.inc ~labels ~n:t.evictions "mcx_cache_evictions_total"

let to_list t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some node -> walk ((node.key, node.value) :: acc) node.next
  in
  walk [] t.head
