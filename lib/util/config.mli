(** The unified configuration plane: one typed registry for every
    [MCX_*] knob.

    Every reproducibility guarantee in this repository (bit-identity at
    any [MCX_JOBS], byte-identical checkpoint resume, cold-vs-warm serve
    equality) is conditional on the knob state a run was produced under.
    This module declares each knob once — name, type, default,
    validator, owning layer, whether it can change computed results —
    and is the {e only} sanctioned environment-read site outside this
    file (enforced by the [raw-env-read] lint rule). Reads go through
    typed accessors; command-line flags override the environment through
    {!set_flag}; and the whole state renders as a canonical
    [mcx-config/1] snapshot that the run artifacts embed (checkpoint
    journal header, trace metadata, metrics/stats documents, access-log
    records).

    {2 Validation}

    A set but malformed knob ([MCX_JOBS=abc], [MCX_FAULT_RATE=1.5]) is a
    hard error: the accessor raises {!Invalid} naming the knob, the bad
    value and the expected form — never a silent fallback to the
    default. A set-but-empty (or whitespace-only) variable counts as
    unset, so [MCX_FOO="" cmd] and test harnesses using
    [Unix.putenv "MCX_FOO" ""] clear a knob. Accessors re-read the
    environment on every call; nothing is cached.

    {2 Snapshots and digests}

    {!snapshot} renders every knob's effective value, provenance and
    default in declaration order (fixed field order via {!Json_out}).
    {!digest} is the MD5 of the (name, value) pairs only — provenance is
    excluded, so a value set by flag and the same value set by env
    digest identically. [~semantic_only:true] restricts both to the
    knobs that can change computed results ([MCX_FAULT_RATE],
    [MCX_SAMPLES], [MCX_GOLDEN_REGEN]); the operational knobs (job
    count, cache size, tracing, checkpoint placement) are excluded, so
    the semantic digest is byte-identical at [MCX_JOBS=1] vs [4] — the
    projection embedded in deterministic artifacts. *)

type provenance =
  | Default  (** neither environment nor flag set the knob *)
  | Env  (** read from the process environment *)
  | Flag  (** overridden by {!set_flag} (command-line flags win) *)

val provenance_name : provenance -> string
(** ["default"], ["env"] or ["flag"] — the snapshot rendering. *)

exception
  Invalid of {
    knob : string;
    value : string;
    expected : string;
  }
(** Raised by every accessor (and {!set_flag}, {!snapshot}, {!digest})
    when a knob is set to a value its validator rejects. A printer is
    registered, so an uncaught [Invalid] names the knob, the offending
    value and the expected form. *)

(** {1 Typed accessors}

    One per registered knob. Each re-reads flag-then-environment on
    every call and raises {!Invalid} on a malformed value. *)

val jobs : unit -> int option
(** [MCX_JOBS] — worker-domain count for {!Pool}; [None] when unset
    (the pool falls back to the machine's recommended domain count).
    Operational: results are job-count-invariant. *)

val jobs_resolved : unit -> int
(** {!jobs}, defaulted to [Domain.recommended_domain_count ()] and
    clamped to [\[1, 64\]] — exactly what [Pool.default_jobs] returns.
    The machine-dependent fallback lives here so the snapshot can
    render an unset [MCX_JOBS] as [null] (machine-independent digest)
    while the pool still sizes itself sensibly. *)

val trial_retries : unit -> int
(** [MCX_TRIAL_RETRIES] — retry budget for a crashing trial (default 2,
    capped at 16). Operational: a trial that succeeds computes the same
    value at any attempt count. *)

val checkpoint_dir : unit -> string option
(** [MCX_CHECKPOINT] — journal directory; [None] disables journaling.
    Operational: swept results are journal-invariant. *)

val fault_rate : unit -> float
(** [MCX_FAULT_RATE] — deterministic fault-injection probability in
    [\[0, 1\]] (default 0). Semantic: injected faults decide which
    trials fail permanently, which changes the printed tables. *)

val trace : unit -> string option
(** [MCX_TRACE] — Chrome-trace output path; [None] disables tracing. *)

val trace_times : unit -> bool
(** [MCX_TRACE_TIMES] — [false] (["0"]/["false"]) switches summaries,
    metrics and access logs to the deterministic projection (durations
    dropped); default [true]. *)

val cache_size : unit -> int
(** [MCX_CACHE_SIZE] — serve-layer result-cache capacity in entries
    (default 512, [0] disables caching). Operational: responses are
    cache-invariant. *)

val samples : unit -> int option
(** [MCX_SAMPLES] — Monte Carlo sample-count override for the bench
    driver; [None] means each experiment's paper-scale default.
    Semantic: the sample count decides what the tables contain. *)

val golden_regen : unit -> string option
(** [MCX_GOLDEN_REGEN] — directory the golden-output tests regenerate
    into instead of checking; [None] (the default) checks. *)

val force_resume : unit -> bool
(** [MCX_FORCE_RESUME] — resume a checkpoint journal whose recorded
    config digest disagrees with the current one (default [false]; the
    [--force-resume] flag sets it). *)

(** {1 Flag overrides} *)

val set_flag : string -> string -> unit
(** [set_flag name value] records a command-line override for knob
    [name]; subsequent reads return it with provenance {!Flag}. The
    value is validated eagerly ({!Invalid} on a malformed one, so a bad
    [--cache-size] fails at parse time, not first use).
    [Invalid_argument] on an unregistered name. *)

val reset_flags : unit -> unit
(** Drop every {!set_flag} override (test harnesses). *)

(** {1 Diagnostics} *)

type error = { knob : string; value : string; expected : string }

val errors : unit -> error list
(** Every registered knob whose current (flag or env) value is
    malformed, in declaration order — the startup-validation sweep
    binaries run before doing work. *)

val unknown : unit -> (string * string) list
(** [MCX_*] environment variables that name no registered knob (likely
    typos), as [(name, value)] sorted by name. Empty (whitespace-only)
    values are skipped, mirroring the empty-is-unset knob convention. *)

(** {1 The mcx-config/1 snapshot} *)

type info = {
  name : string;
  ty : string;  (** ["int"], ["float"], ["bool"] or ["path"] *)
  layer : string;  (** owning subsystem, e.g. ["pool"], ["checkpoint"] *)
  semantic : bool;  (** can the knob change computed results? *)
  doc : string;
  default : Json_out.t;
  value : Json_out.t;  (** effective value ([default] when unset) *)
  prov : provenance;
}

val knobs : unit -> info list
(** Every registered knob with its effective value, in declaration
    order. Raises {!Invalid} on the first malformed one. *)

val snapshot : ?semantic_only:bool -> unit -> Json_out.t
(** The [mcx-config/1] document:
    [{"schema":"mcx-config/1","digest":d,"knobs":[...]}] with one entry
    per knob in declaration order, each
    [{"name","type","layer","semantic","provenance","value","default"}].
    [~semantic_only:true] keeps only the semantic knobs (and digests
    only them). Raises {!Invalid} on a malformed knob. *)

val digest : ?semantic_only:bool -> unit -> string
(** MD5 (hex) over the included knobs' (name, value) pairs in
    declaration order — provenance and docs excluded. *)
