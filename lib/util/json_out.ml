type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\012' -> Buffer.add_string buf "\\f"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else begin
    let try_prec p =
      let s = Printf.sprintf "%.*g" p f in
      if float_of_string s = f then Some s else None
    in
    match try_prec 15 with
    | Some s -> s
    | None -> (
      match try_prec 16 with
      | Some s -> s
      | None -> Printf.sprintf "%.17g" f)
  end

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
    if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
      Buffer.add_string buf "null"
    else Buffer.add_string buf (float_repr f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (name, value) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape name);
        Buffer.add_string buf "\":";
        to_buffer buf value)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

let write_file path v =
  let oc = open_out path in
  let buf = Buffer.create 4096 in
  to_buffer buf v;
  Buffer.add_char buf '\n';
  output_string oc (Buffer.contents buf);
  close_out oc
