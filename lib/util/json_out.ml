type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\012' -> Buffer.add_string buf "\\f"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else begin
    let try_prec p =
      let s = Printf.sprintf "%.*g" p f in
      if float_of_string s = f then Some s else None
    in
    match try_prec 15 with
    | Some s -> s
    | None -> (
      match try_prec 16 with
      | Some s -> s
      | None -> Printf.sprintf "%.17g" f)
  end

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
    if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
      Buffer.add_string buf "null"
    else Buffer.add_string buf (float_repr f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (name, value) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape name);
        Buffer.add_string buf "\":";
        to_buffer buf value)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

let write_file path v =
  let oc = open_out path in
  let buf = Buffer.create 4096 in
  to_buffer buf v;
  Buffer.add_char buf '\n';
  output_string oc (Buffer.contents buf);
  close_out oc

(* --- parsing (checkpoint-journal replay) --------------------------- *)

exception Parse_error of int * string

(* Recursion in [parse_value] is bounded so that adversarially deep input
   ("[[[[...") returns [Error] instead of overflowing the OCaml stack.
   512 is far above anything the emitter produces (the journal and trace
   schemas nest 3-4 levels) yet well inside the default stack budget. *)
let max_depth = 512

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> error (Printf.sprintf "expected %C, found %C" c c')
    | None -> error (Printf.sprintf "expected %C, found end of input" c)
  in
  let skip_ws () =
    while
      match peek () with Some (' ' | '\t' | '\n' | '\r') -> true | Some _ | None -> false
    do
      advance ()
    done
  in
  let literal word value =
    let k = String.length word in
    if !pos + k <= n && String.sub s !pos k = word then begin
      pos := !pos + k;
      value
    end
    else error (Printf.sprintf "expected %s" word)
  in
  let parse_string_body () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then error "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then error "unterminated escape";
         match s.[!pos] with
         | '"' -> Buffer.add_char buf '"'; advance ()
         | '\\' -> Buffer.add_char buf '\\'; advance ()
         | '/' -> Buffer.add_char buf '/'; advance ()
         | 'b' -> Buffer.add_char buf '\b'; advance ()
         | 'f' -> Buffer.add_char buf '\012'; advance ()
         | 'n' -> Buffer.add_char buf '\n'; advance ()
         | 'r' -> Buffer.add_char buf '\r'; advance ()
         | 't' -> Buffer.add_char buf '\t'; advance ()
         | 'u' ->
           advance ();
           let hex4 () =
             if !pos + 4 > n then error "truncated \\u escape";
             let code =
               try int_of_string ("0x" ^ String.sub s !pos 4)
               with Failure _ -> error "bad \\u escape"
             in
             pos := !pos + 4;
             code
           in
           let code = hex4 () in
           (* The emitter only produces \u00XX for control bytes, but
              accept the full BMP plus surrogate pairs and re-encode as
              UTF-8. An unpaired surrogate has no scalar value — emitting
              it would smuggle invalid UTF-8 through the parser — so it
              is rejected rather than passed along. *)
           let code =
             if code >= 0xD800 && code <= 0xDBFF then begin
               if
                 not
                   (!pos + 2 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u')
               then error "lone high surrogate";
               pos := !pos + 2;
               let low = hex4 () in
               if low < 0xDC00 || low > 0xDFFF then error "lone high surrogate";
               0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00)
             end
             else if code >= 0xDC00 && code <= 0xDFFF then error "lone low surrogate"
             else code
           in
           if code < 0x80 then Buffer.add_char buf (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
           else if code < 0x10000 then begin
             Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
             Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
             Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
         | c -> error (Printf.sprintf "bad escape \\%C" c));
        loop ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_number_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_number_char c | None -> false) do
      advance ()
    done;
    if !pos = start then error "expected a number";
    let tok = String.sub s start (!pos - start) in
    let floaty = String.exists (function '.' | 'e' | 'E' -> true | _ -> false) tok in
    if floaty then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> error (Printf.sprintf "bad number %S" tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f (* integer literal beyond the int range *)
        | None -> error (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value depth =
    if depth > max_depth then error "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string_body ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value (depth + 1) ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value (depth + 1) :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let name = parse_string_body () in
          skip_ws ();
          expect ':';
          let value = parse_value (depth + 1) in
          (name, value)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then error "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) -> Error (Printf.sprintf "at byte %d: %s" at msg)

(* --- lenient accessors --------------------------------------------- *)

let member name = function Obj fields -> List.assoc_opt name fields | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | Null -> Some Float.nan
  | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None
let to_list_opt = function List items -> Some items | _ -> None
