(* xoshiro256++ with splitmix64 seeding; reference: Blackman & Vigna,
   "Scrambled linear pseudorandom number generators", 2019. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_int64 bits =
  let state = ref bits in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let create seed = of_int64 (Int64.of_int seed)

module Key = struct
  type t = int64

  (* splitmix64's finalizer: a bijective avalanche over the full 64 bits. *)
  let finalize z =
    let open Int64 in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)

  (* For a fixed accumulator [t], [feed t] is a bijection in [v]
     (odd multiply, add and finalize are all invertible), so two keys that
     differ in one mixed-in component can never collide. *)
  let feed t v =
    let open Int64 in
    finalize (add (mul t 0xFF51AFD7ED558CCDL) (add v 0x9E3779B97F4A7C15L))

  let root seed = feed 0x4D43582D4B455921L (* "MCX-KEY!" *) (Int64.of_int seed)
  let int t i = feed t (Int64.of_int i)
  let float t f = feed t (Int64.bits_of_float f)

  let string t s =
    (* Fold every byte, then the length so "ab"+"c" <> "a"+"bc". *)
    let h = ref t in
    String.iter (fun c -> h := feed !h (Int64.of_int (Char.code c))) s;
    int !h (String.length s)

  let to_int64 t = t
end

let of_key key = of_int64 (Key.to_int64 key)
let derive key index = of_key (Key.int key index)

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  (* Seed a fresh generator from the parent's stream; xoshiro streams seeded
     through splitmix64 from distinct 64-bit values do not overlap in
     practice for our sample counts. *)
  let state = ref (bits64 t) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec draw () =
    let raw = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem raw bound64 in
    (* [raw - v] is the start of raw's residue group. Accept iff the whole
       group [start, start + bound) fits below 2^63, i.e. iff
       start <= max_int - bound + 1; rejecting more over-discards complete
       groups, rejecting less would re-admit the truncated top group. *)
    if Int64.sub raw v > Int64.add (Int64.sub Int64.max_int bound64) 1L then draw ()
    else Int64.to_int v
  in
  draw ()

let float t =
  let raw = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float raw *. 0x1.0p-53

let bool t = Int64.logand (bits64 t) 1L = 1L
let bernoulli t p = float t < p

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Prng.int_in_range: hi < lo";
  lo + int t (hi - lo + 1)

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int t (Array.length a))

let sample_without_replacement t ~k ~n =
  if k < 0 || k > n then invalid_arg "Prng.sample_without_replacement";
  (* Floyd's algorithm gives O(k) expected draws. *)
  let chosen = Hashtbl.create (2 * k) in
  for j = n - k to n - 1 do
    let r = int t (j + 1) in
    if Hashtbl.mem chosen r then Hashtbl.replace chosen j ()
    else Hashtbl.replace chosen r ()
  done;
  Hashtbl.fold (fun i () acc -> i :: acc) chosen [] |> List.sort compare
