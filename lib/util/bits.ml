(* Word-level bit kernels shared by the packed cube and boolean-matrix
   representations.  Words are native OCaml ints — [Sys.int_size] usable
   bits (63 on 64-bit platforms) — rather than boxed [int64]: every value
   in an [int64 array] is heap-boxed, which would put an allocation on
   each word operation of the hot kernels. *)

let word_bits = Sys.int_size

let words_for n =
  if n < 0 then invalid_arg "Bits.words_for: negative count";
  (n + word_bits - 1) / word_bits

let word_of n = n / word_bits
let bit_of n = n mod word_bits

(* Mask covering the valid bits of the last word for an [n]-bit vector:
   all-ones when [n] is a multiple of [word_bits]. *)
let tail_mask n =
  let r = n mod word_bits in
  if r = 0 then -1 else (1 lsl r) - 1

(* SWAR popcount on a native word.  The 64-bit Hacker's Delight constants
   do not fit in a 63-bit int literal, so they are assembled from 32-bit
   halves; truncation to [int_size] bits keeps the algorithm exact because
   every intermediate byte-sum stays below 128. *)
let m1 = 0x55555555 lor (0x55555555 lsl 32)
let m2 = 0x33333333 lor (0x33333333 lsl 32)
let m4 = 0x0F0F0F0F lor (0x0F0F0F0F lsl 32)
let h01 = 0x01010101 lor (0x01010101 lsl 32)

let popcount_loop x =
  let n = ref 0 and x = ref x in
  while !x <> 0 do
    x := !x land (!x - 1);
    incr n
  done;
  !n

let popcount x =
  if word_bits = 63 then
    let x = x - ((x lsr 1) land m1) in
    let x = (x land m2) + ((x lsr 2) land m2) in
    let x = (x + (x lsr 4)) land m4 in
    (x * h01) lsr 56
  else popcount_loop x (* 32-bit / jsoo fallback; never hot there *)

let ctz x =
  if x = 0 then invalid_arg "Bits.ctz: zero word"
  else popcount ((x land -x) - 1)

(* xorshift-multiply word mixer (Stafford/Vigna style), used to hash packed
   words without going through a per-call string. The multiplier fits in a
   62-bit positive literal. *)
let mix h w =
  let h = h lxor w in
  let h = h * 0x2545F4914F6CDD1D in
  h lxor (h lsr 29)
