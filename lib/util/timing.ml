external monotonic_ns : unit -> int64 = "mcx_monotonic_ns"

let now_seconds () = Int64.to_float (monotonic_ns ()) *. 1e-9

let time f =
  let t0 = monotonic_ns () in
  let result = f () in
  (result, Int64.to_float (Int64.sub (monotonic_ns ()) t0) *. 1e-9)

let mean_seconds ~repeats f =
  if repeats <= 0 then invalid_arg "Timing.mean_seconds: repeats <= 0";
  let total = ref 0. in
  for _ = 1 to repeats do
    let _, dt = time f in
    total := !total +. dt
  done;
  !total /. float_of_int repeats

module Counter = struct
  type t = { mutable events : int; mutable seconds : float }

  let create () = { events = 0; seconds = 0. }

  let add t dt =
    t.events <- t.events + 1;
    t.seconds <- t.seconds +. dt

  let record t f =
    let result, dt = time f in
    add t dt;
    result

  let events t = t.events
  let total_seconds t = t.seconds
  let mean_seconds t = if t.events = 0 then 0. else t.seconds /. float_of_int t.events
end
