(* Per-domain buffers keyed off domain-local storage: recording never
   takes a lock (the registry mutex guards only buffer creation and the
   final snapshot). Aggregates merge by name with commutative sums, so
   the summary cannot depend on which domain ran which trial. *)

let n_buckets = 64
let max_events_per_buffer = 1_000_000

type span_agg = {
  mutable calls : int;
  mutable total_ns : int64;
  mutable max_ns : int64;
  buckets : int array;
}

type event = { ev_name : string; ev_ts : int64; ev_dur : int64 }

type buffer = {
  tid : int;
  span_tbl : (string, span_agg) Hashtbl.t;
  counter_tbl : (string, int ref) Hashtbl.t;
  mutable stack : (string * int64) list;
  mutable events : event array;
  mutable n_events : int;
  mutable dropped : int;
}

let enabled_flag = ref false
let events_flag = ref false
let epoch = ref 0L
let registry : buffer list ref = ref []
let registry_mutex = Mutex.create ()
let next_tid = Atomic.make 0

let buffer_key =
  Domain.DLS.new_key (fun () ->
      let b =
        {
          tid = Atomic.fetch_and_add next_tid 1;
          span_tbl = Hashtbl.create 64;
          counter_tbl = Hashtbl.create 64;
          stack = [];
          events = [||];
          n_events = 0;
          dropped = 0;
        }
      in
      Mutex.lock registry_mutex;
      registry := b :: !registry;
      Mutex.unlock registry_mutex;
      b)

let buffer () = Domain.DLS.get buffer_key

let enabled () = !enabled_flag

let enable ?(events = false) () =
  epoch := Timing.monotonic_ns ();
  events_flag := events;
  enabled_flag := true

let disable () = enabled_flag := false

let reset () =
  Mutex.lock registry_mutex;
  List.iter
    (fun b ->
      Hashtbl.reset b.span_tbl;
      Hashtbl.reset b.counter_tbl;
      b.stack <- [];
      b.events <- [||];
      b.n_events <- 0;
      b.dropped <- 0)
    !registry;
  Mutex.unlock registry_mutex

(* --- histogram geometry --- *)

let bucket_of_ns ns =
  if Int64.compare ns 2L < 0 then 0
  else begin
    (* durations fit comfortably in a native int on 64-bit *)
    let n = Int64.to_int ns in
    let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
    min (n_buckets - 1) (log2 n 0)
  end

let bucket_bounds i =
  if i < 0 || i >= n_buckets then invalid_arg "Telemetry.bucket_bounds";
  let lo = if i = 0 then 0L else Int64.shift_left 1L i in
  let hi = if i = n_buckets - 1 then Int64.max_int else Int64.shift_left 1L (i + 1) in
  (lo, hi)

(* --- recording --- *)

let span_agg_of b name =
  match Hashtbl.find_opt b.span_tbl name with
  | Some agg -> agg
  | None ->
    let agg = { calls = 0; total_ns = 0L; max_ns = 0L; buckets = Array.make n_buckets 0 } in
    Hashtbl.replace b.span_tbl name agg;
    agg

let record_duration b name ns =
  let ns = if Int64.compare ns 0L < 0 then 0L else ns in
  let agg = span_agg_of b name in
  agg.calls <- agg.calls + 1;
  agg.total_ns <- Int64.add agg.total_ns ns;
  if Int64.compare ns agg.max_ns > 0 then agg.max_ns <- ns;
  let i = bucket_of_ns ns in
  agg.buckets.(i) <- agg.buckets.(i) + 1

let observe_ns name ns = if !enabled_flag then record_duration (buffer ()) name ns

let count ?(n = 1) name =
  if !enabled_flag then begin
    let b = buffer () in
    match Hashtbl.find_opt b.counter_tbl name with
    | Some r -> r := !r + n
    | None -> Hashtbl.replace b.counter_tbl name (ref n)
  end

let push_event b ev =
  if b.n_events >= max_events_per_buffer then b.dropped <- b.dropped + 1
  else begin
    if b.n_events = Array.length b.events then begin
      let cap = min max_events_per_buffer (max 256 (2 * Array.length b.events)) in
      let bigger = Array.make cap ev in
      Array.blit b.events 0 bigger 0 b.n_events;
      b.events <- bigger
    end;
    b.events.(b.n_events) <- ev;
    b.n_events <- b.n_events + 1
  end

let begin_span name =
  if !enabled_flag then begin
    let b = buffer () in
    b.stack <- (name, Timing.monotonic_ns ()) :: b.stack
  end

let close_frame b name t0 =
  let now = Timing.monotonic_ns () in
  let dur = Int64.sub now t0 in
  record_duration b name dur;
  if !events_flag then
    push_event b { ev_name = name; ev_ts = Int64.sub t0 !epoch; ev_dur = dur }

let end_span name =
  if !enabled_flag then begin
    let b = buffer () in
    match b.stack with
    | [] ->
      invalid_arg
        (Printf.sprintf "Telemetry.end_span: %S closed but no span is open" name)
    | (top, t0) :: rest ->
      if not (String.equal top name) then
        invalid_arg
          (Printf.sprintf "Telemetry.end_span: %S closed while %S is innermost" name top);
      b.stack <- rest;
      close_frame b name t0
  end

(* Tolerant closer for the [span] wrapper: enabling/resetting mid-flight
   must not turn the unwind into a spurious unbalanced-close failure. *)
let close_span_if_open name =
  if !enabled_flag then begin
    let b = buffer () in
    match b.stack with
    | (top, t0) :: rest when String.equal top name ->
      b.stack <- rest;
      close_frame b name t0
    | _ -> ()
  end

let span name f =
  if not !enabled_flag then f ()
  else begin
    begin_span name;
    match f () with
    | v ->
      close_span_if_open name;
      v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      close_span_if_open name;
      Printexc.raise_with_backtrace e bt
  end

(* --- reports --- *)

module Report = struct
  type span_stat = {
    name : string;
    calls : int;
    total_ns : int64;
    max_ns : int64;
    buckets : int array;
  }

  type t = {
    spans : span_stat list;  (* sorted by name *)
    counters : (string * int) list;  (* sorted by name *)
    events : (int * event) list;  (* (tid, event), sorted by (ts, tid) *)
    dropped : int;
  }

  let empty = { spans = []; counters = []; events = []; dropped = 0 }
  let spans t = t.spans
  let counters t = t.counters
  let dropped_events t = t.dropped

  let merge_span_stat a b =
    {
      a with
      calls = a.calls + b.calls;
      total_ns = Int64.add a.total_ns b.total_ns;
      max_ns = (if Int64.compare a.max_ns b.max_ns >= 0 then a.max_ns else b.max_ns);
      buckets = Array.init n_buckets (fun i -> a.buckets.(i) + b.buckets.(i));
    }

  (* Merge two name-sorted assoc-style lists with a per-key combiner:
     keyed and order-independent, the property the cross-domain summary
     relies on. *)
  let rec merge_sorted key combine xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> rest
    | x :: xs', y :: ys' ->
      let c = String.compare (key x) (key y) in
      if c < 0 then x :: merge_sorted key combine xs' ys
      else if c > 0 then y :: merge_sorted key combine xs ys'
      else combine x y :: merge_sorted key combine xs' ys'

  let event_compare (tid_a, a) (tid_b, b) =
    let c = Int64.compare a.ev_ts b.ev_ts in
    if c <> 0 then c
    else
      let c = Int.compare tid_a tid_b in
      if c <> 0 then c else String.compare a.ev_name b.ev_name

  let merge a b =
    {
      spans = merge_sorted (fun s -> s.name) merge_span_stat a.spans b.spans;
      counters =
        merge_sorted fst (fun (name, x) (_, y) -> (name, x + y)) a.counters b.counters;
      events = List.merge event_compare a.events b.events;
      dropped = a.dropped + b.dropped;
    }

  let percentile_of_buckets buckets ~calls ~p =
    if p <= 0. || p > 1. then invalid_arg "Telemetry.Report.percentile_of_buckets";
    if calls = 0 then 0L
    else begin
      let target = max 1 (int_of_float (ceil (p *. float_of_int calls))) in
      let rec walk i acc =
        let acc = acc + buckets.(i) in
        if acc >= target || i = n_buckets - 1 then i else walk (i + 1) acc
      in
      let i = walk 0 0 in
      if i = n_buckets - 1 then Int64.max_int else Int64.sub (fst (bucket_bounds (i + 1))) 1L
    end

  let percentile_ns stat ~p = percentile_of_buckets stat.buckets ~calls:stat.calls ~p

  let pp_ns ns =
    let ns = Int64.to_float ns in
    if ns < 1e3 then Printf.sprintf "%.0fns" ns
    else if ns < 1e6 then Printf.sprintf "%.1fus" (ns /. 1e3)
    else if ns < 1e9 then Printf.sprintf "%.1fms" (ns /. 1e6)
    else Printf.sprintf "%.2fs" (ns /. 1e9)

  let summary_table ?(times = true) t =
    let headers =
      if times then [ "phase"; "calls"; "total"; "mean"; "p50"; "p99"; "max" ]
      else [ "phase"; "calls" ]
    in
    let table = Texttable.create headers in
    List.iter
      (fun s ->
        let row =
          if times then
            let mean =
              if s.calls = 0 then 0L
              else Int64.div s.total_ns (Int64.of_int s.calls)
            in
            [
              s.name;
              string_of_int s.calls;
              pp_ns s.total_ns;
              pp_ns mean;
              pp_ns (percentile_ns s ~p:0.50);
              pp_ns (percentile_ns s ~p:0.99);
              pp_ns s.max_ns;
            ]
          else [ s.name; string_of_int s.calls ]
        in
        Texttable.add_row table row)
      t.spans;
    if t.spans <> [] && t.counters <> [] then Texttable.add_separator table;
    List.iter
      (fun (name, n) ->
        let row =
          if times then [ name; string_of_int n; "-"; "-"; "-"; "-"; "-" ]
          else [ name; string_of_int n ]
        in
        Texttable.add_row table row)
      t.counters;
    table

  let chrome_trace ?config t =
    let tids = List.sort_uniq Int.compare (List.map fst t.events) in
    let meta =
      Json_out.Obj
        [
          ("name", Json_out.Str "process_name");
          ("ph", Json_out.Str "M");
          ("pid", Json_out.Int 1);
          ("tid", Json_out.Int 0);
          ("args", Json_out.Obj [ ("name", Json_out.Str "mcx") ]);
        ]
      :: List.map
           (fun tid ->
             Json_out.Obj
               [
                 ("name", Json_out.Str "thread_name");
                 ("ph", Json_out.Str "M");
                 ("pid", Json_out.Int 1);
                 ("tid", Json_out.Int tid);
                 ( "args",
                   Json_out.Obj
                     [ ("name", Json_out.Str (Printf.sprintf "domain %d" tid)) ] );
               ])
           tids
    in
    let span_events =
      List.map
        (fun (tid, ev) ->
          Json_out.Obj
            [
              ("name", Json_out.Str ev.ev_name);
              ("cat", Json_out.Str "mcx");
              ("ph", Json_out.Str "X");
              ("ts", Json_out.Float (Int64.to_float ev.ev_ts /. 1e3));
              ("dur", Json_out.Float (Int64.to_float ev.ev_dur /. 1e3));
              ("pid", Json_out.Int 1);
              ("tid", Json_out.Int tid);
            ])
        t.events
    in
    Json_out.Obj
      [
        ("traceEvents", Json_out.List (meta @ span_events));
        ("displayTimeUnit", Json_out.Str "ms");
        ( "otherData",
          Json_out.Obj
            ([
               ("schema", Json_out.Str "mcx-trace/1");
               ("dropped_events", Json_out.Int t.dropped);
               ( "counters",
                 Json_out.Obj
                   (List.map (fun (name, n) -> (name, Json_out.Int n)) t.counters) );
             ]
            @ match config with None -> [] | Some c -> [ ("config", c) ]) );
      ]
end

let snapshot () =
  Mutex.lock registry_mutex;
  let buffers = !registry in
  Mutex.unlock registry_mutex;
  List.fold_left
    (fun acc b ->
      let spans =
        Hashtbl.fold
          (fun name (agg : span_agg) acc ->
            {
              Report.name;
              calls = agg.calls;
              total_ns = agg.total_ns;
              max_ns = agg.max_ns;
              buckets = Array.copy agg.buckets;
            }
            :: acc)
          b.span_tbl []
        |> List.sort (fun (a : Report.span_stat) b -> String.compare a.Report.name b.Report.name)
      in
      let counters =
        Hashtbl.fold (fun name r acc -> (name, !r) :: acc) b.counter_tbl []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      let events =
        let arr = Array.init b.n_events (fun i -> (b.tid, b.events.(i))) in
        Array.sort Report.event_compare arr;
        Array.to_list arr
      in
      Report.merge acc
        { Report.spans; counters; events; dropped = b.dropped })
    Report.empty buffers

let times_from_env () = Config.trace_times ()

let install ?(out = stderr) ~trace () =
  enable ~events:true ();
  at_exit (fun () ->
      if !enabled_flag then begin
        let report = snapshot () in
        (* The trace carries timestamps anyway, so its embedded config
           snapshot is the full one, operational knobs included. *)
        Json_out.write_file trace
          (Report.chrome_trace ~config:(Config.snapshot ()) report);
        let times = times_from_env () in
        Printf.fprintf out "[mcx] telemetry: chrome trace written to %s\n" trace;
        output_string out (Texttable.render (Report.summary_table ~times report));
        flush out
      end)

let install_from_env () =
  match Config.trace () with
  | Some path -> install ~trace:path ()
  | None -> ()
