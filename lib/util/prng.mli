(** Deterministic, splittable pseudo-random number generation.

    All Monte Carlo experiments in this repository must be reproducible from a
    single integer seed, independently of the OCaml stdlib [Random] state.
    The generator is xoshiro256++ seeded through splitmix64, following the
    reference C implementations by Blackman and Vigna. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. Equal seeds yield
    equal streams. *)

(** Structured 64-bit seeding keys.

    Experiments derive one generator per Monte Carlo trial from
    [(seed, experiment key, trial index)] alone, so a trial's stream never
    depends on evaluation order or scheduling — the property the parallel
    {!Pool} relies on for bit-identical output at any job count.

    Keys replace the historical [Prng.create (Hashtbl.hash (...))] idiom:
    [Hashtbl.hash] keeps only 30 bits, traverses large tuples partially
    and may change across OCaml versions, so distinct configurations could
    silently collide onto one stream. Mixing here is a full-width
    splitmix64-style avalanche, and for a fixed prefix key each [int] /
    [float] / [string] step is injective in the mixed-in value. *)
module Key : sig
  type t

  val root : int -> t
  (** Key of a master seed. *)

  val int : t -> int -> t
  val float : t -> float -> t
  val string : t -> string -> t

  val to_int64 : t -> int64
  (** The mixed 64-bit value (exposed for tests and logging). *)
end

val of_key : Key.t -> t
(** [of_key k] builds a generator whose stream depends on every component
    mixed into [k]. *)

val derive : Key.t -> int -> t
(** [derive k i] is [of_key (Key.int k i)]: the generator of trial [i]
    under experiment key [k]. Distinct indices yield distinct streams. *)

val split : t -> t
(** [split t] returns a new generator whose stream is statistically
    independent of [t]'s future output. [t] is advanced. Used to give each
    Monte Carlo sample its own stream so that per-sample work is insensitive
    to evaluation order. *)

val copy : t -> t
(** [copy t] duplicates the current state; both copies then produce the same
    stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)], with 53 bits of precision. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** Uniform in the inclusive range [\[lo, hi\]]. @raise Invalid_argument if
    [hi < lo]. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element. @raise Invalid_argument on empty array. *)

val sample_without_replacement : t -> k:int -> n:int -> int list
(** [sample_without_replacement t ~k ~n] draws [k] distinct indices from
    [\[0, n)], in increasing order. @raise Invalid_argument if [k > n] or
    [k < 0]. *)
