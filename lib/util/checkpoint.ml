(* Durable per-trial journal + fault isolation for the sweep engine.

   One JSONL journal per checkpoint directory serves every experiment in
   the process. Lines are self-describing and digest-checked, so the
   journal needs no index, tolerates a torn final line (the write that a
   kill interrupted), and can be shared by heterogeneous sections as
   long as the section string pins down every trial parameter. *)

exception Injected_fault

exception
  Config_mismatch of {
    path : string;
    journal_digest : string;
    current_digest : string;
  }

let () =
  Printexc.register_printer (function
    | Injected_fault -> Some "Checkpoint.Injected_fault (MCX_FAULT_RATE injection)"
    | Config_mismatch { path; journal_digest; current_digest } ->
      Some
        (Printf.sprintf
           "Checkpoint.Config_mismatch: journal %s was written under config digest %s \
            but the current configuration digests to %s; resuming would mix results \
            from two knob states. Re-run with the original MCX_* knobs (memx config \
            shows the current state), or pass --force-resume / MCX_FORCE_RESUME=1 to \
            resume anyway."
           path journal_digest current_digest)
    | _ -> None)

module Codec = struct
  type 'a t = { encode : 'a -> Json_out.t; decode : Json_out.t -> 'a option }

  let bool = { encode = (fun b -> Json_out.Bool b); decode = Json_out.to_bool_opt }
  let int = { encode = (fun i -> Json_out.Int i); decode = Json_out.to_int_opt }
  let float = { encode = (fun f -> Json_out.Float f); decode = Json_out.to_float_opt }
  let string = { encode = (fun s -> Json_out.Str s); decode = Json_out.to_string_opt }

  let ( let* ) = Option.bind

  let pair a b =
    {
      encode = (fun (x, y) -> Json_out.List [ a.encode x; b.encode y ]);
      decode =
        (fun json ->
          match Json_out.to_list_opt json with
          | Some [ x; y ] ->
            let* x = a.decode x in
            let* y = b.decode y in
            Some (x, y)
          | Some _ | None -> None);
    }

  let triple a b c =
    {
      encode = (fun (x, y, z) -> Json_out.List [ a.encode x; b.encode y; c.encode z ]);
      decode =
        (fun json ->
          match Json_out.to_list_opt json with
          | Some [ x; y; z ] ->
            let* x = a.decode x in
            let* y = b.decode y in
            let* z = c.decode z in
            Some (x, y, z)
          | Some _ | None -> None);
    }

  let quad a b c d =
    {
      encode =
        (fun (x, y, z, w) ->
          Json_out.List [ a.encode x; b.encode y; c.encode z; d.encode w ]);
      decode =
        (fun json ->
          match Json_out.to_list_opt json with
          | Some [ x; y; z; w ] ->
            let* x = a.decode x in
            let* y = b.decode y in
            let* z = c.decode z in
            let* w = d.decode w in
            Some (x, y, z, w)
          | Some _ | None -> None);
    }

  let list a =
    {
      encode = (fun xs -> Json_out.List (List.map a.encode xs));
      decode =
        (fun json ->
          let* items = Json_out.to_list_opt json in
          List.fold_right
            (fun item acc ->
              let* acc = acc in
              let* x = a.decode item in
              Some (x :: acc))
            items (Some []));
    }

  let array a =
    let as_list = list a in
    {
      encode = (fun xs -> as_list.encode (Array.to_list xs));
      decode =
        (fun json ->
          let* xs = as_list.decode json in
          Some (Array.of_list xs));
    }

  let option a =
    {
      encode = (function None -> Json_out.Null | Some x -> Json_out.List [ a.encode x ]);
      decode =
        (fun json ->
          match json with
          | Json_out.Null -> Some None
          | Json_out.List [ x ] ->
            let* x = a.decode x in
            Some (Some x)
          | _ -> None);
    }

  let conv to_repr of_repr repr =
    {
      encode = (fun v -> repr.encode (to_repr v));
      decode =
        (fun json ->
          let* r = repr.decode json in
          Some (of_repr r));
    }
end

type failure = {
  experiment : string;
  seed : int;
  section : string;
  trial : int;
  attempts : int;
  error : string;
  backtrace : string;
}

type journal = {
  dir : string;
  path : string;
  oc : out_channel;
  lock : Mutex.t;
  (* (experiment, seed, section, trial) -> journaled result. Loaded once
     at open; workers add entries under [lock]; lookups happen on the
     main domain between batches, so reads never race writes. *)
  trials : (string, Json_out.t) Hashtbl.t;
}

type t = {
  journal : journal option;
  experiment : string;
  seed : int;
  fault_rate : float;
  fault_key : Prng.Key.t;
}

(* --- process-wide state (guarded by [registry_lock]) ---------------- *)

let registry : (string, journal) Hashtbl.t = Hashtbl.create 4
[@@mcx.lint.allow "domain-toplevel-state"]

let registry_lock = Mutex.create ()
let first_dir = ref None [@@mcx.lint.allow "domain-toplevel-state"]
let handlers_installed = ref false [@@mcx.lint.allow "domain-toplevel-state"]

let failures_lock = Mutex.create ()

(* Newest first; [failures] reverses. *)
let recorded_failures : failure list ref = ref []
[@@mcx.lint.allow "domain-toplevel-state"]

(* 0 = not interrupted; otherwise the OCaml signal number (negative). *)
let interrupted = Atomic.make 0

let os_exit_code signum =
  if signum = Sys.sigint then 128 + 2
  else if signum = Sys.sigterm then 128 + 15
  else 1

let on_signal signum =
  if Atomic.exchange interrupted signum <> 0 then
    (* Second signal: the user is insisting; stop cooperating. *)
    Stdlib.exit (os_exit_code signum)
  else
    prerr_string
      "\n[mcx] signal received: journal is flushed per trial; finishing in-flight \
       trials, skipping the rest...\n"

(* --- journal -------------------------------------------------------- *)

let key ~experiment ~seed ~section ~trial =
  String.concat "\x1f" [ experiment; string_of_int seed; section; string_of_int trial ]

let digest_of result = Digest.to_hex (Digest.string (Json_out.to_string result))

type entry = Header | Trial of string * Json_out.t | Corrupt

let classify line =
  match Json_out.of_string line with
  | Error _ -> Corrupt
  | Ok json -> (
    match Json_out.member "schema" json with
    | Some _ -> Header
    | None -> (
      let field name conv = Option.bind (Json_out.member name json) conv in
      match
        ( field "experiment" Json_out.to_string_opt,
          field "seed" Json_out.to_int_opt,
          field "section" Json_out.to_string_opt,
          field "trial" Json_out.to_int_opt,
          field "digest" Json_out.to_string_opt,
          Json_out.member "result" json )
      with
      | Some experiment, Some seed, Some section, Some trial, Some digest, Some result
        when String.equal (digest_of result) digest ->
        Trial (key ~experiment ~seed ~section ~trial, result)
      | _ -> Corrupt))

(* Returns (loaded, dropped, config digest of the first header that
   carries one). [None] covers a missing file, a journal predating
   config snapshots, and a torn header alike: resume proceeds with a
   warning instead of refusing. *)
let load_into path trials =
  if not (Sys.file_exists path) then (0, 0, None)
  else begin
    let ic = open_in_bin path in
    let loaded = ref 0 and dropped = ref 0 in
    let header_digest = ref None in
    (try
       while true do
         let line = input_line ic in
         if not (String.equal (String.trim line) "") then
           match classify line with
           | Header ->
             if Option.is_none !header_digest then begin
               match Json_out.of_string line with
               | Ok json ->
                 header_digest :=
                   Option.bind (Json_out.member "config" json) (fun config ->
                       Option.bind (Json_out.member "digest" config)
                         Json_out.to_string_opt)
               | Error _ -> ()
             end
           | Trial (k, result) ->
             Hashtbl.replace trials k result;
             incr loaded
           | Corrupt -> incr dropped
       done
     with End_of_file -> ());
    close_in ic;
    (!loaded, !dropped, !header_digest)
  end

let rec mkdir_p path =
  if
    String.equal path "" || String.equal path "." || String.equal path "/"
    || Sys.file_exists path
  then ()
  else begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o777
    with Sys_error _ when Sys.file_exists path -> () (* lost a creation race *)
  end

let header_line () =
  Json_out.to_string
    (Json_out.Obj
       [
         ("schema", Json_out.Str "mcx-journal/1");
         ( "argv",
           Json_out.List
             (Array.to_list (Array.map (fun a -> Json_out.Str a) Sys.argv)) );
         (* The full knob state (operational knobs included): a resumed
            run compares its own digest against this and refuses on a
            mismatch — resuming under different knobs is a correctness
            hazard, not an observability gap. *)
         ("config", Config.snapshot ());
       ])

(* Called with [registry_lock] held. *)
let open_journal_locked dir =
  match Hashtbl.find_opt registry dir with
  | Some j -> j
  | None ->
    Telemetry.span "checkpoint.load" (fun () ->
        mkdir_p dir;
        let path = Filename.concat dir "journal.jsonl" in
        let trials = Hashtbl.create 1024 in
        let loaded, dropped, journal_digest = load_into path trials in
        (* Resume refusal: the journal's recorded config digest must match
           the current one (the full digest, MCX_JOBS included — the
           acceptance case is precisely a jobs=4 journal resumed under
           jobs=1). MCX_FORCE_RESUME / --force-resume overrides with a
           warning; a journal predating config snapshots warns too. *)
        (match journal_digest with
        | Some d ->
          let current = Config.digest () in
          if not (String.equal d current) then
            if Config.force_resume () then begin
              Printf.eprintf
                "[mcx] checkpoint: config digest mismatch at %s (journal %s, current \
                 %s); resuming anyway (--force-resume)\n"
                path d current;
              flush stderr
            end
            else
              raise
                (Config_mismatch { path; journal_digest = d; current_digest = current })
        | None ->
          if loaded > 0 || dropped > 0 then begin
            Printf.eprintf
              "[mcx] checkpoint: journal at %s records no config snapshot; resuming \
               unverified\n"
              path;
            flush stderr
          end);
        let oc =
          open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path
        in
        if loaded = 0 && dropped = 0 && out_channel_length oc = 0 then begin
          output_string oc (header_line ());
          output_char oc '\n';
          flush oc
        end;
        if loaded > 0 || dropped > 0 then begin
          Printf.eprintf "[mcx] checkpoint: %d journaled trial(s) at %s%s\n" loaded
            path
            (if dropped > 0 then
               Printf.sprintf " (%d corrupt line(s) dropped)" dropped
             else "");
          flush stderr
        end;
        if dropped > 0 then
          Telemetry.count ~n:dropped "checkpoint.journal.dropped_lines";
        let j = { dir; path; oc; lock = Mutex.create (); trials } in
        Hashtbl.replace registry dir j;
        if Option.is_none !first_dir then first_dir := Some dir;
        if not !handlers_installed then begin
          handlers_installed := true;
          Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
          Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal)
        end;
        j)

let open_journal dir =
  Mutex.lock registry_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_lock)
    (fun () -> open_journal_locked dir)

(* MCX_CHECKPOINT selects where (whether) the journal is kept; the swept
   results are journal-invariant (the replay-equality tests). Read
   through the Config registry (the sanctioned boundary). *)
let env_dir () = Config.checkpoint_dir ()

(* MCX_FAULT_RATE turns on fault *injection* for the fault-tolerance
   tests; injected crashes are retried/journaled, never silently folded
   into results. A rate outside [0, 1] is a hard Config.Invalid error
   now, not a silent clamp. *)
let env_fault_rate () = Config.fault_rate ()

let start ?dir ~experiment ~seed () =
  Printexc.record_backtrace true;
  let dir = match dir with Some d -> Some d | None -> env_dir () in
  let fault_rate = env_fault_rate () in
  let journal = Option.map open_journal dir in
  let fault_key = Prng.Key.(string (string (root seed) "mcx-fault") experiment) in
  { journal; experiment; seed; fault_rate; fault_key }

let journal_path t = Option.map (fun j -> j.path) t.journal

(* --- interruption --------------------------------------------------- *)

let exit_if_interrupted t =
  let signum = Atomic.get interrupted in
  if signum <> 0 then begin
    (match t.journal with
    | Some j ->
      Printf.eprintf "[mcx] interrupted: completed trials are journaled at %s\n"
        j.path;
      Printf.eprintf "[mcx] resume with: MCX_CHECKPOINT=%s %s\n"
        (Filename.quote j.dir)
        (String.concat " " (Array.to_list Sys.argv))
    | None -> ());
    flush stderr;
    Stdlib.exit (os_exit_code signum)
  end

(* --- fault injection ------------------------------------------------ *)

let maybe_inject t ~section ~trial ~attempt =
  if t.fault_rate > 0. then begin
    let k = Prng.Key.(int (int (string t.fault_key section) trial) attempt) in
    if Prng.float (Prng.of_key k) < t.fault_rate then begin
      Telemetry.count "checkpoint.faults.injected";
      raise Injected_fault
    end
  end

(* --- the checkpointed map ------------------------------------------- *)

let record_result t ~section ~trial ~(codec : _ Codec.t) v =
  match t.journal with
  | None -> ()
  | Some j ->
    let result = codec.encode v in
    let line =
      Json_out.to_string
        (Json_out.Obj
           [
             ("experiment", Json_out.Str t.experiment);
             ("seed", Json_out.Int t.seed);
             ("section", Json_out.Str section);
             ("trial", Json_out.Int trial);
             ("digest", Json_out.Str (digest_of result));
             ("result", result);
           ])
    in
    Telemetry.span "checkpoint.append" (fun () ->
        Mutex.lock j.lock;
        output_string j.oc line;
        output_char j.oc '\n';
        flush j.oc;
        Hashtbl.replace j.trials
          (key ~experiment:t.experiment ~seed:t.seed ~section ~trial)
          result;
        Mutex.unlock j.lock)

let record_failure f =
  Mutex.lock failures_lock;
  recorded_failures := f :: !recorded_failures;
  Mutex.unlock failures_lock

let map t ~pool ~section ~n ~(codec : _ Codec.t) f =
  exit_if_interrupted t;
  let results = Array.make n None in
  let todo = ref [] in
  (match t.journal with
  | None ->
    for i = n - 1 downto 0 do
      todo := i :: !todo
    done
  | Some j ->
    for i = n - 1 downto 0 do
      let k = key ~experiment:t.experiment ~seed:t.seed ~section ~trial:i in
      match Hashtbl.find_opt j.trials k with
      | None -> todo := i :: !todo
      | Some json -> (
        (* A decode failure means the codec changed shape since the
           journal was written; degrade to re-running the trial. *)
        match codec.decode json with
        | Some v -> results.(i) <- Some v
        | None -> todo := i :: !todo
        | exception _ -> todo := i :: !todo)
    done);
  let todo = Array.of_list !todo in
  let n_todo = Array.length todo in
  let resumed = n - n_todo in
  if resumed > 0 then Telemetry.count ~n:resumed "checkpoint.trials.resumed";
  if n_todo > 0 then begin
    Telemetry.count ~n:n_todo "checkpoint.trials.run";
    let outcomes =
      Pool.map_isolated pool n_todo (fun ~attempt k ->
          if Atomic.get interrupted <> 0 then raise Pool.Cancelled;
          let i = todo.(k) in
          maybe_inject t ~section ~trial:i ~attempt;
          let v = f i in
          record_result t ~section ~trial:i ~codec v;
          v)
    in
    Array.iteri
      (fun k outcome ->
        let i = todo.(k) in
        match outcome with
        | Pool.Done v -> results.(i) <- Some v
        | Pool.Skipped -> ()
        | Pool.Failed { error; backtrace; attempts } ->
          Telemetry.count "checkpoint.trials.failed";
          record_failure
            {
              experiment = t.experiment;
              seed = t.seed;
              section;
              trial = i;
              attempts;
              error;
              backtrace;
            })
      outcomes
  end;
  exit_if_interrupted t;
  results

let fold_completed outcomes ~init ~f =
  Array.fold_left
    (fun (acc, completed) outcome ->
      match outcome with
      | Some v -> (f acc v, completed + 1)
      | None -> (acc, completed))
    (init, 0) outcomes

(* --- degradation protocol ------------------------------------------- *)

let failures () =
  Mutex.lock failures_lock;
  let fs = !recorded_failures in
  Mutex.unlock failures_lock;
  List.rev fs

let reset () =
  Mutex.lock failures_lock;
  recorded_failures := [];
  Mutex.unlock failures_lock

let manifest_path () =
  Mutex.lock registry_lock;
  let dir = !first_dir in
  Mutex.unlock registry_lock;
  match dir with
  | Some d -> Filename.concat d "failed-trials.json"
  | None -> "mcx-failed-trials.json"

let manifest_json fs =
  Json_out.Obj
    [
      ("schema", Json_out.Str "mcx-failed-trials/1");
      ("count", Json_out.Int (List.length fs));
      ( "failures",
        Json_out.List
          (List.map
             (fun (f : failure) ->
               Json_out.Obj
                 [
                   ("experiment", Json_out.Str f.experiment);
                   ("seed", Json_out.Int f.seed);
                   ("section", Json_out.Str f.section);
                   ("trial", Json_out.Int f.trial);
                   ("attempts", Json_out.Int f.attempts);
                   ("error", Json_out.Str f.error);
                   ("backtrace", Json_out.Str f.backtrace);
                 ])
             fs) );
    ]

let record_metrics () =
  Metrics.declare ~help:"trials that failed permanently (degradation protocol)"
    Metrics.Gauge "mcx_checkpoint_failed_trials";
  Metrics.set "mcx_checkpoint_failed_trials" (float_of_int (List.length (failures ())))

let finalize () =
  match failures () with
  | [] -> 0
  | fs ->
    let path = manifest_path () in
    Json_out.write_file path (manifest_json fs);
    Printf.eprintf
      "[mcx] %d trial(s) failed permanently; results above are partial. Manifest: \
       %s\n"
      (List.length fs) path;
    flush stderr;
    4
