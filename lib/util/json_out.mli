(** Minimal JSON emission and parsing shared by the machine-readable
    outputs ([BENCH_kernels.json], the telemetry Chrome-trace export) and
    the checkpoint journal ({!Checkpoint}).

    The value type is a plain tree; rendering is deterministic (object
    fields are emitted in construction order, floats through
    {!float_repr}). The reader ({!of_string}) exists for replaying the
    checkpoint journal: it accepts exactly the compact subset this module
    emits plus insignificant whitespace, and round-trips every emitted
    value ([of_string (to_string v)] re-serializes to [to_string v]). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** NaN and infinities render as [null]; see {!float_repr}. *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** [escape s] is the JSON string-body encoding of [s] (no surrounding
    quotes): double quotes and backslashes are backslash-escaped, the control characters
    [\b \t \n \f \r] use their short forms, all other bytes below 0x20 are
    emitted as [\u00XX]. Bytes >= 0x80 pass through untouched (the input
    is assumed UTF-8). *)

val float_repr : float -> string
(** Shortest of [%.15g]/[%.16g]/[%.17g] that round-trips through
    [float_of_string] — parsing the output recovers the exact double.
    NaN and the infinities have no JSON number form; they render as
    [null] (the emitter's documented policy, exercised by tests). *)

val to_buffer : Buffer.t -> t -> unit
(** Compact rendering (no whitespace) into a buffer. *)

val to_string : t -> string

val write_file : string -> t -> unit
(** Write compact rendering plus a trailing newline. *)

(** {2 Parsing (journal replay)} *)

val max_depth : int
(** Container-nesting limit enforced by {!of_string} (512): deeper input
    is a parse error, never a stack overflow. Far above anything the
    emitter produces. *)

val of_string : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed, trailing
    garbage rejected). Numbers without [.], [e] or [E] that fit an OCaml
    [int] parse as [Int], everything else as [Float], so a value emitted
    by {!to_string} parses back to a tree with the same serialization.
    Containers nested deeper than {!max_depth} are rejected. [\u] escapes
    cover the full Unicode range: surrogate pairs combine into one code
    point (re-encoded as UTF-8) and a lone surrogate is a parse error —
    it has no scalar value, and letting it through would emit invalid
    UTF-8. [Error msg] carries a byte offset. *)

(** {2 Lenient accessors}

    [Int]/[Float] are interchangeable where a float is expected (the
    emitter prints [Float 100.] as [100], which parses as [Int 100]). All
    return [None] on a type mismatch rather than raising, so a corrupted
    journal line degrades to "re-run the trial". *)

val member : string -> t -> t option
(** First binding of the field in an [Obj]; [None] otherwise. *)

val to_bool_opt : t -> bool option
val to_int_opt : t -> int option

val to_float_opt : t -> float option
(** Accepts [Float], [Int] and [Null] (the emitted form of NaN). [Null]
    maps to [Float.nan]. *)

val to_string_opt : t -> string option
val to_list_opt : t -> t list option
