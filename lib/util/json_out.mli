(** Minimal JSON emission shared by the machine-readable outputs
    ([BENCH_kernels.json], the telemetry Chrome-trace export).

    Emission only — this repository never parses JSON, so there is no
    reader. The value type is a plain tree; rendering is deterministic
    (object fields are emitted in construction order, floats through
    {!float_repr}). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** NaN and infinities render as [null]; see {!float_repr}. *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** [escape s] is the JSON string-body encoding of [s] (no surrounding
    quotes): double quotes and backslashes are backslash-escaped, the control characters
    [\b \t \n \f \r] use their short forms, all other bytes below 0x20 are
    emitted as [\u00XX]. Bytes >= 0x80 pass through untouched (the input
    is assumed UTF-8). *)

val float_repr : float -> string
(** Shortest of [%.15g]/[%.16g]/[%.17g] that round-trips through
    [float_of_string] — parsing the output recovers the exact double.
    NaN and the infinities have no JSON number form; they render as
    [null] (the emitter's documented policy, exercised by tests). *)

val to_buffer : Buffer.t -> t -> unit
(** Compact rendering (no whitespace) into a buffer. *)

val to_string : t -> string

val write_file : string -> t -> unit
(** Write compact rendering plus a trailing newline. *)
