(* A fixed pool of worker domains draining a queue of batch-helper thunks.
   Each map call carves [0, n) into chunks claimed through an atomic
   counter; results land in an index-addressed array, so scheduling cannot
   influence what the caller observes. *)

type t = {
  jobs : int;
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  has_work : Condition.t;
  mutable stopped : bool;
  mutable domains : unit Domain.t array;
}

let clamp_jobs n = max 1 (min 64 n)

(* MCX_JOBS / the machine's core count select how much parallelism to
   use, never what gets computed: results are job-count-invariant (the
   "jobs 1 = jobs 4" tests). The knob lives in the Config registry; its
   resolution (env value or recommended_domain_count, clamped) is
   Config.jobs_resolved, behind the sanctioned Config barrier. *)
let default_jobs () = Config.jobs_resolved ()

(* Inside a worker task, nested map calls must not block on the shared
   queue (every worker could end up waiting for helpers nobody is free to
   run); they degrade to inline sequential execution instead. *)
let inside_worker = Domain.DLS.new_key (fun () -> false)

let worker pool () =
  Domain.DLS.set inside_worker true;
  let rec loop () =
    Mutex.lock pool.mutex;
    while Queue.is_empty pool.queue && not pool.stopped do
      Condition.wait pool.has_work pool.mutex
    done;
    match Queue.take_opt pool.queue with
    | Some task ->
      Mutex.unlock pool.mutex;
      task ();
      loop ()
    | None ->
      (* stopped and drained *)
      Mutex.unlock pool.mutex
  in
  loop ()

let create ?jobs () =
  let jobs = match jobs with Some n -> clamp_jobs n | None -> default_jobs () in
  let pool =
    {
      jobs;
      queue = Queue.create ();
      mutex = Mutex.create ();
      has_work = Condition.create ();
      stopped = false;
      domains = [||];
    }
  in
  if jobs > 1 then pool.domains <- Array.init (jobs - 1) (fun _ -> Domain.spawn (worker pool));
  pool

let jobs pool = pool.jobs

let record_metrics pool =
  (* The worker count is an environment fact (MCX_JOBS), not a result:
     marked measured so the deterministic metrics projection stays
     byte-identical across job counts. *)
  Metrics.declare ~help:"pool workers (MCX_JOBS)" ~measured:true Metrics.Gauge
    "mcx_pool_jobs";
  Metrics.set "mcx_pool_jobs" (float_of_int pool.jobs)

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stopped <- true;
  Condition.broadcast pool.has_work;
  Mutex.unlock pool.mutex;
  Array.iter Domain.join pool.domains;
  pool.domains <- [||]

(* Guarded by [default_mutex]; the process-wide default pool. *)
let default_pool = ref None [@@mcx.lint.allow "domain-toplevel-state"]
let default_mutex = Mutex.create ()

let default () =
  Mutex.lock default_mutex;
  let pool =
    match !default_pool with
    | Some pool -> pool
    | None ->
      let pool = create () in
      default_pool := Some pool;
      at_exit (fun () -> shutdown pool);
      pool
  in
  Mutex.unlock default_mutex;
  pool

let sequential_map n f = Array.init n f

let map pool n f =
  if n < 0 then invalid_arg "Pool.map: negative size";
  if n = 0 then [||]
  else if pool.jobs = 1 || n = 1 || Domain.DLS.get inside_worker then sequential_map n f
  else begin
    let results = Array.make n None in
    let first_error = Atomic.make None in
    let next = Atomic.make 0 in
    (* Small chunks keep the domains load-balanced when trial costs vary
       (mapping failures return early); 4 chunks per worker amortizes the
       atomic traffic. *)
    let chunk = max 1 ((n + (4 * pool.jobs) - 1) / (4 * pool.jobs)) in
    let rec consume () =
      let lo = Atomic.fetch_and_add next chunk in
      if lo < n then begin
        let hi = min n (lo + chunk) in
        (* Not a swallow: the first failure is stashed in [first_error] and
           re-raised with its backtrace after the join below. *)
        (try
           for i = lo to hi - 1 do
             results.(i) <- Some (f i)
           done
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           ignore (Atomic.compare_and_set first_error None (Some (e, bt)));
           (* abandon remaining chunks on error *)
           Atomic.set next n)
        [@mcx.lint.allow "hygiene-catchall"];
        consume ()
      end
    in
    let helpers = pool.jobs - 1 in
    let active = ref helpers in
    let done_mutex = Mutex.create () in
    let all_done = Condition.create () in
    let helper () =
      consume ();
      Mutex.lock done_mutex;
      decr active;
      if !active = 0 then Condition.signal all_done;
      Mutex.unlock done_mutex
    in
    Mutex.lock pool.mutex;
    if pool.stopped then begin
      Mutex.unlock pool.mutex;
      invalid_arg "Pool.map: pool is shut down"
    end;
    for _ = 1 to helpers do
      Queue.push helper pool.queue
    done;
    Condition.broadcast pool.has_work;
    Mutex.unlock pool.mutex;
    consume ();
    Mutex.lock done_mutex;
    while !active > 0 do
      Condition.wait all_done done_mutex
    done;
    Mutex.unlock done_mutex;
    (match Atomic.get first_error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_reduce pool ~n ~map:f ~init ~fold = Array.fold_left fold init (map pool n f)

(* --- trial-level fault isolation ----------------------------------- *)

exception Cancelled

type 'a outcome =
  | Done of 'a
  | Skipped
  | Failed of { error : string; backtrace : string; attempts : int }

(* MCX_TRIAL_RETRIES bounds how often a crashing trial is re-attempted;
   a trial that succeeds computes the same value at any attempt count, so
   this is an operational knob, not an input. Read (validated, capped at
   16) through the Config registry. *)
let default_retries () = Config.trial_retries ()

let map_isolated pool ?retries n f =
  let retries = match retries with Some r -> max 0 r | None -> default_retries () in
  let isolated i =
    let rec attempt k =
      (* Not a swallow: the failure is captured as a [Failed] outcome the
         caller must consume; [Cancelled] short-circuits the retries so an
         interrupted sweep drains promptly. *)
      (match f ~attempt:k i with
      | v -> Done v
      | exception Cancelled -> Skipped
      | exception e ->
        let backtrace = Printexc.get_backtrace () in
        if k < retries then begin
          Telemetry.count "pool.trial.retried";
          attempt (k + 1)
        end
        else begin
          Telemetry.count "pool.trial.failed";
          Failed { error = Printexc.to_string e; backtrace; attempts = k + 1 }
        end)
    in
    attempt 0
  in
  map pool n isolated
