(** Size-bounded least-recently-used cache, string-keyed.

    The serving layer memoizes defect-tolerant mapping results by
    canonical request digest; this is the bounded store behind that
    memo. Purely sequential — callers (the batch dispatcher) perform all
    lookups and insertions on one domain between {!Pool} fan-outs, so no
    locking is needed or provided.

    Every lookup and eviction is counted twice: in the cache's own
    {!stats} record (always, for the [--stats] summary) and under the
    [<name>.hit] / [<name>.miss] / [<name>.eviction] {!Telemetry}
    counters when a [name] was given and telemetry is enabled. *)

type 'a t

type stats = {
  hits : int;  (** lookups that found a live entry *)
  misses : int;  (** lookups that found nothing *)
  insertions : int;  (** [put] calls that added a new key *)
  evictions : int;  (** entries dropped to respect [capacity] *)
}

val create : ?name:string -> capacity:int -> unit -> 'a t
(** [create ~capacity ()] holds at most [capacity] entries; the least
    recently used entry is evicted on overflow. [capacity = 0] is a
    legal degenerate cache: every lookup misses and [put] is a no-op
    (counted as an eviction of the incoming entry's predecessor never —
    i.e. not counted at all). [name] prefixes the telemetry counters.
    @raise Invalid_argument on negative capacity. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Current number of entries; always [<= capacity]. *)

val find : 'a t -> string -> 'a option
(** Lookup; a hit promotes the entry to most-recently-used and is
    counted, a miss is counted. *)

val peek : 'a t -> string -> 'a option
(** Lookup without touching recency or counters (tests, introspection). *)

val put : 'a t -> string -> 'a -> unit
(** Insert or replace; either way the key becomes most-recently-used.
    When a new key pushes the cache over capacity the LRU entry is
    evicted (and counted). *)

val to_list : 'a t -> (string * 'a) list
(** Entries most-recently-used first — the exact eviction order,
    exposed so tests can check LRU discipline against a model. *)

val stats : 'a t -> stats

val record_metrics : 'a t -> unit
(** Export the cache's counters and current size into the {!Metrics}
    registry as [mcx_cache_*] series labeled [cache=<name>] ("cache"
    when anonymous). A one-shot bridge for exporter paths ([memx serve
    --metrics]); calling it twice double-counts the counter families.
    No-op while {!Metrics.enabled} is false. *)
