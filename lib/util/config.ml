(* The typed knob registry. Declaration order below is the canonical
   order everywhere: the snapshot, the digest, `memx config`, and the
   README reference table. *)

type provenance = Default | Env | Flag

let provenance_name = function Default -> "default" | Env -> "env" | Flag -> "flag"

exception Invalid of { knob : string; value : string; expected : string }

let () =
  Printexc.register_printer (function
    | Invalid { knob; value; expected } ->
      Some (Printf.sprintf "invalid %s=%S (expected %s)" knob value expected)
    | _ -> None)

type error = { knob : string; value : string; expected : string }

type spec = {
  s_name : string;
  s_ty : string;
  s_layer : string;
  s_semantic : bool;
  s_doc : string;
  s_default : Json_out.t;
  (* None = malformed; the parsed JSON value is what the snapshot
     renders, so clamping (retry cap) happens here, visibly. *)
  s_parse : string -> Json_out.t option;
  s_expected : string;
}

let parse_int ~min ?max () s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= min && (match max with Some m -> n <= m | None -> true) ->
    Some (Json_out.Int n)
  | Some _ | None -> None

let parse_float_01 s =
  match float_of_string_opt (String.trim s) with
  | Some r when r >= 0. && r <= 1. -> Some (Json_out.Float r)
  | Some _ | None -> None

let parse_bool s =
  match String.lowercase_ascii (String.trim s) with
  | "1" | "true" -> Some (Json_out.Bool true)
  | "0" | "false" -> Some (Json_out.Bool false)
  | _ -> None

let parse_path s = Some (Json_out.Str (String.trim s))

let registry : spec list =
  [
    {
      s_name = "MCX_JOBS";
      s_ty = "int";
      s_layer = "pool";
      s_semantic = false;
      s_doc = "worker-domain count (default: machine cores, clamped to 1-64)";
      s_default = Json_out.Null;
      s_parse = parse_int ~min:1 ();
      s_expected = "a positive integer (worker domains; clamped to 64)";
    };
    {
      s_name = "MCX_TRIAL_RETRIES";
      s_ty = "int";
      s_layer = "pool";
      s_semantic = false;
      s_doc = "retry budget for a crashing trial before it fails permanently";
      s_default = Json_out.Int 2;
      (* The historical cap survives, but in the open: the snapshot
         shows the capped value a sweep actually uses. *)
      s_parse =
        (fun s ->
          match int_of_string_opt (String.trim s) with
          | Some r when r >= 0 -> Some (Json_out.Int (min r 16))
          | Some _ | None -> None);
      s_expected = "a non-negative integer (capped at 16)";
    };
    {
      s_name = "MCX_CHECKPOINT";
      s_ty = "path";
      s_layer = "checkpoint";
      s_semantic = false;
      s_doc = "journal completed trials under this directory";
      s_default = Json_out.Null;
      s_parse = parse_path;
      s_expected = "a directory path";
    };
    {
      s_name = "MCX_FAULT_RATE";
      s_ty = "float";
      s_layer = "checkpoint";
      s_semantic = true;
      s_doc = "deterministic fault-injection probability per trial attempt";
      s_default = Json_out.Float 0.;
      s_parse = parse_float_01;
      s_expected = "a float in [0, 1]";
    };
    {
      s_name = "MCX_TRACE";
      s_ty = "path";
      s_layer = "telemetry";
      s_semantic = false;
      s_doc = "record telemetry and write a Chrome trace here at exit";
      s_default = Json_out.Null;
      s_parse = parse_path;
      s_expected = "a file path";
    };
    {
      s_name = "MCX_TRACE_TIMES";
      s_ty = "bool";
      s_layer = "telemetry";
      s_semantic = false;
      s_doc = "0/false switches summaries and logs to the deterministic projection";
      s_default = Json_out.Bool true;
      s_parse = parse_bool;
      s_expected = "0, 1, true or false";
    };
    {
      s_name = "MCX_CACHE_SIZE";
      s_ty = "int";
      s_layer = "serve";
      s_semantic = false;
      s_doc = "mapping-result cache capacity in entries (0 disables caching)";
      s_default = Json_out.Int 512;
      s_parse = parse_int ~min:0 ();
      s_expected = "a non-negative integer (cache entries; 0 disables)";
    };
    {
      s_name = "MCX_SAMPLES";
      s_ty = "int";
      s_layer = "bench";
      s_semantic = true;
      s_doc = "Monte Carlo sample-count override (default: each experiment's paper scale)";
      s_default = Json_out.Null;
      s_parse = parse_int ~min:1 ();
      s_expected = "a positive integer (Monte Carlo samples)";
    };
    {
      s_name = "MCX_GOLDEN_REGEN";
      s_ty = "path";
      s_layer = "test";
      s_semantic = true;
      s_doc = "regenerate golden test outputs into this directory instead of checking";
      s_default = Json_out.Null;
      s_parse = parse_path;
      s_expected = "a directory path";
    };
    {
      s_name = "MCX_FORCE_RESUME";
      s_ty = "bool";
      s_layer = "checkpoint";
      s_semantic = false;
      s_doc = "resume a journal whose recorded config digest mismatches the current one";
      s_default = Json_out.Bool false;
      s_parse = parse_bool;
      s_expected = "0, 1, true or false";
    };
  ]

let find_spec name =
  match List.find_opt (fun s -> String.equal s.s_name name) registry with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Config: unregistered knob %S" name)

(* --- flag overrides (guarded by [flags_mutex]) ----------------------- *)

let flags : (string, string) Hashtbl.t = Hashtbl.create 8
[@@mcx.lint.allow "domain-toplevel-state"]

let flags_mutex = Mutex.create ()

let flag_value name =
  Mutex.lock flags_mutex;
  let v = Hashtbl.find_opt flags name in
  Mutex.unlock flags_mutex;
  v

let set_flag name value =
  let spec = find_spec name in
  (match spec.s_parse value with
  | Some _ -> ()
  | None -> raise (Invalid { knob = name; value; expected = spec.s_expected }));
  Mutex.lock flags_mutex;
  Hashtbl.replace flags name value;
  Mutex.unlock flags_mutex

let reset_flags () =
  Mutex.lock flags_mutex;
  Hashtbl.reset flags;
  Mutex.unlock flags_mutex

(* --- the one sanctioned environment read ----------------------------- *)

(* The single Sys.getenv site the raw-env-read rule allows. A set but
   empty (or whitespace-only) variable counts as unset, so harnesses
   can clear a knob with [Unix.putenv name ""]. *)
let env_value name =
  match Sys.getenv_opt name with
  | Some s when not (String.equal (String.trim s) "") -> Some (String.trim s)
  | Some _ | None -> None

let raw name =
  match flag_value name with
  | Some v -> Some (v, Flag)
  | None -> (
    match env_value name with Some v -> Some (v, Env) | None -> None)

(* Effective (value, provenance), re-read on every call. *)
let parsed spec =
  match raw spec.s_name with
  | None -> (spec.s_default, Default)
  | Some (v, prov) -> (
    match spec.s_parse v with
    | Some json -> (json, prov)
    | None -> raise (Invalid { knob = spec.s_name; value = v; expected = spec.s_expected }))

(* --- typed accessors -------------------------------------------------- *)

let int_opt name =
  match parsed (find_spec name) with
  | Json_out.Int n, _ -> Some n
  | Json_out.Null, _ -> None
  | _ -> assert false

let path_opt name =
  match parsed (find_spec name) with
  | Json_out.Str s, _ -> Some s
  | Json_out.Null, _ -> None
  | _ -> assert false

let bool_knob name =
  match parsed (find_spec name) with Json_out.Bool b, _ -> b | _ -> assert false

let jobs () = int_opt "MCX_JOBS"

let jobs_resolved () =
  let n = match jobs () with Some n -> n | None -> Domain.recommended_domain_count () in
  max 1 (min 64 n)

let trial_retries () =
  match int_opt "MCX_TRIAL_RETRIES" with Some r -> r | None -> assert false

let checkpoint_dir () = path_opt "MCX_CHECKPOINT"

let fault_rate () =
  match parsed (find_spec "MCX_FAULT_RATE") with
  | Json_out.Float r, _ -> r
  | _ -> assert false

let trace () = path_opt "MCX_TRACE"
let trace_times () = bool_knob "MCX_TRACE_TIMES"

let cache_size () =
  match int_opt "MCX_CACHE_SIZE" with Some n -> n | None -> assert false

let samples () = int_opt "MCX_SAMPLES"
let golden_regen () = path_opt "MCX_GOLDEN_REGEN"
let force_resume () = bool_knob "MCX_FORCE_RESUME"

(* --- diagnostics ------------------------------------------------------ *)

let errors () =
  List.filter_map
    (fun spec ->
      match raw spec.s_name with
      | None -> None
      | Some (v, _) -> (
        match spec.s_parse v with
        | Some _ -> None
        | None -> Some { knob = spec.s_name; value = v; expected = spec.s_expected }))
    registry

let registered name = List.exists (fun s -> String.equal s.s_name name) registry

let unknown () =
  Array.to_list (Unix.environment ())
  |> List.filter_map (fun binding ->
         match String.index_opt binding '=' with
         | None -> None
         | Some i ->
           let name = String.sub binding 0 i in
           let value = String.sub binding (i + 1) (String.length binding - i - 1) in
           (* The empty-is-unset convention applies here too, so a
              harness can retract a typo with [Unix.putenv name ""]. *)
           if
             String.length name >= 4
             && String.equal (String.sub name 0 4) "MCX_"
             && (not (registered name))
             && not (String.equal (String.trim value) "")
           then Some (name, value)
           else None)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* --- the mcx-config/1 snapshot ---------------------------------------- *)

type info = {
  name : string;
  ty : string;
  layer : string;
  semantic : bool;
  doc : string;
  default : Json_out.t;
  value : Json_out.t;
  prov : provenance;
}

let knobs () =
  List.map
    (fun spec ->
      let value, prov = parsed spec in
      {
        name = spec.s_name;
        ty = spec.s_ty;
        layer = spec.s_layer;
        semantic = spec.s_semantic;
        doc = spec.s_doc;
        default = spec.s_default;
        value;
        prov;
      })
    registry

let included ~semantic_only = List.filter (fun k -> (not semantic_only) || k.semantic) (knobs ())

(* MD5 over (name, value) pairs only: provenance is excluded so a value
   set by flag and the same value set by env digest identically. *)
let digest_of_knobs ks =
  Digest.to_hex
    (Digest.string
       (Json_out.to_string
          (Json_out.List
             (List.map
                (fun k ->
                  Json_out.Obj [ ("name", Json_out.Str k.name); ("value", k.value) ])
                ks))))

let digest ?(semantic_only = false) () = digest_of_knobs (included ~semantic_only)

let snapshot ?(semantic_only = false) () =
  let ks = included ~semantic_only in
  Json_out.Obj
    [
      ("schema", Json_out.Str "mcx-config/1");
      ("digest", Json_out.Str (digest_of_knobs ks));
      ( "knobs",
        Json_out.List
          (List.map
             (fun k ->
               Json_out.Obj
                 [
                   ("name", Json_out.Str k.name);
                   ("type", Json_out.Str k.ty);
                   ("layer", Json_out.Str k.layer);
                   ("semantic", Json_out.Bool k.semantic);
                   ("provenance", Json_out.Str (provenance_name k.prov));
                   ("value", k.value);
                   ("default", k.default);
                 ])
             ks) );
    ]
