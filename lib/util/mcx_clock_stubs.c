/* Monotonic clock for the runtime columns: Unix.gettimeofday is subject
   to NTP steps, which can make a timed interval negative or inflated. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value mcx_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec);
}
