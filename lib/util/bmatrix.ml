(* Bit-packed: one bit per cell, rows padded to a whole number of native
   words ([Bits.word_bits] bits each).  Row-level predicates (containment,
   intersection, counting) run word-parallel — a handful of AND/XOR/popcount
   ops per word instead of a byte comparison per cell.

   Invariant: the padding bits of every row's last word are zero, so
   whole-word equality, popcounts and subset tests need no re-masking. *)

type t = { rows : int; cols : int; wpr : int; data : int array }

let create ~rows ~cols fill =
  if rows < 0 || cols < 0 then invalid_arg "Bmatrix.create: negative dimension";
  let wpr = Bits.words_for cols in
  let data = Array.make (rows * wpr) 0 in
  if fill && cols > 0 then begin
    let tail = Bits.tail_mask cols in
    for i = 0 to rows - 1 do
      for w = 0 to wpr - 2 do
        data.((i * wpr) + w) <- -1
      done;
      data.((i * wpr) + wpr - 1) <- tail
    done
  end;
  { rows; cols; wpr; data }

let rows t = t.rows
let cols t = t.cols

let check t i j name =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
    invalid_arg (Printf.sprintf "Bmatrix.%s: (%d,%d) out of %dx%d" name i j t.rows t.cols)

let get t i j =
  check t i j "get";
  let w = (i * t.wpr) + Bits.word_of j in
  (Array.unsafe_get t.data w lsr Bits.bit_of j) land 1 = 1

let set t i j v =
  check t i j "set";
  let w = (i * t.wpr) + Bits.word_of j in
  let bit = 1 lsl Bits.bit_of j in
  let word = Array.unsafe_get t.data w in
  Array.unsafe_set t.data w (if v then word lor bit else word land lnot bit)

let copy t = { t with data = Array.copy t.data }

let of_lists = function
  | [] -> invalid_arg "Bmatrix.of_lists: empty"
  | first :: _ as rows_list ->
    let cols = List.length first in
    let rows = List.length rows_list in
    if cols = 0 then invalid_arg "Bmatrix.of_lists: empty row";
    let t = create ~rows ~cols false in
    List.iteri
      (fun i row ->
        if List.length row <> cols then invalid_arg "Bmatrix.of_lists: ragged rows";
        List.iteri (fun j v -> set t i j v) row)
      rows_list;
    t

let of_int_lists l = of_lists (List.map (List.map (fun x -> x <> 0)) l)

let row t i =
  if i < 0 || i >= t.rows then invalid_arg "Bmatrix.row";
  Array.init t.cols (fun j -> get t i j)

let count t =
  let n = ref 0 in
  for w = 0 to Array.length t.data - 1 do
    n := !n + Bits.popcount (Array.unsafe_get t.data w)
  done;
  !n

let check_row t i name = if i < 0 || i >= t.rows then invalid_arg ("Bmatrix." ^ name)

let count_row t i =
  check_row t i "count_row";
  let base = i * t.wpr in
  let n = ref 0 in
  for w = 0 to t.wpr - 1 do
    n := !n + Bits.popcount (Array.unsafe_get t.data (base + w))
  done;
  !n

let count_col t j =
  if j < 0 || j >= t.cols then invalid_arg "Bmatrix.count_col";
  let w = Bits.word_of j and b = Bits.bit_of j in
  let n = ref 0 in
  for i = 0 to t.rows - 1 do
    n := !n + ((Array.unsafe_get t.data ((i * t.wpr) + w) lsr b) land 1)
  done;
  !n

let row_nonzero t i =
  check_row t i "row_nonzero";
  let base = i * t.wpr in
  let rec go w = w < t.wpr && (Array.unsafe_get t.data (base + w) <> 0 || go (w + 1)) in
  go 0

let check_pair a i b j name =
  check_row a i name;
  check_row b j name;
  if a.cols <> b.cols then invalid_arg (Printf.sprintf "Bmatrix.%s: column count mismatch" name)

(* Every set cell of row [i] of [a] is also set in row [j] of [b]. *)
let row_subset a i b j =
  check_pair a i b j "row_subset";
  let ba = i * a.wpr and bb = j * b.wpr in
  let rec go w =
    w = a.wpr
    || Array.unsafe_get a.data (ba + w) land lnot (Array.unsafe_get b.data (bb + w)) = 0
       && go (w + 1)
  in
  go 0

let row_intersects a i b j =
  check_pair a i b j "row_intersects";
  let ba = i * a.wpr and bb = j * b.wpr in
  let rec go w =
    w < a.wpr
    && (Array.unsafe_get a.data (ba + w) land Array.unsafe_get b.data (bb + w) <> 0
        || go (w + 1))
  in
  go 0

let row_and_count a i b j =
  check_pair a i b j "row_and_count";
  let ba = i * a.wpr and bb = j * b.wpr in
  let n = ref 0 in
  for w = 0 to a.wpr - 1 do
    n := !n + Bits.popcount (Array.unsafe_get a.data (ba + w) land Array.unsafe_get b.data (bb + w))
  done;
  !n

let row_or_count a i b j =
  check_pair a i b j "row_or_count";
  let ba = i * a.wpr and bb = j * b.wpr in
  let n = ref 0 in
  for w = 0 to a.wpr - 1 do
    n := !n + Bits.popcount (Array.unsafe_get a.data (ba + w) lor Array.unsafe_get b.data (bb + w))
  done;
  !n

(* |row i of a \ row j of b| — the annealing conflict count. *)
let row_diff_count a i b j =
  check_pair a i b j "row_diff_count";
  let ba = i * a.wpr and bb = j * b.wpr in
  let n = ref 0 in
  for w = 0 to a.wpr - 1 do
    n :=
      !n
      + Bits.popcount
          (Array.unsafe_get a.data (ba + w) land lnot (Array.unsafe_get b.data (bb + w)))
  done;
  !n

let is_submatrix sub sup =
  sub.rows = sup.rows && sub.cols = sup.cols
  &&
  let rec go w =
    w = Array.length sub.data
    || Array.unsafe_get sub.data w land lnot (Array.unsafe_get sup.data w) = 0 && go (w + 1)
  in
  go 0

let equal a b =
  a.rows = b.rows && a.cols = b.cols
  &&
  let rec go w = w = Array.length a.data || (a.data.(w) = b.data.(w) && go (w + 1)) in
  go 0

let fold f t init =
  let acc = ref init in
  for i = 0 to t.rows - 1 do
    for j = 0 to t.cols - 1 do
      acc := f i j (get t i j) !acc
    done
  done;
  !acc

let map_rows t ~f = List.init t.rows (fun i -> f i (row t i))

let pp ?(one = "1") ?(zero = "0") ppf t =
  for i = 0 to t.rows - 1 do
    if i > 0 then Format.pp_print_newline ppf ();
    for j = 0 to t.cols - 1 do
      if j > 0 then Format.pp_print_string ppf " ";
      Format.pp_print_string ppf (if get t i j then one else zero)
    done
  done

let to_string t = Fmt.str "%a" (pp ?one:None ?zero:None) t
