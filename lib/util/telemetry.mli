(** Low-overhead observability for the synthesis/mapping pipeline: nested
    spans, named counters and log2-bucketed duration histograms, with a
    Chrome-trace exporter and a per-phase summary table.

    {2 Recording model}

    Every domain records into its own buffer (domain-local storage), so
    instrumented code inside {!Pool} workers never contends on a lock.
    Aggregates are {e keyed} by span/counter name and merge by commutative
    sums, so the merged summary is independent of which domain executed
    which trial: with the deterministic per-trial work of the experiment
    harnesses, the [calls] and counter columns are bit-identical at any
    [MCX_JOBS] value (wall-clock columns are measurements and are not).

    {2 Cost when disabled}

    All recording entry points first read one [bool ref]; when telemetry
    is off they return immediately — a load and a branch, no allocation.
    [span name f] calls [f] directly. The kernel microbench
    ([bench/kernels.ml]) is the regression guard for this path.

    {2 Gating}

    Nothing records until {!enable} (or {!install} /
    {!install_from_env}, which the drivers call). Setting
    [MCX_TRACE=<path>] (or [memx --trace <path>]) enables collection,
    writes a Chrome trace-event JSON to [<path>] at exit (loadable in
    [about://tracing] / {{:https://ui.perfetto.dev}Perfetto}) and prints
    the per-phase summary to stderr — stdout stays byte-comparable.
    [MCX_TRACE_TIMES=0] drops the wall-clock columns from that summary,
    leaving only the deterministic ones (used by the CI determinism
    check). *)

val enabled : unit -> bool

val enable : ?events:bool -> unit -> unit
(** Start collecting. [events] additionally records one trace event per
    closed span (needed for the Chrome export; default [false]). Resets
    the trace epoch to now. *)

val disable : unit -> unit
(** Stop collecting; recorded data stays until {!reset}. *)

val reset : unit -> unit
(** Drop all recorded data in every domain buffer. Only call while no
    {!Pool} batch is in flight. *)

(** {2 Recording} *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] times [f ()] between two monotonic-clock readings and
    records the duration under [name] (count, total, max, log2 histogram
    bucket, and a trace event when events are on). Spans nest; on an
    exception the open frame is closed and the exception re-raised. *)

val begin_span : string -> unit
val end_span : string -> unit
(** Manual span bracketing for code where a higher-order wrapper does not
    fit. [end_span name] closes the innermost open span, which must be
    [name]. @raise Invalid_argument when no span is open or the innermost
    open span has a different name (unbalanced close). *)

val count : ?n:int -> string -> unit
(** Add [n] (default 1) to the named counter. *)

val observe_ns : string -> int64 -> unit
(** Record one duration (nanoseconds) under [name] without the
    span/trace-event machinery — same aggregate as a span of that
    duration. Negative durations clamp to 0. *)

(** {2 Histogram geometry} (pure; exposed for tests) *)

val n_buckets : int
(** 64: bucket [i >= 1] holds durations in [[2{^i}, 2{^i+1}) ns]; bucket
    0 holds [[0, 2) ns]. *)

val bucket_of_ns : int64 -> int

val bucket_bounds : int -> int64 * int64
(** [(lo, hi)] with [lo] inclusive, [hi] exclusive ([Int64.max_int] for
    the last bucket). @raise Invalid_argument out of range. *)

(** {2 Reports} *)

module Report : sig
  type span_stat = {
    name : string;
    calls : int;
    total_ns : int64;
    max_ns : int64;
    buckets : int array;  (** length {!n_buckets} *)
  }

  type t

  val empty : t

  val spans : t -> span_stat list
  (** Sorted by name. *)

  val counters : t -> (string * int) list
  (** Sorted by name. *)

  val dropped_events : t -> int
  val merge : t -> t -> t
  (** Keyed, order-independent: [merge a b] and [merge b a] render the
      same summary. *)

  val percentile_of_buckets : int array -> calls:int -> p:float -> int64
  (** Upper edge of the histogram bucket holding the [p]-quantile
      ([0 < p <= 1]) of [calls] observations spread over [buckets]
      ({!bucket_of_ns} geometry) — an overestimate by at most 2x. 0 when
      [calls = 0]. The one bucket-percentile estimator in the repo: the
      serving layer and [memx report] both call it rather than keeping
      private copies. *)

  val percentile_ns : span_stat -> p:float -> int64
  (** {!percentile_of_buckets} over a span aggregate's own buckets. *)

  val summary_table : ?times:bool -> t -> Texttable.t
  (** Per-phase summary: one row per span (calls, and with
      [times = true], total/mean/p50/p99/max), then a separator and one
      row per counter. With [times = false] (the deterministic
      projection) only name and calls/count columns are rendered. *)

  val chrome_trace : ?config:Json_out.t -> t -> Json_out.t
  (** Chrome trace-event JSON ([traceEvents] of ["ph": "X"] complete
      events, microsecond timestamps relative to {!enable}, one [tid]
      per recording domain, plus thread-name metadata; counter totals
      ride in [otherData]). [?config] (an [mcx-config/1] snapshot, see
      {!Config.snapshot}) is appended to [otherData] when given —
      {!install} passes the full snapshot so a trace records the knob
      state that produced it. Schema documented in EXPERIMENTS.md. *)
end

val snapshot : unit -> Report.t
(** Merge every domain buffer into one report. Only call while no
    {!Pool} batch is in flight (drivers call it at exit). *)

(** {2 Driver hooks} *)

val install : ?out:out_channel -> trace:string -> unit -> unit
(** Enable with events and register an exit hook that writes the Chrome
    trace to [trace] and prints the summary table to [out] (default
    stderr, so stdout stays byte-comparable). Honors [MCX_TRACE_TIMES=0]
    for the summary. *)

val times_from_env : unit -> bool
(** [false] iff [MCX_TRACE_TIMES] parses false ({!Config.trace_times}):
    the process-wide "render only the deterministic projection" switch
    shared by the telemetry summary, the {!Metrics} exporters and the
    serving access log. *)

val install_from_env : unit -> unit
(** [install] from [MCX_TRACE] ({!Config.trace}) when set and
    non-empty; otherwise do nothing (telemetry stays off at a single
    branch per record call). *)
