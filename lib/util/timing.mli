(** Wall-clock measurement for the runtime columns of Table II.

    All readings come from the OS monotonic clock ([CLOCK_MONOTONIC]), not
    [Unix.gettimeofday]: wall time can be stepped by NTP mid-measurement,
    which used to make a timed interval negative or inflated. *)

val monotonic_ns : unit -> int64
(** Monotonic nanoseconds since an arbitrary epoch. *)

val now_seconds : unit -> float
(** Monotonic seconds since an arbitrary epoch; only differences are
    meaningful. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] once and returns the result together with the
    elapsed monotonic seconds. *)

val mean_seconds : repeats:int -> (unit -> 'a) -> float
(** [mean_seconds ~repeats f] runs [f] [repeats] times and returns the mean
    elapsed seconds per run. @raise Invalid_argument if [repeats <= 0]. *)

(** Accumulating event counters — per-trial timing totals threaded through
    the bench harness. Not thread-safe: keep one counter per domain. For
    cross-domain aggregation use {!Telemetry} ({!Telemetry.span} /
    {!Telemetry.observe_ns}), which records into domain-local buffers and
    merges them deterministically at snapshot time. *)
module Counter : sig
  type t

  val create : unit -> t

  val add : t -> float -> unit
  (** Record one event of the given duration (seconds). *)

  val record : t -> (unit -> 'a) -> 'a
  (** Run a thunk, record its duration, return its result. *)

  val events : t -> int
  val total_seconds : t -> float

  val mean_seconds : t -> float
  (** 0 when no events were recorded. *)
end
