(** Checkpointed, fault-tolerant Monte Carlo sweeps.

    The paper-scale campaigns (Table II, Fig. 6, the yield/aging sweeps)
    are hours of Monte Carlo trials. This module makes that progress
    {e durable}: every completed trial is appended to a JSONL journal as
    soon as it finishes, and a re-run of the same experiment replays
    journaled trials instead of recomputing them — producing stdout
    byte-identical to an uninterrupted run, because each trial's PRNG
    stream depends only on [(seed, experiment, section, trial index)]
    (see {!Prng.Key}) and every journaled float round-trips exactly
    (see {!Json_out.float_repr}).

    {2 Activation}

    Nothing is journaled unless [MCX_CHECKPOINT=<dir>] is set (or [?dir]
    is passed to {!start}). The journal lives at [<dir>/journal.jsonl];
    one file serves every experiment in the process, with lines keyed by
    [(experiment, seed, section, trial index, result digest)].

    {2 Fault tolerance}

    Independently of journaling, trials run under {!Pool.map_isolated}: a
    raising trial is retried up to [MCX_TRIAL_RETRIES] times and then
    degrades to a missing result instead of tearing down the sweep. The
    failures are collected; {!finalize} writes them to a manifest and
    turns them into a nonzero exit status. [MCX_FAULT_RATE=<p>] injects
    {!Injected_fault} into trials through the seeded PRNG — keyed by
    [(experiment, section, trial, attempt)], so injected failures (and
    the retries they trigger) are identical at any [MCX_JOBS].

    {2 Interruption}

    While a journal is open, SIGINT/SIGTERM switch the sweep into
    cooperative cancellation: in-flight trials finish (their journal
    lines are already flushed), queued trials are skipped, and the
    process exits 130/143 after printing the resume command on stderr.
    A journal whose last line was cut off mid-write is detected on load
    (parse + digest check) and only that trial re-runs. *)

exception Injected_fault
(** The deterministic fault raised by [MCX_FAULT_RATE] injection. *)

exception
  Config_mismatch of {
    path : string;
    journal_digest : string;
    current_digest : string;
  }
(** Raised when opening a journal whose header records a different
    [mcx-config/1] digest (see {!Config.digest}) than the current knob
    state — resuming would silently mix results produced under two
    configurations. Overridable with [--force-resume] /
    [MCX_FORCE_RESUME=1] ({!Config.force_resume}), which warns on
    stderr and proceeds; journals written before config snapshots
    existed also warn and proceed. A printer is registered, so an
    uncaught mismatch prints the recovery options. *)

(** Serialization for one trial's result. [decode (encode v)] must be
    [Some v] with [v] bit-exact — the byte-identical-resume guarantee
    rests on it. Build record codecs with {!Codec.conv}. *)
module Codec : sig
  type 'a t = { encode : 'a -> Json_out.t; decode : Json_out.t -> 'a option }

  val bool : bool t
  val int : int t

  val float : float t
  (** Exact round-trip (shortest-repr emission); NaN survives, but
      infinities decode as NaN ([Json_out] has no number form for them —
      avoid infinities in trial results). *)

  val string : string t
  val pair : 'a t -> 'b t -> ('a * 'b) t
  val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t
  val quad : 'a t -> 'b t -> 'c t -> 'd t -> ('a * 'b * 'c * 'd) t
  val list : 'a t -> 'a list t
  val array : 'a t -> 'a array t
  val option : 'a t -> 'a option t

  val conv : ('a -> 'b) -> ('b -> 'a) -> 'b t -> 'a t
  (** [conv to_repr of_repr repr] codes ['a] through a representation
      type (typically a tuple mirroring a record). *)
end

type t
(** One experiment run's view of the (process-wide) journal, plus its
    fault-injection configuration. Cheap to create; inert when
    checkpointing is disabled. *)

val start : ?dir:string -> experiment:string -> seed:int -> unit -> t
(** [start ~experiment ~seed ()] opens (or creates) the journal under
    [?dir], defaulting to [MCX_CHECKPOINT]; with neither set, journaling
    is off and only fault isolation/injection remain active. The journal
    file is opened and loaded once per directory per process; signal
    handlers are installed on first open. Reads [MCX_FAULT_RATE] here. *)

val journal_path : t -> string option
(** The journal file backing [t], when journaling is active. *)

val map :
  t ->
  pool:Pool.t ->
  section:string ->
  n:int ->
  codec:'a Codec.t ->
  (int -> 'a) ->
  'a option array
(** [map t ~pool ~section ~n ~codec f] is the checkpointed, fault-
    isolated analogue of [Pool.map pool n f]. [section] must determine
    every parameter the trial depends on besides the index (benchmark,
    rates, ...): journaled results are replayed by
    [(experiment, seed, section, index)]. Result [i] is [None] only when
    trial [i] permanently failed (recorded for {!finalize}) or was
    cancelled by an interrupt — in which case [map] exits the process
    after printing the resume command, so callers never observe an
    interrupted array. Journal I/O and replayed/run/failed trial counts
    are recorded under [checkpoint.*] telemetry spans and counters. *)

val fold_completed :
  'a option array -> init:'b -> f:('b -> 'a -> 'b) -> 'b * int
(** [fold_completed outcomes ~init ~f] folds [f] over the completed
    trials strictly in index order (skipping [None]) and also returns
    how many completed — the denominator for honest partial-result
    rates. On a fully-completed sweep this is exactly the fold the
    drivers ran before fault isolation existed, so aggregate output is
    unchanged byte-for-byte. *)

type failure = {
  experiment : string;
  seed : int;
  section : string;
  trial : int;
  attempts : int;
  error : string;
  backtrace : string;
}

val failures : unit -> failure list
(** Permanent trial failures recorded so far, oldest first. *)

val manifest_path : unit -> string
(** Where {!finalize} writes the failed-trial manifest:
    [<journal dir>/failed-trials.json], or [mcx-failed-trials.json] in
    the working directory when no journal is open. *)

val finalize : unit -> int
(** Degradation protocol, called by drivers after printing their
    (possibly partial) results: with no recorded failures, does nothing
    and returns 0. Otherwise writes the manifest
    (schema [mcx-failed-trials/1]), prints a summary to stderr and
    returns 4 — the exit status for "completed with partial results". *)

val record_metrics : unit -> unit
(** Export the permanent-failure count into the {!Metrics} registry as
    the [mcx_checkpoint_failed_trials] gauge. No-op while
    {!Metrics.enabled} is false. *)

val reset : unit -> unit
(** Forget recorded failures (not the journal). For test harnesses that
    exercise the degradation path repeatedly in one process. *)
