let require_nonempty name = function
  | [] -> invalid_arg ("Stats." ^ name ^ ": empty input")
  | _ -> ()

let mean xs =
  require_nonempty "mean" xs;
  List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

(* One Welford pass: count, running mean and sum of squared deviations.
   The two-pass formulation re-walked the list up to four times (mean +
   List.length per moment) — on the paper-scale sweeps these lists hold
   10^5 samples and sit on the reporting hot path. *)
let moments xs =
  List.fold_left
    (fun (n, m, m2) x ->
      let n = n + 1 in
      let d = x -. m in
      let m' = m +. (d /. float_of_int n) in
      (n, m', m2 +. (d *. (x -. m'))))
    (0, 0., 0.) xs

let variance xs =
  require_nonempty "variance" xs;
  let n, _, m2 = moments xs in
  if n = 1 then 0. else m2 /. float_of_int (n - 1)

let stddev xs = sqrt (variance xs)

let ci95 xs =
  require_nonempty "ci95" xs;
  let n, m, m2 = moments xs in
  let sd = if n = 1 then 0. else sqrt (m2 /. float_of_int (n - 1)) in
  let half = 1.96 *. sd /. sqrt (float_of_int n) in
  (m -. half, m +. half)

let percentile xs p =
  require_nonempty "percentile" xs;
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of [0,100]";
  let a = Array.of_list xs in
  (* Float.compare, not polymorphic compare: the generic comparator
     dispatches on the boxed-float tag per comparison, an order of
     magnitude slower on large samples (and flagged by mcx-lint's
     float-sort-poly-compare rule). NaNs order first under the IEEE
     total order Float.compare implements. *)
  Array.sort Float.compare a;
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
  end

let median xs = percentile xs 50.

let success_rate bs =
  require_nonempty "success_rate" bs;
  let n, hits =
    List.fold_left (fun (n, h) b -> (n + 1, if b then h + 1 else h)) (0, 0) bs
  in
  100. *. float_of_int hits /. float_of_int n

let histogram xs ~bins ~lo ~hi =
  if bins <= 0 then invalid_arg "Stats.histogram: bins <= 0";
  if hi <= lo then invalid_arg "Stats.histogram: hi <= lo";
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  let bucket x =
    let b = int_of_float ((x -. lo) /. width) in
    if b < 0 then 0 else if b >= bins then bins - 1 else b
  in
  List.iter (fun x -> counts.(bucket x) <- counts.(bucket x) + 1) xs;
  counts
