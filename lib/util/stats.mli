(** Small statistics toolkit for the Monte Carlo harnesses. *)

val mean : float list -> float
(** Arithmetic mean. @raise Invalid_argument on empty input. *)

val variance : float list -> float
(** Unbiased sample variance (n-1 denominator); 0 for singleton input.
    Computed in a single Welford pass (so is numerically stable for
    means far from zero, and never negative). @raise Invalid_argument
    on empty input. *)

val stddev : float list -> float
(** Square root of {!variance}. *)

val ci95 : float list -> float * float
(** 95% normal-approximation confidence interval for the mean, as
    [(lo, hi)]. For n = 1 both bounds equal the sample. *)

val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [\[0, 100\]], linear interpolation between
    order statistics under [Float.compare]'s total order (NaNs sort
    first). @raise Invalid_argument on empty input or [p] out of
    range. *)

val median : float list -> float

val success_rate : bool list -> float
(** Fraction of [true] values, in percent (0..100), matching the paper's
    Psucc presentation. @raise Invalid_argument on empty input. *)

val histogram : float list -> bins:int -> lo:float -> hi:float -> int array
(** Fixed-range histogram; values outside [\[lo, hi\]] are clamped to the
    first/last bin. @raise Invalid_argument if [bins <= 0] or [hi <= lo]. *)
