(* Labeled metrics registry. Counters and histograms follow the
   Telemetry recording discipline — per-domain DLS buffers, keyed
   commutative merge at snapshot time — so their values are independent
   of which domain recorded what. Gauges are current-value cells and
   live in one small mutex-guarded table instead. *)

type kind = Counter | Gauge | Histogram

let n_buckets = Telemetry.n_buckets

(* --- name and label validation --------------------------------------- *)

let valid_metric_name s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       s

let valid_label_name s =
  s <> "le"
  && s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

(* Sorted, validated label set plus its canonical rendering (series
   identity within a family). *)
let normalize_labels labels =
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) labels in
  let rec dedup_check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      if String.equal a b then
        invalid_arg (Printf.sprintf "Metrics: duplicate label %S" a);
      dedup_check rest
    | [ _ ] | [] -> ()
  in
  List.iter
    (fun (name, _) ->
      if not (valid_label_name name) then
        invalid_arg (Printf.sprintf "Metrics: invalid label name %S" name))
    sorted;
  dedup_check sorted;
  let buf = Buffer.create 32 in
  List.iter
    (fun (name, value) ->
      Buffer.add_string buf name;
      Buffer.add_char buf '\x00';
      Buffer.add_string buf value;
      Buffer.add_char buf '\x01')
    sorted;
  (sorted, Buffer.contents buf)

(* --- registry state --------------------------------------------------- *)

type family_meta = { mutable fkind : kind; mutable help : string; mutable measured : bool }

type hist = { mutable count : int; mutable sum_ns : int64; buckets : int array }

type buffer = {
  counter_tbl : (string * string, (string * string) list * int ref) Hashtbl.t;
  hist_tbl : (string * string, (string * string) list * hist) Hashtbl.t;
  (* Families this domain already kind-checked: the hot path re-checks
     locally instead of taking the registry mutex per record. *)
  known : (string, kind) Hashtbl.t;
}

let enabled_flag = ref false
let state_mutex = Mutex.create ()

(* family name -> metadata; guarded by [state_mutex]. *)
let families : (string, family_meta) Hashtbl.t = Hashtbl.create 32

(* gauge cells: (family, label key) -> (labels, value); guarded. *)
let gauges : (string * string, (string * string) list * float ref) Hashtbl.t =
  Hashtbl.create 32

let registry : buffer list ref = ref []

let buffer_key =
  Domain.DLS.new_key (fun () ->
      let b =
        { counter_tbl = Hashtbl.create 32; hist_tbl = Hashtbl.create 32; known = Hashtbl.create 32 }
      in
      Mutex.lock state_mutex;
      registry := b :: !registry;
      Mutex.unlock state_mutex;
      b)

let buffer () = Domain.DLS.get buffer_key

let enabled () = !enabled_flag
let enable () = enabled_flag := true
let disable () = enabled_flag := false

let reset () =
  Mutex.lock state_mutex;
  Hashtbl.reset families;
  Hashtbl.reset gauges;
  List.iter
    (fun b ->
      Hashtbl.reset b.counter_tbl;
      Hashtbl.reset b.hist_tbl;
      Hashtbl.reset b.known)
    !registry;
  Mutex.unlock state_mutex

let kind_name = function Counter -> "counter" | Gauge -> "gauge" | Histogram -> "histogram"

(* Declare-or-check under the mutex: the DLS buffers are lock-free but
   family metadata is shared, and declaration is rare (first use). *)
let declare_locked ?help ?measured kind name =
  if not (valid_metric_name name) then
    invalid_arg (Printf.sprintf "Metrics: invalid metric name %S" name);
  match Hashtbl.find_opt families name with
  | Some meta ->
    if meta.fkind <> kind then
      invalid_arg
        (Printf.sprintf "Metrics: %s is a %s, not a %s" name (kind_name meta.fkind)
           (kind_name kind));
    Option.iter (fun h -> meta.help <- h) help;
    Option.iter (fun m -> meta.measured <- m) measured
  | None ->
    Hashtbl.replace families name
      {
        fkind = kind;
        help = Option.value help ~default:"";
        measured = Option.value measured ~default:false;
      }

let declare ?help ?measured kind name =
  Mutex.lock state_mutex;
  match declare_locked ?help ?measured kind name with
  | () -> Mutex.unlock state_mutex
  | exception e ->
    Mutex.unlock state_mutex;
    raise e

let check_kind b kind name =
  match Hashtbl.find_opt b.known name with
  | Some k when k = kind -> ()
  | Some k ->
    invalid_arg
      (Printf.sprintf "Metrics: %s is a %s, not a %s" name (kind_name k) (kind_name kind))
  | None ->
    Mutex.lock state_mutex;
    (match declare_locked kind name with
    | () -> Mutex.unlock state_mutex
    | exception e ->
      Mutex.unlock state_mutex;
      raise e);
    Hashtbl.replace b.known name kind

(* --- recording -------------------------------------------------------- *)

let inc ?(labels = []) ?(n = 1) name =
  if !enabled_flag then begin
    let b = buffer () in
    check_kind b Counter name;
    let labels, key = normalize_labels labels in
    match Hashtbl.find_opt b.counter_tbl (name, key) with
    | Some (_, r) -> r := !r + n
    | None -> Hashtbl.replace b.counter_tbl (name, key) (labels, ref n)
  end

let set ?(labels = []) name v =
  if !enabled_flag then begin
    check_kind (buffer ()) Gauge name;
    let labels, key = normalize_labels labels in
    Mutex.lock state_mutex;
    (match Hashtbl.find_opt gauges (name, key) with
    | Some (_, r) -> r := v
    | None -> Hashtbl.replace gauges (name, key) (labels, ref v));
    Mutex.unlock state_mutex
  end

let hist_of b name key labels =
  match Hashtbl.find_opt b.hist_tbl (name, key) with
  | Some (_, h) -> h
  | None ->
    let h = { count = 0; sum_ns = 0L; buckets = Array.make n_buckets 0 } in
    Hashtbl.replace b.hist_tbl (name, key) (labels, h);
    h

let observe_ns ?(labels = []) name ns =
  if !enabled_flag then begin
    let b = buffer () in
    check_kind b Histogram name;
    let labels, key = normalize_labels labels in
    let ns = if Int64.compare ns 0L < 0 then 0L else ns in
    let h = hist_of b name key labels in
    h.count <- h.count + 1;
    h.sum_ns <- Int64.add h.sum_ns ns;
    let i = Telemetry.bucket_of_ns ns in
    h.buckets.(i) <- h.buckets.(i) + 1
  end

let merge_histogram ?(labels = []) name ~count ~sum_ns ~buckets =
  if !enabled_flag then begin
    let b = buffer () in
    check_kind b Histogram name;
    if Array.length buckets > n_buckets then
      invalid_arg "Metrics.merge_histogram: too many buckets";
    let labels, key = normalize_labels labels in
    let h = hist_of b name key labels in
    h.count <- h.count + count;
    h.sum_ns <- Int64.add h.sum_ns sum_ns;
    Array.iteri (fun i c -> h.buckets.(i) <- h.buckets.(i) + c) buckets
  end

(* --- snapshot --------------------------------------------------------- *)

module Snapshot = struct
  type value =
    | Counter of int
    | Gauge of float
    | Histogram of { count : int; sum_ns : int64; buckets : int array }

  type series = { labels : (string * string) list; value : value }

  type family = {
    name : string;
    kind : kind;
    help : string;
    measured : bool;
    series : series list;
  }

  type t = family list

  (* --- OpenMetrics text ------------------------------------------- *)

  let escape_help s =
    let buf = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let escape_label_value s =
    let buf = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '"' -> Buffer.add_string buf "\\\""
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  (* [{k="v",...}] with [extra] appended; empty label set renders as
     nothing (plain [name value] sample). *)
  let render_labels ?extra labels =
    let pairs =
      List.map
        (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
        labels
      @ match extra with Some kv -> [ kv ] | None -> []
    in
    match pairs with [] -> "" | pairs -> "{" ^ String.concat "," pairs ^ "}"

  let int64_string = Int64.to_string

  let sample buf name labels value =
    Buffer.add_string buf name;
    Buffer.add_string buf labels;
    Buffer.add_char buf ' ';
    Buffer.add_string buf value;
    Buffer.add_char buf '\n'

  let add_histogram_text buf ~times name s =
    match s.value with
    | Histogram { count; sum_ns; buckets } ->
      if times then begin
        (* Cumulative buckets up to the last occupied one, then +Inf. *)
        let last = ref (-1) in
        Array.iteri (fun i c -> if c > 0 then last := i) buckets;
        let acc = ref 0 in
        for i = 0 to !last do
          acc := !acc + buckets.(i);
          let _, hi = Telemetry.bucket_bounds i in
          sample buf (name ^ "_bucket")
            (render_labels ~extra:(Printf.sprintf "le=\"%s\"" (int64_string hi)) s.labels)
            (string_of_int !acc)
        done;
        sample buf (name ^ "_bucket")
          (render_labels ~extra:"le=\"+Inf\"" s.labels)
          (string_of_int count);
        sample buf (name ^ "_sum") (render_labels s.labels) (int64_string sum_ns)
      end;
      sample buf (name ^ "_count") (render_labels s.labels) (string_of_int count)
    | Counter _ | Gauge _ -> assert false

  let to_openmetrics ?(times = true) t =
    let buf = Buffer.create 4096 in
    List.iter
      (fun f ->
        if times || not f.measured then begin
          if f.help <> "" then
            Buffer.add_string buf
              (Printf.sprintf "# HELP %s %s\n" f.name (escape_help f.help));
          Buffer.add_string buf
            (Printf.sprintf "# TYPE %s %s\n" f.name (kind_name f.kind));
          List.iter
            (fun s ->
              match s.value with
              | Counter n -> sample buf f.name (render_labels s.labels) (string_of_int n)
              | Gauge v -> sample buf f.name (render_labels s.labels) (Json_out.float_repr v)
              | Histogram _ -> add_histogram_text buf ~times f.name s)
            f.series
        end)
      t;
    Buffer.add_string buf "# EOF\n";
    Buffer.contents buf

  (* --- mcx-metrics/1 JSON ------------------------------------------ *)

  let labels_json labels = Json_out.Obj (List.map (fun (k, v) -> (k, Json_out.Str v)) labels)

  let series_json ~times s =
    let base = [ ("labels", labels_json s.labels) ] in
    match s.value with
    | Counter n -> Json_out.Obj (base @ [ ("value", Json_out.Int n) ])
    | Gauge v -> Json_out.Obj (base @ [ ("value", Json_out.Float v) ])
    | Histogram { count; sum_ns; buckets } ->
      let deterministic = base @ [ ("count", Json_out.Int count) ] in
      if not times then Json_out.Obj deterministic
      else
        let sparse =
          Array.to_list buckets
          |> List.mapi (fun i c -> (i, c))
          |> List.filter (fun (_, c) -> c > 0)
          |> List.map (fun (i, c) -> Json_out.List [ Json_out.Int i; Json_out.Int c ])
        in
        Json_out.Obj
          (deterministic
          @ [
              ("sum_ns", Json_out.Int (Int64.to_int sum_ns));
              ("buckets", Json_out.List sparse);
            ])

  let to_json ?(times = true) ?config t =
    let family_json f =
      Json_out.Obj
        ([ ("name", Json_out.Str f.name); ("type", Json_out.Str (kind_name f.kind)) ]
        @ (if f.help = "" then [] else [ ("help", Json_out.Str f.help) ])
        @ [ ("series", Json_out.List (List.map (series_json ~times) f.series)) ])
    in
    let kept = List.filter (fun f -> times || not f.measured) t in
    Json_out.Obj
      ([ ("schema", Json_out.Str "mcx-metrics/1") ]
      @ (match config with None -> [] | Some c -> [ ("config", c) ])
      @ [ ("metrics", Json_out.List (List.map family_json kept)) ])
end

let snapshot () =
  Mutex.lock state_mutex;
  let buffers = !registry in
  let metas = Hashtbl.fold (fun name meta acc -> (name, meta) :: acc) families [] in
  let gauge_cells =
    Hashtbl.fold (fun (name, key) (labels, r) acc -> (name, key, labels, !r) :: acc) gauges []
  in
  Mutex.unlock state_mutex;
  (* (family, label key) -> merged value, then grouped by family. *)
  let merged : (string * string, (string * string) list * Snapshot.value) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun (name, key, labels, v) ->
      Hashtbl.replace merged (name, key) (labels, Snapshot.Gauge v))
    gauge_cells;
  List.iter
    (fun b ->
      Hashtbl.iter
        (fun k (labels, r) ->
          match Hashtbl.find_opt merged k with
          | Some (_, Snapshot.Counter prev) ->
            Hashtbl.replace merged k (labels, Snapshot.Counter (prev + !r))
          | Some _ | None -> Hashtbl.replace merged k (labels, Snapshot.Counter !r))
        b.counter_tbl;
      Hashtbl.iter
        (fun k (labels, h) ->
          match Hashtbl.find_opt merged k with
          | Some (_, Snapshot.Histogram prev) ->
            Hashtbl.replace merged k
              ( labels,
                Snapshot.Histogram
                  {
                    count = prev.count + h.count;
                    sum_ns = Int64.add prev.sum_ns h.sum_ns;
                    buckets = Array.init n_buckets (fun i -> prev.buckets.(i) + h.buckets.(i));
                  } )
          | Some _ | None ->
            Hashtbl.replace merged k
              ( labels,
                Snapshot.Histogram
                  { count = h.count; sum_ns = h.sum_ns; buckets = Array.copy h.buckets } ))
        b.hist_tbl)
    buffers;
  List.filter_map
    (fun (name, meta) ->
      let series =
        Hashtbl.fold
          (fun (fname, key) (labels, value) acc ->
            if String.equal fname name then (key, { Snapshot.labels; value }) :: acc
            else acc)
          merged []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        |> List.map snd
      in
      match series with
      | [] -> None
      | series ->
        Some
          {
            Snapshot.name;
            kind = meta.fkind;
            help = meta.help;
            measured = meta.measured;
            series;
          })
    (List.sort (fun (a, _) (b, _) -> String.compare a b) metas)

(* --- bridges ----------------------------------------------------------- *)

let bridge_telemetry report =
  if !enabled_flag then begin
    declare ~help:"telemetry counter totals (see MCX_TRACE)" Counter "mcx_telemetry_counter";
    declare ~help:"telemetry span durations by span name" Histogram "mcx_telemetry_span_ns";
    List.iter
      (fun (name, n) -> inc ~labels:[ ("name", name) ] ~n "mcx_telemetry_counter")
      (Telemetry.Report.counters report);
    List.iter
      (fun (s : Telemetry.Report.span_stat) ->
        merge_histogram
          ~labels:[ ("span", s.Telemetry.Report.name) ]
          "mcx_telemetry_span_ns" ~count:s.Telemetry.Report.calls
          ~sum_ns:s.Telemetry.Report.total_ns ~buckets:s.Telemetry.Report.buckets)
      (Telemetry.Report.spans report)
  end
