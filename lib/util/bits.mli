(** Word-level bit kernels for the packed representations.

    Words are native OCaml ints ([Sys.int_size] usable bits — 63 on 64-bit
    platforms), not [int64]: int64 array elements are boxed, which would
    cost an allocation per word operation in the hot kernels. *)

val word_bits : int
(** Usable bits per word ([Sys.int_size]). *)

val words_for : int -> int
(** Number of words needed for an [n]-bit vector.
    @raise Invalid_argument if [n < 0]. *)

val word_of : int -> int
(** Word index holding bit [n]. *)

val bit_of : int -> int
(** Bit position of bit [n] inside its word. *)

val tail_mask : int -> int
(** Mask selecting the valid bits of the last word of an [n]-bit vector;
    all-ones when [n] is a multiple of {!word_bits}. *)

val popcount : int -> int
(** Number of set bits, branch-free SWAR. *)

val ctz : int -> int
(** Index of the lowest set bit. @raise Invalid_argument on zero. *)

val mix : int -> int -> int
(** [mix h w] folds word [w] into hash accumulator [h] with a
    xorshift-multiply avalanche. *)
