lib/experiments/table1.ml: List Mcx_benchmarks Mcx_crossbar Mcx_netlist Mcx_util Suite
