lib/experiments/ratesweep.mli: Mcx_util
