lib/experiments/tradeoff.mli: Mcx_util
