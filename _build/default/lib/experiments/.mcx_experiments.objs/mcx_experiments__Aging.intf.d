lib/experiments/aging.mli: Mcx_util
