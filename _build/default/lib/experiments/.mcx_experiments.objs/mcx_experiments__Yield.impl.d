lib/experiments/yield.ml: Defect_map Function_matrix Geometry Hashtbl List Mcx_benchmarks Mcx_crossbar Mcx_mapping Mcx_util Printf Prng Redundant Suite Texttable
