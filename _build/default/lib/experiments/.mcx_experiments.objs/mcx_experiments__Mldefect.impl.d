lib/experiments/mldefect.ml: Defect_map Fun Hashtbl Hybrid List Matching Mcx_benchmarks Mcx_crossbar Mcx_logic Mcx_mapping Mcx_netlist Mcx_util Multilevel Printf Prng Suite Texttable
