lib/experiments/ratesweep.ml: Annealing Defect_map Exact Function_matrix Geometry Hashtbl Hybrid List Matching Mcx_benchmarks Mcx_crossbar Mcx_mapping Mcx_util Printf Prng Suite Texttable
