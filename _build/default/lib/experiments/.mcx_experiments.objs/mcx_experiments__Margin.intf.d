lib/experiments/margin.mli: Mcx_util
