lib/experiments/tradeoff.ml: Cost List Mcx_benchmarks Mcx_crossbar Mcx_netlist Mcx_util Suite
