lib/experiments/fig6.ml: Buffer Cover Hashtbl Int List Mcx_crossbar Mcx_logic Mcx_netlist Mcx_util Mo_cover Printf Prng Random_sop Stats Texttable
