lib/experiments/margin.ml: Analog Cost List Mcx_benchmarks Mcx_crossbar Mcx_util Printf Suite
