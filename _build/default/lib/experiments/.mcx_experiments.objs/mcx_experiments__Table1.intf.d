lib/experiments/table1.mli: Mcx_benchmarks Mcx_util
