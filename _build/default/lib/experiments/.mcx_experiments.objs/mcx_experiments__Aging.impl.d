lib/experiments/aging.ml: Array Defect_map Exact Fun Function_matrix Geometry Hashtbl Junction List Matching Mcx_benchmarks Mcx_crossbar Mcx_mapping Mcx_util Printf Prng Repair Stats Suite Texttable
