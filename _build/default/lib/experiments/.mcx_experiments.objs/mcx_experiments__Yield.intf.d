lib/experiments/yield.mli: Mcx_util
