lib/experiments/mldefect.mli: Mcx_util
