lib/experiments/fig6.mli: Mcx_util
