lib/experiments/ablation.mli: Mcx_util
