lib/experiments/transient.mli: Mcx_util
