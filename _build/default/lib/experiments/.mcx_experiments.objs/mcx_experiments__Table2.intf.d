lib/experiments/table2.mli: Mcx_benchmarks Mcx_util
