lib/experiments/transient.ml: Array Cost Hashtbl Layout List Mcx_benchmarks Mcx_crossbar Mcx_logic Mcx_netlist Mcx_util Mo_cover Multilevel Printf Prng Sim Suite Texttable
