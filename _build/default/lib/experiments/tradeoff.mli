(** Area / latency / energy trade-off between the two designs.

    §III sells the multi-level design on area; the price — serialized
    gate-by-gate evaluation and its write traffic — is only implicit in
    the paper's state machines. This study makes the full trade explicit
    per benchmark: crossbar area, computation steps (the 7-state two-level
    sequence versus 3G+4, with the level-parallel lower bound), and
    memristor writes per computation. *)

type row = {
  benchmark : string;
  two_area : int;
  multi_area : int;
  two_steps : int;
  multi_steps_serial : int;
  multi_steps_parallel : int;
  two_writes : int;
  multi_writes : int;
}

val run : ?benchmarks:string list -> unit -> row list
(** Defaults to the arithmetic benchmarks (exact covers). The write counts
    are the closed-form models, which the test suite pins to the
    instrumented simulators. *)

val to_table : row list -> Mcx_util.Texttable.t
