(** Table I: two-level vs multi-level area for benchmark circuits, for the
    original function and its negation.

    The paper's takeaway: multi-level synthesis loses badly on multi-output
    benchmarks (conventional tools cannot share enough logic across
    outputs) but wins on the single-output t481 and near-single-output
    cordic. The reproduction computes all four areas with the in-repo
    synthesizers and prints them next to the paper's. *)

type row = {
  name : string;
  orig_two_level : int;
  orig_multi_level : int;
  neg_two_level : int;
  neg_multi_level : int;
  paper : (int * int * int * int) option;
}

val run_row : Mcx_benchmarks.Suite.t -> row

val run : ?benchmarks:string list -> unit -> row list
(** Defaults to the paper's nine Table I circuits. *)

val to_table : row list -> Mcx_util.Texttable.t
