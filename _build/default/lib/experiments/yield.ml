open Mcx_util
open Mcx_crossbar
open Mcx_mapping
open Mcx_benchmarks

type point = {
  spares : int;
  area : int;
  area_overhead : float;
  psucc : float;
  all_valid : bool;
}

type sweep = {
  benchmark : string;
  open_rate : float;
  closed_rate : float;
  samples : int;
  points : point list;
}

let run ?(samples = 100) ?(spare_levels = [ 0; 1; 2; 3; 4 ]) ?(open_rate = 0.05)
    ?(closed_rate = 0.01) ~seed ~benchmark () =
  let bench = Suite.find benchmark in
  let cover = Suite.cover bench in
  let fm = Function_matrix.build cover in
  let geometry = fm.Function_matrix.geometry in
  let base_rows = Geometry.rows geometry and base_cols = Geometry.cols geometry in
  let optimum_area = base_rows * base_cols in
  let point spares =
    let rows = base_rows + spares and cols = base_cols + spares in
    let prng = Prng.create (Hashtbl.hash (seed, benchmark, spares)) in
    let hits = ref 0 and all_valid = ref true in
    for _ = 1 to samples do
      let defects = Defect_map.random prng ~rows ~cols ~open_rate ~closed_rate in
      match Redundant.map ~prng ~algorithm:`Hybrid fm defects with
      | Some placement ->
        incr hits;
        if not (Redundant.verify fm defects placement) then all_valid := false
      | None -> ()
    done;
    {
      spares;
      area = rows * cols;
      area_overhead =
        100. *. (float_of_int (rows * cols) /. float_of_int optimum_area -. 1.);
      psucc = 100. *. float_of_int !hits /. float_of_int samples;
      all_valid = !all_valid;
    }
  in
  { benchmark; open_rate; closed_rate; samples; points = List.map point spare_levels }

let to_table sweep =
  let table =
    Texttable.create [ "spare lines"; "area"; "overhead %"; "Psucc %"; "verified" ]
  in
  List.iter
    (fun p ->
      Texttable.add_row table
        [
          string_of_int p.spares;
          string_of_int p.area;
          Printf.sprintf "%.1f" p.area_overhead;
          Printf.sprintf "%.0f" p.psucc;
          (if p.all_valid then "yes" else "NO");
        ])
    sweep.points;
  table
