(** EXT-MARGIN: electrical sense margin vs crossbar width.

    The robustness works the paper cites ([9], [10]) warn that wired
    evaluation degrades with line width; {!Mcx_crossbar.Analog} models the
    resistive divider behind that warning. This study tabulates the margin
    curve and checks every Table II benchmark's optimum crossbar against
    the electrical width limit. *)

type width_point = { width : int; margin_volts : float }

type benchmark_row = {
  name : string;
  columns : int;  (** vertical lines a product row crosses *)
  margin_volts : float;
  reliable : bool;
}

type result = {
  curve : width_point list;
  benchmarks : benchmark_row list;
  max_reliable_width : int;
}

val run : ?widths:int list -> ?benchmarks:string list -> unit -> result
(** Defaults: widths [1; 8; 16; 32; 64; 128; 192; 256; 320], the full
    Table II suite. *)

val to_tables : result -> Mcx_util.Texttable.t * Mcx_util.Texttable.t
(** [(curve, benchmarks)]. *)
