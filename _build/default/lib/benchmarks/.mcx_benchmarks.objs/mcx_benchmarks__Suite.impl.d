lib/benchmarks/suite.ml: Arith Hashtbl List Mcx_logic Synthetic
