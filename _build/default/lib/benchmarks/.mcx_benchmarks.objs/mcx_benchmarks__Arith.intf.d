lib/benchmarks/arith.mli: Mcx_logic
