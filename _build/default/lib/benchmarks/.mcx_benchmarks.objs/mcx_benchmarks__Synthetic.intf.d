lib/benchmarks/synthetic.mli: Mcx_logic
