lib/benchmarks/suite.mli: Mcx_logic Synthetic
