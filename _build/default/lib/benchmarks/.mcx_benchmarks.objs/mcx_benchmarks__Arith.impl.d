lib/benchmarks/arith.ml: Array Cover Cube Fun List Literal Mcx_logic Mo_cover Mo_minimize Qm Truthtable
