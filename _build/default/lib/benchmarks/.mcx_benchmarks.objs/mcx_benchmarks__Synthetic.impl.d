lib/benchmarks/synthetic.ml: Array Cube Float Hashtbl List Literal Mcx_logic Mcx_util Mo_cover
