(** The benchmark registry: every circuit named in Table I or Table II of
    the paper, with its published statistics for paper-vs-measured
    reporting.

    Circuits with public definitions are rebuilt exactly ({!Arith}); the
    rest are stats-matched synthetics ({!Synthetic}). Covers are memoized —
    building rd84 or clip runs the QM minimizer once per process. *)

type source =
  | Arithmetic of (unit -> Mcx_logic.Mo_cover.t)
  | Synthetic of Synthetic.params

type paper_data = {
  two_level_area : int option;  (** Table II "Area Cost" (corrected typos) *)
  inclusion_ratio : float option;  (** Table II IR, percent *)
  psucc_hba : float option;  (** Table II success rate of HBA, percent *)
  psucc_ea : float option;  (** Table II success rate of EA, percent *)
  table1 : (int * int * int * int) option;
      (** Table I (orig two-level, orig multi-level, neg two-level,
          neg multi-level) areas *)
}

type t = {
  name : string;
  inputs : int;
  outputs : int;
  products : int;  (** the paper's P (what the generator targets) *)
  source : source;
  negation : source;  (** how the "Negation of Circuit" cover is obtained *)
  in_table1 : bool;
  in_table2 : bool;
  paper : paper_data;
}

val all : t list
(** Every registered benchmark, in the paper's table order. *)

val table1 : t list
val table2 : t list

val find : string -> t
(** @raise Not_found for unknown names. *)

val cover : t -> Mcx_logic.Mo_cover.t
(** The benchmark's multi-output cover (memoized). *)

val negated_cover : t -> Mcx_logic.Mo_cover.t
(** The "Negation of Circuit" cover (memoized): an exact output-wise
    complement for arithmetic benchmarks, a stats-matched synthetic built
    from the paper's negation-column statistics otherwise. *)
