(** Arithmetic benchmark circuits with public functional definitions.

    These are the members of the paper's MCNC/IWLS93 suite whose behaviour
    is documented (or standard): they are regenerated here from first
    principles as truth tables and minimized with the in-repo
    Quine–McCluskey engine, giving real multi-output PLAs rather than
    synthetic stand-ins. Product counts can differ slightly from the 1993
    espresso results the paper used; EXPERIMENTS.md records both. *)

val rd53 : unit -> Mcx_logic.Mo_cover.t
(** 5 inputs, 3 outputs: the binary weight (number of ones) of the input. *)

val rd73 : unit -> Mcx_logic.Mo_cover.t
(** 7 inputs, 3 outputs: binary weight. *)

val rd84 : unit -> Mcx_logic.Mo_cover.t
(** 8 inputs, 4 outputs: binary weight. *)

val sqrt8 : unit -> Mcx_logic.Mo_cover.t
(** 8 inputs, 4 outputs: floor of the integer square root. *)

val squar5 : unit -> Mcx_logic.Mo_cover.t
(** 5 inputs, 8 outputs: bits 2..9 of the square (bit 0 equals the input's
    bit 0 and bit 1 is constant 0, so the benchmark keeps the 8
    non-trivial bits, matching the historical .o 8). *)

val clip : unit -> Mcx_logic.Mo_cover.t
(** 9 inputs, 5 outputs: a signed clipper — the two's-complement input is
    saturated into the 5-bit range [-16, 15] (stand-in definition for the
    undocumented MCNC "clip"; same I/O signature). *)

val inc : unit -> Mcx_logic.Mo_cover.t
(** 7 inputs, 9 outputs: the affine arithmetic 3x + 1 (stand-in definition
    for the undocumented MCNC "inc"; same I/O signature). *)

val parity_cover : arity:int -> vars:int list -> even:bool -> Mcx_logic.Cover.t
(** The minimal SOP of the (odd or even) parity of the given variables:
    one full product per satisfying polarity pattern — the canonical
    exponential two-level form whose multi-level implementation is tiny. *)

val t481 : unit -> Mcx_logic.Mo_cover.t
(** 16 inputs, 1 output: the conjunction of 8 pairwise XORs — a structured
    stand-in for the MCNC t481 with the same I/O and the same Table I
    signature: an exponential minimal SOP (256 products here, 481 in the
    original) but a tiny multi-level network. *)

val t481_negation : unit -> Mcx_logic.Mo_cover.t
(** The exact complement of {!t481}: a disjunction of 8 XNORs — 16 products
    of 2 literals. *)

val cordic : unit -> Mcx_logic.Mo_cover.t
(** 23 inputs, 2 outputs: two disjoint 10-variable parities (a structured
    stand-in for the MCNC cordic kernel with the same I/O and Table I
    signature: about a thousand two-level products per the pair, versus a
    small XOR-tree multi-level network). *)

val cordic_negation : unit -> Mcx_logic.Mo_cover.t
(** The exact output-wise complement of {!cordic} (the even parities). *)

val count_ones : int -> int
(** Helper: population count used by the rdXX family (exposed for tests). *)
