open Mcx_logic

let count_ones x =
  let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
  go x 0

(* Build a multi-output cover from a word-level function: output [k] is bit
   [k] of [f input_word]. Each output is minimized independently with QM,
   then the joint multi-output pass maximizes product sharing — on the rd
   family this reproduces the paper's espresso product counts exactly
   (rd53: 31, rd73: 127). *)
let of_word_function ~n_inputs ~n_outputs f =
  let output_table k =
    Truthtable.of_fun_int ~arity:n_inputs (fun x -> (f x lsr k) land 1 = 1)
  in
  Mo_minimize.minimize_joint
    (Mo_cover.of_covers (List.init n_outputs (fun k -> Qm.minimize (output_table k))))

let rd53 () = of_word_function ~n_inputs:5 ~n_outputs:3 count_ones
let rd73 () = of_word_function ~n_inputs:7 ~n_outputs:3 count_ones
let rd84 () = of_word_function ~n_inputs:8 ~n_outputs:4 count_ones

let isqrt x =
  let rec go r = if (r + 1) * (r + 1) > x then r else go (r + 1) in
  go 0

let sqrt8 () = of_word_function ~n_inputs:8 ~n_outputs:4 isqrt

let squar5 () = of_word_function ~n_inputs:5 ~n_outputs:8 (fun x -> x * x lsr 2)

let clip () =
  let f x =
    (* x is a 9-bit two's-complement value. *)
    let signed = if x land 0x100 <> 0 then x - 0x200 else x in
    let clipped = if signed < -16 then -16 else if signed > 15 then 15 else signed in
    clipped land 0x1F
  in
  of_word_function ~n_inputs:9 ~n_outputs:5 f

let inc () = of_word_function ~n_inputs:7 ~n_outputs:9 (fun x -> (3 * x) + 1)

let parity_cover ~arity ~vars ~even =
  let vars = Array.of_list vars in
  let k = Array.length vars in
  let cube_of_pattern bits =
    let lits = Array.make arity Literal.Absent in
    Array.iteri
      (fun i v -> lits.(v) <- (if (bits lsr i) land 1 = 1 then Literal.Pos else Literal.Neg))
      vars;
    Cube.of_literals lits
  in
  let want_parity = if even then 0 else 1 in
  let patterns =
    List.filter (fun bits -> count_ones bits land 1 = want_parity) (List.init (1 lsl k) Fun.id)
  in
  Cover.create ~arity (List.map cube_of_pattern patterns)

(* t481 stand-in: AND over 8 input pairs of (x_{2i} XOR x_{2i+1}). The
   minimal SOP consists of the 2^8 full products picking one satisfying
   polarity per pair. *)
let t481 () =
  let arity = 16 in
  let cube_of_pattern bits =
    let lits = Array.make arity Literal.Absent in
    for pair = 0 to 7 do
      let first_high = (bits lsr pair) land 1 = 1 in
      lits.(2 * pair) <- (if first_high then Literal.Pos else Literal.Neg);
      lits.((2 * pair) + 1) <- (if first_high then Literal.Neg else Literal.Pos)
    done;
    Cube.of_literals lits
  in
  Mo_cover.of_single
    (Cover.create ~arity (List.map cube_of_pattern (List.init 256 Fun.id)))

let t481_negation () =
  let arity = 16 in
  let xnor_products pair =
    let equal_cube polarity =
      let lits = Array.make arity Literal.Absent in
      let lit = if polarity then Literal.Pos else Literal.Neg in
      lits.(2 * pair) <- lit;
      lits.((2 * pair) + 1) <- lit;
      Cube.of_literals lits
    in
    [ equal_cube true; equal_cube false ]
  in
  Mo_cover.of_single
    (Cover.create ~arity (List.concat_map xnor_products (List.init 8 Fun.id)))

let cordic_vars_a = List.init 10 Fun.id
let cordic_vars_b = List.init 10 (fun i -> 13 + i)

let cordic () =
  let arity = 23 in
  Mo_cover.of_covers
    [
      parity_cover ~arity ~vars:cordic_vars_a ~even:false;
      parity_cover ~arity ~vars:cordic_vars_b ~even:false;
    ]

let cordic_negation () =
  let arity = 23 in
  Mo_cover.of_covers
    [
      parity_cover ~arity ~vars:cordic_vars_a ~even:true;
      parity_cover ~arity ~vars:cordic_vars_b ~even:true;
    ]
