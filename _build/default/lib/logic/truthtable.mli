(** Explicit truth tables for small arities.

    Used by the benchmark generators (which define circuits functionally),
    as the reference semantics in tests, and for robust complementation of
    multi-output benchmarks. Bounded to arity 22 (4M entries). *)

type t

val arity : t -> int

val create : arity:int -> (bool array -> bool) -> t
(** Tabulate a predicate. @raise Invalid_argument if arity is negative or
    greater than 22. *)

val of_fun_int : arity:int -> (int -> bool) -> t
(** Tabulate from the integer encoding of the assignment: bit [i] of the
    index is variable [i]. *)

val get : t -> int -> bool
(** Value at an assignment index. @raise Invalid_argument out of range. *)

val eval : t -> bool array -> bool
(** @raise Invalid_argument on arity mismatch. *)

val index_of_assignment : bool array -> int
(** Bit [i] set iff variable [i] is true. *)

val assignment_of_index : arity:int -> int -> bool array

val minterm_indices : t -> int list
(** Indices of the ON-set, ascending. *)

val on_count : t -> int

val complement : t -> t

val equal : t -> t -> bool

val of_cover : Cover.t -> t
(** Tabulate a cover. @raise Invalid_argument if the cover's arity exceeds
    the bound. *)

val to_cover : t -> Cover.t
(** One-minterm-per-cube canonical cover of the ON-set (not minimized). *)

val random : Mcx_util.Prng.t -> arity:int -> on_bias:float -> t
(** Each entry true independently with probability [on_bias]. *)
