(** Heuristic two-level minimization (an "espresso-lite").

    Implements the classic EXPAND / IRREDUNDANT / REDUCE loop over
    {!Cover.t}, using tautology-based containment tests instead of an
    explicit off-set. This is the substitute for the two-level front of the
    paper's EDA flow: it produces the product counts P that drive the
    crossbar area model. The result is functionally equal to the input
    (property-tested) but generally not minimum. *)

val expand : Cover.t -> Cover.t
(** Raise literals of each cube to don't-care while the cube stays inside
    the function; then remove single-cube-contained cubes. *)

val irredundant : Cover.t -> Cover.t
(** Greedily drop cubes covered by the rest of the cover. *)

val reduce : Cover.t -> Cover.t
(** Shrink each cube to the smallest cube containing its essential part
    (the part not covered by other cubes), enabling the next expand to move
    out of local minima. *)

val espresso : Cover.t -> Cover.t
(** Iterate expand/irredundant/reduce until the (cube count, literal count)
    cost stops improving. *)

val espresso_dc : dc:Cover.t -> Cover.t -> Cover.t
(** Minimization with a don't-care set: cubes may expand into [dc], and
    coverage obligations falling inside [dc] are waived. The result [g]
    satisfies [ON ⊆ g ∪ DC] and [g ⊆ ON ∪ DC] (property-tested): every
    care ON-point stays covered and no OFF-point is touched. @raise
    Invalid_argument on arity mismatch. *)

val cost : Cover.t -> int * int
(** [(cubes, literals)] — the minimization objective, lexicographic. *)

val complement_minimized : Cover.t -> Cover.t
(** {!Complement.complement} followed by {!espresso} — the negated-circuit
    covers of Table I are produced this way. *)
