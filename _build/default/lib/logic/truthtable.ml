type t = { arity : int; table : Bytes.t }

let max_arity = 22

let arity t = t.arity

let check_arity n =
  if n < 0 || n > max_arity then
    invalid_arg (Printf.sprintf "Truthtable: arity %d out of [0, %d]" n max_arity)

let index_of_assignment v =
  let idx = ref 0 in
  for i = Array.length v - 1 downto 0 do
    idx := (!idx lsl 1) lor (if v.(i) then 1 else 0)
  done;
  !idx

let assignment_of_index ~arity idx = Array.init arity (fun i -> (idx lsr i) land 1 = 1)

let of_fun_int ~arity f =
  check_arity arity;
  let size = 1 lsl arity in
  let table = Bytes.create size in
  for idx = 0 to size - 1 do
    Bytes.unsafe_set table idx (if f idx then '\001' else '\000')
  done;
  { arity; table }

let create ~arity f =
  check_arity arity;
  of_fun_int ~arity (fun idx -> f (assignment_of_index ~arity idx))

let get t idx =
  if idx < 0 || idx >= Bytes.length t.table then invalid_arg "Truthtable.get: out of range";
  Bytes.unsafe_get t.table idx <> '\000'

let eval t v =
  if Array.length v <> t.arity then invalid_arg "Truthtable.eval: arity mismatch";
  get t (index_of_assignment v)

let minterm_indices t =
  let acc = ref [] in
  for idx = Bytes.length t.table - 1 downto 0 do
    if get t idx then acc := idx :: !acc
  done;
  !acc

let on_count t =
  let n = ref 0 in
  Bytes.iter (fun c -> if c <> '\000' then incr n) t.table;
  !n

let complement t =
  of_fun_int ~arity:t.arity (fun idx -> not (get t idx))

let equal a b = a.arity = b.arity && Bytes.equal a.table b.table

let of_cover f =
  create ~arity:(Cover.arity f) (fun v -> Cover.eval f v)

let to_cover t =
  let ms = List.map (assignment_of_index ~arity:t.arity) (minterm_indices t) in
  Cover.of_minterms ~arity:t.arity ms

let random prng ~arity ~on_bias =
  check_arity arity;
  of_fun_int ~arity (fun _ -> Mcx_util.Prng.bernoulli prng on_bias)
