(** Quine–McCluskey two-level minimization (exact primes, heuristic cover).

    Generates all prime implicants of a truth table exactly, then selects a
    cover using essential primes plus greedy completion. Practical up to
    roughly 12 variables; the arithmetic benchmark generators use it to get
    stable, near-minimum product counts. *)

val primes : Truthtable.t -> Cube.t list
(** All prime implicants of the ON-set. *)

val minimize : Truthtable.t -> Cover.t
(** Essential primes + greedy covering of the remaining minterms. The result
    covers exactly the ON-set (property-tested). *)
