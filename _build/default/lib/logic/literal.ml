type t = Neg | Pos | Absent

let equal a b =
  match (a, b) with
  | Neg, Neg | Pos, Pos | Absent, Absent -> true
  | (Neg | Pos | Absent), _ -> false

let rank = function Neg -> 0 | Pos -> 1 | Absent -> 2
let compare a b = Int.compare (rank a) (rank b)

let of_char = function
  | '0' -> Neg
  | '1' -> Pos
  | '-' | '2' -> Absent
  | c -> invalid_arg (Printf.sprintf "Literal.of_char: %C" c)

let to_char = function Neg -> '0' | Pos -> '1' | Absent -> '-'
let complement = function Neg -> Pos | Pos -> Neg | Absent -> Absent

let intersect a b =
  match (a, b) with
  | Absent, x | x, Absent -> Some x
  | Pos, Pos -> Some Pos
  | Neg, Neg -> Some Neg
  | Pos, Neg | Neg, Pos -> None

let covers a b =
  match (a, b) with
  | Absent, _ -> true
  | Pos, Pos | Neg, Neg -> true
  | (Pos | Neg), _ -> false

let matches l v =
  match l with Absent -> true | Pos -> v | Neg -> not v

let pp ppf l = Format.pp_print_char ppf (to_char l)
