type t = Literal.t array
(* Invariant: never mutated after construction; all exported operations copy. *)

let universe n =
  if n < 0 then invalid_arg "Cube.universe: negative arity";
  Array.make n Literal.Absent

let of_literals a = Array.copy a

let of_string s = Array.init (String.length s) (fun i -> Literal.of_char s.[i])

let to_string c = String.init (Array.length c) (fun i -> Literal.to_char c.(i))

let arity = Array.length

let get c i =
  if i < 0 || i >= Array.length c then invalid_arg "Cube.get: variable out of range";
  c.(i)

let set c i l =
  if i < 0 || i >= Array.length c then invalid_arg "Cube.set: variable out of range";
  let c' = Array.copy c in
  c'.(i) <- l;
  c'

let literals c =
  let acc = ref [] in
  for i = Array.length c - 1 downto 0 do
    if not (Literal.equal c.(i) Literal.Absent) then acc := (i, c.(i)) :: !acc
  done;
  !acc

let num_literals c =
  Array.fold_left
    (fun n l -> if Literal.equal l Literal.Absent then n else n + 1)
    0 c

let is_minterm c = num_literals c = Array.length c

let equal a b = Array.length a = Array.length b && Array.for_all2 Literal.equal a b

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else begin
    let rec go i =
      if i = la then 0
      else
        let c = Literal.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  end

let hash c = Hashtbl.hash (to_string c)

let check_arity name c v =
  if Array.length c <> Array.length v then
    invalid_arg (Printf.sprintf "Cube.%s: arity mismatch" name)

let eval c v =
  check_arity "eval" c v;
  let rec go i = i = Array.length c || (Literal.matches c.(i) v.(i) && go (i + 1)) in
  go 0

let covers a b =
  Array.length a = Array.length b
  &&
  let rec go i = i = Array.length a || (Literal.covers a.(i) b.(i) && go (i + 1)) in
  go 0

let intersect a b =
  if Array.length a <> Array.length b then invalid_arg "Cube.intersect: arity mismatch";
  let out = Array.make (Array.length a) Literal.Absent in
  let rec go i =
    if i = Array.length a then Some out
    else
      match Literal.intersect a.(i) b.(i) with
      | None -> None
      | Some l ->
        out.(i) <- l;
        go (i + 1)
  in
  go 0

let distance a b =
  if Array.length a <> Array.length b then invalid_arg "Cube.distance: arity mismatch";
  let d = ref 0 in
  for i = 0 to Array.length a - 1 do
    match (a.(i), b.(i)) with
    | Literal.Pos, Literal.Neg | Literal.Neg, Literal.Pos -> incr d
    | (Literal.Pos | Literal.Neg | Literal.Absent), _ -> ()
  done;
  !d

let supercube a b =
  if Array.length a <> Array.length b then invalid_arg "Cube.supercube: arity mismatch";
  Array.init (Array.length a) (fun i ->
      if Literal.equal a.(i) b.(i) then a.(i) else Literal.Absent)

let cofactor c ~var ~value =
  let required = if value then Literal.Pos else Literal.Neg in
  match get c var with
  | Literal.Absent -> Some (Array.copy c)
  | l when Literal.equal l required -> Some (set c var Literal.Absent)
  | Literal.Pos | Literal.Neg -> None

let complement_literals c = Array.map Literal.complement c

let merge_adjacent a b =
  if Array.length a <> Array.length b then invalid_arg "Cube.merge_adjacent: arity mismatch";
  let diff = ref None in
  let ok = ref true in
  for i = 0 to Array.length a - 1 do
    if !ok && not (Literal.equal a.(i) b.(i)) then begin
      match (a.(i), b.(i), !diff) with
      | Literal.Pos, Literal.Neg, None | Literal.Neg, Literal.Pos, None -> diff := Some i
      | _, _, _ -> ok := false
    end
  done;
  match (!ok, !diff) with
  | true, Some i -> Some (set a i Literal.Absent)
  | true, None | false, _ -> None

let sharp a b =
  if Array.length a <> Array.length b then invalid_arg "Cube.sharp: arity mismatch";
  match intersect a b with
  | None -> [ Array.copy a ]
  | Some _ ->
    (* Disjoint-sharp recurrence: walk the variables where b constrains a
       more tightly; each produces one cube of the difference, with the
       earlier variables pinned to b's values to keep the cubes disjoint. *)
    let out = ref [] in
    let pinned = Array.copy a in
    for i = 0 to Array.length a - 1 do
      (match (a.(i), b.(i)) with
      | Literal.Absent, (Literal.Pos | Literal.Neg) ->
        let piece = Array.copy pinned in
        piece.(i) <- Literal.complement b.(i);
        out := piece :: !out;
        pinned.(i) <- b.(i)
      | (Literal.Pos | Literal.Neg | Literal.Absent), _ -> ())
    done;
    List.rev !out

let minterms c =
  let n = Array.length c in
  let free = List.filter (fun i -> Literal.equal c.(i) Literal.Absent) (List.init n Fun.id) in
  let base = Array.map (function Literal.Pos -> true | Literal.Neg | Literal.Absent -> false) c in
  let rec expand vars acc =
    match vars with
    | [] -> [ Array.copy acc ]
    | v :: rest ->
      acc.(v) <- false;
      let lows = expand rest acc in
      acc.(v) <- true;
      let highs = expand rest acc in
      acc.(v) <- false;
      lows @ highs
  in
  expand free base

let pp ppf c = Format.pp_print_string ppf (to_string c)
