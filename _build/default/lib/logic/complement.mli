(** Cover complementation.

    Needed for the paper's dual optimization (§III, §IV.B: "area cost of the
    logic function and its negation is calculated") and for Table I's
    "Negation of Circuit" columns. *)

val complement : Cover.t -> Cover.t
(** Recursive-Shannon complement (unate recursive paradigm). The result is
    cleaned with single-cube containment but not fully minimized; feed it to
    [Minimize.espresso] when cube count matters (see
    [Minimize.complement_minimized]). *)
