(** Single-output sum-of-products covers.

    A cover is a disjunction of {!Cube.t} over a fixed arity. This is the
    two-level form the paper's crossbar implements directly: one horizontal
    line per cube (NAND plane) plus an output line (AND plane). *)

type t

val create : arity:int -> Cube.t list -> t
(** @raise Invalid_argument if any cube has a different arity or [arity < 0]. *)

val empty : int -> t
(** The constant-false cover over [n] variables. *)

val top : int -> t
(** The constant-true cover: a single universe cube. *)

val arity : t -> int
val cubes : t -> Cube.t list
val size : t -> int
(** Number of cubes (the paper's product count P for this output). *)

val literal_count : t -> int
(** Total literals over all cubes (NAND-plane switch count). *)

val is_empty : t -> bool

val eval : t -> bool array -> bool
(** Disjunction of cube evaluations. *)

val add_cube : t -> Cube.t -> t
val union : t -> t -> t
(** @raise Invalid_argument on arity mismatch. *)

val of_strings : string list -> t
(** Build from PLA-style rows, e.g. [["1-0"; "01-"]]. All rows must share
    one length. @raise Invalid_argument on empty list (arity unknown). *)

val to_strings : t -> string list

val of_minterms : arity:int -> bool array list -> t
(** One cube per minterm. *)

val cofactor : t -> var:int -> value:bool -> t
(** Shannon cofactor: cofactor every cube, dropping empty ones. *)

val single_cube_containment : t -> t
(** Remove every cube covered by another single cube of the cover (keeps the
    first of equal cubes). A cheap but incomplete redundancy cleanup. *)

val sharp : t -> t -> t
(** Cover difference [f # g]: a cover of exactly the minterms of [f] not
    in [g] (built from disjoint cube sharps; not minimized). Computes
    OFF-sets as [top n # f]. @raise Invalid_argument on arity mismatch. *)

val equal_semantics : t -> t -> bool
(** Exhaustive truth-table equality — exponential, for tests and small
    arities. @raise Invalid_argument on arity mismatch or arity > 22. *)

val var_occurrences : t -> int -> int * int
(** [(pos, neg)] literal occurrence counts of a variable, used to pick
    branching variables (most binate first). *)

val most_binate_var : t -> int option
(** Variable maximizing [min(pos, neg)], tie-broken by total occurrences;
    [None] when every cube is the universe cube or the cover is empty. *)

val pp : Format.formatter -> t -> unit
