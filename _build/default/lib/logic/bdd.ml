(* Hash-consed ROBDD with an ite cache. Nodes are integers indexing into
   growable arrays (struct-of-arrays keeps the unique table compact);
   node 0 = false, node 1 = true. *)

type manager = {
  n_vars : int;
  mutable var_of : int array;  (* node -> decision variable *)
  mutable low_of : int array;  (* node -> else child *)
  mutable high_of : int array;  (* node -> then child *)
  mutable n_nodes : int;
  unique : (int * int * int, int) Hashtbl.t;  (* (var, low, high) -> node *)
  ite_cache : (int * int * int, int) Hashtbl.t;
}

type t = { manager : manager; root : int }

let false_node = 0
let true_node = 1

let manager ?(cache_size = 1 lsl 14) ~n_vars () =
  if n_vars < 0 then invalid_arg "Bdd.manager: negative n_vars";
  let m =
    {
      n_vars;
      var_of = Array.make 1024 max_int;
      low_of = Array.make 1024 (-1);
      high_of = Array.make 1024 (-1);
      n_nodes = 2;
      unique = Hashtbl.create cache_size;
      ite_cache = Hashtbl.create cache_size;
    }
  in
  (* Terminals sort after every real variable. *)
  m.var_of.(false_node) <- max_int;
  m.var_of.(true_node) <- max_int;
  m

let n_vars m = m.n_vars

let grow m =
  if m.n_nodes = Array.length m.var_of then begin
    let n = 2 * m.n_nodes in
    let grow_arr a fill =
      let fresh = Array.make n fill in
      Array.blit a 0 fresh 0 m.n_nodes;
      fresh
    in
    m.var_of <- grow_arr m.var_of max_int;
    m.low_of <- grow_arr m.low_of (-1);
    m.high_of <- grow_arr m.high_of (-1)
  end

let mk m var low high =
  if low = high then low
  else begin
    let key = (var, low, high) in
    match Hashtbl.find_opt m.unique key with
    | Some node -> node
    | None ->
      grow m;
      let node = m.n_nodes in
      m.n_nodes <- node + 1;
      m.var_of.(node) <- var;
      m.low_of.(node) <- low;
      m.high_of.(node) <- high;
      Hashtbl.replace m.unique key node;
      node
  end

(* Core ite(f, g, h) = f ? g : h with standard terminal cases. *)
let rec ite_node m f g h =
  if f = true_node then g
  else if f = false_node then h
  else if g = h then g
  else if g = true_node && h = false_node then f
  else begin
    let key = (f, g, h) in
    match Hashtbl.find_opt m.ite_cache key with
    | Some node -> node
    | None ->
      let top = min m.var_of.(f) (min m.var_of.(g) m.var_of.(h)) in
      let cofactor node value =
        if m.var_of.(node) = top then if value then m.high_of.(node) else m.low_of.(node)
        else node
      in
      let high = ite_node m (cofactor f true) (cofactor g true) (cofactor h true) in
      let low = ite_node m (cofactor f false) (cofactor g false) (cofactor h false) in
      let node = mk m top low high in
      Hashtbl.replace m.ite_cache key node;
      node
  end

let bdd_true m = { manager = m; root = true_node }
let bdd_false m = { manager = m; root = false_node }

let var m i =
  if i < 0 || i >= m.n_vars then invalid_arg "Bdd.var: out of range";
  { manager = m; root = mk m i false_node true_node }

let nvar m i =
  if i < 0 || i >= m.n_vars then invalid_arg "Bdd.nvar: out of range";
  { manager = m; root = mk m i true_node false_node }

let check_same m t =
  if t.manager != m then invalid_arg "Bdd: node from a different manager"

let not_ m a =
  check_same m a;
  { manager = m; root = ite_node m a.root false_node true_node }

let and_ m a b =
  check_same m a;
  check_same m b;
  { manager = m; root = ite_node m a.root b.root false_node }

let or_ m a b =
  check_same m a;
  check_same m b;
  { manager = m; root = ite_node m a.root true_node b.root }

let xor m a b =
  check_same m a;
  check_same m b;
  let not_b = ite_node m b.root false_node true_node in
  { manager = m; root = ite_node m a.root not_b b.root }

let nand m a b = not_ m (and_ m a b)

let ite m f g h =
  check_same m f;
  check_same m g;
  check_same m h;
  { manager = m; root = ite_node m f.root g.root h.root }

let and_list m = List.fold_left (and_ m) (bdd_true m)
let or_list m = List.fold_left (or_ m) (bdd_false m)

let equal a b = a.manager == b.manager && a.root = b.root
let is_true t = t.root = true_node
let is_false t = t.root = false_node

let eval t v =
  let m = t.manager in
  if Array.length v <> m.n_vars then invalid_arg "Bdd.eval: arity mismatch";
  let rec walk node =
    if node = true_node then true
    else if node = false_node then false
    else if v.(m.var_of.(node)) then walk m.high_of.(node)
    else walk m.low_of.(node)
  in
  walk t.root

let size t =
  let m = t.manager in
  let seen = Hashtbl.create 64 in
  let rec walk node =
    if node > true_node && not (Hashtbl.mem seen node) then begin
      Hashtbl.replace seen node ();
      walk m.low_of.(node);
      walk m.high_of.(node)
    end
  in
  walk t.root;
  Hashtbl.length seen

let count_minterms m t =
  check_same m t;
  let memo = Hashtbl.create 64 in
  (* fraction of the full space satisfying the sub-function *)
  let rec density node =
    if node = true_node then 1.
    else if node = false_node then 0.
    else
      match Hashtbl.find_opt memo node with
      | Some d -> d
      | None ->
        let d = 0.5 *. (density m.low_of.(node) +. density m.high_of.(node)) in
        Hashtbl.replace memo node d;
        d
  in
  density t.root *. (2. ** float_of_int m.n_vars)

let of_cube m cube =
  if Cube.arity cube <> m.n_vars then invalid_arg "Bdd.of_cube: arity mismatch";
  (* Build bottom-up along the variable order for a linear-size result. *)
  let root = ref true_node in
  for i = m.n_vars - 1 downto 0 do
    match Cube.get cube i with
    | Literal.Pos -> root := mk m i false_node !root
    | Literal.Neg -> root := mk m i !root false_node
    | Literal.Absent -> ()
  done;
  { manager = m; root = !root }

let of_cover m f =
  if Cover.arity f <> m.n_vars then invalid_arg "Bdd.of_cover: arity mismatch";
  or_list m (List.map (of_cube m) (Cover.cubes f))

let of_mo_cover m mo =
  if Mo_cover.n_inputs mo <> m.n_vars then invalid_arg "Bdd.of_mo_cover: arity mismatch";
  Array.init (Mo_cover.n_outputs mo) (fun k -> of_cover m (Mo_cover.output_cover mo k))

let cover_equal f g =
  if Cover.arity f <> Cover.arity g then invalid_arg "Bdd.cover_equal: arity mismatch";
  let m = manager ~n_vars:(Cover.arity f) () in
  equal (of_cover m f) (of_cover m g)

let mo_cover_equal a b =
  Mo_cover.n_inputs a = Mo_cover.n_inputs b
  && Mo_cover.n_outputs a = Mo_cover.n_outputs b
  &&
  let m = manager ~n_vars:(Mo_cover.n_inputs a) () in
  let xs = of_mo_cover m a and ys = of_mo_cover m b in
  Array.for_all2 equal xs ys
