(** Random Boolean function generation for the Fig. 6 Monte Carlo study.

    The paper generates random functions, synthesizes them two-level and
    multi-level, and compares area. These generators mirror that setup:
    random SOP covers with controllable product count and literal density,
    plus a helper reproducing the paper's sweep parameters. *)

type params = {
  n_inputs : int;
  n_products : int;
  literal_probability : float;
      (** Probability that each variable appears in a cube (then sign is a
          fair coin). Cubes drawn empty are redrawn: the universe cube would
          collapse the function to constant true. *)
}

val random_cube : Mcx_util.Prng.t -> n_inputs:int -> literal_probability:float -> Cube.t
(** One non-empty random cube. *)

val random_cover : Mcx_util.Prng.t -> params -> Cover.t
(** [n_products] distinct random cubes (duplicates redrawn; gives up and
    accepts a duplicate after 100 attempts per slot to guarantee
    termination for tiny spaces). *)

val paper_params : Mcx_util.Prng.t -> n_inputs:int -> params
(** Draw the per-sample parameters used for Fig. 6: the product count is
    uniform in [n/2, 3n] (so panels show samples sorted by product count,
    with multi-level winning more often toward larger product counts) and
    the literal probability is uniform in [0.35, 0.75]. *)
