(** Joint multi-output two-level minimization.

    Per-output minimization ({!Mo_cover.minimize}) only shares products
    that happen to come out identical. The crossbar's P — its row count —
    rewards deliberate sharing: a slightly sub-optimal cube usable by two
    outputs is cheaper than two optimal ones. This module runs an
    espresso-style loop on the multi-output representation itself:

    - {e output expansion}: add an output to a row's mask whenever the cube
      is contained in that output's function;
    - {e input expansion}: raise literals while the cube stays inside
      {b every} output of its mask;
    - {e irredundancy}: drop rows whose every obligation is covered by the
      remaining rows;
    - {e make-sparse}: finally strip output connections other rows already
      provide, minimizing AND-plane switches at the settled row count.

    Semantics are preserved exactly (property-tested with BDDs). On the rd
    benchmark family this pipeline reproduces the paper's espresso product
    counts exactly (rd53: 31, rd73: 127, rd84: 255). *)

val minimize_joint : ?passes:int -> Mo_cover.t -> Mo_cover.t
(** [passes] bounds the expand/irredundant iterations (default 4; the loop
    stops early at a fixpoint of the row count). *)

val row_obligations_covered :
  Mo_cover.t -> cube:Cube.t -> output:int -> without:Cube.t list -> bool
(** [true] when [cube]'s contribution to [output] is already covered by
    the cover's other rows ([without] lists rows to exclude, typically the
    row under consideration). Exposed for tests. *)
