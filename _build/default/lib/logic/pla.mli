(** Reader/writer for the espresso PLA exchange format.

    Supports the directives used by the MCNC benchmark distributions the
    paper consumes: [.i], [.o], [.p], [.ilb], [.ob], [.type fr/f], [.e/.end],
    comments ([#]). Output-part characters: ['1'] row belongs to the
    output's ON-set, ['0'] and ['~'] to its OFF-set (not represented),
    ['-'] (or ['2']) to its don't-care set, returned separately. *)

type parsed = {
  cover : Mo_cover.t;  (** the ON-set *)
  dc : Mo_cover.t;  (** the don't-care set (empty when the file has none);
                        feed it to {!Minimize.espresso_dc} output-wise *)
  input_labels : string list option;
  output_labels : string list option;
}

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val parse_string : string -> parsed
(** @raise Parse_error on malformed input. *)

val parse_file : string -> parsed
(** @raise Parse_error and [Sys_error]. *)

val to_string : ?input_labels:string list -> ?output_labels:string list -> Mo_cover.t -> string
(** Render a cover back to PLA text, ending with [.e]. *)

val write_file : string -> ?input_labels:string list -> ?output_labels:string list -> Mo_cover.t -> unit
