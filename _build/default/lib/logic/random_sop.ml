type params = { n_inputs : int; n_products : int; literal_probability : float }

let random_cube prng ~n_inputs ~literal_probability =
  if n_inputs <= 0 then invalid_arg "Random_sop.random_cube: n_inputs <= 0";
  let draw () =
    Array.init n_inputs (fun _ ->
        if Mcx_util.Prng.bernoulli prng literal_probability then
          if Mcx_util.Prng.bool prng then Literal.Pos else Literal.Neg
        else Literal.Absent)
  in
  let rec non_empty attempts =
    let lits = draw () in
    if Array.exists (fun l -> not (Literal.equal l Literal.Absent)) lits then lits
    else if attempts > 100 then begin
      (* Force one literal to guarantee termination for tiny probabilities. *)
      lits.(Mcx_util.Prng.int prng n_inputs) <-
        (if Mcx_util.Prng.bool prng then Literal.Pos else Literal.Neg);
      lits
    end
    else non_empty (attempts + 1)
  in
  Cube.of_literals (non_empty 0)

let random_cover prng { n_inputs; n_products; literal_probability } =
  if n_products < 0 then invalid_arg "Random_sop.random_cover: negative product count";
  let seen = Hashtbl.create (2 * n_products) in
  let rec fresh_cube attempts =
    let c = random_cube prng ~n_inputs ~literal_probability in
    let key = Cube.to_string c in
    if (not (Hashtbl.mem seen key)) || attempts > 100 then begin
      Hashtbl.replace seen key ();
      c
    end
    else fresh_cube (attempts + 1)
  in
  Cover.create ~arity:n_inputs (List.init n_products (fun _ -> fresh_cube 0))

let paper_params prng ~n_inputs =
  let lo = max 2 (n_inputs / 2) and hi = 3 * n_inputs in
  (* Cube sizes stay small (about 1.5 to 3.5 literals on average) and do
     not grow with the input count. This matches the regime the paper's
     ABC study operates in: short products factor well, and because shared
     literals get rarer as the variable pool grows, the multi-level win
     rate falls with input size exactly as Fig. 6 reports. *)
  let growth = (float_of_int n_inputs /. 8.) ** 0.5 in
  let expected_literals = (1.3 +. (1.7 *. Mcx_util.Prng.float prng)) *. growth in
  {
    n_inputs;
    n_products = Mcx_util.Prng.int_in_range prng ~lo ~hi;
    literal_probability = min 0.9 (expected_literals /. float_of_int n_inputs);
  }
