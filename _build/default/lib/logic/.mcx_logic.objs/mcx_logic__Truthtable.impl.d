lib/logic/truthtable.ml: Array Bytes Cover List Mcx_util Printf
