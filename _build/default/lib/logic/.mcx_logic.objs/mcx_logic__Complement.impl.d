lib/logic/complement.ml: Cover Cube List Literal
