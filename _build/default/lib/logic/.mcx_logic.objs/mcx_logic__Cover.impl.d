lib/logic/cover.ml: Array Bool Cube Format Int List Literal Option String
