lib/logic/cube.ml: Array Format Fun Hashtbl Int List Literal Printf String
