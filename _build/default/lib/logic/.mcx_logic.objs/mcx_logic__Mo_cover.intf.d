lib/logic/mo_cover.mli: Cover Cube Format
