lib/logic/pla.ml: Array Buffer Cube Fun List Mo_cover Printf String
