lib/logic/random_sop.ml: Array Cover Cube Hashtbl List Literal Mcx_util
