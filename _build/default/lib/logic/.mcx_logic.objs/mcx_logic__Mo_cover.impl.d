lib/logic/mo_cover.ml: Array Cover Cube Format Fun Hashtbl List Minimize Qm String Truthtable
