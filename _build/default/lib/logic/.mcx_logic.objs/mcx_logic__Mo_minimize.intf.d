lib/logic/mo_minimize.mli: Cube Mo_cover
