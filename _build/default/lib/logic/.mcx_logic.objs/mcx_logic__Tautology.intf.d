lib/logic/tautology.mli: Cover Cube
