lib/logic/qm.ml: Array Cover Cube Fun Hashtbl Int List Literal Option Seq Set Truthtable
