lib/logic/minimize.ml: Array Complement Cover Cube Int List Literal Tautology
