lib/logic/complement.mli: Cover
