lib/logic/random_sop.mli: Cover Cube Mcx_util
