lib/logic/literal.mli: Format
