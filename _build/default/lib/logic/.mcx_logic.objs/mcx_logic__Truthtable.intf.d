lib/logic/truthtable.mli: Cover Mcx_util
