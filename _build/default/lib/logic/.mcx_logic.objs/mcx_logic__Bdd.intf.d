lib/logic/bdd.mli: Cover Cube Mo_cover
