lib/logic/bdd.ml: Array Cover Cube Hashtbl List Literal Mo_cover
