lib/logic/tautology.ml: Array Cover Cube List Literal
