lib/logic/cube.mli: Format Literal
