lib/logic/literal.ml: Format Int Printf
