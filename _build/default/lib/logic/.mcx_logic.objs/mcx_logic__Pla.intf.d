lib/logic/pla.mli: Mo_cover
