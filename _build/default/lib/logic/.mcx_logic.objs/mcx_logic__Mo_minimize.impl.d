lib/logic/mo_minimize.ml: Array Cover Cube Fun Int List Literal Mo_cover Tautology
