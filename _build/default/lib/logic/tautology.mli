(** Tautology checking and cover containment.

    The recursive unate-reduction + Shannon-expansion procedure from the
    espresso family. These predicates are the workhorses behind
    complementation, cube expansion and irredundant-cover extraction. *)

val check : Cover.t -> bool
(** [check f] is true iff [f] is the constant-true function. *)

val cube_covered : Cube.t -> Cover.t -> bool
(** [cube_covered c f]: every minterm of [c] is covered by [f]. Implemented
    as a tautology check of the cofactor of [f] with respect to [c].
    @raise Invalid_argument on arity mismatch. *)

val cover_covered : Cover.t -> Cover.t -> bool
(** [cover_covered f g]: f implies g (every cube of [f] is covered by [g]). *)

val equal : Cover.t -> Cover.t -> bool
(** Mutual containment — semantic equality without truth-table expansion. *)
