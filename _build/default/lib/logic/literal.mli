(** The value a cube assigns to one input variable.

    Follows the espresso PLA convention: ['1'] the positive literal appears,
    ['0'] the complemented literal appears, ['-'] the variable is absent. *)

type t = Neg | Pos | Absent

val equal : t -> t -> bool
val compare : t -> t -> int

val of_char : char -> t
(** Accepts ['0'], ['1'], ['-'] (and ['2'] as an alias for ['-'], which some
    PLA writers emit). @raise Invalid_argument otherwise. *)

val to_char : t -> char

val complement : t -> t
(** Swaps [Pos] and [Neg]; [Absent] is a fixpoint. *)

val intersect : t -> t -> t option
(** Meet in the lattice [Absent > Pos, Neg]: [None] when one side is [Pos]
    and the other [Neg] (empty intersection). *)

val covers : t -> t -> bool
(** [covers a b] is true when every assignment satisfying [b]'s constraint
    satisfies [a]'s, i.e. [a = Absent] or [a = b]. *)

val matches : t -> bool -> bool
(** [matches l v]: does variable value [v] satisfy the literal? [Absent]
    matches both values. *)

val pp : Format.formatter -> t -> unit
