type parsed = {
  cover : Mo_cover.t;
  dc : Mo_cover.t;
  input_labels : string list option;
  output_labels : string list option;
}

exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun msg -> raise (Parse_error (line, msg))) fmt

let split_words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let strip_comment s =
  match String.index_opt s '#' with
  | Some i -> String.sub s 0 i
  | None -> s

let parse_string text =
  let lines = String.split_on_char '\n' text in
  let n_inputs = ref None and n_outputs = ref None in
  let input_labels = ref None and output_labels = ref None in
  let rows = ref [] in
  let dc_rows = ref [] in
  let parse_row lineno input_part output_part =
    let ni =
      match !n_inputs with Some n -> n | None -> fail lineno "product row before .i"
    in
    let no =
      match !n_outputs with Some n -> n | None -> fail lineno "product row before .o"
    in
    if String.length input_part <> ni then
      fail lineno "input part has %d columns, expected %d" (String.length input_part) ni;
    if String.length output_part <> no then
      fail lineno "output part has %d columns, expected %d" (String.length output_part) no;
    let cube =
      try Cube.of_string input_part
      with Invalid_argument msg -> fail lineno "bad input part: %s" msg
    in
    let outputs = Array.make no false in
    let dc_outputs = Array.make no false in
    String.iteri
      (fun k ch ->
        match ch with
        | '1' | '4' -> outputs.(k) <- true
        | '-' | '2' | '3' -> dc_outputs.(k) <- true
        | '0' | '~' -> ()
        | c -> fail lineno "bad output character %C" c)
      output_part;
    if Array.exists Fun.id outputs then rows := { Mo_cover.cube; outputs } :: !rows;
    if Array.exists Fun.id dc_outputs then
      dc_rows := { Mo_cover.cube; outputs = dc_outputs } :: !dc_rows
  in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let line = String.trim (strip_comment raw) in
      if line <> "" then begin
        match split_words line with
        | ".i" :: n :: _ ->
          (match int_of_string_opt n with
          | Some v when v >= 0 -> n_inputs := Some v
          | Some _ | None -> fail lineno "bad .i argument %S" n)
        | ".o" :: n :: _ ->
          (match int_of_string_opt n with
          | Some v when v >= 0 -> n_outputs := Some v
          | Some _ | None -> fail lineno "bad .o argument %S" n)
        | ".p" :: _ -> () (* informative; we count rows ourselves *)
        | ".ilb" :: labels -> input_labels := Some labels
        | ".ob" :: labels -> output_labels := Some labels
        | ".type" :: _ -> () (* fr/f accepted; DC rows carry no '1' outputs *)
        | [ ".e" ] | [ ".end" ] -> ()
        | word :: _ when String.length word > 0 && word.[0] = '.' ->
          fail lineno "unsupported directive %S" word
        | [ input_part; output_part ] -> parse_row lineno input_part output_part
        | [ single ] ->
          (* Single-output PLAs sometimes omit the output column separator. *)
          (match !n_inputs, !n_outputs with
          | Some ni, Some 1 when String.length single = ni + 1 ->
            parse_row lineno (String.sub single 0 ni) (String.sub single ni 1)
          | _, _ -> fail lineno "malformed product row %S" single)
        | _ -> fail lineno "malformed line"
      end)
    lines;
  let ni = match !n_inputs with Some n -> n | None -> fail 0 "missing .i" in
  let no = match !n_outputs with Some n -> n | None -> fail 0 "missing .o" in
  let cover = Mo_cover.create ~n_inputs:ni ~n_outputs:no (List.rev !rows) in
  let dc = Mo_cover.create ~n_inputs:ni ~n_outputs:no (List.rev !dc_rows) in
  { cover; dc; input_labels = !input_labels; output_labels = !output_labels }

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  parse_string content

let to_string ?input_labels ?output_labels cover =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf ".i %d\n" (Mo_cover.n_inputs cover));
  Buffer.add_string buf (Printf.sprintf ".o %d\n" (Mo_cover.n_outputs cover));
  (match input_labels with
  | Some labels -> Buffer.add_string buf (".ilb " ^ String.concat " " labels ^ "\n")
  | None -> ());
  (match output_labels with
  | Some labels -> Buffer.add_string buf (".ob " ^ String.concat " " labels ^ "\n")
  | None -> ());
  Buffer.add_string buf (Printf.sprintf ".p %d\n" (Mo_cover.product_count cover));
  List.iter
    (fun { Mo_cover.cube; outputs } ->
      Buffer.add_string buf (Cube.to_string cube);
      Buffer.add_char buf ' ';
      Array.iter (fun b -> Buffer.add_char buf (if b then '1' else '0')) outputs;
      Buffer.add_char buf '\n')
    (Mo_cover.rows cover);
  Buffer.add_string buf ".e\n";
  Buffer.contents buf

let write_file path ?input_labels ?output_labels cover =
  let oc = open_out path in
  output_string oc (to_string ?input_labels ?output_labels cover);
  close_out oc
