(** Reduced ordered binary decision diagrams.

    Exhaustive truth tables cap out around 20 inputs; the wider benchmarks
    (cordic's 23 inputs, and any user PLA) still need exact equivalence
    checking, tautology tests and model counting. This is a classic
    hash-consed ROBDD package with an apply cache, using the natural
    variable order x0 < x1 < … (inputs are already homogeneous here, so no
    reordering is implemented). Canonicity makes semantic equality a
    pointer comparison. *)

type manager
(** Owns the unique-table and the apply cache. Nodes from different
    managers must not be mixed (checked). *)

type t
(** A BDD rooted at some node of a manager. *)

val manager : ?cache_size:int -> n_vars:int -> unit -> manager
(** @raise Invalid_argument if [n_vars < 0]. *)

val n_vars : manager -> int

val bdd_true : manager -> t
val bdd_false : manager -> t
val var : manager -> int -> t
(** The projection function of variable [i]. @raise Invalid_argument when
    out of range. *)

val nvar : manager -> int -> t
(** Complement of {!var}. *)

val not_ : manager -> t -> t
val and_ : manager -> t -> t -> t
val or_ : manager -> t -> t -> t
val xor : manager -> t -> t -> t
val nand : manager -> t -> t -> t
val ite : manager -> t -> t -> t -> t
(** If-then-else; all operators are memoized. *)

val and_list : manager -> t list -> t
val or_list : manager -> t list -> t

val equal : t -> t -> bool
(** Semantic equality (canonical-node identity). *)

val is_true : t -> bool
val is_false : t -> bool

val eval : t -> bool array -> bool
(** @raise Invalid_argument on arity mismatch. *)

val size : t -> int
(** Number of distinct internal nodes reachable from the root. *)

val count_minterms : manager -> t -> float
(** Number of satisfying assignments over all [n_vars] variables (float:
    may exceed [max_int] for wide managers). *)

val of_cube : manager -> Cube.t -> t
(** @raise Invalid_argument if the cube's arity differs from [n_vars]. *)

val of_cover : manager -> Cover.t -> t
val of_mo_cover : manager -> Mo_cover.t -> t array
(** One BDD per output. *)

val cover_equal : Cover.t -> Cover.t -> bool
(** Convenience: build a manager and compare two covers semantically —
    works far beyond truth-table range. @raise Invalid_argument on arity
    mismatch. *)

val mo_cover_equal : Mo_cover.t -> Mo_cover.t -> bool
(** Output-wise {!cover_equal}. *)
