type programming = Active | Disabled

type defect = Functional | Stuck_open | Stuck_closed

let logic_of_resistance_high = true

let store d v =
  match d with Functional -> v | Stuck_open -> true | Stuck_closed -> false

let reset_value d = store d true

let defect_equal a b =
  match (a, b) with
  | Functional, Functional | Stuck_open, Stuck_open | Stuck_closed, Stuck_closed -> true
  | (Functional | Stuck_open | Stuck_closed), _ -> false

let pp_defect ppf = function
  | Functional -> Format.pp_print_string ppf "ok"
  | Stuck_open -> Format.pp_print_string ppf "open"
  | Stuck_closed -> Format.pp_print_string ppf "closed"

let pp_programming ppf = function
  | Active -> Format.pp_print_string ppf "active"
  | Disabled -> Format.pp_print_string ppf "disabled"
