lib/crossbar/defect_map.ml: Bytes Format Fun Junction List Mcx_util Printf
