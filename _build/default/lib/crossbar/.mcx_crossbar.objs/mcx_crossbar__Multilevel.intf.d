lib/crossbar/multilevel.mli: Defect_map Mcx_logic Mcx_netlist Mcx_util
