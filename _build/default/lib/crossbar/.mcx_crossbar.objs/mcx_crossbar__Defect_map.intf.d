lib/crossbar/defect_map.mli: Format Junction Mcx_util
