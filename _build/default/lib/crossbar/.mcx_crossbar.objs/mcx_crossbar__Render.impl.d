lib/crossbar/render.ml: Array Bmatrix Buffer Defect_map Function_matrix Geometry Junction Layout Mcx_netlist Mcx_util Multilevel Printf String
