lib/crossbar/geometry.ml: Format Mcx_logic
