lib/crossbar/analog.mli:
