lib/crossbar/sim.mli: Defect_map Layout Mcx_util
