lib/crossbar/geometry.mli: Format Mcx_logic
