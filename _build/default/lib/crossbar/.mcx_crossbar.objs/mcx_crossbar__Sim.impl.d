lib/crossbar/sim.ml: Array Bmatrix Defect_map Function_matrix Geometry Junction Layout List Mcx_logic Mcx_util Mo_cover
