lib/crossbar/layout.ml: Array Bmatrix Defect_map Fun Function_matrix Geometry Hashtbl Junction List Mcx_util Option Printf
