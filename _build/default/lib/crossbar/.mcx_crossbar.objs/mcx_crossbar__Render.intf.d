lib/crossbar/render.mli: Defect_map Layout Multilevel
