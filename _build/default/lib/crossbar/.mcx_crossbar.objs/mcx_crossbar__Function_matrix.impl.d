lib/crossbar/function_matrix.ml: Array Cube Format Fun Geometry List Mcx_logic Mcx_util Mo_cover
