lib/crossbar/cost.mli: Mcx_logic Mcx_netlist
