lib/crossbar/multilevel.ml: Array Bmatrix Defect_map Fun Hashtbl Junction List Mcx_logic Mcx_netlist Mcx_util Network Option Signal Tech_map
