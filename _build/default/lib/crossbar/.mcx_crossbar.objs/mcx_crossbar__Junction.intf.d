lib/crossbar/junction.mli: Format
