lib/crossbar/analog.ml: Bool Float Fun List
