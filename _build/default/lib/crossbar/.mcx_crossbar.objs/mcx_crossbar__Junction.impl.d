lib/crossbar/junction.ml: Format
