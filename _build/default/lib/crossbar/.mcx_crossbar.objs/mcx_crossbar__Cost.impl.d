lib/crossbar/cost.ml: Array Function_matrix Geometry Mcx_logic Mcx_netlist Mo_cover
