lib/crossbar/function_matrix.mli: Format Geometry Mcx_logic Mcx_util
