lib/crossbar/layout.mli: Defect_map Function_matrix Mcx_logic Mcx_util
