(** The paper's area and inclusion-ratio cost models.

    Calibrated against every number the paper prints (see DESIGN.md §2):
    - two-level area  A2 = (P + O) x (2I + 2O), plus one latch row in the
      Fig. 3 walk-through variant;
    - multi-level area Am = (G + 1) x (2I + C + 2O) for a NAND network with
      G gates of which C feed other gates;
    - IR = required switches / area. *)

type report = {
  rows : int;
  cols : int;
  area : int;
  switches : int;
  inclusion_ratio : float;  (** in percent, as the paper prints it *)
}

val two_level_area :
  ?include_il_row:bool -> n_inputs:int -> n_outputs:int -> n_products:int -> unit -> int
(** Closed-form area. @raise Invalid_argument on negative counts. *)

val two_level : ?include_il_row:bool -> Mcx_logic.Mo_cover.t -> report
(** Full report for a cover: the Fig. 3 example yields area 126, 31
    switches, IR ~25% with [include_il_row:true]. *)

val multi_level : Mcx_netlist.Tech_map.mapped -> report
(** Full report for a mapped NAND network: the Fig. 5 example yields a
    3 x 19 crossbar. *)

val multi_level_area : Mcx_netlist.Tech_map.mapped -> int

val dual_choice :
  ?include_il_row:bool -> Mcx_logic.Mo_cover.t -> Mcx_logic.Mo_cover.t * report * bool
(** The paper's dual optimization: cost the cover and its output-wise
    complement, return the cheaper cover, its report, and whether the dual
    (negated) implementation was chosen. *)

(** {2 Latency and energy}

    The multi-level design buys its area with time: §III evaluates gates
    "one-by-one" (an extra CFM/EVM/CR triple per gate) where the two-level
    design computes every product simultaneously in a fixed 7-state
    sequence. The write-energy model counts memristor state writes per
    computation (INA reset of the whole array, value copies into the NAND
    plane, result writes into the AND plane / connection columns, and the
    output inversions); reads are assumed free. *)

val two_level_steps : int
(** 7: INA, RI, CFM, EVM, EVR, INR, SO (Fig. 2b). *)

val multi_level_steps : ?level_parallel:bool -> Mcx_netlist.Tech_map.mapped -> int
(** [3G + 4] for one-by-one evaluation as in Fig. 4(b); with
    [level_parallel:true], the lower bound where independent gates of one
    level fire together: [3 * levels + 4]. *)

val two_level_writes : ?include_il_row:bool -> Mcx_logic.Mo_cover.t -> int
(** Writes per computation: area (INA) + latched literals + AND-plane
    results + output inversions. Cross-validated against the instrumented
    simulator ({!Sim.run_counting}) in the test suite. *)

val multi_level_writes : Mcx_netlist.Tech_map.mapped -> int
(** Writes per computation of the multi-level design: area (INA) + gate
    fan-in copies + connection/output result copies + latch writes. *)
