type params = {
  r_on : float;
  r_off : float;
  r_pullup : float;
  v_dd : float;
  v_threshold : float;
}

let default_params =
  { r_on = 1e4; r_off = 1e7; r_pullup = 3e4; v_dd = 1.0; v_threshold = 0.5 }

let line_voltage ?(params = default_params) values =
  match values with
  | [] -> params.v_dd
  | _ ->
    let conductance =
      List.fold_left
        (fun g v -> g +. (1. /. if v then params.r_off else params.r_on))
        0. values
    in
    let r_down = 1. /. conductance in
    params.v_dd *. r_down /. (params.r_pullup +. r_down)

let sensed_conjunction ?(params = default_params) values =
  line_voltage ~params values > params.v_threshold

let sense_margin ?(params = default_params) ~width () =
  if width <= 0 then invalid_arg "Analog.sense_margin: width <= 0";
  let all_off = List.init width (fun _ -> true) in
  let one_on = false :: List.init (width - 1) (fun _ -> true) in
  let high_margin = line_voltage ~params all_off -. params.v_threshold in
  let low_margin = params.v_threshold -. line_voltage ~params one_on in
  Float.min high_margin low_margin

let max_reliable_width ?(params = default_params) ?(margin = 0.05) () =
  let rec grow width =
    if sense_margin ~params ~width:(width + 1) () >= margin then grow (width + 1) else width
  in
  if sense_margin ~params ~width:1 () < margin then 0 else grow 1

let matches_functional ?(params = default_params) ~width () =
  let ideal values = List.for_all Fun.id values in
  let codes =
    [
      List.init width (fun _ -> true);
      List.init width (fun _ -> false);
      List.init width (fun i -> i mod 2 = 0);
      List.init width (fun i -> i <> 0);
      List.init width (fun i -> i <> width - 1);
      (false :: List.init (width - 1) (fun _ -> true));
    ]
  in
  List.for_all
    (fun code -> Bool.equal (sensed_conjunction ~params code) (ideal code))
    codes
