(** Two-level crossbar geometry: which line carries what.

    Columns follow Fig. 3 of the paper: the positive input literals
    x1..xn, the complemented literals x1'..xn', then per output the result
    pair (Ok, Ok'). Rows are an optional input-latch row, one row per
    product, and one row per output (the paper's Table I/II area model
    counts P + O rows; the Fig. 3 walk-through additionally counts the
    latch row). *)

type column_role =
  | Input_pos of int  (** column carrying variable [i] *)
  | Input_neg of int  (** column carrying the complement of variable [i] *)
  | Output_main of int  (** column on which output [k] is produced *)
  | Output_comp of int  (** column carrying output [k]'s complement (the
                            AND-plane result before inversion) *)

type row_role =
  | Input_latch
  | Product of int  (** NAND-plane row of product [p] *)
  | Output_row of int  (** AND-plane/latch row of output [k] *)

type t

val create :
  ?include_il_row:bool -> n_inputs:int -> n_outputs:int -> n_products:int -> unit -> t
(** [include_il_row] defaults to [false] (the benchmark-table model).
    @raise Invalid_argument on negative counts. *)

val n_inputs : t -> int
val n_outputs : t -> int
val n_products : t -> int
val includes_il_row : t -> bool

val rows : t -> int
val cols : t -> int
val area : t -> int

val column_role : t -> int -> column_role
val row_role : t -> int -> row_role
val column_of_role : t -> column_role -> int
val row_of_role : t -> row_role -> int
(** Role/index translations. @raise Invalid_argument for out-of-range
    indices or roles that do not exist in this geometry. *)

val column_of_literal : t -> var:int -> Mcx_logic.Literal.t -> int
(** The column a cube literal is wired to. @raise Invalid_argument on
    [Absent]. *)

val pp : Format.formatter -> t -> unit
