open Mcx_util

type t = {
  fm : Function_matrix.t;
  physical_rows : int;
  physical_cols : int;
  row_assignment : int array;
  col_assignment : int array;
  program : Bmatrix.t;
}

let check_assignment name assignment ~expected_length ~bound =
  if Array.length assignment <> expected_length then
    invalid_arg (Printf.sprintf "Layout.place: %s has length %d, expected %d" name
                   (Array.length assignment) expected_length);
  let seen = Hashtbl.create expected_length in
  Array.iter
    (fun v ->
      if v < 0 || v >= bound then
        invalid_arg (Printf.sprintf "Layout.place: %s target %d out of range" name v);
      if Hashtbl.mem seen v then
        invalid_arg (Printf.sprintf "Layout.place: %s maps two lines to %d" name v);
      Hashtbl.replace seen v ())
    assignment

let place ?row_assignment ?col_assignment ?physical_rows ?physical_cols fm =
  let geometry = fm.Function_matrix.geometry in
  let fm_rows = Geometry.rows geometry and fm_cols = Geometry.cols geometry in
  let physical_rows = Option.value physical_rows ~default:fm_rows in
  let physical_cols = Option.value physical_cols ~default:fm_cols in
  if physical_rows < fm_rows || physical_cols < fm_cols then
    invalid_arg "Layout.place: physical grid smaller than the function matrix";
  let row_assignment =
    Option.value row_assignment ~default:(Array.init fm_rows Fun.id)
  in
  let col_assignment =
    Option.value col_assignment ~default:(Array.init fm_cols Fun.id)
  in
  check_assignment "row assignment" row_assignment ~expected_length:fm_rows
    ~bound:physical_rows;
  check_assignment "column assignment" col_assignment ~expected_length:fm_cols
    ~bound:physical_cols;
  let program = Bmatrix.create ~rows:physical_rows ~cols:physical_cols false in
  for i = 0 to fm_rows - 1 do
    for j = 0 to fm_cols - 1 do
      if Bmatrix.get fm.Function_matrix.matrix i j then
        Bmatrix.set program row_assignment.(i) col_assignment.(j) true
    done
  done;
  { fm; physical_rows; physical_cols; row_assignment; col_assignment; program }

let of_cover ?include_il_row cover =
  place (Function_matrix.build ?include_il_row cover)

let physical_row_of_fm_row t i =
  if i < 0 || i >= Array.length t.row_assignment then
    invalid_arg "Layout.physical_row_of_fm_row";
  t.row_assignment.(i)

let physical_col_of_fm_col t j =
  if j < 0 || j >= Array.length t.col_assignment then
    invalid_arg "Layout.physical_col_of_fm_col";
  t.col_assignment.(j)

let respects t defects =
  if Defect_map.rows defects <> t.physical_rows || Defect_map.cols defects <> t.physical_cols
  then invalid_arg "Layout.respects: defect map dimension mismatch";
  (* Stuck-closed anywhere in the used submatrix poisons a used line; spare
     (unused) lines are assumed to be biased neutral by the controller, so
     their junctions do not matter. *)
  let used_rows = Array.to_list t.row_assignment in
  let used_cols = Array.to_list t.col_assignment in
  let lines_clean =
    List.for_all
      (fun r ->
        List.for_all
          (fun c ->
            not (Junction.defect_equal (Defect_map.get defects r c) Junction.Stuck_closed))
          used_cols)
      used_rows
  in
  lines_clean
  && Bmatrix.fold
       (fun i j required ok ->
         ok
         && ((not required)
            || Junction.defect_equal
                 (Defect_map.get defects t.row_assignment.(i) t.col_assignment.(j))
                 Junction.Functional))
       t.fm.Function_matrix.matrix true
