(** Cycle-accurate functional simulation of the two-level crossbar.

    Executes the seven-state computation of Fig. 2(b) — INA, RI, CFM, EVM,
    EVR, INR, SO — on a placed design, junction by junction, under the
    Snider convention (R_ON = 0, R_OFF = 1) and the defect semantics of
    §IV.A: stuck-open junctions always read 1 (like disabled ones),
    stuck-closed junctions always read 0 and therefore force any NAND row
    they touch to 1 and any AND column to 0.

    This simulator is the ground truth the mapping algorithms are verified
    against: a valid defect-tolerant placement must make [run] agree with
    the reference cover on every input. *)

type step = INA | RI | CFM | EVM | EVR | INR | SO

val step_sequence : step list
(** The fixed state order of one computation. *)

val run : ?defects:Defect_map.t -> Layout.t -> bool array -> bool array
(** Compute all outputs for one input assignment. [defects] defaults to an
    all-functional map. @raise Invalid_argument on arity or dimension
    mismatch. *)

val run_counting : ?defects:Defect_map.t -> Layout.t -> bool array -> bool array * int
(** Like {!run} but also reports the number of memristor write events of
    the computation (the energy proxy of {!Cost.two_level_writes}; the two
    agree by construction and by test). *)

val run_with_upsets :
  ?defects:Defect_map.t ->
  prng:Mcx_util.Prng.t ->
  upset_rate:float ->
  Layout.t ->
  bool array ->
  bool array
(** Transient-fault simulation: each memristor write independently stores
    the complemented value with probability [upset_rate] (a write upset).
    Permanent defects compose with upsets; stuck junctions are immune
    since their state cannot change. *)

val run_exhaustive :
  ?defects:Defect_map.t -> Layout.t -> (bool array * bool array * bool array) list
(** For arities <= 16: every assignment with the simulated and reference
    outputs, as [(input, simulated, reference)] triples. *)

val agrees_with_reference : ?defects:Defect_map.t -> Layout.t -> bool
(** [run] equals the cover's semantics on all assignments (arity <= 16). *)
