(** Analog model of wired evaluation on a crossbar line.

    The functional simulator treats a horizontal line's evaluation as an
    ideal Boolean NAND. Electrically (Snider [6], Xie [7]), the line is a
    resistive divider: a pull-up resistor against the parallel combination
    of the junction memristances, each R_ON (logic 0) or R_OFF (logic 1).
    The line voltage is

      V_row = V_dd * R_down / (R_up + R_down),
      R_down = (sum_j 1/R(v_j))^-1

    and the sensed logic value is a threshold comparison. The divider
    explains the paper's related-work concern ([9], [10]) that crossbar
    width is limited: with w junctions all at R_OFF, R_down = R_OFF / w
    shrinks with w, dragging the "all ones" voltage toward the threshold
    until the sense margin vanishes. This module computes line voltages,
    sense margins and the maximum reliable line width, and the test suite
    pins the functional simulator to the analog model inside that width. *)

type params = {
  r_on : float;  (** low-resistance (logic 0) memristance, ohms *)
  r_off : float;  (** high-resistance (logic 1) memristance, ohms *)
  r_pullup : float;  (** the line's pull-up resistor, ohms *)
  v_dd : float;  (** drive voltage, volts *)
  v_threshold : float;  (** sense threshold, volts *)
}

val default_params : params
(** R_ON = 10 kOhm, R_OFF = 10 MOhm (a typical 1000x HfOx window),
    pull-up 30 kOhm (a few x R_ON: it must exceed R_ON to sense a single
    closed junction low yet stay far below R_OFF / width to sense the
    all-open code high), V_dd = 1 V, threshold at V_dd / 2. These defaults
    sustain lines a couple of hundred junctions wide — enough for every
    Table II benchmark (exp5's 142 columns is the widest). *)

val line_voltage : ?params:params -> bool list -> float
(** Voltage of a line whose junctions hold the given logic values ([true]
    = R_OFF). The empty line floats at [v_dd]. *)

val sensed_conjunction : ?params:params -> bool list -> bool
(** The thresholded line value: [true] iff [line_voltage > v_threshold] —
    electrically this senses the conjunction of the stored values, whose
    complement is the row's NAND result. *)

val sense_margin : ?params:params -> width:int -> unit -> float
(** Worst-case distance (volts) between the threshold and the line voltage
    over the two critical codes on a [width]-junction line: all-R_OFF
    (must sense high) and one-R_ON (must sense low). Negative when the
    line can mis-sense. @raise Invalid_argument if [width <= 0]. *)

val max_reliable_width : ?params:params -> ?margin:float -> unit -> int
(** Largest width whose {!sense_margin} stays above [margin] (default
    0.05 V): the electrical bound on how many vertical lines one
    horizontal line may cross — the limit Table II's big benchmarks
    (alu4: 44 columns) must respect. *)

val matches_functional : ?params:params -> width:int -> unit -> bool
(** Exhaustiveness is impossible, so this checks the two critical codes
    plus alternating patterns: the analog sense equals the ideal
    conjunction for every checked code at this width. *)
