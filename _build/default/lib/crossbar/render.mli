(** ASCII rendering of programmed crossbars — the textual analogue of the
    paper's Fig. 3/5/7 diagrams, with defects overlaid.

    Glyphs: [#] an active (programmed) switch, [.] a disabled junction,
    [o] stuck-open, [O] stuck-open under an active switch (a mapping
    violation), [x]/[X] likewise for stuck-closed. Column headers name the
    line roles (x1.., x1'.., O1, O1', …); row labels name the product or
    output each physical line hosts. *)

val two_level : ?defects:Defect_map.t -> Layout.t -> string
(** Render a placed two-level design. @raise Invalid_argument on defect
    map dimension mismatch. *)

val multi_level : ?defects:Defect_map.t -> Multilevel.t -> string
(** Render a multi-level design; connection columns are headed c0, c1, … *)
