open Mcx_logic

type report = {
  rows : int;
  cols : int;
  area : int;
  switches : int;
  inclusion_ratio : float;
}

let ratio ~switches ~area =
  if area = 0 then 0. else 100. *. float_of_int switches /. float_of_int area

let two_level_area ?(include_il_row = false) ~n_inputs ~n_outputs ~n_products () =
  Geometry.area (Geometry.create ~include_il_row ~n_inputs ~n_outputs ~n_products ())

let two_level ?(include_il_row = false) cover =
  let fm = Function_matrix.build ~include_il_row cover in
  let geometry = fm.Function_matrix.geometry in
  let rows = Geometry.rows geometry and cols = Geometry.cols geometry in
  let area = rows * cols in
  let switches = Function_matrix.switch_count fm in
  { rows; cols; area; switches; inclusion_ratio = ratio ~switches ~area }

let multi_level (mapped : Mcx_netlist.Tech_map.mapped) =
  let net = mapped.Mcx_netlist.Tech_map.network in
  let gates = Mcx_netlist.Network.gate_count net in
  let connections = Mcx_netlist.Network.inner_connection_count net in
  let n_inputs = Mcx_netlist.Network.n_inputs net in
  let n_outputs = Array.length mapped.Mcx_netlist.Tech_map.negated in
  let rows = gates + 1 in
  let cols = (2 * n_inputs) + connections + (2 * n_outputs) in
  let area = rows * cols in
  (* Switches: every gate fan-in, each inner gate's write junction on its
     connection column, the output write junctions, and the latch row's
     result pair per output. *)
  let switches =
    Mcx_netlist.Network.total_fanin net + connections + n_outputs + (2 * n_outputs)
  in
  { rows; cols; area; switches; inclusion_ratio = ratio ~switches ~area }

let multi_level_area mapped = (multi_level mapped).area

let two_level_steps = 7

let multi_level_steps ?(level_parallel = false) (mapped : Mcx_netlist.Tech_map.mapped) =
  let net = mapped.Mcx_netlist.Tech_map.network in
  let rounds =
    if level_parallel then Mcx_netlist.Network.levels net
    else Mcx_netlist.Network.gate_count net
  in
  (3 * rounds) + 4

let two_level_writes ?(include_il_row = false) cover =
  let report = two_level ~include_il_row cover in
  let latch = if include_il_row then 2 * Mo_cover.n_inputs cover else 0 in
  report.area + latch + Mo_cover.literal_count cover + Mo_cover.connection_count cover
  + Mo_cover.n_outputs cover

let multi_level_writes (mapped : Mcx_netlist.Tech_map.mapped) =
  let net = mapped.Mcx_netlist.Tech_map.network in
  let report = multi_level mapped in
  report.area
  + Mcx_netlist.Network.total_fanin net
  + Mcx_netlist.Network.inner_connection_count net
  + (2 * Array.length mapped.Mcx_netlist.Tech_map.negated)

let dual_choice ?(include_il_row = false) cover =
  let direct = two_level ~include_il_row cover in
  let negated = Mo_cover.complement cover in
  let dual = two_level ~include_il_row negated in
  if dual.area < direct.area then (negated, dual, true) else (cover, direct, false)
