open Mcx_logic

type t = {
  geometry : Geometry.t;
  matrix : Mcx_util.Bmatrix.t;
  cover : Mo_cover.t;
}

let build ?(include_il_row = false) cover =
  let n_inputs = Mo_cover.n_inputs cover in
  let n_outputs = Mo_cover.n_outputs cover in
  let n_products = Mo_cover.product_count cover in
  let geometry = Geometry.create ~include_il_row ~n_inputs ~n_outputs ~n_products () in
  let matrix =
    Mcx_util.Bmatrix.create ~rows:(Geometry.rows geometry) ~cols:(Geometry.cols geometry) false
  in
  let set_role row role = Mcx_util.Bmatrix.set matrix row (Geometry.column_of_role geometry role) true in
  if include_il_row then begin
    let il = Geometry.row_of_role geometry Geometry.Input_latch in
    for i = 0 to n_inputs - 1 do
      set_role il (Geometry.Input_pos i);
      set_role il (Geometry.Input_neg i)
    done
  end;
  List.iteri
    (fun p { Mo_cover.cube; outputs } ->
      let row = Geometry.row_of_role geometry (Geometry.Product p) in
      List.iter
        (fun (var, lit) ->
          Mcx_util.Bmatrix.set matrix row (Geometry.column_of_literal geometry ~var lit) true)
        (Cube.literals cube);
      Array.iteri (fun k member -> if member then set_role row (Geometry.Output_comp k)) outputs)
    (Mo_cover.rows cover);
  for k = 0 to n_outputs - 1 do
    let row = Geometry.row_of_role geometry (Geometry.Output_row k) in
    set_role row (Geometry.Output_comp k);
    set_role row (Geometry.Output_main k)
  done;
  { geometry; matrix; cover }

let minterm_row_indices t =
  List.filter_map
    (fun i ->
      match Geometry.row_role t.geometry i with
      | Geometry.Product _ -> Some i
      | Geometry.Input_latch | Geometry.Output_row _ -> None)
    (List.init (Geometry.rows t.geometry) Fun.id)

let output_row_indices t =
  List.filter_map
    (fun i ->
      match Geometry.row_role t.geometry i with
      | Geometry.Output_row _ -> Some i
      | Geometry.Input_latch | Geometry.Product _ -> None)
    (List.init (Geometry.rows t.geometry) Fun.id)

let switch_count t = Mcx_util.Bmatrix.count t.matrix

let pp ppf t =
  Format.fprintf ppf "%a@.%a" Geometry.pp t.geometry (Mcx_util.Bmatrix.pp ?one:None ?zero:None)
    t.matrix
