open Mcx_logic
open Mcx_util

type step = INA | RI | CFM | EVM | EVR | INR | SO

let step_sequence = [ INA; RI; CFM; EVM; EVR; INR; SO ]

(* The simulation keeps the full junction-value grid [values] (true =
   R_OFF = logic 1). Only the states that move data touch it; the defect
   override is applied on every write through [Junction.store]. *)

let run_impl ?defects ?upset layout inputs =
  let fm = layout.Layout.fm in
  let geometry = fm.Function_matrix.geometry in
  let cover = fm.Function_matrix.cover in
  if Array.length inputs <> Geometry.n_inputs geometry then
    invalid_arg "Sim.run: input arity mismatch";
  let rows = layout.Layout.physical_rows and cols = layout.Layout.physical_cols in
  let defects =
    match defects with
    | Some d ->
      if Defect_map.rows d <> rows || Defect_map.cols d <> cols then
        invalid_arg "Sim.run: defect map dimension mismatch";
      d
    | None -> Defect_map.create ~rows ~cols
  in
  let values = Array.make_matrix rows cols true in
  let writes = ref 0 in
  (* A transient upset corrupts the value being stored; stuck junctions
     are immune (their state cannot change at all). *)
  let corrupt v =
    match upset with Some hit when hit () -> not v | Some _ | None -> v
  in
  let write r c v =
    incr writes;
    values.(r).(c) <- Junction.store (Defect_map.get defects r c) (corrupt v)
  in
  let programmed r c = Bmatrix.get layout.Layout.program r c in
  let prow role = layout.Layout.row_assignment.(Geometry.row_of_role geometry role) in
  let pcol role = layout.Layout.col_assignment.(Geometry.column_of_role geometry role) in
  let column_value_of_role = function
    | Geometry.Input_pos i -> Some inputs.(i)
    | Geometry.Input_neg i -> Some (not inputs.(i))
    | Geometry.Output_main _ | Geometry.Output_comp _ -> None
  in
  let n_outputs = Geometry.n_outputs geometry in
  let outputs = Array.make n_outputs false in
  (* Spare (unassigned) lines are isolated by the controller; evaluation
     aggregates only junctions at used-row x used-column crossings. *)
  let used_cols = Array.to_list layout.Layout.col_assignment in
  let used_rows = Array.to_list layout.Layout.row_assignment in
  let row_nand r =
    (* A horizontal line evaluates the NAND of every junction it crosses:
       disabled/stuck-open junctions hold 1 and are neutral; a stuck-closed
       junction holds 0 and forces the result to 1 (§IV.A). *)
    not (List.for_all (fun c -> values.(r).(c)) used_cols)
  in
  let col_and c = List.for_all (fun r -> values.(r).(c)) used_rows in
  let execute = function
    | INA ->
      for r = 0 to rows - 1 do
        for c = 0 to cols - 1 do
          write r c true (* INA drives every junction to R_OFF *)
        done
      done
    | RI ->
      (* Inputs reach the latch; when the layout material-izes the IL row,
         its junctions record the literal values. *)
      if Geometry.includes_il_row geometry then begin
        let il = prow Geometry.Input_latch in
        for j = 0 to Geometry.cols geometry - 1 do
          match column_value_of_role (Geometry.column_role geometry j) with
          | Some v ->
            if programmed il layout.Layout.col_assignment.(j) then
              write il layout.Layout.col_assignment.(j) v
          | None -> ()
        done
      end
    | CFM ->
      (* Copy each literal value into the NAND-plane junctions of every
         product row, simultaneously. *)
      List.iteri
        (fun p _ ->
          let r = prow (Geometry.Product p) in
          for j = 0 to Geometry.cols geometry - 1 do
            let c = layout.Layout.col_assignment.(j) in
            match column_value_of_role (Geometry.column_role geometry j) with
            | Some v -> if programmed r c then write r c v
            | None -> ()
          done)
        (Mo_cover.rows cover)
    | EVM ->
      (* Evaluate every product row and write the result into its AND-plane
         junctions. *)
      List.iteri
        (fun p row_def ->
          let r = prow (Geometry.Product p) in
          let result = row_nand r in
          Array.iteri
            (fun k member ->
              if member then begin
                let c = pcol (Geometry.Output_comp k) in
                if programmed r c then write r c result
              end)
            row_def.Mo_cover.outputs)
        (Mo_cover.rows cover)
    | EVR ->
      (* Each complement column ANDs the stored product results. *)
      for k = 0 to n_outputs - 1 do
        outputs.(k) <- col_and (pcol (Geometry.Output_comp k))
        (* currently holds the complement *)
      done
    | INR ->
      (* Invert the complement onto the main output column via the output
         row's junction. *)
      for k = 0 to n_outputs - 1 do
        let r = prow (Geometry.Output_row k) in
        let c = pcol (Geometry.Output_main k) in
        if programmed r c then write r c (not outputs.(k))
      done
    | SO ->
      (* The main output column delivers the latched result: the AND of the
         column, whose only informative junction is the output row's. *)
      for k = 0 to n_outputs - 1 do
        outputs.(k) <- col_and (pcol (Geometry.Output_main k))
      done
  in
  List.iter execute step_sequence;
  (outputs, !writes)

let run_counting ?defects layout inputs = run_impl ?defects layout inputs

let run ?defects layout inputs = fst (run_impl ?defects layout inputs)

let run_with_upsets ?defects ~prng ~upset_rate layout inputs =
  fst
    (run_impl ?defects
       ~upset:(fun () -> Mcx_util.Prng.bernoulli prng upset_rate)
       layout inputs)

let run_exhaustive ?defects layout =
  let geometry = layout.Layout.fm.Function_matrix.geometry in
  let cover = layout.Layout.fm.Function_matrix.cover in
  let n = Geometry.n_inputs geometry in
  if n > 16 then invalid_arg "Sim.run_exhaustive: arity too large";
  List.init (1 lsl n) (fun idx ->
      let v = Array.init n (fun i -> (idx lsr i) land 1 = 1) in
      (v, run ?defects layout v, Mo_cover.eval cover v))

let agrees_with_reference ?defects layout =
  List.for_all (fun (_, simulated, reference) -> simulated = reference)
    (run_exhaustive ?defects layout)
