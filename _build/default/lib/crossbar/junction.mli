(** Crosspoint (memristor junction) modelling.

    Snider Boolean logic polarity is used throughout: the low-resistance
    state R_ON encodes logic 0 and the high-resistance state R_OFF encodes
    logic 1, so an untouched (initialized or disabled) junction reads as
    logic 1 and is neutral for the wired-NAND/AND evaluations. *)

type programming = Active | Disabled
(** Design intent for a junction: [Active] junctions may switch and store a
    value; [Disabled] junctions are programmed to stay at R_OFF. *)

type defect =
  | Functional
  | Stuck_open  (** permanently R_OFF (logic 1): behaves like [Disabled] *)
  | Stuck_closed  (** permanently R_ON (logic 0): poisons its row and column *)

val logic_of_resistance_high : bool
(** [true]: R_OFF is logic 1 in the Snider convention — exposed so tests can
    assert the convention rather than bake it in twice. *)

val store : defect -> bool -> bool
(** [store d v] is the value actually retained by a junction with defect
    status [d] after writing [v]: functional junctions keep [v], stuck-open
    junctions always read 1, stuck-closed always read 0. *)

val reset_value : defect -> bool
(** Junction value right after the INA (initialize-all) state. *)

val defect_equal : defect -> defect -> bool
val pp_defect : Format.formatter -> defect -> unit
val pp_programming : Format.formatter -> programming -> unit
