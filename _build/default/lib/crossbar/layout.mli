(** A two-level design placed on a physical crossbar.

    Separates the logical function matrix from physics: a row assignment
    maps each FM row to a physical horizontal line (the identity on a
    pristine optimum-size crossbar; a permutation chosen by the mapping
    algorithms on a defective one; an injection into a larger line set when
    spare rows are provisioned). Columns may likewise be re-targeted for
    the redundancy extension. *)

type t = {
  fm : Function_matrix.t;
  physical_rows : int;
  physical_cols : int;
  row_assignment : int array;  (** FM row index -> physical row *)
  col_assignment : int array;  (** FM column index -> physical column *)
  program : Mcx_util.Bmatrix.t;  (** active switches on the physical grid *)
}

val place :
  ?row_assignment:int array ->
  ?col_assignment:int array ->
  ?physical_rows:int ->
  ?physical_cols:int ->
  Function_matrix.t ->
  t
(** Place an FM. Defaults: identity assignments on an exactly-sized
    crossbar. @raise Invalid_argument if an assignment is not injective,
    out of range, or of the wrong length, or the physical grid is smaller
    than required. *)

val of_cover : ?include_il_row:bool -> Mcx_logic.Mo_cover.t -> t
(** Convenience: FM construction + identity placement. *)

val physical_row_of_fm_row : t -> int -> int
val physical_col_of_fm_col : t -> int -> int

val respects : t -> Defect_map.t -> bool
(** True when every required switch lands on a functional junction and no
    used line carries a stuck-closed defect — the validity condition of the
    paper's defect-tolerant mapping. @raise Invalid_argument if the defect
    map's dimensions differ from the physical grid. *)
