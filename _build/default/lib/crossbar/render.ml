open Mcx_util

let glyph ~programmed ~defect =
  match (defect, programmed) with
  | Junction.Functional, true -> '#'
  | Junction.Functional, false -> '.'
  | Junction.Stuck_open, true -> 'O'
  | Junction.Stuck_open, false -> 'o'
  | Junction.Stuck_closed, true -> 'X'
  | Junction.Stuck_closed, false -> 'x'

(* Render a program matrix with row labels and column headers; headers are
   printed vertically so arbitrary widths stay aligned. *)
let grid ~row_labels ~col_labels ~program ~defects =
  let rows = Bmatrix.rows program and cols = Bmatrix.cols program in
  let label_width =
    Array.fold_left (fun w l -> max w (String.length l)) 0 row_labels
  in
  let header_height =
    Array.fold_left (fun h l -> max h (String.length l)) 0 col_labels
  in
  let buf = Buffer.create ((rows + header_height) * (cols + label_width + 3)) in
  for line = 0 to header_height - 1 do
    Buffer.add_string buf (String.make (label_width + 1) ' ');
    for c = 0 to cols - 1 do
      let l = col_labels.(c) in
      Buffer.add_char buf (if line < String.length l then l.[line] else ' ')
    done;
    Buffer.add_char buf '\n'
  done;
  for r = 0 to rows - 1 do
    let l = row_labels.(r) in
    Buffer.add_string buf l;
    Buffer.add_string buf (String.make (label_width - String.length l + 1) ' ');
    for c = 0 to cols - 1 do
      Buffer.add_char buf
        (glyph ~programmed:(Bmatrix.get program r c) ~defect:(Defect_map.get defects r c))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let ensure_defects defects ~rows ~cols =
  match defects with
  | Some d ->
    if Defect_map.rows d <> rows || Defect_map.cols d <> cols then
      invalid_arg "Render: defect map dimension mismatch";
    d
  | None -> Defect_map.create ~rows ~cols

let two_level ?defects layout =
  let fm = layout.Layout.fm in
  let geometry = fm.Function_matrix.geometry in
  let rows = layout.Layout.physical_rows and cols = layout.Layout.physical_cols in
  let defects = ensure_defects defects ~rows ~cols in
  let col_labels = Array.make cols "-" in
  Array.iteri
    (fun fm_col physical ->
      let label =
        match Geometry.column_role geometry fm_col with
        | Geometry.Input_pos i -> Printf.sprintf "x%d" (i + 1)
        | Geometry.Input_neg i -> Printf.sprintf "x%d'" (i + 1)
        | Geometry.Output_main k -> Printf.sprintf "O%d" (k + 1)
        | Geometry.Output_comp k -> Printf.sprintf "O%d'" (k + 1)
      in
      col_labels.(physical) <- label)
    layout.Layout.col_assignment;
  let row_labels = Array.make rows "-" in
  Array.iteri
    (fun fm_row physical ->
      let label =
        match Geometry.row_role geometry fm_row with
        | Geometry.Input_latch -> "IL"
        | Geometry.Product p -> Printf.sprintf "m%d" (p + 1)
        | Geometry.Output_row k -> Printf.sprintf "O%d" (k + 1)
      in
      row_labels.(physical) <- label)
    layout.Layout.row_assignment;
  grid ~row_labels ~col_labels ~program:layout.Layout.program ~defects

let multi_level ?defects (ml : Multilevel.t) =
  let rows = ml.Multilevel.physical_rows and cols = ml.Multilevel.physical_cols in
  let defects = ensure_defects defects ~rows ~cols in
  let net = ml.Multilevel.mapped.Mcx_netlist.Tech_map.network in
  let n_inputs = Mcx_netlist.Network.n_inputs net in
  let n_gates = Mcx_netlist.Network.gate_count net in
  let n_outputs = Array.length ml.Multilevel.mapped.Mcx_netlist.Tech_map.negated in
  let col_labels =
    Array.init cols (fun c ->
        if c < n_inputs then Printf.sprintf "x%d" (c + 1)
        else if c < 2 * n_inputs then Printf.sprintf "x%d'" (c - n_inputs + 1)
        else begin
          let first_output_col = cols - (2 * n_outputs) in
          if c < first_output_col then Printf.sprintf "c%d" (c - (2 * n_inputs))
          else begin
            let k = (c - first_output_col) / 2 in
            if (c - first_output_col) mod 2 = 0 then Printf.sprintf "O%d" (k + 1)
            else Printf.sprintf "O%d'" (k + 1)
          end
        end)
  in
  let row_labels = Array.make rows "-" in
  Array.iteri
    (fun logical physical ->
      row_labels.(physical) <-
        (if logical < n_gates then Printf.sprintf "g%d" logical else "OL"))
    ml.Multilevel.row_assignment;
  grid ~row_labels ~col_labels ~program:ml.Multilevel.program ~defects
