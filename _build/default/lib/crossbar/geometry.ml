type column_role =
  | Input_pos of int
  | Input_neg of int
  | Output_main of int
  | Output_comp of int

type row_role = Input_latch | Product of int | Output_row of int

type t = {
  n_inputs : int;
  n_outputs : int;
  n_products : int;
  include_il_row : bool;
}

let create ?(include_il_row = false) ~n_inputs ~n_outputs ~n_products () =
  if n_inputs < 0 || n_outputs < 0 || n_products < 0 then
    invalid_arg "Geometry.create: negative counts";
  { n_inputs; n_outputs; n_products; include_il_row }

let n_inputs t = t.n_inputs
let n_outputs t = t.n_outputs
let n_products t = t.n_products
let includes_il_row t = t.include_il_row

let rows t = t.n_products + t.n_outputs + if t.include_il_row then 1 else 0
let cols t = (2 * t.n_inputs) + (2 * t.n_outputs)
let area t = rows t * cols t

let column_role t j =
  if j < 0 || j >= cols t then invalid_arg "Geometry.column_role: out of range";
  if j < t.n_inputs then Input_pos j
  else if j < 2 * t.n_inputs then Input_neg (j - t.n_inputs)
  else begin
    let k = (j - (2 * t.n_inputs)) / 2 in
    if (j - (2 * t.n_inputs)) mod 2 = 0 then Output_main k else Output_comp k
  end

let column_of_role t = function
  | Input_pos i when i >= 0 && i < t.n_inputs -> i
  | Input_neg i when i >= 0 && i < t.n_inputs -> t.n_inputs + i
  | Output_main k when k >= 0 && k < t.n_outputs -> (2 * t.n_inputs) + (2 * k)
  | Output_comp k when k >= 0 && k < t.n_outputs -> (2 * t.n_inputs) + (2 * k) + 1
  | Input_pos _ | Input_neg _ | Output_main _ | Output_comp _ ->
    invalid_arg "Geometry.column_of_role: role out of range"

let row_role t i =
  if i < 0 || i >= rows t then invalid_arg "Geometry.row_role: out of range";
  if t.include_il_row then
    if i = 0 then Input_latch
    else if i <= t.n_products then Product (i - 1)
    else Output_row (i - t.n_products - 1)
  else if i < t.n_products then Product i
  else Output_row (i - t.n_products)

let row_of_role t = function
  | Input_latch ->
    if t.include_il_row then 0 else invalid_arg "Geometry.row_of_role: no IL row"
  | Product p when p >= 0 && p < t.n_products ->
    p + if t.include_il_row then 1 else 0
  | Output_row k when k >= 0 && k < t.n_outputs ->
    t.n_products + k + if t.include_il_row then 1 else 0
  | Product _ | Output_row _ -> invalid_arg "Geometry.row_of_role: role out of range"

let column_of_literal t ~var lit =
  match lit with
  | Mcx_logic.Literal.Pos -> column_of_role t (Input_pos var)
  | Mcx_logic.Literal.Neg -> column_of_role t (Input_neg var)
  | Mcx_logic.Literal.Absent -> invalid_arg "Geometry.column_of_literal: Absent"

let pp ppf t =
  Format.fprintf ppf "crossbar %dx%d (I=%d, O=%d, P=%d%s)" (rows t) (cols t)
    t.n_inputs t.n_outputs t.n_products
    (if t.include_il_row then ", +IL row" else "")
