(** The paper's multi-level crossbar design (§III, Fig. 4/5).

    One horizontal line per NAND gate plus an output-latch row; vertical
    lines are the 2I input literals, one multi-level connection column per
    inner gate (a gate whose output feeds another gate), and the result
    pair per output. Gates are evaluated one by one — the CR state copies a
    finished row's result into the connection column junctions of its
    consumer rows — so a single crossbar realizes a multi-level network at
    the price of serialized evaluation. *)

type t = {
  mapped : Mcx_netlist.Tech_map.mapped;
  rows : int;  (** G + 1 *)
  cols : int;  (** 2I + C + 2O *)
  row_of_gate : int array;  (** gate id -> row (identity order by default) *)
  conn_col_of_gate : int option array;  (** inner gates' connection column *)
  program : Mcx_util.Bmatrix.t;
  row_assignment : int array;  (** logical row -> physical row *)
  physical_rows : int;
  physical_cols : int;
}

val place : ?row_assignment:int array -> ?physical_rows:int -> Mcx_netlist.Tech_map.mapped -> t
(** Build the multi-level layout. [row_assignment] maps logical rows (gates
    in id order, then the latch row) to physical rows — the hook the
    defect-tolerant multi-level mapping extension uses.
    @raise Invalid_argument on malformed assignments. *)

val area : t -> int

val function_matrix : t -> Mcx_util.Bmatrix.t
(** The logical required-switch matrix (rows in logical order) — the FM the
    defect-tolerant extension feeds to the matching algorithms. *)

val run : ?defects:Defect_map.t -> t -> bool array -> bool array
(** Simulate one computation: INA, RI, then per gate in topological order
    CFM/EVM/CR, then INR and SO, with the defect semantics of {!Sim}. *)

val run_counting : ?defects:Defect_map.t -> t -> bool array -> bool array * int
(** Like {!run}, also reporting memristor write events (agrees with
    {!Cost.multi_level_writes} by test). *)

val run_with_upsets :
  ?defects:Defect_map.t ->
  prng:Mcx_util.Prng.t ->
  upset_rate:float ->
  t ->
  bool array ->
  bool array
(** Transient write-upset simulation, as {!Sim.run_with_upsets}. *)

val agrees_with_reference : ?defects:Defect_map.t -> t -> Mcx_logic.Mo_cover.t -> bool
(** Exhaustive check against a reference cover (arity <= 16). *)
