(** The function matrix (FM) of §IV.B: "a representation of a logic function
    in sum-of-products form. If an input occurs in a minterm, it is denoted
    with 1; otherwise 0".

    Rows are the products followed by the outputs (plus an optional leading
    input-latch row); columns follow {!Geometry}. Product rows carry their
    literals plus one AND-plane connection per member output; output rows
    carry the result pair of their output. *)

type t = {
  geometry : Geometry.t;
  matrix : Mcx_util.Bmatrix.t;  (** 1 = a switch the design needs functional *)
  cover : Mcx_logic.Mo_cover.t;  (** the function the matrix encodes *)
}

val build : ?include_il_row:bool -> Mcx_logic.Mo_cover.t -> t
(** Construct the FM of a cover. Row order: products in cover order, then
    outputs; the IL row (when requested) is row 0. *)

val minterm_row_indices : t -> int list
(** FM rows holding products (the paper's FMm), ascending. *)

val output_row_indices : t -> int list
(** FM rows holding outputs (the paper's FMo), ascending. *)

val switch_count : t -> int
(** Number of required switches — the numerator of the inclusion ratio. *)

val pp : Format.formatter -> t -> unit
