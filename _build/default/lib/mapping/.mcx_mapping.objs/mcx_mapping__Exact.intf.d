lib/mapping/exact.mli: Mcx_crossbar Mcx_util
