lib/mapping/annealing.ml: Array Bmatrix Fun Mcx_crossbar Mcx_util Prng
