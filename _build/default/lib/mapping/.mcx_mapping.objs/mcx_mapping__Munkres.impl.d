lib/mapping/munkres.ml: Array
