lib/mapping/matching.mli: Mcx_crossbar Mcx_util
