lib/mapping/matching.ml: Array Bmatrix Fun Hashtbl List Mcx_crossbar Mcx_util Seq
