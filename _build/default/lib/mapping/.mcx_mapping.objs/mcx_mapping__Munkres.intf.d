lib/mapping/munkres.mli:
