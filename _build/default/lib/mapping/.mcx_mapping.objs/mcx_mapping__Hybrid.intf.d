lib/mapping/hybrid.mli: Mcx_crossbar Mcx_util
