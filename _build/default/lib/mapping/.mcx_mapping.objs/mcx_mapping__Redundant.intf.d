lib/mapping/redundant.mli: Mcx_crossbar Mcx_util
