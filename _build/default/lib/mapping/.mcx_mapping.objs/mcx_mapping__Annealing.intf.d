lib/mapping/annealing.mli: Mcx_crossbar Mcx_util
