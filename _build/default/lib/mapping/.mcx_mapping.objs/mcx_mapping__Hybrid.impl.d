lib/mapping/hybrid.ml: Array Bmatrix Fun Function_matrix Int List Matching Mcx_crossbar Mcx_util Munkres
