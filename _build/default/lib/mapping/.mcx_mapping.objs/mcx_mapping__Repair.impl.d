lib/mapping/repair.ml: Array Bmatrix Exact Fun List Matching Mcx_util
