lib/mapping/repair.mli: Mcx_util
