lib/mapping/redundant.ml: Array Bmatrix Defect_map Exact Fun Function_matrix Hybrid Junction Layout Mcx_crossbar Mcx_util Option Prng
