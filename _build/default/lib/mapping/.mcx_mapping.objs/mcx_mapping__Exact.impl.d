lib/mapping/exact.ml: Bmatrix Fun List Matching Mcx_crossbar Mcx_util Munkres Option
