(** Row matching between function and crossbar matrices (§IV.B).

    A crossbar matrix (CM) entry is 1 for a functional switch and 0 for a
    stuck-open one. An FM row fits a CM row when every required switch (FM
    1) lands on a functional junction (CM 1); FM 0 entries accept both,
    because a stuck-open junction behaves exactly like a disabled one. *)

val cm_of_defects : Mcx_crossbar.Defect_map.t -> Mcx_util.Bmatrix.t
(** Crossbar matrix of a defect map: 1 = functional. Stuck-closed junctions
    also read 0 here; use {!Redundant} when closed defects are in play,
    since they additionally poison whole lines. *)

val row_matches :
  fm:Mcx_util.Bmatrix.t -> fm_row:int -> cm:Mcx_util.Bmatrix.t -> cm_row:int -> bool
(** The paper's element-by-element row-matching rule. @raise
    Invalid_argument when column counts differ or indices are out of
    range. *)

val matching_matrix :
  fm:Mcx_util.Bmatrix.t ->
  fm_rows:int list ->
  cm:Mcx_util.Bmatrix.t ->
  cm_rows:int list ->
  int array array
(** Cost matrix for the assignment step: entry 0 when the FM row (outer
    index) can be placed on the CM row (inner index), 1 otherwise — the
    representation of Fig. 8(c). *)

val check_assignment :
  fm:Mcx_util.Bmatrix.t -> cm:Mcx_util.Bmatrix.t -> int array -> bool
(** [check_assignment ~fm ~cm a]: [a] maps every FM row to a distinct CM
    row and every mapping satisfies {!row_matches} — the post-condition of
    both mapping algorithms. *)
