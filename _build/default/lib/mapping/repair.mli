(** Incremental repair of a placed design after new defects appear.

    Memristive junctions age: a die mapped at test time accumulates new
    stuck-open faults in the field. Remapping from scratch costs a full
    hybrid/exact run and reprograms every line; this module instead
    repairs locally — only the rows invalidated by the fresh defects are
    re-placed, preferring moves that touch as few lines as possible (the
    transient/permanent fault-tolerance concern of the paper's own prior
    work, TCAD'17 [13]). *)

type outcome = {
  assignment : int array;  (** the repaired FM row -> CM row assignment *)
  rows_touched : int;
      (** how many FM rows changed target (0 when the old placement
          survived the new defects untouched) *)
}

val repair :
  fm:Mcx_util.Bmatrix.t ->
  cm:Mcx_util.Bmatrix.t ->
  int array ->
  outcome option
(** [repair ~fm ~cm assignment] takes the crossbar matrix reflecting the
    *current* (aged) defect state and a previously valid assignment.
    Returns a valid assignment, or [None] when even a full exact re-map
    cannot place the design any more.

    Strategy, in increasing disruption order: keep rows that still match;
    re-place each broken row on a free matching row; try pairwise swaps
    with surviving rows; finally fall back to a full {!Exact} re-map of
    the whole design. @raise Invalid_argument on dimension mismatch or a
    malformed assignment. *)
