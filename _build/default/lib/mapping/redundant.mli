(** Redundancy-aware mapping — the paper's stated future work (§IV.A, §VI).

    Optimum-size crossbars cannot tolerate stuck-at-closed defects at all:
    a closed junction poisons its whole horizontal and vertical line. With
    [spare_rows] x [spare_cols] of extra lines, mapping becomes a joint
    row/column selection problem. The heuristic here:

    + score physical columns by their defect load and pick a distinct
      target column per FM column (closed defects weigh heaviest);
    + restrict the crossbar matrix to the chosen columns, drop rows that
      carry a closed defect in any chosen column, and run the hybrid or
      exact row-mapping on what remains;
    + on failure, retry with randomized column choices.

    This yields the yield-vs-redundancy curves of the EXT-YIELD
    experiment. *)

type placement = {
  row_assignment : int array;  (** FM row -> physical row *)
  col_assignment : int array;  (** FM column -> physical column *)
}

val map :
  ?attempts:int ->
  prng:Mcx_util.Prng.t ->
  algorithm:[ `Hybrid | `Exact ] ->
  Mcx_crossbar.Function_matrix.t ->
  Mcx_crossbar.Defect_map.t ->
  placement option
(** [attempts] (default 8) bounds the randomized column-choice retries; the
    first attempt is the deterministic greedy choice. @raise
    Invalid_argument if the defect map is smaller than the FM. *)

val verify :
  Mcx_crossbar.Function_matrix.t -> Mcx_crossbar.Defect_map.t -> placement -> bool
(** Full physical validity via {!Mcx_crossbar.Layout.respects}: required
    switches functional and no stuck-closed junction at any used
    crossing. *)
