(** Simulated-annealing mapping baseline.

    The nano-crossbar mapping literature the paper positions itself
    against (§I: [13], [14]) leans on stochastic search. This baseline
    anneals over full row permutations — cost is the number of required
    switches landing on defective junctions — and serves as the third
    point in the algorithm ablation: slower than the hybrid heuristic,
    without the exact algorithm's completeness guarantee. *)

type params = {
  initial_temperature : float;  (** in cost units; default 2.0 *)
  cooling : float;  (** geometric factor per sweep; default 0.95 *)
  sweeps : int;  (** temperature steps; default 60 *)
  moves_per_sweep : int;  (** proposed swaps per step; default 4 x rows *)
}

val default_params : params

val map :
  ?params:params ->
  prng:Mcx_util.Prng.t ->
  Mcx_crossbar.Function_matrix.t ->
  Mcx_util.Bmatrix.t ->
  int array option
(** Anneal a row assignment; returns the first zero-cost permutation found
    (validity re-checkable with {!Matching.check_assignment}), or [None]
    when the budget is exhausted above cost zero. The crossbar must have
    at least as many rows as the FM. *)

val cost :
  fm:Mcx_util.Bmatrix.t -> cm:Mcx_util.Bmatrix.t -> int array -> int
(** The annealer's objective: number of (row, column) positions where the
    FM requires a switch but the assigned crossbar junction is defective.
    Zero iff the assignment is valid. *)
