(** The exact mapping algorithm (EA) the paper compares against.

    "The exact algorithm constructs the matching matrix for all minterms
    and output rows of FM and then applies the assignment method" — a full
    bipartite feasibility test: a valid mapping exists if and only if the
    minimum-cost assignment over the complete matching matrix is 0. *)

val map : Mcx_crossbar.Function_matrix.t -> Mcx_util.Bmatrix.t -> int array option
(** Complete search: [None] proves that no row assignment is valid.
    @raise Invalid_argument if [cm] is smaller than the FM or has a
    different column count. *)

val feasible : Mcx_crossbar.Function_matrix.t -> Mcx_util.Bmatrix.t -> bool

val map_matrix : Mcx_util.Bmatrix.t -> Mcx_util.Bmatrix.t -> int array option
(** Matrix-level core of {!map}, for FMs that do not come from a two-level
    {!Mcx_crossbar.Function_matrix} (e.g. the multi-level extension). *)
