(** The paper's hybrid mapping methodology (Algorithm 1, HBA).

    Product (minterm) rows are matched greedily top-to-bottom against
    crossbar rows, with depth-1 backtracking: when a product row fits no
    unmatched crossbar row, already-matched crossbar rows are considered
    and their current owner is relocated to an unmatched row if possible.
    Output rows — where a single defect might discard a whole output — are
    then assigned exactly with {!Munkres} over the remaining crossbar
    rows. *)

type stats = {
  backtracks : int;  (** products that needed the relocation step *)
  relocations : int;  (** successful owner moves during backtracking *)
}

type order =
  | Top_down  (** FM row order, as Algorithm 1 is written — the default *)
  | Hardest_first
      (** greedy rows sorted by descending switch count: placing the most
          constrained products first reduces dead-end first-fits. An
          ablation in the bench harness quantifies the gain. *)

val map :
  ?order:order -> Mcx_crossbar.Function_matrix.t -> Mcx_util.Bmatrix.t -> int array option
(** [map fm cm] returns a complete FM-row to CM-row assignment, or [None]
    when the heuristic fails (which does not prove infeasibility — see
    {!Exact}). @raise Invalid_argument if [cm] has fewer rows than the FM
    or a different column count. *)

val map_with_stats :
  ?order:order ->
  Mcx_crossbar.Function_matrix.t ->
  Mcx_util.Bmatrix.t ->
  int array option * stats

val map_rows :
  ?order:order ->
  fm:Mcx_util.Bmatrix.t ->
  greedy_rows:int list ->
  assignment_rows:int list ->
  Mcx_util.Bmatrix.t ->
  (int array option * stats)
(** Matrix-level core: [greedy_rows] are matched first-fit with
    backtracking, [assignment_rows] exactly via Munkres over the leftover
    crossbar rows. The two lists must partition the FM's rows. Used
    directly by the multi-level defect-tolerance extension, whose FM does
    not come from a two-level {!Mcx_crossbar.Function_matrix}. *)
