(** Minimum-cost assignment (Munkres 1957).

    The exact building block of both mapping algorithms: the paper assigns
    output rows (hybrid) or all rows (exact) to crossbar lines by "choosing
    which Oi is mapped to Hk yielding a zero cost ... This is an exact
    algorithm which means if a zero cost is possible, it will be found".

    Implemented as the O(n^2 m) shortest-augmenting-path formulation
    (Jonker–Volgenant), which computes the same optimum as Munkres'
    original primal-dual method. *)

val solve : int array array -> int * int array
(** [solve cost] for an n x m matrix with n <= m returns the minimum total
    cost and the optimal assignment [a] with [a.(i)] the column of row [i]
    (columns pairwise distinct). @raise Invalid_argument if [n > m], the
    matrix is ragged or empty rows are present with n > 0. *)

val feasible_zero : int array array -> int array option
(** [feasible_zero cost] is the assignment when the optimum is exactly 0 —
    the paper's validity criterion — and [None] otherwise. *)
