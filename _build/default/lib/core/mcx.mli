(** Memristive crossbar logic synthesis and defect tolerance.

    The umbrella API of the library, reproducing Tunali & Altun, "Logic
    Synthesis and Defect Tolerance for Memristive Crossbar Arrays"
    (DATE 2018). The sub-libraries remain directly usable; this module
    re-exports them and packages the paper's three end-to-end flows:

    - {!synthesize_two_level}: SOP cover -> placed NAND/AND-plane crossbar;
    - {!synthesize_multi_level}: SOP cover -> factored NAND network -> the
      serialized multi-level crossbar of §III;
    - {!map_defect_tolerant}: place a two-level design on a defective
      crossbar with the hybrid (Algorithm 1) or exact method of §IV. *)

module Util = Mcx_util
module Logic = Mcx_logic
module Netlist = Mcx_netlist
module Crossbar = Mcx_crossbar
module Mapping = Mcx_mapping
module Benchmarks = Mcx_benchmarks
module Experiments = Mcx_experiments

type algorithm = Hybrid | Exact

val synthesize_two_level :
  ?include_il_row:bool ->
  ?dual:bool ->
  Mcx_logic.Mo_cover.t ->
  Mcx_crossbar.Layout.t * Mcx_crossbar.Cost.report * bool
(** Place a cover on a pristine optimum-size crossbar. With [dual] (default
    [true], as in the paper) the cheaper of the function and its negation
    is implemented; the returned flag says whether the negation was chosen.
    The layout always computes the original function's outputs when the
    dual is not chosen; when it is, the layout computes the complemented
    functions (the crossbar's free output inversion recovers the
    original). *)

val synthesize_multi_level :
  ?fanin_limit:int ->
  Mcx_logic.Mo_cover.t ->
  Mcx_crossbar.Multilevel.t * Mcx_crossbar.Cost.report
(** Factor, map to NAND gates and build the multi-level crossbar. *)

val map_defect_tolerant :
  ?include_il_row:bool ->
  algorithm:algorithm ->
  Mcx_logic.Mo_cover.t ->
  Mcx_crossbar.Defect_map.t ->
  Mcx_crossbar.Layout.t option
(** Defect-aware placement on an optimum-size crossbar with stuck-open
    defects (§IV.B). [None] means the algorithm found no valid row
    assignment (for [Exact] this proves none exists). @raise
    Invalid_argument if the defect map does not have the cover's optimum
    dimensions. *)

val verify :
  ?defects:Mcx_crossbar.Defect_map.t -> Mcx_crossbar.Layout.t -> bool
(** Exhaustive simulation of a placed design against its cover (inputs <=
    16): the end-to-end correctness check behind the paper's notion of a
    "valid mapping". *)

val simulate :
  ?defects:Mcx_crossbar.Defect_map.t ->
  Mcx_crossbar.Layout.t ->
  bool array ->
  bool array
(** One computation on the placed crossbar ({!Crossbar.Sim.run}). *)
