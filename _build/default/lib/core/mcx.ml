module Util = Mcx_util
module Logic = Mcx_logic
module Netlist = Mcx_netlist
module Crossbar = Mcx_crossbar
module Mapping = Mcx_mapping
module Benchmarks = Mcx_benchmarks
module Experiments = Mcx_experiments

type algorithm = Hybrid | Exact

let synthesize_two_level ?(include_il_row = false) ?(dual = true) cover =
  let chosen, report, used_dual =
    if dual then Mcx_crossbar.Cost.dual_choice ~include_il_row cover
    else (cover, Mcx_crossbar.Cost.two_level ~include_il_row cover, false)
  in
  (Mcx_crossbar.Layout.of_cover ~include_il_row chosen, report, used_dual)

let synthesize_multi_level ?fanin_limit cover =
  let mapped = Mcx_netlist.Tech_map.map_mo ?fanin_limit cover in
  (Mcx_crossbar.Multilevel.place mapped, Mcx_crossbar.Cost.multi_level mapped)

let map_defect_tolerant ?(include_il_row = false) ~algorithm cover defects =
  let fm = Mcx_crossbar.Function_matrix.build ~include_il_row cover in
  let geometry = fm.Mcx_crossbar.Function_matrix.geometry in
  if
    Mcx_crossbar.Defect_map.rows defects <> Mcx_crossbar.Geometry.rows geometry
    || Mcx_crossbar.Defect_map.cols defects <> Mcx_crossbar.Geometry.cols geometry
  then invalid_arg "Mcx.map_defect_tolerant: defect map must match the optimum area";
  let cm = Mcx_mapping.Matching.cm_of_defects defects in
  let assignment =
    match algorithm with
    | Hybrid -> Mcx_mapping.Hybrid.map fm cm
    | Exact -> Mcx_mapping.Exact.map fm cm
  in
  Option.map (fun row_assignment -> Mcx_crossbar.Layout.place ~row_assignment fm) assignment

let verify ?defects layout = Mcx_crossbar.Sim.agrees_with_reference ?defects layout

let simulate ?defects layout inputs = Mcx_crossbar.Sim.run ?defects layout inputs
