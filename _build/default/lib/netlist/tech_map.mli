(** Technology mapping: SOP covers to bounded-fan-in NAND networks.

    This module plays the role the paper assigns to Berkeley ABC "forced to
    use a set of NAND gates (which have fan-in sizes 2 to n)". Each cover is
    factored algebraically ({!Factor}) and the factored form is synthesized
    into a {!Network} with structural sharing. Output polarity is free on
    the crossbar (the INR state inverts results), so the mapper may emit the
    complement of an output and record the fact. *)

type mapped = {
  network : Network.t;
  negated : bool array;
      (** [negated.(k)] means network output [k] carries the complement of
          function output [k]; the crossbar's inversion state fixes it up at
          no area cost. *)
}

type strategy =
  | Quick  (** single-literal division ({!Factor.factor}) — the default *)
  | Kernel  (** kernel extraction ({!Kernel.factor}) — slower, finds
                multi-literal divisors; used by the factoring ablation *)
  | Flat  (** no factoring at all: the raw two-level NAND-NAND form *)

val map_cover : ?strategy:strategy -> ?fanin_limit:int -> Mcx_logic.Cover.t -> mapped
(** Factored multi-level mapping of a single-output function. The fan-in
    limit defaults to [max 2 n_inputs], matching the paper's ABC setup. *)

val map_cover_flat : ?fanin_limit:int -> Mcx_logic.Cover.t -> mapped
(** Mapping of the un-factored two-level form (one NAND per multi-literal
    product plus a collector NAND) — the ablation baseline showing what
    multi-level buys. *)

val map_mo : ?strategy:strategy -> ?fanin_limit:int -> Mcx_logic.Mo_cover.t -> mapped
(** Multi-output mapping into a single shared network; identical
    sub-expressions across outputs share gates via structural hashing. *)

val eval : mapped -> bool array -> bool array
(** Evaluate the mapped function — network evaluation with the recorded
    polarity fix-ups applied, i.e. the original function's outputs. *)
