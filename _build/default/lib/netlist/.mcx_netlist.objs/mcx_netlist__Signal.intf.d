lib/netlist/signal.mli: Format Mcx_logic
