lib/netlist/tech_map.mli: Mcx_logic Network
