lib/netlist/export.mli: Tech_map
