lib/netlist/tech_map.ml: Array Bool Factor Kernel List Mcx_logic Network Option Signal
