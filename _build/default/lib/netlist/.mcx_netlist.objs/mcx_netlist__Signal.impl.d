lib/netlist/signal.ml: Bool Format Int Mcx_logic
