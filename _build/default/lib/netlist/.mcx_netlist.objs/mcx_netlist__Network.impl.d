lib/netlist/network.ml: Array Format Hashtbl List Option Signal
