lib/netlist/kernel.ml: Array Cover Cube Factor List Literal Mcx_logic Option
