lib/netlist/factor.ml: Array Bool Cover Cube Format List Literal Mcx_logic
