lib/netlist/factor.mli: Format Mcx_logic
