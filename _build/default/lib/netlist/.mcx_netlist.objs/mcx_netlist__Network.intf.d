lib/netlist/network.mli: Format Signal
