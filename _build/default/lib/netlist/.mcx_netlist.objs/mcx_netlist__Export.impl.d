lib/netlist/export.ml: Array Buffer Hashtbl List Network Option Printf Signal String Tech_map
