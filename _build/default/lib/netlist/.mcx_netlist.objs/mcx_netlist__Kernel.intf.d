lib/netlist/kernel.mli: Factor Mcx_logic
