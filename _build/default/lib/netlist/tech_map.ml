type mapped = { network : Network.t; negated : bool array }

(* Build a signal computing [expr] ([want] = true) or its complement
   ([want] = false). Negative requests cost one gate less on And nodes and
   one more on Or nodes, which the factored forms exploit at the root. *)
let rec build net expr ~want =
  match expr with
  | Factor.Const b -> Signal.Const (Bool.equal b want)
  | Factor.Lit (var, positive) ->
    if Bool.equal positive want then Signal.Input var else Signal.Input_neg var
  | Factor.And children ->
    let fanins = List.map (fun c -> build net c ~want:true) children in
    if want then Network.and_ net fanins else Network.nand net fanins
  | Factor.Or children ->
    let fanins = List.map (fun c -> build net c ~want:false) children in
    let nand = Network.nand net fanins in
    if want then nand else Network.inv net nand

(* Emitting the complement is free on the crossbar, so pick the polarity
   that synthesizes with fewer gates: an And root is cheaper negated. *)
let preferred_polarity = function
  | Factor.And _ -> false
  | Factor.Const _ | Factor.Lit _ | Factor.Or _ -> true

let default_limit n_inputs = max 2 n_inputs

let map_exprs ~n_inputs ~fanin_limit exprs =
  let limit = Option.value fanin_limit ~default:(default_limit n_inputs) in
  let net = Network.create ~n_inputs ~fanin_limit:limit in
  let emit expr =
    let want = preferred_polarity expr in
    (build net expr ~want, not want)
  in
  let signals, negated = List.split (List.map emit exprs) in
  Network.set_outputs net signals;
  { network = Network.prune net; negated = Array.of_list negated }

type strategy = Quick | Kernel | Flat

let factor_with = function
  | Quick -> Factor.factor
  | Kernel -> Kernel.factor
  | Flat -> Factor.of_cover_flat

let map_cover ?(strategy = Quick) ?fanin_limit f =
  map_exprs ~n_inputs:(Mcx_logic.Cover.arity f) ~fanin_limit [ factor_with strategy f ]

let map_cover_flat ?fanin_limit f = map_cover ~strategy:Flat ?fanin_limit f

let map_mo ?(strategy = Quick) ?fanin_limit mo =
  let n_outputs = Mcx_logic.Mo_cover.n_outputs mo in
  let exprs =
    List.init n_outputs (fun k ->
        factor_with strategy (Mcx_logic.Mo_cover.output_cover mo k))
  in
  map_exprs ~n_inputs:(Mcx_logic.Mo_cover.n_inputs mo) ~fanin_limit exprs

let eval { network; negated } inputs =
  let raw = Network.eval network inputs in
  Array.mapi (fun k v -> if negated.(k) then not v else v) raw
