(** Netlist export: structural Verilog and Graphviz DOT.

    The multi-level designs this library produces are plain NAND networks;
    exporting them in standard interchange formats lets downstream EDA
    tools (simulators, equivalence checkers, schematic viewers) consume
    the mapped results directly. *)

val to_verilog :
  ?module_name:string ->
  ?input_names:string list ->
  ?output_names:string list ->
  Tech_map.mapped ->
  string
(** Structural Verilog-2001: one [nand] primitive per gate, [not] gates
    for recorded output polarities, continuous assigns for constant or
    pass-through outputs. Default port names are [x0..] and [y0..].
    @raise Invalid_argument when explicit name lists have the wrong
    length. *)

val to_dot : ?graph_name:string -> Tech_map.mapped -> string
(** Graphviz digraph: inputs as boxes, gates as ellipses, outputs as
    double octagons; complemented edges are drawn dashed. *)
