(** NAND-only combinational networks.

    This is the multi-level form the paper's modified crossbar executes: one
    horizontal line per NAND gate, evaluated level by level, with each inner
    gate output copied (CR state) into a dedicated connection column. The
    builder maintains structural hashing so identical gates are shared, and
    enforces a fan-in bound mirroring the paper's ABC setup ("NAND gates
    which have fan-in sizes 2 to n"). *)

type t
(** A network under construction (mutable builder) or finished (read-only
    use); gates are created in topological order by construction. *)

val create : n_inputs:int -> fanin_limit:int -> t
(** @raise Invalid_argument if [n_inputs < 0] or [fanin_limit < 2]. *)

val n_inputs : t -> int
val fanin_limit : t -> int

val nand : t -> Signal.t list -> Signal.t
(** The NAND of the given signals; single-signal NAND is an inverter.
    Structurally hashed: equal fan-in sets return the existing gate. Fan-in
    lists longer than the limit are decomposed into an AND tree feeding a
    final NAND, preserving semantics. Inverting an input signal is free and
    does not create a gate. @raise Invalid_argument on an empty list or an
    unknown signal. *)

val inv : t -> Signal.t -> Signal.t
(** Logical negation: free polarity swap for inputs, a 1-input NAND for gate
    outputs (memoized). *)

val and_ : t -> Signal.t list -> Signal.t
(** Conjunction (an inverted NAND). *)

val or_ : t -> Signal.t list -> Signal.t
(** Disjunction via De Morgan: [nand] of the negated signals. *)

val set_outputs : t -> Signal.t list -> unit
(** Declare the network's outputs (order = output index). *)

val outputs : t -> Signal.t list

val gate_count : t -> int
(** G: the number of NAND gates — horizontal lines in the multi-level
    crossbar (after {!prune} this counts only live gates). *)

val gate_fanins : t -> int -> Signal.t list
(** Fan-ins of gate [id]. @raise Invalid_argument for an unknown gate. *)

val inner_connection_count : t -> int
(** C: the number of distinct gates whose output feeds another gate — each
    needs one multi-level connection column. *)

val total_fanin : t -> int
(** Sum of fan-in sizes over all gates: the multi-level NAND-plane switch
    count. *)

val levels : t -> int
(** Length of the longest input-to-output gate chain (0 for gate-free
    networks) — the number nL of sequential evaluation rounds. *)

val eval : t -> bool array -> bool array
(** Evaluate all outputs on an input assignment. @raise Invalid_argument on
    arity mismatch or if outputs were never set. *)

val prune : t -> t
(** Remove gates not reachable from the outputs (dead logic from builder
    intermediate steps). Signal names are re-numbered. *)

val pp : Format.formatter -> t -> unit
(** Human-readable listing, one gate per line plus the output list. *)
