(** Kernel-based algebraic factoring (Brayton–McMullen).

    {!Factor.factor} divides by one literal at a time (quick-factor). This
    module implements the stronger classical pipeline — algebraic cube
    division, kernel/co-kernel enumeration, and good-factor recursion that
    divides by the most valuable kernel — which finds multi-literal
    divisors shared across products. The tech mapper exposes both
    strategies so the Fig. 6 ablation can quantify what kernel extraction
    buys. All operations are algebraic: cubes are treated as monomials,
    never as Boolean regions. *)

val cube_divide : Mcx_logic.Cube.t list -> by:Mcx_logic.Cube.t -> Mcx_logic.Cube.t list
(** Algebraic quotient by a single cube: [{ t / by | by ⊆ t }] with the
    divisor's literals removed. @raise Invalid_argument on arity mixing. *)

val divide :
  Mcx_logic.Cube.t list ->
  by:Mcx_logic.Cube.t list ->
  Mcx_logic.Cube.t list * Mcx_logic.Cube.t list
(** Weak division by a multi-cube divisor: [(quotient, remainder)] with
    [f = by * quotient + remainder] algebraically. @raise Invalid_argument
    on an empty divisor. *)

val common_cube : Mcx_logic.Cube.t list -> Mcx_logic.Cube.t
(** Largest cube dividing every cube of the list (the universe cube when
    the list is empty or has no shared literal). *)

val is_cube_free : Mcx_logic.Cube.t list -> bool

val kernels :
  ?budget:int -> arity:int -> Mcx_logic.Cube.t list -> (Mcx_logic.Cube.t * Mcx_logic.Cube.t list) list
(** All (co-kernel, kernel) pairs, the expression itself included when it
    is cube-free; enumeration stops after [budget] kernels (default 400) to
    stay polynomial on pathological covers. *)

val factor : Mcx_logic.Cover.t -> Factor.expr
(** Good-factor recursion: divide by the best kernel (by estimated literal
    saving), recurse on divisor, quotient and remainder; fall back to
    {!Factor.factor} when no multi-cube kernel exists. Semantics are
    preserved (property-tested). *)
