(** Algebraic factoring of SOP covers.

    Turns a flat cover into a factored AND/OR expression by recursively
    dividing out the most frequent literal (quick-factor style). Factoring
    is what lets the multi-level mapping beat the two-level one: shared
    sub-expressions become shared NAND gates, shrinking the gate count G and
    connection count C that drive the multi-level area model. *)

type expr =
  | Const of bool
  | Lit of int * bool  (** variable index, polarity ([true] = positive) *)
  | And of expr list
  | Or of expr list

val factor : Mcx_logic.Cover.t -> expr
(** Factored expression equal to the cover as a Boolean function
    (property-tested via {!eval}). *)

val mk_and : expr list -> expr
val mk_or : expr list -> expr
(** Smart constructors: flatten nested nodes, fold constants, drop
    degenerate single-child nodes. Exposed for {!Kernel}. *)

val expr_of_cube : Mcx_logic.Cube.t -> expr
(** The conjunction of a cube's literals. *)

val of_cover_flat : Mcx_logic.Cover.t -> expr
(** The un-factored two-level expression: Or of per-cube Ands. *)

val eval : expr -> bool array -> bool
(** Reference semantics. @raise Invalid_argument if a variable index is out
    of the assignment's range. *)

val literal_count : expr -> int
(** Number of [Lit] leaves — the factored-form literal cost. *)

val depth : expr -> int
(** Nesting depth of And/Or operators (leaves are 0). *)

val pp : Format.formatter -> expr -> unit
