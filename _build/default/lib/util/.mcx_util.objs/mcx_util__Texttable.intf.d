lib/util/texttable.mli:
