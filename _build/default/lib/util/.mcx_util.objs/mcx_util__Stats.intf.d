lib/util/stats.mli:
