lib/util/bmatrix.ml: Array Bytes Fmt Format List Printf
