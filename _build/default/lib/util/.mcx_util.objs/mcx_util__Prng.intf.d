lib/util/prng.mli:
