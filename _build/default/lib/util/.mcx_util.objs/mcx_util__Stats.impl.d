lib/util/stats.ml: Array Float Fun List
