lib/util/timing.mli:
