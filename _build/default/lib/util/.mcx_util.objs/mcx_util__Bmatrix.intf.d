lib/util/bmatrix.mli: Format
