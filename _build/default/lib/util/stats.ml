let require_nonempty name = function
  | [] -> invalid_arg ("Stats." ^ name ^ ": empty input")
  | _ -> ()

let mean xs =
  require_nonempty "mean" xs;
  List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let variance xs =
  require_nonempty "variance" xs;
  match xs with
  | [ _ ] -> 0.
  | _ ->
    let m = mean xs in
    let sq = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    sq /. float_of_int (List.length xs - 1)

let stddev xs = sqrt (variance xs)

let ci95 xs =
  require_nonempty "ci95" xs;
  let m = mean xs in
  let n = float_of_int (List.length xs) in
  let half = 1.96 *. stddev xs /. sqrt n in
  (m -. half, m +. half)

let percentile xs p =
  require_nonempty "percentile" xs;
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of [0,100]";
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
  end

let median xs = percentile xs 50.

let success_rate bs =
  require_nonempty "success_rate" (List.map (fun _ -> 0.) bs);
  let hits = List.length (List.filter Fun.id bs) in
  100. *. float_of_int hits /. float_of_int (List.length bs)

let histogram xs ~bins ~lo ~hi =
  if bins <= 0 then invalid_arg "Stats.histogram: bins <= 0";
  if hi <= lo then invalid_arg "Stats.histogram: hi <= lo";
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  let bucket x =
    let b = int_of_float ((x -. lo) /. width) in
    if b < 0 then 0 else if b >= bins then bins - 1 else b
  in
  List.iter (fun x -> counts.(bucket x) <- counts.(bucket x) + 1) xs;
  counts
