let time f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

let mean_seconds ~repeats f =
  if repeats <= 0 then invalid_arg "Timing.mean_seconds: repeats <= 0";
  let total = ref 0. in
  for _ = 1 to repeats do
    let _, dt = time f in
    total := !total +. dt
  done;
  !total /. float_of_int repeats
