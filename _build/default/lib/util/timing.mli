(** Wall-clock measurement for the runtime columns of Table II. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] once and returns the result together with the
    elapsed wall-clock seconds. *)

val mean_seconds : repeats:int -> (unit -> 'a) -> float
(** [mean_seconds ~repeats f] runs [f] [repeats] times and returns the mean
    elapsed seconds per run. @raise Invalid_argument if [repeats <= 0]. *)
