(** Dense boolean matrices.

    The mapping algorithms of the paper operate on three boolean matrices: the
    function matrix (FM), the crossbar matrix (CM) and the matching matrix.
    This module provides the shared dense representation, backed by [Bytes]
    so that Monte Carlo runs with hundreds of thousands of samples do not
    allocate per-element boxes. *)

type t
(** A mutable [rows] x [cols] boolean matrix. *)

val create : rows:int -> cols:int -> bool -> t
(** [create ~rows ~cols fill] is a matrix with every entry set to [fill].
    @raise Invalid_argument if a dimension is negative. *)

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> bool
(** [get m i j] reads entry (i, j). @raise Invalid_argument out of bounds. *)

val set : t -> int -> int -> bool -> unit
(** [set m i j v] writes entry (i, j). @raise Invalid_argument out of bounds. *)

val copy : t -> t

val of_lists : bool list list -> t
(** Build from row-major lists. @raise Invalid_argument on ragged input or
    empty matrix. *)

val of_int_lists : int list list -> t
(** Convenience for writing test fixtures: nonzero is [true]. *)

val row : t -> int -> bool array
(** Extract row [i] as a fresh array. *)

val count : t -> int
(** Number of [true] entries. *)

val count_row : t -> int -> int
(** Number of [true] entries in row [i]. *)

val count_col : t -> int -> int
(** Number of [true] entries in column [j]. *)

val equal : t -> t -> bool

val fold : (int -> int -> bool -> 'a -> 'a) -> t -> 'a -> 'a
(** Row-major fold over all entries. *)

val map_rows : t -> f:(int -> bool array -> 'a) -> 'a list
(** [map_rows m ~f] applies [f] to every row index and its contents. *)

val pp : ?one:string -> ?zero:string -> Format.formatter -> t -> unit
(** Print as a grid of 0/1 (or custom glyphs), one row per line. *)

val to_string : t -> string
(** [Fmt.str "%a" pp]. *)
