type t = { rows : int; cols : int; data : Bytes.t }

let create ~rows ~cols fill =
  if rows < 0 || cols < 0 then invalid_arg "Bmatrix.create: negative dimension";
  { rows; cols; data = Bytes.make (rows * cols) (if fill then '\001' else '\000') }

let rows t = t.rows
let cols t = t.cols

let check t i j name =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
    invalid_arg (Printf.sprintf "Bmatrix.%s: (%d,%d) out of %dx%d" name i j t.rows t.cols)

let get t i j =
  check t i j "get";
  Bytes.unsafe_get t.data ((i * t.cols) + j) <> '\000'

let set t i j v =
  check t i j "set";
  Bytes.unsafe_set t.data ((i * t.cols) + j) (if v then '\001' else '\000')

let copy t = { t with data = Bytes.copy t.data }

let of_lists = function
  | [] -> invalid_arg "Bmatrix.of_lists: empty"
  | first :: _ as rows_list ->
    let cols = List.length first in
    let rows = List.length rows_list in
    if cols = 0 then invalid_arg "Bmatrix.of_lists: empty row";
    let t = create ~rows ~cols false in
    List.iteri
      (fun i row ->
        if List.length row <> cols then invalid_arg "Bmatrix.of_lists: ragged rows";
        List.iteri (fun j v -> set t i j v) row)
      rows_list;
    t

let of_int_lists l = of_lists (List.map (List.map (fun x -> x <> 0)) l)

let row t i =
  if i < 0 || i >= t.rows then invalid_arg "Bmatrix.row";
  Array.init t.cols (fun j -> get t i j)

let count t =
  let n = ref 0 in
  Bytes.iter (fun c -> if c <> '\000' then incr n) t.data;
  !n

let count_row t i =
  if i < 0 || i >= t.rows then invalid_arg "Bmatrix.count_row";
  let n = ref 0 in
  for j = 0 to t.cols - 1 do
    if get t i j then incr n
  done;
  !n

let count_col t j =
  if j < 0 || j >= t.cols then invalid_arg "Bmatrix.count_col";
  let n = ref 0 in
  for i = 0 to t.rows - 1 do
    if get t i j then incr n
  done;
  !n

let equal a b = a.rows = b.rows && a.cols = b.cols && Bytes.equal a.data b.data

let fold f t init =
  let acc = ref init in
  for i = 0 to t.rows - 1 do
    for j = 0 to t.cols - 1 do
      acc := f i j (get t i j) !acc
    done
  done;
  !acc

let map_rows t ~f = List.init t.rows (fun i -> f i (row t i))

let pp ?(one = "1") ?(zero = "0") ppf t =
  for i = 0 to t.rows - 1 do
    if i > 0 then Format.pp_print_newline ppf ();
    for j = 0 to t.cols - 1 do
      if j > 0 then Format.pp_print_string ppf " ";
      Format.pp_print_string ppf (if get t i j then one else zero)
    done
  done

let to_string t = Fmt.str "%a" (pp ?one:None ?zero:None) t
