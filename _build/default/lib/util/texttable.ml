type align = Left | Right | Center

type line = Row of string list | Separator

type t = { headers : string list; aligns : align list; mutable lines : line list }

let create ?aligns headers =
  if headers = [] then invalid_arg "Texttable.create: empty header";
  let aligns =
    match aligns with
    | Some a ->
      if List.length a <> List.length headers then
        invalid_arg "Texttable.create: aligns length mismatch";
      a
    | None -> Left :: List.map (fun _ -> Right) (List.tl headers)
  in
  { headers; aligns; lines = [] }

let arity t = List.length t.headers

let add_row t row =
  if List.length row <> arity t then invalid_arg "Texttable.add_row: arity mismatch";
  t.lines <- Row row :: t.lines

let add_separator t = t.lines <- Separator :: t.lines

let rows_in_order t = List.rev t.lines

let column_widths t =
  let widths = Array.of_list (List.map String.length t.headers) in
  let update = function
    | Separator -> ()
    | Row cells -> List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  List.iter update (rows_in_order t);
  widths

let pad align width s =
  let slack = width - String.length s in
  if slack <= 0 then s
  else
    match align with
    | Left -> s ^ String.make slack ' '
    | Right -> String.make slack ' ' ^ s
    | Center ->
      let left = slack / 2 in
      String.make left ' ' ^ s ^ String.make (slack - left) ' '

let render t =
  let widths = column_widths t in
  let aligns = Array.of_list t.aligns in
  let buf = Buffer.create 256 in
  let rule () =
    Array.iteri
      (fun i w ->
        Buffer.add_string buf (if i = 0 then "+" else "+");
        Buffer.add_string buf (String.make (w + 2) '-'))
      widths;
    Buffer.add_string buf "+\n"
  in
  let emit_cells cells =
    List.iteri
      (fun i c ->
        Buffer.add_string buf "| ";
        Buffer.add_string buf (pad aligns.(i) widths.(i) c);
        Buffer.add_char buf ' ')
      cells;
    Buffer.add_string buf "|\n"
  in
  rule ();
  emit_cells t.headers;
  rule ();
  List.iter
    (function
      | Separator -> rule ()
      | Row cells -> emit_cells cells)
    (rows_in_order t);
  rule ();
  Buffer.contents buf

let csv_field s =
  let needs_quote = String.exists (fun c -> c = ',' || c = '"' || c = '\n') s in
  if not needs_quote then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let to_csv t =
  let buf = Buffer.create 256 in
  let emit cells = Buffer.add_string buf (String.concat "," (List.map csv_field cells) ^ "\n") in
  emit t.headers;
  List.iter
    (function
      | Separator -> ()
      | Row cells -> emit cells)
    (rows_in_order t);
  Buffer.contents buf

let print t = print_string (render t)
