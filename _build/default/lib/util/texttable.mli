(** ASCII table and CSV rendering for experiment reports.

    Every experiment in [mcx_experiments] reduces to a list of rows; this
    module renders them the way the paper's tables look (a header, a rule,
    aligned columns). *)

type align = Left | Right | Center

type t
(** A table under construction: a header plus accumulated rows. *)

val create : ?aligns:align list -> string list -> t
(** [create headers] starts a table. [aligns] defaults to [Left] for the
    first column and [Right] for the rest, which suits name-plus-numbers
    tables. @raise Invalid_argument on empty header or mismatched [aligns]
    length. *)

val add_row : t -> string list -> unit
(** Append a row. @raise Invalid_argument if the arity differs from the
    header. *)

val add_separator : t -> unit
(** Append a horizontal rule between row groups. *)

val render : t -> string
(** Render with box-drawing in plain ASCII. *)

val to_csv : t -> string
(** Render header and rows as RFC-4180-ish CSV (quotes fields containing
    commas, quotes or newlines). Separators are skipped. *)

val print : t -> unit
(** [print t] writes {!render} to stdout followed by a newline. *)
