open Mcx_crossbar
open Mcx_logic

let cover = Cover.of_strings

(* f = x1 + x2 + x3 + x4 + x5 x6 x7 x8 (paper running example). *)
let paper_cover =
  cover [ "1-------"; "-1------"; "--1-----"; "---1----"; "----1111" ]

let paper_mo = Mo_cover.of_single paper_cover

(* O1 = x1 x2 + x2 x3, O2 = x1 x3 + x2 x3, products kept unshared so the
   dimensions match Fig. 8's 6x10 matrices. *)
let fig7_mo =
  let rows =
    [
      (Cube.of_string "11-", [| true; false |]);
      (Cube.of_string "-11", [| true; false |]);
      (Cube.of_string "1-1", [| false; true |]);
      (Cube.of_string "-11", [| false; true |]);
    ]
  in
  Mo_cover.create ~share:false ~n_inputs:3 ~n_outputs:2
    (List.map (fun (cube, outputs) -> { Mo_cover.cube; outputs }) rows)

(* ------------------------------------------------------------------ *)
(* Junction                                                           *)
(* ------------------------------------------------------------------ *)

let test_junction_store () =
  Alcotest.(check bool) "functional keeps value" false
    (Junction.store Junction.Functional false);
  Alcotest.(check bool) "stuck-open reads 1" true (Junction.store Junction.Stuck_open false);
  Alcotest.(check bool) "stuck-closed reads 0" false
    (Junction.store Junction.Stuck_closed true);
  Alcotest.(check bool) "reset is R_OFF" true (Junction.reset_value Junction.Functional);
  Alcotest.(check bool) "snider convention" true Junction.logic_of_resistance_high

(* ------------------------------------------------------------------ *)
(* Defect_map                                                         *)
(* ------------------------------------------------------------------ *)

let test_defect_map_random_rates () =
  let prng = Mcx_util.Prng.create 7 in
  let d = Defect_map.random prng ~rows:100 ~cols:100 ~open_rate:0.1 ~closed_rate:0.05 in
  let opens = Defect_map.count d Junction.Stuck_open in
  let closeds = Defect_map.count d Junction.Stuck_closed in
  Alcotest.(check bool) "about 10% open" true (opens > 800 && opens < 1200);
  Alcotest.(check bool) "about 5% closed" true (closeds > 350 && closeds < 650)

let test_defect_map_usable_lines () =
  let d = Defect_map.create ~rows:3 ~cols:3 in
  Defect_map.set d 1 2 Junction.Stuck_closed;
  Alcotest.(check (list int)) "rows 0,2 usable" [ 0; 2 ] (Defect_map.usable_rows d);
  Alcotest.(check (list int)) "cols 0,1 usable" [ 0; 1 ] (Defect_map.usable_cols d);
  Alcotest.(check bool) "row flag" true (Defect_map.row_has_closed d 1);
  Alcotest.(check bool) "open does not block line" true
    (Defect_map.set d 0 0 Junction.Stuck_open;
     not (Defect_map.row_has_closed d 0))

let test_defect_map_bad_rates () =
  let prng = Mcx_util.Prng.create 7 in
  Alcotest.(check bool) "rates > 1 rejected" true
    (try
       ignore (Defect_map.random prng ~rows:2 ~cols:2 ~open_rate:0.8 ~closed_rate:0.3);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Geometry                                                           *)
(* ------------------------------------------------------------------ *)

let test_geometry_fig3_dims () =
  (* Fig. 3: 8 inputs, 1 output, 5 products, with the IL row: 7 x 18. *)
  let g = Geometry.create ~include_il_row:true ~n_inputs:8 ~n_outputs:1 ~n_products:5 () in
  Alcotest.(check int) "rows" 7 (Geometry.rows g);
  Alcotest.(check int) "cols" 18 (Geometry.cols g);
  Alcotest.(check int) "area" 126 (Geometry.area g)

let test_geometry_table_model () =
  let g = Geometry.create ~n_inputs:8 ~n_outputs:1 ~n_products:5 () in
  Alcotest.(check int) "no IL row: 6 rows" 6 (Geometry.rows g);
  Alcotest.(check int) "area 108" 108 (Geometry.area g)

let test_geometry_role_roundtrip () =
  let g = Geometry.create ~include_il_row:true ~n_inputs:3 ~n_outputs:2 ~n_products:4 () in
  for j = 0 to Geometry.cols g - 1 do
    Alcotest.(check int) "column roundtrip" j
      (Geometry.column_of_role g (Geometry.column_role g j))
  done;
  for i = 0 to Geometry.rows g - 1 do
    Alcotest.(check int) "row roundtrip" i (Geometry.row_of_role g (Geometry.row_role g i))
  done

let test_geometry_literal_columns () =
  let g = Geometry.create ~n_inputs:3 ~n_outputs:1 ~n_products:2 () in
  Alcotest.(check int) "x1 col" 1 (Geometry.column_of_literal g ~var:1 Literal.Pos);
  Alcotest.(check int) "x1' col" 4 (Geometry.column_of_literal g ~var:1 Literal.Neg);
  Alcotest.(check bool) "absent rejected" true
    (try
       ignore (Geometry.column_of_literal g ~var:1 Literal.Absent);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Function_matrix / Cost — the paper's headline numbers              *)
(* ------------------------------------------------------------------ *)

let test_fig3_cost () =
  let report = Cost.two_level ~include_il_row:true paper_mo in
  Alcotest.(check int) "area 126" 126 report.Cost.area;
  Alcotest.(check int) "31 switches" 31 report.Cost.switches;
  Alcotest.(check bool) "IR ~25%" true
    (report.Cost.inclusion_ratio > 24. && report.Cost.inclusion_ratio < 26.)

let test_table2_closed_form_areas () =
  (* Every (I, O, P, area) row of Table II against the closed form
     (with the paper's bw/sqrt8 typos corrected, see DESIGN.md). *)
  let rows =
    [
      ("rd53", 5, 3, 31, 544);
      ("squar5", 5, 8, 25, 858);
      ("bw", 5, 28, 22, 3300);
      ("inc", 7, 9, 30, 1248);
      ("misex1", 8, 7, 12, 570);
      ("sqrt8", 8, 4, 29, 792);
      ("sao2", 10, 4, 58, 1736);
      ("rd73", 7, 3, 127, 2600);
      ("clip", 9, 5, 120, 3500);
      ("rd84", 8, 4, 255, 6216);
      ("ex1010", 10, 10, 284, 11760);
      ("table3", 14, 14, 175, 10584);
      ("exp5", 8, 63, 74, 19454);
      ("apex4", 9, 19, 436, 25480);
      ("alu4", 14, 8, 575, 25652);
    ]
  in
  List.iter
    (fun (name, i, o, p, expected) ->
      Alcotest.(check int) name expected
        (Cost.two_level_area ~n_inputs:i ~n_outputs:o ~n_products:p ()))
    rows

let test_fig5_multilevel_cost () =
  let mapped = Mcx_netlist.Tech_map.map_cover paper_cover in
  let report = Cost.multi_level mapped in
  Alcotest.(check int) "3 rows" 3 report.Cost.rows;
  Alcotest.(check int) "19 cols" 19 report.Cost.cols;
  Alcotest.(check int) "area 57 (paper prints 59; 3x19=57)" 57 report.Cost.area

let test_fm_structure () =
  let fm = Function_matrix.build fig7_mo in
  let g = fm.Function_matrix.geometry in
  Alcotest.(check int) "6 rows" 6 (Geometry.rows g);
  Alcotest.(check int) "10 cols" 10 (Geometry.cols g);
  Alcotest.(check (list int)) "FMm rows" [ 0; 1; 2; 3 ]
    (Function_matrix.minterm_row_indices fm);
  Alcotest.(check (list int)) "FMo rows" [ 4; 5 ] (Function_matrix.output_row_indices fm);
  (* m1 = x1 x2 of O1: literals at cols 0,1 and a connection on O1's
     complement column. *)
  let m = fm.Function_matrix.matrix in
  Alcotest.(check bool) "m1 x1" true (Mcx_util.Bmatrix.get m 0 0);
  Alcotest.(check bool) "m1 x2" true (Mcx_util.Bmatrix.get m 0 1);
  Alcotest.(check int) "m1 row has 3 switches" 3 (Mcx_util.Bmatrix.count_row m 0);
  Alcotest.(check int) "output rows have 2 switches" 2 (Mcx_util.Bmatrix.count_row m 4);
  (* switches: 8 literals + 4 connections + 2x2 output pairs = 16 *)
  Alcotest.(check int) "switch count" 16 (Function_matrix.switch_count fm)

let test_dual_choice () =
  (* A function whose complement has fewer products: f with many products,
     f' = one cube. f' = x0 x1 x2 -> f = x0' + x1' + x2' (3 products). *)
  let f = cover [ "0--"; "-0-"; "--0" ] in
  let mo = Mo_cover.of_single f in
  let chosen, report, used_dual = Cost.dual_choice mo in
  Alcotest.(check bool) "dual chosen" true used_dual;
  Alcotest.(check int) "dual has 1 product" 1 (Mo_cover.product_count chosen);
  Alcotest.(check int) "dual area (1+1)*(6+2)" 16 report.Cost.area

(* ------------------------------------------------------------------ *)
(* Layout                                                             *)
(* ------------------------------------------------------------------ *)

let test_layout_identity () =
  let layout = Layout.of_cover fig7_mo in
  Alcotest.(check int) "physical rows" 6 layout.Layout.physical_rows;
  Alcotest.(check bool) "program equals FM under identity" true
    (Mcx_util.Bmatrix.equal layout.Layout.program
       layout.Layout.fm.Function_matrix.matrix)

let test_layout_permutation () =
  let fm = Function_matrix.build fig7_mo in
  let layout = Layout.place ~row_assignment:[| 5; 4; 3; 2; 1; 0 |] fm in
  Alcotest.(check int) "row 0 lands on 5" 5 (Layout.physical_row_of_fm_row layout 0);
  (* m1's literals moved to physical row 5. *)
  Alcotest.(check bool) "program row 5 has m1's x1" true
    (Mcx_util.Bmatrix.get layout.Layout.program 5 0)

let test_layout_validation () =
  let fm = Function_matrix.build fig7_mo in
  Alcotest.(check bool) "duplicate target rejected" true
    (try
       ignore (Layout.place ~row_assignment:[| 0; 0; 1; 2; 3; 4 |] fm);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "short assignment rejected" true
    (try
       ignore (Layout.place ~row_assignment:[| 0; 1 |] fm);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "small physical grid rejected" true
    (try
       ignore (Layout.place ~physical_rows:3 fm);
       false
     with Invalid_argument _ -> true)

let test_layout_respects () =
  let layout = Layout.of_cover fig7_mo in
  let clean = Defect_map.create ~rows:6 ~cols:10 in
  Alcotest.(check bool) "clean crossbar ok" true (Layout.respects layout clean);
  let d = Defect_map.create ~rows:6 ~cols:10 in
  (* stuck-open on a required literal junction (m1, x1) invalidates. *)
  Defect_map.set d 0 0 Junction.Stuck_open;
  Alcotest.(check bool) "open on required switch fails" false (Layout.respects layout d);
  let d2 = Defect_map.create ~rows:6 ~cols:10 in
  (* stuck-open where the FM has a 0 is harmless. *)
  Defect_map.set d2 0 2 Junction.Stuck_open;
  Alcotest.(check bool) "open on spare switch fine" true (Layout.respects layout d2);
  let d3 = Defect_map.create ~rows:6 ~cols:10 in
  Defect_map.set d3 0 2 Junction.Stuck_closed;
  Alcotest.(check bool) "closed poisons the line" false (Layout.respects layout d3)

(* ------------------------------------------------------------------ *)
(* Sim (two-level)                                                    *)
(* ------------------------------------------------------------------ *)

let test_sim_paper_example () =
  let layout = Layout.of_cover ~include_il_row:true paper_mo in
  Alcotest.(check bool) "crossbar computes f" true (Sim.agrees_with_reference layout)

let test_sim_fig7 () =
  let layout = Layout.of_cover fig7_mo in
  Alcotest.(check bool) "crossbar computes O1, O2" true (Sim.agrees_with_reference layout)

let test_sim_permuted_rows () =
  let fm = Function_matrix.build fig7_mo in
  let layout = Layout.place ~row_assignment:[| 3; 1; 5; 0; 2; 4 |] fm in
  Alcotest.(check bool) "any row permutation computes the function" true
    (Sim.agrees_with_reference layout)

let test_sim_harmless_open_defect () =
  let layout = Layout.of_cover fig7_mo in
  let d = Defect_map.create ~rows:6 ~cols:10 in
  Defect_map.set d 0 2 Junction.Stuck_open (* FM is 0 there *);
  Alcotest.(check bool) "stuck-open on unused junction is harmless" true
    (Sim.agrees_with_reference ~defects:d layout)

let test_sim_harmful_open_defect () =
  let layout = Layout.of_cover fig7_mo in
  let d = Defect_map.create ~rows:6 ~cols:10 in
  Defect_map.set d 0 0 Junction.Stuck_open (* m1 needs x1 here *);
  Alcotest.(check bool) "stuck-open on a required literal breaks f" false
    (Sim.agrees_with_reference ~defects:d layout)

let test_sim_closed_defect_poisons () =
  let layout = Layout.of_cover fig7_mo in
  let d = Defect_map.create ~rows:6 ~cols:10 in
  Defect_map.set d 0 5 Junction.Stuck_closed;
  Alcotest.(check bool) "stuck-closed breaks the computation" false
    (Sim.agrees_with_reference ~defects:d layout)

let test_sim_open_defect_fixed_by_remapping () =
  (* The Fig. 7 scenario: defects break the naive placement; a different
     row assignment avoids them. Defect: stuck-open at (row 0, col 0).
     m1 = x1 x2 needs x1 there, but m2 = x2 x3 does not use col 0, so
     swapping m1 and m2 restores validity. *)
  let fm = Function_matrix.build fig7_mo in
  let d = Defect_map.create ~rows:6 ~cols:10 in
  Defect_map.set d 0 0 Junction.Stuck_open;
  let naive = Layout.place fm in
  Alcotest.(check bool) "naive placement invalid" false (Layout.respects naive d);
  let remapped = Layout.place ~row_assignment:[| 1; 0; 2; 3; 4; 5 |] fm in
  Alcotest.(check bool) "remapped placement valid" true (Layout.respects remapped d);
  Alcotest.(check bool) "remapped crossbar computes the function" true
    (Sim.agrees_with_reference ~defects:d remapped)

let test_sim_spare_rows () =
  let fm = Function_matrix.build fig7_mo in
  let layout = Layout.place ~physical_rows:8 ~row_assignment:[| 7; 6; 2; 3; 0; 5 |] fm in
  Alcotest.(check bool) "sparse placement computes the function" true
    (Sim.agrees_with_reference layout)

(* ------------------------------------------------------------------ *)
(* Multilevel                                                         *)
(* ------------------------------------------------------------------ *)

let test_multilevel_paper_example () =
  let mapped = Mcx_netlist.Tech_map.map_cover paper_cover in
  let ml = Multilevel.place mapped in
  Alcotest.(check int) "3 rows" 3 ml.Multilevel.rows;
  Alcotest.(check int) "19 cols" 19 ml.Multilevel.cols;
  Alcotest.(check bool) "multi-level crossbar computes f" true
    (Multilevel.agrees_with_reference ml paper_mo)

let test_multilevel_multioutput () =
  let mo = fig7_mo in
  let mapped = Mcx_netlist.Tech_map.map_mo mo in
  let ml = Multilevel.place mapped in
  Alcotest.(check bool) "computes both outputs" true
    (Multilevel.agrees_with_reference ml mo)

let test_multilevel_direct_output () =
  (* f = x1: no gate at all; the latch drives the output directly. *)
  let mo = Mo_cover.of_single (cover [ "-1-" ]) in
  let mapped = Mcx_netlist.Tech_map.map_mo mo in
  let ml = Multilevel.place mapped in
  Alcotest.(check bool) "literal output" true (Multilevel.agrees_with_reference ml mo)

let test_multilevel_defect_breaks () =
  let mapped = Mcx_netlist.Tech_map.map_cover paper_cover in
  let ml = Multilevel.place mapped in
  let d = Defect_map.create ~rows:ml.Multilevel.physical_rows ~cols:ml.Multilevel.physical_cols in
  (* Poison the connection column junction the top gate reads. *)
  let conn_col =
    match ml.Multilevel.conn_col_of_gate.(0) with Some c -> c | None -> Alcotest.fail "gate 0 inner"
  in
  Defect_map.set d 1 conn_col Junction.Stuck_open;
  Alcotest.(check bool) "stuck-open on connection breaks f" false
    (Multilevel.agrees_with_reference ~defects:d ml paper_mo)

let test_multilevel_row_assignment () =
  let mapped = Mcx_netlist.Tech_map.map_cover paper_cover in
  let ml = Multilevel.place ~physical_rows:5 ~row_assignment:[| 4; 2; 0 |] mapped in
  Alcotest.(check bool) "permuted multi-level computes f" true
    (Multilevel.agrees_with_reference ml paper_mo)

(* ------------------------------------------------------------------ *)
(* Latency & energy models                                            *)
(* ------------------------------------------------------------------ *)

let test_steps_models () =
  Alcotest.(check int) "two-level is 7 states" 7 Cost.two_level_steps;
  let mapped = Mcx_netlist.Tech_map.map_cover paper_cover in
  (* the fig5 network has 2 gates in 2 levels *)
  Alcotest.(check int) "3G+4" 10 (Cost.multi_level_steps mapped);
  Alcotest.(check int) "3*levels+4" 10 (Cost.multi_level_steps ~level_parallel:true mapped);
  let wide = Mcx_netlist.Tech_map.map_mo fig7_mo in
  Alcotest.(check bool) "parallel <= serial" true
    (Cost.multi_level_steps ~level_parallel:true wide <= Cost.multi_level_steps wide)

let test_two_level_writes_matches_sim () =
  let check mo include_il_row =
    let layout = Layout.of_cover ~include_il_row mo in
    let n = Mo_cover.n_inputs mo in
    let v = Array.init n (fun i -> i mod 2 = 0) in
    let _, writes = Sim.run_counting layout v in
    Alcotest.(check int) "closed form = instrumented sim"
      (Cost.two_level_writes ~include_il_row mo)
      writes
  in
  check paper_mo true;
  check paper_mo false;
  check fig7_mo false

let test_multi_level_writes_matches_sim () =
  let check mo =
    let mapped = Mcx_netlist.Tech_map.map_mo mo in
    let ml = Multilevel.place mapped in
    let n = Mo_cover.n_inputs mo in
    let v = Array.init n (fun i -> i mod 3 = 0) in
    let _, writes = Multilevel.run_counting ml v in
    Alcotest.(check int) "closed form = instrumented sim"
      (Cost.multi_level_writes mapped) writes
  in
  check paper_mo;
  check fig7_mo;
  check (Mo_cover.of_single (cover [ "-1-" ]))

let test_writes_independent_of_input () =
  (* The write count is input-independent: every programmed junction is
     written each computation regardless of the value. *)
  let layout = Layout.of_cover fig7_mo in
  let w v = snd (Sim.run_counting layout v) in
  Alcotest.(check int) "same writes"
    (w [| false; false; false |])
    (w [| true; true; true |])

(* ------------------------------------------------------------------ *)
(* Transient upsets                                                   *)
(* ------------------------------------------------------------------ *)

let test_upsets_zero_rate_is_run () =
  let layout = Layout.of_cover fig7_mo in
  let prng = Mcx_util.Prng.create 1 in
  for idx = 0 to 7 do
    let v = Array.init 3 (fun i -> (idx lsr i) land 1 = 1) in
    Alcotest.(check (array bool)) "rate 0 = plain run" (Sim.run layout v)
      (Sim.run_with_upsets ~prng ~upset_rate:0. layout v)
  done

let test_upsets_certain_rate_breaks () =
  (* rate 1.0 flips every write; the all-zero input would normally give
     all-false outputs, upsets make the computation diverge somewhere. *)
  let layout = Layout.of_cover fig7_mo in
  let prng = Mcx_util.Prng.create 2 in
  let wrong = ref 0 in
  for idx = 0 to 7 do
    let v = Array.init 3 (fun i -> (idx lsr i) land 1 = 1) in
    if Sim.run_with_upsets ~prng ~upset_rate:1.0 layout v <> Sim.run layout v then incr wrong
  done;
  Alcotest.(check bool) "full upsets corrupt some outputs" true (!wrong > 0)

let test_upsets_multilevel_zero_rate () =
  let mapped = Mcx_netlist.Tech_map.map_mo fig7_mo in
  let ml = Multilevel.place mapped in
  let prng = Mcx_util.Prng.create 3 in
  for idx = 0 to 7 do
    let v = Array.init 3 (fun i -> (idx lsr i) land 1 = 1) in
    Alcotest.(check (array bool)) "rate 0 = plain run" (Multilevel.run ml v)
      (Multilevel.run_with_upsets ~prng ~upset_rate:0. ml v)
  done

(* ------------------------------------------------------------------ *)
(* Analog                                                             *)
(* ------------------------------------------------------------------ *)

let test_analog_divider () =
  (* one junction at R_OFF: the line sits near V_dd; at R_ON, near GND *)
  Alcotest.(check bool) "single off senses high" true (Analog.sensed_conjunction [ true ]);
  Alcotest.(check bool) "single on senses low" false (Analog.sensed_conjunction [ false ]);
  Alcotest.(check bool) "one on among many off dominates" false
    (Analog.sensed_conjunction (false :: List.init 20 (fun _ -> true)));
  Alcotest.(check (float 1e-9)) "empty line floats at vdd" 1.0 (Analog.line_voltage [])

let test_analog_matches_functional_at_benchmark_widths () =
  (* all Table II crossbars are narrower than the electrical limit and the
     analog sense agrees with the Boolean conjunction there *)
  let limit = Analog.max_reliable_width () in
  Alcotest.(check bool) "limit covers exp5's 142 columns" true (limit >= 142);
  List.iter
    (fun width ->
      Alcotest.(check bool)
        (Printf.sprintf "width %d" width)
        true
        (Analog.matches_functional ~width ()))
    [ 1; 2; 16; 44; 142 ]

let test_analog_margin_monotone () =
  let m w = Analog.sense_margin ~width:w () in
  Alcotest.(check bool) "margin shrinks with width (beyond the knee)" true
    (m 320 < m 128 && m 128 < m 44);
  Alcotest.(check bool) "margin eventually negative" true (m 4000 < 0.);
  Alcotest.(check bool) "width 0 rejected" true
    (try
       ignore (m 0);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Render                                                             *)
(* ------------------------------------------------------------------ *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_render_two_level () =
  let layout = Layout.of_cover fig7_mo in
  let text = Render.two_level layout in
  Alcotest.(check bool) "has active switches" true (contains text "#");
  Alcotest.(check bool) "labels products" true (contains text "m1");
  Alcotest.(check bool) "labels outputs" true (contains text "O1");
  (* 6 physical rows + 3 header lines (widest label x1' etc.) *)
  Alcotest.(check int) "line count" (6 + 3)
    (List.length (List.filter (fun l -> l <> "") (String.split_on_char '\n' text)))

let test_render_defect_overlay () =
  let layout = Layout.of_cover fig7_mo in
  let d = Defect_map.create ~rows:6 ~cols:10 in
  Defect_map.set d 0 0 Junction.Stuck_open;
  (* (0,0) is a required switch for m1 -> capital O marks the violation *)
  Defect_map.set d 5 2 Junction.Stuck_closed;
  let text = Render.two_level ~defects:d layout in
  Alcotest.(check bool) "violated junction" true (contains text "O#");
  Alcotest.(check bool) "closed junction shown" true
    (contains text "x" || contains text "X")

let test_render_multilevel () =
  let mapped = Mcx_netlist.Tech_map.map_cover paper_cover in
  let ml = Multilevel.place mapped in
  let text = Render.multi_level ml in
  Alcotest.(check bool) "gate rows labelled" true (contains text "g0");
  Alcotest.(check bool) "latch row labelled" true (contains text "OL");
  (* column headers are rendered vertically: the first header line holds
     the first character of every column label, so the connection column
     contributes a 'c'. *)
  (match String.split_on_char '\n' text with
  | first :: _ -> Alcotest.(check bool) "connection column labelled" true (contains first "c")
  | [] -> Alcotest.fail "empty rendering")

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                  *)
(* ------------------------------------------------------------------ *)

let gen_cover ~arity ~max_products =
  QCheck2.Gen.(
    let gen_lit = oneofl [ Literal.Pos; Literal.Neg; Literal.Absent; Literal.Absent ] in
    let gen_cube = array_size (pure arity) gen_lit in
    let* n = int_range 1 max_products in
    let+ cubes = list_size (pure n) gen_cube in
    Cover.create ~arity (List.map Cube.of_literals cubes))

let prop_sim_matches_cover =
  QCheck2.Test.make ~name:"two-level sim computes the cover" ~count:60
    (gen_cover ~arity:4 ~max_products:5)
    (fun f -> Sim.agrees_with_reference (Layout.of_cover (Mo_cover.of_single f)))

let prop_sim_matches_cover_with_il =
  QCheck2.Test.make ~name:"two-level sim with IL row computes the cover" ~count:40
    (gen_cover ~arity:4 ~max_products:5)
    (fun f ->
      Sim.agrees_with_reference (Layout.of_cover ~include_il_row:true (Mo_cover.of_single f)))

let prop_multilevel_matches_cover =
  QCheck2.Test.make ~name:"multi-level sim computes the cover" ~count:60
    (gen_cover ~arity:4 ~max_products:5)
    (fun f ->
      let mo = Mo_cover.of_single f in
      let ml = Multilevel.place (Mcx_netlist.Tech_map.map_mo mo) in
      Multilevel.agrees_with_reference ml mo)

let prop_multilevel_multioutput =
  QCheck2.Test.make ~name:"multi-level sim, two outputs" ~count:40
    QCheck2.Gen.(pair (gen_cover ~arity:4 ~max_products:4) (gen_cover ~arity:4 ~max_products:4))
    (fun (f, g) ->
      let mo = Mo_cover.of_covers [ f; g ] in
      let ml = Multilevel.place (Mcx_netlist.Tech_map.map_mo mo) in
      Multilevel.agrees_with_reference ml mo)

let prop_valid_respect_implies_correct =
  QCheck2.Test.make ~name:"respects + stuck-open defects => correct outputs" ~count:60
    QCheck2.Gen.(pair (gen_cover ~arity:4 ~max_products:4) (int_bound 10000))
    (fun (f, seed) ->
      let mo = Mo_cover.of_single f in
      let layout = Layout.of_cover mo in
      let prng = Mcx_util.Prng.create seed in
      let d =
        Defect_map.random prng ~rows:layout.Layout.physical_rows
          ~cols:layout.Layout.physical_cols ~open_rate:0.15 ~closed_rate:0.
      in
      (* Only claim correctness when the identity placement is valid. *)
      (not (Layout.respects layout d)) || Sim.agrees_with_reference ~defects:d layout)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_sim_matches_cover;
      prop_sim_matches_cover_with_il;
      prop_multilevel_matches_cover;
      prop_multilevel_multioutput;
      prop_valid_respect_implies_correct;
    ]

let () =
  Alcotest.run "mcx_crossbar"
    [
      ("junction", [ Alcotest.test_case "store semantics" `Quick test_junction_store ]);
      ( "defect_map",
        [
          Alcotest.test_case "random rates" `Quick test_defect_map_random_rates;
          Alcotest.test_case "usable lines" `Quick test_defect_map_usable_lines;
          Alcotest.test_case "bad rates" `Quick test_defect_map_bad_rates;
        ] );
      ( "geometry",
        [
          Alcotest.test_case "fig3 dims" `Quick test_geometry_fig3_dims;
          Alcotest.test_case "table model" `Quick test_geometry_table_model;
          Alcotest.test_case "role roundtrip" `Quick test_geometry_role_roundtrip;
          Alcotest.test_case "literal columns" `Quick test_geometry_literal_columns;
        ] );
      ( "cost",
        [
          Alcotest.test_case "fig3: 126 area, 31 switches" `Quick test_fig3_cost;
          Alcotest.test_case "table II closed forms" `Quick test_table2_closed_form_areas;
          Alcotest.test_case "fig5 multi-level" `Quick test_fig5_multilevel_cost;
          Alcotest.test_case "FM structure (fig8 dims)" `Quick test_fm_structure;
          Alcotest.test_case "dual choice" `Quick test_dual_choice;
        ] );
      ( "layout",
        [
          Alcotest.test_case "identity" `Quick test_layout_identity;
          Alcotest.test_case "permutation" `Quick test_layout_permutation;
          Alcotest.test_case "validation" `Quick test_layout_validation;
          Alcotest.test_case "respects" `Quick test_layout_respects;
        ] );
      ( "sim",
        [
          Alcotest.test_case "paper example" `Quick test_sim_paper_example;
          Alcotest.test_case "fig7 function" `Quick test_sim_fig7;
          Alcotest.test_case "permuted rows" `Quick test_sim_permuted_rows;
          Alcotest.test_case "harmless open defect" `Quick test_sim_harmless_open_defect;
          Alcotest.test_case "harmful open defect" `Quick test_sim_harmful_open_defect;
          Alcotest.test_case "closed defect poisons" `Quick test_sim_closed_defect_poisons;
          Alcotest.test_case "remapping fixes defect" `Quick test_sim_open_defect_fixed_by_remapping;
          Alcotest.test_case "spare rows" `Quick test_sim_spare_rows;
        ] );
      ( "cost_models",
        [
          Alcotest.test_case "step counts" `Quick test_steps_models;
          Alcotest.test_case "two-level writes = sim" `Quick test_two_level_writes_matches_sim;
          Alcotest.test_case "multi-level writes = sim" `Quick test_multi_level_writes_matches_sim;
          Alcotest.test_case "writes input-independent" `Quick test_writes_independent_of_input;
        ] );
      ( "multilevel",
        [
          Alcotest.test_case "paper example 3x19" `Quick test_multilevel_paper_example;
          Alcotest.test_case "multi-output" `Quick test_multilevel_multioutput;
          Alcotest.test_case "direct literal output" `Quick test_multilevel_direct_output;
          Alcotest.test_case "connection defect breaks" `Quick test_multilevel_defect_breaks;
          Alcotest.test_case "row assignment" `Quick test_multilevel_row_assignment;
        ] );
      ( "analog",
        [
          Alcotest.test_case "divider" `Quick test_analog_divider;
          Alcotest.test_case "matches functional" `Quick test_analog_matches_functional_at_benchmark_widths;
          Alcotest.test_case "margin monotone" `Quick test_analog_margin_monotone;
        ] );
      ( "transient",
        [
          Alcotest.test_case "zero rate" `Quick test_upsets_zero_rate_is_run;
          Alcotest.test_case "certain rate" `Quick test_upsets_certain_rate_breaks;
          Alcotest.test_case "multi-level zero rate" `Quick test_upsets_multilevel_zero_rate;
        ] );
      ( "render",
        [
          Alcotest.test_case "two-level" `Quick test_render_two_level;
          Alcotest.test_case "defect overlay" `Quick test_render_defect_overlay;
          Alcotest.test_case "multi-level" `Quick test_render_multilevel;
        ] );
      ("properties", qcheck_cases);
    ]
