test/test_netlist.ml: Alcotest Array Bool Cover Cube Export Factor Fun Kernel List Literal Mcx_logic Mcx_netlist Mo_cover Network Printf QCheck2 QCheck_alcotest Signal String Tech_map
