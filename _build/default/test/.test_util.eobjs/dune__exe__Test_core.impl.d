test/test_core.ml: Alcotest Array Mcx
