test/test_util.ml: Alcotest Array Bmatrix Fun List Mcx_util Prng Stats String Texttable Timing
