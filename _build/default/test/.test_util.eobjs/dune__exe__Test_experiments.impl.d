test/test_experiments.ml: Ablation Aging Alcotest Fig6 Lazy List Mcx_experiments Mldefect Printf Ratesweep String Table1 Table2 Tradeoff Transient Yield
