test/test_benchmarks.ml: Alcotest Arith Array Cover Float List Mcx_benchmarks Mcx_logic Mcx_util Mo_cover Pla Printf Suite Synthetic
