(* End-to-end tests of the umbrella API (lib/core). *)

let cover rows = Mcx.Logic.Mo_cover.of_single (Mcx.Logic.Cover.of_strings rows)

let paper_f = cover [ "1-------"; "-1------"; "--1-----"; "---1----"; "----1111" ]

let test_synthesize_two_level () =
  let layout, report, used_dual = Mcx.synthesize_two_level ~dual:false paper_f in
  Alcotest.(check bool) "no dual when disabled" false used_dual;
  Alcotest.(check int) "area (table model)" 108 report.Mcx.Crossbar.Cost.area;
  Alcotest.(check bool) "verifies" true (Mcx.verify layout)

let test_synthesize_two_level_il_row () =
  let _, report, _ = Mcx.synthesize_two_level ~include_il_row:true ~dual:false paper_f in
  Alcotest.(check int) "fig3 area" 126 report.Mcx.Crossbar.Cost.area;
  Alcotest.(check int) "fig3 switches" 31 report.Mcx.Crossbar.Cost.switches

let test_synthesize_two_level_dual () =
  (* f' = single cube; the dual implementation must be chosen. *)
  let f = cover [ "0--"; "-0-"; "--0" ] in
  let layout, report, used_dual = Mcx.synthesize_two_level f in
  Alcotest.(check bool) "dual chosen" true used_dual;
  Alcotest.(check int) "dual area" 16 report.Mcx.Crossbar.Cost.area;
  (* The layout computes the complement; it verifies against its own cover. *)
  Alcotest.(check bool) "verifies" true (Mcx.verify layout)

let test_synthesize_multi_level () =
  let ml, report = Mcx.synthesize_multi_level paper_f in
  Alcotest.(check int) "fig5 area" 57 report.Mcx.Crossbar.Cost.area;
  Alcotest.(check bool) "multi-level computes f" true
    (Mcx.Crossbar.Multilevel.agrees_with_reference ml paper_f)

let test_map_defect_tolerant () =
  let f = cover [ "11-"; "-11"; "1-1" ] in
  let prng = Mcx.Util.Prng.create 31 in
  let mapped = ref 0 in
  for _ = 1 to 40 do
    let defects =
      Mcx.Crossbar.Defect_map.random prng ~rows:4 ~cols:8 ~open_rate:0.1 ~closed_rate:0.
    in
    (match Mcx.map_defect_tolerant ~algorithm:Mcx.Exact f defects with
    | Some layout ->
      incr mapped;
      Alcotest.(check bool) "defective crossbar still computes f" true
        (Mcx.verify ~defects layout)
    | None -> ());
    (* The hybrid result, when present, must also verify. *)
    match Mcx.map_defect_tolerant ~algorithm:Mcx.Hybrid f defects with
    | Some layout ->
      Alcotest.(check bool) "hybrid placement verifies" true (Mcx.verify ~defects layout)
    | None -> ()
  done;
  Alcotest.(check bool) "mapped several samples" true (!mapped > 10)

let test_map_defect_tolerant_dimension_check () =
  let f = cover [ "11-" ] in
  let defects = Mcx.Crossbar.Defect_map.create ~rows:5 ~cols:5 in
  Alcotest.(check bool) "wrong dims rejected" true
    (try
       ignore (Mcx.map_defect_tolerant ~algorithm:Mcx.Exact f defects);
       false
     with Invalid_argument _ -> true)

let test_simulate () =
  let layout, _, _ = Mcx.synthesize_two_level ~dual:false paper_f in
  let v = Array.make 8 false in
  v.(0) <- true;
  Alcotest.(check (array bool)) "x1 -> f=1" [| true |] (Mcx.simulate layout v);
  let zero = Array.make 8 false in
  Alcotest.(check (array bool)) "0 -> f=0" [| false |] (Mcx.simulate layout zero)

let () =
  Alcotest.run "mcx"
    [
      ( "api",
        [
          Alcotest.test_case "two-level synth" `Quick test_synthesize_two_level;
          Alcotest.test_case "two-level + IL row" `Quick test_synthesize_two_level_il_row;
          Alcotest.test_case "dual optimization" `Quick test_synthesize_two_level_dual;
          Alcotest.test_case "multi-level synth" `Quick test_synthesize_multi_level;
          Alcotest.test_case "defect-tolerant mapping" `Quick test_map_defect_tolerant;
          Alcotest.test_case "dimension check" `Quick test_map_defect_tolerant_dimension_check;
          Alcotest.test_case "simulate" `Quick test_simulate;
        ] );
    ]
