(* Two-level vs multi-level synthesis across real circuits (§III).

   For each arithmetic benchmark this example synthesizes both crossbar
   designs, prints the area trade-off, and checks both against the
   function's truth table. It also demonstrates the dual optimization: the
   crossbar computes f and f' natively, so the cheaper of the two covers
   is implemented.

   Run with:  dune exec examples/multilevel_synthesis.exe *)

let () =
  let benchmarks = [ "rd53"; "squar5"; "sqrt8"; "inc"; "t481" ] in
  let table =
    Mcx.Util.Texttable.create
      [ "bench"; "I"; "O"; "P"; "2-level area"; "multi-level area"; "winner"; "dual?" ]
  in
  List.iter
    (fun name ->
      let bench = Mcx.Benchmarks.Suite.find name in
      let cover = Mcx.Benchmarks.Suite.cover bench in
      let _, two, used_dual = Mcx.synthesize_two_level cover in
      let ml, multi = Mcx.synthesize_multi_level cover in
      (* verify the multi-level design whenever exhaustive checking is
         feasible *)
      let verified =
        Mcx.Logic.Mo_cover.n_inputs cover <= 16
        && Mcx.Crossbar.Multilevel.agrees_with_reference ml cover
      in
      if Mcx.Logic.Mo_cover.n_inputs cover <= 16 && not verified then
        failwith (name ^ ": multi-level crossbar does not match the function");
      Mcx.Util.Texttable.add_row table
        [
          name;
          string_of_int (Mcx.Logic.Mo_cover.n_inputs cover);
          string_of_int (Mcx.Logic.Mo_cover.n_outputs cover);
          string_of_int (Mcx.Logic.Mo_cover.product_count cover);
          string_of_int two.Mcx.Crossbar.Cost.area;
          string_of_int multi.Mcx.Crossbar.Cost.area;
          (if multi.Mcx.Crossbar.Cost.area < two.Mcx.Crossbar.Cost.area then "multi"
           else "two");
          (if used_dual then "yes" else "no");
        ])
    benchmarks;
  Mcx.Util.Texttable.print table;
  print_newline ();

  (* Show what multi-level evaluation actually does: the factored NAND
     network of t481 (an AND of XORs) collapses 256 two-level products
     into a handful of shared gates, evaluated row by row. *)
  let t481 = Mcx.Benchmarks.Suite.cover (Mcx.Benchmarks.Suite.find "t481") in
  let mapped = Mcx.Netlist.Tech_map.map_mo t481 in
  let net = mapped.Mcx.Netlist.Tech_map.network in
  Printf.printf
    "t481 as a NAND network: %d gates in %d levels replace %d two-level products\n"
    (Mcx.Netlist.Network.gate_count net)
    (Mcx.Netlist.Network.levels net)
    (Mcx.Logic.Mo_cover.product_count t481)
