(* Defect-tolerant mapping, end to end (the paper's §IV on a real circuit).

   Scenario: a fab hands you batches of optimum-size crossbars for the
   sqrt8 benchmark; each die has ~10% of its memristors stuck open. A naive
   (identity) placement only works on near-perfect dies. The hybrid
   algorithm (Algorithm 1) re-permutes the rows around the defects; the
   exact algorithm additionally proves infeasibility when it fails. Every
   successful placement is re-validated by simulating the defective
   crossbar exhaustively.

   Run with:  dune exec examples/defect_tolerant_mapping.exe *)

let () =
  let bench = Mcx.Benchmarks.Suite.find "sqrt8" in
  let cover = Mcx.Benchmarks.Suite.cover bench in
  let fm = Mcx.Crossbar.Function_matrix.build cover in
  let geometry = fm.Mcx.Crossbar.Function_matrix.geometry in
  let rows = Mcx.Crossbar.Geometry.rows geometry in
  let cols = Mcx.Crossbar.Geometry.cols geometry in
  Printf.printf "sqrt8: %d products, optimum crossbar %d x %d\n"
    (Mcx.Logic.Mo_cover.product_count cover) rows cols;

  let dies = 60 in
  let prng = Mcx.Util.Prng.create 42 in
  let naive_ok = ref 0 and hybrid_ok = ref 0 and exact_ok = ref 0 in
  let simulated_ok = ref 0 and simulated = ref 0 in
  for die = 1 to dies do
    let defects =
      Mcx.Crossbar.Defect_map.random prng ~rows ~cols ~open_rate:0.10 ~closed_rate:0.
    in
    let cm = Mcx.Mapping.Matching.cm_of_defects defects in
    (* naive: keep the design's own row order *)
    let identity = Array.init rows Fun.id in
    if
      Mcx.Mapping.Matching.check_assignment ~fm:fm.Mcx.Crossbar.Function_matrix.matrix ~cm
        identity
    then incr naive_ok;
    (* hybrid (HBA) *)
    (match Mcx.Mapping.Hybrid.map fm cm with
    | Some assignment ->
      incr hybrid_ok;
      (* prove the die actually computes sqrt: run all 256 inputs through
         the defective crossbar *)
      let layout = Mcx.Crossbar.Layout.place ~row_assignment:assignment fm in
      incr simulated;
      if Mcx.verify ~defects layout then incr simulated_ok
      else Printf.printf "die %d: SIMULATION MISMATCH (bug!)\n" die
    | None -> ());
    (* exact (EA) *)
    if Mcx.Mapping.Exact.feasible fm cm then incr exact_ok
  done;
  Printf.printf "dies salvaged out of %d:\n" dies;
  Printf.printf "  naive placement : %d\n" !naive_ok;
  Printf.printf "  hybrid algorithm: %d\n" !hybrid_ok;
  Printf.printf "  exact algorithm : %d (upper bound: counts dies where any mapping exists)\n"
    !exact_ok;
  Printf.printf "simulation re-validation: %d/%d mapped dies compute sqrt8 exactly\n"
    !simulated_ok !simulated
