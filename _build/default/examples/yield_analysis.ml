(* Yield vs redundancy — the paper's future-work study, runnable (§IV.A/§VI).

   Stuck-at-closed defects poison an entire horizontal and vertical line,
   so an optimum-size crossbar with even one closed defect in its used
   area is unsalvageable. This example provisions spare lines and measures
   how yield recovers, trading area for fault tolerance.

   Run with:  dune exec examples/yield_analysis.exe *)

let () =
  let benchmark = "rd53" in
  Printf.printf
    "mapping yield for %s under 5%% stuck-open + 1%% stuck-closed defects\n\n" benchmark;
  let sweep =
    Mcx.Experiments.Yield.run ~samples:150 ~spare_levels:[ 0; 1; 2; 3; 4; 6; 8 ]
      ~open_rate:0.05 ~closed_rate:0.01 ~seed:7 ~benchmark ()
  in
  print_string (Mcx.Util.Texttable.render (Mcx.Experiments.Yield.to_table sweep));
  print_newline ();

  (* The headline numbers, spelled out. *)
  (match (sweep.Mcx.Experiments.Yield.points, List.rev sweep.Mcx.Experiments.Yield.points) with
  | first :: _, last :: _ ->
    Printf.printf
      "no spares: %.0f%% of dies map; %d spare lines (%.0f%% extra area): %.0f%%\n"
      first.Mcx.Experiments.Yield.psucc last.Mcx.Experiments.Yield.spares
      last.Mcx.Experiments.Yield.area_overhead last.Mcx.Experiments.Yield.psucc
  | _, _ -> ());

  (* One concrete salvage, end to end. *)
  let bench = Mcx.Benchmarks.Suite.find benchmark in
  let cover = Mcx.Benchmarks.Suite.cover bench in
  let fm = Mcx.Crossbar.Function_matrix.build cover in
  let geometry = fm.Mcx.Crossbar.Function_matrix.geometry in
  let spares = 4 in
  let rows = Mcx.Crossbar.Geometry.rows geometry + spares in
  let cols = Mcx.Crossbar.Geometry.cols geometry + spares in
  let prng = Mcx.Util.Prng.create 11 in
  let rec salvage attempt =
    if attempt > 50 then print_endline "no salvageable die drawn (unlucky seed)"
    else begin
      let defects =
        Mcx.Crossbar.Defect_map.random prng ~rows ~cols ~open_rate:0.05 ~closed_rate:0.01
      in
      let closed = Mcx.Crossbar.Defect_map.count defects Mcx.Crossbar.Junction.Stuck_closed in
      match Mcx.Mapping.Redundant.map ~prng ~algorithm:`Hybrid fm defects with
      | Some placement when closed > 0 ->
        let layout =
          Mcx.Crossbar.Layout.place ~row_assignment:placement.Mcx.Mapping.Redundant.row_assignment
            ~col_assignment:placement.Mcx.Mapping.Redundant.col_assignment ~physical_rows:rows
            ~physical_cols:cols fm
        in
        Printf.printf
          "die with %d stuck-closed defect(s) salvaged using spare lines; simulation: %s\n"
          closed
          (if Mcx.verify ~defects layout then "computes rd53 exactly" else "MISMATCH")
      | Some _ | None -> salvage (attempt + 1)
    end
  in
  salvage 1
