(* Field aging and incremental repair.

   A crossbar is mapped once at test time, then keeps losing junctions to
   stuck-open faults while deployed. Remapping from scratch reprograms the
   whole array; the repair engine instead moves only the rows the newest
   fault broke. This example follows a single die of the squar5 benchmark
   through its whole life and prints what each fault cost to fix.

   Run with:  dune exec examples/field_repair.exe *)

let () =
  let cover = Mcx.Benchmarks.Suite.cover (Mcx.Benchmarks.Suite.find "squar5") in
  let fm_struct = Mcx.Crossbar.Function_matrix.build cover in
  let fm = fm_struct.Mcx.Crossbar.Function_matrix.matrix in
  let rows = Mcx.Util.Bmatrix.rows fm and cols = Mcx.Util.Bmatrix.cols fm in
  Printf.printf "squar5 mapped on its optimum %d x %d crossbar; injecting faults...\n\n" rows
    cols;
  let prng = Mcx.Util.Prng.create 77 in
  let defects = Mcx.Crossbar.Defect_map.create ~rows ~cols in
  let assignment = ref (Array.init rows Fun.id) in
  let faults = ref 0 and repairs = ref 0 and total_moves = ref 0 in
  let alive = ref true in
  while !alive do
    let r = Mcx.Util.Prng.int prng rows and c = Mcx.Util.Prng.int prng cols in
    if
      Mcx.Crossbar.Junction.defect_equal
        (Mcx.Crossbar.Defect_map.get defects r c)
        Mcx.Crossbar.Junction.Functional
    then begin
      Mcx.Crossbar.Defect_map.set defects r c Mcx.Crossbar.Junction.Stuck_open;
      incr faults;
      let cm = Mcx.Mapping.Matching.cm_of_defects defects in
      match Mcx.Mapping.Repair.repair ~fm ~cm !assignment with
      | Some { Mcx.Mapping.Repair.assignment = repaired; rows_touched } ->
        if rows_touched > 0 then begin
          incr repairs;
          total_moves := !total_moves + rows_touched;
          Printf.printf "fault #%3d at (%2d,%2d) broke the placement; repaired by moving %d row%s\n"
            !faults r c rows_touched
            (if rows_touched = 1 then "" else "s");
          (* prove the repaired die still computes squares *)
          let layout =
            Mcx.Crossbar.Layout.place ~row_assignment:repaired fm_struct
          in
          assert (Mcx.verify ~defects layout)
        end;
        assignment := repaired
      | None ->
        Printf.printf "fault #%3d at (%2d,%2d): no valid mapping exists any more - die retired\n"
          !faults r c;
        alive := false
    end
  done;
  Printf.printf "\nlifetime: %d faults absorbed, %d needed repairs, %.1f rows moved per repair\n"
    (!faults - 1) !repairs
    (if !repairs = 0 then 0. else float_of_int !total_moves /. float_of_int !repairs)
