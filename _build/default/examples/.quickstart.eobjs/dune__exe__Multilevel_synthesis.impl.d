examples/multilevel_synthesis.ml: List Mcx Printf
