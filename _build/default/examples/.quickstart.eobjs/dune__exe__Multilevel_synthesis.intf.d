examples/multilevel_synthesis.mli:
