examples/yield_analysis.ml: List Mcx Printf
