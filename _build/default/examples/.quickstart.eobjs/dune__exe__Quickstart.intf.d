examples/quickstart.mli:
