examples/defect_tolerant_mapping.ml: Array Fun Mcx Printf
