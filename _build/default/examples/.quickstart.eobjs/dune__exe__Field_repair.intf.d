examples/field_repair.mli:
