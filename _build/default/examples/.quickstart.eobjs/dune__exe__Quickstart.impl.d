examples/quickstart.ml: Array Mcx Printf String
