examples/field_repair.ml: Array Fun Mcx Printf
