examples/defect_tolerant_mapping.mli:
