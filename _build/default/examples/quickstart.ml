(* Quickstart: define a Boolean function, put it on a crossbar, run it.

   The function is the paper's running example
     f = x1 + x2 + x3 + x4 + x5 x6 x7 x8
   written in PLA row syntax: one string per product, '1' positive literal,
   '0' complemented literal, '-' absent.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. Build the sum-of-products cover. *)
  let f =
    Mcx.Logic.Cover.of_strings
      [ "1-------"; "-1------"; "--1-----"; "---1----"; "----1111" ]
  in
  let cover = Mcx.Logic.Mo_cover.of_single f in

  (* 2. Synthesize it onto a two-level NAND/AND-plane crossbar. *)
  let layout, report, used_dual = Mcx.synthesize_two_level ~dual:false cover in
  Printf.printf "two-level crossbar: %d x %d lines, area %d, %d switches (IR %.1f%%)\n"
    report.Mcx.Crossbar.Cost.rows report.Mcx.Crossbar.Cost.cols
    report.Mcx.Crossbar.Cost.area report.Mcx.Crossbar.Cost.switches
    report.Mcx.Crossbar.Cost.inclusion_ratio;
  assert (not used_dual);

  (* 3. Simulate the crossbar on a few inputs: the simulator walks the
        paper's INA/RI/CFM/EVM/EVR/INR/SO state machine junction by
        junction. *)
  let show input =
    let v = Array.init 8 (fun i -> input.[i] = '1') in
    let out = Mcx.simulate layout v in
    Printf.printf "  f(%s) = %b\n" input out.(0)
  in
  show "10000000";
  show "00000000";
  show "00001111";
  show "00001110";

  (* 4. Cross-check every input against the SOP semantics, and draw the
        programmed crossbar ('#' = active switch, '.' = disabled). *)
  Printf.printf "exhaustive check (256 inputs): %s\n"
    (if Mcx.verify layout then "crossbar == SOP" else "MISMATCH");
  print_newline ();
  print_string (Mcx.Crossbar.Render.two_level layout);
  print_newline ();

  (* 5. The same function as a multi-level design — less than half the
        area, at the price of serialized gate-by-gate evaluation. *)
  let ml, ml_report = Mcx.synthesize_multi_level cover in
  Printf.printf "multi-level crossbar: %d x %d lines, area %d\n"
    ml_report.Mcx.Crossbar.Cost.rows ml_report.Mcx.Crossbar.Cost.cols
    ml_report.Mcx.Crossbar.Cost.area;
  Printf.printf "multi-level check: %s\n"
    (if Mcx.Crossbar.Multilevel.agrees_with_reference ml cover then "crossbar == SOP"
     else "MISMATCH")
