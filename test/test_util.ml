open Mcx_util

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  Alcotest.(check bool) "different seeds differ" false (Prng.bits64 a = Prng.bits64 b)

let test_prng_copy () =
  let a = Prng.create 7 in
  let _ = Prng.bits64 a in
  let b = Prng.copy a in
  Alcotest.(check int64) "copy replays" (Prng.bits64 a) (Prng.bits64 b)

let test_prng_split_independent () =
  let a = Prng.create 7 in
  let child = Prng.split a in
  Alcotest.(check bool) "child differs from parent" false (Prng.bits64 child = Prng.bits64 a)

let test_prng_int_bounds () =
  let g = Prng.create 5 in
  for _ = 1 to 1000 do
    let v = Prng.int g 17 in
    Alcotest.(check bool) "0 <= v < 17" true (v >= 0 && v < 17)
  done

let test_prng_int_invalid () =
  let g = Prng.create 5 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0))

let test_prng_float_range () =
  let g = Prng.create 11 in
  for _ = 1 to 1000 do
    let v = Prng.float g in
    Alcotest.(check bool) "[0,1)" true (v >= 0. && v < 1.)
  done

let test_prng_uniformity () =
  let g = Prng.create 23 in
  let counts = Array.make 10 0 in
  let draws = 100_000 in
  for _ = 1 to draws do
    let v = Prng.int g 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      let expected = draws / 10 in
      Alcotest.(check bool) "within 10% of uniform" true
        (abs (c - expected) < expected / 10))
    counts

(* Chi-square goodness of fit against the uniform distribution, for small
   bounds where the rejection-sampling acceptance region matters. The old
   bound check over-rejected the top two residue groups; with 64-bit draws
   the bias was unobservably small, but the chi-square statistic pins the
   distribution down far more tightly than the 10%-per-bucket check above. *)
let test_prng_chi_square () =
  (* (bound, p=0.001 critical value for df = bound - 1) *)
  let cases = [ (7, 22.46); (10, 27.88); (13, 32.91) ] in
  List.iter
    (fun (bound, critical) ->
      let g = Prng.create (31 + bound) in
      let draws = 100_000 in
      let counts = Array.make bound 0 in
      for _ = 1 to draws do
        let v = Prng.int g bound in
        counts.(v) <- counts.(v) + 1
      done;
      let expected = float_of_int draws /. float_of_int bound in
      let chi2 =
        Array.fold_left
          (fun acc c ->
            let d = float_of_int c -. expected in
            acc +. ((d *. d) /. expected))
          0. counts
      in
      Alcotest.(check bool)
        (Printf.sprintf "chi2 %.2f < %.2f for bound %d" chi2 critical bound)
        true (chi2 < critical))
    cases

let test_bernoulli_bias () =
  let g = Prng.create 3 in
  let hits = ref 0 in
  let draws = 50_000 in
  for _ = 1 to draws do
    if Prng.bernoulli g 0.1 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int draws in
  Alcotest.(check bool) "about 10%" true (rate > 0.09 && rate < 0.11)

let test_int_in_range () =
  let g = Prng.create 9 in
  for _ = 1 to 1000 do
    let v = Prng.int_in_range g ~lo:(-3) ~hi:4 in
    Alcotest.(check bool) "in [-3,4]" true (v >= -3 && v <= 4)
  done;
  Alcotest.(check int) "degenerate range" 5 (Prng.int_in_range g ~lo:5 ~hi:5)

let test_shuffle_permutation () =
  let g = Prng.create 13 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle_in_place g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_sample_without_replacement () =
  let g = Prng.create 17 in
  for _ = 1 to 100 do
    let s = Prng.sample_without_replacement g ~k:5 ~n:20 in
    Alcotest.(check int) "5 samples" 5 (List.length s);
    Alcotest.(check int) "distinct" 5 (List.length (List.sort_uniq compare s));
    List.iter (fun i -> Alcotest.(check bool) "in range" true (i >= 0 && i < 20)) s
  done;
  let all = Prng.sample_without_replacement g ~k:8 ~n:8 in
  Alcotest.(check (list int)) "full draw" [ 0; 1; 2; 3; 4; 5; 6; 7 ] all

(* --- Bmatrix --- *)

let test_bmatrix_basic () =
  let m = Bmatrix.create ~rows:3 ~cols:4 false in
  Alcotest.(check int) "rows" 3 (Bmatrix.rows m);
  Alcotest.(check int) "cols" 4 (Bmatrix.cols m);
  Alcotest.(check bool) "init false" false (Bmatrix.get m 2 3);
  Bmatrix.set m 2 3 true;
  Alcotest.(check bool) "set/get" true (Bmatrix.get m 2 3);
  Alcotest.(check int) "count" 1 (Bmatrix.count m)

let test_bmatrix_bounds () =
  let m = Bmatrix.create ~rows:2 ~cols:2 false in
  Alcotest.(check bool) "oob raises" true
    (try
       ignore (Bmatrix.get m 2 0);
       false
     with Invalid_argument _ -> true)

let test_bmatrix_of_lists () =
  let m = Bmatrix.of_int_lists [ [ 1; 0 ]; [ 0; 1 ]; [ 1; 1 ] ] in
  Alcotest.(check int) "count" 4 (Bmatrix.count m);
  Alcotest.(check int) "row count" 2 (Bmatrix.count_row m 2);
  Alcotest.(check int) "col count" 2 (Bmatrix.count_col m 0);
  Alcotest.(check bool) "ragged rejected" true
    (try
       ignore (Bmatrix.of_int_lists [ [ 1 ]; [ 1; 0 ] ]);
       false
     with Invalid_argument _ -> true)

let test_bmatrix_copy_independent () =
  let m = Bmatrix.of_int_lists [ [ 1; 0 ] ] in
  let c = Bmatrix.copy m in
  Bmatrix.set c 0 1 true;
  Alcotest.(check bool) "original untouched" false (Bmatrix.get m 0 1);
  Alcotest.(check bool) "equal detects diff" false (Bmatrix.equal m c)

let test_bmatrix_render () =
  let m = Bmatrix.of_int_lists [ [ 1; 0 ]; [ 0; 1 ] ] in
  Alcotest.(check string) "to_string" "1 0\n0 1" (Bmatrix.to_string m)

(* --- Stats --- *)

let feq = Alcotest.float 1e-9

let test_stats_mean () = Alcotest.check feq "mean" 2.5 (Stats.mean [ 1.; 2.; 3.; 4. ])

let test_stats_variance () =
  Alcotest.check feq "variance" (14. /. 3.) (Stats.variance [ 1.; 2.; 3.; 6. ]);
  Alcotest.check feq "singleton" 0. (Stats.variance [ 5. ])

let test_stats_percentile () =
  let xs = [ 1.; 2.; 3.; 4.; 5. ] in
  Alcotest.check feq "median" 3. (Stats.median xs);
  Alcotest.check feq "p0" 1. (Stats.percentile xs 0.);
  Alcotest.check feq "p100" 5. (Stats.percentile xs 100.);
  Alcotest.check feq "p25" 2. (Stats.percentile xs 25.)

let test_stats_success_rate () =
  Alcotest.check feq "3 of 4" 75. (Stats.success_rate [ true; true; true; false ])

let test_stats_ci95 () =
  let lo, hi = Stats.ci95 [ 10.; 10.; 10.; 10. ] in
  Alcotest.check feq "degenerate lo" 10. lo;
  Alcotest.check feq "degenerate hi" 10. hi

let test_stats_histogram () =
  let h = Stats.histogram [ 0.1; 0.2; 0.9; -5.; 7. ] ~bins:2 ~lo:0. ~hi:1. in
  Alcotest.(check (array int)) "clamping" [| 3; 2 |] h

let test_stats_empty () =
  Alcotest.(check bool) "mean of empty raises" true
    (try
       ignore (Stats.mean []);
       false
     with Invalid_argument _ -> true)

(* --- Stats properties --- *)

(* Bounded rationals with heavy duplication: exercises sort stability,
   interpolation between equal neighbours, and keeps the naive reference
   formulas free of catastrophic cancellation. *)
let gen_samples =
  QCheck2.Gen.(
    list_size (int_range 1 60) (map (fun i -> float_of_int i /. 8.) (int_range (-400) 400)))

let gen_samples_with_nans =
  QCheck2.Gen.(
    list_size (int_range 1 40)
      (oneof
         [ pure Float.nan; map (fun i -> float_of_int i /. 4.) (int_range (-40) 40) ]))

let naive_mean xs = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let naive_variance xs =
  match xs with
  | [ _ ] -> 0.
  | _ ->
    let m = naive_mean xs in
    List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs
    /. float_of_int (List.length xs - 1)

let close a b =
  let scale = Float.max 1. (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= 1e-9 *. scale

let prop_welford_matches_naive =
  QCheck2.Test.make ~name:"single-pass moments match two-pass reference" ~count:300
    gen_samples (fun xs ->
      let m = naive_mean xs and v = naive_variance xs in
      close (Stats.variance xs) v
      && close (Stats.stddev xs) (sqrt v)
      &&
      let lo, hi = Stats.ci95 xs in
      let half =
        1.96 *. sqrt (v /. float_of_int (List.length xs))
      in
      close lo (m -. half) && close hi (m +. half))

let prop_percentile_bounds =
  QCheck2.Test.make ~name:"percentile: bounded, monotone, exact at 0/100" ~count:300
    gen_samples (fun xs ->
      let mn = List.fold_left Float.min Float.infinity xs in
      let mx = List.fold_left Float.max Float.neg_infinity xs in
      Stats.percentile xs 0. = mn
      && Stats.percentile xs 100. = mx
      && List.for_all
           (fun p ->
             let v = Stats.percentile xs p in
             mn <= v && v <= mx)
           [ 10.; 25.; 50.; 75.; 90. ]
      && Stats.percentile xs 25. <= Stats.percentile xs 75.)

let prop_percentile_tolerates_nan =
  QCheck2.Test.make ~name:"percentile: NaNs sort first, never raise" ~count:300
    gen_samples_with_nans (fun xs ->
      (* Must not raise for any p, and p100 recovers the real maximum as
         long as one non-NaN sample exists (NaNs order first). *)
      let probe p = ignore (Stats.percentile xs p) in
      List.iter probe [ 0.; 50.; 100. ];
      let reals = List.filter (fun x -> not (Float.is_nan x)) xs in
      match reals with
      | [] -> Float.is_nan (Stats.percentile xs 100.)
      | _ -> Stats.percentile xs 100. = List.fold_left Float.max Float.neg_infinity reals)

let prop_success_rate_fold =
  QCheck2.Test.make ~name:"success_rate = 100 * hits / n" ~count:300
    QCheck2.Gen.(list_size (int_range 1 80) bool)
    (fun bs ->
      let hits = List.length (List.filter Fun.id bs) in
      close (Stats.success_rate bs)
        (100. *. float_of_int hits /. float_of_int (List.length bs)))

let stats_qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_welford_matches_naive;
      prop_percentile_bounds;
      prop_percentile_tolerates_nan;
      prop_success_rate_fold;
    ]

(* --- Texttable --- *)

let contains_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_table_render () =
  let t = Texttable.create [ "name"; "value" ] in
  Texttable.add_row t [ "alpha"; "1" ];
  Texttable.add_row t [ "b"; "22" ];
  let rendered = Texttable.render t in
  Alcotest.(check bool) "contains header" true (contains_substring rendered "name");
  Alcotest.(check bool) "aligned right" true (contains_substring rendered "|    22 |")

let test_table_csv () =
  let t = Texttable.create [ "a"; "b" ] in
  Texttable.add_row t [ "x,y"; "plain" ];
  Texttable.add_separator t;
  Texttable.add_row t [ "q\"uote"; "2" ];
  Alcotest.(check string) "csv quoting" "a,b\n\"x,y\",plain\n\"q\"\"uote\",2\n"
    (Texttable.to_csv t)

let test_table_arity () =
  let t = Texttable.create [ "a"; "b" ] in
  Alcotest.(check bool) "arity mismatch raises" true
    (try
       Texttable.add_row t [ "only" ];
       false
     with Invalid_argument _ -> true)

let test_table_center_align () =
  let t = Texttable.create ~aligns:[ Texttable.Center; Texttable.Center ] [ "ab"; "c" ] in
  Texttable.add_row t [ "x"; "wide" ];
  let rendered = Texttable.render t in
  Alcotest.(check bool) "centered cell" true (contains_substring rendered "| x  |");
  Alcotest.(check bool) "empty header rejected" true
    (try
       ignore (Texttable.create []);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "aligns length mismatch rejected" true
    (try
       ignore (Texttable.create ~aligns:[ Texttable.Left ] [ "a"; "b" ]);
       false
     with Invalid_argument _ -> true)

let test_prng_choose () =
  let g = Prng.create 5 in
  let a = [| "x"; "y"; "z" |] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "member" true (Array.mem (Prng.choose g a) a)
  done;
  Alcotest.(check bool) "empty rejected" true
    (try
       ignore (Prng.choose g [||]);
       false
     with Invalid_argument _ -> true)

let test_sample_edges () =
  let g = Prng.create 5 in
  Alcotest.(check (list int)) "k=0" [] (Prng.sample_without_replacement g ~k:0 ~n:10);
  Alcotest.(check bool) "k>n rejected" true
    (try
       ignore (Prng.sample_without_replacement g ~k:3 ~n:2);
       false
     with Invalid_argument _ -> true)

(* --- Prng.Key --- *)

let stream_prefix prng = List.init 4 (fun _ -> Prng.bits64 prng)

let test_key_deterministic () =
  let k () = Prng.Key.(float (int (string (root 42) "exp") 7) 0.1) in
  Alcotest.(check int64) "same components, same key"
    (Prng.Key.to_int64 (k ()))
    (Prng.Key.to_int64 (k ()));
  Alcotest.(check bool) "same key, same stream" true
    (stream_prefix (Prng.of_key (k ())) = stream_prefix (Prng.of_key (k ())))

let test_key_component_sensitivity () =
  let base = Prng.Key.(string (root 42) "exp") in
  let keys =
    [
      Prng.Key.to_int64 base;
      Prng.Key.to_int64 (Prng.Key.int base 0);
      Prng.Key.to_int64 (Prng.Key.int base 1);
      Prng.Key.to_int64 (Prng.Key.float base 0.1);
      Prng.Key.to_int64 (Prng.Key.float base 0.2);
      Prng.Key.to_int64 (Prng.Key.string base "a");
      Prng.Key.to_int64 (Prng.Key.string base "b");
      Prng.Key.to_int64 (Prng.Key.string base "ab");
      Prng.Key.to_int64 Prng.Key.(string (string base "a") "b");
      Prng.Key.to_int64 (Prng.Key.string (Prng.Key.root 43) "exp");
    ]
  in
  Alcotest.(check int) "all components distinguish the key" (List.length keys)
    (List.length (List.sort_uniq compare keys))

let test_derive_streams_distinct () =
  let key = Prng.Key.(string (root 7) "derive") in
  let prefixes = List.init 16 (fun i -> stream_prefix (Prng.derive key i)) in
  Alcotest.(check int) "16 trials, 16 streams" 16
    (List.length (List.sort_uniq compare prefixes));
  Alcotest.(check bool) "derive is reproducible" true
    (stream_prefix (Prng.derive key 5) = stream_prefix (Prng.derive key 5))

(* --- Pool --- *)

let test_pool_map_ordered () =
  let pool = Pool.create ~jobs:4 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let result = Pool.map pool 100 (fun i -> i * i) in
      Alcotest.(check (array int)) "index order" (Array.init 100 (fun i -> i * i)) result;
      Alcotest.(check (array int)) "empty map" [||] (Pool.map pool 0 (fun i -> i)))

let test_pool_map_reduce_order () =
  let pool = Pool.create ~jobs:4 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let concat =
        Pool.map_reduce pool ~n:20 ~map:string_of_int ~init:""
          ~fold:(fun acc s -> acc ^ "," ^ s)
      in
      let expected =
        List.fold_left (fun acc s -> acc ^ "," ^ s) ""
          (List.init 20 string_of_int)
      in
      Alcotest.(check string) "fold in index order" expected concat)

let test_pool_matches_sequential () =
  let seq = Pool.create ~jobs:1 () in
  let par = Pool.create ~jobs:4 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown seq; Pool.shutdown par)
    (fun () ->
      let key = Prng.Key.(string (root 3) "pool-test") in
      let trial i = Prng.bits64 (Prng.derive key i) in
      Alcotest.(check bool) "jobs=1 equals jobs=4" true
        (Pool.map seq 257 trial = Pool.map par 257 trial))

let test_pool_exception () =
  let pool = Pool.create ~jobs:4 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      Alcotest.(check bool) "exception propagates" true
        (try
           ignore (Pool.map pool 50 (fun i -> if i = 37 then failwith "boom" else i));
           false
         with Failure msg -> msg = "boom");
      (* the pool survives a failed batch *)
      Alcotest.(check (array int)) "usable after failure" [| 0; 1; 2 |]
        (Pool.map pool 3 Fun.id))

let test_pool_nested () =
  let pool = Pool.create ~jobs:4 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      (* a nested map from inside a worker must fall back to inline
         execution rather than deadlock waiting on occupied workers *)
      let result =
        Pool.map pool 8 (fun i ->
            Array.fold_left ( + ) 0 (Pool.map pool 5 (fun j -> (10 * i) + j)))
      in
      let expected = Array.init 8 (fun i -> (50 * i) + 10) in
      Alcotest.(check (array int)) "nested map inline" expected result)

let test_pool_jobs () =
  Alcotest.(check bool) "default_jobs positive" true (Pool.default_jobs () > 0);
  let pool = Pool.create ~jobs:1 () in
  Alcotest.(check int) "jobs=1" 1 (Pool.jobs pool);
  Alcotest.(check (array int)) "jobs=1 map" [| 0; 1; 2; 3 |] (Pool.map pool 4 Fun.id);
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *)

(* --- Lru --- *)

let test_lru_basics () =
  let c = Lru.create ~capacity:2 () in
  Alcotest.(check int) "capacity" 2 (Lru.capacity c);
  Alcotest.(check (option int)) "cold miss" None (Lru.find c "a");
  Lru.put c "a" 1;
  Lru.put c "b" 2;
  Alcotest.(check (option int)) "hit" (Some 1) (Lru.find c "a");
  (* "a" was just promoted, so the third insert evicts "b" *)
  Lru.put c "c" 3;
  Alcotest.(check (option int)) "lru evicted" None (Lru.peek c "b");
  Alcotest.(check (option int)) "mru survives" (Some 1) (Lru.peek c "a");
  Alcotest.(check (list (pair string int))) "recency order"
    [ ("c", 3); ("a", 1) ]
    (Lru.to_list c);
  let s = Lru.stats c in
  Alcotest.(check int) "hits" 1 s.Lru.hits;
  Alcotest.(check int) "misses" 1 s.Lru.misses;
  Alcotest.(check int) "insertions" 3 s.Lru.insertions;
  Alcotest.(check int) "evictions" 1 s.Lru.evictions

let test_lru_replace_promotes () =
  let c = Lru.create ~capacity:2 () in
  Lru.put c "a" 1;
  Lru.put c "b" 2;
  Lru.put c "a" 10;
  (* replacing "a" promoted it, so "b" goes next *)
  Lru.put c "c" 3;
  Alcotest.(check (option int)) "replaced value" (Some 10) (Lru.peek c "a");
  Alcotest.(check (option int)) "b evicted" None (Lru.peek c "b");
  Alcotest.(check int) "replace is not an insertion" 3 (Lru.stats c).Lru.insertions

let test_lru_peek_is_pure () =
  let c = Lru.create ~capacity:2 () in
  Lru.put c "a" 1;
  Lru.put c "b" 2;
  ignore (Lru.peek c "a" : int option);
  (* peek must not promote: "a" is still the LRU entry *)
  Lru.put c "c" 3;
  Alcotest.(check (option int)) "peek does not promote" None (Lru.peek c "a");
  let s = Lru.stats c in
  Alcotest.(check int) "peek is not counted" 0 (s.Lru.hits + s.Lru.misses)

let test_lru_degenerate () =
  let c = Lru.create ~capacity:0 () in
  Lru.put c "a" 1;
  Alcotest.(check (option int)) "capacity 0 stores nothing" None (Lru.find c "a");
  Alcotest.(check int) "stays empty" 0 (Lru.length c);
  Alcotest.(check int) "no phantom evictions" 0 (Lru.stats c).Lru.evictions;
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Lru.create: negative capacity") (fun () ->
      ignore (Lru.create ~capacity:(-1) () : int Lru.t))

(* Model-based property: an association list (MRU first) trimmed to
   capacity predicts contents, order, every lookup result and every
   counter. *)
type lru_op = Lru_put of int | Lru_find of int

let gen_lru_ops =
  QCheck2.Gen.(
    pair (int_range 0 6)
      (list_size (int_range 0 120)
         (oneof
            [
              map (fun k -> Lru_put k) (int_range 0 9);
              map (fun k -> Lru_find k) (int_range 0 9);
            ])))

let prop_lru_matches_model =
  QCheck2.Test.make ~name:"lru agrees with a reference model" ~count:500 gen_lru_ops
    (fun (cap, ops) ->
      let c = Lru.create ~capacity:cap () in
      let model = ref [] in
      let hits = ref 0 and misses = ref 0 in
      let insertions = ref 0 and evictions = ref 0 in
      let finds = ref 0 in
      let ok = ref true in
      List.iteri
        (fun stamp op ->
          match op with
          | Lru_put k ->
            let key = "k" ^ string_of_int k in
            if cap > 0 then begin
              let existed = List.mem_assoc key !model in
              model := (key, stamp) :: List.remove_assoc key !model;
              if not existed then begin
                incr insertions;
                if List.length !model > cap then begin
                  model := List.filteri (fun i _ -> i < cap) !model;
                  incr evictions
                end
              end
            end;
            Lru.put c key stamp
          | Lru_find k ->
            let key = "k" ^ string_of_int k in
            incr finds;
            let expected = List.assoc_opt key !model in
            (match expected with
            | Some v ->
              incr hits;
              model := (key, v) :: List.remove_assoc key !model
            | None -> incr misses);
            if Lru.find c key <> expected then ok := false)
        ops;
      let s = Lru.stats c in
      !ok
      && Lru.to_list c = !model
      && Lru.length c <= max cap 0
      && s.Lru.hits = !hits
      && s.Lru.misses = !misses
      && s.Lru.hits + s.Lru.misses = !finds
      && s.Lru.insertions = !insertions
      && s.Lru.evictions = !evictions)

let lru_qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_lru_matches_model ]

(* --- Timing --- *)

let test_timing () =
  let v, dt = Timing.time (fun () -> 41 + 1) in
  Alcotest.(check int) "result" 42 v;
  Alcotest.(check bool) "nonnegative" true (dt >= 0.);
  let mean = Timing.mean_seconds ~repeats:3 (fun () -> ()) in
  Alcotest.(check bool) "mean nonnegative" true (mean >= 0.);
  Alcotest.(check bool) "repeats <= 0 rejected" true
    (try
       ignore (Timing.mean_seconds ~repeats:0 (fun () -> ()));
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "mcx_util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          Alcotest.test_case "split" `Quick test_prng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_prng_int_invalid;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "uniformity" `Quick test_prng_uniformity;
          Alcotest.test_case "chi-square uniformity" `Quick test_prng_chi_square;
          Alcotest.test_case "bernoulli bias" `Quick test_bernoulli_bias;
          Alcotest.test_case "int_in_range" `Quick test_int_in_range;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
          Alcotest.test_case "choose" `Quick test_prng_choose;
          Alcotest.test_case "sample edges" `Quick test_sample_edges;
        ] );
      ( "bmatrix",
        [
          Alcotest.test_case "basic" `Quick test_bmatrix_basic;
          Alcotest.test_case "bounds" `Quick test_bmatrix_bounds;
          Alcotest.test_case "of_lists" `Quick test_bmatrix_of_lists;
          Alcotest.test_case "copy independent" `Quick test_bmatrix_copy_independent;
          Alcotest.test_case "render" `Quick test_bmatrix_render;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "variance" `Quick test_stats_variance;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "success rate" `Quick test_stats_success_rate;
          Alcotest.test_case "ci95" `Quick test_stats_ci95;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
          Alcotest.test_case "empty input" `Quick test_stats_empty;
        ] );
      ("stats properties", stats_qcheck_cases);
      ( "texttable",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "csv" `Quick test_table_csv;
          Alcotest.test_case "arity" `Quick test_table_arity;
          Alcotest.test_case "center align & errors" `Quick test_table_center_align;
        ] );
      ( "key",
        [
          Alcotest.test_case "deterministic" `Quick test_key_deterministic;
          Alcotest.test_case "component sensitivity" `Quick test_key_component_sensitivity;
          Alcotest.test_case "derive distinct" `Quick test_derive_streams_distinct;
        ] );
      ( "pool",
        [
          Alcotest.test_case "map ordered" `Quick test_pool_map_ordered;
          Alcotest.test_case "map_reduce order" `Quick test_pool_map_reduce_order;
          Alcotest.test_case "parallel = sequential" `Quick test_pool_matches_sequential;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "nested map" `Quick test_pool_nested;
          Alcotest.test_case "jobs" `Quick test_pool_jobs;
        ] );
      ( "lru",
        [
          Alcotest.test_case "basics" `Quick test_lru_basics;
          Alcotest.test_case "replace promotes" `Quick test_lru_replace_promotes;
          Alcotest.test_case "peek is pure" `Quick test_lru_peek_is_pure;
          Alcotest.test_case "degenerate capacities" `Quick test_lru_degenerate;
        ] );
      ("lru properties", lru_qcheck_cases);
      ("timing", [ Alcotest.test_case "time" `Quick test_timing ]);
    ]
