(* Metrics registry tests: name/label validation, kind discipline,
   series identity under label reordering, gauge last-write-wins,
   histogram geometry, the keyed commutative merge (bit-identical
   exporter output at any job count), both exporters (a hand-rolled
   OpenMetrics line-grammar validator and the mcx-metrics/1 JSON
   shape), the deterministic [~times:false] projection, the subsystem
   bridges, and the shared bucket-percentile estimator. *)

open Mcx_util

(* Every test starts from a clean, enabled registry. The whole binary is
   single-threaded between Pool fan-outs, so reset is safe here. *)
let fresh () =
  Metrics.reset ();
  Metrics.enable ()

let find_family name (snap : Metrics.Snapshot.t) =
  List.find_opt (fun (f : Metrics.Snapshot.family) -> f.name = name) snap

let get_family name snap =
  match find_family name snap with
  | Some f -> f
  | None -> Alcotest.failf "family %s missing from snapshot" name

let series_value (f : Metrics.Snapshot.family) labels =
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) labels in
  match
    List.find_opt (fun (s : Metrics.Snapshot.series) -> s.labels = sorted) f.series
  with
  | Some s -> s.value
  | None ->
    Alcotest.failf "series %s%s missing" f.name
      (String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels))

let counter_value f labels =
  match series_value f labels with
  | Metrics.Snapshot.Counter n -> n
  | _ -> Alcotest.fail "expected a counter series"

(* --- validation ------------------------------------------------------- *)

let test_name_validation () =
  List.iter
    (fun (name, ok) ->
      Alcotest.(check bool) ("metric name " ^ name) ok (Metrics.valid_metric_name name))
    [
      ("mcx_serve_requests_total", true);
      ("a:b:c", true);
      ("_leading", true);
      ("", false);
      ("9starts_with_digit", false);
      ("has-dash", false);
      ("has space", false);
    ];
  List.iter
    (fun (name, ok) ->
      Alcotest.(check bool) ("label name " ^ name) ok (Metrics.valid_label_name name))
    [
      ("status", true);
      ("_ok", true);
      ("le", false);
      ("", false);
      ("9x", false);
      ("with:colon", false);
    ]

let expect_invalid_arg what f =
  Alcotest.(check bool) what true
    (match f () with exception Invalid_argument _ -> true | _ -> false)

let test_declare_rejects () =
  fresh ();
  expect_invalid_arg "bad metric name" (fun () ->
      Metrics.declare Metrics.Counter "not a name");
  Metrics.declare Metrics.Counter "mcx_test_total";
  expect_invalid_arg "kind flip on redeclare" (fun () ->
      Metrics.declare Metrics.Gauge "mcx_test_total");
  (* auto-declaration pins the kind too *)
  Metrics.inc "mcx_test_auto";
  expect_invalid_arg "kind mismatch after auto-declare" (fun () ->
      Metrics.set "mcx_test_auto" 1.0)

let test_recording_rejects () =
  fresh ();
  expect_invalid_arg "bad label name" (fun () ->
      Metrics.inc ~labels:[ ("le", "1") ] "mcx_test_total");
  expect_invalid_arg "duplicate label" (fun () ->
      Metrics.inc ~labels:[ ("a", "1"); ("a", "2") ] "mcx_test_total");
  Metrics.declare Metrics.Histogram "mcx_test_ns";
  expect_invalid_arg "inc into a histogram" (fun () -> Metrics.inc "mcx_test_ns")

(* --- recording semantics ---------------------------------------------- *)

let test_label_order_is_identity () =
  fresh ();
  Metrics.inc ~labels:[ ("a", "1"); ("b", "2") ] "mcx_test_total";
  Metrics.inc ~labels:[ ("b", "2"); ("a", "1") ] ~n:2 "mcx_test_total";
  let f = get_family "mcx_test_total" (Metrics.snapshot ()) in
  Alcotest.(check int) "one series" 1 (List.length f.series);
  Alcotest.(check int) "merged count" 3
    (counter_value f [ ("a", "1"); ("b", "2") ])

let test_gauge_last_write_wins () =
  fresh ();
  Metrics.set "mcx_test_gauge" 1.5;
  Metrics.set "mcx_test_gauge" 4.25;
  let f = get_family "mcx_test_gauge" (Metrics.snapshot ()) in
  (match series_value f [] with
  | Metrics.Snapshot.Gauge v -> Alcotest.(check (float 0.)) "last value" 4.25 v
  | _ -> Alcotest.fail "expected a gauge")

let test_histogram_geometry () =
  fresh ();
  (* 1ns -> bucket 0; 1000ns -> bucket 9 ([512,1024)); negative clamps. *)
  Metrics.observe_ns "mcx_test_ns" 1L;
  Metrics.observe_ns "mcx_test_ns" 1000L;
  Metrics.observe_ns "mcx_test_ns" (-5L);
  let f = get_family "mcx_test_ns" (Metrics.snapshot ()) in
  match series_value f [] with
  | Metrics.Snapshot.Histogram { count; sum_ns; buckets } ->
    Alcotest.(check int) "count" 3 count;
    Alcotest.(check int64) "sum clamps negatives" 1001L sum_ns;
    Alcotest.(check int) "bucket 0" 2 buckets.(0);
    Alcotest.(check int) "bucket of 1000ns" 1 buckets.(Telemetry.bucket_of_ns 1000L)
  | _ -> Alcotest.fail "expected a histogram"

let test_merge_histogram () =
  fresh ();
  Metrics.merge_histogram "mcx_test_ns" ~count:4 ~sum_ns:400L ~buckets:[| 1; 3 |];
  Metrics.observe_ns "mcx_test_ns" 1L;
  let f = get_family "mcx_test_ns" (Metrics.snapshot ()) in
  (match series_value f [] with
  | Metrics.Snapshot.Histogram { count; sum_ns; buckets } ->
    Alcotest.(check int) "count folds" 5 count;
    Alcotest.(check int64) "sum folds" 401L sum_ns;
    Alcotest.(check int) "short buckets pad" 2 buckets.(0);
    Alcotest.(check int) "bucket 1" 3 buckets.(1)
  | _ -> Alcotest.fail "expected a histogram");
  expect_invalid_arg "oversized buckets rejected" (fun () ->
      Metrics.merge_histogram "mcx_test_ns" ~count:1 ~sum_ns:0L
        ~buckets:(Array.make (Telemetry.n_buckets + 1) 0))

let test_disabled_is_inert () =
  Metrics.reset ();
  Metrics.disable ();
  Metrics.inc "mcx_test_total";
  Metrics.observe_ns "mcx_test_ns" 5L;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Metrics.snapshot ()))

(* --- determinism across job counts ------------------------------------ *)

(* Deterministic per-index work recorded from inside Pool workers: the
   keyed merge must make the exported deterministic projection
   byte-identical whatever the domain count. *)
let record_from_pool ~jobs =
  fresh ();
  Metrics.declare ~help:"test rows" Metrics.Counter "mcx_test_rows_total";
  Metrics.declare Metrics.Histogram "mcx_test_trial_ns";
  let pool = Pool.create ~jobs () in
  let _ =
    Pool.map pool 40 (fun i ->
        let bucket = if i mod 3 = 0 then "small" else "large" in
        Metrics.inc ~labels:[ ("size", bucket) ] "mcx_test_rows_total";
        Metrics.observe_ns "mcx_test_trial_ns" (Int64.of_int ((i * 37) mod 5000));
        i)
  in
  Metrics.snapshot ()

let test_jobs_identical_projection () =
  let s1 = record_from_pool ~jobs:1 in
  let s4 = record_from_pool ~jobs:4 in
  Alcotest.(check string) "OpenMetrics bytes agree"
    (Metrics.Snapshot.to_openmetrics ~times:false s1)
    (Metrics.Snapshot.to_openmetrics ~times:false s4);
  Alcotest.(check string) "mcx-metrics/1 bytes agree"
    (Json_out.to_string (Metrics.Snapshot.to_json ~times:false s1))
    (Json_out.to_string (Metrics.Snapshot.to_json ~times:false s4));
  (* The full (timed) export also agrees here because the observed
     durations are a function of the index alone. *)
  Alcotest.(check string) "timed bytes agree too"
    (Metrics.Snapshot.to_openmetrics s1)
    (Metrics.Snapshot.to_openmetrics s4)

(* --- OpenMetrics text grammar ----------------------------------------- *)

(* A deliberately small validator for the exposition subset we emit:
   every line is [# HELP <name> <text>], [# TYPE <name> <kind>],
   [# EOF], or [<name>{labels} <value>] with a quoted-and-escaped label
   grammar; [# EOF] is the final line. *)
let check_openmetrics text =
  let is_name s =
    s <> ""
    && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
    && String.for_all
         (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
         s
  in
  let check_sample line =
    let name_end =
      let rec go i =
        if i < String.length line then
          match line.[i] with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> go (i + 1)
          | _ -> i
        else i
      in
      go 0
    in
    let name = String.sub line 0 name_end in
    if not (is_name name) then Alcotest.failf "bad sample name in %S" line;
    let rest = String.sub line name_end (String.length line - name_end) in
    let value_part =
      if rest <> "" && rest.[0] = '{' then begin
        match String.index_opt rest '}' with
        | None -> Alcotest.failf "unterminated label set in %S" line
        | Some close ->
          let labels = String.sub rest 1 (close - 1) in
          if labels = "" then Alcotest.failf "empty label braces in %S" line;
          List.iter
            (fun kv ->
              match String.index_opt kv '=' with
              | None -> Alcotest.failf "label without '=' in %S" line
              | Some eq ->
                let k = String.sub kv 0 eq in
                let v = String.sub kv (eq + 1) (String.length kv - eq - 1) in
                if not (is_name k) then Alcotest.failf "bad label name %S in %S" k line;
                if String.length v < 2 || v.[0] <> '"' || v.[String.length v - 1] <> '"'
                then Alcotest.failf "unquoted label value %S in %S" v line)
            (String.split_on_char ',' labels);
          String.sub rest (close + 1) (String.length rest - close - 1)
      end
      else rest
    in
    match String.split_on_char ' ' value_part with
    | [ ""; value ] ->
      if
        value <> "+Inf"
        && Float.is_nan (try float_of_string value with Failure _ -> Float.nan)
      then Alcotest.failf "unparseable sample value %S in %S" value line
    | _ -> Alcotest.failf "expected one space then a value in %S" line
  in
  let lines = String.split_on_char '\n' text in
  (match List.rev lines with
  | "" :: "# EOF" :: _ -> ()
  | _ -> Alcotest.fail "exposition must end with '# EOF\\n'");
  List.iter
    (fun line ->
      if line = "" || line = "# EOF" then ()
      else if String.length line > 7 && String.sub line 0 7 = "# HELP " then begin
        match String.index_from_opt line 7 ' ' with
        | Some i -> if not (is_name (String.sub line 7 (i - 7))) then
            Alcotest.failf "bad HELP name in %S" line
        | None -> Alcotest.failf "HELP without text in %S" line
      end
      else if String.length line > 7 && String.sub line 0 7 = "# TYPE " then begin
        match String.split_on_char ' ' line with
        | [ "#"; "TYPE"; name; kind ] ->
          if not (is_name name) then Alcotest.failf "bad TYPE name in %S" line;
          if not (List.mem kind [ "counter"; "gauge"; "histogram" ]) then
            Alcotest.failf "unknown TYPE kind in %S" line
        | _ -> Alcotest.failf "malformed TYPE line %S" line
      end
      else check_sample line)
    lines

let populated_snapshot () =
  fresh ();
  Metrics.declare ~help:"requests by status" Metrics.Counter "mcx_test_requests_total";
  Metrics.declare ~help:"stage latency" Metrics.Histogram "mcx_test_stage_ns";
  Metrics.declare ~measured:true Metrics.Gauge "mcx_test_jobs";
  Metrics.inc ~labels:[ ("status", "ok") ] ~n:3 "mcx_test_requests_total";
  Metrics.inc ~labels:[ ("status", "error") ] "mcx_test_requests_total";
  Metrics.set "mcx_test_jobs" 4.0;
  Metrics.observe_ns ~labels:[ ("stage", "parse") ] "mcx_test_stage_ns" 900L;
  Metrics.observe_ns ~labels:[ ("stage", "parse") ] "mcx_test_stage_ns" 64_000L;
  Metrics.snapshot ()

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_openmetrics_grammar () =
  let snap = populated_snapshot () in
  let timed = Metrics.Snapshot.to_openmetrics snap in
  check_openmetrics timed;
  check_openmetrics (Metrics.Snapshot.to_openmetrics ~times:false snap);
  Alcotest.(check bool) "help line" true
    (contains timed "# HELP mcx_test_requests_total requests by status");
  Alcotest.(check bool) "series sample" true
    (contains timed "mcx_test_requests_total{status=\"ok\"} 3");
  Alcotest.(check bool) "+Inf bucket" true (contains timed "le=\"+Inf\"");
  Alcotest.(check bool) "histogram count" true
    (contains timed "mcx_test_stage_ns_count{stage=\"parse\"} 2")

let test_projection_drops_measurements () =
  let snap = populated_snapshot () in
  let det = Metrics.Snapshot.to_openmetrics ~times:false snap in
  Alcotest.(check bool) "measured gauge dropped" false (contains det "mcx_test_jobs");
  Alcotest.(check bool) "no buckets" false (contains det "_bucket");
  Alcotest.(check bool) "no sum" false (contains det "mcx_test_stage_ns_sum");
  Alcotest.(check bool) "count survives" true
    (contains det "mcx_test_stage_ns_count{stage=\"parse\"} 2");
  Alcotest.(check bool) "timed export keeps the gauge" true
    (contains (Metrics.Snapshot.to_openmetrics snap) "mcx_test_jobs 4")

(* --- mcx-metrics/1 JSON shape ----------------------------------------- *)

let test_json_shape () =
  let snap = populated_snapshot () in
  let reparse times =
    match Json_out.of_string (Json_out.to_string (Metrics.Snapshot.to_json ~times snap)) with
    | Ok json -> json
    | Error e -> Alcotest.failf "exporter emitted unparseable JSON: %s" e
  in
  let json = reparse true in
  let str path = Option.bind path Json_out.to_string_opt in
  Alcotest.(check (option string)) "schema" (Some "mcx-metrics/1")
    (str (Json_out.member "schema" json));
  let metrics =
    match Option.bind (Json_out.member "metrics" json) Json_out.to_list_opt with
    | Some l -> l
    | None -> Alcotest.fail "no metrics array"
  in
  let family name =
    match
      List.find_opt (fun f -> str (Json_out.member "name" f) = Some name) metrics
    with
    | Some f -> f
    | None -> Alcotest.failf "family %s missing from JSON" name
  in
  Alcotest.(check (option string)) "histogram type" (Some "histogram")
    (str (Json_out.member "type" (family "mcx_test_stage_ns")));
  let series =
    match
      Option.bind (Json_out.member "series" (family "mcx_test_stage_ns")) Json_out.to_list_opt
    with
    | Some [ s ] -> s
    | _ -> Alcotest.fail "expected one histogram series"
  in
  Alcotest.(check (option (float 0.))) "count" (Some 2.)
    (Option.bind (Json_out.member "count" series) Json_out.to_float_opt);
  Alcotest.(check bool) "sparse buckets present when timed" true
    (Option.is_some (Json_out.member "buckets" series));
  (* deterministic projection: no sum/buckets, no measured family *)
  let det = reparse false in
  let det_metrics =
    Option.value ~default:[]
      (Option.bind (Json_out.member "metrics" det) Json_out.to_list_opt)
  in
  Alcotest.(check bool) "measured family dropped" false
    (List.exists (fun f -> str (Json_out.member "name" f) = Some "mcx_test_jobs") det_metrics);
  let det_series =
    List.find_map
      (fun f ->
        if str (Json_out.member "name" f) = Some "mcx_test_stage_ns" then
          Option.bind (Json_out.member "series" f) Json_out.to_list_opt
        else None)
      det_metrics
  in
  match det_series with
  | Some [ s ] ->
    Alcotest.(check bool) "no sum_ns" true (Json_out.member "sum_ns" s = None);
    Alcotest.(check bool) "no buckets" true (Json_out.member "buckets" s = None)
  | _ -> Alcotest.fail "expected the histogram series in the projection"

(* --- bridges ----------------------------------------------------------- *)

let test_lru_bridge () =
  fresh ();
  let cache = Lru.create ~name:"serve.cache" ~capacity:2 () in
  Lru.put cache "a" 1;
  Lru.put cache "b" 2;
  ignore (Lru.find cache "a");
  ignore (Lru.find cache "zzz");
  Lru.put cache "c" 3 (* evicts b *);
  Lru.record_metrics cache;
  let snap = Metrics.snapshot () in
  let count name = counter_value (get_family name snap) [ ("cache", "serve.cache") ] in
  Alcotest.(check int) "hits" 1 (count "mcx_cache_hits_total");
  Alcotest.(check int) "misses" 1 (count "mcx_cache_misses_total");
  Alcotest.(check int) "evictions" 1 (count "mcx_cache_evictions_total")

let test_telemetry_bridge () =
  fresh ();
  Telemetry.reset ();
  Telemetry.enable ();
  Telemetry.count ~n:5 "trials";
  Telemetry.observe_ns "map.trial" 1234L;
  Telemetry.observe_ns "map.trial" 99L;
  Metrics.bridge_telemetry (Telemetry.snapshot ());
  Telemetry.disable ();
  Telemetry.reset ();
  let snap = Metrics.snapshot () in
  Alcotest.(check int) "counter bridged" 5
    (counter_value (get_family "mcx_telemetry_counter" snap) [ ("name", "trials") ]);
  match series_value (get_family "mcx_telemetry_span_ns" snap) [ ("span", "map.trial") ] with
  | Metrics.Snapshot.Histogram { count; sum_ns; _ } ->
    Alcotest.(check int) "span calls bridged" 2 count;
    Alcotest.(check int64) "span total bridged" 1333L sum_ns
  | _ -> Alcotest.fail "expected a histogram series"

(* --- the shared percentile estimator ----------------------------------- *)

let test_percentile_estimator () =
  let buckets = Array.make Telemetry.n_buckets 0 in
  (* 90 observations in [512,1024), 10 in [65536,131072) *)
  buckets.(Telemetry.bucket_of_ns 1000L) <- 90;
  buckets.(Telemetry.bucket_of_ns 100_000L) <- 10;
  let p50 = Telemetry.Report.percentile_of_buckets buckets ~calls:100 ~p:0.50 in
  let p95 = Telemetry.Report.percentile_of_buckets buckets ~calls:100 ~p:0.95 in
  Alcotest.(check int64) "p50 at the small bucket's edge" 1023L p50;
  Alcotest.(check int64) "p95 at the large bucket's edge" 131071L p95;
  Alcotest.(check int64) "empty histogram" 0L
    (Telemetry.Report.percentile_of_buckets (Array.make Telemetry.n_buckets 0) ~calls:0 ~p:0.5);
  (* percentile_ns is the same estimator over a span aggregate *)
  let stat =
    { Telemetry.Report.name = "s"; calls = 100; total_ns = 0L; max_ns = 0L; buckets }
  in
  Alcotest.(check int64) "span wrapper agrees" p95
    (Telemetry.Report.percentile_ns stat ~p:0.95)

let () =
  let cleanup () =
    Metrics.reset ();
    Metrics.disable ()
  in
  Fun.protect ~finally:cleanup (fun () ->
      Alcotest.run "metrics"
        [
          ( "validation",
            [
              Alcotest.test_case "name grammars" `Quick test_name_validation;
              Alcotest.test_case "declare rejects" `Quick test_declare_rejects;
              Alcotest.test_case "recording rejects" `Quick test_recording_rejects;
            ] );
          ( "recording",
            [
              Alcotest.test_case "label order is identity" `Quick
                test_label_order_is_identity;
              Alcotest.test_case "gauge last write wins" `Quick test_gauge_last_write_wins;
              Alcotest.test_case "histogram geometry" `Quick test_histogram_geometry;
              Alcotest.test_case "merge_histogram" `Quick test_merge_histogram;
              Alcotest.test_case "disabled is inert" `Quick test_disabled_is_inert;
            ] );
          ( "determinism",
            [
              Alcotest.test_case "jobs 1 = jobs 4 exports" `Quick
                test_jobs_identical_projection;
            ] );
          ( "exporters",
            [
              Alcotest.test_case "OpenMetrics grammar" `Quick test_openmetrics_grammar;
              Alcotest.test_case "times projection" `Quick
                test_projection_drops_measurements;
              Alcotest.test_case "mcx-metrics/1 shape" `Quick test_json_shape;
            ] );
          ( "bridges",
            [
              Alcotest.test_case "lru cache" `Quick test_lru_bridge;
              Alcotest.test_case "telemetry report" `Quick test_telemetry_bridge;
            ] );
          ( "percentiles",
            [ Alcotest.test_case "bucket estimator" `Quick test_percentile_estimator ] );
        ])
