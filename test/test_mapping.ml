open Mcx_mapping
open Mcx_crossbar
open Mcx_logic
open Mcx_util

(* ------------------------------------------------------------------ *)
(* Munkres                                                            *)
(* ------------------------------------------------------------------ *)

let test_munkres_identity () =
  let cost = [| [| 0; 1 |]; [| 1; 0 |] |] in
  let total, assignment = Munkres.solve cost in
  Alcotest.(check int) "zero cost" 0 total;
  Alcotest.(check (array int)) "identity" [| 0; 1 |] assignment

let test_munkres_classic () =
  (* Classic 3x3 example with optimum 5 (1+3+1? -> rows pick 2,1,2?). *)
  let cost = [| [| 1; 2; 3 |]; [| 2; 4; 6 |]; [| 3; 6; 9 |] |] in
  let total, assignment = Munkres.solve cost in
  (* Optimal: row0->col2 (3), row1->col1 (4), row2->col0 (3) = 10. *)
  Alcotest.(check int) "optimal 10" 10 total;
  let distinct = List.sort_uniq compare (Array.to_list assignment) in
  Alcotest.(check int) "distinct columns" 3 (List.length distinct)

let test_munkres_rectangular () =
  let cost = [| [| 5; 0; 9; 7 |]; [| 8; 3; 0; 6 |] |] in
  let total, assignment = Munkres.solve cost in
  Alcotest.(check int) "picks the zeros" 0 total;
  Alcotest.(check (array int)) "assignment" [| 1; 2 |] assignment

let test_munkres_empty () =
  let total, assignment = Munkres.solve [||] in
  Alcotest.(check int) "zero cost" 0 total;
  Alcotest.(check (array int)) "empty assignment" [||] assignment

let test_munkres_single_row () =
  let total, assignment = Munkres.solve [| [| 3; 1; 2 |] |] in
  Alcotest.(check int) "min of the row" 1 total;
  Alcotest.(check (array int)) "picks the cheapest column" [| 1 |] assignment

let test_munkres_all_zero () =
  let cost = Array.make_matrix 3 5 0 in
  let total, assignment = Munkres.solve cost in
  Alcotest.(check int) "all-zero total" 0 total;
  Alcotest.(check int) "columns distinct" 3
    (List.length (List.sort_uniq compare (Array.to_list assignment)));
  Array.iter
    (fun j -> Alcotest.(check bool) "column in range" true (j >= 0 && j < 5))
    assignment

let test_munkres_rejects_empty_rows () =
  Alcotest.(check bool) "1x0 rejected" true
    (try
       ignore (Munkres.solve [| [||] |]);
       false
     with Invalid_argument _ -> true)

let test_munkres_infeasible_zero () =
  let cost = [| [| 1; 1 |]; [| 1; 0 |] |] in
  Alcotest.(check bool) "no zero assignment" true (Munkres.feasible_zero cost = None)

let test_munkres_rejects_tall () =
  Alcotest.(check bool) "n > m rejected" true
    (try
       ignore (Munkres.solve [| [| 1 |]; [| 2 |] |]);
       false
     with Invalid_argument _ -> true)

let brute_force_min cost =
  let n = Array.length cost and m = Array.length cost.(0) in
  let best = ref max_int in
  let used = Array.make m false in
  let rec go i acc =
    if acc >= !best then ()
    else if i = n then best := acc
    else
      for j = 0 to m - 1 do
        if not used.(j) then begin
          used.(j) <- true;
          go (i + 1) (acc + cost.(i).(j));
          used.(j) <- false
        end
      done
  in
  go 0 0;
  !best

let prop_munkres_optimal =
  QCheck2.Test.make ~name:"munkres matches brute force" ~count:200
    QCheck2.Gen.(
      let* n = int_range 1 5 in
      let* m = int_range n 6 in
      array_size (pure n) (array_size (pure m) (int_bound 20)))
    (fun cost ->
      let total, assignment = Munkres.solve cost in
      let valid =
        List.length (List.sort_uniq compare (Array.to_list assignment))
        = Array.length assignment
      in
      valid && total = brute_force_min cost)

(* ------------------------------------------------------------------ *)
(* Matching                                                           *)
(* ------------------------------------------------------------------ *)

let test_row_matches () =
  let fm = Bmatrix.of_int_lists [ [ 1; 1; 0 ]; [ 0; 1; 0 ] ] in
  let cm = Bmatrix.of_int_lists [ [ 1; 1; 1 ]; [ 1; 0; 1 ] ] in
  Alcotest.(check bool) "fits functional row" true
    (Matching.row_matches ~fm ~fm_row:0 ~cm ~cm_row:0);
  Alcotest.(check bool) "required switch stuck-open" false
    (Matching.row_matches ~fm ~fm_row:0 ~cm ~cm_row:1);
  let sparse_cm = Bmatrix.of_int_lists [ [ 0; 1; 0 ] ] in
  Alcotest.(check bool) "FM 0 accepts CM 0" true
    (Matching.row_matches ~fm ~fm_row:1 ~cm:sparse_cm ~cm_row:0)

let test_matching_matrix () =
  let fm = Bmatrix.of_int_lists [ [ 1; 0 ]; [ 0; 1 ] ] in
  let cm = Bmatrix.of_int_lists [ [ 1; 0 ]; [ 0; 1 ] ] in
  let m = Matching.matching_matrix ~fm ~fm_rows:[ 0; 1 ] ~cm ~cm_rows:[ 0; 1 ] in
  Alcotest.(check bool) "diag zero" true (m.(0).(0) = 0 && m.(1).(1) = 0);
  Alcotest.(check bool) "off-diag one" true (m.(0).(1) = 1 && m.(1).(0) = 1)

let test_cm_of_defects () =
  let d = Defect_map.create ~rows:2 ~cols:2 in
  Defect_map.set d 0 1 Junction.Stuck_open;
  Defect_map.set d 1 0 Junction.Stuck_closed;
  let cm = Matching.cm_of_defects d in
  Alcotest.(check bool) "functional is 1" true (Bmatrix.get cm 0 0);
  Alcotest.(check bool) "open is 0" false (Bmatrix.get cm 0 1);
  Alcotest.(check bool) "closed is 0" false (Bmatrix.get cm 1 0)

(* ------------------------------------------------------------------ *)
(* Shared fixtures                                                    *)
(* ------------------------------------------------------------------ *)

let fig7_mo =
  let rows =
    [
      (Cube.of_string "11-", [| true; false |]);
      (Cube.of_string "-11", [| true; false |]);
      (Cube.of_string "1-1", [| false; true |]);
      (Cube.of_string "-11", [| false; true |]);
    ]
  in
  Mo_cover.create ~share:false ~n_inputs:3 ~n_outputs:2
    (List.map (fun (cube, outputs) -> { Mo_cover.cube; outputs }) rows)

let fig7_fm = Function_matrix.build fig7_mo

(* Brute-force feasibility over all row injections (small sizes only). *)
let brute_feasible fm cm =
  let n = Bmatrix.rows fm and m = Bmatrix.rows cm in
  let used = Array.make m false in
  let rec go i =
    if i = n then true
    else begin
      let rec pick t =
        if t = m then false
        else if (not used.(t)) && Matching.row_matches ~fm ~fm_row:i ~cm ~cm_row:t then begin
          used.(t) <- true;
          let ok = go (i + 1) in
          used.(t) <- false;
          ok || pick (t + 1)
        end
        else pick (t + 1)
      in
      pick 0
    end
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Hybrid / Exact on concrete scenarios                                *)
(* ------------------------------------------------------------------ *)

let clean_cm rows cols = Bmatrix.create ~rows ~cols true

let test_hybrid_clean_crossbar () =
  let cm = clean_cm 6 10 in
  match Hybrid.map fig7_fm cm with
  | Some assignment ->
    Alcotest.(check bool) "valid" true
      (Matching.check_assignment ~fm:fig7_fm.Function_matrix.matrix ~cm assignment)
  | None -> Alcotest.fail "hybrid must map onto a defect-free crossbar"

let test_exact_clean_crossbar () =
  let cm = clean_cm 6 10 in
  Alcotest.(check bool) "feasible" true (Exact.feasible fig7_fm cm)

let fig7_defective_cm () =
  (* Stuck-opens chosen so that the identity placement fails but a
     permutation exists (the Fig. 7 situation). *)
  let cm = clean_cm 6 10 in
  Bmatrix.set cm 0 0 false;
  (* m1 = x1 x2 needs col 0 *)
  Bmatrix.set cm 2 6 false;
  (* row 2 cannot host any O1-connected product (col 6 = O1 comp) *)
  cm

let test_hybrid_avoids_defects () =
  let cm = fig7_defective_cm () in
  let identity = Array.init 6 Fun.id in
  Alcotest.(check bool) "identity invalid" false
    (Matching.check_assignment ~fm:fig7_fm.Function_matrix.matrix ~cm identity);
  match Hybrid.map fig7_fm cm with
  | Some assignment ->
    Alcotest.(check bool) "hybrid mapping valid" true
      (Matching.check_assignment ~fm:fig7_fm.Function_matrix.matrix ~cm assignment)
  | None -> Alcotest.fail "hybrid should find the Fig. 7 mapping"

let test_exact_agrees_with_brute_force_fig7 () =
  let cm = fig7_defective_cm () in
  Alcotest.(check bool) "exact = brute force" (brute_feasible fig7_fm.Function_matrix.matrix cm)
    (Exact.feasible fig7_fm cm)

let test_hybrid_backtracking_needed () =
  (* Force the greedy first-fit into a corner: f(x1,x2) with products
     m0 = x1, m1 = x1 x2 over one output.
     FM (cols x1 x2 x1' x2' O O'):
       m0: 1 0 0 0 0 1
       m1: 1 1 0 0 0 1
       O : 0 0 0 0 1 1
     CM: row0 all-functional; row1 lacks x2 (kills m1, accepts m0);
         row2 lacks x1 (kills both products, accepts the output row).
     Greedy sends m0 to row0; m1 then fits only row0, so backtracking must
     relocate m0 to row1. *)
  let f =
    Mo_cover.create ~n_inputs:2 ~n_outputs:1
      [
        { Mo_cover.cube = Cube.of_string "1-"; outputs = [| true |] };
        { Mo_cover.cube = Cube.of_string "11"; outputs = [| true |] };
      ]
  in
  let fm = Function_matrix.build f in
  let cm = clean_cm 3 6 in
  Bmatrix.set cm 1 1 false;
  Bmatrix.set cm 2 0 false;
  let assignment, stats = Hybrid.map_with_stats fm cm in
  (match assignment with
  | Some a ->
    Alcotest.(check bool) "valid after backtracking" true
      (Matching.check_assignment ~fm:fm.Function_matrix.matrix ~cm a)
  | None -> Alcotest.fail "hybrid should succeed via backtracking");
  Alcotest.(check bool) "backtracking was exercised" true (stats.Hybrid.backtracks >= 1)

let test_hybrid_stats_clean () =
  (* On a defect-free crossbar every greedy placement succeeds first try,
     so both counters must stay at zero. *)
  let cm = clean_cm 6 10 in
  let assignment, stats = Hybrid.map_with_stats fig7_fm cm in
  Alcotest.(check bool) "mapped" true (assignment <> None);
  Alcotest.(check int) "no backtracks" 0 stats.Hybrid.backtracks;
  Alcotest.(check int) "no relocations" 0 stats.Hybrid.relocations

let test_hybrid_stats_relocation_counted () =
  (* The rigged instance from test_hybrid_backtracking_needed: one product
     must be relocated, so relocations >= 1 and backtracks >= 1. *)
  let f =
    Mo_cover.create ~n_inputs:2 ~n_outputs:1
      [
        { Mo_cover.cube = Cube.of_string "1-"; outputs = [| true |] };
        { Mo_cover.cube = Cube.of_string "11"; outputs = [| true |] };
      ]
  in
  let fm = Function_matrix.build f in
  let cm = clean_cm 3 6 in
  Bmatrix.set cm 1 1 false;
  Bmatrix.set cm 2 0 false;
  let assignment, stats = Hybrid.map_with_stats fm cm in
  Alcotest.(check bool) "mapped" true (assignment <> None);
  Alcotest.(check bool) "backtracks counted" true (stats.Hybrid.backtracks >= 1);
  Alcotest.(check bool) "relocations counted" true (stats.Hybrid.relocations >= 1);
  Alcotest.(check bool) "relocations within backtrack attempts" true
    (stats.Hybrid.relocations <= stats.Hybrid.backtracks * Bmatrix.rows cm)

let test_hybrid_incomplete_vs_exact () =
  (* A case where depth-1 backtracking fails but a full assignment exists:
     three minterm-like rows m0 {0}, m1 {1}, m2 {0,1} with CM rows
     r0 {0,1,out...}, r1 {0...}, r2 {1...}: greedy m0->r0, m1->r2,
     m2 needs r0; relocation of m0 must go to r1 — that works actually.
     Harder: make relocation impossible but a 3-way rotation valid. *)
  let f =
    Mo_cover.create ~n_inputs:2 ~n_outputs:1
      [
        { Mo_cover.cube = Cube.of_string "1-"; outputs = [| true |] };
        { Mo_cover.cube = Cube.of_string "-1"; outputs = [| true |] };
        { Mo_cover.cube = Cube.of_string "11"; outputs = [| true |] };
      ]
  in
  let fm = Function_matrix.build f in
  let cm = clean_cm 4 6 in
  (* Whatever the outcome, hybrid must never return an invalid mapping and
     exact must agree with brute force. *)
  (match Hybrid.map fm cm with
  | Some a ->
    Alcotest.(check bool) "hybrid result valid" true
      (Matching.check_assignment ~fm:fm.Function_matrix.matrix ~cm a)
  | None -> ());
  Alcotest.(check bool) "exact = brute" (brute_feasible fm.Function_matrix.matrix cm)
    (Exact.feasible fm cm)

(* ------------------------------------------------------------------ *)
(* Integration: mapping -> layout -> simulation                        *)
(* ------------------------------------------------------------------ *)

let test_mapping_to_simulation () =
  let prng = Prng.create 2024 in
  let successes = ref 0 in
  for _ = 1 to 50 do
    let d =
      Defect_map.random prng ~rows:6 ~cols:10 ~open_rate:0.1 ~closed_rate:0.
    in
    let cm = Matching.cm_of_defects d in
    match Exact.map fig7_fm cm with
    | Some assignment ->
      incr successes;
      let layout = Layout.place ~row_assignment:assignment fig7_fm in
      Alcotest.(check bool) "mapped crossbar computes the function" true
        (Sim.agrees_with_reference ~defects:d layout)
    | None -> ()
  done;
  Alcotest.(check bool) "some samples mapped" true (!successes > 10)

(* ------------------------------------------------------------------ *)
(* Redundant                                                          *)
(* ------------------------------------------------------------------ *)

let test_redundant_tolerates_closed () =
  (* One stuck-closed defect in the optimum area: without spares mapping is
     impossible; with one spare row and column the mapper must dodge it. *)
  let d = Defect_map.create ~rows:7 ~cols:11 in
  Defect_map.set d 2 3 Junction.Stuck_closed;
  let prng = Prng.create 5 in
  (match Redundant.map ~prng ~algorithm:`Exact fig7_fm d with
  | Some placement ->
    Alcotest.(check bool) "placement verifies" true (Redundant.verify fig7_fm d placement);
    let layout =
      Layout.place ~row_assignment:placement.Redundant.row_assignment
        ~col_assignment:placement.Redundant.col_assignment ~physical_rows:7
        ~physical_cols:11 fig7_fm
    in
    Alcotest.(check bool) "sim correct under closed defect" true
      (Sim.agrees_with_reference ~defects:d layout)
  | None -> Alcotest.fail "redundant mapping should succeed with spares");
  (* Optimum size + closed defect: infeasible (the paper's §IV.A claim). *)
  let tight = Defect_map.create ~rows:6 ~cols:10 in
  Defect_map.set tight 2 3 Junction.Stuck_closed;
  Alcotest.(check bool) "no tolerance without redundancy" true
    (Redundant.map ~prng ~algorithm:`Exact fig7_fm tight = None)

let test_redundant_open_only_matches_exact () =
  (* With open defects only and no spares, the first (greedy) attempt is
     the identity column choice, so redundant mapping succeeds whenever the
     plain exact mapping does. (The converse does not hold: the randomized
     retries may re-role columns and rescue instances fixed-column mapping
     cannot.) *)
  for seed = 1 to 30 do
    let prng = Prng.create seed in
    let d = Defect_map.random prng ~rows:6 ~cols:10 ~open_rate:0.08 ~closed_rate:0. in
    let direct = Exact.feasible fig7_fm (Matching.cm_of_defects d) in
    let redundant = Redundant.map ~prng ~algorithm:`Exact fig7_fm d <> None in
    Alcotest.(check bool) "exact feasible => redundant feasible" true
      ((not direct) || redundant)
  done

(* ------------------------------------------------------------------ *)
(* Annealing                                                          *)
(* ------------------------------------------------------------------ *)

let test_annealing_clean () =
  let prng = Prng.create 3 in
  match Annealing.map ~prng fig7_fm (clean_cm 6 10) with
  | Some a ->
    Alcotest.(check bool) "valid" true
      (Matching.check_assignment ~fm:fig7_fm.Function_matrix.matrix ~cm:(clean_cm 6 10) a)
  | None -> Alcotest.fail "annealing must map a clean crossbar"

let test_annealing_defective () =
  let prng = Prng.create 9 in
  let found = ref 0 in
  for seed = 1 to 30 do
    let p = Prng.create seed in
    let d = Defect_map.random p ~rows:6 ~cols:10 ~open_rate:0.1 ~closed_rate:0. in
    let cm = Matching.cm_of_defects d in
    match Annealing.map ~prng fig7_fm cm with
    | Some a ->
      incr found;
      Alcotest.(check bool) "annealed assignment valid" true
        (Matching.check_assignment ~fm:fig7_fm.Function_matrix.matrix ~cm a)
    | None -> ()
  done;
  Alcotest.(check bool) "anneals most dies" true (!found > 15)

let test_annealing_cost () =
  let fm = Bmatrix.of_int_lists [ [ 1; 0 ]; [ 0; 1 ] ] in
  let cm = Bmatrix.of_int_lists [ [ 0; 1 ]; [ 1; 1 ] ] in
  Alcotest.(check int) "identity cost: row0 broken" 1 (Annealing.cost ~fm ~cm [| 0; 1 |]);
  Alcotest.(check int) "swapped cost 0" 0 (Annealing.cost ~fm ~cm [| 1; 0 |])

(* ------------------------------------------------------------------ *)
(* Hybrid ordering                                                    *)
(* ------------------------------------------------------------------ *)

let test_hardest_first_sound () =
  for seed = 1 to 40 do
    let p = Prng.create seed in
    let d = Defect_map.random p ~rows:6 ~cols:10 ~open_rate:0.12 ~closed_rate:0. in
    let cm = Matching.cm_of_defects d in
    match Hybrid.map ~order:Hybrid.Hardest_first fig7_fm cm with
    | Some a ->
      Alcotest.(check bool) "hardest-first valid" true
        (Matching.check_assignment ~fm:fig7_fm.Function_matrix.matrix ~cm a)
    | None -> ()
  done

(* ------------------------------------------------------------------ *)
(* Repair                                                             *)
(* ------------------------------------------------------------------ *)

let test_repair_untouched () =
  let fm = fig7_fm.Function_matrix.matrix in
  let cm = clean_cm 6 10 in
  let identity = Array.init 6 Fun.id in
  match Repair.repair ~fm ~cm identity with
  | Some { Repair.assignment; rows_touched } ->
    Alcotest.(check int) "nothing moved" 0 rows_touched;
    Alcotest.(check (array int)) "same assignment" identity assignment
  | None -> Alcotest.fail "clean crossbar must repair trivially"

let test_repair_single_fault () =
  let fm = fig7_fm.Function_matrix.matrix in
  let cm = clean_cm 6 10 in
  (* break m1's x1 junction under the identity placement *)
  Bmatrix.set cm 0 0 false;
  let identity = Array.init 6 Fun.id in
  match Repair.repair ~fm ~cm identity with
  | Some { Repair.assignment; rows_touched } ->
    Alcotest.(check bool) "valid after repair" true
      (Matching.check_assignment ~fm ~cm assignment);
    Alcotest.(check bool) "local repair (at most 2 rows)" true (rows_touched <= 2)
  | None -> Alcotest.fail "single fault must be repairable"

let test_repair_falls_back_to_remap () =
  (* Rig a CM where local swaps fail but a full remap succeeds: chain of
     dependencies requiring a 3-rotation. Rather than constructing one by
     hand, fuzz until a case with rows_touched > 2 appears, then check
     validity. Validity of every result is the real assertion. *)
  let fm = fig7_fm.Function_matrix.matrix in
  for seed = 1 to 60 do
    let p = Prng.create (1000 + seed) in
    let d = Defect_map.random p ~rows:6 ~cols:10 ~open_rate:0.15 ~closed_rate:0. in
    let cm = Matching.cm_of_defects d in
    (* start from any exact mapping on a weaker defect map, then age it *)
    match Exact.map_matrix fm (clean_cm 6 10) with
    | None -> Alcotest.fail "clean must map"
    | Some initial -> (
      match Repair.repair ~fm ~cm initial with
      | Some { Repair.assignment; _ } ->
        Alcotest.(check bool) "repair result valid" true
          (Matching.check_assignment ~fm ~cm assignment)
      | None ->
        (* repair failing must mean the instance is infeasible *)
        Alcotest.(check bool) "None only when infeasible" true
          (Exact.map_matrix fm cm = None))
  done

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                  *)
(* ------------------------------------------------------------------ *)

let gen_small_instance =
  QCheck2.Gen.(
    let* seed = int_bound 1_000_000 in
    let* open_rate = float_range 0.0 0.3 in
    pure (seed, open_rate))

let small_fm =
  (* 3 products, 2 outputs over 3 inputs: small enough for brute force. *)
  Function_matrix.build fig7_mo

let prop_exact_is_exact =
  QCheck2.Test.make ~name:"exact agrees with brute-force feasibility" ~count:300
    gen_small_instance
    (fun (seed, open_rate) ->
      let prng = Prng.create seed in
      let d = Defect_map.random prng ~rows:6 ~cols:10 ~open_rate ~closed_rate:0. in
      let cm = Matching.cm_of_defects d in
      Bool.equal (Exact.feasible small_fm cm)
        (brute_feasible small_fm.Function_matrix.matrix cm))

let prop_hybrid_sound =
  QCheck2.Test.make ~name:"hybrid success implies valid assignment" ~count:300
    gen_small_instance
    (fun (seed, open_rate) ->
      let prng = Prng.create seed in
      let d = Defect_map.random prng ~rows:6 ~cols:10 ~open_rate ~closed_rate:0. in
      let cm = Matching.cm_of_defects d in
      match Hybrid.map small_fm cm with
      | Some a -> Matching.check_assignment ~fm:small_fm.Function_matrix.matrix ~cm a
      | None -> true)

let prop_hybrid_implies_exact =
  QCheck2.Test.make ~name:"hybrid success implies exact success" ~count:300
    gen_small_instance
    (fun (seed, open_rate) ->
      let prng = Prng.create seed in
      let d = Defect_map.random prng ~rows:6 ~cols:10 ~open_rate ~closed_rate:0. in
      let cm = Matching.cm_of_defects d in
      (Hybrid.map small_fm cm = None) || Exact.feasible small_fm cm)

let prop_exact_sound =
  QCheck2.Test.make ~name:"exact assignments are valid" ~count:300 gen_small_instance
    (fun (seed, open_rate) ->
      let prng = Prng.create seed in
      let d = Defect_map.random prng ~rows:6 ~cols:10 ~open_rate ~closed_rate:0. in
      let cm = Matching.cm_of_defects d in
      match Exact.map small_fm cm with
      | Some a -> Matching.check_assignment ~fm:small_fm.Function_matrix.matrix ~cm a
      | None -> true)

let prop_redundant_sound =
  QCheck2.Test.make ~name:"redundant placements verify" ~count:150
    QCheck2.Gen.(pair (int_bound 1_000_000) (float_range 0.0 0.05))
    (fun (seed, closed_rate) ->
      let prng = Prng.create seed in
      let d =
        Defect_map.random prng ~rows:9 ~cols:13 ~open_rate:0.05 ~closed_rate
      in
      match Redundant.map ~prng ~algorithm:`Hybrid small_fm d with
      | Some placement -> Redundant.verify small_fm d placement
      | None -> true)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_munkres_optimal;
      prop_exact_is_exact;
      prop_hybrid_sound;
      prop_hybrid_implies_exact;
      prop_exact_sound;
      prop_redundant_sound;
    ]

let () =
  Alcotest.run "mcx_mapping"
    [
      ( "munkres",
        [
          Alcotest.test_case "identity" `Quick test_munkres_identity;
          Alcotest.test_case "classic" `Quick test_munkres_classic;
          Alcotest.test_case "rectangular" `Quick test_munkres_rectangular;
          Alcotest.test_case "empty" `Quick test_munkres_empty;
          Alcotest.test_case "single row" `Quick test_munkres_single_row;
          Alcotest.test_case "all zero" `Quick test_munkres_all_zero;
          Alcotest.test_case "rejects empty rows" `Quick test_munkres_rejects_empty_rows;
          Alcotest.test_case "infeasible zero" `Quick test_munkres_infeasible_zero;
          Alcotest.test_case "rejects tall" `Quick test_munkres_rejects_tall;
        ] );
      ( "matching",
        [
          Alcotest.test_case "row matches" `Quick test_row_matches;
          Alcotest.test_case "matching matrix" `Quick test_matching_matrix;
          Alcotest.test_case "cm of defects" `Quick test_cm_of_defects;
        ] );
      ( "algorithms",
        [
          Alcotest.test_case "hybrid on clean crossbar" `Quick test_hybrid_clean_crossbar;
          Alcotest.test_case "exact on clean crossbar" `Quick test_exact_clean_crossbar;
          Alcotest.test_case "hybrid avoids defects (fig7)" `Quick test_hybrid_avoids_defects;
          Alcotest.test_case "exact vs brute (fig7)" `Quick test_exact_agrees_with_brute_force_fig7;
          Alcotest.test_case "backtracking exercised" `Quick test_hybrid_backtracking_needed;
          Alcotest.test_case "stats clean" `Quick test_hybrid_stats_clean;
          Alcotest.test_case "stats relocation" `Quick test_hybrid_stats_relocation_counted;
          Alcotest.test_case "hybrid never invalid" `Quick test_hybrid_incomplete_vs_exact;
        ] );
      ( "integration",
        [ Alcotest.test_case "mapping feeds simulation" `Quick test_mapping_to_simulation ] );
      ( "annealing",
        [
          Alcotest.test_case "clean crossbar" `Quick test_annealing_clean;
          Alcotest.test_case "defective crossbars" `Quick test_annealing_defective;
          Alcotest.test_case "cost function" `Quick test_annealing_cost;
        ] );
      ( "ordering",
        [ Alcotest.test_case "hardest-first sound" `Quick test_hardest_first_sound ] );
      ( "repair",
        [
          Alcotest.test_case "untouched when valid" `Quick test_repair_untouched;
          Alcotest.test_case "single fault" `Quick test_repair_single_fault;
          Alcotest.test_case "fallback to remap" `Quick test_repair_falls_back_to_remap;
        ] );
      ( "redundant",
        [
          Alcotest.test_case "tolerates stuck-closed with spares" `Quick
            test_redundant_tolerates_closed;
          Alcotest.test_case "open-only equals exact" `Quick
            test_redundant_open_only_matches_exact;
        ] );
      ("properties", qcheck_cases);
    ]
