(* mcx-lint tests: every rule fires at the expected fixture line, both
   suppression mechanisms ([@mcx.lint.allow] attributes and the root
   lint.allow file) silence findings, and — the self-hosting check — the
   repository itself lints clean.

   The driver locates the repo root by walking up from the test's working
   directory to the nearest dune-project, i.e. the real source tree, with
   typed (.cmt) coverage coming from _build/default. *)

module Lint = Mcx_lint

let root =
  match Lint.Driver.find_root () with
  | Some r -> r
  | None -> failwith "test_lint: no dune-project above the test directory"

let fixture_dir = "test/lint_fixtures/"

(* Lint a single fixture file with the path allowlist disabled (the repo
   lint.allow suppresses the whole fixture tree). *)
let lint_fixture file =
  let config =
    {
      (Lint.Driver.default_config ~root) with
      paths = [ fixture_dir ^ file ];
      allow_file = None;
    }
  in
  (Lint.Driver.run config).findings

let line_rules findings =
  List.map (fun (f : Lint.Finding.t) -> (f.line, f.rule)) findings

let check_fixture file expected =
  let findings = lint_fixture file in
  Alcotest.(check (list (pair int string)))
    (file ^ " findings")
    expected (line_rules findings)

(* --- one test per rule ----------------------------------------------- *)
(* Each fixture also contains clean and attribute-suppressed variants on
   other lines, so the exact expected list doubles as the suppression
   assertion: a suppressed or compliant line showing up here is a bug. *)

let test_determinism_random () =
  check_fixture "det_random.ml" [ (3, "determinism-random") ]

let test_determinism_wallclock () =
  check_fixture "det_wallclock.ml"
    [ (3, "determinism-wallclock"); (5, "determinism-wallclock") ]

let test_determinism_poly_hash () =
  check_fixture "det_poly_hash.ml" [ (3, "determinism-poly-hash") ]

let test_packed_poly_compare () =
  check_fixture "packed_poly.ml"
    [
      (4, "packed-poly-compare");
      (7, "packed-poly-compare");
      (10, "packed-poly-compare");
      (13, "packed-poly-compare");
    ]

let test_float_sort_poly_compare () =
  check_fixture "float_sort_poly.ml"
    [ (4, "float-sort-poly-compare"); (7, "float-sort-poly-compare") ]

let test_domain_toplevel_state () =
  check_fixture "race_toplevel.ml"
    [
      (3, "domain-toplevel-state");
      (5, "domain-toplevel-state");
      (7, "domain-toplevel-state");
    ]

let test_output_print () =
  check_fixture "out_print.ml" [ (3, "output-print"); (5, "output-print") ]

let test_output_stderr_print () =
  check_fixture "out_stderr.ml"
    [ (3, "output-stderr-print"); (5, "output-stderr-print") ]

let test_output_float_json () =
  check_fixture "out_float_json.ml" [ (3, "output-float-json") ]

let test_hygiene_obj_magic () =
  check_fixture "hyg_obj_magic.ml" [ (3, "hygiene-obj-magic") ]

let test_hygiene_catchall () =
  check_fixture "hyg_catchall.ml" [ (3, "hygiene-catchall"); (5, "hygiene-catchall") ]

let test_hygiene_deprecated () =
  check_fixture "hyg_deprecated_use.ml" [ (3, "hygiene-deprecated") ];
  check_fixture "hyg_deprecated_def.ml" []

let test_raw_env_read () =
  check_fixture "env_read.ml"
    [ (3, "raw-env-read"); (5, "raw-env-read"); (7, "raw-env-read") ]

let test_floating_allow_suppresses_file () = check_fixture "suppress_file.ml" []

(* --- suppression via lint.allow -------------------------------------- *)

let test_allow_file_parsing () =
  let entries =
    Lint.Allow.parse_allow_file_contents
      "# comment\n\ntest/lint_fixtures/ *\nlib/util/pool.ml hygiene-catchall  # trailing\n"
  in
  Alcotest.(check int) "entries" 2 (List.length entries);
  let f file rule : Lint.Finding.t =
    Lint.Finding.make ~file ~line:1 ~col:0 ~rule ~message:"m"
  in
  Alcotest.(check bool) "prefix+star" true
    (Lint.Allow.allowed_by_file entries (f "test/lint_fixtures/det_random.ml" "determinism-random"));
  Alcotest.(check bool) "exact+rule" true
    (Lint.Allow.allowed_by_file entries (f "lib/util/pool.ml" "hygiene-catchall"));
  Alcotest.(check bool) "rule mismatch" false
    (Lint.Allow.allowed_by_file entries (f "lib/util/pool.ml" "output-print"));
  Alcotest.(check bool) "path mismatch" false
    (Lint.Allow.allowed_by_file entries (f "lib/util/prng.ml" "hygiene-catchall"))

let test_allow_file_suppresses_fixtures () =
  (* Same scan as the fixture tests, but with the repo lint.allow active:
     everything under test/lint_fixtures/ must be dropped. *)
  let config =
    { (Lint.Driver.default_config ~root) with paths = [ "test/lint_fixtures" ] }
  in
  let result = Lint.Driver.run config in
  Alcotest.(check (list string)) "fixtures allowlisted" []
    (List.map Lint.Finding.to_string result.findings)

(* --- rule registry, scoping, CLI-surface behaviour ------------------- *)

let test_rule_registry () =
  let ids = Lint.Rules.ids in
  Alcotest.(check int) "17 rules" 17 (List.length ids);
  Alcotest.(check int) "ids unique" (List.length ids)
    (List.length (List.sort_uniq String.compare ids));
  List.iter (fun id -> Alcotest.(check bool) id true (Lint.Rules.mem id)) ids;
  Alcotest.(check bool) "unknown id" false (Lint.Rules.mem "no-such-rule")

let test_rule_scoping () =
  let applies = Lint.Rules.applies in
  Alcotest.(check bool) "print banned in lib" true (applies "output-print" "lib/logic/cube.ml");
  Alcotest.(check bool) "print ok in render" false
    (applies "output-print" "lib/crossbar/render.ml");
  Alcotest.(check bool) "print ok in texttable" false
    (applies "output-print" "lib/util/texttable.ml");
  Alcotest.(check bool) "print ok in tests" false (applies "output-print" "test/test_logic.ml");
  Alcotest.(check bool) "print banned in fixtures" true
    (applies "output-print" "test/lint_fixtures/out_print.ml");
  Alcotest.(check bool) "random ok in prng" false
    (applies "determinism-random" "lib/util/prng.ml");
  Alcotest.(check bool) "random banned elsewhere" true
    (applies "determinism-random" "lib/util/pool.ml");
  Alcotest.(check bool) "wallclock ok in timing" false
    (applies "determinism-wallclock" "lib/util/timing.ml");
  Alcotest.(check bool) "toplevel state ok in telemetry" false
    (applies "domain-toplevel-state" "lib/util/telemetry.ml");
  Alcotest.(check bool) "toplevel state ok in metrics" false
    (applies "domain-toplevel-state" "lib/util/metrics.ml");
  Alcotest.(check bool) "stderr banned in service" true
    (applies "output-stderr-print" "lib/service/serve.ml");
  Alcotest.(check bool) "stderr banned in util" true
    (applies "output-stderr-print" "lib/util/lru.ml");
  Alcotest.(check bool) "stderr ok in checkpoint" false
    (applies "output-stderr-print" "lib/util/checkpoint.ml");
  Alcotest.(check bool) "stderr ok in telemetry" false
    (applies "output-stderr-print" "lib/util/telemetry.ml");
  Alcotest.(check bool) "stderr ok outside instrumented layers" false
    (applies "output-stderr-print" "lib/logic/cube.ml");
  Alcotest.(check bool) "stderr banned in fixtures" true
    (applies "output-stderr-print" "test/lint_fixtures/out_stderr.ml");
  Alcotest.(check bool) "env read ok in the registry" false
    (applies "raw-env-read" "lib/util/config.ml");
  Alcotest.(check bool) "env read banned elsewhere in lib" true
    (applies "raw-env-read" "lib/util/pool.ml");
  Alcotest.(check bool) "env read banned in tests" true
    (applies "raw-env-read" "test/test_golden.ml");
  Alcotest.(check bool) "env read banned in fixtures" true
    (applies "raw-env-read" "test/lint_fixtures/env_read.ml")

let test_only_filter () =
  let config =
    {
      (Lint.Driver.default_config ~root) with
      paths = [ fixture_dir ^ "det_wallclock.ml" ];
      allow_file = None;
      only = [ "determinism-random" ];
    }
  in
  Alcotest.(check int) "other rules filtered" 0
    (List.length (Lint.Driver.run config).findings);
  let bad = { config with only = [ "no-such-rule" ] } in
  Alcotest.check_raises "unknown rule rejected"
    (Invalid_argument "mcx-lint: unknown rule \"no-such-rule\"") (fun () ->
      ignore (Lint.Driver.run bad))

let test_finding_format () =
  let f : Lint.Finding.t =
    Lint.Finding.make ~file:"lib/x.ml" ~line:3 ~col:7 ~rule:"output-print" ~message:"nope"
  in
  Alcotest.(check string) "text" "lib/x.ml:3:7 [output-print] nope"
    (Lint.Finding.to_string f);
  let chained = { f with chain = [ { name = "Mcx_util.Pool.go"; file = "lib/util/pool.ml"; line = 9; col = 2 } ] } in
  Alcotest.(check string) "text+chain"
    "lib/x.ml:3:7 [output-print] nope\n    via Mcx_util.Pool.go (lib/util/pool.ml:9:2)"
    (Lint.Finding.to_string chained)

let test_json_report () =
  let config =
    {
      (Lint.Driver.default_config ~root) with
      paths = [ fixture_dir ^ "hyg_obj_magic.ml" ];
      allow_file = None;
    }
  in
  let json = Lint.Driver.report_json (Lint.Driver.run config) in
  let contains needle =
    let n = String.length needle and h = String.length json in
    let rec go i = i + n <= h && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "schema tag" true (contains "\"schema\":\"mcx-lint/1\"");
  Alcotest.(check bool) "rule id" true (contains "\"rule\":\"hygiene-obj-magic\"");
  Alcotest.(check bool) "count" true (contains "\"count\":1")

(* --- interprocedural rules -------------------------------------------- *)

let test_transitive_nondet () =
  check_fixture "ip_nondet.ml" [ (11, "transitive-nondet") ]

let test_transitive_nondet_scc () = check_fixture "ip_scc.ml" [ (10, "transitive-nondet") ]

let test_nondet_chain () =
  match lint_fixture "ip_nondet.ml" with
  | [ f ] ->
    Alcotest.(check (list string))
      "shortest source\xe2\x86\x92sink chain"
      [
        "Lint_fixtures.Ip_nondet.shallow";
        "Lint_fixtures.Ip_nondet.mid";
        "Lint_fixtures.Ip_nondet.deep";
        "Stdlib.Random.int";
      ]
      (List.map (fun (s : Lint.Finding.step) -> s.name) f.chain)
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

let test_pool_closure_capture () =
  check_fixture "ip_pool_capture.ml"
    [ (5, "domain-toplevel-state"); (10, "pool-closure-capture") ]

let test_span_exception_unsafe () =
  check_fixture "ip_span.ml" [ (8, "span-exception-unsafe") ]

let test_replay_io_divergence () =
  check_fixture "ip_replay_io.ml" [ (10, "replay-io-divergence") ]

(* --- call graph and effect fixpoint on hand-built graphs -------------- *)

let mk_node ?(mut = false) ?(entry = false) ?(sources = []) ?(edges = []) id :
    Lint.Callgraph.node =
  {
    id;
    nfile = "lib/x.ml";
    nline = 1;
    ncol = 0;
    mutable_state = mut;
    entrypoint = entry;
    sources;
    edges;
    spans = [];
    closures = [];
  }

let mk_edge callee : Lint.Callgraph.edge =
  { callee; eline = 1; ecol = 0; raise_protected = false; e_in_span = None }

let nondet_src : Lint.Callgraph.source =
  {
    kind = Lint.Callgraph.Nondet;
    name = "Stdlib.Random.int";
    sline = 1;
    scol = 0;
    in_span = None;
  }

let mk_summary nodes : Lint.Callgraph.summary =
  { modname = "M"; src = "lib/x.ml"; nodes; typed_findings = [] }

(* a <-> b (one SCC) -> c (the Nondet source) *)
let cyclic_graph () =
  Lint.Callgraph.build
    [
      mk_summary
        [
          mk_node "M.a" ~edges:[ mk_edge "M.b" ];
          mk_node "M.b" ~edges:[ mk_edge "M.a"; mk_edge "M.c" ];
          mk_node "M.c" ~sources:[ nondet_src ];
        ];
    ]

let test_canonical_names () =
  Alcotest.(check string) "module mangling" "Mcx_util.Pool.map"
    (Lint.Callgraph.canonical "Mcx_util__Pool.map");
  Alcotest.(check string) "value underscores survive" "M.foo__bar"
    (Lint.Callgraph.canonical "M.foo__bar")

let test_sccs_reverse_topological () =
  Alcotest.(check (list (list string)))
    "components, successors first"
    [ [ "M.c" ]; [ "M.a"; "M.b" ] ]
    (Lint.Callgraph.sccs (cyclic_graph ()))

let test_effect_fixpoint () =
  let g = cyclic_graph () in
  let transitive ?barrier id = Lint.Effects.transitive g ?barrier Lint.Effects.Nondet id in
  Alcotest.(check bool) "cycle member reaches source" true (transitive "M.a");
  Alcotest.(check bool) "direct source" true (transitive "M.c");
  let barrier (n : Lint.Callgraph.node) = n.id = "M.c" in
  Alcotest.(check bool) "barrier masks propagation" false (transitive ~barrier "M.a");
  Alcotest.(check bool) "barrier does not mask the source itself" true
    (transitive ~barrier "M.c");
  Alcotest.(check bool) "unknown id" false (transitive "M.zzz")

(* --- incremental cache ------------------------------------------------ *)

let test_cache_roundtrip () =
  let path = Filename.temp_file "mcx-lint-cache" ".json" in
  let t = Lint.Cache.empty () in
  let summary =
    {
      Lint.Callgraph.modname = "M";
      src = "lib/x.ml";
      nodes = [ mk_node "M.a" ~mut:true ~edges:[ mk_edge "M.b" ]; mk_node "M.b" ~sources:[ nondet_src ] ];
      typed_findings = [ Lint.Finding.make ~file:"lib/x.ml" ~line:2 ~col:0 ~rule:"hygiene-obj-magic" ~message:"m" ];
    }
  in
  Lint.Cache.add t ~path:"lib/.objs/x.cmt"
    { Lint.Cache.digest = "abc"; summary; findings = summary.typed_findings };
  Lint.Cache.save path t;
  let t2 = Lint.Cache.load path in
  (match Lint.Cache.find t2 ~path:"lib/.objs/x.cmt" ~digest:"abc" with
  | None -> Alcotest.fail "expected a cache hit"
  | Some e ->
    Alcotest.(check string) "modname" "M" e.summary.modname;
    Alcotest.(check int) "nodes" 2 (List.length e.summary.nodes);
    Alcotest.(check bool) "mut round-trips" true
      (List.exists (fun (n : Lint.Callgraph.node) -> n.id = "M.a" && n.mutable_state)
         e.summary.nodes);
    Alcotest.(check int) "findings" 1 (List.length e.findings));
  Alcotest.(check bool) "digest change invalidates" true
    (Lint.Cache.find t2 ~path:"lib/.objs/x.cmt" ~digest:"other" = None);
  Sys.remove path

let test_cache_corrupt_load () =
  let path = Filename.temp_file "mcx-lint-cache" ".json" in
  let oc = open_out path in
  output_string oc "{not json";
  close_out oc;
  let t = Lint.Cache.load path in
  Alcotest.(check bool) "corrupt file loads as empty" true
    (Lint.Cache.find t ~path:"x" ~digest:"d" = None);
  Sys.remove path

let test_driver_cache_warm () =
  let cache_rel = "_build/mcx-lint-test-cache.json" in
  let config =
    {
      (Lint.Driver.default_config ~root) with
      paths = [ fixture_dir ^ "ip_nondet.ml" ];
      allow_file = None;
      cache_file = Some cache_rel;
    }
  in
  let r1 = Lint.Driver.run config in
  let r2 = Lint.Driver.run config in
  Alcotest.(check bool) "cache file written" true
    (Sys.file_exists (Filename.concat root cache_rel));
  Alcotest.(check int) "warm run re-analyzes nothing" 0 r2.modules_analyzed;
  Alcotest.(check bool) "warm run hits the cache" true (r2.cache_hits > 0);
  Alcotest.(check (list string)) "warm findings byte-identical"
    (List.map Lint.Finding.to_string r1.findings)
    (List.map Lint.Finding.to_string r2.findings);
  Sys.remove (Filename.concat root cache_rel)

(* --- stale-allow tracking (--check-allows) ---------------------------- *)

let test_stale_allow_entries () =
  let entries =
    Lint.Allow.parse_allow_file_contents "# header\nlib/never/ *\ntest/lint_fixtures/ *\n"
  in
  let f =
    Lint.Finding.make ~file:"test/lint_fixtures/det_random.ml" ~line:3 ~col:0
      ~rule:"determinism-random" ~message:"m"
  in
  Alcotest.(check bool) "suppressed" true (Lint.Allow.allowed_by_file entries f);
  (match entries with
  | [ never; fixtures ] ->
    Alcotest.(check bool) "unmatched entry stays unused" false never.entry_used;
    Alcotest.(check int) "entry line recorded" 2 never.entry_line;
    Alcotest.(check bool) "matched entry marked used" true fixtures.entry_used
  | _ -> Alcotest.fail "expected two entries");
  let span : Lint.Allow.span =
    { rule = Some "output-print"; start_line = 1; start_col = 0; end_line = 9; end_col = 0; used = false }
  in
  Alcotest.(check bool) "span consulted as barrier" true
    (Lint.Allow.allows [ span ] ~rule:"output-print" ~line:4 ~col:2);
  Alcotest.(check bool) "span marked used" true span.used

let test_fixture_run_has_no_stale_allows () =
  let config =
    {
      (Lint.Driver.default_config ~root) with
      paths = [ fixture_dir ^ "ip_nondet.ml" ];
      allow_file = None;
    }
  in
  let result = Lint.Driver.run config in
  Alcotest.(check int) "every fixture annotation earns its keep" 0
    (List.length result.stale_allows)

(* --- SARIF ------------------------------------------------------------ *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_sarif_report () =
  let config =
    {
      (Lint.Driver.default_config ~root) with
      paths = [ fixture_dir ^ "ip_nondet.ml" ];
      allow_file = None;
    }
  in
  let sarif = Lint.Driver.report_sarif (Lint.Driver.run config) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("sarif contains " ^ needle) true (contains sarif needle))
    [
      "\"version\":\"2.1.0\"";
      "sarif-schema-2.1.0.json";
      "\"name\":\"mcx-lint\"";
      "\"ruleId\":\"transitive-nondet\"";
      "\"codeFlows\"";
      "\"startLine\":11";
      "\"uri\":\"test/lint_fixtures/ip_nondet.ml\"";
    ];
  (* columns are 1-based in SARIF: the driver node sits at col 0 *)
  Alcotest.(check bool) "1-based startColumn" true (contains sarif "\"startColumn\":1")

(* --- the self-hosting check ------------------------------------------ *)

let test_self_host () =
  let result = Lint.Driver.run (Lint.Driver.default_config ~root) in
  Alcotest.(check (list string)) "repository lints clean" []
    (List.map Lint.Finding.to_string result.findings);
  (* The determinism guarantees lean on the typed rules, so make sure the
     .cmt pairing actually happened rather than silently degrading to
     source-only linting. *)
  Alcotest.(check bool)
    (Printf.sprintf "typed coverage (%d files)" result.files_typed)
    true
    (result.files_typed >= 50);
  (* The interprocedural rules are only as good as the whole-program graph
     behind them: demand a real fixpoint over the repo, not a toy slice. *)
  Alcotest.(check bool)
    (Printf.sprintf "call graph breadth (%d modules)" result.graph_modules)
    true
    (result.graph_modules >= 50);
  Alcotest.(check (list string)) "no stale allows" []
    (List.map
       (fun (s : Lint.Driver.stale_allow) ->
         Printf.sprintf "%s:%d %s" s.sa_file s.sa_line s.sa_rule)
       result.stale_allows)

let () =
  Alcotest.run "mcx-lint"
    [
      ( "rules",
        [
          Alcotest.test_case "determinism-random" `Quick test_determinism_random;
          Alcotest.test_case "determinism-wallclock" `Quick test_determinism_wallclock;
          Alcotest.test_case "determinism-poly-hash" `Quick test_determinism_poly_hash;
          Alcotest.test_case "packed-poly-compare" `Quick test_packed_poly_compare;
          Alcotest.test_case "float-sort-poly-compare" `Quick test_float_sort_poly_compare;
          Alcotest.test_case "domain-toplevel-state" `Quick test_domain_toplevel_state;
          Alcotest.test_case "output-print" `Quick test_output_print;
          Alcotest.test_case "output-stderr-print" `Quick test_output_stderr_print;
          Alcotest.test_case "output-float-json" `Quick test_output_float_json;
          Alcotest.test_case "hygiene-obj-magic" `Quick test_hygiene_obj_magic;
          Alcotest.test_case "hygiene-catchall" `Quick test_hygiene_catchall;
          Alcotest.test_case "hygiene-deprecated" `Quick test_hygiene_deprecated;
          Alcotest.test_case "raw-env-read" `Quick test_raw_env_read;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "floating allow" `Quick test_floating_allow_suppresses_file;
          Alcotest.test_case "lint.allow parsing" `Quick test_allow_file_parsing;
          Alcotest.test_case "lint.allow suppresses fixtures" `Quick
            test_allow_file_suppresses_fixtures;
        ] );
      ( "driver",
        [
          Alcotest.test_case "rule registry" `Quick test_rule_registry;
          Alcotest.test_case "rule scoping" `Quick test_rule_scoping;
          Alcotest.test_case "--only filter" `Quick test_only_filter;
          Alcotest.test_case "finding format" `Quick test_finding_format;
          Alcotest.test_case "json report" `Quick test_json_report;
        ] );
      ( "interproc",
        [
          Alcotest.test_case "transitive-nondet" `Quick test_transitive_nondet;
          Alcotest.test_case "transitive-nondet (scc)" `Quick test_transitive_nondet_scc;
          Alcotest.test_case "source\xe2\x86\x92sink chain" `Quick test_nondet_chain;
          Alcotest.test_case "pool-closure-capture" `Quick test_pool_closure_capture;
          Alcotest.test_case "span-exception-unsafe" `Quick test_span_exception_unsafe;
          Alcotest.test_case "replay-io-divergence" `Quick test_replay_io_divergence;
        ] );
      ( "callgraph",
        [
          Alcotest.test_case "canonical names" `Quick test_canonical_names;
          Alcotest.test_case "sccs reverse-topological" `Quick test_sccs_reverse_topological;
          Alcotest.test_case "effect fixpoint" `Quick test_effect_fixpoint;
        ] );
      ( "cache",
        [
          Alcotest.test_case "round-trip" `Quick test_cache_roundtrip;
          Alcotest.test_case "corrupt load" `Quick test_cache_corrupt_load;
          Alcotest.test_case "driver warm run" `Quick test_driver_cache_warm;
        ] );
      ( "allows",
        [
          Alcotest.test_case "stale tracking" `Quick test_stale_allow_entries;
          Alcotest.test_case "fixture run has none" `Quick
            test_fixture_run_has_no_stale_allows;
        ] );
      ("sarif", [ Alcotest.test_case "report shape" `Quick test_sarif_report ]);
      ("self-host", [ Alcotest.test_case "repo lints clean" `Quick test_self_host ]);
    ]
