(* mcx-lint tests: every rule fires at the expected fixture line, both
   suppression mechanisms ([@mcx.lint.allow] attributes and the root
   lint.allow file) silence findings, and — the self-hosting check — the
   repository itself lints clean.

   The driver locates the repo root by walking up from the test's working
   directory to the nearest dune-project, i.e. the real source tree, with
   typed (.cmt) coverage coming from _build/default. *)

module Lint = Mcx_lint

let root =
  match Lint.Driver.find_root () with
  | Some r -> r
  | None -> failwith "test_lint: no dune-project above the test directory"

let fixture_dir = "test/lint_fixtures/"

(* Lint a single fixture file with the path allowlist disabled (the repo
   lint.allow suppresses the whole fixture tree). *)
let lint_fixture file =
  let config =
    {
      (Lint.Driver.default_config ~root) with
      paths = [ fixture_dir ^ file ];
      allow_file = None;
    }
  in
  (Lint.Driver.run config).findings

let line_rules findings =
  List.map (fun (f : Lint.Finding.t) -> (f.line, f.rule)) findings

let check_fixture file expected =
  let findings = lint_fixture file in
  Alcotest.(check (list (pair int string)))
    (file ^ " findings")
    expected (line_rules findings)

(* --- one test per rule ----------------------------------------------- *)
(* Each fixture also contains clean and attribute-suppressed variants on
   other lines, so the exact expected list doubles as the suppression
   assertion: a suppressed or compliant line showing up here is a bug. *)

let test_determinism_random () =
  check_fixture "det_random.ml" [ (3, "determinism-random") ]

let test_determinism_wallclock () =
  check_fixture "det_wallclock.ml"
    [ (3, "determinism-wallclock"); (5, "determinism-wallclock") ]

let test_determinism_poly_hash () =
  check_fixture "det_poly_hash.ml" [ (3, "determinism-poly-hash") ]

let test_packed_poly_compare () =
  check_fixture "packed_poly.ml"
    [
      (4, "packed-poly-compare");
      (7, "packed-poly-compare");
      (10, "packed-poly-compare");
      (13, "packed-poly-compare");
    ]

let test_float_sort_poly_compare () =
  check_fixture "float_sort_poly.ml"
    [ (4, "float-sort-poly-compare"); (7, "float-sort-poly-compare") ]

let test_domain_toplevel_state () =
  check_fixture "race_toplevel.ml"
    [
      (3, "domain-toplevel-state");
      (5, "domain-toplevel-state");
      (7, "domain-toplevel-state");
    ]

let test_output_print () =
  check_fixture "out_print.ml" [ (3, "output-print"); (5, "output-print") ]

let test_output_stderr_print () =
  check_fixture "out_stderr.ml"
    [ (3, "output-stderr-print"); (5, "output-stderr-print") ]

let test_output_float_json () =
  check_fixture "out_float_json.ml" [ (3, "output-float-json") ]

let test_hygiene_obj_magic () =
  check_fixture "hyg_obj_magic.ml" [ (3, "hygiene-obj-magic") ]

let test_hygiene_catchall () =
  check_fixture "hyg_catchall.ml" [ (3, "hygiene-catchall"); (5, "hygiene-catchall") ]

let test_hygiene_deprecated () =
  check_fixture "hyg_deprecated_use.ml" [ (3, "hygiene-deprecated") ];
  check_fixture "hyg_deprecated_def.ml" []

let test_floating_allow_suppresses_file () = check_fixture "suppress_file.ml" []

(* --- suppression via lint.allow -------------------------------------- *)

let test_allow_file_parsing () =
  let entries =
    Lint.Allow.parse_allow_file_contents
      "# comment\n\ntest/lint_fixtures/ *\nlib/util/pool.ml hygiene-catchall  # trailing\n"
  in
  Alcotest.(check int) "entries" 2 (List.length entries);
  let f file rule : Lint.Finding.t = { file; line = 1; col = 0; rule; message = "m" } in
  Alcotest.(check bool) "prefix+star" true
    (Lint.Allow.allowed_by_file entries (f "test/lint_fixtures/det_random.ml" "determinism-random"));
  Alcotest.(check bool) "exact+rule" true
    (Lint.Allow.allowed_by_file entries (f "lib/util/pool.ml" "hygiene-catchall"));
  Alcotest.(check bool) "rule mismatch" false
    (Lint.Allow.allowed_by_file entries (f "lib/util/pool.ml" "output-print"));
  Alcotest.(check bool) "path mismatch" false
    (Lint.Allow.allowed_by_file entries (f "lib/util/prng.ml" "hygiene-catchall"))

let test_allow_file_suppresses_fixtures () =
  (* Same scan as the fixture tests, but with the repo lint.allow active:
     everything under test/lint_fixtures/ must be dropped. *)
  let config =
    { (Lint.Driver.default_config ~root) with paths = [ "test/lint_fixtures" ] }
  in
  let result = Lint.Driver.run config in
  Alcotest.(check (list string)) "fixtures allowlisted" []
    (List.map Lint.Finding.to_string result.findings)

(* --- rule registry, scoping, CLI-surface behaviour ------------------- *)

let test_rule_registry () =
  let ids = Lint.Rules.ids in
  Alcotest.(check int) "12 rules" 12 (List.length ids);
  Alcotest.(check int) "ids unique" (List.length ids)
    (List.length (List.sort_uniq String.compare ids));
  List.iter (fun id -> Alcotest.(check bool) id true (Lint.Rules.mem id)) ids;
  Alcotest.(check bool) "unknown id" false (Lint.Rules.mem "no-such-rule")

let test_rule_scoping () =
  let applies = Lint.Rules.applies in
  Alcotest.(check bool) "print banned in lib" true (applies "output-print" "lib/logic/cube.ml");
  Alcotest.(check bool) "print ok in render" false
    (applies "output-print" "lib/crossbar/render.ml");
  Alcotest.(check bool) "print ok in texttable" false
    (applies "output-print" "lib/util/texttable.ml");
  Alcotest.(check bool) "print ok in tests" false (applies "output-print" "test/test_logic.ml");
  Alcotest.(check bool) "print banned in fixtures" true
    (applies "output-print" "test/lint_fixtures/out_print.ml");
  Alcotest.(check bool) "random ok in prng" false
    (applies "determinism-random" "lib/util/prng.ml");
  Alcotest.(check bool) "random banned elsewhere" true
    (applies "determinism-random" "lib/util/pool.ml");
  Alcotest.(check bool) "wallclock ok in timing" false
    (applies "determinism-wallclock" "lib/util/timing.ml");
  Alcotest.(check bool) "toplevel state ok in telemetry" false
    (applies "domain-toplevel-state" "lib/util/telemetry.ml");
  Alcotest.(check bool) "toplevel state ok in metrics" false
    (applies "domain-toplevel-state" "lib/util/metrics.ml");
  Alcotest.(check bool) "stderr banned in service" true
    (applies "output-stderr-print" "lib/service/serve.ml");
  Alcotest.(check bool) "stderr banned in util" true
    (applies "output-stderr-print" "lib/util/lru.ml");
  Alcotest.(check bool) "stderr ok in checkpoint" false
    (applies "output-stderr-print" "lib/util/checkpoint.ml");
  Alcotest.(check bool) "stderr ok in telemetry" false
    (applies "output-stderr-print" "lib/util/telemetry.ml");
  Alcotest.(check bool) "stderr ok outside instrumented layers" false
    (applies "output-stderr-print" "lib/logic/cube.ml");
  Alcotest.(check bool) "stderr banned in fixtures" true
    (applies "output-stderr-print" "test/lint_fixtures/out_stderr.ml")

let test_only_filter () =
  let config =
    {
      (Lint.Driver.default_config ~root) with
      paths = [ fixture_dir ^ "det_wallclock.ml" ];
      allow_file = None;
      only = [ "determinism-random" ];
    }
  in
  Alcotest.(check int) "other rules filtered" 0
    (List.length (Lint.Driver.run config).findings);
  let bad = { config with only = [ "no-such-rule" ] } in
  Alcotest.check_raises "unknown rule rejected"
    (Invalid_argument "mcx-lint: unknown rule \"no-such-rule\"") (fun () ->
      ignore (Lint.Driver.run bad))

let test_finding_format () =
  let f : Lint.Finding.t =
    { file = "lib/x.ml"; line = 3; col = 7; rule = "output-print"; message = "nope" }
  in
  Alcotest.(check string) "text" "lib/x.ml:3:7 [output-print] nope"
    (Lint.Finding.to_string f)

let test_json_report () =
  let config =
    {
      (Lint.Driver.default_config ~root) with
      paths = [ fixture_dir ^ "hyg_obj_magic.ml" ];
      allow_file = None;
    }
  in
  let json = Lint.Driver.report_json (Lint.Driver.run config) in
  let contains needle =
    let n = String.length needle and h = String.length json in
    let rec go i = i + n <= h && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "schema tag" true (contains "\"schema\":\"mcx-lint/1\"");
  Alcotest.(check bool) "rule id" true (contains "\"rule\":\"hygiene-obj-magic\"");
  Alcotest.(check bool) "count" true (contains "\"count\":1")

(* --- the self-hosting check ------------------------------------------ *)

let test_self_host () =
  let result = Lint.Driver.run (Lint.Driver.default_config ~root) in
  Alcotest.(check (list string)) "repository lints clean" []
    (List.map Lint.Finding.to_string result.findings);
  (* The determinism guarantees lean on the typed rules, so make sure the
     .cmt pairing actually happened rather than silently degrading to
     source-only linting. *)
  Alcotest.(check bool)
    (Printf.sprintf "typed coverage (%d files)" result.files_typed)
    true
    (result.files_typed >= 50)

let () =
  Alcotest.run "mcx-lint"
    [
      ( "rules",
        [
          Alcotest.test_case "determinism-random" `Quick test_determinism_random;
          Alcotest.test_case "determinism-wallclock" `Quick test_determinism_wallclock;
          Alcotest.test_case "determinism-poly-hash" `Quick test_determinism_poly_hash;
          Alcotest.test_case "packed-poly-compare" `Quick test_packed_poly_compare;
          Alcotest.test_case "float-sort-poly-compare" `Quick test_float_sort_poly_compare;
          Alcotest.test_case "domain-toplevel-state" `Quick test_domain_toplevel_state;
          Alcotest.test_case "output-print" `Quick test_output_print;
          Alcotest.test_case "output-stderr-print" `Quick test_output_stderr_print;
          Alcotest.test_case "output-float-json" `Quick test_output_float_json;
          Alcotest.test_case "hygiene-obj-magic" `Quick test_hygiene_obj_magic;
          Alcotest.test_case "hygiene-catchall" `Quick test_hygiene_catchall;
          Alcotest.test_case "hygiene-deprecated" `Quick test_hygiene_deprecated;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "floating allow" `Quick test_floating_allow_suppresses_file;
          Alcotest.test_case "lint.allow parsing" `Quick test_allow_file_parsing;
          Alcotest.test_case "lint.allow suppresses fixtures" `Quick
            test_allow_file_suppresses_fixtures;
        ] );
      ( "driver",
        [
          Alcotest.test_case "rule registry" `Quick test_rule_registry;
          Alcotest.test_case "rule scoping" `Quick test_rule_scoping;
          Alcotest.test_case "--only filter" `Quick test_only_filter;
          Alcotest.test_case "finding format" `Quick test_finding_format;
          Alcotest.test_case "json report" `Quick test_json_report;
        ] );
      ("self-host", [ Alcotest.test_case "repo lints clean" `Quick test_self_host ]);
    ]
