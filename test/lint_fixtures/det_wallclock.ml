(* determinism-wallclock: expected at lines 3 and 5. *)

let now () = Unix.gettimeofday ()

let cpu () = Sys.time ()

let suppressed () = (Unix.gettimeofday () [@mcx.lint.allow "determinism-wallclock"])
