(* raw-env-read: expected at lines 3, 5 and 7. *)

let direct () = Sys.getenv "MCX_JOBS"

let opt () = Sys.getenv_opt "MCX_CHECKPOINT"

let via_unix () = Unix.getenv "MCX_TRACE"

let suppressed () = (Sys.getenv "HOME" [@mcx.lint.allow "raw-env-read"])
