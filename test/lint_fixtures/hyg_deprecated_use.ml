(* hygiene-deprecated (typed): expected at line 3. *)

let use () = Hyg_deprecated_def.old_merge 1 2

let fine () = Hyg_deprecated_def.new_merge 1 2
