(* transitive-nondet through a mutually recursive pair: [ping]/[pong]
   form one SCC whose shared effect value must reach [driver] (expected
   at line 10). *)

let rec ping n = if n = 0 then Random.bits () else pong (n - 1)
  [@@mcx.lint.allow "determinism-random"]

and pong n = ping n

let driver () = ping 3 [@@mcx.lint.entrypoint]
