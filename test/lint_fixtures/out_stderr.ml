(* output-stderr-print: expected at lines 3 and 5. *)

let warn () = prerr_endline "something happened"

let grumble x = Printf.eprintf "trial %d failed\n" x

let fine ppf = Format.fprintf ppf "an explicit formatter is not stderr"

let suppressed () = (prerr_newline () [@mcx.lint.allow "output-stderr-print"])
