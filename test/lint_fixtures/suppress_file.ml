(* A floating [@@@mcx.lint.allow] suppresses the whole file. *)

[@@@mcx.lint.allow "determinism-random"]

let roll () = Random.int 6
