(* output-print: expected at lines 3 and 5. *)

let greet () = print_endline "hello"

let shout x = Printf.printf "%d\n" x

let fine ppf = Format.pp_print_string ppf "not stdout"

let suppressed () = (print_endline "tolerated" [@mcx.lint.allow "output-print"])
