(* transitive-nondet: [driver] reaches Random.int through a 3-deep call
   chain (expected at line 11, with the full chain); [clean_driver]
   routes randomness through Mcx_util.Prng and must stay clean. *)

let deep () = Random.int 10 [@@mcx.lint.allow "determinism-random"]

let mid () = deep () + 1

let shallow () = mid () + 1

let driver () = shallow () [@@mcx.lint.entrypoint]

let clean_deep k = Mcx_util.Prng.int (Mcx_util.Prng.of_key k) 10

let clean_mid k = clean_deep k + 1

let clean_driver k = clean_mid k [@@mcx.lint.entrypoint]
