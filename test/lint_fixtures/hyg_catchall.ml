(* hygiene-catchall: expected at lines 3 and 5. *)

let swallow f = try f () with _ -> ()

let swallow_named f = try Some (f ()) with e -> ignore e; None

let fine_reraise f cleanup = try f () with e -> cleanup (); raise e

let fine_specific f = try Some (f ()) with Not_found -> None
