(* determinism-poly-hash: expected at line 3. *)

let seed_of key = Hashtbl.hash key

let suppressed key = (Hashtbl.hash key [@mcx.lint.allow "determinism-poly-hash"])
