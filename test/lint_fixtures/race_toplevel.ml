(* domain-toplevel-state: expected at lines 3, 5 and 7. *)

let cache : (string, int) Hashtbl.t = Hashtbl.create 16

let hits = ref 0

let scratch = Buffer.create 80

let per_call () = Buffer.create 80

(* Guarded by a mutex in real code; the annotation documents it. *)
let allowed : int list ref = ref [] [@@mcx.lint.allow "domain-toplevel-state"]
