(* determinism-random: expected at line 3. *)

let roll () = Random.int 6

let suppressed () = (Random.int 6 [@mcx.lint.allow "determinism-random"])
