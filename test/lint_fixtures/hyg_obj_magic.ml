(* hygiene-obj-magic: expected at line 3. *)

let cast (x : int) : bool = Obj.magic x
