(* packed-poly-compare (typed): expected at lines 4, 7, 10 and 13. *)

let bad_compare (a : Mcx_logic.Cube.t) (b : Mcx_logic.Cube.t) =
  Stdlib.compare a b

let bad_equal (a : Mcx_logic.Cube.t) (b : Mcx_logic.Cube.t) =
  a = b

let bad_hashtbl (tbl : (Mcx_logic.Cube.t, int) Hashtbl.t) (c : Mcx_logic.Cube.t) =
  Hashtbl.find_opt tbl c

let bad_sort (cubes : Mcx_logic.Cube.t list) =
  List.sort compare cubes

let good_equal (a : Mcx_logic.Cube.t) (b : Mcx_logic.Cube.t) =
  Mcx_logic.Cube.equal a b

let suppressed (a : Mcx_logic.Cube.t) (b : Mcx_logic.Cube.t) =
  ((a = b) [@mcx.lint.allow "packed-poly-compare"])
