(* replay-io-divergence: the trial function journaled by Checkpoint.map
   writes to stdout (expected at the sweep's map call); the
   telemetry-routed twin is clean. *)

let trial i =
  (print_int i [@mcx.lint.allow "output-print"]);
  i

let sweep cp pool n =
  Mcx_util.Checkpoint.map cp ~pool ~section:"s" ~n
    ~codec:Mcx_util.Checkpoint.Codec.int trial

let clean cp pool n =
  Mcx_util.Checkpoint.map cp ~pool ~section:"s" ~n
    ~codec:Mcx_util.Checkpoint.Codec.int (fun i ->
      Mcx_util.Telemetry.count "fixture.trial";
      i)
