(* float-sort-poly-compare (typed): expected at lines 4 and 7. *)

let bad_array (a : float array) =
  Array.sort compare a

let bad_list (l : float list) =
  List.sort Stdlib.compare l

let good_array (a : float array) =
  Array.sort Float.compare a

let good_ints (a : int array) =
  Array.sort compare a

let good_custom (a : float array) =
  Array.sort (fun x y -> Float.compare y x) a

let suppressed (a : float array) =
  (Array.sort compare a [@mcx.lint.allow "float-sort-poly-compare"])
