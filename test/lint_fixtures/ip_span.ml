(* span-exception-unsafe: the manual span opened in [traced] can be
   escaped by [risky]'s exception before end_span runs (expected at the
   begin_span line); [safe] contains the exception and must stay clean. *)

let risky () = failwith "boom"

let traced () =
  Mcx_util.Telemetry.begin_span "work";
  let r = risky () in
  Mcx_util.Telemetry.end_span "work";
  r

let safe () =
  Mcx_util.Telemetry.begin_span "ok";
  ignore ((try risky () with _ -> 0) [@mcx.lint.allow "hygiene-catchall"]);
  Mcx_util.Telemetry.end_span "ok"
