(* Definition site for the hygiene-deprecated fixture: like the retired
   Timing.Counter.merge, the deprecation lives on the [val]. *)

val old_merge : int -> int -> int
[@@deprecated "merging moved to Telemetry"]

val new_merge : int -> int -> int
