(* Definition site for the hygiene-deprecated fixture. *)

let old_merge a b = a + b

let new_merge = ( + )
