(* pool-closure-capture: the literal closure handed to Pool.map reaches
   the unguarded top-level [tally] through [record] (expected at line 10;
   line 5 is the domain-toplevel-state source finding). The pure closure
   is clean. *)
let tally = Hashtbl.create 8

let record i = Hashtbl.replace tally i i

let hot pool =
  Mcx_util.Pool.map pool 4 (fun i ->
      record i;
      i)

let cold pool = Mcx_util.Pool.map pool 4 (fun i -> i + 1)
