(* output-float-json: expected at line 3. *)

let row x = Printf.sprintf "{\"value\": %f}" x

let fine dt = Printf.sprintf "%.1fms" dt
