(* Differential test oracle: the packed kernels (Cube_packed via Cube,
   bit-packed Bmatrix) against the naive reference implementations in
   Mcx.Logic.Naive, on seeded randomized inputs.

   Arities are drawn from 1..80 so every suite crosses the packed-word
   boundary (63 variables per native word) as well as the one-word fast
   path.  Each op gets >= 1000 random cases. *)

open Mcx_logic

let seed = 0xC0FFEE
let cases_per_op = 1200
let max_arity = 80

let prng_for name = Mcx_util.Prng.(of_key (Key.string (Key.root seed) name))

let lit_of_int = function 0 -> Literal.Neg | 1 -> Literal.Pos | _ -> Literal.Absent

(* Random naive cube; [absent_bias] is the probability a variable is free. *)
let random_lits prng ~arity ~absent_bias =
  Array.init arity (fun _ ->
      if Mcx_util.Prng.bernoulli prng absent_bias then Literal.Absent
      else lit_of_int (Mcx_util.Prng.int prng 2))

let random_arity prng = 1 + Mcx_util.Prng.int prng max_arity

(* A pair biased toward interesting relations: sometimes b is a specialized
   copy of a (so covers/intersect hit the true branch), sometimes an
   adjacent cube (so merge succeeds), otherwise independent. *)
let random_pair prng ~arity =
  let a = random_lits prng ~arity ~absent_bias:0.5 in
  match Mcx_util.Prng.int prng 4 with
  | 0 ->
    (* specialize: fill some of a's absent positions *)
    let b = Array.copy a in
    Array.iteri
      (fun i l ->
        if Literal.equal l Literal.Absent && Mcx_util.Prng.bernoulli prng 0.5 then
          b.(i) <- lit_of_int (Mcx_util.Prng.int prng 2))
      a;
    (a, b)
  | 1 ->
    (* adjacent: flip exactly one constrained literal when one exists *)
    let b = Array.copy a in
    let constrained =
      Array.to_list (Array.mapi (fun i l -> (i, l)) a)
      |> List.filter (fun (_, l) -> not (Literal.equal l Literal.Absent))
    in
    (match constrained with
    | [] -> (a, b)
    | _ ->
      let k, l =
        List.nth constrained (Mcx_util.Prng.int prng (List.length constrained))
      in
      b.(k) <- Literal.complement l;
      (a, b))
  | _ -> (a, random_lits prng ~arity ~absent_bias:0.5)

let check_cube = Alcotest.testable Cube.pp Cube.equal
let check_cube_opt = Alcotest.option check_cube

let lits_equal a b =
  Array.length a = Array.length b && Array.for_all2 Literal.equal a b

(* ------------------------------------------------------------------ *)
(* Cube ops vs the naive reference                                     *)
(* ------------------------------------------------------------------ *)

let test_covers () =
  let prng = prng_for "covers" in
  for _ = 1 to cases_per_op do
    let arity = random_arity prng in
    let a, b = random_pair prng ~arity in
    let expected = Naive.covers a b in
    let got = Cube.covers (Naive.of_cube a) (Naive.of_cube b) in
    if got <> expected then
      Alcotest.failf "covers %s %s: packed %b, reference %b"
        (Cube.to_string (Naive.of_cube a))
        (Cube.to_string (Naive.of_cube b))
        got expected
  done

let test_intersect () =
  let prng = prng_for "intersect" in
  for _ = 1 to cases_per_op do
    let arity = random_arity prng in
    let a, b = random_pair prng ~arity in
    let expected = Option.map Naive.of_cube (Naive.intersect a b) in
    let got = Cube.intersect (Naive.of_cube a) (Naive.of_cube b) in
    Alcotest.check check_cube_opt "intersect" expected got
  done

let test_distance_supercube () =
  let prng = prng_for "distance" in
  for _ = 1 to cases_per_op do
    let arity = random_arity prng in
    let a, b = random_pair prng ~arity in
    let pa = Naive.of_cube a and pb = Naive.of_cube b in
    Alcotest.(check int) "distance" (Naive.distance a b) (Cube.distance pa pb);
    Alcotest.check check_cube "supercube"
      (Naive.of_cube (Naive.supercube a b))
      (Cube.supercube pa pb)
  done

let test_merge_adjacent () =
  let prng = prng_for "merge" in
  for _ = 1 to cases_per_op do
    let arity = random_arity prng in
    let a, b = random_pair prng ~arity in
    let expected = Option.map Naive.of_cube (Naive.merge_adjacent a b) in
    let got = Cube.merge_adjacent (Naive.of_cube a) (Naive.of_cube b) in
    Alcotest.check check_cube_opt "merge_adjacent" expected got
  done

let test_cofactor () =
  let prng = prng_for "cofactor" in
  for _ = 1 to cases_per_op do
    let arity = random_arity prng in
    let c = random_lits prng ~arity ~absent_bias:0.4 in
    let var = Mcx_util.Prng.int prng arity in
    let value = Mcx_util.Prng.bool prng in
    let expected = Option.map Naive.of_cube (Naive.cofactor c ~var ~value) in
    let got = Cube.cofactor (Naive.of_cube c) ~var ~value in
    Alcotest.check check_cube_opt "cofactor" expected got
  done

let test_cofactor_wrt () =
  let prng = prng_for "cofactor_wrt" in
  for _ = 1 to cases_per_op do
    let arity = random_arity prng in
    let g, c = random_pair prng ~arity in
    let expected = Option.map Naive.of_cube (Naive.cofactor_wrt g c) in
    let got = Cube.cofactor_wrt (Naive.of_cube g) (Naive.of_cube c) in
    Alcotest.check check_cube_opt "cofactor_wrt" expected got
  done

let test_eval () =
  let prng = prng_for "eval" in
  for _ = 1 to cases_per_op do
    let arity = random_arity prng in
    let c = random_lits prng ~arity ~absent_bias:0.6 in
    let v = Array.init arity (fun _ -> Mcx_util.Prng.bool prng) in
    Alcotest.(check bool) "eval" (Naive.eval c v) (Cube.eval (Naive.of_cube c) v);
    let packed_v = Cube.pack_assignment v in
    Alcotest.(check bool) "eval_packed" (Naive.eval c v)
      (Cube.eval_packed (Naive.of_cube c) packed_v)
  done

let test_roundtrip_and_counts () =
  let prng = prng_for "roundtrip" in
  for _ = 1 to cases_per_op do
    let arity = random_arity prng in
    let lits = random_lits prng ~arity ~absent_bias:0.5 in
    let c = Naive.of_cube lits in
    if not (lits_equal lits (Naive.to_cube c)) then
      Alcotest.fail "to_cube . of_cube <> id";
    Alcotest.check check_cube "of_string . to_string" c
      (Cube.of_string (Cube.to_string c));
    Alcotest.(check int) "num_literals" (Naive.num_literals lits) (Cube.num_literals c);
    let expected_literals =
      List.filteri
        (fun _ (_, l) -> not (Literal.equal l Literal.Absent))
        (Array.to_list (Array.mapi (fun i l -> (i, l)) lits))
    in
    let got = Cube.literals c in
    if
      List.length got <> List.length expected_literals
      || not
           (List.for_all2
              (fun (i, l) (j, m) -> i = j && Literal.equal l m)
              expected_literals got)
    then Alcotest.failf "literals mismatch on %s" (Cube.to_string c)
  done

(* compare must order cubes exactly as the pre-packed representation did:
   shorter arity first, then lexicographic by variable with
   Neg < Pos < Absent. *)
let naive_compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else begin
    let rec go i =
      if i = la then 0
      else
        let c = Literal.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  end

let sign x = Stdlib.compare x 0

let test_compare_equal () =
  let prng = prng_for "compare" in
  for _ = 1 to cases_per_op do
    let arity = random_arity prng in
    let a, b = random_pair prng ~arity in
    let pa = Naive.of_cube a and pb = Naive.of_cube b in
    Alcotest.(check int) "compare sign" (sign (naive_compare a b))
      (sign (Cube.compare pa pb));
    Alcotest.(check bool) "equal" (lits_equal a b) (Cube.equal pa pb);
    Alcotest.(check int) "compare self" 0 (Cube.compare pa pa)
  done

let test_tautology () =
  let prng = prng_for "tautology" in
  let tautologies = ref 0 in
  for _ = 1 to 1000 do
    let arity = 1 + Mcx_util.Prng.int prng max_arity in
    (* Small covers of wide cubes keep the naive recursion tractable while
       still producing genuine tautologies at small arity. *)
    let n_cubes = 1 + Mcx_util.Prng.int prng 8 in
    let wide = min arity 6 in
    let cubes =
      List.init n_cubes (fun _ ->
          let lits = Array.make arity Literal.Absent in
          let constrained = 1 + Mcx_util.Prng.int prng wide in
          for _ = 1 to constrained do
            lits.(Mcx_util.Prng.int prng arity) <- lit_of_int (Mcx_util.Prng.int prng 2)
          done;
          lits)
    in
    let expected = Naive.tautology ~arity cubes in
    if expected then incr tautologies;
    let cover = Cover.create ~arity (List.map Naive.of_cube cubes) in
    if Tautology.check cover <> expected then
      Alcotest.failf "tautology mismatch (arity %d): reference %b" arity expected
  done;
  (* the generator must exercise both outcomes *)
  if !tautologies = 0 then Alcotest.fail "tautology generator produced no tautologies"

let test_cover_containment () =
  let prng = prng_for "containment" in
  for _ = 1 to 1000 do
    let arity = random_arity prng in
    let n_cubes = 1 + Mcx_util.Prng.int prng 10 in
    let cubes = List.init n_cubes (fun _ -> random_lits prng ~arity ~absent_bias:0.6) in
    let expected = List.map Naive.of_cube (Naive.single_cube_containment cubes) in
    let got =
      Cover.cubes
        (Cover.single_cube_containment
           (Cover.create ~arity (List.map Naive.of_cube cubes)))
    in
    Alcotest.(check (list check_cube)) "single_cube_containment" expected got
  done

(* ------------------------------------------------------------------ *)
(* Word kernels: popcount / ctz                                        *)
(* ------------------------------------------------------------------ *)

let test_bits () =
  let prng = prng_for "bits" in
  let slow_pop x =
    let n = ref 0 in
    for b = 0 to Sys.int_size - 1 do
      if (x lsr b) land 1 = 1 then incr n
    done;
    !n
  in
  let check x =
    Alcotest.(check int) "popcount" (slow_pop x) (Mcx_util.Bits.popcount x);
    if x <> 0 then begin
      let t = Mcx_util.Bits.ctz x in
      if (x lsr t) land 1 <> 1 || x land ((1 lsl t) - 1) <> 0 then
        Alcotest.failf "ctz %d wrong for %x" t x
    end
  in
  List.iter check [ 0; 1; 2; 3; max_int; min_int; -1; 1 lsl 62; min_int lor 1 ];
  for _ = 1 to 2000 do
    check (Int64.to_int (Mcx_util.Prng.bits64 prng))
  done

(* ------------------------------------------------------------------ *)
(* Bmatrix vs bool array array                                         *)
(* ------------------------------------------------------------------ *)

let test_bmatrix () =
  let prng = prng_for "bmatrix" in
  for _ = 1 to 1000 do
    let rows = 1 + Mcx_util.Prng.int prng 5 in
    let cols = 1 + Mcx_util.Prng.int prng max_arity in
    let density = 0.1 +. (0.8 *. Mcx_util.Prng.float prng) in
    let mk () =
      Array.init rows (fun _ ->
          Array.init cols (fun _ -> Mcx_util.Prng.bernoulli prng density))
    in
    let a = mk () and b = mk () in
    let pa = Naive.of_bmatrix a and pb = Naive.of_bmatrix b in
    let i = Mcx_util.Prng.int prng rows and j = Mcx_util.Prng.int prng rows in
    let k = Mcx_util.Prng.int prng cols in
    Alcotest.(check bool) "get" a.(i).(k) (Mcx_util.Bmatrix.get pa i k);
    let total = Array.fold_left (fun n r -> n + Naive.row_count [| r |] 0) 0 a in
    Alcotest.(check int) "count" total (Mcx_util.Bmatrix.count pa);
    Alcotest.(check int) "count_row" (Naive.row_count a i) (Mcx_util.Bmatrix.count_row pa i);
    Alcotest.(check int) "count_col"
      (Array.fold_left (fun n r -> n + if r.(k) then 1 else 0) 0 a)
      (Mcx_util.Bmatrix.count_col pa k);
    Alcotest.(check bool) "row_nonzero" (Naive.row_count a i > 0)
      (Mcx_util.Bmatrix.row_nonzero pa i);
    Alcotest.(check bool) "row_subset" (Naive.row_subset a i b j)
      (Mcx_util.Bmatrix.row_subset pa i pb j);
    Alcotest.(check bool) "row_intersects" (Naive.row_intersects a i b j)
      (Mcx_util.Bmatrix.row_intersects pa i pb j);
    Alcotest.(check int) "row_and_count" (Naive.row_and_count a i b j)
      (Mcx_util.Bmatrix.row_and_count pa i pb j);
    Alcotest.(check int) "row_or_count" (Naive.row_or_count a i b j)
      (Mcx_util.Bmatrix.row_or_count pa i pb j);
    Alcotest.(check int) "row_diff_count" (Naive.row_diff_count a i b j)
      (Mcx_util.Bmatrix.row_diff_count pa i pb j);
    Alcotest.(check bool) "is_submatrix" (Naive.is_submatrix a b)
      (Mcx_util.Bmatrix.is_submatrix pa pb);
    (* self-subset sanity and mutation round-trip *)
    Alcotest.(check bool) "self submatrix" true (Mcx_util.Bmatrix.is_submatrix pa pa);
    Mcx_util.Bmatrix.set pa i k (not a.(i).(k));
    Alcotest.(check bool) "set/get" (not a.(i).(k)) (Mcx_util.Bmatrix.get pa i k);
    Alcotest.(check bool) "equal after set" false
      (Mcx_util.Bmatrix.equal pa (Naive.of_bmatrix a));
    Mcx_util.Bmatrix.set pa i k a.(i).(k);
    Alcotest.(check bool) "equal restored" true
      (Mcx_util.Bmatrix.equal pa (Naive.of_bmatrix a))
  done

(* ------------------------------------------------------------------ *)
(* Hash: packed-word hashing, no per-call string                       *)
(* ------------------------------------------------------------------ *)

let test_hash_collisions () =
  let prng = prng_for "hash" in
  let seen = Hashtbl.create 4096 in
  let hashes = Hashtbl.create 4096 in
  let distinct = ref 0 and collisions = ref 0 in
  for _ = 1 to 50_000 do
    let arity = random_arity prng in
    let c = Naive.of_cube (random_lits prng ~arity ~absent_bias:0.5) in
    let key = string_of_int arity ^ ":" ^ Cube.to_string c in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      incr distinct;
      let h = Cube.hash c in
      (* equal cubes must agree, however they were built *)
      Alcotest.(check int) "hash stable" h (Cube.hash (Cube.of_string (Cube.to_string c)));
      if Hashtbl.mem hashes h then incr collisions else Hashtbl.replace hashes h ()
    end
  done;
  (* 62-bit hashes over < 2^16 distinct cubes: any collision at all would be
     a red flag for the mixer. Allow 2 as slack. *)
  if !collisions > 2 then
    Alcotest.failf "Cube.hash: %d collisions over %d distinct cubes" !collisions !distinct

(* ------------------------------------------------------------------ *)
(* Truth-table oracle: Qm / Minimize semantic equivalence              *)
(* ------------------------------------------------------------------ *)

let assert_equivalent ~what ~arity reference candidate =
  let v = Array.make arity false in
  for idx = 0 to (1 lsl arity) - 1 do
    for i = 0 to arity - 1 do
      v.(i) <- (idx lsr i) land 1 = 1
    done;
    if Cover.eval candidate v <> reference idx then
      Alcotest.failf "%s: differs from input on assignment %d (arity %d)" what idx arity
  done

let test_qm_minimize_oracle () =
  let prng = prng_for "qm" in
  for arity = 1 to 12 do
    let sops = if arity <= 8 then 10 else 4 in
    for _ = 1 to sops do
      (* Bias to short-ish cubes at small arity, near-minterms at high
         arity, keeping the ON-set (and the QM prime lattice) tractable. *)
      let literal_probability = if arity <= 8 then 0.5 else 0.85 in
      let params =
        {
          Random_sop.n_inputs = arity;
          n_products = 1 + Mcx_util.Prng.int prng (2 * arity);
          literal_probability;
        }
      in
      let f = Random_sop.random_cover prng params in
      let tt = Truthtable.of_cover f in
      let reference idx = Truthtable.get tt idx in
      assert_equivalent ~what:"Qm.minimize" ~arity reference (Qm.minimize tt);
      assert_equivalent ~what:"Minimize.espresso" ~arity reference (Minimize.espresso f)
    done
  done

let () =
  Alcotest.run "oracle"
    [
      ( "cube vs reference",
        [
          Alcotest.test_case "covers" `Quick test_covers;
          Alcotest.test_case "intersect" `Quick test_intersect;
          Alcotest.test_case "distance & supercube" `Quick test_distance_supercube;
          Alcotest.test_case "merge_adjacent" `Quick test_merge_adjacent;
          Alcotest.test_case "cofactor" `Quick test_cofactor;
          Alcotest.test_case "cofactor_wrt" `Quick test_cofactor_wrt;
          Alcotest.test_case "eval" `Quick test_eval;
          Alcotest.test_case "roundtrip & counts" `Quick test_roundtrip_and_counts;
          Alcotest.test_case "compare & equal" `Quick test_compare_equal;
        ] );
      ( "cover vs reference",
        [
          Alcotest.test_case "tautology" `Quick test_tautology;
          Alcotest.test_case "single_cube_containment" `Quick test_cover_containment;
        ] );
      ( "words",
        [
          Alcotest.test_case "popcount & ctz" `Quick test_bits;
          Alcotest.test_case "bmatrix vs reference" `Quick test_bmatrix;
          Alcotest.test_case "hash collisions" `Quick test_hash_collisions;
        ] );
      ( "truth-table oracle",
        [ Alcotest.test_case "Qm & Minimize equivalence" `Quick test_qm_minimize_oracle ] );
    ]
