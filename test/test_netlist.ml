open Mcx_netlist
open Mcx_logic

let cover = Cover.of_strings

(* f = x1 + x2 + x3 + x4 + x5 x6 x7 x8 (paper Figs. 3 and 5). *)
let paper_example =
  cover [ "1-------"; "-1------"; "--1-----"; "---1----"; "----1111" ]

(* ------------------------------------------------------------------ *)
(* Signal                                                             *)
(* ------------------------------------------------------------------ *)

let test_signal_polarity () =
  Alcotest.(check bool) "input flips" true
    (Signal.negate_cheaply (Signal.Input 3) = Some (Signal.Input_neg 3));
  Alcotest.(check bool) "const flips" true
    (Signal.negate_cheaply (Signal.Const true) = Some (Signal.Const false));
  Alcotest.(check bool) "gate needs inverter" true
    (let net = Network.create ~n_inputs:2 ~fanin_limit:4 in
     let g = Network.nand net [ Signal.Input 0; Signal.Input 1 ] in
     Signal.negate_cheaply g = None)

let test_signal_of_literal () =
  Alcotest.(check bool) "pos" true
    (Signal.equal (Signal.of_literal ~var:2 Literal.Pos) (Signal.Input 2));
  Alcotest.(check bool) "neg" true
    (Signal.equal (Signal.of_literal ~var:2 Literal.Neg) (Signal.Input_neg 2));
  Alcotest.(check bool) "absent raises" true
    (try
       ignore (Signal.of_literal ~var:0 Literal.Absent);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Network                                                            *)
(* ------------------------------------------------------------------ *)

let test_network_nand_semantics () =
  let net = Network.create ~n_inputs:2 ~fanin_limit:4 in
  let g = Network.nand net [ Signal.Input 0; Signal.Input 1 ] in
  Network.set_outputs net [ g ];
  let check a b expected =
    Alcotest.(check (array bool))
      (Printf.sprintf "nand %b %b" a b)
      [| expected |]
      (Network.eval net [| a; b |])
  in
  check false false true;
  check true false true;
  check false true true;
  check true true false

let test_network_structural_hashing () =
  let net = Network.create ~n_inputs:3 ~fanin_limit:4 in
  let a = Network.nand net [ Signal.Input 0; Signal.Input 1 ] in
  let b = Network.nand net [ Signal.Input 1; Signal.Input 0 ] in
  Alcotest.(check bool) "same gate for same fan-ins" true (Signal.equal a b);
  Alcotest.(check int) "one gate allocated" 1 (Network.gate_count net)

let test_network_constant_folding () =
  let net = Network.create ~n_inputs:2 ~fanin_limit:4 in
  Alcotest.(check bool) "nand with 0 is 1" true
    (Signal.equal
       (Network.nand net [ Signal.Input 0; Signal.Const false ])
       (Signal.Const true));
  Alcotest.(check bool) "nand(x, x') = 1" true
    (Signal.equal
       (Network.nand net [ Signal.Input 0; Signal.Input_neg 0 ])
       (Signal.Const true));
  Alcotest.(check bool) "true inputs drop: nand(1, x) = x'" true
    (Signal.equal
       (Network.nand net [ Signal.Const true; Signal.Input 0 ])
       (Signal.Input_neg 0));
  Alcotest.(check int) "no gates allocated" 0 (Network.gate_count net)

let test_network_inverter_memo () =
  let net = Network.create ~n_inputs:2 ~fanin_limit:4 in
  let g = Network.nand net [ Signal.Input 0; Signal.Input 1 ] in
  let i1 = Network.inv net g and i2 = Network.inv net g in
  Alcotest.(check bool) "inverter shared" true (Signal.equal i1 i2);
  Alcotest.(check int) "two gates total" 2 (Network.gate_count net);
  Alcotest.(check bool) "input inversion free" true
    (Signal.equal (Network.inv net (Signal.Input 1)) (Signal.Input_neg 1));
  Alcotest.(check int) "still two gates" 2 (Network.gate_count net)

let test_network_fanin_decomposition () =
  let net = Network.create ~n_inputs:6 ~fanin_limit:3 in
  let inputs = List.init 6 (fun i -> Signal.Input i) in
  let g = Network.nand net inputs in
  Network.set_outputs net [ g ];
  Alcotest.(check bool) "decomposed into >1 gate" true (Network.gate_count net > 1);
  List.iter
    (fun id ->
      Alcotest.(check bool) "fan-in bound respected" true
        (List.length (Network.gate_fanins net id) <= 3))
    (List.init (Network.gate_count net) Fun.id);
  (* semantics: NAND of 6 inputs *)
  let all_true = Array.make 6 true in
  Alcotest.(check (array bool)) "all true -> false" [| false |] (Network.eval net all_true);
  let one_false = Array.make 6 true in
  one_false.(3) <- false;
  Alcotest.(check (array bool)) "any false -> true" [| true |] (Network.eval net one_false)

let test_network_counts () =
  let net = Network.create ~n_inputs:8 ~fanin_limit:8 in
  let g1 = Network.nand net (List.init 4 (fun i -> Signal.Input (4 + i))) in
  let top =
    Network.nand net (g1 :: List.init 4 (fun i -> Signal.Input_neg i))
  in
  Network.set_outputs net [ top ];
  Alcotest.(check int) "G = 2" 2 (Network.gate_count net);
  Alcotest.(check int) "C = 1" 1 (Network.inner_connection_count net);
  Alcotest.(check int) "total fan-in" 9 (Network.total_fanin net);
  Alcotest.(check int) "levels" 2 (Network.levels net)

let test_network_prune () =
  let net = Network.create ~n_inputs:3 ~fanin_limit:4 in
  let live = Network.nand net [ Signal.Input 0; Signal.Input 1 ] in
  let _dead = Network.nand net [ Signal.Input 1; Signal.Input 2 ] in
  Network.set_outputs net [ live ];
  let pruned = Network.prune net in
  Alcotest.(check int) "dead gate removed" 1 (Network.gate_count pruned);
  Alcotest.(check (array bool)) "semantics preserved" (Network.eval net [| true; true; false |])
    (Network.eval pruned [| true; true; false |])

let test_network_validation () =
  let net = Network.create ~n_inputs:2 ~fanin_limit:4 in
  Alcotest.(check bool) "forged gate rejected" true
    (try
       ignore (Network.nand net [ Signal.Gate { net = -1; id = 5 } ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "input out of range rejected" true
    (try
       ignore (Network.nand net [ Signal.Input 7 ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "fanin_limit < 2 rejected" true
    (try
       ignore (Network.create ~n_inputs:2 ~fanin_limit:1);
       false
     with Invalid_argument _ -> true)

(* A gate signal from network [a] used to slip into network [b] whenever
   its id happened to be in range — it would silently alias [b]'s gate of
   the same id (or memo-hit an unrelated structure). The provenance stamp
   now rejects it even when the id is in range. *)
let test_network_foreign_gate () =
  let a = Network.create ~n_inputs:2 ~fanin_limit:4 in
  let b = Network.create ~n_inputs:2 ~fanin_limit:4 in
  let ga = Network.nand a [ Signal.Input 0; Signal.Input 1 ] in
  (* Give [b] a gate of its own so the foreign id (0) is in range. *)
  let _gb = Network.nand b [ Signal.Input_neg 0; Signal.Input 1 ] in
  let rejects f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "nand rejects foreign gate" true
    (rejects (fun () -> Network.nand b [ ga ]));
  Alcotest.(check bool) "inv rejects foreign gate" true
    (rejects (fun () -> Network.inv b ga));
  Alcotest.(check bool) "set_outputs rejects foreign gate" true
    (rejects (fun () -> Network.set_outputs b [ ga ]));
  (* Pruning re-stamps: signals of the original die with it. *)
  Network.set_outputs a [ ga ];
  let pruned = Network.prune a in
  Alcotest.(check bool) "pre-prune signal rejected by pruned network" true
    (rejects (fun () -> Network.nand pruned [ ga ]));
  (* And the home network still accepts its own signal. *)
  Alcotest.(check bool) "home network still accepts" true
    (match Network.nand a [ ga; Signal.Input 0 ] with
    | _ -> true
    | exception Invalid_argument _ -> false)

(* ------------------------------------------------------------------ *)
(* Factor                                                             *)
(* ------------------------------------------------------------------ *)

let test_factor_shares_literal () =
  (* a b + a c = a (b + c) *)
  let f = cover [ "11-"; "1-1" ] in
  let e = Factor.factor f in
  Alcotest.(check int) "3 literals after factoring" 3 (Factor.literal_count e);
  Alcotest.(check int) "flat has 4" 4 (Factor.literal_count (Factor.of_cover_flat f))

let test_factor_constants () =
  Alcotest.(check bool) "empty cover is false" true
    (Factor.factor (Cover.empty 3) = Factor.Const false);
  Alcotest.(check bool) "universe cube is true" true
    (Factor.factor (Cover.top 3) = Factor.Const true)

let test_factor_eval_matches_cover () =
  let f = cover [ "11--"; "1-1-"; "0--1"; "--11" ] in
  let e = Factor.factor f in
  for idx = 0 to 15 do
    let v = Array.init 4 (fun i -> (idx lsr i) land 1 = 1) in
    Alcotest.(check bool) "factored = flat" (Cover.eval f v) (Factor.eval e v)
  done

let test_factor_depth () =
  Alcotest.(check int) "literal depth 0" 0 (Factor.depth (Factor.Lit (0, true)));
  let f = cover [ "11-"; "1-1" ] in
  Alcotest.(check bool) "factored deeper than 1" true (Factor.depth (Factor.factor f) >= 2)

(* ------------------------------------------------------------------ *)
(* Kernel                                                             *)
(* ------------------------------------------------------------------ *)

let cubes_of rows = List.map Cube.of_string rows

let test_kernel_cube_divide () =
  (* (abc + abd + be) / ab = c + d *)
  let f = cubes_of [ "111--"; "11-1-"; "-1--1" ] in
  let q = Kernel.cube_divide f ~by:(Cube.of_string "11---") in
  Alcotest.(check (list string)) "quotient" [ "--1--"; "---1-" ] (List.map Cube.to_string q)

let test_kernel_divide_multicube () =
  (* f = a c + a d + b c + b d + e = (a + b)(c + d) + e *)
  let f = cubes_of [ "1-1--"; "1--1-"; "-11--"; "-1-1-"; "----1" ] in
  let divisor = cubes_of [ "1----"; "-1---" ] in
  let quotient, remainder = Kernel.divide f ~by:divisor in
  Alcotest.(check (list string)) "quotient c + d" [ "--1--"; "---1-" ]
    (List.map Cube.to_string quotient);
  Alcotest.(check (list string)) "remainder e" [ "----1" ] (List.map Cube.to_string remainder)

let test_kernel_common_cube () =
  let f = cubes_of [ "111--"; "11-1-" ] in
  Alcotest.(check string) "common ab" "11---" (Cube.to_string (Kernel.common_cube f));
  Alcotest.(check bool) "not cube free" false (Kernel.is_cube_free f);
  Alcotest.(check bool) "cube free after division" true
    (Kernel.is_cube_free (Kernel.cube_divide f ~by:(Kernel.common_cube f)))

let test_kernel_enumeration () =
  (* classic: f = ace + bce + de + g; kernels include (a+b), (ace+bce+de+g
     itself), (ac+bc+d) ... *)
  let arity = 7 in
  let f = cubes_of [ "1-1-1--"; "-11-1--"; "---11--"; "------1" ] in
  let ks = Kernel.kernels ~arity f in
  let kernel_strings =
    List.map (fun (_, k) -> List.sort compare (List.map Cube.to_string k)) ks
  in
  (* (a + b) must be found: dividing by c e *)
  Alcotest.(check bool) "a+b is a kernel" true
    (List.mem [ "-1-----"; "1------" ] kernel_strings);
  (* the cube-free expression itself is a kernel *)
  Alcotest.(check bool) "f itself is a kernel" true
    (List.exists (fun k -> List.length k = 4) kernel_strings)

let test_kernel_factor_classic () =
  (* f = ac + ad + bc + bd + e factors to (a+b)(c+d) + e: 5 literals *)
  let f = cover [ "1-1--"; "1--1-"; "-11--"; "-1-1-"; "----1" ] in
  let e = Kernel.factor f in
  Alcotest.(check int) "5 literals after kernel factoring" 5 (Factor.literal_count e);
  for idx = 0 to 31 do
    let v = Array.init 5 (fun i -> (idx lsr i) land 1 = 1) in
    Alcotest.(check bool) "semantics" (Cover.eval f v) (Factor.eval e v)
  done

let test_kernel_factor_beats_quick_sometimes () =
  (* On the classic example quick-factor cannot extract (a+b) as a
     divisor; kernel factoring must not be worse. *)
  let f = cover [ "1-1--"; "1--1-"; "-11--"; "-1-1-"; "----1" ] in
  Alcotest.(check bool) "kernel <= quick literals" true
    (Factor.literal_count (Kernel.factor f) <= Factor.literal_count (Factor.factor f))

(* ------------------------------------------------------------------ *)
(* Tech_map                                                           *)
(* ------------------------------------------------------------------ *)

let test_map_paper_example () =
  (* Fig. 5: 2 NAND gates, 1 multi-level connection. *)
  let mapped = Tech_map.map_cover paper_example in
  Alcotest.(check int) "G = 2" 2 (Network.gate_count mapped.Tech_map.network);
  Alcotest.(check int) "C = 1" 1 (Network.inner_connection_count mapped.Tech_map.network)

let test_map_eval_equals_cover () =
  let f = cover [ "110-"; "1-01"; "0-1-"; "-011" ] in
  let mapped = Tech_map.map_cover f in
  for idx = 0 to 15 do
    let v = Array.init 4 (fun i -> (idx lsr i) land 1 = 1) in
    let out = Tech_map.eval mapped v in
    Alcotest.(check bool) "mapped = cover" (Cover.eval f v) out.(0)
  done

let test_map_flat_eval () =
  let f = cover [ "110-"; "1-01"; "0-1-"; "-011" ] in
  let mapped = Tech_map.map_cover_flat f in
  for idx = 0 to 15 do
    let v = Array.init 4 (fun i -> (idx lsr i) land 1 = 1) in
    let out = Tech_map.eval mapped v in
    Alcotest.(check bool) "flat mapped = cover" (Cover.eval f v) out.(0)
  done

let test_map_constant_functions () =
  let always = Tech_map.map_cover (Cover.top 3) in
  Alcotest.(check (array bool)) "constant true" [| true |]
    (Tech_map.eval always [| false; true; false |]);
  let never = Tech_map.map_cover (Cover.empty 3) in
  Alcotest.(check (array bool)) "constant false" [| false |]
    (Tech_map.eval never [| false; true; false |]);
  Alcotest.(check int) "no gates for constants" 0
    (Network.gate_count never.Tech_map.network)

let test_map_single_literal () =
  let f = cover [ "-1-" ] in
  let mapped = Tech_map.map_cover f in
  Alcotest.(check int) "literal costs no gate" 0 (Network.gate_count mapped.Tech_map.network);
  Alcotest.(check (array bool)) "value" [| true |] (Tech_map.eval mapped [| false; true; false |])

let test_map_mo_sharing () =
  (* Two outputs sharing the product x2 x3: the shared NAND gate must be
     built once. O1 = x1 x2 + x2 x3, O2 = x1 x3 + x2 x3. *)
  let o1 = cover [ "11-"; "-11" ] and o2 = cover [ "1-1"; "-11" ] in
  let mo = Mo_cover.of_covers [ o1; o2 ] in
  let mapped = Tech_map.map_mo mo in
  let g_shared = Network.gate_count mapped.Tech_map.network in
  let separate =
    Network.gate_count (Tech_map.map_cover o1).Tech_map.network
    + Network.gate_count (Tech_map.map_cover o2).Tech_map.network
  in
  Alcotest.(check bool) "sharing does not lose gates" true (g_shared <= separate);
  for idx = 0 to 7 do
    let v = Array.init 3 (fun i -> (idx lsr i) land 1 = 1) in
    Alcotest.(check (array bool)) "mo eval" (Mo_cover.eval mo v) (Tech_map.eval mapped v)
  done

let test_map_fanin_limit_respected () =
  let f = cover [ "111111" ] in
  let mapped = Tech_map.map_cover ~fanin_limit:3 f in
  let net = mapped.Tech_map.network in
  List.iter
    (fun id ->
      Alcotest.(check bool) "bounded" true (List.length (Network.gate_fanins net id) <= 3))
    (List.init (Network.gate_count net) Fun.id);
  Alcotest.(check (array bool)) "value all-ones" [| true |] (Tech_map.eval mapped (Array.make 6 true));
  let v = Array.make 6 true in
  v.(5) <- false;
  Alcotest.(check (array bool)) "value with a zero" [| false |] (Tech_map.eval mapped v)

(* ------------------------------------------------------------------ *)
(* Export                                                             *)
(* ------------------------------------------------------------------ *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_export_verilog () =
  let mapped = Tech_map.map_cover paper_example in
  let v = Export.to_verilog ~module_name:"paper_example" mapped in
  Alcotest.(check bool) "module header" true (contains v "module paper_example");
  Alcotest.(check bool) "has nand primitives" true (contains v "nand (g");
  Alcotest.(check bool) "ends module" true (contains v "endmodule");
  Alcotest.(check bool) "eight inputs declared" true (contains v "input x7;")

let test_export_verilog_names () =
  let mapped = Tech_map.map_cover (cover [ "11"; "0-" ]) in
  let v = Export.to_verilog ~input_names:[ "a"; "b" ] ~output_names:[ "f" ] mapped in
  Alcotest.(check bool) "named ports" true (contains v "input a;" && contains v "output f;");
  Alcotest.(check bool) "wrong arity rejected" true
    (try
       ignore (Export.to_verilog ~input_names:[ "a" ] mapped);
       false
     with Invalid_argument _ -> true)

let test_export_verilog_constant () =
  let mapped = Tech_map.map_cover (Cover.top 2) in
  let v = Export.to_verilog mapped in
  Alcotest.(check bool) "constant output assigned" true (contains v "assign y0 = 1'b1;")

let test_export_dot () =
  let mapped = Tech_map.map_cover paper_example in
  let d = Export.to_dot mapped in
  Alcotest.(check bool) "digraph" true (contains d "digraph");
  Alcotest.(check bool) "gate nodes" true (contains d "g0 [shape=ellipse");
  Alcotest.(check bool) "output node" true (contains d "y0 [shape=doubleoctagon")

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                  *)
(* ------------------------------------------------------------------ *)

let gen_cover ~arity ~max_products =
  QCheck2.Gen.(
    let gen_lit = oneofl [ Literal.Pos; Literal.Neg; Literal.Absent; Literal.Absent ] in
    let gen_cube = array_size (pure arity) gen_lit in
    let* n = int_range 0 max_products in
    let+ cubes = list_size (pure n) gen_cube in
    Cover.create ~arity (List.map Cube.of_literals cubes))

let exhaustive_equal ~arity f g =
  let ok = ref true in
  for idx = 0 to (1 lsl arity) - 1 do
    let v = Array.init arity (fun i -> (idx lsr i) land 1 = 1) in
    if not (Bool.equal (f v) (g v)) then ok := false
  done;
  !ok

let prop_factor_preserves =
  QCheck2.Test.make ~name:"factor preserves semantics" ~count:200
    (gen_cover ~arity:5 ~max_products:8)
    (fun f ->
      let e = Factor.factor f in
      exhaustive_equal ~arity:5 (Cover.eval f) (Factor.eval e))

let prop_map_preserves =
  QCheck2.Test.make ~name:"tech map preserves semantics" ~count:150
    (gen_cover ~arity:5 ~max_products:8)
    (fun f ->
      let mapped = Tech_map.map_cover f in
      exhaustive_equal ~arity:5 (Cover.eval f) (fun v -> (Tech_map.eval mapped v).(0)))

let prop_map_flat_preserves =
  QCheck2.Test.make ~name:"flat map preserves semantics" ~count:150
    (gen_cover ~arity:5 ~max_products:8)
    (fun f ->
      let mapped = Tech_map.map_cover_flat f in
      exhaustive_equal ~arity:5 (Cover.eval f) (fun v -> (Tech_map.eval mapped v).(0)))

let prop_map_small_fanin_preserves =
  QCheck2.Test.make ~name:"fan-in-2 map preserves semantics" ~count:100
    (gen_cover ~arity:5 ~max_products:6)
    (fun f ->
      let mapped = Tech_map.map_cover ~fanin_limit:2 f in
      let net = mapped.Tech_map.network in
      let bounded =
        List.for_all
          (fun id -> List.length (Network.gate_fanins net id) <= 2)
          (List.init (Network.gate_count net) Fun.id)
      in
      bounded
      && exhaustive_equal ~arity:5 (Cover.eval f) (fun v -> (Tech_map.eval mapped v).(0)))

let prop_kernel_factor_preserves =
  QCheck2.Test.make ~name:"kernel factoring preserves semantics" ~count:150
    (gen_cover ~arity:5 ~max_products:8)
    (fun f ->
      let e = Kernel.factor f in
      exhaustive_equal ~arity:5 (Cover.eval f) (Factor.eval e))

let prop_kernel_map_preserves =
  QCheck2.Test.make ~name:"kernel-strategy tech map preserves semantics" ~count:100
    (gen_cover ~arity:5 ~max_products:7)
    (fun f ->
      let mapped = Tech_map.map_cover ~strategy:Tech_map.Kernel f in
      exhaustive_equal ~arity:5 (Cover.eval f) (fun v -> (Tech_map.eval mapped v).(0)))

let prop_kernel_divide_algebraic =
  QCheck2.Test.make ~name:"divide: f = by*q + r algebraically" ~count:200
    (gen_cover ~arity:5 ~max_products:6)
    (fun f ->
      let cubes = Cover.cubes f in
      match cubes with
      | [] -> true
      | first :: _ ->
        (* divide by the first cube's first literal as a 1-cube divisor *)
        (match Cube.literals first with
         | [] -> true
         | (var, lit) :: _ ->
           let d = Cube.set (Cube.universe 5) var lit in
           let quotient, remainder = Kernel.divide cubes ~by:[ d ] in
           let rebuilt =
             List.filter_map (fun q -> Cube.intersect q d) quotient @ remainder
           in
           (* the rebuilt cover must equal f semantically *)
           Cover.equal_semantics f (Cover.create ~arity:5 rebuilt)))

let prop_factored_not_more_literals =
  QCheck2.Test.make ~name:"factoring never adds literals" ~count:200
    (gen_cover ~arity:6 ~max_products:8)
    (fun f ->
      Factor.literal_count (Factor.factor f)
      <= Factor.literal_count (Factor.of_cover_flat f))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_factor_preserves;
      prop_map_preserves;
      prop_map_flat_preserves;
      prop_map_small_fanin_preserves;
      prop_factored_not_more_literals;
      prop_kernel_factor_preserves;
      prop_kernel_map_preserves;
      prop_kernel_divide_algebraic;
    ]

let () =
  Alcotest.run "mcx_netlist"
    [
      ( "signal",
        [
          Alcotest.test_case "polarity" `Quick test_signal_polarity;
          Alcotest.test_case "of_literal" `Quick test_signal_of_literal;
        ] );
      ( "network",
        [
          Alcotest.test_case "nand semantics" `Quick test_network_nand_semantics;
          Alcotest.test_case "structural hashing" `Quick test_network_structural_hashing;
          Alcotest.test_case "constant folding" `Quick test_network_constant_folding;
          Alcotest.test_case "inverter memo" `Quick test_network_inverter_memo;
          Alcotest.test_case "fan-in decomposition" `Quick test_network_fanin_decomposition;
          Alcotest.test_case "counts (paper fig5)" `Quick test_network_counts;
          Alcotest.test_case "prune" `Quick test_network_prune;
          Alcotest.test_case "validation" `Quick test_network_validation;
          Alcotest.test_case "foreign gate rejected" `Quick test_network_foreign_gate;
        ] );
      ( "factor",
        [
          Alcotest.test_case "shares literal" `Quick test_factor_shares_literal;
          Alcotest.test_case "constants" `Quick test_factor_constants;
          Alcotest.test_case "eval matches cover" `Quick test_factor_eval_matches_cover;
          Alcotest.test_case "depth" `Quick test_factor_depth;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "cube divide" `Quick test_kernel_cube_divide;
          Alcotest.test_case "multi-cube divide" `Quick test_kernel_divide_multicube;
          Alcotest.test_case "common cube" `Quick test_kernel_common_cube;
          Alcotest.test_case "enumeration" `Quick test_kernel_enumeration;
          Alcotest.test_case "classic factoring" `Quick test_kernel_factor_classic;
          Alcotest.test_case "kernel vs quick" `Quick test_kernel_factor_beats_quick_sometimes;
        ] );
      ( "tech_map",
        [
          Alcotest.test_case "paper fig5 G/C" `Quick test_map_paper_example;
          Alcotest.test_case "eval equals cover" `Quick test_map_eval_equals_cover;
          Alcotest.test_case "flat eval" `Quick test_map_flat_eval;
          Alcotest.test_case "constants" `Quick test_map_constant_functions;
          Alcotest.test_case "single literal" `Quick test_map_single_literal;
          Alcotest.test_case "multi-output sharing" `Quick test_map_mo_sharing;
          Alcotest.test_case "fan-in limit" `Quick test_map_fanin_limit_respected;
        ] );
      ( "export",
        [
          Alcotest.test_case "verilog" `Quick test_export_verilog;
          Alcotest.test_case "verilog names" `Quick test_export_verilog_names;
          Alcotest.test_case "verilog constant" `Quick test_export_verilog_constant;
          Alcotest.test_case "dot" `Quick test_export_dot;
        ] );
      ("properties", qcheck_cases);
    ]
