open Mcx_experiments

(* Small sample counts keep the suite fast; the bench harness runs the
   paper-scale versions. *)

(* ------------------------------------------------------------------ *)
(* Fig6                                                               *)
(* ------------------------------------------------------------------ *)

let test_fig6_panel_shape () =
  let panel = Fig6.run_panel ~samples:50 ~seed:3 ~n_inputs:8 () in
  Alcotest.(check int) "sample count" 50 (List.length panel.Fig6.samples);
  Alcotest.(check bool) "rate in range" true
    (panel.Fig6.success_rate >= 0. && panel.Fig6.success_rate <= 100.);
  let products = List.map (fun s -> s.Fig6.n_products) panel.Fig6.samples in
  Alcotest.(check (list int)) "sorted by product count" (List.sort compare products) products

let test_fig6_deterministic () =
  let a = Fig6.run_panel ~samples:30 ~seed:5 ~n_inputs:9 () in
  let b = Fig6.run_panel ~samples:30 ~seed:5 ~n_inputs:9 () in
  Alcotest.(check (float 0.001)) "same rate" a.Fig6.success_rate b.Fig6.success_rate

let test_fig6_trend () =
  (* The headline of Fig. 6: multi-level wins less often as inputs grow. *)
  let small = Fig6.run_panel ~samples:150 ~seed:1 ~n_inputs:8 () in
  let large = Fig6.run_panel ~samples:150 ~seed:1 ~n_inputs:15 () in
  Alcotest.(check bool)
    (Printf.sprintf "success(8)=%.0f > success(15)=%.0f" small.Fig6.success_rate
       large.Fig6.success_rate)
    true
    (small.Fig6.success_rate > large.Fig6.success_rate)

let test_fig6_csv () =
  let panel = Fig6.run_panel ~samples:5 ~seed:2 ~n_inputs:8 () in
  let csv = Fig6.series_csv panel in
  Alcotest.(check int) "header + 5 rows" 7 (List.length (String.split_on_char '\n' csv))

let test_fig6_areas_consistent () =
  let panel = Fig6.run_panel ~samples:40 ~seed:9 ~n_inputs:8 () in
  List.iter
    (fun s ->
      (* two-level area closed form for a single-output function *)
      Alcotest.(check int) "2lvl closed form"
        ((s.Fig6.n_products + 1) * 18)
        s.Fig6.two_level_area;
      Alcotest.(check bool) "multi-level positive" true (s.Fig6.multi_level_area > 0))
    panel.Fig6.samples

(* ------------------------------------------------------------------ *)
(* Table1                                                             *)
(* ------------------------------------------------------------------ *)

let table1_rows = lazy (Table1.run ())

let test_table1_all_benchmarks () =
  let rows = Lazy.force table1_rows in
  Alcotest.(check int) "9 rows" 9 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) (r.Table1.name ^ " areas positive") true
        (r.Table1.orig_two_level > 0 && r.Table1.orig_multi_level > 0
        && r.Table1.neg_two_level > 0 && r.Table1.neg_multi_level > 0))
    rows

let test_table1_synthetic_two_level_exact () =
  (* Synthetic benchmarks have pinned (I, O, P), so their two-level areas
     must equal the paper's exactly. *)
  let rows = Lazy.force table1_rows in
  List.iter
    (fun name ->
      let r = List.find (fun r -> r.Table1.name = name) rows in
      match r.Table1.paper with
      | Some (paper_two, _, _, _) ->
        Alcotest.(check int) (name ^ " two-level area") paper_two r.Table1.orig_two_level
      | None -> Alcotest.fail "missing paper data")
    [ "con1"; "misex1"; "bw"; "b12" ]

let test_table1_multilevel_direction () =
  (* The paper's qualitative result: multi-level wins on (near-)single-
     output t481 and cordic, loses heavily on multi-output bw/misex1. *)
  let rows = Lazy.force table1_rows in
  let find name = List.find (fun r -> r.Table1.name = name) rows in
  let t481 = find "t481" in
  Alcotest.(check bool) "t481: multi < two" true
    (t481.Table1.orig_multi_level < t481.Table1.orig_two_level);
  let cordic = find "cordic" in
  Alcotest.(check bool) "cordic: multi < two" true
    (cordic.Table1.orig_multi_level < cordic.Table1.orig_two_level);
  let bw = find "bw" in
  Alcotest.(check bool) "bw: multi > two" true
    (bw.Table1.orig_multi_level > bw.Table1.orig_two_level);
  let misex1 = find "misex1" in
  Alcotest.(check bool) "misex1: multi > two" true
    (misex1.Table1.orig_multi_level > misex1.Table1.orig_two_level)

(* ------------------------------------------------------------------ *)
(* Table2                                                             *)
(* ------------------------------------------------------------------ *)

let small_table2 =
  lazy (Table2.run ~samples:30 ~seed:11 ~benchmarks:[ "rd53"; "misex1"; "rd73" ] ())

let test_table2_fields () =
  let rows = Lazy.force small_table2 in
  Alcotest.(check int) "3 rows" 3 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "psucc ranges" true
        (r.Table2.hba_psucc >= 0. && r.Table2.hba_psucc <= 100. && r.Table2.ea_psucc >= 0.
       && r.Table2.ea_psucc <= 100.);
      Alcotest.(check bool) "assignments all valid" true
        (r.Table2.hba_all_valid && r.Table2.ea_all_valid);
      Alcotest.(check bool) "times nonnegative" true
        (r.Table2.hba_mean_seconds >= 0. && r.Table2.ea_mean_seconds >= 0.))
    rows

let test_table2_hba_bounded_by_ea () =
  (* Per-sample, hybrid success implies exact success, so the aggregate
     rates must be ordered. *)
  let rows = Lazy.force small_table2 in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: HBA %.0f <= EA %.0f" r.Table2.name r.Table2.hba_psucc
           r.Table2.ea_psucc)
        true
        (r.Table2.hba_psucc <= r.Table2.ea_psucc))
    rows

let test_table2_area_model () =
  let rows = Lazy.force small_table2 in
  List.iter
    (fun r ->
      Alcotest.(check int) (r.Table2.name ^ " area closed form")
        ((r.Table2.products + r.Table2.outputs)
        * ((2 * r.Table2.inputs) + (2 * r.Table2.outputs)))
        r.Table2.area)
    rows

let test_table2_dual_sqrt8 () =
  (* sqrt8's complement has fewer products (paper prints the dual in bold). *)
  let rows = Table2.run ~samples:2 ~seed:1 ~benchmarks:[ "sqrt8" ] () in
  match rows with
  | [ r ] -> Alcotest.(check bool) "dual chosen" true r.Table2.dual_used
  | _ -> Alcotest.fail "one row expected"

(* ------------------------------------------------------------------ *)
(* Yield                                                              *)
(* ------------------------------------------------------------------ *)

let test_yield_sweep () =
  let sweep =
    Yield.run ~samples:40 ~spare_levels:[ 0; 2; 4 ] ~open_rate:0.05 ~closed_rate:0.01
      ~seed:3 ~benchmark:"rd53" ()
  in
  Alcotest.(check int) "3 points" 3 (List.length sweep.Yield.points);
  List.iter
    (fun p -> Alcotest.(check bool) "placements verified" true p.Yield.all_valid)
    sweep.Yield.points;
  let first = List.hd sweep.Yield.points in
  let last = List.nth sweep.Yield.points 2 in
  Alcotest.(check bool)
    (Printf.sprintf "redundancy helps: %.0f%% (r=0) <= %.0f%% (r=4)" first.Yield.psucc
       last.Yield.psucc)
    true
    (first.Yield.psucc <= last.Yield.psucc);
  Alcotest.(check bool) "overhead grows" true
    (last.Yield.area_overhead > first.Yield.area_overhead)

let test_yield_parallel_deterministic () =
  (* The determinism contract of the Monte Carlo engine: the rendered
     sweep (tables and CSV alike go through Texttable) must be identical
     whether the trials run on one domain or four. *)
  let run pool =
    let sweep =
      Yield.run ~pool ~samples:30 ~spare_levels:[ 0; 1; 2 ] ~open_rate:0.05
        ~closed_rate:0.01 ~seed:11 ~benchmark:"rd53" ()
    in
    Mcx_util.Texttable.to_csv (Yield.to_table sweep)
  in
  let seq_pool = Mcx_util.Pool.create ~jobs:1 () in
  let par_pool = Mcx_util.Pool.create ~jobs:4 () in
  Fun.protect
    ~finally:(fun () ->
      Mcx_util.Pool.shutdown seq_pool;
      Mcx_util.Pool.shutdown par_pool)
    (fun () ->
      let sequential = run seq_pool and parallel = run par_pool in
      Alcotest.(check string) "MCX_JOBS=4 byte-identical to sequential"
        sequential parallel;
      Alcotest.(check string) "re-running is stable" sequential (run par_pool))

let test_yield_closed_defects_need_redundancy () =
  (* With closed defects and zero spares, yield should be clearly below
     100%; the paper says tolerance is impossible whenever one lands in
     the used area. *)
  let sweep =
    Yield.run ~samples:60 ~spare_levels:[ 0 ] ~open_rate:0.0 ~closed_rate:0.02 ~seed:5
      ~benchmark:"rd53" ()
  in
  let p = List.hd sweep.Yield.points in
  Alcotest.(check bool)
    (Printf.sprintf "Psucc %.0f%% < 50%%" p.Yield.psucc)
    true (p.Yield.psucc < 50.)

(* ------------------------------------------------------------------ *)
(* Mldefect                                                           *)
(* ------------------------------------------------------------------ *)

let test_mldefect_end_to_end () =
  let result =
    Mldefect.run ~samples:40 ~defect_rates:[ 0.02; 0.10 ] ~seed:7 ~benchmark:"misex1" ()
  in
  Alcotest.(check int) "2 points" 2 (List.length result.Mldefect.points);
  Alcotest.(check bool) "gates positive" true (result.Mldefect.gates > 0);
  List.iter
    (fun p ->
      (* misex1 has 8 inputs, so every successful mapping was re-simulated
         exhaustively against the reference cover. *)
      Alcotest.(check bool) "all simulations correct" true p.Mldefect.all_simulations_correct)
    result.Mldefect.points;
  let low = List.hd result.Mldefect.points in
  let high = List.nth result.Mldefect.points 1 in
  Alcotest.(check bool) "more defects, fewer successes" true
    (high.Mldefect.psucc <= low.Mldefect.psucc)

(* ------------------------------------------------------------------ *)
(* Ratesweep                                                          *)
(* ------------------------------------------------------------------ *)

let test_ratesweep_shape () =
  let sweep =
    Ratesweep.run ~samples:30 ~defect_rates:[ 0.02; 0.15 ] ~seed:3 ~benchmark:"rd53" ()
  in
  Alcotest.(check int) "2 points" 2 (List.length sweep.Ratesweep.points);
  List.iter
    (fun p ->
      Alcotest.(check bool) "hba <= ea" true
        (p.Ratesweep.hba_psucc <= p.Ratesweep.ea_psucc))
    sweep.Ratesweep.points;
  let low = List.hd sweep.Ratesweep.points in
  let high = List.nth sweep.Ratesweep.points 1 in
  Alcotest.(check bool) "EA degrades with rate" true
    (high.Ratesweep.ea_psucc <= low.Ratesweep.ea_psucc)

(* ------------------------------------------------------------------ *)
(* Ablation                                                           *)
(* ------------------------------------------------------------------ *)

let test_ablation_factoring () =
  let rows = Ablation.factoring ~samples:25 ~input_sizes:[ 8 ] ~seed:5 () in
  match rows with
  | [ r ] ->
    (* factoring can only help: flat is an upper bound on area *)
    Alcotest.(check bool) "quick <= flat (median area)" true
      (r.Ablation.quick_median_area <= r.Ablation.flat_median_area);
    Alcotest.(check bool) "win rates ordered" true
      (r.Ablation.quick_win_rate >= r.Ablation.flat_win_rate)
  | _ -> Alcotest.fail "one row expected"

let test_ablation_ordering () =
  let rows = Ablation.ordering ~samples:40 ~benchmarks:[ "rd53"; "rd73" ] ~seed:5 () in
  Alcotest.(check int) "2 rows" 2 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "both <= exact" true
        (r.Ablation.top_down_psucc <= r.Ablation.exact_psucc
        && r.Ablation.hardest_first_psucc <= r.Ablation.exact_psucc))
    rows

(* ------------------------------------------------------------------ *)
(* Tradeoff                                                           *)
(* ------------------------------------------------------------------ *)

let test_ablation_fanin () =
  let rows = Ablation.fanin ~fanin_limits:[ 2; 0 ] ~benchmarks:[ "rd53" ] () in
  match rows with
  | [ tight; unbounded ] ->
    Alcotest.(check bool) "fan-in 2 needs more gates" true
      (tight.Ablation.gates >= unbounded.Ablation.gates);
    Alcotest.(check bool) "and more steps" true
      (tight.Ablation.steps >= unbounded.Ablation.steps)
  | _ -> Alcotest.fail "two rows expected"

let test_tradeoff () =
  let rows = Tradeoff.run ~benchmarks:[ "rd53"; "t481" ] () in
  List.iter
    (fun r ->
      Alcotest.(check int) "two-level steps constant" 7 r.Tradeoff.two_steps;
      Alcotest.(check bool) "multi-level serializes" true
        (r.Tradeoff.multi_steps_serial > r.Tradeoff.two_steps);
      Alcotest.(check bool) "level-parallel bound" true
        (r.Tradeoff.multi_steps_parallel <= r.Tradeoff.multi_steps_serial);
      Alcotest.(check bool) "writes positive" true
        (r.Tradeoff.two_writes > 0 && r.Tradeoff.multi_writes > 0))
    rows;
  let t481 = List.nth rows 1 in
  Alcotest.(check bool) "t481 multi-level writes smaller too" true
    (t481.Tradeoff.multi_writes < t481.Tradeoff.two_writes)

(* ------------------------------------------------------------------ *)
(* Aging                                                              *)
(* ------------------------------------------------------------------ *)

let test_aging () =
  let r = Aging.run ~samples:10 ~max_faults:150 ~seed:2 ~benchmark:"rd53" () in
  Alcotest.(check bool) "every repair re-verified" true r.Aging.repairs_verified;
  Alcotest.(check bool) "dies absorb several faults" true (r.Aging.mean_faults_survived > 3.);
  Alcotest.(check bool) "local repair touches fewer rows than remap" true
    (r.Aging.mean_rows_touched_per_repair <= r.Aging.remap_rows_baseline +. 0.001)

let test_mldefect_spares_help () =
  let run spare_rows =
    Mldefect.run ~samples:40 ~defect_rates:[ 0.10 ] ~spare_rows ~seed:7 ~benchmark:"misex1" ()
  in
  let base = run 0 and spared = run 4 in
  let p r = (List.hd r.Mldefect.points).Mldefect.psucc in
  Alcotest.(check bool)
    (Printf.sprintf "spares help: %.0f%% -> %.0f%%" (p base) (p spared))
    true
    (p spared >= p base);
  Alcotest.(check bool) "simulations still correct" true
    (List.for_all (fun pt -> pt.Mldefect.all_simulations_correct) spared.Mldefect.points)

let test_transient () =
  let r =
    Transient.run ~evaluations:100 ~upset_rates:[ 1e-4; 3e-3 ] ~seed:4 ~benchmark:"rd53" ()
  in
  Alcotest.(check int) "2 points" 2 (List.length r.Transient.points);
  let low = List.hd r.Transient.points and high = List.nth r.Transient.points 1 in
  Alcotest.(check bool) "error grows with upset rate" true
    (high.Transient.two_level_error_rate >= low.Transient.two_level_error_rate
    && high.Transient.multi_level_error_rate >= low.Transient.multi_level_error_rate);
  Alcotest.(check bool) "rates in range" true
    (List.for_all
       (fun p ->
         p.Transient.two_level_error_rate >= 0.
         && p.Transient.two_level_error_rate <= 100.
         && p.Transient.multi_level_error_rate >= 0.
         && p.Transient.multi_level_error_rate <= 100.)
       r.Transient.points)

let () =
  Alcotest.run "mcx_experiments"
    [
      ( "fig6",
        [
          Alcotest.test_case "panel shape" `Quick test_fig6_panel_shape;
          Alcotest.test_case "deterministic" `Quick test_fig6_deterministic;
          Alcotest.test_case "input-size trend" `Quick test_fig6_trend;
          Alcotest.test_case "csv" `Quick test_fig6_csv;
          Alcotest.test_case "areas consistent" `Quick test_fig6_areas_consistent;
        ] );
      ( "table1",
        [
          Alcotest.test_case "all benchmarks" `Quick test_table1_all_benchmarks;
          Alcotest.test_case "synthetic two-level exact" `Quick test_table1_synthetic_two_level_exact;
          Alcotest.test_case "multi-level direction" `Quick test_table1_multilevel_direction;
        ] );
      ( "table2",
        [
          Alcotest.test_case "fields" `Quick test_table2_fields;
          Alcotest.test_case "HBA <= EA" `Quick test_table2_hba_bounded_by_ea;
          Alcotest.test_case "area model" `Quick test_table2_area_model;
          Alcotest.test_case "sqrt8 dual" `Quick test_table2_dual_sqrt8;
        ] );
      ( "yield",
        [
          Alcotest.test_case "sweep" `Quick test_yield_sweep;
          Alcotest.test_case "parallel deterministic" `Quick
            test_yield_parallel_deterministic;
          Alcotest.test_case "closed defects need redundancy" `Quick
            test_yield_closed_defects_need_redundancy;
        ] );
      ( "mldefect",
        [ Alcotest.test_case "end to end" `Quick test_mldefect_end_to_end ] );
      ( "ratesweep",
        [ Alcotest.test_case "shape" `Quick test_ratesweep_shape ] );
      ( "ablation",
        [
          Alcotest.test_case "factoring" `Quick test_ablation_factoring;
          Alcotest.test_case "ordering" `Quick test_ablation_ordering;
          Alcotest.test_case "fan-in limit" `Quick test_ablation_fanin;
        ] );
      ("tradeoff", [ Alcotest.test_case "latency & energy" `Quick test_tradeoff ]);
      ("aging", [ Alcotest.test_case "incremental repair" `Quick test_aging ]);
      ("transient", [ Alcotest.test_case "upset sweep" `Quick test_transient ]);
      ( "mldefect_spares",
        [ Alcotest.test_case "redundancy helps multi-level" `Quick test_mldefect_spares_help ] );
    ]
