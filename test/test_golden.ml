(* Golden regression test: fixed-seed table2 + fig6 runs, diffed against
   checked-in expected output.  The projection deliberately drops every
   wall-clock field so the comparison is byte-exact: kernel rewrites
   (packed cubes, bit-packed matrices, ...) must not silently change the
   paper numbers.

   Regenerating (only when an *intentional* semantic change lands):

     MCX_GOLDEN_REGEN=$PWD/test/golden dune exec test/test_golden.exe
*)

let seed = 2018
let table2_samples = 50
let table2_benchmarks = [ "rd53"; "misex1"; "rd73"; "rd84"; "table3" ]
let fig6_samples = 50
let fig6_input_sizes = [ 8; 9; 10 ]

let pool = lazy (Mcx.Util.Pool.default ())

(* Telemetry runs fully enabled (events on) while the projections are
   produced: the byte-compare below doubles as the regression guard that
   instrumentation never perturbs experiment output. *)
let () = Mcx.Util.Telemetry.enable ~events:true ()

let table2_projection () =
  let rows =
    Mcx.Experiments.Table2.run ~pool:(Lazy.force pool) ~samples:table2_samples
      ~benchmarks:table2_benchmarks ~seed ()
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "name,inputs,outputs,products,area,ir,dual,hba_psucc,hba_all_valid,ea_psucc,ea_all_valid\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%d,%d,%d,%.4f,%b,%.4f,%b,%.4f,%b\n"
           r.Mcx.Experiments.Table2.name r.Mcx.Experiments.Table2.inputs
           r.Mcx.Experiments.Table2.outputs r.Mcx.Experiments.Table2.products
           r.Mcx.Experiments.Table2.area r.Mcx.Experiments.Table2.inclusion_ratio
           r.Mcx.Experiments.Table2.dual_used r.Mcx.Experiments.Table2.hba_psucc
           r.Mcx.Experiments.Table2.hba_all_valid r.Mcx.Experiments.Table2.ea_psucc
           r.Mcx.Experiments.Table2.ea_all_valid))
    rows;
  Buffer.contents buf

let fig6_projection () =
  let panels =
    Mcx.Experiments.Fig6.run ~pool:(Lazy.force pool) ~samples:fig6_samples
      ~input_sizes:fig6_input_sizes ~seed ()
  in
  let buf = Buffer.create 4096 in
  List.iter
    (fun panel ->
      Buffer.add_string buf
        (Printf.sprintf "# inputs=%d success_rate=%.4f\n" panel.Mcx.Experiments.Fig6.n_inputs
           panel.Mcx.Experiments.Fig6.success_rate);
      Buffer.add_string buf (Mcx.Experiments.Fig6.series_csv panel))
    panels;
  Buffer.contents buf

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let golden_cases = [ ("table2", table2_projection); ("fig6", fig6_projection) ]

let regen dir =
  List.iter
    (fun (name, project) ->
      let path = Filename.concat dir (name ^ ".golden") in
      write_file path (project ());
      Printf.printf "wrote %s\n%!" path)
    golden_cases

let check name project () =
  let path = Filename.concat "golden" (name ^ ".golden") in
  let expected = read_file path in
  let actual = project () in
  if not (String.equal expected actual) then begin
    (* Dump the mismatch so CI logs show the drift, then fail loudly. *)
    write_file (name ^ ".actual") actual;
    Alcotest.failf
      "%s output drifted from golden file %s (actual written to %s.actual);@ if the \
       change is intentional, regenerate with MCX_GOLDEN_REGEN"
      name path name
  end

let () =
  match Mcx.Util.Config.golden_regen () with
  | Some dir -> regen dir
  | None ->
    Alcotest.run "golden"
      [
        ( "fixed-seed experiments",
          List.map
            (fun (name, project) ->
              Alcotest.test_case (name ^ " byte-identical") `Slow (check name project))
            golden_cases );
      ]
